// Command dtnsim runs one DTN scenario and prints a full metrics report.
//
// Example:
//
//	dtnsim -protocol EER -nodes 120 -duration 10000 -lambda 10 -seeds 5
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiment"
	"repro/internal/metrics"
	"repro/internal/server"
)

func main() {
	var (
		protocol = flag.String("protocol", "EER", "protocol: EER, CR, EBR, MaxProp, SprayAndWait, SprayAndFocus, Epidemic, Prophet, Direct, FirstContact, EER-fixedEV, EER-meanMD")
		nodes    = flag.Int("nodes", 120, "number of nodes")
		duration = flag.Float64("duration", 10000, "simulated seconds")
		lambda   = flag.Int("lambda", 10, "initial replica quota λ")
		alpha    = flag.Float64("alpha", 0.28, "EEV/ENEC horizon scale α")
		ttl      = flag.Float64("ttl", 1200, "message TTL in seconds")
		bufKB    = flag.Int("buffer", 1024, "buffer size in KB")
		msgKB    = flag.Int("msgsize", 25, "message size in KB")
		tick     = flag.Float64("tick", 0.25, "simulation tick in seconds")
		seeds    = flag.Int("seeds", 1, "number of seeds to average")
		seed     = flag.Int64("seed", 1, "base seed (used when -seeds 1)")
		mobility = flag.String("mobility", "bus", "mobility model: bus, rwp or city")
		shards   = flag.String("shards", "0", "per-world tick shards: a count or \"auto\" (0 = serial; results identical)")
		sparse   = flag.Bool("sparse", false, "force the sparse estimator core for EER/CR/MaxProp (auto at >= 1000 nodes; summaries identical)")
		gossip   = flag.String("gossip", "", "estimator exchange metering for EER/CR/MaxProp: fresher (default), flood or delta (summaries identical except gossip volume)")
		city     = flag.Bool("city", false, "start from the 10k-node CityScale preset instead of the paper defaults")
		metro    = flag.Bool("metro", false, "start from the 100k-node MetroScale preset (auto shards, delta gossip) instead of the paper defaults")
		timing   = flag.Bool("timing", false, "profile the engine and print a per-tick phase breakdown after the report (results stay bit-identical)")
		verbose  = flag.Bool("v", false, "print per-seed summaries")
		serve    = flag.String("serve", "", "instead of running one scenario, serve the dtnd simulation API on this address (e.g. :8080)")
		cacheDir = flag.String("cache", "dtnd-cache", "result cache directory for -serve (empty disables)")
	)
	flag.Parse()

	if *serve != "" {
		// Same daemon as cmd/dtnd: dtnsim -serve exists so a single
		// installed binary covers both one-shot runs and the service.
		// Scenario flags configure one-shot runs only — jobs arrive as
		// specs — so flag them as ignored rather than silently dropping.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "serve", "cache":
			default:
				fmt.Fprintf(os.Stderr, "dtnsim -serve: ignoring -%s (scenarios are submitted as specs)\n", f.Name)
			}
		})
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		go func() {
			<-ctx.Done()
			stop() // second signal force-exits
			fmt.Fprintln(os.Stderr, "dtnsim -serve: draining (signal again to force exit)")
		}()
		err := server.ListenAndServe(ctx, *serve, server.Config{CacheDir: *cacheDir}, func(bound string) {
			fmt.Printf("dtnsim serving dtnd API on %s (cache %q)\n", bound, *cacheDir)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtnsim -serve:", err)
			os.Exit(1)
		}
		return
	}

	s := experiment.Default()
	preset := *city || *metro
	if *city {
		// Preset first; explicitly-set flags below still override it.
		s = experiment.CityScale()
	}
	if *metro {
		s = experiment.MetroScale()
	}
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	apply := func(name string, f func()) {
		if set[name] || !preset {
			f()
		}
	}
	apply("protocol", func() { s.Protocol = experiment.Protocol(*protocol) })
	apply("nodes", func() { s.Nodes = *nodes })
	apply("duration", func() { s.Duration = *duration })
	apply("lambda", func() { s.Lambda = *lambda })
	apply("alpha", func() { s.Alpha = *alpha })
	apply("ttl", func() { s.TTL = *ttl })
	apply("buffer", func() { s.BufBytes = *bufKB * 1024 })
	apply("msgsize", func() { s.MsgSize = *msgKB * 1024 })
	apply("tick", func() { s.Tick = *tick })
	apply("mobility", func() { s.Mobility = *mobility })
	apply("shards", func() {
		n, err := experiment.ParseShards(*shards)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtnsim:", err)
			os.Exit(2)
		}
		s.Shards = n
	})
	apply("gossip", func() { s.Gossip = *gossip })
	apply("sparse", func() { s.SparseEstimators = *sparse })
	s.Seed = *seed
	s.Profile = *timing

	start := time.Now()
	var sums []metrics.Summary
	if *seeds <= 1 {
		sums = []metrics.Summary{s.Run()}
	} else {
		sums = experiment.RunSeeds(s, experiment.Seeds(*seeds))
	}
	elapsed := time.Since(start)

	if *verbose {
		for i, sum := range sums {
			fmt.Printf("seed %d: %s\n", i+1, sum)
		}
	}
	mean := metrics.Mean(sums)
	fmt.Printf("protocol=%s nodes=%d duration=%.0fs lambda=%d alpha=%.2f seeds=%d\n",
		s.Protocol, s.Nodes, s.Duration, s.Lambda, s.Alpha, len(sums))
	fmt.Println(strings.Repeat("-", 64))
	fmt.Printf("delivery ratio   %.3f\n", mean.DeliveryRatio)
	fmt.Printf("avg latency      %.1f s (median %.1f s)\n", mean.AvgLatency, mean.MedianLatency)
	fmt.Printf("goodput          %.4f\n", mean.Goodput)
	fmt.Printf("overhead ratio   %.2f\n", mean.OverheadRatio)
	fmt.Printf("avg hops         %.2f\n", mean.AvgHops)
	fmt.Printf("generated        %d\n", mean.Generated)
	fmt.Printf("delivered        %d\n", mean.Delivered)
	fmt.Printf("relays           %d\n", mean.Relays)
	fmt.Printf("drops            %d  aborts %d  expiries %d\n", mean.Drops, mean.Aborts, mean.Expired)
	fmt.Printf("contacts         %d\n", mean.Contacts)
	fmt.Printf("gossip           %d rows / %d entries / %.1f KB\n",
		mean.GossipRows, mean.GossipEntries, float64(mean.GossipBytes)/1024)
	if mean.GossipDigestBytes > 0 {
		fmt.Printf("  digest volume  %.1f KB (included above)\n", float64(mean.GossipDigestBytes)/1024)
	}
	fmt.Printf("wall time        %s\n", elapsed.Round(time.Millisecond))
	if *timing {
		// Mean folds the per-seed timing blocks into one (sums, not means),
		// so this is the whole run's engine-phase breakdown.
		fmt.Println(strings.Repeat("-", 64))
		mean.Timing.Report(os.Stdout)
	}
	if mean.Generated == 0 {
		fmt.Fprintln(os.Stderr, "warning: no messages generated")
		os.Exit(1)
	}
}
