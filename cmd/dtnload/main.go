// Command dtnload load-tests a live dtnd: it drives the daemon with many
// concurrent HTTP clients submitting jobs and sweeps, following NDJSON
// streams and cancelling mid-flight, then reports requests per second
// and latency percentiles split by response class (cached vs uncached)
// plus any protocol violations it observed.
//
// Typical runs against a daemon on :8080:
//
//	dtnload -clients 200 -requests 5000 -warm            # steady-state cache serving
//	dtnload -clients 500 -duration 30s -unique 0.05      # 5% fresh simulations mixed in
//	dtnload -clients 100 -duration 10s -stream 0.3 -cancel 0.1 -sweeps 0.05
//
// Exit status is 1 if the run observed any protocol violation — torn
// statuses, non-monotone progress, streams ending without a terminal
// line — so it doubles as a smoke check in CI.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/loadgen"
)

func main() {
	var (
		url      = flag.String("url", "http://127.0.0.1:8080", "dtnd base URL")
		clients  = flag.Int("clients", 100, "concurrent client workers")
		requests = flag.Int("requests", 0, "total submissions to issue (0: run for -duration)")
		duration = flag.Duration("duration", 10*time.Second, "wall-clock bound when -requests is 0")
		unique   = flag.Float64("unique", 0, "fraction of submissions with a never-seen spec (forces simulation)")
		sweeps   = flag.Float64("sweeps", 0, "fraction of submissions that are 2-cell sweeps")
		stream   = flag.Float64("stream", 0, "fraction of accepted jobs followed via NDJSON stream")
		cancel   = flag.Float64("cancel", 0, "fraction of accepted jobs cancelled mid-flight")
		shared   = flag.Int("shared", 8, "shared (cacheable) spec pool size")
		seed     = flag.Int64("seed", 1, "RNG seed (same seed + mix = same request sequence)")
		warm     = flag.Bool("warm", false, "pre-run every shared spec so the cached bucket measures pure cache serves")
	)
	flag.Parse()

	cfg := loadgen.Config{
		BaseURL:     *url,
		Clients:     *clients,
		Requests:    *requests,
		UniqueFrac:  *unique,
		SweepFrac:   *sweeps,
		StreamFrac:  *stream,
		CancelFrac:  *cancel,
		SharedSpecs: *shared,
		Seed:        *seed,
		Warm:        *warm,
	}
	if *requests == 0 {
		cfg.Duration = *duration
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("dtnload: %d clients against %s\n", *clients, *url)
	rep, err := loadgen.Run(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtnload:", err)
		os.Exit(2)
	}
	fmt.Print(rep.String())
	// Server-side cross-check: the daemon's own /metrics latency
	// histograms next to the client-side percentiles above. Best effort —
	// an old daemon without the histogram families just skips the block.
	if sl, err := loadgen.FetchServerLatency(context.Background(), nil, *url); err == nil && len(sl.Classes) > 0 {
		fmt.Print(sl.String())
	}
	// Fleet cross-check: against a coordinator, show where the dispatched
	// work went. A plain daemon (404 on /v1/workers) skips the block.
	if fs, err := loadgen.FetchFleet(context.Background(), nil, *url); err == nil && fs != nil {
		fmt.Print(fs.String())
	}
	if len(rep.Violations) > 0 {
		os.Exit(1)
	}
}
