package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiment"
	"repro/internal/resultcache"
	"repro/internal/trace"
)

// TestTracegenSmoke records a small quick-preset world into a fresh store
// and checks the blob lands under its trace key, decodes, and matches the
// file written by -o byte for byte.
func TestTracegenSmoke(t *testing.T) {
	dir := t.TempDir()
	outFile := filepath.Join(dir, "script.bin")
	var stderr bytes.Buffer
	args := []string{
		"-preset", "quick",
		"-nodes", "20", "-duration", "300", "-seeds", "7",
		"-store", filepath.Join(dir, "store"), "-o", outFile,
	}
	if code := run(args, &stderr); code != 0 {
		t.Fatalf("run exited %d: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "trace ") {
		t.Fatalf("no trace key printed:\n%s", stderr.String())
	}

	sp := experiment.ScenarioSpec{
		Preset:   "quick",
		Nodes:    experiment.Ptr(20),
		Duration: experiment.Ptr(300.0),
		Seeds:    []int64{7},
	}
	s, err := sp.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	s.Seed = 7
	key := experiment.TraceKey(s)

	store, err := resultcache.Open(filepath.Join(dir, "store"), 0)
	if err != nil {
		t.Fatal(err)
	}
	data, ok := store.GetTrace(key)
	if !ok {
		t.Fatalf("store has no trace under key %s", key)
	}
	sc, err := trace.DecodeScript(data)
	if err != nil {
		t.Fatalf("stored trace does not decode: %v", err)
	}
	if sc.N != 20 {
		t.Fatalf("stored script has %d nodes, want 20", sc.N)
	}
	fileData, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fileData, data) {
		t.Error("-o file and stored blob differ")
	}
}

// TestTracegenBadFlags pins the usage errors: no destination, bad seeds,
// multi-seed -o.
func TestTracegenBadFlags(t *testing.T) {
	cases := [][]string{
		{"-preset", "quick"},                                     // no -store, no -o
		{"-store", "x", "-seeds", "1,zap"},                       // bad seed
		{"-o", "f.bin", "-store", "x", "-seeds", "1,2"},          // -o with 2 seeds
		{"-store", "x", "-spec", `{"preset": "no-such-preset"}`}, // bad spec
	}
	for _, args := range cases {
		var stderr bytes.Buffer
		if code := run(args, &stderr); code != 2 {
			t.Errorf("run(%v) exited %d, want 2 (%s)", args, code, stderr.String())
		}
	}
}
