// Command tracegen records the contact trace of a scenario to a file (or
// stdout) and prints summary statistics — contact rate and contact
// duration quantiles — so a scenario's contact regime can be inspected and
// replayed with internal/trace.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/experiment"
	"repro/internal/msg"
	"repro/internal/network"
	"repro/internal/trace"
)

// recorder is a passive router that feeds the trace recorder. Each node
// reports only pairs where it has the lower id, so episodes appear once.
type recorder struct {
	self *network.Node
	rec  *trace.Recorder
}

func (r *recorder) Init(self *network.Node, _ *network.World)         {}
func (r *recorder) InitialReplicas(*msg.Message) int                  { return 1 }
func (r *recorder) Created(float64, *msg.Copy)                        {}
func (r *recorder) Received(float64, *msg.Copy, *network.Node)        {}
func (r *recorder) Sent(float64, *network.Plan, *network.Node, bool)  {}
func (r *recorder) NextTransfer(float64, *network.Node) *network.Plan { return nil }

func (r *recorder) ContactUp(t float64, peer *network.Node) {
	if r.self.ID < peer.ID {
		r.rec.Up(t, r.self.ID, peer.ID)
	}
}

func (r *recorder) ContactDown(t float64, peer *network.Node) {
	if r.self.ID < peer.ID {
		r.rec.Down(t, r.self.ID, peer.ID)
	}
}

// initSelf lets Init capture the node (split out so the struct literal in
// main stays simple).
func (r *recorder) bind(self *network.Node) { r.self = self }

func main() {
	var (
		nodes    = flag.Int("nodes", 120, "node count")
		duration = flag.Float64("duration", 10000, "simulated seconds")
		seed     = flag.Int64("seed", 1, "seed")
		mobility = flag.String("mobility", "bus", "mobility model: bus or rwp")
		out      = flag.String("o", "", "output file (default stdout; stats go to stderr)")
	)
	flag.Parse()

	s := experiment.Default()
	s.Nodes = *nodes
	s.Duration = *duration
	s.Seed = *seed
	s.Mobility = *mobility

	rec := trace.NewRecorder(*nodes)
	w, runner := experiment.BuildBare(s, func(int) network.Router { return &recorder{rec: rec} })
	for _, n := range w.Nodes() {
		n.Router.(*recorder).bind(n)
	}
	runner.Run(s.Duration)
	tr := rec.Finish(s.Duration)

	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		dst = f
	}
	if err := tr.Write(dst); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	printStats(tr, s.Duration, *nodes)
}

func printStats(tr *trace.Trace, duration float64, n int) {
	if len(tr.Contacts) == 0 {
		fmt.Fprintln(os.Stderr, "no contacts recorded")
		return
	}
	durs := make([]float64, 0, len(tr.Contacts))
	sum := 0.0
	for _, c := range tr.Contacts {
		d := c.End - c.Start
		durs = append(durs, d)
		sum += d
	}
	sort.Float64s(durs)
	q := func(p float64) float64 { return durs[int(p*float64(len(durs)-1))] }
	fmt.Fprintf(os.Stderr, "contacts: %d over %.0fs, %.2f per node-hour\n",
		len(tr.Contacts), duration, float64(len(tr.Contacts))*2*3600/(float64(n)*duration))
	fmt.Fprintf(os.Stderr, "contact duration: mean %.1fs median %.1fs p90 %.1fs\n",
		sum/float64(len(durs)), q(0.5), q(0.9))
}
