// Command tracegen pre-records contact traces through the declarative
// spec path — the same ScenarioSpec document dtnd and the sweep CLIs
// accept — and persists them content-addressed into the shared result
// store. A sweep or daemon job over the same world then replays the
// recorded contact script instead of re-simulating mobility (see
// DESIGN.md "Trace record/replay"). Per-seed trace keys and contact
// statistics (rate, duration quantiles) print to stderr; -o additionally
// writes one seed's binary script to a file for offline inspection.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/experiment"
	"repro/internal/resultcache"
	"repro/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

func run(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		specJSON = fs.String("spec", "", "scenario spec JSON (the document dtnd accepts); individual flags below override its fields")
		preset   = fs.String("preset", "", "base preset: quick, cityscale, metroscale (empty = paper defaults)")
		nodes    = fs.Int("nodes", 0, "node count override")
		duration = fs.Float64("duration", 0, "simulated seconds override")
		mobility = fs.String("mobility", "", "mobility model override: bus or rwp")
		seeds    = fs.String("seeds", "", "comma-separated seeds to record (default the spec's seed list)")
		storeDir = fs.String("store", "", "content-addressed store directory shared with dtnd/sweep/figures; recorded traces land there under their trace key")
		out      = fs.String("o", "", "also write the binary contact script to this file (single-seed runs only)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *storeDir == "" && *out == "" {
		fmt.Fprintln(stderr, "tracegen: nothing to do: set -store (shared replay store) and/or -o (script file)")
		return 2
	}

	var sp experiment.ScenarioSpec
	if *specJSON != "" {
		parsed, err := experiment.ParseSpec([]byte(*specJSON))
		if err != nil {
			fmt.Fprintf(stderr, "tracegen: -spec: %v\n", err)
			return 2
		}
		sp = parsed
	}
	if *preset != "" {
		sp.Preset = *preset
	}
	if *nodes > 0 {
		sp.Nodes = experiment.Ptr(*nodes)
	}
	if *duration > 0 {
		sp.Duration = experiment.Ptr(*duration)
	}
	if *mobility != "" {
		sp.Mobility = experiment.Ptr(*mobility)
	}
	if *seeds != "" {
		list, err := parseSeeds(*seeds)
		if err != nil {
			fmt.Fprintf(stderr, "tracegen: -seeds: %v\n", err)
			return 2
		}
		sp.Seeds = list
	}

	s, err := sp.Scenario()
	if err != nil {
		fmt.Fprintf(stderr, "tracegen: %v\n", err)
		return 2
	}
	seedList := sp.SeedList()
	if *out != "" && len(seedList) != 1 {
		fmt.Fprintf(stderr, "tracegen: -o needs exactly one seed, spec has %d\n", len(seedList))
		return 2
	}

	var store *resultcache.Store
	if *storeDir != "" {
		st, err := resultcache.Open(*storeDir, 0)
		if err != nil {
			fmt.Fprintf(stderr, "tracegen: store: %v\n", err)
			return 1
		}
		store = st
	}

	for _, seed := range seedList {
		sc := s
		sc.Seed = seed
		script, key, err := experiment.RecordTrace(context.Background(), sc, store)
		if err != nil {
			fmt.Fprintf(stderr, "tracegen: seed %d: %v\n", seed, err)
			return 1
		}
		fmt.Fprintf(stderr, "seed %d: trace %s (%d nodes, %d events)\n", seed, key, script.N, len(script.Events))
		printStats(stderr, script.Episodes(sc.Tick, sc.Duration), sc.Duration, sc.Nodes)
		if *out != "" {
			if err := os.WriteFile(*out, script.Encode(), 0o644); err != nil {
				fmt.Fprintf(stderr, "tracegen: %v\n", err)
				return 1
			}
			fmt.Fprintf(stderr, "wrote %s\n", *out)
		}
	}
	return 0
}

func parseSeeds(s string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func printStats(w io.Writer, tr *trace.Trace, duration float64, n int) {
	if len(tr.Contacts) == 0 {
		fmt.Fprintln(w, "no contacts recorded")
		return
	}
	durs := make([]float64, 0, len(tr.Contacts))
	sum := 0.0
	for _, c := range tr.Contacts {
		d := c.End - c.Start
		durs = append(durs, d)
		sum += d
	}
	sort.Float64s(durs)
	q := func(p float64) float64 { return durs[int(p*float64(len(durs)-1))] }
	fmt.Fprintf(w, "contacts: %d over %.0fs, %.2f per node-hour\n",
		len(tr.Contacts), duration, float64(len(tr.Contacts))*2*3600/(float64(n)*duration))
	fmt.Fprintf(w, "contact duration: mean %.1fs median %.1fs p90 %.1fs\n",
		sum/float64(len(durs)), q(0.5), q(0.9))
}
