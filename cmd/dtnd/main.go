// Command dtnd is the DTN simulation daemon: an HTTP/JSON service that
// accepts declarative scenario specs, runs them on the shared experiment
// pool, streams live progress as NDJSON and serves repeated submissions
// from a content-addressed result cache.
//
// Quickstart (see README.md for the full walkthrough):
//
//	dtnd -addr :8080 -cache dtnd-cache &
//	curl -s localhost:8080/v1/jobs -d '{"preset":"quick","protocol":"EER","seeds":[1,2]}'
//	curl -sN localhost:8080/v1/jobs/j1/stream     # live NDJSON progress
//	curl -s localhost:8080/v1/jobs/j1             # status + result + engine phase timing
//	curl -s localhost:8080/metrics                # Prometheus text metrics
//
// Coordinator mode fans sweep cells out across a fleet of ordinary
// workers (see DESIGN.md "Distributed sweep fabric"):
//
//	dtnd -addr :8081 -cache w1-cache &            # worker 1
//	dtnd -addr :8082 -cache w2-cache &            # worker 2
//	dtnd -addr :8080 -cache coord-cache \
//	     -workers http://localhost:8081,http://localhost:8082 &
//	curl -s localhost:8080/v1/sweeps -d '{"base":{"preset":"quick"},"axes":{"protocols":["EER","CR"]}}'
//	curl -s localhost:8080/v1/workers             # fleet registry + dispatch counters
//
// Logs are structured (log/slog, logfmt-style text on stderr): every job
// and sweep lifecycle line carries its job/sweep id and cache key, so
// `grep job=j42` reconstructs one job's history. -log-level debug adds
// cache-hit and coalesce lines; -pprof mounts /debug/pprof/* for CPU and
// heap profiles (off by default).
//
// cmd/dtnload load-tests a running daemon and reports req/s + latency
// percentiles per response class.
//
// SIGINT/SIGTERM drain gracefully: accepted jobs finish, new submissions
// are refused, then the listener closes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/server"
)

// splitURLs parses a comma-separated URL list flag, dropping empties.
func splitURLs(s string) []string {
	var urls []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	return urls
}

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address (\":0\" picks a free port)")
		cache     = flag.String("cache", "dtnd-cache", "content-addressed result cache directory (empty disables)")
		cacheMax  = flag.Int64("cache-max-bytes", 0, "result cache size bound; oldest-mtime entries evicted past it (0 = unbounded)")
		jobs      = flag.Int("jobs", 1, "jobs simulating concurrently (each job already fills all cores)")
		queue     = flag.Int("queue", 64, "max accepted-but-unfinished jobs")
		logLevel  = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
		pprof     = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/* (off by default: profiles expose internals)")
		workers   = flag.String("workers", "", "comma-separated worker base URLs; non-empty runs this daemon as a fleet coordinator")
		peers     = flag.String("peers", "", "comma-separated peer base URLs whose caches back this daemon's store (pull-through)")
		inflight  = flag.Int("worker-inflight", 0, "jobs dispatched concurrently per worker (coordinator mode; 0 = default 2)")
		heartbeat = flag.Duration("heartbeat", 0, "worker health-probe cadence (coordinator mode; 0 = default 1s)")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "dtnd: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		// First signal: drain gracefully. Releasing the signal capture
		// here restores default handling, so a second signal kills the
		// process instead of being swallowed mid-drain.
		<-ctx.Done()
		stop()
		logger.Info("signal received, draining (signal again to force exit)")
	}()

	cfg := server.Config{
		CacheDir:          *cache,
		MaxCacheBytes:     *cacheMax,
		MaxConcurrentJobs: *jobs,
		MaxQueuedJobs:     *queue,
		Logger:            logger,
		EnablePprof:       *pprof,
		Workers:           splitURLs(*workers),
		Peers:             splitURLs(*peers),
		WorkerInflight:    *inflight,
		Heartbeat:         *heartbeat,
	}
	err := server.ListenAndServe(ctx, *addr, cfg, func(bound string) {
		// Stdout line is the port-discovery contract for scripts
		// (CI smoke parses it); the slog "listening" line is the
		// machine-readable sibling on stderr.
		fmt.Printf("dtnd listening on %s (cache %q)\n", bound, *cache)
	})
	if err != nil {
		logger.Error("dtnd exiting", "err", err)
		os.Exit(1)
	}
}
