// Command sweep explores the parameters the paper omitted "due to the
// space limitation" (Section V-B): the horizon scale α, the message TTL,
// the buffer size and the history window, each as a 1-D sweep at a fixed
// node count.
//
// The sweep expands through experiment.SweepSpec — the same declarative
// path the dtnd daemon's /v1/sweeps endpoint uses — so every cell is
// content-addressed. Point -cache at a dtnd cache directory (or any
// shared directory) and cells computed by a previous sweep, a figures
// run or the daemon are read from disk instead of re-simulated, and
// fresh cells are persisted back for them.
//
// Result tables go to stdout; diagnostics are structured log lines
// (log/slog, same logfmt text as dtnd) on stderr, tunable with
// -log-level.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"time"

	"repro/internal/experiment"
	"repro/internal/resultcache"
)

func main() {
	var (
		param    = flag.String("param", "alpha", "parameter to sweep: alpha, ttl, buffer, window, lambda")
		protocol = flag.String("protocol", "EER", "protocol under test")
		nodes    = flag.Int("nodes", 120, "node count")
		seeds    = flag.Int("seeds", 3, "seeds per point")
		duration = flag.Float64("duration", 6000, "simulated seconds")
		workers  = flag.Int("workers", 0, "cap simulation workers (0 = all cores)")
		shards   = flag.String("shards", "0", "per-world tick shards: a count or \"auto\" (0 = serial; summaries identical)")
		sparse   = flag.Bool("sparse", false, "force the sparse estimator core (auto at >= 1000 nodes; summaries identical)")
		cache    = flag.String("cache", "", "content-addressed result cache directory shared with dtnd (empty disables)")
		logLevel = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
	)
	flag.Parse()
	if *workers > 0 {
		runtime.GOMAXPROCS(*workers)
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "sweep: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	shardCount, err := experiment.ParseShards(*shards)
	if err != nil {
		log.Error("bad -shards", "err", err)
		os.Exit(2)
	}
	base := experiment.ScenarioSpec{
		Protocol:         experiment.Ptr(*protocol),
		Nodes:            experiment.Ptr(*nodes),
		Duration:         experiment.Ptr(*duration),
		Shards:           experiment.Ptr(experiment.ShardCount(shardCount)),
		SparseEstimators: experiment.Ptr(*sparse),
		Seeds:            experiment.Seeds(*seeds),
	}

	sw := experiment.SweepSpec{Base: base}
	var (
		values []float64 // table x-values (display units)
		label  string
	)
	switch *param {
	case "alpha":
		values = []float64{0.1, 0.2, 0.28, 0.4, 0.6, 0.8, 1.0}
		sw.Alpha = values
		label = "alpha"
	case "ttl":
		values = []float64{300, 600, 1200, 2400, 3600}
		sw.TTL = values
		label = "TTL (s)"
	case "buffer":
		values = []float64{128, 256, 512, 1024, 2048} // KB
		for _, v := range values {
			sw.BufBytes = append(sw.BufBytes, int(v)*1024)
		}
		label = "buffer (KB)"
	case "window":
		values = []float64{4, 8, 16, 32, 64}
		for _, v := range values {
			sw.Window = append(sw.Window, int(v))
		}
		label = "window"
	case "lambda":
		values = []float64{2, 4, 6, 8, 10, 12, 16}
		for _, v := range values {
			sw.Lambda = append(sw.Lambda, int(v))
		}
		label = "lambda"
	default:
		log.Error("unknown parameter", "param", *param)
		os.Exit(2)
	}

	var store *resultcache.Store
	if *cache != "" {
		st, err := resultcache.Open(*cache, 0)
		if err != nil {
			log.Error("open cache", "dir", *cache, "err", err)
			os.Exit(1)
		}
		store = st
	}

	start := time.Now()
	log.Info("sweep starting", "param", *param, "protocol", *protocol, "nodes", *nodes,
		"simulations", len(values)**seeds, "workers", runtime.GOMAXPROCS(0))
	results, err := experiment.RunSweep(context.Background(), sw, store)
	if err != nil && results == nil {
		log.Error("sweep failed", "param", *param, "err", err)
		os.Exit(1)
	}
	if err != nil {
		log.Warn("cache write failed; results are complete", "err", err)
	}
	cached := 0
	se := experiment.Series{Name: *protocol}
	for i, res := range results {
		if res.Cached {
			cached++
		}
		se.Points = append(se.Points, experiment.Point{X: values[i], Summary: res.Mean})
	}
	if cached > 0 {
		log.Info("cells served from cache", "param", *param, "cached", cached, "total", len(results), "cache", *cache)
	}
	// Routing/traffic-only axes share one recorded world per seed, so with
	// -cache most cells replay the contact script instead of re-simulating
	// mobility (see DESIGN.md "Trace record/replay").
	if rec, rep := experiment.TraceRecordings(), experiment.TraceReplays(); rec > 0 || rep > 0 {
		log.Info("trace fast path", "param", *param, "recorded_worlds", rec, "replayed_runs", rep)
	}

	title := fmt.Sprintf("Sweep %s (%s, n=%d)", label, *protocol, *nodes)
	for _, m := range experiment.PaperMetrics {
		experiment.RenderTable(os.Stdout, title, label, []experiment.Series{se}, m)
	}
	fmt.Printf("total wall time: %s\n", time.Since(start).Round(time.Second))
}
