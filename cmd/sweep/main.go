// Command sweep explores the parameters the paper omitted "due to the
// space limitation" (Section V-B): the horizon scale α, the message TTL,
// the buffer size and the history window, each as a 1-D sweep at a fixed
// node count.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/experiment"
)

func main() {
	var (
		param    = flag.String("param", "alpha", "parameter to sweep: alpha, ttl, buffer, window, lambda")
		protocol = flag.String("protocol", "EER", "protocol under test")
		nodes    = flag.Int("nodes", 120, "node count")
		seeds    = flag.Int("seeds", 3, "seeds per point")
		duration = flag.Float64("duration", 6000, "simulated seconds")
		workers  = flag.Int("workers", 0, "cap simulation workers (0 = all cores)")
		shards   = flag.Int("shards", 0, "per-world tick shards (0 = serial; summaries identical)")
		sparse   = flag.Bool("sparse", false, "force the sparse estimator core (auto at >= 1000 nodes; summaries identical)")
	)
	flag.Parse()
	if *workers > 0 {
		runtime.GOMAXPROCS(*workers)
	}

	base := experiment.Default()
	base.Protocol = experiment.Protocol(*protocol)
	base.Nodes = *nodes
	base.Duration = *duration
	base.Shards = *shards
	base.SparseEstimators = *sparse

	var (
		values []float64
		set    func(*experiment.Scenario, float64)
		label  string
	)
	switch *param {
	case "alpha":
		values = []float64{0.1, 0.2, 0.28, 0.4, 0.6, 0.8, 1.0}
		set = func(s *experiment.Scenario, v float64) { s.Alpha = v }
		label = "alpha"
	case "ttl":
		values = []float64{300, 600, 1200, 2400, 3600}
		set = func(s *experiment.Scenario, v float64) { s.TTL = v }
		label = "TTL (s)"
	case "buffer":
		values = []float64{128, 256, 512, 1024, 2048} // KB
		set = func(s *experiment.Scenario, v float64) { s.BufBytes = int(v) * 1024 }
		label = "buffer (KB)"
	case "window":
		values = []float64{4, 8, 16, 32, 64}
		set = func(s *experiment.Scenario, v float64) { s.Window = int(v) }
		label = "window"
	case "lambda":
		values = []float64{2, 4, 6, 8, 10, 12, 16}
		set = func(s *experiment.Scenario, v float64) { s.Lambda = int(v) }
		label = "lambda"
	default:
		fmt.Fprintf(os.Stderr, "unknown parameter %q\n", *param)
		os.Exit(2)
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "sweep %s: %d simulations on %d workers...\n",
		label, len(values)**seeds, runtime.GOMAXPROCS(0))
	series := []experiment.Series{experiment.Sweep1D(*protocol, base, values, set, *seeds)}
	title := fmt.Sprintf("Sweep %s (%s, n=%d)", label, *protocol, *nodes)
	for _, m := range experiment.PaperMetrics {
		experiment.RenderTable(os.Stdout, title, label, series, m)
	}
	fmt.Printf("total wall time: %s\n", time.Since(start).Round(time.Second))
}
