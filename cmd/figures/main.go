// Command figures regenerates every figure of the paper's evaluation
// (Section V) as aligned tables and optional CSV:
//
//	Figure 2 — EER, CR, EBR, MaxProp, Spray-and-Wait, Spray-and-Focus
//	           across node counts (delivery ratio, latency, goodput)
//	Figure 3 — EER with λ ∈ {6,8,10,12}
//	Figure 4 — CR with λ ∈ {6,8,10,12}
//	A1      — EER vs TTL-independent-EEV ablation
//	A2      — EER vs mean-interval-MD (MEED-style) ablation
//	A3      — EER forwarding-hysteresis sweep (estimator-noise ping-pong)
//
// Full paper parameters take tens of minutes; -quick runs a reduced but
// shape-preserving sweep in a few minutes.
//
// Tables and CSV artifacts go to stdout / files; diagnostics are
// structured log lines (log/slog, same logfmt text as dtnd) on stderr,
// tunable with -log-level.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/resultcache"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "which figure: 2, 3, 4, a1, a2, a3 or all")
		seeds    = flag.Int("seeds", 5, "seeds per data point (paper used 10)")
		quick    = flag.Bool("quick", false, "reduced sweep: fewer nodes, 4000 s runs, 2 seeds")
		csv      = flag.String("csv", "", "also write CSV data to this file prefix (e.g. fig)")
		nodes    = flag.String("nodes", "", "override node counts, comma-separated")
		outDur   = flag.Float64("duration", 10000, "simulated seconds per run")
		shards   = flag.String("shards", "0", "per-world tick shards: a count or \"auto\" (0 = serial; summaries identical). The pool already fills all cores, so set this only for few huge runs")
		sparse   = flag.Bool("sparse", false, "force the sparse estimator core (auto at >= 1000 nodes; summaries identical)")
		cache    = flag.String("cache", "", "content-addressed result cache shared with dtnd and cmd/sweep; Figure-2 cells hit it (empty disables)")
		timing   = flag.Bool("timing", false, "profile the engine and print a per-figure phase breakdown (results stay bit-identical; cached cells carry no timing)")
		logLevel = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
	)
	flag.Parse()
	profileRuns = *timing

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "figures: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	log = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	shardCount, err := experiment.ParseShards(*shards)
	if err != nil {
		log.Error("bad -shards", "err", err)
		os.Exit(2)
	}
	base := experiment.Default()
	base.Duration = *outDur
	base.Shards = shardCount
	base.SparseEstimators = *sparse
	base.Profile = *timing
	counts := []int{40, 80, 120, 160, 200, 240}
	if *quick {
		base.Duration = 4000
		base.Tick = 0.5
		counts = []int{40, 120, 200}
		if !flagSet("seeds") {
			*seeds = 2
		}
	}
	if *nodes != "" {
		counts = parseInts(*nodes)
	}
	// The Figure-2 grid travels the declarative sweep path (the same
	// expansion dtnd's /v1/sweeps uses), so its base is a spec mirroring
	// the scenario the other figures mutate directly.
	baseSpec := experiment.ScenarioSpec{
		Duration:         experiment.Ptr(base.Duration),
		Tick:             experiment.Ptr(base.Tick),
		Shards:           experiment.Ptr(experiment.ShardCount(shardCount)),
		SparseEstimators: experiment.Ptr(*sparse),
		Seeds:            experiment.Seeds(*seeds),
	}
	if *timing {
		// Profile is excluded from cell cache keys, so profiled figure
		// runs still hit (and write) the same cached cells.
		baseSpec.Profile = experiment.Ptr(true)
	}
	var store *resultcache.Store
	if *cache != "" {
		st, err := resultcache.Open(*cache, 0)
		if err != nil {
			log.Error("open cache", "dir", *cache, "err", err)
			os.Exit(1)
		}
		store = st
	}

	start := time.Now()
	switch *fig {
	case "2":
		figure2(baseSpec, counts, *seeds, *csv, store)
	case "3":
		figureLambda(base, experiment.EER, "Figure 3 (EER)", counts, *seeds, *csv)
	case "4":
		figureLambda(base, experiment.CR, "Figure 4 (CR)", counts, *seeds, *csv)
	case "a1":
		ablation(base, "Ablation A1 (TTL-aware EEV)", []experiment.Protocol{experiment.EER, experiment.EERFixedEV}, counts, *seeds, *csv)
	case "a2":
		ablation(base, "Ablation A2 (elapsed-conditioned EMD)", []experiment.Protocol{experiment.EER, experiment.EERMeanMD}, counts, *seeds, *csv)
	case "a3":
		hysteresis(base, counts, *seeds, *csv)
	case "all":
		figure2(baseSpec, counts, *seeds, *csv, store)
		figureLambda(base, experiment.EER, "Figure 3 (EER)", counts, *seeds, *csv)
		figureLambda(base, experiment.CR, "Figure 4 (CR)", counts, *seeds, *csv)
		ablation(base, "Ablation A1 (TTL-aware EEV)", []experiment.Protocol{experiment.EER, experiment.EERFixedEV}, counts, *seeds, *csv)
		ablation(base, "Ablation A2 (elapsed-conditioned EMD)", []experiment.Protocol{experiment.EER, experiment.EERMeanMD}, counts, *seeds, *csv)
		hysteresis(base, counts, *seeds, *csv)
	default:
		log.Error("unknown figure", "fig", *fig)
		os.Exit(2)
	}
	fmt.Printf("total wall time: %s\n", time.Since(start).Round(time.Second))
}

func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func parseInts(s string) []int {
	var out []int
	for _, part := range splitComma(s) {
		var v int
		if _, err := fmt.Sscanf(part, "%d", &v); err != nil {
			log.Error("bad node count", "value", part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func splitComma(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == ',' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	return append(out, cur)
}

// profileRuns mirrors the -timing flag for the figure helpers: when set,
// every emitted figure is followed by its aggregated engine-phase report.
var profileRuns bool

// log is the command's structured logger (stderr), set in main once
// -log-level is parsed; the discard default keeps helpers safe in tests.
var log = slog.New(slog.DiscardHandler)

// reportTiming folds the timing blocks of every point in the series (each
// point's mean already folds its seeds) and prints one phase breakdown for
// the figure. Cached cells carry no timing, so a fully-cached figure
// prints how much of it was served from disk instead.
func reportTiming(title string, series []experiment.Series) {
	if !profileRuns {
		return
	}
	var tm *obs.Timing
	missing := 0
	for _, se := range series {
		for _, pt := range se.Points {
			if pt.Summary.Timing == nil {
				missing++
				continue
			}
			tm = obs.MergeTiming(tm, pt.Summary.Timing)
		}
	}
	fmt.Printf("\n%s — engine phase breakdown:\n", title)
	tm.Report(os.Stdout)
	if missing > 0 {
		fmt.Printf("(%d points served from cache, not profiled)\n", missing)
	}
}

func emit(title string, series []experiment.Series, csvPrefix, suffix string) {
	for _, m := range experiment.PaperMetrics {
		experiment.RenderTable(os.Stdout, title, "nodes", series, m)
	}
	reportTiming(title, series)
	if csvPrefix != "" {
		path := csvPrefix + suffix + ".csv"
		f, err := os.Create(path)
		if err != nil {
			log.Error("write csv", "path", path, "err", err)
			os.Exit(1)
		}
		experiment.WriteCSV(f, "nodes", series, experiment.PaperMetrics)
		f.Close()
		fmt.Printf("wrote %s\n", path)
	}
}

// figure2 reproduces the six-protocol comparison. The (protocol × nodes)
// grid expands through experiment.SweepSpec — one code path with dtnd's
// /v1/sweeps — so cells carry content addresses: with -cache, points any
// prior sweep, figures run or daemon job computed are read from disk,
// and the rest run as one flattened batch over the worker pool.
func figure2(base experiment.ScenarioSpec, counts []int, seeds int, csvPrefix string, store *resultcache.Store) {
	protos := make([]string, len(experiment.AllPaperProtocols))
	for i, p := range experiment.AllPaperProtocols {
		protos[i] = string(p)
	}
	sw := experiment.SweepSpec{Base: base, Protocols: protos, Nodes: counts}
	log.Info("figure starting", "figure", "2", "simulations", len(protos)*len(counts)*seeds)
	results, err := experiment.RunSweep(context.Background(), sw, store)
	if err != nil && results == nil {
		log.Error("figure failed", "figure", "2", "err", err)
		os.Exit(1)
	}
	if err != nil {
		log.Warn("cache write failed; results are complete", "figure", "2", "err", err)
	}
	cached := 0
	series := make([]experiment.Series, len(protos))
	for i, p := range protos {
		se := experiment.Series{Name: p}
		for j, n := range counts {
			res := results[i*len(counts)+j]
			if res.Cached {
				cached++
			}
			se.Points = append(se.Points, experiment.Point{X: float64(n), Summary: res.Mean})
		}
		series[i] = se
	}
	if cached > 0 {
		log.Info("cells served from cache", "figure", "2", "cached", cached, "total", len(results))
	}
	// The protocol axis shares one recorded world per (nodes, seed): with
	// -cache, mobility simulates once and the other protocols replay.
	if rec, rep := experiment.TraceRecordings(), experiment.TraceReplays(); rec > 0 || rep > 0 {
		log.Info("trace fast path", "figure", "2", "recorded_worlds", rec, "replayed_runs", rep)
	}
	emit("Figure 2 — protocol comparison (λ=10)", series, csvPrefix, "2")
}

// figureLambda reproduces the λ sensitivity figures (3 for EER, 4 for CR).
func figureLambda(base experiment.Scenario, p experiment.Protocol, title string, counts []int, seeds int, csvPrefix string) {
	lambdas := []int{6, 8, 10, 12}
	bases := make([]experiment.Scenario, 0, len(lambdas))
	for _, lambda := range lambdas {
		s := base
		s.Protocol = p
		s.Lambda = lambda
		bases = append(bases, s)
	}
	log.Info("figure starting", "figure", title, "simulations", len(bases)*len(counts)*seeds)
	series := experiment.NodeSweepMulti(bases, counts, seeds)
	for i, lambda := range lambdas {
		series[i].Name = fmt.Sprintf("λ=%d", lambda)
	}
	suffix := "3"
	if p == experiment.CR {
		suffix = "4"
	}
	emit(title+" — effect of λ", series, csvPrefix, suffix)
}

// ablation compares EER against one of its ablated variants.
func ablation(base experiment.Scenario, title string, ps []experiment.Protocol, counts []int, seeds int, csvPrefix string) {
	bases := make([]experiment.Scenario, 0, len(ps))
	for _, p := range ps {
		s := base
		s.Protocol = p
		bases = append(bases, s)
	}
	log.Info("figure starting", "figure", title, "simulations", len(bases)*len(counts)*seeds)
	series := experiment.NodeSweepMulti(bases, counts, seeds)
	emit(title, series, csvPrefix, "_"+string(ps[len(ps)-1]))
}

// hysteresis sweeps the single-copy forwarding hysteresis (A3), using the
// middle node count.
func hysteresis(base experiment.Scenario, counts []int, seeds int, csvPrefix string) {
	n := counts[len(counts)/2]
	var series []experiment.Series
	se := experiment.Sweep1D("EER", withNodes(base, n), []float64{0, 30, 60, 120, 300}, func(s *experiment.Scenario, v float64) {
		s.ForwardHysteresis = v
	}, seeds)
	series = append(series, se)
	for _, m := range experiment.PaperMetrics {
		experiment.RenderTable(os.Stdout, fmt.Sprintf("Ablation A3 — forwarding hysteresis (n=%d)", n), "hysteresis (s)", series, m)
	}
	reportTiming("Ablation A3", series)
	if csvPrefix != "" {
		path := csvPrefix + "_a3.csv"
		f, err := os.Create(path)
		if err != nil {
			log.Error("write csv", "path", path, "err", err)
			os.Exit(1)
		}
		experiment.WriteCSV(f, "hysteresis_s", series, experiment.PaperMetrics)
		f.Close()
		fmt.Printf("wrote %s\n", path)
	}
}

func withNodes(s experiment.Scenario, n int) experiment.Scenario {
	s.Nodes = n
	return s
}
