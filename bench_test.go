package repro

// One benchmark per table/figure of the paper plus micro-benchmarks of the
// core estimators. Figure benchmarks run a reduced but shape-preserving
// configuration (80 nodes, 2000 simulated seconds, one seed) so that
// `go test -bench=.` completes in minutes; cmd/figures regenerates the
// full sweeps. Each figure benchmark reports the three paper metrics as
// custom benchmark outputs (delivery, latency-s, goodput).

import (
	"testing"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/xrand"
)

// benchScenario is the reduced per-iteration configuration.
func benchScenario(p experiment.Protocol, lambda int) experiment.Scenario {
	s := experiment.Default()
	s.Protocol = p
	s.Nodes = 80
	s.Duration = 2000
	s.Tick = 0.5
	s.Lambda = lambda
	return s
}

func runFigureBench(b *testing.B, s experiment.Scenario) {
	b.Helper()
	last := experiment.RunAveraged(s, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Seed = int64(i + 1)
		last = s.Run()
	}
	b.StopTimer()
	b.ReportMetric(last.DeliveryRatio, "delivery")
	b.ReportMetric(last.AvgLatency, "latency-s")
	b.ReportMetric(last.Goodput*1000, "goodput-m") // milli-goodput for readability
}

// Figure 2 — the six-protocol comparison (one benchmark per curve).

func BenchmarkFigure2_EER(b *testing.B)     { runFigureBench(b, benchScenario(experiment.EER, 10)) }
func BenchmarkFigure2_CR(b *testing.B)      { runFigureBench(b, benchScenario(experiment.CR, 10)) }
func BenchmarkFigure2_EBR(b *testing.B)     { runFigureBench(b, benchScenario(experiment.EBR, 10)) }
func BenchmarkFigure2_MaxProp(b *testing.B) { runFigureBench(b, benchScenario(experiment.MaxProp, 10)) }
func BenchmarkFigure2_SprayAndWait(b *testing.B) {
	runFigureBench(b, benchScenario(experiment.SprayAndWait, 10))
}
func BenchmarkFigure2_SprayAndFocus(b *testing.B) {
	runFigureBench(b, benchScenario(experiment.SprayAndFocus, 10))
}

// Figure 3 — EER λ sensitivity.

func BenchmarkFigure3_EER_Lambda6(b *testing.B) { runFigureBench(b, benchScenario(experiment.EER, 6)) }
func BenchmarkFigure3_EER_Lambda8(b *testing.B) { runFigureBench(b, benchScenario(experiment.EER, 8)) }
func BenchmarkFigure3_EER_Lambda10(b *testing.B) {
	runFigureBench(b, benchScenario(experiment.EER, 10))
}
func BenchmarkFigure3_EER_Lambda12(b *testing.B) {
	runFigureBench(b, benchScenario(experiment.EER, 12))
}

// Figure 4 — CR λ sensitivity.

func BenchmarkFigure4_CR_Lambda6(b *testing.B)  { runFigureBench(b, benchScenario(experiment.CR, 6)) }
func BenchmarkFigure4_CR_Lambda8(b *testing.B)  { runFigureBench(b, benchScenario(experiment.CR, 8)) }
func BenchmarkFigure4_CR_Lambda10(b *testing.B) { runFigureBench(b, benchScenario(experiment.CR, 10)) }
func BenchmarkFigure4_CR_Lambda12(b *testing.B) { runFigureBench(b, benchScenario(experiment.CR, 12)) }

// Ablations — the design choices DESIGN.md calls out.

// BenchmarkAblationA1_TTLIndependentEEV removes the paper's TTL scaling
// from the EEV horizon (EBR-style estimation).
func BenchmarkAblationA1_TTLIndependentEEV(b *testing.B) {
	runFigureBench(b, benchScenario(experiment.EERFixedEV, 10))
}

// BenchmarkAblationA2_MeanIntervalMD replaces Theorem-2 elapsed-time
// conditioning with plain mean intervals (MEED-style).
func BenchmarkAblationA2_MeanIntervalMD(b *testing.B) {
	runFigureBench(b, benchScenario(experiment.EERMeanMD, 10))
}

// BenchmarkAblationA3_ForwardHysteresis adds a 60 s forwarding hysteresis
// to quantify estimator-noise ping-pong in the single-replica phase.
func BenchmarkAblationA3_ForwardHysteresis(b *testing.B) {
	s := benchScenario(experiment.EER, 10)
	s.ForwardHysteresis = 60
	runFigureBench(b, s)
}

// --- micro-benchmarks of the simulation engine ---

// BenchmarkEngineTicks measures the raw tick rate of the contact engine
// under the paper's vehicular mobility with no traffic: movement,
// incremental grid maintenance, re-check scheduling and contact churn.
// One iteration is one simulated tick. internal/network/bench_test.go
// holds finer-grained engine benchmarks (static fleets, contact rates)
// and the zero-allocation assertions.
func BenchmarkEngineTicks(b *testing.B) {
	s := experiment.Quick()
	s.Nodes = 120
	w, runner := experiment.BuildBare(s, func(int) network.Router { return routing.NewDirect() })
	runner.Run(64 * s.Tick) // warm up grid, wheel and scratch buffers
	start := runner.Now()
	b.ResetTimer()
	runner.Run(start + float64(b.N)*s.Tick)
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ticks/s")
	b.ReportMetric(float64(w.Metrics.Summary().Contacts)/b.Elapsed().Seconds(), "contacts/s")
}

// --- micro-benchmarks of the paper's estimators ---

func benchHistory(n, contacts int) *core.History {
	h := core.NewHistory(0, n, 0)
	rng := xrand.New(1)
	for j := 1; j < n; j++ {
		t := rng.Uniform(0, 50)
		for k := 0; k < contacts; k++ {
			h.RecordContact(j, t)
			t += rng.Uniform(10, 300)
		}
	}
	return h
}

// BenchmarkEEV measures the direct Theorem-1 computation over 240 peers.
func BenchmarkEEV(b *testing.B) {
	h := benchHistory(240, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.EEV(6000, 300)
	}
}

// BenchmarkSnapshotEEV measures snapshot construction plus 40 horizon
// queries — one contact's worth of Algorithm-1 decisions.
func BenchmarkSnapshotEEV(b *testing.B) {
	h := benchHistory(240, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := h.SnapshotEEV(6000)
		for k := 0; k < 40; k++ {
			_ = s.EEV(float64(30 * (k + 1)))
		}
	}
}

// BenchmarkMEMD measures one Theorem-3 computation (MD build + dense
// Dijkstra) at the paper's largest scale, 240 nodes.
func BenchmarkMEMD(b *testing.B) {
	const n = 240
	h := benchHistory(n, 20)
	mi := core.NewFullMeetingMatrix(n)
	mi.UpdateOwnRow(0, 6000, h)
	// Fill remaining rows with plausible averages so Dijkstra has work.
	rng := xrand.New(2)
	for j := 1; j < n; j++ {
		hj := core.NewHistory(j, n, 0)
		for k := 0; k < n; k += 7 {
			if k == j {
				continue
			}
			t0 := rng.Uniform(0, 100)
			hj.RecordContact(k, t0)
			hj.RecordContact(k, t0+rng.Uniform(50, 400))
		}
		mi.UpdateOwnRow(j, 6000, hj)
	}
	calc := core.NewMEMD(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		calc.Compute(0, 6100, h, mi)
		_ = calc.Delay(n - 1)
	}
}

// BenchmarkMIMerge measures the freshness-based MI exchange of Algorithm 1
// line 4 at 240 nodes.
func BenchmarkMIMerge(b *testing.B) {
	const n = 240
	a := core.NewFullMeetingMatrix(n)
	c := core.NewFullMeetingMatrix(n)
	h := benchHistory(n, 4)
	for j := 0; j < n; j += 2 {
		hj := core.NewHistory(j, n, 0)
		hj.RecordContact((j+1)%n, 1)
		hj.RecordContact((j+1)%n, 100)
		a.UpdateOwnRow(j, float64(j), hj)
		c.UpdateOwnRow(j, float64(j+1), hj)
	}
	_ = h
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.SyncPair(a, c)
	}
}

// BenchmarkENEC measures Theorem 4 with 4 communities over 240 nodes.
func BenchmarkENEC(b *testing.B) {
	const n = 240
	h := benchHistory(n, 20)
	communities := make([][]int, 4)
	for i := 0; i < n; i++ {
		communities[i%4] = append(communities[i%4], i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.ENEC(6000, 300, communities, 0)
	}
}
