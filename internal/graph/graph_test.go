package graph

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func diamond() *Graph {
	// 0-1 (1), 0-2 (4), 1-2 (1), 1-3 (5), 2-3 (1)
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 4)
	g.AddEdge(1, 2, 1)
	g.AddEdge(1, 3, 5)
	g.AddEdge(2, 3, 1)
	return g
}

func TestDijkstraDiamond(t *testing.T) {
	g := diamond()
	dist, prev := g.Dijkstra(0)
	want := []float64{0, 1, 2, 3}
	for i, w := range want {
		if dist[i] != w {
			t.Errorf("dist[%d] = %g, want %g", i, dist[i], w)
		}
	}
	path := Path(prev, 0, 3)
	wantPath := []int{0, 1, 2, 3}
	if len(path) != len(wantPath) {
		t.Fatalf("path = %v, want %v", path, wantPath)
	}
	for i := range wantPath {
		if path[i] != wantPath[i] {
			t.Fatalf("path = %v, want %v", path, wantPath)
		}
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	dist, prev := g.Dijkstra(0)
	if !math.IsInf(dist[2], 1) {
		t.Errorf("dist to isolated = %g, want +Inf", dist[2])
	}
	if Path(prev, 0, 2) != nil {
		t.Error("path to isolated should be nil")
	}
	if p, d := g.ShortestPath(0, 2); p != nil || !math.IsInf(d, 1) {
		t.Error("ShortestPath to isolated should be nil, +Inf")
	}
}

func TestPathTrivial(t *testing.T) {
	g := diamond()
	_, prev := g.Dijkstra(2)
	p := Path(prev, 2, 2)
	if len(p) != 1 || p[0] != 2 {
		t.Errorf("self path = %v", p)
	}
}

func TestConnected(t *testing.T) {
	g := diamond()
	if !g.Connected() {
		t.Error("diamond should be connected")
	}
	h := New(3)
	h.AddEdge(0, 1, 1)
	if h.Connected() {
		t.Error("graph with isolated vertex reported connected")
	}
	if !New(0).Connected() {
		t.Error("empty graph should count as connected")
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(2)
	for _, f := range []func(){
		func() { g.AddEdge(0, 1, -1) },
		func() { g.AddEdge(0, 5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestHasEdgeAndDegree(t *testing.T) {
	g := diamond()
	if !g.HasEdge(0, 1) || g.HasEdge(0, 3) {
		t.Error("HasEdge wrong")
	}
	if g.Degree(1) != 3 {
		t.Errorf("Degree(1) = %d, want 3", g.Degree(1))
	}
}

func TestPathCache(t *testing.T) {
	g := diamond()
	c := NewPathCache(g)
	p1 := c.Path(0, 3)
	p2 := c.Path(0, 3)
	if &p1[0] != &p2[0] {
		t.Error("cache did not return the memoised slice")
	}
	if c.Path(3, 0)[0] != 3 {
		t.Error("reverse path wrong")
	}
}

// TestDenseDijkstraMatchesHeap cross-checks the dense O(n²) variant against
// the heap implementation on random dense graphs.
func TestDenseDijkstraMatchesHeap(t *testing.T) {
	rng := xrand.New(7)
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(12)
		g := New(n)
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, n)
			for j := range w[i] {
				w[i][j] = math.Inf(1)
			}
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Bool(0.6) {
					weight := rng.Uniform(0.1, 10)
					g.AddEdge(i, j, weight)
					w[i][j], w[j][i] = weight, weight
				}
			}
		}
		src := rng.Intn(n)
		want, _ := g.Dijkstra(src)
		dist := make([]float64, n)
		DenseDijkstra(w, src, dist)
		for v := 0; v < n; v++ {
			if math.IsInf(want[v], 1) != math.IsInf(dist[v], 1) {
				t.Fatalf("trial %d: reachability mismatch at %d", trial, v)
			}
			if !math.IsInf(want[v], 1) && math.Abs(want[v]-dist[v]) > 1e-9 {
				t.Fatalf("trial %d: dist[%d] = %g, want %g", trial, v, dist[v], want[v])
			}
		}
	}
}

func TestDenseDijkstraAsymmetric(t *testing.T) {
	// Directed weights: 0->1 cheap, 1->0 expensive; Dijkstra from 0 uses
	// row 0.
	w := [][]float64{
		{0, 1, math.Inf(1)},
		{100, 0, 2},
		{math.Inf(1), 2, 0},
	}
	dist := make([]float64, 3)
	DenseDijkstra(w, 0, dist)
	if dist[1] != 1 || dist[2] != 3 {
		t.Errorf("dist = %v, want [0 1 3]", dist)
	}
}

func TestDenseDijkstraLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DenseDijkstra([][]float64{{0}}, 0, make([]float64, 2))
}
