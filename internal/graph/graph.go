// Package graph implements the weighted undirected graphs used for road
// networks (mobility substrate) and for expected-meeting-delay matrices
// (routing substrate). It provides heap-based Dijkstra for sparse road
// graphs and an array-based dense Dijkstra for meeting-delay matrices.
package graph

import (
	"container/heap"
	"fmt"
	"math"
	"sync"
)

// Graph is a weighted undirected graph over vertices 0..n-1 with adjacency
// lists. Edge weights must be non-negative.
type Graph struct {
	n   int
	adj [][]Edge
}

// Edge is a weighted half-edge stored in an adjacency list.
type Edge struct {
	To     int
	Weight float64
}

// New returns an empty graph with n vertices.
func New(n int) *Graph {
	return &Graph{n: n, adj: make([][]Edge, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// AddEdge inserts an undirected edge between u and v. It panics on a
// negative weight or out-of-range vertex.
func (g *Graph) AddEdge(u, v int, w float64) {
	if w < 0 {
		panic(fmt.Sprintf("graph: negative edge weight %g", w))
	}
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n))
	}
	g.adj[u] = append(g.adj[u], Edge{To: v, Weight: w})
	g.adj[v] = append(g.adj[v], Edge{To: u, Weight: w})
}

// Neighbors returns the adjacency list of u (shared; do not mutate).
func (g *Graph) Neighbors(u int) []Edge { return g.adj[u] }

// Degree returns the number of half-edges at u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// HasEdge reports whether an edge u-v exists.
func (g *Graph) HasEdge(u, v int) bool {
	for _, e := range g.adj[u] {
		if e.To == v {
			return true
		}
	}
	return false
}

// item is a priority-queue entry for Dijkstra.
type item struct {
	v    int
	dist float64
}

type pq []item

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(item)) }
func (q *pq) Pop() any          { old := *q; n := len(old); x := old[n-1]; *q = old[:n-1]; return x }

// Dijkstra returns the shortest-path distance from src to every vertex and
// the predecessor array. Unreachable vertices have distance +Inf and
// predecessor -1.
func (g *Graph) Dijkstra(src int) (dist []float64, prev []int) {
	dist = make([]float64, g.n)
	prev = make([]int, g.n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0
	q := &pq{{v: src, dist: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(item)
		if it.dist > dist[it.v] {
			continue // stale entry
		}
		for _, e := range g.adj[it.v] {
			nd := it.dist + e.Weight
			if nd < dist[e.To] {
				dist[e.To] = nd
				prev[e.To] = it.v
				heap.Push(q, item{v: e.To, dist: nd})
			}
		}
	}
	return dist, prev
}

// Path reconstructs the vertex sequence from src to dst given a predecessor
// array produced by Dijkstra(src). It returns nil if dst is unreachable.
func Path(prev []int, src, dst int) []int {
	if src == dst {
		return []int{src}
	}
	if prev[dst] == -1 {
		return nil
	}
	var rev []int
	for v := dst; v != -1; v = prev[v] {
		rev = append(rev, v)
		if v == src {
			break
		}
	}
	if rev[len(rev)-1] != src {
		return nil
	}
	// Reverse in place.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// ShortestPath returns the vertex sequence and total weight of the shortest
// path from src to dst, or (nil, +Inf) if unreachable.
func (g *Graph) ShortestPath(src, dst int) ([]int, float64) {
	dist, prev := g.Dijkstra(src)
	if math.IsInf(dist[dst], 1) {
		return nil, math.Inf(1)
	}
	return Path(prev, src, dst), dist[dst]
}

// Connected reports whether every vertex is reachable from vertex 0.
// An empty graph is connected.
func (g *Graph) Connected() bool {
	if g.n == 0 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[u] {
			if !seen[e.To] {
				seen[e.To] = true
				count++
				stack = append(stack, e.To)
			}
		}
	}
	return count == g.n
}

// PathCache memoises shortest paths on a fixed graph. Bus movement asks
// for the same stop-to-stop paths thousands of times per run. It is safe
// for concurrent use: sharded tick workers and memoised road maps shared
// across pooled simulations all query one cache.
type PathCache struct {
	g  *Graph
	mu sync.RWMutex
	// paths is written once per key under mu; the slices themselves are
	// immutable after insertion.
	paths map[[2]int][]int
}

// NewPathCache returns a cache over g.
func NewPathCache(g *Graph) *PathCache {
	return &PathCache{g: g, paths: make(map[[2]int][]int)}
}

// Path returns the cached shortest path from src to dst (nil if
// unreachable). The returned slice is shared; callers must not mutate it.
// Concurrent callers racing on a miss each compute the (deterministic)
// path outside the lock, but every caller receives the first slice stored,
// so one canonical slice per key circulates.
func (c *PathCache) Path(src, dst int) []int {
	key := [2]int{src, dst}
	c.mu.RLock()
	p, ok := c.paths[key]
	c.mu.RUnlock()
	if ok {
		return p
	}
	p, _ = c.g.ShortestPath(src, dst)
	c.mu.Lock()
	if q, ok := c.paths[key]; ok {
		p = q
	} else {
		c.paths[key] = p
	}
	c.mu.Unlock()
	return p
}

// DenseDijkstra runs Dijkstra on a dense n×n weight matrix w, where
// w[i][j] is the direct edge weight from i to j (+Inf or <=0 off-diagonal
// meaning "no edge"; the diagonal is ignored). It writes shortest-path
// distances from src into dist, which must have length n. This is the
// MEMD computation of Theorem 3: array-based O(n²) beats a heap on a dense
// matrix.
func DenseDijkstra(w [][]float64, src int, dist []float64) {
	DenseDijkstraScratch(w, src, dist, make([]int32, len(w)+1))
}

// DenseDijkstraScratch is DenseDijkstra with caller-provided scratch of
// length n+1, so per-contact callers (MEMD) allocate nothing per run.
func DenseDijkstraScratch(w [][]float64, src int, dist []float64, next []int32) {
	n := len(w)
	if len(dist) != n {
		panic("graph: DenseDijkstra dist length mismatch")
	}
	if len(next) != n+1 {
		panic("graph: DenseDijkstra scratch length mismatch")
	}
	inf := math.Inf(1)
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	// Unvisited vertices form an ascending singly-linked list threaded
	// through next (slot n is the head sentinel), so each pass walks only
	// the remaining vertices instead of flag-checking all n. Each
	// iteration settles u and, in one ascending pass, relaxes u's row
	// while selecting the next closest unvisited vertex. The relaxation
	// of v always happens before v is considered for selection, so the
	// selected vertex — ties resolving to the lowest id — and every
	// distance are bit-identical to the classic two-pass formulation.
	prev := int32(n)
	for v := 0; v < n; v++ {
		if v == src {
			continue
		}
		next[prev] = int32(v)
		prev = int32(v)
	}
	next[prev] = -1
	u, best := src, 0.0
	for u >= 0 {
		row := w[u]
		nu, nbest := int32(-1), inf
		bp := int32(n) // predecessor of nu in the list
		pv := int32(n)
		for v := next[n]; v >= 0; v = next[v] {
			// Relax v via u. ew <= 0 or +Inf means "no edge"; nd is then
			// +Inf or worse and never improves dist[v], but skipping it
			// avoids the float work on sparse rows.
			if ew := row[v]; ew > 0 && ew < inf {
				if nd := best + ew; nd < dist[v] {
					dist[v] = nd
				}
			}
			if dist[v] < nbest {
				nu, nbest, bp = v, dist[v], pv
			}
			pv = v
		}
		if nu >= 0 {
			next[bp] = next[nu] // settle nu: unlink it
		}
		u, best = int(nu), nbest
	}
}
