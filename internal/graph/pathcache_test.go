package graph

import (
	"math"
	"sync"
	"testing"
)

// pathCacheTestGraph builds a 6x6 grid graph with unit-ish weights so
// many distinct shortest paths exist.
func pathCacheTestGraph() *Graph {
	const nx, ny = 6, 6
	g := New(nx * ny)
	v := func(x, y int) int { return y*nx + x }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			if x+1 < nx {
				g.AddEdge(v(x, y), v(x+1, y), 1+0.01*float64(y))
			}
			if y+1 < ny {
				g.AddEdge(v(x, y), v(x, y+1), 1+0.01*float64(x))
			}
		}
	}
	return g
}

// TestPathCacheConcurrent hammers one PathCache from many goroutines over
// the same key set (run under -race in CI): every caller must observe the
// identical canonical slice per key, equal to an uncached shortest path.
func TestPathCacheConcurrent(t *testing.T) {
	g := pathCacheTestGraph()
	c := NewPathCache(g)
	type query struct{ src, dst int }
	var queries []query
	for src := 0; src < g.N(); src += 3 {
		for dst := 0; dst < g.N(); dst += 5 {
			queries = append(queries, query{src, dst})
		}
	}

	const workers = 8
	results := make([][][]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Workers walk the query list in different orders so lookups
			// and first-computations interleave.
			out := make([][]int, len(queries))
			for k := range queries {
				idx := (k*7 + w*13) % len(queries)
				q := queries[idx]
				out[idx] = c.Path(q.src, q.dst)
			}
			results[w] = out
		}(w)
	}
	wg.Wait()

	for qi, q := range queries {
		want, wd := g.ShortestPath(q.src, q.dst)
		if math.IsInf(wd, 1) {
			t.Fatalf("grid graph disconnected at %v", q)
		}
		first := results[0][qi]
		if len(first) != len(want) {
			t.Fatalf("query %v: cached path length %d, want %d", q, len(first), len(want))
		}
		for w := 1; w < workers; w++ {
			got := results[w][qi]
			if len(got) != len(first) {
				t.Fatalf("query %v: workers saw different paths", q)
			}
			// Same canonical backing slice, not merely equal contents.
			if len(first) > 0 && &got[0] != &first[0] {
				t.Fatalf("query %v: workers hold different slice instances", q)
			}
		}
		// And the canonical slice must cost what Dijkstra says.
		var sum float64
		for i := 1; i < len(first); i++ {
			sum += edgeWeight(t, g, first[i-1], first[i])
		}
		if math.Abs(sum-wd) > 1e-9 {
			t.Fatalf("query %v: cached path weight %g, want %g", q, sum, wd)
		}
	}
}

func edgeWeight(t *testing.T, g *Graph, u, v int) float64 {
	t.Helper()
	for _, e := range g.Neighbors(u) {
		if e.To == v {
			return e.Weight
		}
	}
	t.Fatalf("no edge %d-%d on cached path", u, v)
	return 0
}
