package msg

import "testing"

func TestMessageTTL(t *testing.T) {
	m := &Message{ID: 1, From: 0, To: 2, Size: 100, Created: 50, Expire: 1250}
	if m.TTL() != 1200 {
		t.Errorf("TTL = %g", m.TTL())
	}
	if m.ResidualTTL(650) != 600 {
		t.Errorf("ResidualTTL = %g", m.ResidualTTL(650))
	}
	if m.Expired(1250) {
		t.Error("message expired exactly at Expire should not count as expired")
	}
	if !m.Expired(1250.1) {
		t.Error("message past Expire should be expired")
	}
}

func TestNewCopyClampsReplicas(t *testing.T) {
	m := &Message{ID: 1, Created: 0, Expire: 100}
	if c := NewCopy(m, 0); c.Replicas != 1 {
		t.Errorf("Replicas = %d, want 1", c.Replicas)
	}
	if c := NewCopy(m, 10); c.Replicas != 10 {
		t.Errorf("Replicas = %d, want 10", c.Replicas)
	}
}

func TestForkStampsState(t *testing.T) {
	m := &Message{ID: 1, Created: 0, Expire: 100}
	c := NewCopy(m, 10)
	c.Hops = 2
	f := c.Fork(4, 33)
	if f.M != m {
		t.Error("fork must share the message")
	}
	if f.Replicas != 4 || f.Hops != 3 || f.ReceivedAt != 33 {
		t.Errorf("fork state = %+v", f)
	}
	if c.Replicas != 10 {
		t.Error("fork must not mutate the source copy")
	}
}

func TestStringer(t *testing.T) {
	m := &Message{ID: 7, From: 1, To: 2, Size: 64}
	if got := m.String(); got == "" {
		t.Error("empty String()")
	}
}
