// Package msg defines DTN messages and the per-node copies that carry
// them. The immutable Message is shared by every copy in the network; the
// mutable routing state — the replica quota of quota-based protocols, the
// hop count, the arrival time — lives in the per-node Copy.
package msg

import "fmt"

// Message is an immutable end-to-end message.
type Message struct {
	// ID is unique per generated message.
	ID int
	// From and To are the source and destination node ids.
	From, To int
	// Size is the payload size in bytes; transfers take Size/bandwidth
	// seconds of link time.
	Size int
	// Created is the generation time in seconds.
	Created float64
	// Expire is the absolute expiry time: Created + TTL.
	Expire float64
}

// TTL returns the total time-to-live of the message.
func (m *Message) TTL() float64 { return m.Expire - m.Created }

// ResidualTTL returns the remaining lifetime at time t (possibly negative).
// This is the TTL_k that scales the EEV horizon α·TTL_k in the paper.
func (m *Message) ResidualTTL(t float64) float64 { return m.Expire - t }

// Expired reports whether the message is past its lifetime at t.
func (m *Message) Expired(t float64) bool { return t > m.Expire }

// String implements fmt.Stringer.
func (m *Message) String() string {
	return fmt.Sprintf("msg %d (%d->%d, %dB)", m.ID, m.From, m.To, m.Size)
}

// Copy is one node's replica of a message plus its local routing state.
type Copy struct {
	M *Message
	// Replicas is the quota this copy carries (L in Spray-and-Wait, M_k in
	// the paper's Algorithm 1). Protocols without quotas leave it at 1.
	Replicas int
	// Hops counts store-carry-forward hops from the source (0 at source).
	Hops int
	// ReceivedAt is when this node obtained the copy (creation time at the
	// source).
	ReceivedAt float64
}

// NewCopy returns the source copy of m with the given initial quota.
func NewCopy(m *Message, replicas int) *Copy {
	if replicas < 1 {
		replicas = 1
	}
	return &Copy{M: m, Replicas: replicas, ReceivedAt: m.Created}
}

// Fork returns the copy handed to the next hop carrying the given share of
// the quota, stamped with the arrival time.
func (c *Copy) Fork(share int, t float64) *Copy {
	return &Copy{M: c.M, Replicas: share, Hops: c.Hops + 1, ReceivedAt: t}
}
