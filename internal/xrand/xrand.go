// Package xrand provides deterministic, splittable random number streams.
//
// Every stochastic component of the simulator draws from a named stream so
// that a (scenario, seed) pair reproduces a run bit-for-bit regardless of
// the order in which subsystems are initialised. Streams are derived from a
// root seed by hashing the stream name with FNV-1a, so adding a new stream
// never perturbs existing ones.
package xrand

import (
	"hash/fnv"
	"math/rand"
)

// Source is a deterministic random stream. It wraps math/rand.Rand around a
// splitmix64 state and adds a few distribution helpers used throughout the
// simulator.
type Source struct {
	rng *rand.Rand
}

// sm64 is a splitmix64 generator implementing math/rand.Source64. Unlike
// rand.NewSource's lagged-Fibonacci state, constructing one is a single
// integer write — world construction derives one stream per node, which at
// city scale (10⁴+ nodes) made the 607-word seeding loop the dominant cost
// of Scenario.Build. Streams produced by splitmix64 differ from the old
// math/rand streams, so golden fixtures were regenerated when this landed
// (see DESIGN.md "Determinism contract").
type sm64 uint64

func (s *sm64) Uint64() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *sm64) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *sm64) Seed(seed int64) { *s = sm64(seed) }

// New returns a stream seeded directly with seed.
func New(seed int64) *Source {
	src := sm64(seed)
	return &Source{rng: rand.New(&src)}
}

// Derive returns an independent stream derived from a root seed and a name.
// The same (seed, name) pair always yields the same stream.
func Derive(seed int64, name string) *Source {
	h := fnv.New64a()
	// The write cannot fail on a hash.
	_, _ = h.Write([]byte(name))
	return New(seed ^ int64(h.Sum64()))
}

// Derive returns a child stream of s identified by name. Children of the
// same parent with distinct names are independent.
func (s *Source) Derive(name string) *Source {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return New(s.rng.Int63() ^ int64(h.Sum64()))
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int { return s.rng.Intn(n) }

// Int63 returns a non-negative uniform int64.
func (s *Source) Int63() int64 { return s.rng.Int63() }

// Uniform returns a uniform value in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.rng.Float64()
}

// UniformInt returns a uniform int in [lo, hi]. It panics if hi < lo.
func (s *Source) UniformInt(lo, hi int) int {
	if hi < lo {
		panic("xrand: UniformInt with hi < lo")
	}
	return lo + s.rng.Intn(hi-lo+1)
}

// Exp returns an exponentially distributed value with the given mean.
func (s *Source) Exp(mean float64) float64 {
	return s.rng.ExpFloat64() * mean
}

// Norm returns a normally distributed value with the given mean and
// standard deviation.
func (s *Source) Norm(mean, stddev float64) float64 {
	return s.rng.NormFloat64()*stddev + mean
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// Shuffle pseudo-randomises the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.rng.Shuffle(n, swap) }

// Pick returns a uniformly chosen element index with the given weights.
// Zero-total weights fall back to a uniform choice. It panics on an empty
// slice.
func (s *Source) Pick(weights []float64) int {
	if len(weights) == 0 {
		panic("xrand: Pick with empty weights")
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return s.Intn(len(weights))
	}
	x := s.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.rng.Float64() < p }
