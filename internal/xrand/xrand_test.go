package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestDeriveStable(t *testing.T) {
	a := Derive(7, "mobility")
	b := Derive(7, "mobility")
	c := Derive(7, "traffic")
	same, diff := true, false
	for i := 0; i < 50; i++ {
		va, vb, vc := a.Float64(), b.Float64(), c.Float64()
		if va != vb {
			same = false
		}
		if va != vc {
			diff = true
		}
	}
	if !same {
		t.Error("Derive with same name diverged")
	}
	if !diff {
		t.Error("Derive with different names produced identical streams")
	}
}

func TestChildDerive(t *testing.T) {
	p1 := New(1)
	p2 := New(1)
	if p1.Derive("x").Float64() != p2.Derive("x").Float64() {
		t.Error("child streams not reproducible")
	}
}

func TestUniformRange(t *testing.T) {
	s := New(3)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform out of range: %g", v)
		}
	}
}

func TestUniformIntRange(t *testing.T) {
	s := New(3)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := s.UniformInt(2, 4)
		if v < 2 || v > 4 {
			t.Fatalf("UniformInt out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 3 {
		t.Errorf("UniformInt did not cover range: %v", seen)
	}
}

func TestUniformIntInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).UniformInt(5, 4)
}

func TestExpMean(t *testing.T) {
	s := New(9)
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		sum += s.Exp(10)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.5 {
		t.Errorf("Exp mean = %g, want ~10", mean)
	}
}

func TestPickWeighted(t *testing.T) {
	s := New(5)
	counts := [3]int{}
	for i := 0; i < 30000; i++ {
		counts[s.Pick([]float64{1, 0, 3})]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight option picked %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("weight ratio = %g, want ~3", ratio)
	}
}

func TestPickZeroTotalUniform(t *testing.T) {
	s := New(5)
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		seen[s.Pick([]float64{0, 0, 0})] = true
	}
	if len(seen) != 3 {
		t.Errorf("zero-weight Pick not uniform: %v", seen)
	}
}

func TestPickEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Pick(nil)
}

func TestPermIsPermutation(t *testing.T) {
	p := New(11).Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}
