// Package metrics accumulates the three figures of merit of the paper's
// evaluation — delivery ratio, average latency and goodput — plus the
// auxiliary counters (relays, drops, aborts, expiries, hop counts) that
// the harness and tests use to explain them.
package metrics

import (
	"fmt"
	"sort"

	"repro/internal/obs"
)

// Collector tallies a single simulation run. It is not safe for concurrent
// use; each run owns one.
type Collector struct {
	generated int
	delivered int
	relays    int
	drops     int
	aborts    int
	expired   int
	refused   int
	contacts  int

	latencySum float64
	hopSum     int
	latencies  []float64

	gossipRows        int
	gossipEntries     int
	gossipBytes       int
	gossipDigestBytes int

	deliveredIDs map[int]bool
	createdAt    map[int]float64
}

// New returns an empty collector.
func New() *Collector {
	return &Collector{
		deliveredIDs: make(map[int]bool),
		createdAt:    make(map[int]float64),
	}
}

// MessageCreated records a generated message.
func (c *Collector) MessageCreated(id int, t float64) {
	c.generated++
	c.createdAt[id] = t
}

// MessageRelayed records one completed node-to-node transfer (including the
// final hop to the destination) — the denominator of goodput.
func (c *Collector) MessageRelayed() { c.relays++ }

// MessageDelivered records the arrival of message id at its destination at
// time t with the given hop count. Duplicate deliveries of the same message
// are counted once, matching the paper's "at least one replica arrives"
// success criterion. It reports whether this was the first delivery.
func (c *Collector) MessageDelivered(id int, t float64, hops int) bool {
	if c.deliveredIDs[id] {
		return false
	}
	c.deliveredIDs[id] = true
	c.delivered++
	lat := t - c.createdAt[id]
	c.latencySum += lat
	c.latencies = append(c.latencies, lat)
	c.hopSum += hops
	return true
}

// Delivered reports whether message id has reached its destination.
func (c *Collector) Delivered(id int) bool { return c.deliveredIDs[id] }

// MessageDropped records a buffer eviction.
func (c *Collector) MessageDropped() { c.drops++ }

// MessageExpired records a TTL expiry purge.
func (c *Collector) MessageExpired() { c.expired++ }

// MessagesExpired records n TTL expiry purges at once — the sharded expiry
// sweep counts per shard and merges here.
func (c *Collector) MessagesExpired(n int) { c.expired += n }

// MessageRefused records a buffer refusal (message larger than buffer).
func (c *Collector) MessageRefused() { c.refused++ }

// TransferAborted records a transfer cut off by contact loss.
func (c *Collector) TransferAborted() { c.aborts++ }

// EstimatorExchanged records one direction's worth of estimator link-state
// gossip (MI rows, MaxProp probability vectors) copied during a contact:
// rows replaced because the sender's were fresher, the known entries those
// rows carried, and the serialized volume they stand for — bytes already
// includes digestBytes, the digest/request overhead a delta exchange adds
// (0 in the legacy fresher accounting). Metadata exchange is free in the
// simulated link model (matching ONE and the paper's cost accounting);
// these counters make its volume visible in run summaries.
func (c *Collector) EstimatorExchanged(rows, entries, bytes, digestBytes int) {
	c.gossipRows += rows
	c.gossipEntries += entries
	c.gossipBytes += bytes
	c.gossipDigestBytes += digestBytes
}

// GossipBytes returns the accumulated estimator exchange volume in bytes.
func (c *Collector) GossipBytes() int { return c.gossipBytes }

// ContactStarted records a new pairwise contact.
func (c *Collector) ContactStarted() { c.contacts++ }

// Contacts returns the number of pairwise contacts observed.
func (c *Collector) Contacts() int { return c.contacts }

// Generated returns the number of generated messages.
func (c *Collector) Generated() int { return c.generated }

// DeliveredCount returns the number of distinct delivered messages.
func (c *Collector) DeliveredCount() int { return c.delivered }

// Relays returns the number of completed transfers.
func (c *Collector) Relays() int { return c.relays }

// Drops returns the number of buffer evictions.
func (c *Collector) Drops() int { return c.drops }

// Aborts returns the number of aborted transfers.
func (c *Collector) Aborts() int { return c.aborts }

// Expired returns the number of TTL purges.
func (c *Collector) Expired() int { return c.expired }

// DeliveryRatio returns delivered/generated (0 when nothing was generated).
func (c *Collector) DeliveryRatio() float64 {
	if c.generated == 0 {
		return 0
	}
	return float64(c.delivered) / float64(c.generated)
}

// AvgLatency returns the mean delivery delay over delivered messages.
func (c *Collector) AvgLatency() float64 {
	if c.delivered == 0 {
		return 0
	}
	return c.latencySum / float64(c.delivered)
}

// MedianLatency returns the median delivery delay.
func (c *Collector) MedianLatency() float64 {
	if len(c.latencies) == 0 {
		return 0
	}
	s := append([]float64(nil), c.latencies...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// Goodput returns delivered/relays — the paper's third metric (0 when no
// transfer completed).
func (c *Collector) Goodput() float64 {
	if c.relays == 0 {
		return 0
	}
	return float64(c.delivered) / float64(c.relays)
}

// OverheadRatio returns (relays-delivered)/delivered, ONE's overhead metric
// (0 when nothing was delivered).
func (c *Collector) OverheadRatio() float64 {
	if c.delivered == 0 {
		return 0
	}
	return float64(c.relays-c.delivered) / float64(c.delivered)
}

// AvgHops returns the mean hop count of delivered messages.
func (c *Collector) AvgHops() float64 {
	if c.delivered == 0 {
		return 0
	}
	return float64(c.hopSum) / float64(c.delivered)
}

// Summary is a value snapshot of a collector, convenient for averaging
// across seeds and rendering. The JSON field names are the wire contract of
// the dtnd result cache and API: two builds that agree on simulation
// semantics produce byte-identical marshalled summaries.
type Summary struct {
	Generated int `json:"generated"`
	Delivered int `json:"delivered"`
	Relays    int `json:"relays"`
	Drops     int `json:"drops"`
	Aborts    int `json:"aborts"`
	Expired   int `json:"expired"`
	Contacts  int `json:"contacts"`

	// Estimator exchange volume: link-state rows gossiped at contacts, the
	// known entries they carried, and their serialized byte volume.
	// GossipDigestBytes breaks out the digest/request overhead of delta
	// gossip (already included in GossipBytes); zero under the legacy
	// fresher accounting, and omitted from JSON then so historical figure
	// fixtures stay byte-identical.
	GossipRows        int `json:"gossip_rows"`
	GossipEntries     int `json:"gossip_entries"`
	GossipBytes       int `json:"gossip_bytes"`
	GossipDigestBytes int `json:"gossip_digest_bytes,omitempty"`

	DeliveryRatio float64 `json:"delivery_ratio"`
	AvgLatency    float64 `json:"avg_latency"`
	MedianLatency float64 `json:"median_latency"`
	Goodput       float64 `json:"goodput"`
	OverheadRatio float64 `json:"overhead_ratio"`
	AvgHops       float64 `json:"avg_hops"`

	// Timing is the engine phase profile of the run that produced this
	// summary — present only when profiling was requested, nil (and
	// omitted from JSON) otherwise. Wall-clock time is not deterministic,
	// so Timing is NOT part of the wire contract above: the result cache
	// strips it before persisting (experiment.CellResultOf), keeping
	// cached bytes and golden fixtures identical whether or not the run
	// was profiled.
	Timing *obs.Timing `json:"timing,omitempty"`
}

// Summary returns the current snapshot.
func (c *Collector) Summary() Summary {
	return Summary{
		Generated:         c.generated,
		Delivered:         c.delivered,
		Relays:            c.relays,
		Drops:             c.drops,
		Aborts:            c.aborts,
		Expired:           c.expired,
		Contacts:          c.contacts,
		GossipRows:        c.gossipRows,
		GossipEntries:     c.gossipEntries,
		GossipBytes:       c.gossipBytes,
		GossipDigestBytes: c.gossipDigestBytes,
		DeliveryRatio:     c.DeliveryRatio(),
		AvgLatency:        c.AvgLatency(),
		MedianLatency:     c.MedianLatency(),
		Goodput:           c.Goodput(),
		OverheadRatio:     c.OverheadRatio(),
		AvgHops:           c.AvgHops(),
	}
}

// String implements fmt.Stringer with the three paper metrics first.
func (s Summary) String() string {
	return fmt.Sprintf("delivery=%.3f latency=%.1fs goodput=%.4f (gen=%d del=%d relay=%d drop=%d)",
		s.DeliveryRatio, s.AvgLatency, s.Goodput, s.Generated, s.Delivered, s.Relays, s.Drops)
}

// Progress is one live progress event of a running simulation job — the
// NDJSON records the dtnd streaming endpoint emits. Seed indexes the
// spec's seed list (0-based); T advances to Duration within each seed run.
// Frac is overall job completion across all seeds in [0, 1]. The terminal
// event of a job carries Done=true and the result summary.
type Progress struct {
	Seed     int      `json:"seed"`
	Seeds    int      `json:"seeds"`
	T        float64  `json:"t"`
	Duration float64  `json:"duration"`
	Frac     float64  `json:"frac"`
	Done     bool     `json:"done,omitempty"`
	Error    string   `json:"error,omitempty"`
	Summary  *Summary `json:"summary,omitempty"`
	// Timing rides the terminal event of profiled daemon jobs: the
	// job's engine phase profile, kept outside Summary so the cached
	// (deterministic) result bytes stay timing-free.
	Timing *obs.Timing `json:"timing,omitempty"`
}

// Mean averages a set of summaries component-wise (counts become means
// too, which keeps the printout informative).
func Mean(ss []Summary) Summary {
	if len(ss) == 0 {
		return Summary{}
	}
	var out Summary
	n := float64(len(ss))
	for _, s := range ss {
		out.Generated += s.Generated
		out.Delivered += s.Delivered
		out.Relays += s.Relays
		out.Drops += s.Drops
		out.Aborts += s.Aborts
		out.Expired += s.Expired
		out.Contacts += s.Contacts
		out.GossipRows += s.GossipRows
		out.GossipEntries += s.GossipEntries
		out.GossipBytes += s.GossipBytes
		out.GossipDigestBytes += s.GossipDigestBytes
		out.DeliveryRatio += s.DeliveryRatio
		out.AvgLatency += s.AvgLatency
		out.MedianLatency += s.MedianLatency
		out.Goodput += s.Goodput
		out.OverheadRatio += s.OverheadRatio
		out.AvgHops += s.AvgHops
		// Timing folds (sums, not means): the merged block spans all runs.
		out.Timing = obs.MergeTiming(out.Timing, s.Timing)
	}
	out.Generated = int(float64(out.Generated)/n + 0.5)
	out.Delivered = int(float64(out.Delivered)/n + 0.5)
	out.Relays = int(float64(out.Relays)/n + 0.5)
	out.Drops = int(float64(out.Drops)/n + 0.5)
	out.Aborts = int(float64(out.Aborts)/n + 0.5)
	out.Expired = int(float64(out.Expired)/n + 0.5)
	out.Contacts = int(float64(out.Contacts)/n + 0.5)
	out.GossipRows = int(float64(out.GossipRows)/n + 0.5)
	out.GossipEntries = int(float64(out.GossipEntries)/n + 0.5)
	out.GossipBytes = int(float64(out.GossipBytes)/n + 0.5)
	out.GossipDigestBytes = int(float64(out.GossipDigestBytes)/n + 0.5)
	out.DeliveryRatio /= n
	out.AvgLatency /= n
	out.MedianLatency /= n
	out.Goodput /= n
	out.OverheadRatio /= n
	out.AvgHops /= n
	return out
}
