package metrics

import (
	"math"
	"testing"
)

func TestDeliveryAccounting(t *testing.T) {
	c := New()
	c.MessageCreated(1, 0)
	c.MessageCreated(2, 10)
	c.MessageCreated(3, 20)
	c.MessageRelayed()
	c.MessageRelayed()
	c.MessageRelayed()
	c.MessageRelayed()
	if !c.MessageDelivered(1, 100, 2) {
		t.Fatal("first delivery not counted")
	}
	if c.MessageDelivered(1, 150, 3) {
		t.Fatal("duplicate delivery counted")
	}
	c.MessageDelivered(2, 110, 4)

	if c.Generated() != 3 || c.DeliveredCount() != 2 || c.Relays() != 4 {
		t.Fatalf("counts: gen=%d del=%d relay=%d", c.Generated(), c.DeliveredCount(), c.Relays())
	}
	if got := c.DeliveryRatio(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("DeliveryRatio = %g", got)
	}
	if got := c.AvgLatency(); got != 100 { // (100 + 100) / 2
		t.Errorf("AvgLatency = %g", got)
	}
	if got := c.Goodput(); got != 0.5 {
		t.Errorf("Goodput = %g", got)
	}
	if got := c.OverheadRatio(); got != 1 {
		t.Errorf("OverheadRatio = %g", got)
	}
	if got := c.AvgHops(); got != 3 {
		t.Errorf("AvgHops = %g", got)
	}
	if !c.Delivered(1) || c.Delivered(3) {
		t.Error("Delivered lookup wrong")
	}
}

func TestEmptyCollectorSafeRatios(t *testing.T) {
	c := New()
	if c.DeliveryRatio() != 0 || c.AvgLatency() != 0 || c.Goodput() != 0 ||
		c.OverheadRatio() != 0 || c.AvgHops() != 0 || c.MedianLatency() != 0 {
		t.Error("empty collector ratios should all be 0")
	}
}

func TestMedianLatency(t *testing.T) {
	c := New()
	for i, lat := range []float64{50, 10, 40} {
		c.MessageCreated(i, 0)
		c.MessageDelivered(i, lat, 1)
	}
	if got := c.MedianLatency(); got != 40 {
		t.Errorf("MedianLatency odd = %g, want 40", got)
	}
	c.MessageCreated(9, 0)
	c.MessageDelivered(9, 20, 1)
	if got := c.MedianLatency(); got != 30 {
		t.Errorf("MedianLatency even = %g, want 30", got)
	}
}

func TestAuxCounters(t *testing.T) {
	c := New()
	c.MessageDropped()
	c.MessageExpired()
	c.MessageExpired()
	c.TransferAborted()
	c.MessageRefused()
	c.ContactStarted()
	s := c.Summary()
	if s.Drops != 1 || s.Expired != 2 || s.Aborts != 1 || s.Contacts != 1 {
		t.Errorf("summary = %+v", s)
	}
}

func TestMean(t *testing.T) {
	a := Summary{Generated: 10, Delivered: 4, Relays: 100, DeliveryRatio: 0.4, AvgLatency: 100, Goodput: 0.04}
	b := Summary{Generated: 12, Delivered: 8, Relays: 200, DeliveryRatio: 0.8, AvgLatency: 300, Goodput: 0.08}
	m := Mean([]Summary{a, b})
	if m.Generated != 11 || m.Delivered != 6 || m.Relays != 150 {
		t.Errorf("mean counts = %+v", m)
	}
	if math.Abs(m.DeliveryRatio-0.6) > 1e-12 || m.AvgLatency != 200 || math.Abs(m.Goodput-0.06) > 1e-12 {
		t.Errorf("mean ratios = %+v", m)
	}
	if got := Mean(nil); got != (Summary{}) {
		t.Error("Mean(nil) should be zero")
	}
}

func TestSummaryString(t *testing.T) {
	s := Summary{DeliveryRatio: 0.5}
	if s.String() == "" {
		t.Error("empty String")
	}
}
