package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	a := Point{1, 2}
	b := Point{4, 6}
	if got := a.Add(b); got != (Point{5, 8}) {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a); got != (Point{3, 4}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 16 {
		t.Errorf("Dot = %g", got)
	}
	if got := b.Sub(a).Norm(); got != 5 {
		t.Errorf("Norm = %g", got)
	}
	if got := a.Dist(b); got != 5 {
		t.Errorf("Dist = %g", got)
	}
	if got := a.Dist2(b); got != 25 {
		t.Errorf("Dist2 = %g", got)
	}
}

func TestLerp(t *testing.T) {
	a, b := Point{0, 0}, Point{10, 20}
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v", got)
	}
	if got := a.Lerp(b, 0.5); got != (Point{5, 10}) {
		t.Errorf("Lerp(0.5) = %v", got)
	}
}

func TestPropDist2MatchesDist(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		ax, ay = math.Mod(ax, 1e6), math.Mod(ay, 1e6)
		bx, by = math.Mod(bx, 1e6), math.Mod(by, 1e6)
		if math.IsNaN(ax + ay + bx + by) {
			return true
		}
		a, b := Point{ax, ay}, Point{bx, by}
		d := a.Dist(b)
		return math.Abs(d*d-a.Dist2(b)) <= 1e-6*(1+d*d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRect(t *testing.T) {
	r := NewRect(Point{10, 20}, Point{0, 5})
	if r.Min != (Point{0, 5}) || r.Max != (Point{10, 20}) {
		t.Fatalf("NewRect normalisation: %+v", r)
	}
	if r.Width() != 10 || r.Height() != 15 {
		t.Errorf("Width/Height = %g, %g", r.Width(), r.Height())
	}
	if !r.Contains(Point{5, 10}) || r.Contains(Point{11, 10}) {
		t.Error("Contains wrong")
	}
	if got := r.Clamp(Point{-5, 30}); got != (Point{0, 20}) {
		t.Errorf("Clamp = %v", got)
	}
	if got := r.Center(); got != (Point{5, 12.5}) {
		t.Errorf("Center = %v", got)
	}
}

func TestPolylineWalk(t *testing.T) {
	pl := NewPolyline([]Point{{0, 0}, {10, 0}, {10, 10}})
	if pl.Length() != 20 {
		t.Fatalf("Length = %g, want 20", pl.Length())
	}
	cases := []struct {
		s    float64
		want Point
	}{
		{-5, Point{0, 0}},
		{0, Point{0, 0}},
		{5, Point{5, 0}},
		{10, Point{10, 0}},
		{15, Point{10, 5}},
		{20, Point{10, 10}},
		{99, Point{10, 10}},
	}
	for _, c := range cases {
		if got := pl.At(c.s); got.Dist(c.want) > 1e-12 {
			t.Errorf("At(%g) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestPolylineSinglePoint(t *testing.T) {
	pl := NewPolyline([]Point{{3, 4}})
	if pl.Length() != 0 {
		t.Errorf("Length = %g", pl.Length())
	}
	if got := pl.At(5); got != (Point{3, 4}) {
		t.Errorf("At = %v", got)
	}
}

func TestPolylineEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPolyline(nil)
}

// TestPropPolylineAtOnCurve: every sampled point lies within the polyline
// bounding box and arc distances are consistent.
func TestPropPolylineAtOnCurve(t *testing.T) {
	pl := NewPolyline([]Point{{0, 0}, {3, 4}, {10, 4}, {10, 0}})
	f := func(s float64) bool {
		s = math.Mod(math.Abs(s), pl.Length())
		p := pl.At(s)
		return p.X >= -1e-9 && p.X <= 10+1e-9 && p.Y >= -1e-9 && p.Y <= 4+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPolylineAtHintMatchesAt proves the hint-based walk resolves the
// same segment as the binary search for every arc length and any starting
// hint, including zero-length segments and out-of-range hints.
func TestPolylineAtHintMatchesAt(t *testing.T) {
	pls := []*Polyline{
		NewPolyline([]Point{{0, 0}, {3, 4}, {10, 4}, {10, 0}, {-5, 0}}),
		NewPolyline([]Point{{0, 0}, {0, 0}, {2, 0}, {2, 0}, {5, 0}}), // zero-length segments
		NewPolyline([]Point{{1, 1}}),
	}
	for pi, pl := range pls {
		for _, hint := range []int{-3, 0, 1, 2, 50} {
			h := hint
			for i := 0; i <= 200; i++ {
				s := pl.Length() * (float64(i)/200*1.2 - 0.1) // includes < 0 and > Length
				want := pl.At(s)
				var got Point
				got, h = pl.AtHint(s, h)
				if got != want {
					t.Fatalf("polyline %d: AtHint(%g, hint) = %v, At = %v", pi, s, got, want)
				}
			}
		}
	}
}
