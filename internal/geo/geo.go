// Package geo provides the small amount of 2-D geometry the simulator
// needs: points, segments, polylines walked by arc length, and rectangles.
// Distances are in metres throughout the repository.
package geo

import (
	"fmt"
	"math"
)

// Point is a 2-D location in metres.
type Point struct {
	X, Y float64
}

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Dot returns the dot product of p and q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Norm returns the Euclidean length of p as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Dist2 returns the squared distance between p and q. It avoids the sqrt in
// hot contact-detection loops.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Lerp returns the point a fraction t of the way from p to q.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.1f, %.1f)", p.X, p.Y) }

// Rect is an axis-aligned rectangle.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanning the two corner points in any order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// Width returns the horizontal extent.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Contains reports whether p lies inside r (inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Clamp returns p moved to the nearest point inside r.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Max(r.Min.X, math.Min(r.Max.X, p.X)),
		Y: math.Max(r.Min.Y, math.Min(r.Max.Y, p.Y)),
	}
}

// Center returns the midpoint of r.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Polyline is an open chain of points walked by arc length.
type Polyline struct {
	pts   []Point
	cum   []float64 // cumulative length up to each vertex
	total float64
}

// NewPolyline builds a polyline over pts. It panics on fewer than one point.
func NewPolyline(pts []Point) *Polyline {
	if len(pts) == 0 {
		panic("geo: empty polyline")
	}
	pl := &Polyline{pts: append([]Point(nil), pts...)}
	pl.cum = make([]float64, len(pts))
	for i := 1; i < len(pts); i++ {
		pl.cum[i] = pl.cum[i-1] + pts[i-1].Dist(pts[i])
	}
	pl.total = pl.cum[len(pts)-1]
	return pl
}

// Length returns the total arc length.
func (pl *Polyline) Length() float64 { return pl.total }

// Points returns the underlying vertices (shared; do not mutate).
func (pl *Polyline) Points() []Point { return pl.pts }

// At returns the point at arc length s from the start. s is clamped to
// [0, Length].
func (pl *Polyline) At(s float64) Point {
	if s <= 0 || len(pl.pts) == 1 {
		return pl.pts[0]
	}
	if s >= pl.total {
		return pl.pts[len(pl.pts)-1]
	}
	// Binary search for the segment containing s: the largest lo with
	// cum[lo] <= s.
	lo, hi := 0, len(pl.cum)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if pl.cum[mid] <= s {
			lo = mid
		} else {
			hi = mid
		}
	}
	return pl.at(s, lo)
}

// AtHint is At with a caller-kept segment hint: a walker that advances
// monotonically along the line (a bus driving a leg) resolves the
// containing segment in amortised O(1) instead of a binary search per
// tick. It returns the point and the hint to pass to the next call.
// Results are bit-identical to At for every s and any hint.
func (pl *Polyline) AtHint(s float64, hint int) (Point, int) {
	if s <= 0 || len(pl.pts) == 1 {
		return pl.pts[0], 0
	}
	if s >= pl.total {
		return pl.pts[len(pl.pts)-1], len(pl.cum) - 2
	}
	// Walk the hint to the largest lo with cum[lo] <= s — the same
	// segment the binary search in At selects.
	lo := hint
	if lo > len(pl.cum)-2 {
		lo = len(pl.cum) - 2
	}
	if lo < 0 {
		lo = 0
	}
	for lo > 0 && pl.cum[lo] > s {
		lo--
	}
	for lo+1 < len(pl.cum)-1 && pl.cum[lo+1] <= s {
		lo++
	}
	return pl.at(s, lo), lo
}

// at interpolates within segment [lo, lo+1] at arc length s.
func (pl *Polyline) at(s float64, lo int) Point {
	hi := lo + 1
	segLen := pl.cum[hi] - pl.cum[lo]
	if segLen <= 0 {
		return pl.pts[lo]
	}
	t := (s - pl.cum[lo]) / segLen
	return pl.pts[lo].Lerp(pl.pts[hi], t)
}
