package mapgen

import (
	"testing"
)

func TestGenerateDefault(t *testing.T) {
	rm := Generate(DefaultConfig(), 1)
	if !rm.Graph.Connected() {
		t.Fatal("road graph must be connected")
	}
	cfg := DefaultConfig()
	if rm.Graph.N() != cfg.GridX*cfg.GridY {
		t.Errorf("vertices = %d, want %d", rm.Graph.N(), cfg.GridX*cfg.GridY)
	}
	for v, p := range rm.Points {
		if !rm.Bounds.Contains(p) {
			t.Fatalf("vertex %d at %v outside bounds %v", v, p, rm.Bounds)
		}
	}
	if len(rm.Lines) != cfg.Lines {
		t.Fatalf("lines = %d, want %d", len(rm.Lines), cfg.Lines)
	}
	for _, l := range rm.Lines {
		if len(l.Stops) != cfg.StopsPerLine {
			t.Errorf("line %d has %d stops, want %d", l.ID, len(l.Stops), cfg.StopsPerLine)
		}
		if l.District < 0 || l.District >= cfg.Districts {
			t.Errorf("line %d district %d out of range", l.ID, l.District)
		}
		for _, s := range l.Stops {
			if s < 0 || s >= rm.Graph.N() {
				t.Errorf("line %d stop %d out of range", l.ID, s)
			}
		}
	}
	if rm.Districts() != cfg.Districts {
		t.Errorf("Districts = %d, want %d", rm.Districts(), cfg.Districts)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig(), 7)
	b := Generate(DefaultConfig(), 7)
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatal("points differ for identical seeds")
		}
	}
	for i := range a.Lines {
		if len(a.Lines[i].Stops) != len(b.Lines[i].Stops) {
			t.Fatal("lines differ for identical seeds")
		}
		for j := range a.Lines[i].Stops {
			if a.Lines[i].Stops[j] != b.Lines[i].Stops[j] {
				t.Fatal("stops differ for identical seeds")
			}
		}
	}
	c := Generate(DefaultConfig(), 8)
	same := true
	for i := range a.Points {
		if a.Points[i] != c.Points[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical jitter")
	}
}

func TestLegPathEndpoints(t *testing.T) {
	rm := Generate(DefaultConfig(), 1)
	l := rm.Lines[0]
	for i := 0; i < len(l.Stops); i++ {
		a := l.Stops[i]
		b := l.Stops[(i+1)%len(l.Stops)]
		pts := rm.LegPath(a, b)
		if len(pts) == 0 {
			t.Fatalf("empty leg path %d->%d", a, b)
		}
		if pts[0] != rm.Points[a] || pts[len(pts)-1] != rm.Points[b] {
			t.Fatalf("leg path endpoints wrong for %d->%d", a, b)
		}
	}
}

func TestLineOfNodeRoundRobin(t *testing.T) {
	rm := Generate(DefaultConfig(), 1)
	n := len(rm.Lines)
	for i := 0; i < 3*n; i++ {
		if rm.LineOfNode(i).ID != i%n {
			t.Fatalf("LineOfNode(%d) = %d", i, rm.LineOfNode(i).ID)
		}
		if rm.DistrictOfNode(i) != rm.Lines[i%n].District {
			t.Fatalf("DistrictOfNode(%d) mismatch", i)
		}
	}
}

// TestLinesBridgeDistricts verifies the ring-bridging property that keeps
// the DTN connected: every line (when more than one district exists)
// touches its own district and the next one.
func TestLinesBridgeDistricts(t *testing.T) {
	cfg := DefaultConfig()
	rm := Generate(cfg, 3)
	nx, ny := cfg.GridX, cfg.GridY
	districtOf := func(v int) int {
		ix, iy := v%nx, v/nx
		for d := 0; d < cfg.Districts; d++ {
			x0, x1, y0, y1 := districtRect(d, cfg.Districts, nx, ny)
			if ix >= x0 && ix <= x1 && iy >= y0 && iy <= y1 {
				return d
			}
		}
		return -1
	}
	for _, l := range rm.Lines {
		foundNext := false
		next := (l.District + 1) % cfg.Districts
		for _, s := range l.Stops {
			if districtOf(s) == next {
				foundNext = true
			}
		}
		if !foundNext {
			t.Errorf("line %d (district %d) has no stop in district %d", l.ID, l.District, next)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	for name, mutate := range map[string]func(*Config){
		"tiny grid":  func(c *Config) { c.GridX = 1 },
		"no lines":   func(c *Config) { c.Lines = 0 },
		"one stop":   func(c *Config) { c.StopsPerLine = 1 },
		"no distrct": func(c *Config) { c.Districts = 0 },
	} {
		cfg := DefaultConfig()
		mutate(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			Generate(cfg, 1)
		}()
	}
}

func TestSingleDistrict(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Districts = 1
	cfg.Lines = 3
	rm := Generate(cfg, 2)
	if rm.Districts() != 1 {
		t.Errorf("Districts = %d", rm.Districts())
	}
}
