package mapgen

import (
	"sync"
	"testing"
)

// TestLoadMemoisesAcrossConcurrentCallers proves Load returns one shared
// RoadMap per (Config, seed) even under a thundering herd (run with -race
// in CI), distinct maps for distinct keys, and content identical to a
// fresh Generate.
func TestLoadMemoisesAcrossConcurrentCallers(t *testing.T) {
	cfg := DefaultConfig()
	const seed = 9731 // private to this test so prior Loads can't pre-seed it

	const callers = 16
	got := make([]*RoadMap, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = Load(cfg, seed)
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if got[i] != got[0] {
			t.Fatalf("caller %d received a different RoadMap instance", i)
		}
	}

	if other := Load(cfg, seed+1); other == got[0] {
		t.Fatal("different seed returned the same RoadMap")
	}
	cfg2 := cfg
	cfg2.Lines++
	if other := Load(cfg2, seed); other == got[0] {
		t.Fatal("different config returned the same RoadMap")
	}

	// The memoised map is what Generate would have built.
	fresh := Generate(cfg, seed)
	rm := got[0]
	if fresh == rm {
		t.Fatal("Generate returned the memoised instance")
	}
	if fresh.Graph.N() != rm.Graph.N() || len(fresh.Lines) != len(rm.Lines) || len(fresh.Points) != len(rm.Points) {
		t.Fatalf("memoised map differs from fresh generation: %d/%d vertices, %d/%d lines",
			rm.Graph.N(), fresh.Graph.N(), len(rm.Lines), len(fresh.Lines))
	}
	for i := range fresh.Points {
		if fresh.Points[i] != rm.Points[i] {
			t.Fatalf("vertex %d differs: %v vs %v", i, rm.Points[i], fresh.Points[i])
		}
	}
	for i := range fresh.Lines {
		if len(fresh.Lines[i].Stops) != len(rm.Lines[i].Stops) {
			t.Fatalf("line %d stop count differs", i)
		}
		for j := range fresh.Lines[i].Stops {
			if fresh.Lines[i].Stops[j] != rm.Lines[i].Stops[j] {
				t.Fatalf("line %d stop %d differs", i, j)
			}
		}
	}
}

// TestLoadSharedPathCacheConcurrent drives concurrent LegPath queries on
// one memoised map — the exact access pattern of pooled simulations and
// shard workers sharing a road map.
func TestLoadSharedPathCacheConcurrent(t *testing.T) {
	rm := Load(DefaultConfig(), 9732)
	line := rm.Lines[0]
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 4; rep++ {
				for s := range line.Stops {
					a := line.Stops[s]
					b := line.Stops[(s+1)%len(line.Stops)]
					pts := rm.LegPath(a, b)
					if len(pts) < 1 {
						t.Errorf("empty leg path %d-%d", a, b)
						return
					}
					if pts[0] != rm.Points[a] || pts[len(pts)-1] != rm.Points[b] {
						t.Errorf("leg path %d-%d endpoints wrong", a, b)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
