// Package mapgen generates the synthetic downtown road network and bus
// lines that substitute for the Helsinki map data used by the paper's ONE
// scenario (see DESIGN.md, "Substitutions"). The generator is deterministic
// given a seed: a Manhattan-style street grid with a few diagonal avenues,
// a set of cyclic bus lines whose stops cluster inside per-line districts,
// and one shared downtown interchange so lines from different districts
// meet. Districts double as the predefined communities of the CR protocol.
package mapgen

import (
	"fmt"

	"repro/internal/geo"
	"repro/internal/graph"
	"repro/internal/xrand"
)

// Config controls map generation. The zero value is unusable; use
// DefaultConfig.
type Config struct {
	// Width and Height of the simulated area in metres.
	Width, Height float64
	// GridX and GridY are the numbers of street columns and rows.
	GridX, GridY int
	// Diagonals is the number of diagonal avenues cut across the grid.
	Diagonals int
	// Jitter displaces intersections by up to this many metres in each
	// axis, so streets are not perfectly straight.
	Jitter float64
	// Lines is the number of bus lines.
	Lines int
	// StopsPerLine is the number of stops of each cyclic line.
	StopsPerLine int
	// Districts is the number of districts (communities). Lines are
	// assigned to districts round-robin.
	Districts int
}

// DefaultConfig mirrors the scale of ONE's Helsinki downtown scenario,
// roughly 4500 m × 3400 m, which reproduces the paper's absolute
// delivery-ratio range across 40–240 nodes.
func DefaultConfig() Config {
	return Config{
		Width:        4500,
		Height:       3400,
		GridX:        15,
		GridY:        11,
		Diagonals:    4,
		Jitter:       25,
		Lines:        8,
		StopsPerLine: 6,
		Districts:    4,
	}
}

// RoadMap is a generated city: a road graph whose vertices are
// intersections, plus the bus lines defined over it.
type RoadMap struct {
	Graph  *graph.Graph
	Points []geo.Point // position of each intersection
	Bounds geo.Rect
	Lines  []BusLine
	// Center is the most central grid vertex (kept for tools that need a
	// reference downtown point; lines do not all pass through it).
	Center int
	// DistrictRects is the home zone of each district in world
	// coordinates (the unjittered extent of its grid tile). Community
	// walkers in city-scale scenarios anchor to these.
	DistrictRects []geo.Rect

	cache *graph.PathCache
}

// BusLine is a cyclic route over road-graph vertices.
type BusLine struct {
	ID       int
	District int   // the district (community) the line belongs to
	Stops    []int // road-graph vertices, visited cyclically
}

// Generate builds a deterministic road map from cfg and seed.
func Generate(cfg Config, seed int64) *RoadMap {
	if cfg.GridX < 2 || cfg.GridY < 2 {
		panic("mapgen: grid must be at least 2x2")
	}
	if cfg.Lines < 1 || cfg.StopsPerLine < 2 {
		panic("mapgen: need at least one line with two stops")
	}
	if cfg.Districts < 1 {
		panic("mapgen: need at least one district")
	}
	rng := xrand.Derive(seed, "mapgen")

	nx, ny := cfg.GridX, cfg.GridY
	n := nx * ny
	g := graph.New(n)
	pts := make([]geo.Point, n)
	dx := cfg.Width / float64(nx-1)
	dy := cfg.Height / float64(ny-1)
	vertex := func(ix, iy int) int { return iy*nx + ix }
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			p := geo.Point{X: float64(ix) * dx, Y: float64(iy) * dy}
			// Interior intersections get jitter; the border stays put so
			// the bounding box is exact.
			if ix > 0 && ix < nx-1 && iy > 0 && iy < ny-1 && cfg.Jitter > 0 {
				p.X += rng.Uniform(-cfg.Jitter, cfg.Jitter)
				p.Y += rng.Uniform(-cfg.Jitter, cfg.Jitter)
			}
			pts[vertex(ix, iy)] = p
		}
	}
	// Grid streets.
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			v := vertex(ix, iy)
			if ix+1 < nx {
				u := vertex(ix+1, iy)
				g.AddEdge(v, u, pts[v].Dist(pts[u]))
			}
			if iy+1 < ny {
				u := vertex(ix, iy+1)
				g.AddEdge(v, u, pts[v].Dist(pts[u]))
			}
		}
	}
	// Diagonal avenues: connect (ix,iy)-(ix+1,iy+1) runs starting from
	// random border cells.
	for d := 0; d < cfg.Diagonals; d++ {
		ix := rng.Intn(nx - 1)
		iy := rng.Intn(ny - 1)
		dir := 1
		if rng.Bool(0.5) {
			dir = -1
			iy = ny - 1 - iy
			if iy == 0 {
				iy = ny - 1
			}
		}
		for ix+1 < nx && iy+dir >= 0 && iy+dir < ny {
			v := vertex(ix, iy)
			u := vertex(ix+1, iy+dir)
			if !g.HasEdge(v, u) {
				g.AddEdge(v, u, pts[v].Dist(pts[u]))
			}
			ix++
			iy += dir
		}
	}

	rm := &RoadMap{
		Graph:  g,
		Points: pts,
		Bounds: geo.NewRect(geo.Point{}, geo.Point{X: cfg.Width, Y: cfg.Height}),
		Center: vertex(nx/2, ny/2),
	}
	rm.cache = graph.NewPathCache(g)
	for d := 0; d < cfg.Districts; d++ {
		x0, x1, y0, y1 := districtRect(d, cfg.Districts, nx, ny)
		rm.DistrictRects = append(rm.DistrictRects, geo.NewRect(
			geo.Point{X: float64(x0) * dx, Y: float64(y0) * dy},
			geo.Point{X: float64(x1) * dx, Y: float64(y1) * dy},
		))
	}
	rm.generateLines(cfg, rng, nx, ny)
	return rm
}

// districtRect returns the sub-rectangle of the grid covered by district d
// of k districts, tiling the area in vertical slabs of near-equal width.
func districtRect(d, k, nx, ny int) (x0, x1, y0, y1 int) {
	// Tile districts in a 2-column layout when k >= 4, else slabs.
	if k >= 4 && k%2 == 0 {
		cols := 2
		rows := k / cols
		c := d % cols
		r := d / cols
		x0 = c * nx / cols
		x1 = (c+1)*nx/cols - 1
		y0 = r * ny / rows
		y1 = (r+1)*ny/rows - 1
		return
	}
	x0 = d * nx / k
	x1 = (d+1)*nx/k - 1
	y0, y1 = 0, ny-1
	return
}

// generateLines places cfg.Lines cyclic bus lines. Each line keeps most of
// its stops inside its own district and extends one stop into the next
// district (ring order), the way real suburban lines reach a neighbouring
// terminal. Lines of one district overlap heavily (strong intra-community
// contact), adjacent districts share border stops (weak inter-community
// contact), and the district ring keeps the DTN connected without a single
// global hotspot.
func (rm *RoadMap) generateLines(cfg Config, rng *xrand.Source, nx, ny int) {
	vertex := func(ix, iy int) int { return iy*nx + ix }
	pickIn := func(d int, seen map[int]bool) int {
		x0, x1, y0, y1 := districtRect(d, cfg.Districts, nx, ny)
		for tries := 0; ; tries++ {
			v := vertex(rng.UniformInt(x0, x1), rng.UniformInt(y0, y1))
			if !seen[v] || tries > 64 {
				seen[v] = true
				return v
			}
		}
	}
	for l := 0; l < cfg.Lines; l++ {
		district := l % cfg.Districts
		seen := map[int]bool{}
		var stops []int
		for len(stops) < cfg.StopsPerLine-1 {
			stops = append(stops, pickIn(district, seen))
		}
		if cfg.Districts > 1 {
			// One terminal in the next district around the ring.
			stops = append(stops, pickIn((district+1)%cfg.Districts, seen))
		} else {
			stops = append(stops, pickIn(district, seen))
		}
		// Order the stops by a nearest-neighbour tour, producing plausible
		// routes instead of zig-zags.
		ordered := rm.nearestNeighbourTour(stops)
		rm.Lines = append(rm.Lines, BusLine{ID: l, District: district, Stops: ordered})
	}
}

// nearestNeighbourTour orders stops into a tour beginning at stops[0].
func (rm *RoadMap) nearestNeighbourTour(stops []int) []int {
	remaining := append([]int(nil), stops[1:]...)
	tour := []int{stops[0]}
	cur := stops[0]
	for len(remaining) > 0 {
		best, bestD := 0, rm.Points[cur].Dist(rm.Points[remaining[0]])
		for i := 1; i < len(remaining); i++ {
			if d := rm.Points[cur].Dist(rm.Points[remaining[i]]); d < bestD {
				best, bestD = i, d
			}
		}
		cur = remaining[best]
		tour = append(tour, cur)
		remaining = append(remaining[:best], remaining[best+1:]...)
	}
	return tour
}

// LegPath returns the road polyline from stop vertex a to stop vertex b
// (inclusive of both endpoints), following shortest road paths. It panics
// if the vertices are disconnected, which Generate never produces.
func (rm *RoadMap) LegPath(a, b int) []geo.Point {
	vs := rm.cache.Path(a, b)
	if vs == nil {
		panic(fmt.Sprintf("mapgen: no road path between %d and %d", a, b))
	}
	pts := make([]geo.Point, len(vs))
	for i, v := range vs {
		pts[i] = rm.Points[v]
	}
	return pts
}

// LineOfNode assigns node i of nodeCount to a bus line, spreading nodes
// over lines round-robin — the rule the experiment harness and community
// registry share.
func (rm *RoadMap) LineOfNode(i int) BusLine {
	return rm.Lines[i%len(rm.Lines)]
}

// DistrictOfNode returns the district (community) of node i under the
// round-robin line assignment.
func (rm *RoadMap) DistrictOfNode(i int) int {
	return rm.LineOfNode(i).District
}

// Districts returns the number of distinct districts across lines.
func (rm *RoadMap) Districts() int {
	max := -1
	for _, l := range rm.Lines {
		if l.District > max {
			max = l.District
		}
	}
	return max + 1
}
