package mapgen

import "sync"

// Road-map memoisation. Every seed and protocol of a sweep shares one map
// (Scenario.MapSeed), yet each pooled simulation used to regenerate it —
// grid, diagonals, lines and the warmed shortest-path cache — from
// scratch. Load returns one RoadMap per (Config, seed) for the life of
// the process. A RoadMap is immutable after generation and its PathCache
// is concurrency-safe, so sharing across concurrently-running worlds and
// shard workers is sound; sharing the path cache also means each
// stop-to-stop Dijkstra runs once per process instead of once per run.

type memoKey struct {
	cfg  Config
	seed int64
}

// memoEntry's once gates generation so concurrent first loaders of one key
// neither duplicate the work nor hold the registry lock through it.
type memoEntry struct {
	once sync.Once
	rm   *RoadMap
}

var memo struct {
	mu sync.Mutex
	m  map[memoKey]*memoEntry
}

// Load returns the shared road map for (cfg, seed), generating it on first
// use. Concurrent loads of the same key return the identical *RoadMap.
// Callers needing a private map (there is no mutating API, but e.g. tests
// poking internals) should call Generate instead.
func Load(cfg Config, seed int64) *RoadMap {
	key := memoKey{cfg: cfg, seed: seed}
	memo.mu.Lock()
	if memo.m == nil {
		memo.m = make(map[memoKey]*memoEntry)
	}
	e := memo.m[key]
	if e == nil {
		e = &memoEntry{}
		memo.m[key] = e
	}
	memo.mu.Unlock()
	e.once.Do(func() { e.rm = Generate(cfg, seed) })
	return e.rm
}
