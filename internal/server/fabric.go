package server

// The distributed sweep fabric: a coordinator-mode dtnd fans accepted
// jobs out to a fleet of ordinary worker daemons over the existing job
// API — POST /v1/jobs, the NDJSON progress stream, DELETE for cancel —
// so a worker is just a dtnd that never heard of the fleet. Content
// addressing makes cells location-transparent: the coordinator submits
// the spec, the worker derives the same cache key, and any worker's
// cached result or recorded trace serves the whole fleet through the
// store's remote pull-through tier (GET /v1/results/{key},
// GET /v1/traces/{key} — both serve local-only, so probes cannot
// recurse).
//
// Dispatch is unit-based: experiment.PlacementGroups folds the cells of
// one trace group (record-then-replay, PR 8) into a single unit so the
// recording and its replays land on one worker's store; everything else
// is a singleton unit. Each worker runs `inflight` runner goroutines
// that pull units off one shared queue — idle workers steal work by
// construction. An infrastructure failure (connect error, broken
// stream, 5xx) marks the worker down and requeues the unit's remaining
// jobs for any healthy worker (work stealing); a heartbeat probing
// /v1/healthz revives workers and reaps cancelled queued jobs.
// Deterministic job failures (the worker ran the spec and it failed)
// are never retried — a bad spec fails everywhere.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiment"
	"repro/internal/metrics"
	"repro/internal/obs"
)

const (
	defaultWorkerInflight = 2
	defaultHeartbeat      = time.Second
	// maxUnitAttempts bounds how many workers a dispatch unit may die on
	// before its remaining jobs fail: attempts are burned only by
	// infrastructure failures, so exhausting them means several distinct
	// workers were lost mid-unit.
	maxUnitAttempts = 3
	// maxRemoteEntryBytes bounds one fetched result or trace blob — a
	// corrupt or malicious peer cannot balloon the coordinator's memory.
	maxRemoteEntryBytes = 64 << 20
)

// fleetWorker is one registered worker daemon and its dispatch counters.
type fleetWorker struct {
	url string // base URL, no trailing slash

	healthy    atomic.Bool
	dispatched atomic.Int64 // jobs handed to this worker
	completed  atomic.Int64 // jobs that reached done via this worker
	failures   atomic.Int64 // infrastructure failures observed on it
	steals     atomic.Int64 // requeued units this worker picked up
}

// dispatchUnit is the scheduling granule: jobs that must run on one
// worker sequentially (a trace group's record-then-replay chain), or a
// single job. attempts counts workers the unit has died on; stolen marks
// a requeue, so the next worker to pick it up counts a steal.
type dispatchUnit struct {
	jobs     []*job
	attempts int
	stolen   bool
}

// fleet is the coordinator's dispatcher: the worker registry, the shared
// unit queue, the per-worker runner pools and the heartbeat.
type fleet struct {
	s         *Server
	client    *http.Client
	heartbeat time.Duration
	inflight  int

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*dispatchUnit
	closed  bool
	workers []*fleetWorker

	retries atomic.Int64 // units requeued after an infrastructure failure
	cached  atomic.Int64 // jobs satisfied from the tiered store at dispatch
}

// newFleet builds and starts the dispatcher: inflight runners per worker
// plus the heartbeat. Workers start optimistically healthy so dispatch
// works regardless of boot order; the first failure marks a worker down
// and the heartbeat revives it.
func newFleet(s *Server, cfg Config) *fleet {
	f := &fleet{
		s:         s,
		client:    &http.Client{},
		heartbeat: cfg.Heartbeat,
		inflight:  cfg.WorkerInflight,
	}
	if f.heartbeat <= 0 {
		f.heartbeat = defaultHeartbeat
	}
	if f.inflight <= 0 {
		f.inflight = defaultWorkerInflight
	}
	f.cond = sync.NewCond(&f.mu)
	f.ctx, f.cancel = context.WithCancel(context.Background())
	for _, u := range cfg.Workers {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" {
			continue
		}
		w := &fleetWorker{url: u}
		w.healthy.Store(true)
		f.workers = append(f.workers, w)
	}
	for _, w := range f.workers {
		for i := 0; i < f.inflight; i++ {
			f.wg.Add(1)
			go f.runner(w)
		}
	}
	f.wg.Add(1)
	go f.heartbeatLoop()
	return f
}

// close stops the runners and heartbeat, then fails whatever the queue
// still holds so no accepted job is left un-terminal. Call after Drain —
// a drained server has an empty queue and this is pure goroutine
// cleanup.
func (f *fleet) close() {
	f.cancel()
	f.mu.Lock()
	f.closed = true
	rest := f.queue
	f.queue = nil
	f.mu.Unlock()
	f.cond.Broadcast()
	f.wg.Wait()
	for _, u := range rest {
		for _, j := range u.jobs {
			if j.ctx.Err() != nil {
				j.cancelled()
			} else {
				j.fail(errors.New("fleet shut down"))
			}
			f.s.jobDone(j)
		}
	}
}

// healthyWorkerURLs lists the workers the store's remote tier may probe.
func (f *fleet) healthyWorkerURLs() []string {
	var urls []string
	for _, w := range f.workers {
		if w.healthy.Load() {
			urls = append(urls, w.url)
		}
	}
	return urls
}

// enqueue adds dispatch units and wakes idle runners.
func (f *fleet) enqueue(units []*dispatchUnit) {
	var orphans []*job
	f.mu.Lock()
	if f.closed {
		for _, u := range units {
			orphans = append(orphans, u.jobs...)
		}
	} else {
		f.queue = append(f.queue, units...)
	}
	f.mu.Unlock()
	f.cond.Broadcast()
	for _, j := range orphans {
		j.fail(errors.New("fleet shut down"))
		f.s.jobDone(j)
	}
}

// queueDepth reports units waiting for a worker (the /metrics gauge).
func (f *fleet) queueDepth() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.queue)
}

// runner is one dispatch slot on one worker: pull a unit, run it, repeat
// until the fleet closes. A runner whose worker is down does not pull —
// its share of the queue flows to the healthy workers' runners.
func (f *fleet) runner(w *fleetWorker) {
	defer f.wg.Done()
	for {
		u := f.next(w)
		if u == nil {
			return
		}
		if u.stolen {
			w.steals.Add(1)
		}
		f.runUnit(w, u)
	}
}

// next blocks until a unit is available and this runner's worker is
// healthy, or the fleet closes (nil).
func (f *fleet) next(w *fleetWorker) *dispatchUnit {
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		if f.closed {
			return nil
		}
		if w.healthy.Load() && len(f.queue) > 0 {
			u := f.queue[0]
			f.queue = f.queue[1:]
			return u
		}
		f.cond.Wait()
	}
}

// runUnit executes a unit's jobs in order on one worker. Jobs cancelled
// while queued terminate without dispatch; jobs the tiered store can
// already serve (a retry whose first attempt completed, an overlapping
// sweep's cell) finish without dispatch. An infrastructure failure marks
// the worker down and requeues the unit's unfinished tail for the rest
// of the fleet.
func (f *fleet) runUnit(w *fleetWorker, u *dispatchUnit) {
	s := f.s
	for idx, j := range u.jobs {
		if j.ctx.Err() != nil {
			j.cancelled()
			s.jobDone(j)
			continue
		}
		if res, raw, ok := s.store.GetRawLocal(j.key); ok && len(res.PerSeed) == len(j.spec.SeedList()) {
			f.cached.Add(1)
			j.finish(res, raw, nil)
			s.jobDone(j)
			continue
		}
		s.queueWait.Observe(time.Since(j.accepted).Seconds())
		w.dispatched.Add(1)
		err := f.runRemote(w, j)
		if err == nil {
			s.jobDone(j)
			continue
		}
		if j.ctx.Err() != nil {
			// The dispatch broke because the job was cancelled (or was
			// cancelled while broken) — that is a resolution, not a retry.
			j.cancelled()
			s.jobDone(j)
			continue
		}
		w.failures.Add(1)
		if w.healthy.Swap(false) {
			s.log.Warn("fleet worker down", "worker", w.url, "err", err)
		}
		rest := u.jobs[idx:]
		if u.attempts+1 >= maxUnitAttempts {
			s.log.Error("fleet unit failed", "worker", w.url, "jobs", len(rest), "attempts", u.attempts+1, "err", err)
			for _, jj := range rest {
				if jj.ctx.Err() != nil {
					jj.cancelled()
				} else {
					jj.fail(fmt.Errorf("fleet: %d dispatch attempts failed, last on %s: %v", u.attempts+1, w.url, err))
				}
				s.jobDone(jj)
			}
			return
		}
		f.retries.Add(1)
		s.log.Warn("fleet unit requeued", "worker", w.url, "jobs", len(rest), "attempt", u.attempts+1, "err", err)
		f.mu.Lock()
		f.queue = append(f.queue, &dispatchUnit{jobs: rest, attempts: u.attempts + 1, stolen: true})
		f.mu.Unlock()
		f.cond.Broadcast()
		return
	}
}

// runRemote drives one job through one worker: submit the spec, mirror
// the worker's NDJSON progress into the local job (so streams, sweeps
// and status replies work unchanged), then mirror its terminal state. A
// nil return means the job reached a terminal state here; an error means
// the worker infrastructure failed and the caller should retry the job
// elsewhere.
func (f *fleet) runRemote(w *fleetWorker, j *job) error {
	j.setState(stateRunning)
	// The plain marshal keeps every resolved field the sweep layer set —
	// notably Trace="auto" from markTraceGroups, which the canonical
	// (key-defining) encoding deliberately strips. The worker re-derives
	// the same cache key because trace never enters it.
	body, err := json.Marshal(j.spec)
	if err != nil {
		j.fail(err)
		return nil
	}
	sctx, scancel := context.WithTimeout(j.ctx, 30*time.Second)
	resp, err := f.do(sctx, http.MethodPost, w.url+"/v1/jobs", body)
	scancel()
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	reply, raw, err := readJSON[submitResponse](resp)
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	switch {
	case resp.StatusCode == http.StatusBadRequest:
		// The worker rejected a spec the coordinator validated: version
		// skew, not infrastructure. Failing is deterministic — no retry.
		j.fail(fmt.Errorf("worker %s rejected spec: %s", w.url, errBody(raw)))
		return nil
	case resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted:
		return fmt.Errorf("submit: worker answered %d: %s", resp.StatusCode, errBody(raw))
	}
	if reply.Key != "" && reply.Key != j.key {
		// Key skew means the two daemons resolve specs differently —
		// results would be mis-addressed fleet-wide. Fail loudly.
		j.fail(fmt.Errorf("worker %s derived key %s for %s (version skew?)", w.url, reply.Key, j.key))
		return nil
	}
	if reply.Cached && reply.Result != nil {
		return f.finishFromResult(w, j, nil)
	}
	if reply.JobID == "" {
		return fmt.Errorf("submit: worker answered %d with no job id", resp.StatusCode)
	}
	return f.followStream(w, j, reply.JobID)
}

// followStream mirrors the worker's NDJSON progress into the local job
// until its terminal line, then resolves the local job to match. The
// stream request runs under j.ctx, so a local cancel (DELETE on the
// coordinator, sweep cancel) tears the stream down immediately and is
// propagated to the worker as a DELETE.
func (f *fleet) followStream(w *fleetWorker, j *job, remoteID string) error {
	req, err := http.NewRequestWithContext(j.ctx, http.MethodGet, w.url+"/v1/jobs/"+remoteID+"/stream", nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		if j.ctx.Err() != nil {
			f.cancelRemote(w, remoteID)
		}
		return fmt.Errorf("stream: %w", err)
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("stream: worker answered %d", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var p metrics.Progress
		if err := dec.Decode(&p); err != nil {
			if j.ctx.Err() != nil {
				f.cancelRemote(w, remoteID)
				j.cancelled()
				return nil
			}
			return fmt.Errorf("stream broke: %w", err)
		}
		if !p.Done {
			f.s.m.progressEvents.Add(1)
			j.publish(p)
			continue
		}
		switch {
		case p.Error == "cancelled":
			if j.ctx.Err() != nil {
				j.cancelled()
				return nil
			}
			// The worker cancelled a job nobody here cancelled — it is
			// restarting or drained mid-run. Retry elsewhere.
			return errors.New("worker cancelled the job unilaterally")
		case p.Error != "":
			j.fail(errors.New(p.Error))
			return nil
		default:
			return f.finishFromResult(w, j, p.Timing)
		}
	}
}

// finishFromResult completes a local job from the worker's cached result
// bytes: fetch GET /v1/results/{key}, persist into the local store
// (pull-through — later sweeps and peers are served from here), finish
// the job with the exact bytes. Fetch failures are infrastructure
// errors: the worker computed and cached the result, so a retry is a
// cache hit away.
func (f *fleet) finishFromResult(w *fleetWorker, j *job, tm *obs.Timing) error {
	raw, err := f.fetchEntry(w.url + "/v1/results/" + j.key)
	if err != nil {
		return fmt.Errorf("fetch result: %w", err)
	}
	var res Result
	if json.Unmarshal(raw, &res) != nil || res.Key != j.key {
		return fmt.Errorf("fetch result: worker %s served corrupt bytes for %s", w.url, j.key)
	}
	if err := f.s.store.PutEncoded(j.key, raw); err != nil {
		f.s.log.Warn("fleet: persist pulled result", "key", j.key, "err", err)
	}
	w.completed.Add(1)
	j.finish(&res, raw, tm)
	return nil
}

// cancelRemote propagates a local cancellation to the worker,
// best-effort: the job context is already dead, so this uses its own
// short deadline.
func (f *fleet) cancelRemote(w *fleetWorker, remoteID string) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := f.do(ctx, http.MethodDelete, w.url+"/v1/jobs/"+remoteID, nil)
	if err != nil {
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}

// heartbeatLoop probes every worker's /v1/healthz on a fixed cadence —
// reviving workers marked down by a failed dispatch, retiring drained
// ones (readiness answers 503 while draining) — and reaps cancelled jobs
// still waiting in the queue, so cluster-wide cancellation resolves even
// with every worker dead.
func (f *fleet) heartbeatLoop() {
	defer f.wg.Done()
	t := time.NewTicker(f.heartbeat)
	defer t.Stop()
	for {
		select {
		case <-f.ctx.Done():
			return
		case <-t.C:
		}
		f.probeAll()
		f.reapCancelled()
	}
}

// probeAll checks each worker's readiness endpoint once. The probe
// deadline is floored well above short heartbeat cadences so a worker
// that is merely busy (CPU-saturated by its own jobs) is not mistaken
// for a dead one.
func (f *fleet) probeAll() {
	probeTimeout := f.heartbeat
	if probeTimeout < 500*time.Millisecond {
		probeTimeout = 500 * time.Millisecond
	}
	for _, w := range f.workers {
		ctx, cancel := context.WithTimeout(f.ctx, probeTimeout)
		resp, err := f.do(ctx, http.MethodGet, w.url+"/v1/healthz", nil)
		ok := err == nil && resp.StatusCode == http.StatusOK
		if resp != nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
		}
		cancel()
		was := w.healthy.Swap(ok)
		switch {
		case ok && !was:
			f.s.log.Info("fleet worker revived", "worker", w.url)
			f.cond.Broadcast()
		case !ok && was:
			f.s.log.Warn("fleet worker down", "worker", w.url)
		}
	}
}

// reapCancelled terminates queued jobs whose context died while they
// waited for a worker.
func (f *fleet) reapCancelled() {
	var dead []*job
	f.mu.Lock()
	live := f.queue[:0]
	for _, u := range f.queue {
		keep := u.jobs[:0]
		for _, j := range u.jobs {
			if j.ctx.Err() != nil {
				dead = append(dead, j)
			} else {
				keep = append(keep, j)
			}
		}
		u.jobs = keep
		if len(u.jobs) > 0 {
			live = append(live, u)
		}
	}
	f.queue = live
	f.mu.Unlock()
	for _, j := range dead {
		j.cancelled()
		f.s.jobDone(j)
	}
}

// do issues one request with a JSON body (if any) through the fleet's
// shared client.
func (f *fleet) do(ctx context.Context, method, url string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = strings.NewReader(string(body))
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	return f.client.Do(req)
}

// fetchEntry GETs one bounded entry (result JSON or trace blob).
func (f *fleet) fetchEntry(url string) ([]byte, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	resp, err := f.do(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		return nil, fmt.Errorf("GET %s: %d", url, resp.StatusCode)
	}
	return io.ReadAll(io.LimitReader(resp.Body, maxRemoteEntryBytes))
}

// readJSON decodes a bounded response body into T, returning the raw
// bytes alongside for error reporting.
func readJSON[T any](resp *http.Response) (T, []byte, error) {
	var v T
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxRemoteEntryBytes))
	resp.Body.Close()
	if err != nil {
		return v, nil, err
	}
	if err := json.Unmarshal(data, &v); err != nil {
		return v, data, fmt.Errorf("decode reply: %w", err)
	}
	return v, data, nil
}

// errBody extracts the {"error": ...} message from a reply, falling back
// to a clipped raw body.
func errBody(raw []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		return e.Error
	}
	s := strings.TrimSpace(string(raw))
	if len(s) > 200 {
		s = s[:200]
	}
	return s
}

// remoteTier adapts the fleet (and any statically configured peers) to
// resultcache.Remote: on a local store miss, probe each peer's local-only
// serving endpoints in order and return the first hit. The coordinator's
// peer list is its healthy workers plus Config.Peers; a plain worker
// configured with -peers probes those.
type remoteTier struct {
	client *http.Client
	peers  func() []string
}

func (rt *remoteTier) FetchResult(key string) ([]byte, bool) {
	return rt.fetch("/v1/results/" + key)
}

func (rt *remoteTier) FetchTrace(key string) ([]byte, bool) {
	return rt.fetch("/v1/traces/" + key)
}

func (rt *remoteTier) fetch(path string) ([]byte, bool) {
	for _, base := range rt.peers() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
		if err != nil {
			cancel()
			continue
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			cancel()
			continue
		}
		if resp.StatusCode == http.StatusOK {
			data, err := io.ReadAll(io.LimitReader(resp.Body, maxRemoteEntryBytes))
			resp.Body.Close()
			cancel()
			if err == nil {
				return data, true
			}
			continue
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		cancel()
	}
	return nil, false
}

// workerStatus is one row of GET /v1/workers: a worker's health and
// dispatch counters.
type workerStatus struct {
	URL        string `json:"url"`
	Healthy    bool   `json:"healthy"`
	Dispatched int64  `json:"dispatched"`
	Completed  int64  `json:"completed"`
	Failures   int64  `json:"failures"`
	Steals     int64  `json:"steals"`
}

// handleWorkers serves GET /v1/workers: the fleet registry (coordinator
// mode only — a plain worker answers 404).
func (s *Server) handleWorkers(w http.ResponseWriter, _ *http.Request) {
	if s.fleet == nil {
		writeErr(w, http.StatusNotFound, errors.New("not a coordinator"))
		return
	}
	rows := make([]workerStatus, 0, len(s.fleet.workers))
	for _, fw := range s.fleet.workers {
		rows = append(rows, workerStatus{
			URL:        fw.url,
			Healthy:    fw.healthy.Load(),
			Dispatched: fw.dispatched.Load(),
			Completed:  fw.completed.Load(),
			Failures:   fw.failures.Load(),
			Steals:     fw.steals.Load(),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"workers":     rows,
		"queue_depth": s.fleet.queueDepth(),
	})
}

// startJob launches one accepted job on the local engine or, on a
// coordinator, through the fleet dispatcher.
func (s *Server) startJob(j *job) { s.startJobs([]*job{j}) }

// startJobs launches a batch of accepted jobs. On a coordinator the
// batch is partitioned into dispatch units by trace group
// (experiment.PlacementGroups), so a record-then-replay chain stays on
// one worker's store while independent cells scatter across the fleet.
func (s *Server) startJobs(jobs []*job) {
	if len(jobs) == 0 {
		return
	}
	if s.fleet == nil {
		for _, j := range jobs {
			go s.runJob(j)
		}
		return
	}
	specs := make([]experiment.ScenarioSpec, len(jobs))
	for i, j := range jobs {
		specs[i] = j.spec
	}
	groups := experiment.PlacementGroups(specs)
	units := make([]*dispatchUnit, 0, len(groups))
	for _, g := range groups {
		u := &dispatchUnit{jobs: make([]*job, len(g))}
		for k, i := range g {
			u.jobs[k] = jobs[i]
		}
		units = append(units, u)
	}
	s.fleet.enqueue(units)
}
