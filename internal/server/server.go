// Package server implements dtnd, the long-running simulation service: an
// HTTP/JSON daemon that accepts declarative scenario specs
// (experiment.ScenarioSpec) and whole parameter studies
// (experiment.SweepSpec), runs them as jobs on the shared
// GOMAXPROCS-bounded experiment pool, streams live progress as NDJSON and
// serves results from a content-addressed cache — the hash of the
// canonicalized spec addresses its summary on disk, so resubmitting a
// sweep cell costs one file read instead of a simulation.
//
// API (see DESIGN.md "Simulation service" and "Sweep jobs & cancellation"):
//
//	POST   /v1/jobs             submit a spec; returns job id or cached result
//	GET    /v1/jobs/{id}        job status (+ result when done)
//	GET    /v1/jobs/{id}/stream live NDJSON progress until the job ends
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	POST   /v1/sweeps           submit a sweep; cells reuse the cell cache
//	GET    /v1/sweeps             list sweeps (id, status, aggregate frac)
//	GET    /v1/sweeps/{id}        sweep status + per-cell result table
//	                              (?offset=N&limit=M paginates the table)
//	GET    /v1/sweeps/{id}/stream live NDJSON progress: per-cell key+frac
//	                              lines interleaved with the aggregate
//	DELETE /v1/sweeps/{id}        cancel the sweep's remaining cells
//	GET    /v1/results/{key}    cached result by content address
//	GET    /v1/presets          the named base specs
//	GET    /metrics             Prometheus text counters (see metrics.go)
//	GET    /healthz             liveness
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiment"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/resultcache"
)

// Config parameterises the daemon.
type Config struct {
	// CacheDir is the content-addressed result store. Empty disables
	// persistent caching (every submission simulates).
	CacheDir string
	// MaxCacheBytes bounds the result store's total size (0 = unbounded):
	// after every write, oldest-mtime entries are evicted until the total
	// fits, and cache hits touch their entry's mtime, so the cells a
	// repeated sweep keeps reusing stay resident.
	MaxCacheBytes int64
	// MaxConcurrentJobs bounds jobs simulating at once (default 1). Each
	// job already fans its seeds out over the shared GOMAXPROCS-bounded
	// pool, so one job saturates the machine; raise this only to
	// interleave many small jobs.
	MaxConcurrentJobs int
	// MaxQueuedJobs bounds accepted-but-not-finished jobs (default 64);
	// beyond it submissions are refused with 429. Sweep cells count
	// individually: a sweep whose uncached cells would not fit is refused
	// whole.
	MaxQueuedJobs int
	// Logger receives the daemon's structured log lines (job and sweep
	// lifecycle, each line carrying the relevant job/sweep/cell IDs). nil
	// discards them — the default for tests and embedded use.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/* on the same
	// listener. Off by default: the daemon may face untrusted clients,
	// and profiles leak timing/heap internals.
	EnablePprof bool

	// Workers turns the daemon into a coordinator: accepted jobs are
	// dispatched to these base URLs (ordinary dtnd workers, spoken to
	// over the public job API) instead of the local engine. Empty means
	// plain worker/standalone mode. See fabric.go.
	Workers []string
	// Peers are base URLs whose result stores back this daemon's store as
	// a remote pull-through tier (a coordinator's workers are probed
	// implicitly; Peers adds static extras, e.g. sibling workers).
	Peers []string
	// WorkerInflight bounds jobs dispatched concurrently per worker
	// (default 2: one running under the worker's single permit, one
	// queued behind it so the worker never idles between cells).
	WorkerInflight int
	// Heartbeat is the worker health-probe cadence (default 1s).
	Heartbeat time.Duration
}

// jobState is the lifecycle of a submitted job.
type jobState string

const (
	stateQueued    jobState = "queued"
	stateRunning   jobState = "running"
	stateDone      jobState = "done"
	stateFailed    jobState = "failed"
	stateCancelled jobState = "cancelled"
)

// terminalState reports whether st is a final lifecycle state.
func terminalState(st jobState) bool {
	return st == stateDone || st == stateFailed || st == stateCancelled
}

// job is one accepted submission. Progress events accumulate under mu;
// notify is closed and replaced on every append, so any number of
// streaming subscribers replay the history and then follow live.
// Subscribed callbacks (sweeps aggregating their cells) receive each
// event after the append, outside mu.
type job struct {
	id       string
	key      string
	spec     experiment.ScenarioSpec
	ctx      context.Context // cancelled to stop the job
	cancel   context.CancelFunc
	accepted time.Time // when the submission was queued (queue-wait metric)

	// holders counts submissions referencing this job — the direct POST
	// or owning sweep plus every coalesced attach — and is guarded by
	// Server.mu. Sweep cancellation releases one hold and only cancels
	// the job when none remain; DELETE /v1/jobs/{id} is an explicit
	// operator action and cancels unconditionally.
	holders int

	// onTerminal, when set, observes the job's final state exactly once
	// (the server's metric counters). Called outside all locks.
	onTerminal func(jobState)

	mu     sync.Mutex
	state  jobState
	events []metrics.Progress
	notify chan struct{}
	result *Result
	// timing is the job's engine phase profile (nil for cache hits and
	// unprofiled jobs). It lives outside result so the cached bytes stay
	// deterministic; job status and the terminal stream event carry it.
	timing *obs.Timing
	// resultJSON is the result encoded once at completion, so the submit
	// fast paths (disk hit, coalesce onto a done job) splice bytes instead
	// of re-marshalling the full per-seed summary table per request.
	resultJSON []byte
	errMsg     string
	subs       []func(metrics.Progress)
}

// Result is the persisted outcome of a job — the value the content
// address resolves to (resultcache.Result; the store is shared with the
// sweep/figures CLIs, so cells computed on either side serve the other).
type Result = resultcache.Result

// Server is the dtnd daemon state. Create with New; serve Handler().
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	store *resultcache.Store // nil when caching is disabled
	fleet *fleet             // nil unless coordinator mode (Config.Workers)

	mu        sync.Mutex
	jobs      map[string]*job // by job id
	active    map[string]*job // queued/running jobs by cache key (dedupe)
	finished  []string        // finished job ids, completion order (retention ring)
	sweeps    map[string]*sweepJob
	sweepRing []string // sweep ids, creation order (retention ring)
	nextID    int
	queued    int
	draining  bool

	sem       chan struct{}  // MaxConcurrentJobs permits
	wg        sync.WaitGroup // accepted jobs not yet finished
	simulated atomic.Int64   // jobs that actually ran (cache misses)
	m         serverCounters // /metrics state (see metrics.go)
	log       *slog.Logger

	// Latency histogram families served by /metrics (see metrics.go).
	httpDur   [len(respClasses)]*obs.Histogram // request duration by response class
	queueWait *obs.Histogram                   // accepted -> permit acquired
}

// New returns a server, creating the cache directory if configured.
func New(cfg Config) (*Server, error) {
	if cfg.MaxConcurrentJobs <= 0 {
		cfg.MaxConcurrentJobs = 1
	}
	if cfg.MaxQueuedJobs <= 0 {
		cfg.MaxQueuedJobs = 64
	}
	s := &Server{
		cfg:       cfg,
		jobs:      make(map[string]*job),
		active:    make(map[string]*job),
		sweeps:    make(map[string]*sweepJob),
		sem:       make(chan struct{}, cfg.MaxConcurrentJobs),
		log:       cfg.Logger,
		queueWait: obs.NewHistogram(obs.DefaultDurationBuckets()),
	}
	if s.log == nil {
		s.log = slog.New(slog.DiscardHandler)
	}
	for i := range s.httpDur {
		s.httpDur[i] = obs.NewHistogram(obs.DefaultDurationBuckets())
	}
	if cfg.CacheDir != "" {
		st, err := resultcache.Open(cfg.CacheDir, cfg.MaxCacheBytes)
		if err != nil {
			return nil, fmt.Errorf("server: cache dir: %w", err)
		}
		s.store = st
	}
	if len(cfg.Workers) > 0 {
		s.fleet = newFleet(s, cfg)
	}
	// Back the local store with the fleet's stores: on a local miss, the
	// coordinator probes its healthy workers (plus any static peers), a
	// plain worker probes its configured peers. Pull-through persists
	// fetches locally, so any daemon's cached cell or recorded trace
	// serves the whole fleet exactly once over the wire.
	if s.store != nil && (s.fleet != nil || len(cfg.Peers) > 0) {
		peers := make([]string, 0, len(cfg.Peers))
		for _, p := range cfg.Peers {
			if p = strings.TrimRight(strings.TrimSpace(p), "/"); p != "" {
				peers = append(peers, p)
			}
		}
		s.store.SetRemote(&remoteTier{client: &http.Client{}, peers: func() []string {
			var urls []string
			if s.fleet != nil {
				urls = s.fleet.healthyWorkerURLs()
			}
			return append(urls, peers...)
		}})
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSubmitSweep)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweep)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/stream", s.handleSweepStream)
	s.mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleCancelSweep)
	s.mux.HandleFunc("GET /v1/results/{key}", s.handleResult)
	s.mux.HandleFunc("GET /v1/traces/{key}", s.handleTrace)
	s.mux.HandleFunc("GET /v1/workers", s.handleWorkers)
	s.mux.HandleFunc("GET /v1/presets", s.handlePresets)
	s.mux.HandleFunc("GET /v1/sweeps", s.handleSweepList)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.mux.HandleFunc("GET /v1/healthz", s.handleReady)
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s, nil
}

// Handler returns the HTTP handler (also usable under httptest): the
// route mux wrapped in the request-duration middleware.
func (s *Server) Handler() http.Handler { return s.timed(s.mux) }

// respClasses are the response classes the duration histogram is
// partitioned by; classIdx maps a status code onto them.
var respClasses = [4]string{"2xx", "3xx", "4xx", "5xx"}

func classIdx(status int) int {
	switch {
	case status < 300:
		return 0
	case status < 400:
		return 1
	case status < 500:
		return 2
	default:
		return 3
	}
}

// statusWriter captures the response status for the duration histogram.
// It passes Flush through — the NDJSON streaming endpoints type-assert
// http.Flusher on the writer they are handed.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(p)
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// timed is the request-duration middleware: every request lands in the
// histogram of its response class, long-lived NDJSON streams included
// (they book their full lifetime — the histogram's +Inf bucket absorbs
// them rather than skewing the finite buckets).
func (s *Server) timed(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		s.httpDur[classIdx(status)].Observe(time.Since(start).Seconds())
	})
}

// Simulated returns how many jobs ran a simulation (cache misses) — the
// observability hook the cache tests assert on.
func (s *Server) Simulated() int64 { return s.simulated.Load() }

// Drain stops accepting jobs and waits until every accepted job has
// finished (queued jobs still run — they were acknowledged), or until ctx
// expires. It is the graceful-shutdown half; closing the listener is the
// caller's (ListenAndServe's) other half.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain: %w", ctx.Err())
	}
}

// Close releases the server's background resources — in coordinator mode
// the fleet's runner and heartbeat goroutines. Call after Drain (a
// drained coordinator's dispatch queue is empty); a fleetless server
// no-ops.
func (s *Server) Close() {
	if s.fleet != nil {
		s.fleet.close()
	}
}

// submitResponse is the POST /v1/jobs reply.
type submitResponse struct {
	JobID  string  `json:"job_id,omitempty"`
	Key    string  `json:"key"`
	Status string  `json:"status"`
	Cached bool    `json:"cached"`
	Result *Result `json:"result,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return
	}
	spec, err := experiment.ParseSpec(body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	key, err := spec.CacheKey() // resolves and validates the spec
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}

	s.m.submissions.Add(1)
	// Content-addressed fast path: an identical resolved job was already
	// computed — serve the summary from disk, no simulation. The entry
	// must carry one summary per requested seed: a stale entry written
	// for a different seed list under an old spec version (or tampered on
	// disk) is a miss and recomputes, the same guard both sweep cache
	// passes apply. The reply splices the store's encoded bytes verbatim
	// — a hit costs one file read, zero JSON marshalling.
	if res, raw, ok := s.store.GetRaw(key); ok && len(res.PerSeed) == len(spec.SeedList()) {
		s.m.submitHits.Add(1)
		s.log.Debug("job cache hit", "key", key)
		writeCachedResult(w, "", key, raw)
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.m.submitRejected.Add(1)
		writeErr(w, http.StatusServiceUnavailable, errors.New("server draining, not accepting jobs"))
		return
	}
	// Coalesce with an in-flight identical job — unless attaching could
	// never hand this submission a result:
	//   - a cancelled job will not produce one, so a fresh job queues
	//     instead (newJobLocked replaces the cancelled job's active entry);
	//   - a job already terminal (the window between j.finish/j.fail and
	//     runJob's deferred delete from s.active) has already published
	//     its outcome, and an attach would answer status "done"/"failed"
	//     with no result/error payload. A done job's result is served
	//     inline from its snapshot; a failed one queues fresh.
	if j := s.active[key]; j != nil && j.ctx.Err() == nil {
		snap := j.snapshot()
		switch {
		case !terminalState(snap.state):
			j.holders++
			s.mu.Unlock()
			s.m.submitCoalesced.Add(1)
			s.log.Debug("job coalesced", "job", j.id, "key", key)
			writeJSON(w, http.StatusOK, submitResponse{JobID: j.id, Key: key, Status: string(snap.state)})
			return
		case snap.state == stateDone && snap.result != nil:
			s.mu.Unlock()
			s.m.submitHits.Add(1)
			if snap.resultJSON != nil {
				writeCachedResult(w, j.id, key, snap.resultJSON)
			} else {
				writeJSON(w, http.StatusOK, submitResponse{JobID: j.id, Key: key, Status: string(stateDone), Cached: true, Result: snap.result})
			}
			return
		}
		// failed (or done with a nil result, which cannot happen): fall
		// through and queue a fresh job.
	}
	if s.queued >= s.cfg.MaxQueuedJobs {
		s.mu.Unlock()
		s.m.submitRejected.Add(1)
		writeErr(w, http.StatusTooManyRequests, errors.New("job queue full"))
		return
	}
	j := s.newJobLocked(key, spec)
	s.mu.Unlock()

	s.log.Info("job accepted", "job", j.id, "key", key)
	s.startJob(j)
	writeJSON(w, http.StatusAccepted, submitResponse{JobID: j.id, Key: key, Status: string(stateQueued)})
}

// newJobLocked creates and registers a queued job (s.mu must be held).
// The caller starts runJob after releasing the lock.
func (s *Server) newJobLocked(key string, spec experiment.ScenarioSpec) *job {
	s.nextID++
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id:       fmt.Sprintf("j%d", s.nextID),
		key:      key,
		spec:     spec,
		ctx:      ctx,
		cancel:   cancel,
		accepted: time.Now(),
		holders:  1,
		state:    stateQueued,
		notify:   make(chan struct{}),
	}
	j.onTerminal = func(st jobState) {
		s.m.noteTerminal(st)
		s.log.Info("job terminal", "job", j.id, "key", j.key, "status", string(st))
	}
	s.jobs[j.id] = j
	s.active[key] = j
	s.queued++
	s.wg.Add(1)
	return j
}

// jobDone releases a terminal job's server bookkeeping — the one
// completion path shared by the local executor (runJob) and the fleet
// dispatcher, called exactly once per accepted job, after the job
// reached a terminal state.
func (s *Server) jobDone(j *job) {
	s.mu.Lock()
	// A fresh submission may have replaced a cancelled job's active
	// entry while it drained; only remove the entry if it is still
	// ours.
	if s.active[j.key] == j {
		delete(s.active, j.key)
	}
	s.queued--
	// Retention: keep the most recent finished jobs addressable by id
	// (status/stream replay), dropping the oldest beyond the ring so a
	// long-lived daemon's per-job state is bounded. Their results stay
	// servable forever through the on-disk cache by key.
	s.finished = append(s.finished, j.id)
	for len(s.finished) > maxRetainedJobs {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
	s.mu.Unlock()
	s.wg.Done()
}

// runJob executes one accepted job on the local engine: wait for a
// concurrency permit (or cancellation — a cancelled queued job never
// takes a permit), simulate with live progress, persist and publish the
// result.
func (s *Server) runJob(j *job) {
	defer s.jobDone(j)
	// Spec validation screens known-bad shapes, but the engine panics on
	// combinations nobody has tried yet; contain those to the one job
	// instead of killing the daemon (and every queued job) with it.
	defer func() {
		if r := recover(); r != nil {
			j.fail(fmt.Errorf("job panicked: %v", r))
		}
	}()
	select {
	case s.sem <- struct{}{}:
	case <-j.ctx.Done():
		j.cancelled() // cancelled while queued: release nothing, run nothing
		return
	}
	defer func() { <-s.sem }()
	s.queueWait.Observe(time.Since(j.accepted).Seconds())
	if j.ctx.Err() != nil {
		j.cancelled()
		return
	}

	j.setState(stateRunning)
	s.log.Info("job running", "job", j.id, "key", j.key)
	// Meter simulation throughput off the progress feed: events arrive
	// serialized (RunSpecContext delivers under its own lock), so the
	// per-seed last-T table needs no further locking. Sim-time deltas sum
	// into dtnd_sim_seconds_total.
	lastT := make(map[int]float64)
	progress := func(p metrics.Progress) {
		s.m.progressEvents.Add(1)
		if dt := p.T - lastT[p.Seed]; dt > 0 {
			s.m.simMillis.Add(int64(dt * 1000))
			lastT[p.Seed] = p.T
		}
		j.publish(p)
	}
	// The store-threaded run path enables the spec's trace mode: with a
	// store attached, sweep cells marked "auto" replay their shared
	// recorded world instead of re-simulating mobility (see
	// experiment.RunSpecStore); without one, every seed runs live.
	//
	// Every daemon job runs profiled unless the spec opted out: the
	// profiler is bit-neutral and near-free, the per-phase breakdown feeds
	// /metrics and the job's status/terminal event, and the cacheable
	// result bytes are stripped of timing either way (CellResultOf).
	spec := j.spec
	if spec.Profile == nil {
		spec.Profile = experiment.Ptr(true)
	}
	sums, err := experiment.RunSpecStore(j.ctx, spec, s.store, progress)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			j.cancelled()
		} else {
			j.fail(err)
		}
		return
	}
	s.simulated.Add(1)
	// Fold the per-seed phase profiles into one job-level timing block
	// (feeding the /metrics phase counters) before CellResultOf strips
	// them from the cacheable result.
	var tm *obs.Timing
	for i := range sums {
		tm = obs.MergeTiming(tm, sums[i].Timing)
	}
	s.m.noteTiming(tm)
	res, err := experiment.CellResultOf(experiment.SweepCell{Spec: j.spec, Key: j.key}, sums)
	if err != nil {
		j.fail(err)
		return
	}
	if err := s.store.Put(res); err != nil {
		j.fail(fmt.Errorf("persist result: %w", err))
		return
	}
	// Encode once at completion; every later cache-hit serve of this job's
	// snapshot splices these bytes instead of re-marshalling.
	raw, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		j.fail(err)
		return
	}
	j.finish(res, raw, tm)
}

// jobResponse is the GET /v1/jobs/{id} reply.
type jobResponse struct {
	JobID  string      `json:"job_id"`
	Key    string      `json:"key"`
	Status string      `json:"status"`
	Error  string      `json:"error,omitempty"`
	Frac   float64     `json:"frac"`
	Result *Result     `json:"result,omitempty"`
	Timing *obs.Timing `json:"timing,omitempty"` // engine phase breakdown (jobs that simulated here)
}

func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
	}
	return j
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	// One snapshot: state, progress, result and error are read atomically,
	// so a reply can never pair "running" with a result or "done" without
	// one.
	snap := j.snapshot()
	resp := jobResponse{
		JobID:  j.id,
		Key:    j.key,
		Status: string(snap.state),
		Error:  snap.errMsg,
		Result: snap.result,
		Timing: snap.timing,
	}
	if n := len(snap.events); n > 0 {
		resp.Frac = snap.events[n-1].Frac
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleCancelJob cancels a queued or running job: the job's context is
// cancelled, so a queued job never starts and a running one stops
// simulating after its current tick and releases its permit. Jobs already
// in a terminal state answer 409.
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	if st := j.snapshot().state; terminalState(st) {
		writeErr(w, http.StatusConflict, fmt.Errorf("job %s already %s", j.id, st))
		return
	}
	s.log.Info("job cancel requested", "job", j.id, "key", j.key)
	j.cancel()
	writeJSON(w, http.StatusAccepted, map[string]string{"job_id": j.id, "status": "cancelling"})
}

// handleStream replays the job's progress history and follows it live as
// NDJSON — one metrics.Progress per line — until the job ends. The final
// line carries done=true and the mean summary (or the error).
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	s.m.streamSubs.Add(1)
	defer s.m.streamSubs.Add(-1)
	streamNDJSON(w, r, func() ([]metrics.Progress, chan struct{}) {
		snap := j.snapshot()
		return snap.events, snap.notify
	}, func(p metrics.Progress) bool { return p.Done })
}

// streamNDJSON replays an event history and follows it live as NDJSON —
// one event per line — until an event isFinal reports true for has been
// sent or the client goes away. snapshot must return the full event
// slice and the channel that closes on the next append, atomically.
// Writes stop at the first failed Encode: no flushing after a dead
// client.
func streamNDJSON[T any](w http.ResponseWriter, r *http.Request, snapshot func() ([]T, chan struct{}), isFinal func(T) bool) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	sent := 0
	for {
		events, notify := snapshot()
		final := false
		for _, p := range events[sent:] {
			if enc.Encode(p) != nil {
				return // client went away; no further writes or flushes
			}
			final = final || isFinal(p)
		}
		sent = len(events)
		if flusher != nil {
			flusher.Flush()
		}
		if final {
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}

// handleResult serves a cached result by content address. The read is
// local-only: this is the endpoint the fleet's pull-through tier probes,
// and a local-only serve guarantees probes cannot recurse peer-to-peer.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if _, raw, ok := s.store.GetRawLocal(key); ok {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(raw) // the store file is the reply: already indented JSON
		return
	}
	writeErr(w, http.StatusNotFound, fmt.Errorf("no cached result for %s", key))
}

// handleTrace serves a recorded contact-script blob by trace content
// address — local-only, like handleResult, for the same loop-freedom.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if data, ok := s.store.GetTraceLocal(key); ok {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusOK)
		w.Write(data)
		return
	}
	writeErr(w, http.StatusNotFound, fmt.Errorf("no recorded trace for %s", key))
}

// handleReady serves GET /v1/healthz, the readiness probe the fleet
// registry and load balancers poll: 200 while accepting work, 503 once
// draining — a draining worker leaves the dispatch rotation before its
// listener closes. (GET /healthz remains pure liveness: 200 until the
// process dies.)
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// jobListEntry is one row of GET /v1/jobs: the job's identity and
// aggregate progress, without its result payload.
type jobListEntry struct {
	JobID  string  `json:"job_id"`
	Key    string  `json:"key"`
	Status string  `json:"status"`
	Frac   float64 `json:"frac"`
	Error  string  `json:"error,omitempty"`
}

// jobListResponse is the GET /v1/jobs reply: every retained job in
// creation order. Total counts before pagination; Jobs holds the
// requested window.
type jobListResponse struct {
	Total  int            `json:"total"`
	Offset int            `json:"offset,omitempty"`
	Jobs   []jobListEntry `json:"jobs"`
}

// handleJobList serves GET /v1/jobs — the jobs-side twin of the sweep
// listing, with the same ?offset/limit pagination. Rows are ordered by
// creation (job ids are sequential); the retention ring bounds the list,
// and dropped jobs' results remain addressable through the store by key.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	offset, limit, err := pageParams(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	all := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		all = append(all, j)
	}
	s.mu.Unlock()
	sort.Slice(all, func(i, k int) bool {
		a, _ := strconv.Atoi(strings.TrimPrefix(all[i].id, "j"))
		b, _ := strconv.Atoi(strings.TrimPrefix(all[k].id, "j"))
		return a < b
	})
	total := len(all)
	offset = min(offset, total)
	end := total
	if limit >= 0 && offset+limit < end {
		end = offset + limit
	}
	rows := make([]jobListEntry, 0, end-offset)
	for _, j := range all[offset:end] {
		snap := j.snapshot()
		e := jobListEntry{JobID: j.id, Key: j.key, Status: string(snap.state), Error: snap.errMsg}
		if n := len(snap.events); n > 0 {
			e.Frac = snap.events[n-1].Frac
		}
		rows = append(rows, e)
	}
	writeJSON(w, http.StatusOK, jobListResponse{Total: total, Offset: offset, Jobs: rows})
}

// writeCachedResult writes the submit fast-path reply — submitResponse
// with cached=true — by splicing the result's pre-encoded bytes (a store
// file or a done job's one-time encoding) into a hand-built envelope, so
// a cache hit never re-marshals the per-seed summary table. Field order
// and formatting mirror writeJSON's encoding of submitResponse.
func writeCachedResult(w http.ResponseWriter, jobID, key string, raw []byte) {
	var b bytes.Buffer
	b.WriteString("{\n")
	if jobID != "" {
		fmt.Fprintf(&b, "  %q: %q,\n", "job_id", jobID)
	}
	fmt.Fprintf(&b, "  %q: %q,\n", "key", key)
	fmt.Fprintf(&b, "  %q: %q,\n", "status", string(stateDone))
	fmt.Fprintf(&b, "  %q: true,\n", "cached")
	fmt.Fprintf(&b, "  %q: ", "result")
	b.Write(bytes.TrimRight(raw, "\n"))
	b.WriteString("\n}\n")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(b.Bytes())
}

func (s *Server) handlePresets(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, experiment.PresetSpecs())
}

// maxRetainedJobs bounds finished jobs kept addressable in memory.
const maxRetainedJobs = 512

// jobSnap is one atomic observation of a job: every field a status reply
// needs, read under one lock acquisition so replies can never tear (e.g.
// "running" with a non-nil result).
type jobSnap struct {
	state      jobState
	events     []metrics.Progress
	result     *Result
	resultJSON []byte
	errMsg     string
	timing     *obs.Timing
	notify     chan struct{}
}

// snapshot returns the job's state, progress history, result, error and
// the channel that closes on the next append — atomically.
func (j *job) snapshot() jobSnap {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobSnap{state: j.state, events: j.events, result: j.result, resultJSON: j.resultJSON, errMsg: j.errMsg, timing: j.timing, notify: j.notify}
}

func (j *job) setState(st jobState) {
	j.mu.Lock()
	j.state = st
	j.mu.Unlock()
}

// subscribe registers fn to receive every event appended after this call
// (outside the job's lock) and returns the snapshot taken at registration
// — together they hand the caller the full ordered event sequence with no
// gap and no overlap.
func (j *job) subscribe(fn func(metrics.Progress)) jobSnap {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.subs = append(j.subs, fn)
	return jobSnap{state: j.state, events: j.events, result: j.result, errMsg: j.errMsg, notify: j.notify}
}

// publish appends one event, wakes streamers, and delivers to subscribers
// outside the lock (subscriber callbacks take sweep locks and read other
// jobs; holding j.mu across them would order locks job→sweep→job).
func (j *job) publish(p metrics.Progress) {
	j.mu.Lock()
	j.events = append(j.events, p)
	close(j.notify)
	j.notify = make(chan struct{})
	subs := j.subs
	j.mu.Unlock()
	for _, fn := range subs {
		fn(p)
	}
}

// appendProgress publishes one progress event (called from pool workers).
func (j *job) appendProgress(p metrics.Progress) { j.publish(p) }

// terminal moves the job to a final state and publishes the terminal
// progress event. The event carries the last observed completion fraction
// — a job that dies at 90% reports 90%, not 0 — or 1 on success, plus the
// job's engine phase profile when it simulated here.
func (j *job) terminal(st jobState, res *Result, raw []byte, errMsg string, tm *obs.Timing) {
	j.mu.Lock()
	p := metrics.Progress{Done: true, Error: errMsg, Timing: tm}
	if n := len(j.events); n > 0 {
		p.Frac = j.events[n-1].Frac
	}
	if st == stateDone && res != nil {
		mean := res.Mean
		p.Frac = 1
		p.Seed = len(res.Seeds) - 1
		p.Seeds = len(res.Seeds)
		p.Summary = &mean
	}
	j.state = st
	j.result = res
	j.resultJSON = raw
	j.errMsg = errMsg
	j.timing = tm
	j.events = append(j.events, p)
	close(j.notify)
	j.notify = make(chan struct{})
	subs := j.subs
	j.mu.Unlock()
	if j.onTerminal != nil {
		j.onTerminal(st)
	}
	for _, fn := range subs {
		fn(p)
	}
}

// finish publishes the result (and its one-time encoding), the job's
// phase profile, and the terminal progress event.
func (j *job) finish(res *Result, raw []byte, tm *obs.Timing) {
	j.terminal(stateDone, res, raw, "", tm)
}

// fail publishes the error and the terminal progress event.
func (j *job) fail(err error) { j.terminal(stateFailed, nil, nil, err.Error(), nil) }

// cancelled publishes the cancellation terminal event.
func (j *job) cancelled() { j.terminal(stateCancelled, nil, nil, "cancelled", nil) }

// writeJSON writes one JSON reply. The returned error reports a failed or
// short write (client gone); callers that would otherwise keep writing or
// flushing should stop.
func writeJSON(w http.ResponseWriter, code int, v any) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// ListenAndServe runs the daemon on addr until ctx is cancelled, then
// drains in-flight jobs and shuts the listener down. The bound address is
// reported through ready (if non-nil) once the listener is up — callers
// using ":0" learn the port. It is the one serving loop cmd/dtnd and
// `dtnsim -serve` share.
func ListenAndServe(ctx context.Context, addr string, cfg Config, ready func(addr string)) error {
	s, err := New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready(ln.Addr().String())
	}
	s.log.Info("listening", "addr", ln.Addr().String(), "pprof", cfg.EnablePprof)
	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Drain: finish accepted jobs (submissions now get 503), then close
	// idle connections and outstanding streams.
	s.log.Info("draining")
	drainErr := s.Drain(context.Background())
	shutErr := hs.Shutdown(context.Background())
	s.Close()
	if drainErr != nil {
		return drainErr
	}
	return shutErr
}
