// Package server implements dtnd, the long-running simulation service: an
// HTTP/JSON daemon that accepts declarative scenario specs
// (experiment.ScenarioSpec), runs them as jobs on the shared
// GOMAXPROCS-bounded experiment pool, streams live progress as NDJSON and
// serves results from a content-addressed cache — the hash of the
// canonicalized spec addresses its summary on disk, so resubmitting a
// sweep point costs one file read instead of a simulation.
//
// API (see DESIGN.md "Simulation service"):
//
//	POST /v1/jobs           submit a spec; returns job id or cached result
//	GET  /v1/jobs/{id}        job status (+ result when done)
//	GET  /v1/jobs/{id}/stream live NDJSON progress until the job ends
//	GET  /v1/results/{key}    cached result by content address
//	GET  /v1/presets          the named base specs
//	GET  /healthz             liveness
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/experiment"
	"repro/internal/metrics"
)

// Config parameterises the daemon.
type Config struct {
	// CacheDir is the content-addressed result store. Empty disables
	// persistent caching (every submission simulates).
	CacheDir string
	// MaxConcurrentJobs bounds jobs simulating at once (default 1). Each
	// job already fans its seeds out over the shared GOMAXPROCS-bounded
	// pool, so one job saturates the machine; raise this only to
	// interleave many small jobs.
	MaxConcurrentJobs int
	// MaxQueuedJobs bounds accepted-but-not-finished jobs (default 64);
	// beyond it submissions are refused with 429.
	MaxQueuedJobs int
}

// jobState is the lifecycle of a submitted job.
type jobState string

const (
	stateQueued  jobState = "queued"
	stateRunning jobState = "running"
	stateDone    jobState = "done"
	stateFailed  jobState = "failed"
)

// job is one accepted submission. Progress events accumulate under mu;
// notify is closed and replaced on every append, so any number of
// streaming subscribers replay the history and then follow live.
type job struct {
	id   string
	key  string
	spec experiment.ScenarioSpec

	mu     sync.Mutex
	state  jobState
	events []metrics.Progress
	notify chan struct{}
	result *Result
	errMsg string
}

// Result is the persisted outcome of a job — the value the content
// address resolves to. CanonicalSpec echoes the exact resolved scenario
// the key was derived from, so a cached result is self-describing.
type Result struct {
	Key           string            `json:"key"`
	CanonicalSpec json.RawMessage   `json:"canonical_spec"`
	Seeds         []int64           `json:"seeds"`
	PerSeed       []metrics.Summary `json:"per_seed"`
	Mean          metrics.Summary   `json:"mean"`
}

// Server is the dtnd daemon state. Create with New; serve Handler().
type Server struct {
	cfg Config
	mux *http.ServeMux

	mu       sync.Mutex
	jobs     map[string]*job // by job id
	active   map[string]*job // queued/running jobs by cache key (dedupe)
	finished []string        // finished job ids, completion order (retention ring)
	nextID   int
	queued   int
	draining bool

	sem       chan struct{}  // MaxConcurrentJobs permits
	wg        sync.WaitGroup // accepted jobs not yet finished
	simulated atomic.Int64   // jobs that actually ran (cache misses)
}

// New returns a server, creating the cache directory if configured.
func New(cfg Config) (*Server, error) {
	if cfg.MaxConcurrentJobs <= 0 {
		cfg.MaxConcurrentJobs = 1
	}
	if cfg.MaxQueuedJobs <= 0 {
		cfg.MaxQueuedJobs = 64
	}
	if cfg.CacheDir != "" {
		if err := os.MkdirAll(cfg.CacheDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: cache dir: %w", err)
		}
	}
	s := &Server{
		cfg:    cfg,
		jobs:   make(map[string]*job),
		active: make(map[string]*job),
		sem:    make(chan struct{}, cfg.MaxConcurrentJobs),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /v1/results/{key}", s.handleResult)
	s.mux.HandleFunc("GET /v1/presets", s.handlePresets)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return s, nil
}

// Handler returns the HTTP handler (also usable under httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Simulated returns how many jobs ran a simulation (cache misses) — the
// observability hook the cache tests assert on.
func (s *Server) Simulated() int64 { return s.simulated.Load() }

// Drain stops accepting jobs and waits until every accepted job has
// finished (queued jobs still run — they were acknowledged), or until ctx
// expires. It is the graceful-shutdown half; closing the listener is the
// caller's (ListenAndServe's) other half.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain: %w", ctx.Err())
	}
}

// submitResponse is the POST /v1/jobs reply.
type submitResponse struct {
	JobID  string  `json:"job_id,omitempty"`
	Key    string  `json:"key"`
	Status string  `json:"status"`
	Cached bool    `json:"cached"`
	Result *Result `json:"result,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return
	}
	spec, err := experiment.ParseSpec(body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	key, err := spec.CacheKey() // resolves and validates the spec
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}

	// Content-addressed fast path: an identical resolved job was already
	// computed — serve the summary from disk, no simulation.
	if res, ok := s.readCache(key); ok {
		writeJSON(w, http.StatusOK, submitResponse{Key: key, Status: string(stateDone), Cached: true, Result: res})
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, errors.New("server draining, not accepting jobs"))
		return
	}
	// Coalesce with an in-flight identical job.
	if j := s.active[key]; j != nil {
		st, _, _ := j.snapshot()
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, submitResponse{JobID: j.id, Key: key, Status: string(st)})
		return
	}
	if s.queued >= s.cfg.MaxQueuedJobs {
		s.mu.Unlock()
		writeErr(w, http.StatusTooManyRequests, errors.New("job queue full"))
		return
	}
	s.nextID++
	j := &job{
		id:     fmt.Sprintf("j%d", s.nextID),
		key:    key,
		spec:   spec,
		state:  stateQueued,
		notify: make(chan struct{}),
	}
	s.jobs[j.id] = j
	s.active[key] = j
	s.queued++
	s.wg.Add(1)
	s.mu.Unlock()

	go s.runJob(j)
	writeJSON(w, http.StatusAccepted, submitResponse{JobID: j.id, Key: key, Status: string(stateQueued)})
}

// runJob executes one accepted job: wait for a concurrency permit,
// simulate with live progress, persist and publish the result.
func (s *Server) runJob(j *job) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.active, j.key)
		s.queued--
		// Retention: keep the most recent finished jobs addressable by id
		// (status/stream replay), dropping the oldest beyond the ring so a
		// long-lived daemon's per-job state is bounded. Their results stay
		// servable forever through the on-disk cache by key.
		s.finished = append(s.finished, j.id)
		for len(s.finished) > maxRetainedJobs {
			delete(s.jobs, s.finished[0])
			s.finished = s.finished[1:]
		}
		s.mu.Unlock()
	}()
	// Spec validation screens known-bad shapes, but the engine panics on
	// combinations nobody has tried yet; contain those to the one job
	// instead of killing the daemon (and every queued job) with it.
	defer func() {
		if r := recover(); r != nil {
			j.fail(fmt.Errorf("job panicked: %v", r))
		}
	}()
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	j.setState(stateRunning)
	sums, err := experiment.RunSpecProgress(j.spec, j.appendProgress)
	if err != nil {
		j.fail(err)
		return
	}
	s.simulated.Add(1)
	canon, err := j.spec.CanonicalJSON()
	if err != nil {
		j.fail(err)
		return
	}
	res := &Result{
		Key:           j.key,
		CanonicalSpec: canon,
		Seeds:         j.spec.SeedList(),
		PerSeed:       sums,
		Mean:          metrics.Mean(sums),
	}
	if err := s.writeCache(res); err != nil {
		j.fail(fmt.Errorf("persist result: %w", err))
		return
	}
	j.finish(res)
}

// jobResponse is the GET /v1/jobs/{id} reply.
type jobResponse struct {
	JobID  string  `json:"job_id"`
	Key    string  `json:"key"`
	Status string  `json:"status"`
	Error  string  `json:"error,omitempty"`
	Frac   float64 `json:"frac"`
	Result *Result `json:"result,omitempty"`
}

func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
	}
	return j
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	st, events, _ := j.snapshot()
	resp := jobResponse{JobID: j.id, Key: j.key, Status: string(st)}
	if n := len(events); n > 0 {
		resp.Frac = events[n-1].Frac
	}
	j.mu.Lock()
	resp.Result = j.result
	resp.Error = j.errMsg
	j.mu.Unlock()
	if st == stateDone {
		resp.Frac = 1
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleStream replays the job's progress history and follows it live as
// NDJSON — one metrics.Progress per line — until the job ends. The final
// line carries done=true and the mean summary (or the error).
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	sent := 0
	for {
		_, events, notify := j.snapshot()
		final := false
		for _, p := range events[sent:] {
			if enc.Encode(p) != nil {
				return // client went away
			}
			final = final || p.Done
		}
		sent = len(events)
		if flusher != nil {
			flusher.Flush()
		}
		if final {
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if res, ok := s.readCache(key); ok {
		writeJSON(w, http.StatusOK, res)
		return
	}
	writeErr(w, http.StatusNotFound, fmt.Errorf("no cached result for %s", key))
}

func (s *Server) handlePresets(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, experiment.PresetSpecs())
}

// maxRetainedJobs bounds finished jobs kept addressable in memory.
const maxRetainedJobs = 512

// cachePath maps a content address to its file; the two-character fan
// out keeps directories small under big sweeps. Keys must be lowercase
// hex SHA-256 — anything else (e.g. a path-traversing "..xx" from the
// results endpoint) maps to nothing.
func (s *Server) cachePath(key string) string {
	if s.cfg.CacheDir == "" || !validCacheKey(key) {
		return ""
	}
	return filepath.Join(s.cfg.CacheDir, key[:2], key+".json")
}

// validCacheKey reports whether key is a lowercase hex SHA-256.
func validCacheKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Server) readCache(key string) (*Result, bool) {
	path := s.cachePath(key)
	if path == "" {
		return nil, false
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var res Result
	if json.Unmarshal(data, &res) != nil || res.Key != key {
		return nil, false // corrupt entry: treat as a miss, recompute
	}
	return &res, true
}

// writeCache persists a result atomically (temp file + rename), so a
// crashed write can never be read back as a (corrupt) hit.
func (s *Server) writeCache(res *Result) error {
	path := s.cachePath(res.Key)
	if path == "" {
		return nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// snapshot returns the job's state, progress history and the channel that
// closes on the next append.
func (j *job) snapshot() (jobState, []metrics.Progress, chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.events, j.notify
}

func (j *job) setState(st jobState) {
	j.mu.Lock()
	j.state = st
	j.mu.Unlock()
}

// appendProgress publishes one progress event (called from pool workers).
func (j *job) appendProgress(p metrics.Progress) {
	j.mu.Lock()
	j.events = append(j.events, p)
	close(j.notify)
	j.notify = make(chan struct{})
	j.mu.Unlock()
}

// finish publishes the result and the terminal progress event.
func (j *job) finish(res *Result) {
	mean := res.Mean
	j.mu.Lock()
	j.state = stateDone
	j.result = res
	j.events = append(j.events, metrics.Progress{
		Seed: len(res.Seeds) - 1, Seeds: len(res.Seeds),
		Frac: 1, Done: true, Summary: &mean,
	})
	close(j.notify)
	j.notify = make(chan struct{})
	j.mu.Unlock()
}

// fail publishes the error and the terminal progress event.
func (j *job) fail(err error) {
	j.mu.Lock()
	j.state = stateFailed
	j.errMsg = err.Error()
	j.events = append(j.events, metrics.Progress{Done: true, Error: err.Error()})
	close(j.notify)
	j.notify = make(chan struct{})
	j.mu.Unlock()
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// ListenAndServe runs the daemon on addr until ctx is cancelled, then
// drains in-flight jobs and shuts the listener down. The bound address is
// reported through ready (if non-nil) once the listener is up — callers
// using ":0" learn the port. It is the one serving loop cmd/dtnd and
// `dtnsim -serve` share.
func ListenAndServe(ctx context.Context, addr string, cfg Config, ready func(addr string)) error {
	s, err := New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready(ln.Addr().String())
	}
	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Drain: finish accepted jobs (submissions now get 503), then close
	// idle connections and outstanding streams.
	drainErr := s.Drain(context.Background())
	shutErr := hs.Shutdown(context.Background())
	if drainErr != nil {
		return drainErr
	}
	return shutErr
}
