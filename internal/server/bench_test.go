package server

// Benchmarks of the hot service-layer paths — the numbers dtnload's
// throughput ultimately decomposes into — plus lock-discipline tests
// asserting that no Server.mu or job.mu hold ever spans a simulation or
// a network write: the daemon must answer status, submit and metrics
// requests promptly no matter what its jobs, subscribers or stream
// clients are doing.

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/experiment"
	"repro/internal/metrics"
)

// benchServer builds a daemon with a finished job to probe.
func benchServer(b *testing.B) (*Server, *job) {
	s, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	j, spec := fabricateJob(b, s, testSpec)
	res := &Result{Key: j.key, Seeds: spec.SeedList(), PerSeed: []metrics.Summary{{Generated: 1}, {Generated: 2}}, Mean: metrics.Summary{Generated: 1}}
	raw, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	j.finish(res, raw, nil)
	return s, j
}

// BenchmarkStatusHandler measures GET /v1/jobs/{id} of a finished job —
// the poll loop every synchronous client sits in.
func BenchmarkStatusHandler(b *testing.B) {
	s, j := benchServer(b)
	h := s.Handler()
	req := httptest.NewRequest("GET", "/v1/jobs/"+j.id, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
}

// BenchmarkSubmitCachedHit measures POST /v1/jobs answered from the
// terminal in-flight snapshot — the cached fast path under load.
func BenchmarkSubmitCachedHit(b *testing.B) {
	s, _ := benchServer(b)
	h := s.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(testSpec))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
	}
}

// BenchmarkSubmitHit measures POST /v1/jobs answered from the on-disk
// content-addressed store — the common fast path of a warm daemon. The
// reply splices the store file's encoded bytes into the envelope; before
// the encoded-result fast path every hit re-marshalled the full per-seed
// summary table.
func BenchmarkSubmitHit(b *testing.B) {
	s, err := New(Config{CacheDir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	spec, err := experiment.ParseSpec([]byte(testSpec))
	if err != nil {
		b.Fatal(err)
	}
	key, err := spec.CacheKey()
	if err != nil {
		b.Fatal(err)
	}
	res := &Result{Key: key, Seeds: spec.SeedList(), PerSeed: make([]metrics.Summary, len(spec.SeedList()))}
	if err := s.store.Put(res); err != nil {
		b.Fatal(err)
	}
	h := s.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(testSpec))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
	}
}

// BenchmarkSubmitCoalesce measures POST /v1/jobs attaching to an
// identical live in-flight job — the path every duplicate submission of
// a popular spec takes while it simulates.
func BenchmarkSubmitCoalesce(b *testing.B) {
	s, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	fabricateJob(b, s, testSpec) // stays queued forever: never runs
	h := s.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(testSpec))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
	}
}

// BenchmarkPublishFanout measures one progress event appended to the
// job's history and delivered to subscribers — the simulation-side cost
// of every stream line and sweep fold.
func BenchmarkPublishFanout(b *testing.B) {
	for _, subs := range []int{0, 1, 16, 64} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			s, err := New(Config{})
			if err != nil {
				b.Fatal(err)
			}
			j, _ := fabricateJob(b, s, testSpec)
			for i := 0; i < subs; i++ {
				j.subscribe(func(metrics.Progress) {})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j.publish(metrics.Progress{Seed: 1, Frac: 0.5})
			}
		})
	}
}

// BenchmarkSweepStatusPagination measures assembling the sweep reply for
// a 256-cell grid: the full table vs one 32-row page — the cost
// ?offset/limit exists to avoid.
func BenchmarkSweepStatusPagination(b *testing.B) {
	cells := make([]sweepCellRef, 256)
	for i := range cells {
		res := &Result{Key: fmt.Sprintf("k%03d", i), Mean: metrics.Summary{Generated: i}}
		cells[i] = sweepCellRef{
			cell:   experiment.SweepCell{Key: res.Key, Axes: []experiment.AxisValue{{Axis: "alpha", Value: fmt.Sprint(i)}}},
			cached: res,
		}
	}
	sw := newSweepJob("s1", cells)
	sw.seal()
	for _, bc := range []struct {
		name          string
		offset, limit int
	}{{"full", 0, -1}, {"page32", 128, 32}, {"aggregateOnly", 0, 0}} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				resp := sweepStatus(sw, bc.offset, bc.limit)
				if resp.CellsTotal != 256 {
					b.Fatalf("cells %d", resp.CellsTotal)
				}
			}
		})
	}
}

// promptly runs fn with a generous deadline and fails if it does not
// return — the probe the lock-discipline tests use: any Server.mu/job.mu
// hold spanning a simulation or a blocked write turns these
// milliseconds-fast requests into multi-second stalls or deadlocks.
func promptly(t *testing.T, what string, fn func()) time.Duration {
	t.Helper()
	done := make(chan struct{})
	t0 := time.Now()
	go func() { fn(); close(done) }()
	select {
	case <-done:
		return time.Since(t0)
	case <-time.After(10 * time.Second):
		t.Fatalf("%s did not respond: a lock is held across simulation or network I/O", what)
		return 0
	}
}

// TestResponsiveDuringSimulation: while a multi-second job simulates,
// every control-plane request — status, metrics, sweep list, a cached
// submit, a fresh submit — answers promptly. If any handler or runJob
// held Server.mu or job.mu across the simulation, these would block for
// the simulation's lifetime.
func TestResponsiveDuringSimulation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrentJobs: 2})
	// Seed the cache so one probe exercises the disk fast path.
	warm, code := postSpec(t, ts, testSpec)
	if code != http.StatusAccepted {
		t.Fatalf("warm submit %d", code)
	}
	waitDone(t, ts, warm.JobID)

	sub, code := postSpec(t, ts, longSpec)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	waitState(t, ts, sub.JobID, stateRunning)

	probes := map[string]func(){
		"status poll": func() {
			var jr jobResponse
			getJSON(t, ts.URL+"/v1/jobs/"+sub.JobID, &jr)
		},
		"metrics scrape": func() {
			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
		},
		"sweep list": func() {
			var l struct{}
			getJSON(t, ts.URL+"/v1/sweeps", &l)
		},
		"cached submit": func() {
			if r, code := postSpec(t, ts, testSpec); code != http.StatusOK || !r.Cached {
				t.Errorf("cached submit during sim: %d %+v", code, r)
			}
		},
		"fresh submit": func() {
			// Only the acknowledgement must be prompt — the job itself
			// legitimately queues behind the running simulation for pool
			// workers.
			if _, code := postSpec(t, ts, `{"preset":"quick","protocol":"Direct","nodes":12,"duration":200,"seeds":[99]}`); code != http.StatusAccepted {
				t.Errorf("fresh submit during sim: %d", code)
			}
		},
	}
	for what, fn := range probes {
		promptly(t, what, fn)
	}
	// The probes must have run against a live simulation, or they proved
	// nothing.
	var jr jobResponse
	getJSON(t, ts.URL+"/v1/jobs/"+sub.JobID, &jr)
	if terminalState(jobState(jr.Status)) {
		t.Skipf("job finished before all probes ran (machine too fast/slow); re-run")
	}
	del(t, ts.URL+"/v1/jobs/"+sub.JobID)
	waitState(t, ts, sub.JobID, stateCancelled, stateDone)
}

// TestPublishHoldsNoLockAcrossSubscriber pins publish's contract: while
// a subscriber callback is blocked (a slow sweep fold, a slow write),
// the job's lock and the server's lock must already be released — status
// polls of the very same job, new submissions of the same spec, and
// metrics scrapes all answer promptly.
func TestPublishHoldsNoLockAcrossSubscriber(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	sub, code := postSpec(t, ts, longSpec)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	s.mu.Lock()
	j := s.jobs[sub.JobID]
	s.mu.Unlock()

	blocked := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	snap := j.subscribe(func(p metrics.Progress) {
		once.Do(func() {
			close(blocked)
			<-release
		})
	})
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()
	if terminalState(snap.state) {
		t.Skip("job finished before subscription")
	}
	select {
	case <-blocked:
	case <-time.After(30 * time.Second):
		t.Fatal("job never published an event")
	}

	// The publishing goroutine is parked inside the subscriber callback.
	promptly(t, "status poll of the publishing job", func() {
		var jr jobResponse
		getJSON(t, ts.URL+"/v1/jobs/"+sub.JobID, &jr)
	})
	promptly(t, "coalescing submit onto the publishing job", func() {
		if r, code := postSpec(t, ts, longSpec); code != http.StatusOK || r.JobID != sub.JobID {
			t.Errorf("coalesce during publish: %d %+v", code, r)
		}
	})
	promptly(t, "metrics scrape during publish", func() {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Error(err)
			return
		}
		resp.Body.Close()
	})
	close(release)
	del(t, ts.URL+"/v1/jobs/"+sub.JobID)
	waitState(t, ts, sub.JobID, stateCancelled, stateDone)
}

// TestStalledStreamClientDoesNotBlockJob: a stream client that stops
// reading must stall only its own handler goroutine. The job keeps
// simulating to completion and the control plane stays responsive —
// publishes never write to sockets, they only wake the per-client
// goroutines that do.
func TestStalledStreamClientDoesNotBlockJob(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sub, code := postSpec(t, ts, `{"protocol": "EER", "nodes": 80, "duration": 10000, "seeds": [1, 2]}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}

	// A raw client that sends the stream request and never reads a byte.
	conn, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetReadBuffer(1 << 10) // shrink the window so writes back up sooner
	}
	fmt.Fprintf(conn, "GET /v1/jobs/%s/stream HTTP/1.1\r\nHost: dtnd\r\n\r\n", sub.JobID)

	// The job must still finish, and status must stay prompt throughout.
	deadline := time.Now().Add(60 * time.Second)
	for {
		var jr jobResponse
		promptly(t, "status poll with a stalled stream client", func() {
			getJSON(t, ts.URL+"/v1/jobs/"+sub.JobID, &jr)
		})
		if jr.Status == string(stateDone) {
			if jr.Result == nil {
				t.Fatal("done without result")
			}
			return
		}
		if jr.Status == string(stateFailed) {
			t.Fatalf("job failed: %s", jr.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("job starved by a stalled stream client")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
