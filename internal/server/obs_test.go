package server

// Tests for the daemon's observability surface: Prometheus exposition
// completeness (every registered metric declared and sampled exactly
// once, all lines well-formed), the histogram families, per-job engine
// timing in status/stream replies, pprof gating, and structured logging.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/metrics"
	"repro/internal/obs"
)

// promMetric is one parsed exposition family: its declared type and the
// label sets sampled under its name (histogram suffixes fold into the
// base family).
type promMetric struct {
	typ     string
	help    bool
	samples []string // full sample keys: name{labels}
	values  []float64
}

var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"$`)
)

// parsePromText parses Prometheus text exposition strictly: every line
// must be a HELP, a TYPE, or a well-formed sample; HELP/TYPE must precede
// their samples and appear exactly once; sample keys must be unique.
func parsePromText(t *testing.T, body string) map[string]*promMetric {
	t.Helper()
	fams := map[string]*promMetric{}
	fam := func(name string) *promMetric {
		// _bucket/_sum/_count samples belong to their histogram family.
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			if b := strings.TrimSuffix(name, sfx); b != name {
				if f, ok := fams[b]; ok && f.typ == "histogram" {
					return f
				}
			}
		}
		if f, ok := fams[name]; ok {
			return f
		}
		f := &promMetric{}
		fams[name] = f
		return f
	}
	seen := map[string]bool{}
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, ok := strings.Cut(rest, " ")
			if !ok || !promNameRe.MatchString(name) || help == "" {
				t.Fatalf("line %d: malformed HELP %q", ln+1, line)
			}
			f := fam(name)
			if f.help {
				t.Fatalf("line %d: duplicate HELP for %s", ln+1, name)
			}
			f.help = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || !promNameRe.MatchString(name) {
				t.Fatalf("line %d: malformed TYPE %q", ln+1, line)
			}
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Fatalf("line %d: unknown type %q for %s", ln+1, typ, name)
			}
			f := fams[name]
			if f == nil {
				f = &promMetric{}
				fams[name] = f
			}
			if f.typ != "" {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			f.typ = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		}
		key, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("line %d: malformed sample %q", ln+1, line)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("line %d: non-numeric value in %q: %v", ln+1, line, err)
		}
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("line %d: unbalanced braces in %q", ln+1, key)
			}
			name = key[:i]
			for _, lbl := range splitLabels(key[i+1 : len(key)-1]) {
				if !promLabelRe.MatchString(lbl) {
					t.Fatalf("line %d: malformed label %q in %q", ln+1, lbl, key)
				}
			}
		}
		if !promNameRe.MatchString(name) {
			t.Fatalf("line %d: bad metric name %q", ln+1, name)
		}
		if seen[key] {
			t.Fatalf("line %d: sample %q exposed twice", ln+1, key)
		}
		seen[key] = true
		f := fam(name)
		f.samples = append(f.samples, key)
		f.values = append(f.values, v)
	}
	return fams
}

// splitLabels splits `a="x",b="y"` on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// TestMetricsCompleteness scrapes a fresh server and checks the whole
// exposition is internally consistent: every family has HELP, TYPE and
// at least one sample; no family or sample repeats; histogram bucket
// series are cumulative, end at le="+Inf", and reconcile with _count;
// and the per-phase family carries one series per engine phase.
func TestMetricsCompleteness(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := httpBody(resp)
	if err != nil {
		t.Fatal(err)
	}
	fams := parsePromText(t, raw)

	if len(fams) < 25 {
		t.Fatalf("only %d metric families exposed", len(fams))
	}
	var names []string
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := fams[name]
		if !f.help || f.typ == "" {
			t.Errorf("%s: missing HELP or TYPE (help=%v typ=%q)", name, f.help, f.typ)
		}
		if len(f.samples) == 0 {
			t.Errorf("%s: declared but never sampled", name)
		}
		if f.typ != "histogram" && len(f.samples) > 1 && name != "dtnd_sim_phase_seconds_total" {
			t.Errorf("%s: %d samples for a scalar metric", name, len(f.samples))
		}
	}

	// The phase family exposes exactly one series per engine phase.
	phases := fams["dtnd_sim_phase_seconds_total"]
	if phases == nil || len(phases.samples) != int(obs.NumPhases) {
		t.Fatalf("phase family: %+v, want %d series", phases, int(obs.NumPhases))
	}
	for _, ph := range obs.PhaseNames() {
		key := fmt.Sprintf("dtnd_sim_phase_seconds_total{phase=%q}", ph)
		if !containsSample(phases.samples, key) {
			t.Errorf("phase series %s missing", key)
		}
	}

	// Histogram families: per labeled series, buckets are cumulative,
	// finish at +Inf, and the +Inf bucket equals _count.
	for _, name := range []string{"dtnd_http_request_duration_seconds", "dtnd_queue_wait_seconds"} {
		f := fams[name]
		if f == nil || f.typ != "histogram" {
			t.Fatalf("%s: missing or not a histogram (%+v)", name, f)
		}
		checkHistogramSeries(t, name, f)
	}
	if got := countSuffix(fams["dtnd_http_request_duration_seconds"].samples, "_count"); got != len(respClasses) {
		t.Errorf("http duration: %d _count series, want one per response class (%d)", got, len(respClasses))
	}
}

// checkHistogramSeries groups a histogram family's samples by label set
// and validates each series' shape.
func checkHistogramSeries(t *testing.T, name string, f *promMetric) {
	t.Helper()
	type series struct {
		buckets []float64
		lastInf bool
		sum     float64
		count   float64
		hasSum  bool
		hasCnt  bool
	}
	bySeries := map[string]*series{}
	get := func(key string) *series {
		s := bySeries[key]
		if s == nil {
			s = &series{}
			bySeries[key] = s
		}
		return s
	}
	for i, key := range f.samples {
		v := f.values[i]
		switch {
		case strings.HasPrefix(key, name+"_bucket{"):
			// The series identity is the label set minus le.
			lbls := key[len(name+"_bucket{") : len(key)-1]
			var rest []string
			le := ""
			for _, l := range splitLabels(lbls) {
				if val, ok := strings.CutPrefix(l, "le="); ok {
					le = val
				} else {
					rest = append(rest, l)
				}
			}
			s := get(strings.Join(rest, ","))
			s.buckets = append(s.buckets, v)
			s.lastInf = le == `"+Inf"`
		case strings.HasPrefix(key, name+"_sum"):
			s := get(strings.Trim(strings.TrimPrefix(key, name+"_sum"), "{}"))
			s.sum, s.hasSum = v, true
		case strings.HasPrefix(key, name+"_count"):
			s := get(strings.Trim(strings.TrimPrefix(key, name+"_count"), "{}"))
			s.count, s.hasCnt = v, true
		}
	}
	if len(bySeries) == 0 {
		t.Fatalf("%s: no series", name)
	}
	for lbls, s := range bySeries {
		if !s.hasSum || !s.hasCnt {
			t.Errorf("%s{%s}: missing _sum or _count", name, lbls)
		}
		if !s.lastInf {
			t.Errorf("%s{%s}: bucket series does not end at le=\"+Inf\"", name, lbls)
		}
		for i := 1; i < len(s.buckets); i++ {
			if s.buckets[i] < s.buckets[i-1] {
				t.Errorf("%s{%s}: buckets not cumulative at %d", name, lbls, i)
			}
		}
		if n := len(s.buckets); n > 0 && s.buckets[n-1] != s.count {
			t.Errorf("%s{%s}: +Inf bucket %g != count %g", name, lbls, s.buckets[n-1], s.count)
		}
	}
}

func containsSample(samples []string, key string) bool {
	for _, s := range samples {
		if s == key {
			return true
		}
	}
	return false
}

func countSuffix(samples []string, sfx string) int {
	n := 0
	for _, s := range samples {
		if strings.Contains(s, sfx) {
			n++
		}
	}
	return n
}

func httpBody(resp *http.Response) (string, error) {
	var b strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		b.WriteString(sc.Text())
		b.WriteByte('\n')
	}
	return b.String(), sc.Err()
}

// TestJobTimingAndHistograms runs a real job over HTTP and checks the
// request-tracing surface end to end: the job status carries the engine
// phase breakdown, the terminal stream event repeats it, the phase
// counters and both histogram families advance, and the queue-wait
// histogram saw the job.
func TestJobTimingAndHistograms(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	sub, code := postSpec(t, ts, testSpec)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	jr := waitDone(t, ts, sub.JobID)
	if jr.Timing == nil {
		t.Fatal("done job status has no timing block")
	}
	if jr.Timing.Runs != 2 || jr.Timing.Ticks == 0 {
		t.Fatalf("timing header: %+v (want runs=2 for the two seeds)", jr.Timing)
	}
	if jr.Timing.PhaseSeconds("mobility") <= 0 || jr.Timing.PhaseSeconds("scan") <= 0 {
		t.Fatalf("phase breakdown empty: %+v", jr.Timing.Phases)
	}
	// Bit-neutrality at the wire: the cached result must not carry timing.
	rawRes, _ := json.Marshal(jr.Result)
	if strings.Contains(string(rawRes), `"timing"`) {
		t.Fatalf("timing leaked into the cacheable result: %s", rawRes)
	}

	// The terminal stream event repeats the timing block.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.JobID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var last metrics.Progress
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
	}
	if !last.Done || last.Timing == nil || last.Timing.PhaseSeconds("mobility") <= 0 {
		t.Fatalf("terminal stream event lacks timing: %+v", last)
	}

	// Server-side counters: phase seconds, queue wait and HTTP duration
	// all advanced.
	m := scrapeMetrics(t, ts)
	if v := m[`dtnd_sim_phase_seconds_total{phase="mobility"}`]; v <= 0 {
		t.Errorf("mobility phase counter = %g, want > 0", v)
	}
	if v := m["dtnd_queue_wait_seconds_count"]; v != 1 {
		t.Errorf("queue wait count = %g, want 1", v)
	}
	if v := m[`dtnd_http_request_duration_seconds_count{class="2xx"}`]; v < 2 {
		t.Errorf("2xx duration count = %g, want >= 2", v)
	}
}

// TestPprofGating pins the satellite contract: /debug/pprof/* is absent
// by default and served when Config.EnablePprof is set.
func TestPprofGating(t *testing.T) {
	_, off := newTestServer(t, Config{})
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof disabled: GET /debug/pprof/ status %d, want 404", resp.StatusCode)
	}

	_, on := newTestServer(t, Config{EnablePprof: true})
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof enabled: GET /debug/pprof/ status %d, want 200", resp.StatusCode)
	}
	resp, err = http.Get(on.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof enabled: GET /debug/pprof/cmdline status %d, want 200", resp.StatusCode)
	}
}

// TestStructuredLogging checks the slog surface: job lifecycle lines
// carry the job and key attributes, sweep acceptance carries the sweep
// id, and a nil Logger config stays silent (and does not crash).
func TestStructuredLogging(t *testing.T) {
	lw := &syncWriter{}
	logger := slog.New(slog.NewJSONHandler(lw, &slog.HandlerOptions{Level: slog.LevelDebug}))
	_, ts := newTestServer(t, Config{Logger: logger})

	sub, code := postSpec(t, ts, testSpec)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	waitDone(t, ts, sub.JobID)
	if _, code := postSpec(t, ts, testSpec); code != http.StatusOK {
		t.Fatalf("resubmit status %d", code)
	}
	sw, code := postSweep(t, ts, testSweep)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("sweep status %d", code)
	}
	waitSweepState(t, ts, sw.SweepID, stateDone)

	type line struct {
		Msg   string `json:"msg"`
		Job   string `json:"job"`
		Key   string `json:"key"`
		Sweep string `json:"sweep"`
	}
	var byMsg = map[string][]line{}
	for _, raw := range strings.Split(lw.String(), "\n") {
		if raw == "" {
			continue
		}
		var l line
		if err := json.Unmarshal([]byte(raw), &l); err != nil {
			t.Fatalf("non-JSON log line %q: %v", raw, err)
		}
		byMsg[l.Msg] = append(byMsg[l.Msg], l)
	}
	for _, msg := range []string{"job accepted", "job running", "job terminal"} {
		ls := byMsg[msg]
		if len(ls) == 0 {
			t.Fatalf("no %q log line; have %v", msg, keysOf(byMsg))
		}
		for _, l := range ls {
			if l.Job == "" || l.Key == "" {
				t.Errorf("%q line missing job/key attrs: %+v", msg, l)
			}
		}
	}
	if ls := byMsg["job cache hit"]; len(ls) == 0 {
		t.Error("no cache-hit debug line for the resubmission")
	}
	if ls := byMsg["sweep accepted"]; len(ls) == 0 || ls[0].Sweep == "" {
		t.Errorf("sweep acceptance line missing or without sweep id: %+v", ls)
	}
}

func keysOf[V any](m map[string][]V) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// syncWriter serializes writes: slog handlers lock per-handler, but the
// test reads the buffer while jobs may still log from their goroutines.
type syncWriter struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncWriter) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
