package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// scrapeMetrics fetches /metrics and parses the sample lines into a map.
func scrapeMetrics(t *testing.T, ts *httptest.Server) map[string]float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]float64{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed sample line %q", line)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("non-numeric sample %q: %v", line, err)
		}
		if _, dup := out[name]; dup {
			t.Fatalf("metric %s exposed twice", name)
		}
		out[name] = f
	}
	return out
}

// TestMetricsEndpoint drives a representative traffic mix and checks the
// exposition format plus the reconciliation invariant CI relies on:
// submissions == hits + misses, and every terminal job is counted.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// A zero-traffic scrape exposes every metric, all zero except gauges.
	m0 := scrapeMetrics(t, ts)
	for _, name := range []string{
		"dtnd_submissions_total", "dtnd_submit_cache_hits_total",
		"dtnd_submit_cache_misses_total", "dtnd_submit_coalesced_total",
		"dtnd_submit_rejected_total", "dtnd_sweep_submissions_total",
		"dtnd_jobs_done_total", "dtnd_jobs_failed_total", "dtnd_jobs_cancelled_total",
		"dtnd_jobs_simulated_total", "dtnd_progress_events_total", "dtnd_sim_seconds_total",
		"dtnd_queue_depth", "dtnd_jobs_retained", "dtnd_sweeps_retained",
		"dtnd_stream_subscribers", "dtnd_cache_hits_total", "dtnd_cache_misses_total",
		"dtnd_cache_puts_total", "dtnd_cache_evictions_total", "dtnd_cache_bytes",
	} {
		if v, ok := m0[name]; !ok {
			t.Errorf("metric %s missing from scrape", name)
		} else if v != 0 {
			t.Errorf("fresh server: %s = %g, want 0", name, v)
		}
	}

	// Miss, then hit, then an invalid submission (must not count).
	sub, code := postSpec(t, ts, testSpec)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	waitDone(t, ts, sub.JobID)
	if _, code = postSpec(t, ts, testSpec); code != http.StatusOK {
		t.Fatalf("resubmit status %d", code)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"nodes": -3}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid spec status %d", resp.StatusCode)
	}
	// And one sweep, half of it cached (testSpec is not a testSweep cell).
	sw, _ := postSweep(t, ts, testSweep)
	waitSweepState(t, ts, sw.SweepID, stateDone)

	m := scrapeMetrics(t, ts)
	check := func(name string, want float64) {
		t.Helper()
		if m[name] != want {
			t.Errorf("%s = %g, want %g", name, m[name], want)
		}
	}
	check("dtnd_submissions_total", 2)
	check("dtnd_submit_cache_hits_total", 1)
	check("dtnd_submit_cache_misses_total", 1)
	check("dtnd_sweep_submissions_total", 1)
	check("dtnd_jobs_done_total", 3) // testSpec + 2 sweep cells
	check("dtnd_jobs_simulated_total", 3)
	check("dtnd_queue_depth", 0)
	check("dtnd_sweeps_retained", 1)
	check("dtnd_stream_subscribers", 0)
	if m["dtnd_submissions_total"] != m["dtnd_submit_cache_hits_total"]+m["dtnd_submit_cache_misses_total"] {
		t.Errorf("hit/miss classification does not reconcile: %+v", m)
	}
	if m["dtnd_cache_puts_total"] != 3 {
		t.Errorf("cache puts = %g, want 3", m["dtnd_cache_puts_total"])
	}
	if m["dtnd_progress_events_total"] < 3 || m["dtnd_sim_seconds_total"] <= 0 {
		t.Errorf("throughput counters did not advance: events=%g sim_s=%g",
			m["dtnd_progress_events_total"], m["dtnd_sim_seconds_total"])
	}
	if m["dtnd_jobs_retained"] != 3 {
		t.Errorf("jobs retained = %g, want 3", m["dtnd_jobs_retained"])
	}
}

// TestMetricsTerminalWindowHit: the inline-served terminal-window
// submission (the satellite-2 fix) counts as a hit, keeping the
// reconciliation invariant exact even for the race path.
func TestMetricsTerminalWindowHit(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	j, spec := fabricateJob(t, s, testSpec)
	j.finish(&Result{Key: j.key, Seeds: spec.SeedList()}, nil, nil)
	if _, code := postSpec(t, ts, testSpec); code != http.StatusOK {
		t.Fatalf("terminal-window submit status %d", code)
	}
	m := scrapeMetrics(t, ts)
	if m["dtnd_submissions_total"] != 1 || m["dtnd_submit_cache_hits_total"] != 1 || m["dtnd_submit_cache_misses_total"] != 0 {
		t.Errorf("terminal-window serve misclassified: subs=%g hits=%g misses=%g",
			m["dtnd_submissions_total"], m["dtnd_submit_cache_hits_total"], m["dtnd_submit_cache_misses_total"])
	}
	// Caching is off here: the store metrics must expose as zeros, not
	// panic on a nil store.
	if m["dtnd_cache_hits_total"] != 0 || m["dtnd_cache_bytes"] != 0 {
		t.Errorf("nil store scrape: %+v", m)
	}
}

// BenchmarkMetricsScrape measures the scrape path itself (it takes
// Server.mu for the gauges, so it must stay cheap under load).
func BenchmarkMetricsScrape(b *testing.B) {
	s, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	req := httptest.NewRequest("GET", "/metrics", nil)
	h := s.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
}
