package server

// Fabric acceptance tests: an in-process coordinator driving in-process
// worker daemons over real HTTP. Workers listen on real sockets (not
// httptest) so a test can kill one abruptly — http.Server.Close drops
// the listener and every live connection, which is what a crashed worker
// looks like from the coordinator's side. All servers share one process,
// so per-daemon attribution uses each Server's own counters
// (Simulated(), store stats), never the process-wide experiment atomics.

import (
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"
)

// workerProc is one in-process worker daemon on a real listener.
type workerProc struct {
	srv      *Server
	url      string
	cacheDir string
	stop     func() // abrupt kill: listener and all connections drop
}

func startWorker(t *testing.T, cfg Config) *workerProc {
	t.Helper()
	if cfg.CacheDir == "" {
		cfg.CacheDir = t.TempDir()
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	stopped := false
	stop := func() {
		if !stopped {
			stopped = true
			hs.Close()
		}
	}
	t.Cleanup(stop)
	return &workerProc{srv: srv, url: "http://" + ln.Addr().String(), cacheDir: cfg.CacheDir, stop: stop}
}

// newCoordinator builds a coordinator over the given workers, with a
// fast heartbeat so down/revive/reap transitions resolve in test time.
func newCoordinator(t *testing.T, cfg Config, workerURLs ...string) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Workers = workerURLs
	if cfg.Heartbeat == 0 {
		cfg.Heartbeat = 50 * time.Millisecond
	}
	if cfg.Logger == nil && testing.Verbose() {
		cfg.Logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	s, ts := newTestServer(t, cfg)
	t.Cleanup(s.Close) // runs before ts.Close: dispatcher stops first
	return s, ts
}

// fabricSweep expands to 8 cells: 4 distinct worlds (nodes axis) × 2
// protocols sharing each world. markTraceGroups marks the pairs "auto",
// so placement must keep each pair on one worker (record then replay)
// while the 4 worlds scatter across the fleet.
const fabricSweep = `{
	"base": {"preset": "quick", "nodes": 16, "duration": 400, "seeds": [1, 2]},
	"protocols": ["EER", "CR"],
	"nodes": [12, 16, 20, 24]
}`

// TestFabricSweep is the tentpole acceptance: a 3-worker fleet completes
// a sweep with zero duplicate simulations, the resubmitted sweep is
// fully cache-served, and a fresh coordinator with an empty store is
// served entirely by remote pull-through from the workers' caches.
func TestFabricSweep(t *testing.T) {
	var ws []*workerProc
	var urls []string
	for i := 0; i < 3; i++ {
		w := startWorker(t, Config{})
		ws = append(ws, w)
		urls = append(urls, w.url)
	}
	coord, ts := newCoordinator(t, Config{}, urls...)

	sr, code := postSweep(t, ts, fabricSweep)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("sweep submit status %d: %+v", code, sr)
	}
	if sr.CellsTotal != 8 || sr.CellsCached != 0 {
		t.Fatalf("expected 8 fresh cells, got %+v", sr)
	}
	final := waitSweepState(t, ts, sr.SweepID, stateDone)
	for _, c := range final.Cells {
		if c.Status != string(stateDone) || c.Mean == nil {
			t.Fatalf("cell %s: %+v", c.Key, c)
		}
	}

	// Zero duplicates fleet-wide: every unique cell simulated exactly
	// once, across the whole fleet, and never on the coordinator.
	var simulated int64
	busy := 0
	for _, w := range ws {
		n := w.srv.Simulated()
		simulated += n
		if n > 0 {
			busy++
		}
	}
	if simulated != 8 {
		t.Errorf("fleet simulated %d jobs, want exactly 8 (zero duplicates)", simulated)
	}
	if coord.Simulated() != 0 {
		t.Errorf("coordinator simulated %d jobs itself", coord.Simulated())
	}
	// 4 independent units across 3 workers with 2 runner slots each: the
	// work cannot all land on one worker unless the others were idle the
	// whole time, which the shared queue forbids while units are waiting.
	if busy < 2 {
		t.Errorf("only %d of 3 workers simulated anything", busy)
	}

	// Dispatch accounting: 8 jobs dispatched, every one completed, no
	// retries, and the aggregate matches /v1/workers.
	m := scrapeMetrics(t, ts)
	if m["dtnd_fleet_retries_total"] != 0 {
		t.Errorf("retries = %g on a healthy fleet", m["dtnd_fleet_retries_total"])
	}
	if m["dtnd_fleet_workers_healthy"] != 3 {
		t.Errorf("healthy workers = %g", m["dtnd_fleet_workers_healthy"])
	}
	var wl struct {
		Workers []workerStatus `json:"workers"`
	}
	getJSON(t, ts.URL+"/v1/workers", &wl)
	var dispatched, completed int64
	for _, row := range wl.Workers {
		dispatched += row.Dispatched
		completed += row.Completed
	}
	if dispatched != 8 || completed != 8 {
		t.Errorf("fleet dispatched %d / completed %d, want 8/8 (%+v)", dispatched, completed, wl.Workers)
	}

	// Resubmit on the same coordinator: every cell was pulled through
	// into its local store at completion, so the sweep is served whole
	// with no new work anywhere.
	sr2, code2 := postSweep(t, ts, fabricSweep)
	if code2 != http.StatusOK || sr2.Status != string(stateDone) || sr2.CellsCached != 8 {
		t.Fatalf("resubmit not fully cached: code %d, %+v", code2, sr2)
	}

	// A fresh coordinator with an empty store, same fleet: the cache
	// pass pulls all 8 cells from the workers' stores — 100%
	// cache-served from any worker, still zero new simulations.
	_, ts3 := newCoordinator(t, Config{}, urls...)
	sr3, code3 := postSweep(t, ts3, fabricSweep)
	if code3 != http.StatusOK || sr3.Status != string(stateDone) || sr3.CellsCached != 8 {
		t.Fatalf("fresh coordinator not fully cache-served: code %d, %+v", code3, sr3)
	}
	m3 := scrapeMetrics(t, ts3)
	if m3["dtnd_cache_remote_hits_total"] != 8 {
		t.Errorf("fresh coordinator remote hits = %g, want 8", m3["dtnd_cache_remote_hits_total"])
	}
	var total int64
	for _, w := range ws {
		total += w.srv.Simulated()
	}
	if total != 8 {
		t.Errorf("fleet simulated %d after cached resubmits, want still 8", total)
	}
}

// TestFabricWorkerDeadOnArrival: a worker that died before the first
// dispatch is marked down on its first failure (or heartbeat) and the
// fleet completes the work on the survivors.
func TestFabricWorkerDeadOnArrival(t *testing.T) {
	dead := startWorker(t, Config{})
	live := startWorker(t, Config{})
	dead.stop()
	_, ts := newCoordinator(t, Config{}, dead.url, live.url)

	sub, code := postSpec(t, ts, testSpec)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	waitDone(t, ts, sub.JobID)
	if live.srv.Simulated() != 1 {
		t.Errorf("survivor simulated %d jobs, want 1", live.srv.Simulated())
	}
}

// TestFabricWorkerLossMidRun: killing the worker that is streaming a
// running job breaks the stream, marks the worker down, and the unit is
// stolen by the survivor, which completes the job.
func TestFabricWorkerLossMidRun(t *testing.T) {
	a := startWorker(t, Config{})
	b := startWorker(t, Config{})
	_, ts := newCoordinator(t, Config{}, a.url, b.url)

	// Long enough to reliably catch mid-run (the poll below finds it in
	// tens of milliseconds), short enough that the survivor's re-run
	// finishes well inside waitDone's deadline even while the killed
	// worker's in-process zombie job keeps burning CPU.
	const midSpec = `{"protocol": "MaxProp", "nodes": 120, "duration": 4000, "seeds": [1, 2]}`
	sub, code := postSpec(t, ts, midSpec)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	// Find the worker actually running it and kill that one.
	victim, survivor := a, b
	deadline := time.Now().Add(60 * time.Second)
	for {
		var jl jobListResponse
		getJSON(t, a.url+"/v1/jobs", &jl)
		if len(jl.Jobs) > 0 && jl.Jobs[0].Status == string(stateRunning) {
			break
		}
		getJSON(t, b.url+"/v1/jobs", &jl)
		if len(jl.Jobs) > 0 && jl.Jobs[0].Status == string(stateRunning) {
			victim, survivor = b, a
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running on any worker")
		}
		time.Sleep(5 * time.Millisecond)
	}
	victim.stop()

	jr := waitDone(t, ts, sub.JobID)
	if jr.Result == nil {
		t.Fatal("job done without result after worker loss")
	}
	if survivor.srv.Simulated() != 1 {
		t.Errorf("survivor simulated %d jobs, want 1", survivor.srv.Simulated())
	}
	m := scrapeMetrics(t, ts)
	if m["dtnd_fleet_retries_total"] < 1 {
		t.Errorf("retries = %g, want >= 1", m["dtnd_fleet_retries_total"])
	}
}

// TestFabricWorkerRestartServesCache: a worker that computed a result,
// died, and came back on the same cache directory serves the whole
// fleet from its store — a fresh coordinator's submission is a remote
// cache hit, zero simulations anywhere.
func TestFabricWorkerRestartServesCache(t *testing.T) {
	dir := t.TempDir()
	w := startWorker(t, Config{CacheDir: dir})

	// Compute directly on the worker (the fabric speaks the same API).
	sub, code := postSpecURL(t, w.url, testSpec)
	if code != http.StatusAccepted {
		t.Fatalf("worker submit status %d", code)
	}
	waitDoneURL(t, w.url, sub.JobID)
	w.stop()

	restarted := startWorker(t, Config{CacheDir: dir})
	coord, ts := newCoordinator(t, Config{}, restarted.url)
	got, code := postSpec(t, ts, testSpec)
	if code != http.StatusOK || !got.Cached || got.Result == nil {
		t.Fatalf("expected a pull-through cache hit, got %d %+v", code, got)
	}
	if coord.Simulated() != 0 || restarted.srv.Simulated() != 0 {
		t.Errorf("restart served %d/%d simulations, want 0/0",
			coord.Simulated(), restarted.srv.Simulated())
	}
	m := scrapeMetrics(t, ts)
	if m["dtnd_cache_remote_hits_total"] != 1 {
		t.Errorf("remote hits = %g, want 1", m["dtnd_cache_remote_hits_total"])
	}
}

// TestFabricClusterCancel: cancelling a sweep on the coordinator
// propagates to the worker running its current cell (DELETE on the
// worker's job) and reaps the cells still waiting in the dispatch
// queue, resolving the whole sweep as cancelled.
func TestFabricClusterCancel(t *testing.T) {
	w := startWorker(t, Config{})
	_, ts := newCoordinator(t, Config{WorkerInflight: 1}, w.url)

	// Three distinct long worlds: singleton units, so one runs on the
	// worker while two wait in the coordinator's dispatch queue.
	sweep := `{
		"base": {"protocol": "MaxProp", "duration": 10000, "seeds": [1, 2, 3, 4]},
		"nodes": [240, 250, 260]
	}`
	sr, code := postSweep(t, ts, sweep)
	if code != http.StatusAccepted {
		t.Fatalf("sweep submit status %d: %+v", code, sr)
	}
	// Wait until the worker is actually running a cell.
	deadline := time.Now().Add(60 * time.Second)
	for {
		var jl jobListResponse
		getJSON(t, w.url+"/v1/jobs", &jl)
		running := false
		for _, row := range jl.Jobs {
			running = running || row.Status == string(stateRunning)
		}
		if running {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no cell ever ran on the worker")
		}
		time.Sleep(5 * time.Millisecond)
	}

	if code, body := del(t, ts.URL+"/v1/sweeps/"+sr.SweepID); code != http.StatusAccepted {
		t.Fatalf("cancel status %d: %s", code, body)
	}
	final := waitSweepState(t, ts, sr.SweepID, stateCancelled)
	if final.Status != string(stateCancelled) {
		t.Fatalf("sweep final status %s", final.Status)
	}

	// The worker's in-flight job received the propagated DELETE: every
	// job on the worker reaches a terminal state, none keeps running.
	deadline = time.Now().Add(60 * time.Second)
	for {
		var jl jobListResponse
		getJSON(t, w.url+"/v1/jobs", &jl)
		live := 0
		for _, row := range jl.Jobs {
			if !terminalState(jobState(row.Status)) {
				live++
			}
		}
		if live == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker still has %d live jobs after cluster cancel", live)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if w.srv.Simulated() != 0 {
		t.Errorf("worker completed %d simulations of a cancelled sweep", w.srv.Simulated())
	}
}

// postSpecURL / waitDoneURL mirror postSpec/waitDone against a raw base
// URL (the in-process workers are not httptest servers).
func postSpecURL(t *testing.T, base, spec string) (submitResponse, int) {
	t.Helper()
	ts := &httptest.Server{URL: base}
	return postSpec(t, ts, spec)
}

func waitDoneURL(t *testing.T, base, id string) jobResponse {
	t.Helper()
	ts := &httptest.Server{URL: base}
	return waitDone(t, ts, id)
}

// TestJobListAndReadiness covers the two small API additions: the jobs
// listing with pagination, and the readiness probe flipping to 503 when
// the daemon drains.
func TestJobListAndReadiness(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	sub1, _ := postSpec(t, ts, testSpec)
	waitDone(t, ts, sub1.JobID)
	sub2, _ := postSpec(t, ts, testSweepCellSpec)
	waitDone(t, ts, sub2.JobID)

	var jl jobListResponse
	getJSON(t, ts.URL+"/v1/jobs", &jl)
	if jl.Total != 2 || len(jl.Jobs) != 2 {
		t.Fatalf("job list %+v", jl)
	}
	if jl.Jobs[0].JobID != sub1.JobID || jl.Jobs[1].JobID != sub2.JobID {
		t.Errorf("listing out of creation order: %+v", jl.Jobs)
	}
	for _, row := range jl.Jobs {
		if row.Status != string(stateDone) || row.Frac != 1 || row.Key == "" {
			t.Errorf("bad row %+v", row)
		}
	}
	var page jobListResponse
	getJSON(t, ts.URL+"/v1/jobs?offset=1&limit=1", &page)
	if page.Total != 2 || page.Offset != 1 || len(page.Jobs) != 1 || page.Jobs[0].JobID != sub2.JobID {
		t.Errorf("paginated listing %+v", page)
	}
	if resp, err := http.Get(ts.URL + "/v1/jobs?offset=-1"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad offset answered %d", resp.StatusCode)
		}
	}

	// Readiness: 200 while serving, 503 once draining (liveness stays 200).
	for path, want := range map[string]int{"/v1/healthz": 200, "/healthz": 200} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s = %d, want %d", path, resp.StatusCode, want)
		}
	}
	if err := s.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
	for path, want := range map[string]int{"/v1/healthz": 503, "/healthz": 200} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s while draining = %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// TestWorkersEndpointStandalone: a fleetless daemon has no registry.
func TestWorkersEndpointStandalone(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/workers")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("standalone /v1/workers = %d, want 404", resp.StatusCode)
	}
}
