package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/experiment"
	"repro/internal/metrics"
)

// testSpec is the e2e workload: small enough for every test run, rich
// enough to exercise the estimator core (EER gossips MI rows) and the
// multi-seed pool path.
const testSpec = `{
	"preset": "quick",
	"protocol": "EER",
	"nodes": 16,
	"duration": 400,
	"seeds": [1, 2]
}`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.CacheDir == "" {
		cfg.CacheDir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postSpec(t *testing.T, ts *httptest.Server, spec string) (submitResponse, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode submit response: %v", err)
	}
	return out, resp.StatusCode
}

// TestEndToEnd is the acceptance pin: a spec submitted over HTTP yields a
// summary bit-identical to running the same scenario in-process; live
// NDJSON progress streams until completion; and a second submission of
// the same spec is served from the content-addressed cache without
// re-simulating.
func TestEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	// Submit.
	sub, code := postSpec(t, ts, testSpec)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, body %+v", code, sub)
	}
	if sub.JobID == "" || sub.Key == "" || sub.Cached {
		t.Fatalf("bad submit response %+v", sub)
	}

	// Stream progress to the end (replays history even if the job already
	// finished). Expect ordered fractions and a terminal summary frame.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.JobID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content type %q", ct)
	}
	var events []metrics.Progress
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var p metrics.Progress
		if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, p)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if len(events) < 3 {
		t.Fatalf("only %d progress events", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Frac < events[i-1].Frac {
			t.Fatalf("progress went backwards: %g after %g", events[i].Frac, events[i-1].Frac)
		}
	}
	last := events[len(events)-1]
	if !last.Done || last.Summary == nil || last.Error != "" {
		t.Fatalf("terminal event %+v", last)
	}

	// Job status: done, with the full result.
	var jr jobResponse
	getJSON(t, ts.URL+"/v1/jobs/"+sub.JobID, &jr)
	if jr.Status != string(stateDone) || jr.Result == nil || jr.Frac != 1 {
		t.Fatalf("job after stream end: %+v", jr)
	}

	// Bit-identical to the in-process run of the same spec.
	spec, err := experiment.ParseSpec([]byte(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	sums, err := experiment.RunSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(jr.Result.PerSeed) != len(sums) {
		t.Fatalf("server ran %d seeds, in-process %d", len(jr.Result.PerSeed), len(sums))
	}
	for i := range sums {
		if jr.Result.PerSeed[i] != sums[i] {
			t.Errorf("seed %d summary diverged:\n  server     %+v\n  in-process %+v", i, jr.Result.PerSeed[i], sums[i])
		}
	}
	if jr.Result.Mean != metrics.Mean(sums) {
		t.Errorf("mean diverged: %+v vs %+v", jr.Result.Mean, metrics.Mean(sums))
	}
	if *last.Summary != jr.Result.Mean {
		t.Errorf("streamed summary %+v != result mean %+v", *last.Summary, jr.Result.Mean)
	}

	// Second submission: served from cache, identical result, no new
	// simulation.
	before := s.Simulated()
	sub2, code := postSpec(t, ts, testSpec)
	if code != http.StatusOK || !sub2.Cached || sub2.Result == nil {
		t.Fatalf("second submit not cached: code=%d %+v", code, sub2)
	}
	if sub2.Key != sub.Key {
		t.Errorf("cache key changed: %s vs %s", sub2.Key, sub.Key)
	}
	if sub2.Result.Mean != jr.Result.Mean {
		t.Errorf("cached mean diverged")
	}
	if got := s.Simulated(); got != before {
		t.Errorf("cached submission re-simulated (%d -> %d)", before, got)
	}

	// The result endpoint resolves the content address directly.
	var res Result
	getJSON(t, ts.URL+"/v1/results/"+sub.Key, &res)
	if res.Mean != jr.Result.Mean {
		t.Errorf("result endpoint diverged")
	}
	// A semantically different spec gets a different address and misses.
	other, _ := experiment.ParseSpec([]byte(testSpec))
	other.Seeds = []int64{3}
	otherKey, err := other.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	if otherKey == sub.Key {
		t.Fatal("different seeds, same key")
	}
	if resp, err := http.Get(ts.URL + "/v1/results/" + otherKey); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("uncomputed result status %d", resp.StatusCode)
		}
	}
}

// TestSubmitValidation: malformed submissions are rejected up front.
func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, body := range map[string]string{
		"garbage":        `not json`,
		"unknown field":  `{"protocl": "EER"}`,
		"unknown preset": `{"preset": "helsinki"}`,
		"invalid nodes":  `{"nodes": 1}`,
		"bad protocol":   `{"protocol": "EERX"}`,
	} {
		if _, code := postSpec(t, ts, body); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, code)
		}
	}
	if resp, err := http.Get(ts.URL + "/v1/jobs/nope"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown job status %d", resp.StatusCode)
		}
	}
	// Result keys must be hex content addresses: traversal-shaped keys
	// (".." would escape the cache dir through the 2-char fan-out) and
	// malformed keys resolve to nothing.
	for _, key := range []string{"..evil", "../../etc/passwd", strings.Repeat("Z", 64), "abc"} {
		resp, err := http.Get(ts.URL + "/v1/results/" + key)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("key %q: status %d, want 404", key, resp.StatusCode)
		}
	}
}

// TestCoalesce: an identical spec submitted while the first is in flight
// attaches to the same job instead of queueing a duplicate simulation.
func TestCoalesce(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	spec := `{"preset": "quick", "protocol": "SprayAndWait", "nodes": 30, "duration": 2000}`
	first, code := postSpec(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	second, code := postSpec(t, ts, spec)
	if code != http.StatusOK && code != http.StatusAccepted {
		t.Fatalf("resubmit status %d", code)
	}
	if second.Cached {
		return // first finished before the resubmission: valid, nothing to coalesce
	}
	if second.JobID != first.JobID {
		t.Errorf("duplicate in-flight spec got a new job: %s vs %s", second.JobID, first.JobID)
	}
	waitDone(t, ts, first.JobID)
}

// TestDrain: shutting down drains — the accepted job finishes and its
// result is served, while new submissions are refused with 503.
func TestDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	sub, code := postSpec(t, ts, `{"preset": "quick", "protocol": "EBR", "nodes": 40, "duration": 2500}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()

	// Submissions during the drain are refused once draining is visible.
	// Probe with a unique spec per attempt: cached results are served
	// before the draining check by design, so a fixed probe spec would
	// read 200 forever once its own first job completed and cached —
	// a race this test lost under a loaded `go test ./...`. Unique
	// probes accepted before the flag flips are just more jobs for the
	// drain to wait out.
	deadline := time.Now().Add(60 * time.Second)
	for i := 1; ; i++ {
		probe := fmt.Sprintf(`{"preset": "quick", "protocol": "Direct", "nodes": 16, "duration": 300, "seeds": [%d]}`, i)
		_, code := postSpec(t, ts, probe)
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drain never refused submissions (last code %d)", code)
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	// The in-flight job completed rather than being killed.
	var jr jobResponse
	getJSON(t, ts.URL+"/v1/jobs/"+sub.JobID, &jr)
	if jr.Status != string(stateDone) || jr.Result == nil {
		t.Fatalf("in-flight job did not drain to completion: %+v", jr)
	}
}

// TestListenAndServe: the daemon loop binds, reports its address, serves,
// and shuts down cleanly on context cancellation — the cmd/dtnd and
// `dtnsim -serve` path.
func TestListenAndServe(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	addr := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- ListenAndServe(ctx, "127.0.0.1:0", Config{CacheDir: t.TempDir()},
			func(a string) { addr <- a })
	}()
	var base string
	select {
	case a := <-addr:
		base = "http://" + a
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	}
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	resp, err = http.Get(base + "/v1/presets")
	if err != nil {
		t.Fatal(err)
	}
	var presets map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&presets); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, want := range []string{"default", "quick", "figure2", "cityscale"} {
		if _, ok := presets[want]; !ok {
			t.Errorf("preset %q missing", want)
		}
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

func waitDone(t *testing.T, ts *httptest.Server, id string) jobResponse {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var jr jobResponse
		getJSON(t, ts.URL+"/v1/jobs/"+id, &jr)
		switch jr.Status {
		case string(stateDone):
			return jr
		case string(stateFailed):
			t.Fatalf("job %s failed: %s", id, jr.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish", id)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// longSpec is a job big enough (~seconds of wall time) that tests can
// reliably observe it queued or running before acting on it.
const longSpec = `{"protocol": "MaxProp", "nodes": 240, "duration": 10000, "seeds": [1, 2, 3, 4]}`

// waitState polls a job until it reaches one of the wanted states.
func waitState(t *testing.T, ts *httptest.Server, id string, want ...jobState) jobResponse {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var jr jobResponse
		getJSON(t, ts.URL+"/v1/jobs/"+id, &jr)
		for _, st := range want {
			if jr.Status == string(st) {
				return jr
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q, want %v", id, jr.Status, want)
		}
		time.Sleep(time.Millisecond)
	}
}

func del(t *testing.T, url string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

// TestCancelRunning: DELETE on a running job stops the simulation, the
// job reports cancelled with its last progress fraction, and no result
// is produced or cached.
func TestCancelRunning(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	sub, code := postSpec(t, ts, longSpec)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	waitState(t, ts, sub.JobID, stateRunning)
	code, body := del(t, ts.URL+"/v1/jobs/"+sub.JobID)
	if code != http.StatusAccepted {
		t.Fatalf("cancel status %d: %s", code, body)
	}
	jr := waitState(t, ts, sub.JobID, stateCancelled)
	if jr.Result != nil {
		t.Errorf("cancelled job has a result")
	}
	if jr.Error != "cancelled" {
		t.Errorf("cancelled job error %q", jr.Error)
	}
	if s.Simulated() != 0 {
		t.Errorf("cancelled job counted as simulated")
	}
	// The stream replays to a terminal done event carrying the error.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.JobID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var last metrics.Progress
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad NDJSON %q: %v", sc.Text(), err)
		}
	}
	if !last.Done || last.Error != "cancelled" {
		t.Fatalf("terminal stream event %+v", last)
	}
	// A second DELETE conflicts: the job is already terminal.
	if code, _ := del(t, ts.URL+"/v1/jobs/"+sub.JobID); code != http.StatusConflict {
		t.Errorf("re-cancel status %d, want 409", code)
	}
	// Resubmission after cancellation starts fresh (nothing was cached).
	sub2, code := postSpec(t, ts, longSpec)
	if code != http.StatusAccepted || sub2.Cached {
		t.Fatalf("resubmit after cancel: %d %+v", code, sub2)
	}
	del(t, ts.URL+"/v1/jobs/"+sub2.JobID)
	waitState(t, ts, sub2.JobID, stateCancelled)
}

// TestCancelQueued: a job cancelled while waiting for the concurrency
// permit never simulates and never takes the permit.
func TestCancelQueued(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrentJobs: 1})
	blocker, code := postSpec(t, ts, longSpec)
	if code != http.StatusAccepted {
		t.Fatalf("submit blocker: %d", code)
	}
	waitState(t, ts, blocker.JobID, stateRunning)
	queued, code := postSpec(t, ts, testSpec)
	if code != http.StatusAccepted {
		t.Fatalf("submit queued job: %d", code)
	}
	if code, body := del(t, ts.URL+"/v1/jobs/"+queued.JobID); code != http.StatusAccepted {
		t.Fatalf("cancel queued: %d %s", code, body)
	}
	jr := waitState(t, ts, queued.JobID, stateCancelled)
	if jr.Frac != 0 || jr.Result != nil {
		t.Errorf("queued job simulated before cancel: %+v", jr)
	}
	del(t, ts.URL+"/v1/jobs/"+blocker.JobID)
	waitState(t, ts, blocker.JobID, stateCancelled)
	if s.Simulated() != 0 {
		t.Errorf("cancelled jobs counted as simulated")
	}
}

// TestCancelDoneConflicts: cancelling a finished job is refused with 409
// and does not disturb its result.
func TestCancelDoneConflicts(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sub, code := postSpec(t, ts, testSpec)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	waitDone(t, ts, sub.JobID)
	if code, _ := del(t, ts.URL+"/v1/jobs/"+sub.JobID); code != http.StatusConflict {
		t.Errorf("cancel done job: status %d, want 409", code)
	}
	var jr jobResponse
	getJSON(t, ts.URL+"/v1/jobs/"+sub.JobID, &jr)
	if jr.Status != string(stateDone) || jr.Result == nil {
		t.Errorf("done job disturbed by cancel attempt: %+v", jr)
	}
	if code, _ := del(t, ts.URL+"/v1/jobs/nope"); code != http.StatusNotFound {
		t.Errorf("cancel unknown job: status %d, want 404", code)
	}
}

// TestFailCarriesFrac pins the lifecycle bugfix: a job that fails after
// reporting progress keeps its last observed fraction in the terminal
// event and the status reply, instead of resetting to 0.
func TestFailCarriesFrac(t *testing.T) {
	j := &job{id: "j1", state: stateRunning, notify: make(chan struct{})}
	j.appendProgress(metrics.Progress{Frac: 0.4})
	j.appendProgress(metrics.Progress{Frac: 0.9})
	j.fail(errGone)
	snap := j.snapshot()
	if snap.state != stateFailed || snap.errMsg != errGone.Error() {
		t.Fatalf("snapshot %+v", snap)
	}
	last := snap.events[len(snap.events)-1]
	if !last.Done || last.Frac != 0.9 {
		t.Fatalf("terminal event %+v, want Done with Frac 0.9", last)
	}
	if snap.result != nil {
		t.Errorf("failed job carries a result")
	}
}

var errGone = errors.New("engine exploded at 90%")

// TestSnapshotConsistency: state, result and error always travel
// together — a done snapshot has a result, a failed one an error, and a
// running one neither.
func TestSnapshotConsistency(t *testing.T) {
	j := &job{id: "j1", state: stateRunning, notify: make(chan struct{})}
	if snap := j.snapshot(); snap.result != nil || snap.errMsg != "" {
		t.Fatalf("running snapshot carries outcome: %+v", snap)
	}
	j.finish(&Result{Seeds: []int64{1}, PerSeed: []metrics.Summary{{}}}, nil, nil)
	snap := j.snapshot()
	if snap.state != stateDone || snap.result == nil || snap.errMsg != "" {
		t.Fatalf("done snapshot inconsistent: %+v", snap)
	}
	if last := snap.events[len(snap.events)-1]; !last.Done || last.Frac != 1 || last.Summary == nil {
		t.Fatalf("done terminal event %+v", last)
	}
}
