package server

// Runtime observability: GET /metrics serves the daemon's counters in
// Prometheus text exposition format (hand-rolled — the format is three
// line shapes, no client library needed). Counters live as atomics on
// serverCounters and are incremented at the point the event happens;
// gauges (queue depth, open NDJSON streams, cache size) are read at
// scrape time. The one invariant CI reconciles after a smoke run:
//
//	dtnd_submissions_total == dtnd_submit_cache_hits_total
//	                        + dtnd_submit_cache_misses_total
//
// i.e. every valid job submission is classified exactly once — served a
// result immediately (hit: disk cache or a terminal in-flight snapshot)
// or handed a job (miss: coalesced onto one or queued fresh).

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/resultcache"
)

// serverCounters is the daemon's metric state. All fields are atomics so
// the hot paths (submit, progress publish) never take a lock to count.
type serverCounters struct {
	submissions      atomic.Int64 // valid POST /v1/jobs reaching classification
	submitHits       atomic.Int64 // served a result immediately, no job
	submitCoalesced  atomic.Int64 // attached to an identical in-flight job
	submitRejected   atomic.Int64 // refused: queue full or draining
	sweepSubmissions atomic.Int64 // valid POST /v1/sweeps accepted
	sweepRejected    atomic.Int64 // sweeps refused: queue room or draining

	jobsDone      atomic.Int64 // jobs reaching state done
	jobsFailed    atomic.Int64 // jobs reaching state failed
	jobsCancelled atomic.Int64 // jobs reaching state cancelled

	progressEvents atomic.Int64 // simulation progress events published
	simMillis      atomic.Int64 // simulated scenario-milliseconds completed
	streamSubs     atomic.Int64 // gauge: NDJSON streams currently open

	// Engine phase accounting, accumulated from every profiled job's
	// merged timing block (runJob): wall-nanoseconds per tick phase, plus
	// the routing-exchange share nested inside the contact phases.
	phaseNanos    [obs.NumPhases]atomic.Int64
	exchangeNanos atomic.Int64
}

// noteTiming folds one job's phase profile into the daemon-lifetime phase
// counters. Phases are matched by name, so the counters stay correct even
// if a timing block carries a partial phase list.
func (m *serverCounters) noteTiming(tm *obs.Timing) {
	if tm == nil {
		return
	}
	for i, name := range obs.PhaseNames() {
		if ns := int64(tm.PhaseSeconds(name) * 1e9); ns > 0 {
			m.phaseNanos[i].Add(ns)
		}
	}
	if ns := int64(tm.ExchangeSeconds * 1e9); ns > 0 {
		m.exchangeNanos.Add(ns)
	}
}

// noteTerminal records a job's final state (the job's onTerminal hook).
func (m *serverCounters) noteTerminal(st jobState) {
	switch st {
	case stateDone:
		m.jobsDone.Add(1)
	case stateFailed:
		m.jobsFailed.Add(1)
	case stateCancelled:
		m.jobsCancelled.Add(1)
	}
}

// metricDef is one exposition entry: name, HELP text, TYPE and a value
// read at scrape time.
type metricDef struct {
	name  string
	help  string
	typ   string // "counter" or "gauge"
	value func() float64
}

// metricDefs builds the scrape table. Queue depth and retained-object
// gauges read Server.mu once each; everything else is an atomic load.
func (s *Server) metricDefs() []metricDef {
	counter := func(name, help string, v *atomic.Int64) metricDef {
		return metricDef{name: name, help: help, typ: "counter", value: func() float64 { return float64(v.Load()) }}
	}
	m := &s.m
	defs := []metricDef{
		counter("dtnd_submissions_total", "Valid job submissions (direct POST /v1/jobs) classified against the cache.", &m.submissions),
		counter("dtnd_submit_cache_hits_total", "Submissions served a result immediately: disk cache or terminal in-flight snapshot.", &m.submitHits),
		{name: "dtnd_submit_cache_misses_total", help: "Submissions handed a job (coalesced or queued): submissions - hits.", typ: "counter",
			value: func() float64 { return float64(m.submissions.Load() - m.submitHits.Load()) }},
		counter("dtnd_submit_coalesced_total", "Submissions attached to an identical in-flight job.", &m.submitCoalesced),
		counter("dtnd_submit_rejected_total", "Submissions refused: queue full or draining.", &m.submitRejected),
		counter("dtnd_sweep_submissions_total", "Valid sweep submissions accepted.", &m.sweepSubmissions),
		counter("dtnd_sweep_rejected_total", "Sweep submissions refused: queue room or draining.", &m.sweepRejected),
		counter("dtnd_jobs_done_total", "Jobs finished successfully.", &m.jobsDone),
		counter("dtnd_jobs_failed_total", "Jobs finished in failure.", &m.jobsFailed),
		counter("dtnd_jobs_cancelled_total", "Jobs cancelled before completion.", &m.jobsCancelled),
		{name: "dtnd_jobs_simulated_total", help: "Jobs that actually ran a simulation (cache misses that completed).", typ: "counter",
			value: func() float64 { return float64(s.simulated.Load()) }},
		counter("dtnd_progress_events_total", "Simulation progress events published to streams and sweeps.", &m.progressEvents),
		{name: "dtnd_sim_seconds_total", help: "Simulated scenario-seconds completed across all jobs (rate() gives sim-time throughput).", typ: "counter",
			value: func() float64 { return float64(m.simMillis.Load()) / 1000 }},
		{name: "dtnd_sim_exchange_seconds_total", help: "Wall-seconds spent in routing exchange callbacks (nested inside the contact phases of dtnd_sim_phase_seconds_total).", typ: "counter",
			value: func() float64 { return float64(m.exchangeNanos.Load()) / 1e9 }},
		{name: "dtnd_queue_depth", help: "Accepted-but-not-finished jobs (queued + running).", typ: "gauge",
			value: func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(s.queued) }},
		{name: "dtnd_jobs_retained", help: "Job records addressable in memory (bounded retention ring).", typ: "gauge",
			value: func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(len(s.jobs)) }},
		{name: "dtnd_sweeps_retained", help: "Sweep records addressable in memory (bounded retention ring).", typ: "gauge",
			value: func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(len(s.sweeps)) }},
		{name: "dtnd_stream_subscribers", help: "NDJSON progress streams currently open (jobs and sweeps).", typ: "gauge",
			value: func() float64 { return float64(m.streamSubs.Load()) }},
	}
	// Result-store counters (zeros when caching is disabled: s.store is
	// nil and Stats() is nil-safe).
	stat := func(name, help, typ string, v func(resultcache.Stats) int64) metricDef {
		return metricDef{name: name, help: help, typ: typ, value: func() float64 { return float64(v(s.store.Stats())) }}
	}
	defs = append(defs,
		// Contact-trace fast path: how often sweep cells replayed a
		// recorded world instead of re-simulating mobility, and the
		// store's trace-blob traffic. Recording/replay counts are
		// process-wide (experiment-layer atomics); blob counters are
		// kept apart from result counters so the submissions == hits +
		// misses invariant above stays exact.
		metricDef{name: "dtnd_trace_recordings_total", help: "Contact-trace recordings performed (live runs doubling as recordings, or bare pre-records).", typ: "counter",
			value: func() float64 { return float64(experiment.TraceRecordings()) }},
		metricDef{name: "dtnd_trace_replays_total", help: "Simulation runs served by contact replay instead of live mobility.", typ: "counter",
			value: func() float64 { return float64(experiment.TraceReplays()) }},
		stat("dtnd_trace_cache_hits_total", "Trace-store reads that found a recorded contact script.", "counter",
			func(st resultcache.Stats) int64 { return st.TraceHits }),
		stat("dtnd_trace_cache_misses_total", "Trace-store reads that found nothing.", "counter",
			func(st resultcache.Stats) int64 { return st.TraceMisses }),
		stat("dtnd_trace_cache_puts_total", "Contact scripts persisted to the store.", "counter",
			func(st resultcache.Stats) int64 { return st.TracePuts }),
	)
	defs = append(defs,
		stat("dtnd_cache_hits_total", "Result-store reads that found an intact entry (submits, sweep cells, /v1/results).", "counter",
			func(st resultcache.Stats) int64 { return st.Hits }),
		stat("dtnd_cache_misses_total", "Result-store reads that found nothing (or a corrupt entry).", "counter",
			func(st resultcache.Stats) int64 { return st.Misses }),
		stat("dtnd_cache_puts_total", "Results persisted to the store.", "counter",
			func(st resultcache.Stats) int64 { return st.Puts }),
		stat("dtnd_cache_evictions_total", "Entries removed by size-bound eviction.", "counter",
			func(st resultcache.Stats) int64 { return st.Evictions }),
		stat("dtnd_cache_evicted_bytes_total", "Bytes reclaimed by size-bound eviction.", "counter",
			func(st resultcache.Stats) int64 { return st.EvictedBytes }),
		stat("dtnd_cache_eviction_scans_total", "Eviction directory walks.", "counter",
			func(st resultcache.Stats) int64 { return st.Scans }),
		stat("dtnd_cache_bytes", "Approximate result-store size (bounded stores only).", "gauge",
			func(st resultcache.Stats) int64 { return st.CurBytes }),
		// Fleet cache attribution: of the hits above, how many were pulled
		// through from another daemon's store rather than found locally.
		stat("dtnd_cache_remote_hits_total", "Result hits served by remote pull-through (another daemon's store).", "counter",
			func(st resultcache.Stats) int64 { return st.RemoteHits }),
		stat("dtnd_cache_remote_misses_total", "Remote-tier probes that found nothing on any peer.", "counter",
			func(st resultcache.Stats) int64 { return st.RemoteMisses }),
		stat("dtnd_trace_cache_remote_hits_total", "Trace hits served by remote pull-through.", "counter",
			func(st resultcache.Stats) int64 { return st.TraceRemoteHits }),
	)
	// Coordinator-only families: the fleet dispatcher's aggregate state.
	// Per-worker dispatch/retry/steal series live in writeFleetFamilies.
	if f := s.fleet; f != nil {
		defs = append(defs,
			metricDef{name: "dtnd_fleet_workers", help: "Registered fleet workers.", typ: "gauge",
				value: func() float64 { return float64(len(f.workers)) }},
			metricDef{name: "dtnd_fleet_workers_healthy", help: "Fleet workers currently passing readiness.", typ: "gauge",
				value: func() float64 { return float64(len(f.healthyWorkerURLs())) }},
			metricDef{name: "dtnd_fleet_queue_depth", help: "Dispatch units waiting for a worker.", typ: "gauge",
				value: func() float64 { return float64(f.queueDepth()) }},
			metricDef{name: "dtnd_fleet_retries_total", help: "Dispatch units requeued after a worker infrastructure failure (work stealing).", typ: "counter",
				value: func() float64 { return float64(f.retries.Load()) }},
			metricDef{name: "dtnd_fleet_cached_total", help: "Fleet jobs satisfied from the tiered store at dispatch, no worker involved.", typ: "counter",
				value: func() float64 { return float64(f.cached.Load()) }},
		)
	}
	return defs
}

// writeFleetFamilies renders the per-worker labeled counter families —
// every registered worker present from the first scrape, so rate()
// never sees a series appear mid-flight. Coordinator mode only.
func (s *Server) writeFleetFamilies(b *strings.Builder) {
	f := s.fleet
	if f == nil {
		return
	}
	fam := func(name, help string, v func(*fleetWorker) int64) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, w := range f.workers {
			fmt.Fprintf(b, "%s{worker=%q} %d\n", name, w.url, v(w))
		}
	}
	fam("dtnd_fleet_dispatch_total", "Jobs dispatched to each worker.",
		func(w *fleetWorker) int64 { return w.dispatched.Load() })
	fam("dtnd_fleet_completed_total", "Jobs completed via each worker.",
		func(w *fleetWorker) int64 { return w.completed.Load() })
	fam("dtnd_fleet_failures_total", "Infrastructure failures observed on each worker.",
		func(w *fleetWorker) int64 { return w.failures.Load() })
	fam("dtnd_fleet_steals_total", "Requeued (stolen) units each worker picked up.",
		func(w *fleetWorker) int64 { return w.steals.Load() })
	const hname = "dtnd_fleet_worker_healthy"
	fmt.Fprintf(b, "# HELP %s Per-worker readiness (1 healthy, 0 down).\n# TYPE %s gauge\n", hname, hname)
	for _, w := range f.workers {
		v := 0
		if w.healthy.Load() {
			v = 1
		}
		fmt.Fprintf(b, "%s{worker=%q} %d\n", hname, w.url, v)
	}
}

// handleMetrics serves GET /metrics in Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var b strings.Builder
	for _, d := range s.metricDefs() {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", d.name, d.help, d.name, d.typ, d.name, d.value())
	}
	s.writePhaseFamily(&b)
	s.writeFleetFamilies(&b)
	s.writeHistograms(&b)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, b.String())
}

// writePhaseFamily renders the labeled per-phase counter family — one
// series per engine tick phase, all present from the first scrape so
// rate() never sees a series appear mid-flight.
func (s *Server) writePhaseFamily(b *strings.Builder) {
	const name = "dtnd_sim_phase_seconds_total"
	fmt.Fprintf(b, "# HELP %s Wall-seconds spent per engine tick phase across all profiled jobs.\n# TYPE %s counter\n", name, name)
	for i, ph := range obs.PhaseNames() {
		fmt.Fprintf(b, "%s{phase=%q} %g\n", name, ph, float64(s.m.phaseNanos[i].Load())/1e9)
	}
}

// histogramFamily is one exposition histogram family: a name, HELP text
// and one labeled series per histogram.
type histogramFamily struct {
	name   string
	help   string
	label  string // label key, "" for an unlabeled single-series family
	series []struct {
		value string
		h     *obs.Histogram
	}
}

// histogramFamilies lists the daemon's histogram families in scrape order.
func (s *Server) histogramFamilies() []histogramFamily {
	httpFam := histogramFamily{
		name:  "dtnd_http_request_duration_seconds",
		help:  "HTTP request duration by response class (streams book their full lifetime).",
		label: "class",
	}
	for i, class := range respClasses {
		httpFam.series = append(httpFam.series, struct {
			value string
			h     *obs.Histogram
		}{class, s.httpDur[i]})
	}
	waitFam := histogramFamily{
		name: "dtnd_queue_wait_seconds",
		help: "Time jobs waited from acceptance to acquiring a run permit.",
	}
	waitFam.series = append(waitFam.series, struct {
		value string
		h     *obs.Histogram
	}{"", s.queueWait})
	return []histogramFamily{httpFam, waitFam}
}

// writeHistograms renders the histogram families in Prometheus text
// format: cumulative _bucket series ending at le="+Inf", then _sum and
// _count per labeled series.
func (s *Server) writeHistograms(b *strings.Builder) {
	for _, fam := range s.histogramFamilies() {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", fam.name, fam.help, fam.name)
		for _, ser := range fam.series {
			snap := ser.h.Snapshot()
			lbl := ""
			if fam.label != "" {
				lbl = fam.label + "=" + strconv.Quote(ser.value) + ","
			}
			cum := int64(0)
			for i, c := range snap.Counts {
				cum += c
				le := "+Inf"
				if i < len(snap.Bounds) {
					le = strconv.FormatFloat(snap.Bounds[i], 'g', -1, 64)
				}
				fmt.Fprintf(b, "%s_bucket{%sle=%q} %d\n", fam.name, lbl, le, cum)
			}
			sfx := ""
			if fam.label != "" {
				sfx = "{" + strings.TrimSuffix(lbl, ",") + "}"
			}
			fmt.Fprintf(b, "%s_sum%s %g\n%s_count%s %d\n", fam.name, sfx, snap.Sum, fam.name, sfx, snap.Count)
		}
	}
}
