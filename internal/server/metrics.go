package server

// Runtime observability: GET /metrics serves the daemon's counters in
// Prometheus text exposition format (hand-rolled — the format is three
// line shapes, no client library needed). Counters live as atomics on
// serverCounters and are incremented at the point the event happens;
// gauges (queue depth, open NDJSON streams, cache size) are read at
// scrape time. The one invariant CI reconciles after a smoke run:
//
//	dtnd_submissions_total == dtnd_submit_cache_hits_total
//	                        + dtnd_submit_cache_misses_total
//
// i.e. every valid job submission is classified exactly once — served a
// result immediately (hit: disk cache or a terminal in-flight snapshot)
// or handed a job (miss: coalesced onto one or queued fresh).

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"

	"repro/internal/experiment"
	"repro/internal/resultcache"
)

// serverCounters is the daemon's metric state. All fields are atomics so
// the hot paths (submit, progress publish) never take a lock to count.
type serverCounters struct {
	submissions      atomic.Int64 // valid POST /v1/jobs reaching classification
	submitHits       atomic.Int64 // served a result immediately, no job
	submitCoalesced  atomic.Int64 // attached to an identical in-flight job
	submitRejected   atomic.Int64 // refused: queue full or draining
	sweepSubmissions atomic.Int64 // valid POST /v1/sweeps accepted
	sweepRejected    atomic.Int64 // sweeps refused: queue room or draining

	jobsDone      atomic.Int64 // jobs reaching state done
	jobsFailed    atomic.Int64 // jobs reaching state failed
	jobsCancelled atomic.Int64 // jobs reaching state cancelled

	progressEvents atomic.Int64 // simulation progress events published
	simMillis      atomic.Int64 // simulated scenario-milliseconds completed
	streamSubs     atomic.Int64 // gauge: NDJSON streams currently open
}

// noteTerminal records a job's final state (the job's onTerminal hook).
func (m *serverCounters) noteTerminal(st jobState) {
	switch st {
	case stateDone:
		m.jobsDone.Add(1)
	case stateFailed:
		m.jobsFailed.Add(1)
	case stateCancelled:
		m.jobsCancelled.Add(1)
	}
}

// metricDef is one exposition entry: name, HELP text, TYPE and a value
// read at scrape time.
type metricDef struct {
	name  string
	help  string
	typ   string // "counter" or "gauge"
	value func() float64
}

// metricDefs builds the scrape table. Queue depth and retained-object
// gauges read Server.mu once each; everything else is an atomic load.
func (s *Server) metricDefs() []metricDef {
	counter := func(name, help string, v *atomic.Int64) metricDef {
		return metricDef{name: name, help: help, typ: "counter", value: func() float64 { return float64(v.Load()) }}
	}
	m := &s.m
	defs := []metricDef{
		counter("dtnd_submissions_total", "Valid job submissions (direct POST /v1/jobs) classified against the cache.", &m.submissions),
		counter("dtnd_submit_cache_hits_total", "Submissions served a result immediately: disk cache or terminal in-flight snapshot.", &m.submitHits),
		{name: "dtnd_submit_cache_misses_total", help: "Submissions handed a job (coalesced or queued): submissions - hits.", typ: "counter",
			value: func() float64 { return float64(m.submissions.Load() - m.submitHits.Load()) }},
		counter("dtnd_submit_coalesced_total", "Submissions attached to an identical in-flight job.", &m.submitCoalesced),
		counter("dtnd_submit_rejected_total", "Submissions refused: queue full or draining.", &m.submitRejected),
		counter("dtnd_sweep_submissions_total", "Valid sweep submissions accepted.", &m.sweepSubmissions),
		counter("dtnd_sweep_rejected_total", "Sweep submissions refused: queue room or draining.", &m.sweepRejected),
		counter("dtnd_jobs_done_total", "Jobs finished successfully.", &m.jobsDone),
		counter("dtnd_jobs_failed_total", "Jobs finished in failure.", &m.jobsFailed),
		counter("dtnd_jobs_cancelled_total", "Jobs cancelled before completion.", &m.jobsCancelled),
		{name: "dtnd_jobs_simulated_total", help: "Jobs that actually ran a simulation (cache misses that completed).", typ: "counter",
			value: func() float64 { return float64(s.simulated.Load()) }},
		counter("dtnd_progress_events_total", "Simulation progress events published to streams and sweeps.", &m.progressEvents),
		{name: "dtnd_sim_seconds_total", help: "Simulated scenario-seconds completed across all jobs (rate() gives sim-time throughput).", typ: "counter",
			value: func() float64 { return float64(m.simMillis.Load()) / 1000 }},
		{name: "dtnd_queue_depth", help: "Accepted-but-not-finished jobs (queued + running).", typ: "gauge",
			value: func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(s.queued) }},
		{name: "dtnd_jobs_retained", help: "Job records addressable in memory (bounded retention ring).", typ: "gauge",
			value: func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(len(s.jobs)) }},
		{name: "dtnd_sweeps_retained", help: "Sweep records addressable in memory (bounded retention ring).", typ: "gauge",
			value: func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(len(s.sweeps)) }},
		{name: "dtnd_stream_subscribers", help: "NDJSON progress streams currently open (jobs and sweeps).", typ: "gauge",
			value: func() float64 { return float64(m.streamSubs.Load()) }},
	}
	// Result-store counters (zeros when caching is disabled: s.store is
	// nil and Stats() is nil-safe).
	stat := func(name, help, typ string, v func(resultcache.Stats) int64) metricDef {
		return metricDef{name: name, help: help, typ: typ, value: func() float64 { return float64(v(s.store.Stats())) }}
	}
	defs = append(defs,
		// Contact-trace fast path: how often sweep cells replayed a
		// recorded world instead of re-simulating mobility, and the
		// store's trace-blob traffic. Recording/replay counts are
		// process-wide (experiment-layer atomics); blob counters are
		// kept apart from result counters so the submissions == hits +
		// misses invariant above stays exact.
		metricDef{name: "dtnd_trace_recordings_total", help: "Contact-trace recordings performed (live runs doubling as recordings, or bare pre-records).", typ: "counter",
			value: func() float64 { return float64(experiment.TraceRecordings()) }},
		metricDef{name: "dtnd_trace_replays_total", help: "Simulation runs served by contact replay instead of live mobility.", typ: "counter",
			value: func() float64 { return float64(experiment.TraceReplays()) }},
		stat("dtnd_trace_cache_hits_total", "Trace-store reads that found a recorded contact script.", "counter",
			func(st resultcache.Stats) int64 { return st.TraceHits }),
		stat("dtnd_trace_cache_misses_total", "Trace-store reads that found nothing.", "counter",
			func(st resultcache.Stats) int64 { return st.TraceMisses }),
		stat("dtnd_trace_cache_puts_total", "Contact scripts persisted to the store.", "counter",
			func(st resultcache.Stats) int64 { return st.TracePuts }),
	)
	defs = append(defs,
		stat("dtnd_cache_hits_total", "Result-store reads that found an intact entry (submits, sweep cells, /v1/results).", "counter",
			func(st resultcache.Stats) int64 { return st.Hits }),
		stat("dtnd_cache_misses_total", "Result-store reads that found nothing (or a corrupt entry).", "counter",
			func(st resultcache.Stats) int64 { return st.Misses }),
		stat("dtnd_cache_puts_total", "Results persisted to the store.", "counter",
			func(st resultcache.Stats) int64 { return st.Puts }),
		stat("dtnd_cache_evictions_total", "Entries removed by size-bound eviction.", "counter",
			func(st resultcache.Stats) int64 { return st.Evictions }),
		stat("dtnd_cache_evicted_bytes_total", "Bytes reclaimed by size-bound eviction.", "counter",
			func(st resultcache.Stats) int64 { return st.EvictedBytes }),
		stat("dtnd_cache_eviction_scans_total", "Eviction directory walks.", "counter",
			func(st resultcache.Stats) int64 { return st.Scans }),
		stat("dtnd_cache_bytes", "Approximate result-store size (bounded stores only).", "gauge",
			func(st resultcache.Stats) int64 { return st.CurBytes }),
	)
	return defs
}

// handleMetrics serves GET /metrics in Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var b strings.Builder
	for _, d := range s.metricDefs() {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", d.name, d.help, d.name, d.typ, d.name, d.value())
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, b.String())
}
