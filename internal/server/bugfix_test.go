package server

// Regression tests for the service-layer bugs the load harness flushed
// out: the cached fast path serving stale seed counts, and submissions
// or sweep cells coalescing onto a job that already reached a terminal
// state (the window between j.finish/j.fail and runJob's deferred
// removal from s.active).

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/experiment"
	"repro/internal/metrics"
)

// TestStaleCacheSeedCountMiss pins the handleSubmit guard: a cache entry
// under the right content address but with the wrong number of per-seed
// summaries (a stale or tampered entry) must be a miss and recompute —
// the same check both sweep cache passes already applied.
func TestStaleCacheSeedCountMiss(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	spec, err := experiment.ParseSpec([]byte(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	key, err := spec.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	canon, err := spec.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	// One summary for a two-seed spec: stale by seed count.
	stale := &Result{Key: key, CanonicalSpec: canon, Seeds: []int64{1}, PerSeed: []metrics.Summary{{Generated: 999}}, Mean: metrics.Summary{Generated: 999}}
	if err := s.store.Put(stale); err != nil {
		t.Fatal(err)
	}

	sub, code := postSpec(t, ts, testSpec)
	if code != http.StatusAccepted || sub.Cached {
		t.Fatalf("stale entry served to a single-job client: code=%d %+v", code, sub)
	}
	jr := waitDone(t, ts, sub.JobID)
	if len(jr.Result.PerSeed) != 2 {
		t.Fatalf("recomputed result has %d per-seed summaries, want 2", len(jr.Result.PerSeed))
	}
	// The recomputation repaired the entry; the next submission hits.
	sub2, code := postSpec(t, ts, testSpec)
	if code != http.StatusOK || !sub2.Cached || len(sub2.Result.PerSeed) != 2 {
		t.Fatalf("repaired entry not served: code=%d %+v", code, sub2)
	}
}

// fabricateJob registers a job exactly as a submission would, without
// starting runJob — freezing the window in which the job has published a
// terminal state but is still present in s.active.
func fabricateJob(t testing.TB, s *Server, specJSON string) (*job, experiment.ScenarioSpec) {
	t.Helper()
	spec, err := experiment.ParseSpec([]byte(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	key, err := spec.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	j := s.newJobLocked(key, spec)
	s.queued-- // runJob never runs for this job; keep depth accounting honest
	s.wg.Done()
	s.mu.Unlock()
	return j, spec
}

// TestSubmitRefusesTerminalCoalesce: a submission arriving in the
// terminal window must not attach and be answered "done"/"failed" with
// no payload — a done job's result is served inline from its snapshot,
// a failed job's key queues a fresh job.
func TestSubmitRefusesTerminalCoalesce(t *testing.T) {
	s, err := New(Config{}) // caching off: the disk fast path cannot mask the window
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	// Done-in-window: the submission is served the snapshot result.
	j, spec := fabricateJob(t, s, testSpec)
	res := &Result{Key: j.key, Seeds: spec.SeedList(), PerSeed: []metrics.Summary{{Generated: 7}, {Generated: 9}}, Mean: metrics.Summary{Generated: 8}}
	j.finish(res, nil, nil)
	sub, code := postSpec(t, ts, testSpec)
	if code != http.StatusOK || sub.Result == nil || sub.Status != string(stateDone) || !sub.Cached {
		t.Fatalf("terminal-done window: code=%d %+v, want inline result", code, sub)
	}
	if sub.Result.Mean != res.Mean {
		t.Fatalf("inline result diverged: %+v", sub.Result.Mean)
	}

	// Failed-in-window: the submission queues a fresh job instead of
	// silently attaching to the corpse.
	failedSpec := `{"preset": "quick", "protocol": "Direct", "nodes": 16, "duration": 300, "seeds": [41]}`
	j2, _ := fabricateJob(t, s, failedSpec)
	j2.fail(errors.New("engine exploded"))
	sub2, code := postSpec(t, ts, failedSpec)
	if code != http.StatusAccepted || sub2.JobID == j2.id {
		t.Fatalf("failed-terminal window: code=%d job=%q, want a fresh queued job (failed job was %q)", code, sub2.JobID, j2.id)
	}
	jr := waitDone(t, ts, sub2.JobID)
	if jr.Result == nil {
		t.Fatalf("fresh job after failed-in-window produced no result: %+v", jr)
	}
}

// TestTerminalCoalesceRaceViaSubscriber pins the live race end to end: a
// subscriber hook blocks the job's runJob goroutine at the instant the
// terminal event publishes — terminal state set, job still in s.active —
// and a concurrent submission must still receive the result inline.
func TestTerminalCoalesceRaceViaSubscriber(t *testing.T) {
	s, err := New(Config{}) // caching off: only the in-flight snapshot can serve
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	spec := `{"preset": "quick", "protocol": "SprayAndWait", "nodes": 30, "duration": 2000}`
	sub, code := postSpec(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	s.mu.Lock()
	j := s.jobs[sub.JobID]
	s.mu.Unlock()

	atTerminal := make(chan struct{})
	proceed := make(chan struct{})
	var once sync.Once
	snap := j.subscribe(func(p metrics.Progress) {
		if p.Done {
			once.Do(func() {
				close(atTerminal)
				<-proceed // hold runJob here: deferred s.active cleanup pends
			})
		}
	})
	if terminalState(snap.state) {
		close(proceed)
		t.Skip("job finished before subscription; window not observable")
	}

	<-atTerminal
	// The job is done and published, but still in s.active.
	sub2, code := postSpec(t, ts, spec)
	close(proceed)
	if code != http.StatusOK || sub2.Status != string(stateDone) || sub2.Result == nil || !sub2.Cached {
		t.Fatalf("submission in terminal window: code=%d %+v, want done + inline result", code, sub2)
	}
	if got := s.Simulated(); got != 1 {
		t.Errorf("Simulated = %d, want 1 (no duplicate simulation)", got)
	}
	waitDone(t, ts, sub.JobID)
}

// TestSweepCellRefusesTerminalCoalesce: sweep cells hitting the terminal
// window behave like submissions — a done job's snapshot serves the cell
// as cached, a failed job's cell queues fresh instead of silently
// attaching the sweep to a failed job.
func TestSweepCellRefusesTerminalCoalesce(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	// The alpha=0.2 cell's job is failed-in-window; the 0.6 cell is new.
	j, _ := fabricateJob(t, s, testSweepCellSpec)
	j.fail(errors.New("engine exploded"))
	sw, code := postSweep(t, ts, testSweep)
	if code != http.StatusAccepted {
		t.Fatalf("sweep status %d: %+v", code, sw)
	}
	for _, c := range sw.Cells {
		if c.JobID == j.id {
			t.Fatalf("sweep cell attached to failed-in-window job %s: %+v", j.id, c)
		}
	}
	final := waitSweepState(t, ts, sw.SweepID, stateDone)
	if final.Status != string(stateDone) {
		t.Fatalf("sweep inherited the dead job's failure: %+v", final)
	}

	// Done-in-window: the cell takes the snapshot result as cached.
	doneSpec := `{"preset": "quick", "protocol": "Direct", "nodes": 16, "duration": 300, "seeds": [51]}`
	j2, spec2 := fabricateJob(t, s, doneSpec)
	j2.finish(&Result{Key: j2.key, Seeds: spec2.SeedList(), PerSeed: []metrics.Summary{{Generated: 5}}, Mean: metrics.Summary{Generated: 5}}, nil, nil)
	sw2, code := postSweep(t, ts, `{"base": {"preset": "quick", "protocol": "Direct", "nodes": 16, "duration": 300, "seeds": [51]}}`)
	if code != http.StatusOK || sw2.CellsCached != 1 || sw2.Status != string(stateDone) {
		t.Fatalf("done-in-window cell not served from snapshot: code=%d %+v", code, sw2)
	}
	if sw2.Cells[0].Mean == nil || sw2.Cells[0].Mean.Generated != 5 {
		t.Fatalf("snapshot mean not propagated: %+v", sw2.Cells[0])
	}
	if got := s.Simulated(); got != 2 { // the two fresh testSweep cells only
		t.Errorf("Simulated = %d, want 2", got)
	}
}
