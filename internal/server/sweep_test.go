package server

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/experiment"
)

// testSweep expands to 2 alpha cells over the same base as testSpec with
// alpha 0.2 — so the single-job spec below is one of its cells.
const testSweep = `{
	"base": {"preset": "quick", "protocol": "EER", "nodes": 16, "duration": 400, "seeds": [1, 2]},
	"alpha": [0.2, 0.6]
}`

// testSweepCellSpec is the alpha=0.2 cell of testSweep written as a
// single-job spec: both resolve to the same scenario, hence the same
// content address.
const testSweepCellSpec = `{"preset": "quick", "protocol": "EER", "nodes": 16, "duration": 400, "seeds": [1, 2], "alpha": 0.2}`

func postSweep(t *testing.T, ts *httptest.Server, spec string) (sweepResponse, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out sweepResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode sweep response: %v", err)
	}
	return out, resp.StatusCode
}

func waitSweepState(t *testing.T, ts *httptest.Server, id string, want ...jobState) sweepResponse {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var sr sweepResponse
		getJSON(t, ts.URL+"/v1/sweeps/"+id, &sr)
		for _, st := range want {
			if sr.Status == string(st) {
				return sr
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s stuck in %q, want %v", id, sr.Status, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSweepEndToEnd: a sweep fans out into per-cell jobs, streams
// aggregate progress to a terminal event, produces a result table keyed
// by cell, and a resubmission is served entirely from cache with zero
// new simulations — the acceptance criterion.
func TestSweepEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	sub, code := postSweep(t, ts, testSweep)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d: %+v", code, sub)
	}
	if sub.SweepID == "" || sub.CellsTotal != 2 || sub.CellsCached != 0 {
		t.Fatalf("bad sweep submit response %+v", sub)
	}
	for _, c := range sub.Cells {
		if len(c.Axes) != 1 || c.Axes[0].Axis != "alpha" {
			t.Fatalf("cell axes %+v", c.Axes)
		}
		if c.JobID == "" || c.Key == "" {
			t.Fatalf("cell missing job/key: %+v", c)
		}
	}

	// Aggregate NDJSON stream: monotone fractions, terminal done line.
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + sub.SweepID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content type %q", ct)
	}
	var events []SweepProgress
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var p SweepProgress
		if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, p)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if len(events) < 2 {
		t.Fatalf("only %d aggregate events", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Frac < events[i-1].Frac {
			t.Fatalf("aggregate progress went backwards: %g after %g", events[i].Frac, events[i-1].Frac)
		}
	}
	last := events[len(events)-1]
	if !last.Done || last.Status != string(stateDone) || last.Frac != 1 || last.CellsDone != 2 {
		t.Fatalf("terminal event %+v", last)
	}

	// Result table: every cell done with a mean, keyed by axis value.
	table := waitSweepState(t, ts, sub.SweepID, stateDone)
	if table.CellsDone != 2 || len(table.Cells) != 2 {
		t.Fatalf("table %+v", table)
	}
	for i, want := range []string{"0.2", "0.6"} {
		c := table.Cells[i]
		if c.Axes[0].Value != want || c.Status != string(stateDone) || c.Mean == nil {
			t.Fatalf("cell %d: %+v", i, c)
		}
	}
	// Each cell's result is addressable directly by its key.
	var cellRes Result
	getJSON(t, ts.URL+"/v1/results/"+table.Cells[0].Key, &cellRes)
	if cellRes.Mean != *table.Cells[0].Mean {
		t.Errorf("cell result endpoint diverged from table")
	}

	// Resubmission: fully cached, no new simulations, identical table.
	before := s.Simulated()
	sub2, code := postSweep(t, ts, testSweep)
	if code != http.StatusOK {
		t.Fatalf("resubmit status %d: %+v", code, sub2)
	}
	if sub2.Status != string(stateDone) || sub2.CellsCached != 2 || sub2.Frac != 1 {
		t.Fatalf("resubmitted sweep not served from cache: %+v", sub2)
	}
	for i := range sub2.Cells {
		if !sub2.Cells[i].Cached || *sub2.Cells[i].Mean != *table.Cells[i].Mean {
			t.Fatalf("resubmitted cell %d diverged: %+v", i, sub2.Cells[i])
		}
	}
	if got := s.Simulated(); got != before {
		t.Errorf("resubmitted sweep simulated (%d -> %d)", before, got)
	}
	// The all-cached sweep is itself addressable, already terminal.
	if st := waitSweepState(t, ts, sub2.SweepID, stateDone); st.CellsCached != 2 {
		t.Errorf("cached sweep status %+v", st)
	}
}

// TestSweepReusesPriorJobs: a sweep overlapping previously-computed
// single jobs simulates only its genuinely new cells — Simulated() grows
// by exactly the unique uncomputed cell count.
func TestSweepReusesPriorJobs(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	// Compute one future cell as a plain single job.
	sub, code := postSpec(t, ts, testSweepCellSpec)
	if code != http.StatusAccepted {
		t.Fatalf("single job status %d", code)
	}
	waitDone(t, ts, sub.JobID)
	if got := s.Simulated(); got != 1 {
		t.Fatalf("Simulated = %d after one job", got)
	}

	// The sweep covers that cell plus one new one.
	sw, code := postSweep(t, ts, testSweep)
	if code != http.StatusAccepted {
		t.Fatalf("sweep status %d: %+v", code, sw)
	}
	if sw.CellsCached != 1 {
		t.Fatalf("sweep reused %d cells, want 1: %+v", sw.CellsCached, sw)
	}
	if sw.Cells[0].Key != sub.Key {
		t.Errorf("cell key %s != single-job key %s", sw.Cells[0].Key, sub.Key)
	}
	waitSweepState(t, ts, sw.SweepID, stateDone)
	if got := s.Simulated(); got != 2 {
		t.Errorf("Simulated = %d, want 2 (one job + one new cell)", got)
	}

	// Resubmitting the whole sweep now touches nothing.
	sw2, code := postSweep(t, ts, testSweep)
	if code != http.StatusOK || sw2.CellsCached != 2 {
		t.Fatalf("resubmit: %d %+v", code, sw2)
	}
	if got := s.Simulated(); got != 2 {
		t.Errorf("resubmitted sweep simulated: %d", got)
	}
	// And the cell computed by the sweep is served to single submissions.
	single, code := postSpec(t, ts, `{"preset": "quick", "protocol": "EER", "nodes": 16, "duration": 400, "seeds": [1, 2], "alpha": 0.6}`)
	if code != http.StatusOK || !single.Cached {
		t.Errorf("sweep-computed cell not served to single job: %d %+v", code, single)
	}
}

// TestSweepCancel: DELETE on a sweep cancels its unfinished cells; the
// sweep and its cells end cancelled, and nothing is cached for them.
func TestSweepCancel(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrentJobs: 1})
	// Two heavy cells: with one job slot, at most one runs while the
	// other queues — both must die on sweep cancellation.
	sw, code := postSweep(t, ts, `{
		"base": {"protocol": "MaxProp", "nodes": 240, "duration": 10000, "seeds": [1, 2, 3, 4]},
		"alpha": [0.2, 0.6]
	}`)
	if code != http.StatusAccepted {
		t.Fatalf("sweep status %d", code)
	}
	if code, body := del(t, ts.URL+"/v1/sweeps/"+sw.SweepID); code != http.StatusAccepted {
		t.Fatalf("cancel sweep: %d %s", code, body)
	}
	table := waitSweepState(t, ts, sw.SweepID, stateCancelled)
	for i, c := range table.Cells {
		if c.Status != string(stateCancelled) {
			t.Errorf("cell %d status %q after sweep cancel", i, c.Status)
		}
	}
	if got := s.Simulated(); got != 0 {
		t.Errorf("cancelled sweep simulated %d cells", got)
	}
	// Cancelling a finished sweep conflicts.
	if code, _ := del(t, ts.URL+"/v1/sweeps/"+sw.SweepID); code != http.StatusConflict {
		t.Errorf("re-cancel status %d, want 409", code)
	}
	if code, _ := del(t, ts.URL+"/v1/sweeps/nope"); code != http.StatusNotFound {
		t.Errorf("cancel unknown sweep: %d, want 404", code)
	}
}

// TestSweepSharedCellSurvivesSweepCancel: a cell coalesced with a direct
// submission keeps running when the sweep is cancelled — the sweep only
// releases its own hold.
func TestSweepSharedCellSurvivesSweepCancel(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrentJobs: 1})
	// Direct submission first; the sweep's alpha=0.2 cell coalesces on it.
	single, code := postSpec(t, ts, `{"protocol": "MaxProp", "nodes": 240, "duration": 10000, "seeds": [1, 2, 3, 4], "alpha": 0.2}`)
	if code != http.StatusAccepted {
		t.Fatalf("single job status %d", code)
	}
	sw, code := postSweep(t, ts, `{
		"base": {"protocol": "MaxProp", "nodes": 240, "duration": 10000, "seeds": [1, 2, 3, 4]},
		"alpha": [0.2, 0.6]
	}`)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("sweep status %d", code)
	}
	shared, other := "", ""
	for _, c := range sw.Cells {
		if c.JobID == single.JobID {
			shared = c.JobID
		} else {
			other = c.JobID
		}
	}
	if shared == "" {
		// The single job finished before the sweep expanded (would be
		// served from cache instead of coalescing): nothing to verify.
		t.Skip("single job finished before sweep submission; no in-flight coalesce")
	}
	if code, _ := del(t, ts.URL+"/v1/sweeps/"+sw.SweepID); code != http.StatusAccepted {
		t.Fatalf("cancel sweep failed")
	}
	// The sweep-only cell dies with the sweep...
	waitState(t, ts, other, stateCancelled)
	// ...while the shared cell keeps running for its direct submitter
	// (the sweep itself stays unterminated until that cell ends).
	jr := waitState(t, ts, shared, stateRunning, stateQueued, stateDone)
	if jr.Status == string(stateCancelled) {
		t.Fatalf("shared cell cancelled with the sweep")
	}
	// Cancel the survivor directly (an explicit job DELETE overrides
	// remaining holds); the sweep then reaches its terminal state too.
	del(t, ts.URL+"/v1/jobs/"+shared)
	waitState(t, ts, shared, stateCancelled, stateDone)
	waitSweepState(t, ts, sw.SweepID, stateCancelled, stateDone)
}

// TestSweepValidationAndAdmission: malformed sweeps are 400; sweeps
// whose new cells overflow the queue are refused whole with 429.
func TestSweepValidationAndAdmission(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxQueuedJobs: 1})
	for name, body := range map[string]string{
		"garbage":       `not json`,
		"unknown field": `{"base": {}, "protocls": ["EER"]}`,
		"bad cell":      `{"base": {}, "protocols": ["EERX"]}`,
	} {
		if _, code := postSweep(t, ts, body); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, code)
		}
	}
	// Two new cells, one queue slot: refused whole, nothing queued.
	if _, code := postSweep(t, ts, testSweep); code != http.StatusTooManyRequests {
		t.Errorf("oversized sweep status %d, want 429", code)
	}
	if resp, err := http.Get(ts.URL + "/v1/sweeps/nope"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown sweep status %d", resp.StatusCode)
		}
	}
}

// TestSweepPerCellStream: the sweep stream interleaves per-cell lines
// (cell key + that cell's fraction, terminal cell_done) with the
// aggregate, every cell appears, and the final line is still the
// aggregate terminal event.
func TestSweepPerCellStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sub, code := postSweep(t, ts, testSweep)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	keys := map[string]bool{}
	for _, c := range sub.Cells {
		keys[c.Key] = true
	}

	resp, err := http.Get(ts.URL + "/v1/sweeps/" + sub.SweepID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []SweepProgress
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var p SweepProgress
		if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
			t.Fatalf("bad NDJSON %q: %v", sc.Text(), err)
		}
		events = append(events, p)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	cellFracs := map[string]float64{}
	cellDone := map[string]bool{}
	for _, p := range events {
		if p.Cell == "" {
			continue // aggregate line
		}
		if !keys[p.Cell] {
			t.Fatalf("per-cell line for unknown cell %q", p.Cell)
		}
		if p.CellFrac < cellFracs[p.Cell] {
			t.Fatalf("cell %s frac went backwards: %g after %g", p.Cell, p.CellFrac, cellFracs[p.Cell])
		}
		cellFracs[p.Cell] = p.CellFrac
		if p.CellDone {
			cellDone[p.Cell] = true
		}
		if p.Done {
			t.Fatalf("per-cell line carries the sweep terminal flag: %+v", p)
		}
	}
	for key := range keys {
		if !cellDone[key] {
			t.Errorf("cell %s never emitted a terminal per-cell line", key)
		}
	}
	last := events[len(events)-1]
	if !last.Done || last.Cell != "" || last.Status != string(stateDone) {
		t.Fatalf("final line %+v, want aggregate terminal", last)
	}
}

// TestSweepPagination: ?offset/limit window the cell table while the
// aggregate numbers stay sweep-wide; bad parameters are 400.
func TestSweepPagination(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// 6 cells: alpha × lambda, finished so the table is stable.
	sw, code := postSweep(t, ts, `{
		"base": {"preset": "quick", "protocol": "Direct", "nodes": 16, "duration": 300, "seeds": [1]},
		"alpha": [0.2, 0.4, 0.6],
		"lambda": [5, 10]
	}`)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit status %d", code)
	}
	full := waitSweepState(t, ts, sw.SweepID, stateDone)
	if full.CellsTotal != 6 || len(full.Cells) != 6 {
		t.Fatalf("full table %+v", full)
	}

	var page sweepResponse
	getJSON(t, ts.URL+"/v1/sweeps/"+sw.SweepID+"?offset=2&limit=3", &page)
	if page.CellsTotal != 6 || page.CellsDone != 6 || page.Offset != 2 || len(page.Cells) != 3 {
		t.Fatalf("page %+v", page)
	}
	for i, c := range page.Cells {
		if c.Key != full.Cells[2+i].Key {
			t.Errorf("page cell %d is %s, want %s", i, c.Key, full.Cells[2+i].Key)
		}
	}
	// CellsCached counts sweep-wide regardless of the window.
	if page.CellsCached != full.CellsCached {
		t.Errorf("page cached count %d != full %d", page.CellsCached, full.CellsCached)
	}
	// Tail window past the end clamps; limit=0 returns aggregate only.
	getJSON(t, ts.URL+"/v1/sweeps/"+sw.SweepID+"?offset=5&limit=10", &page)
	if len(page.Cells) != 1 || page.Cells[0].Key != full.Cells[5].Key {
		t.Fatalf("tail page %+v", page)
	}
	getJSON(t, ts.URL+"/v1/sweeps/"+sw.SweepID+"?limit=0", &page)
	if len(page.Cells) != 0 || page.CellsTotal != 6 {
		t.Fatalf("aggregate-only page %+v", page)
	}
	for _, q := range []string{"?offset=-1", "?limit=-2", "?offset=x", "?limit=x"} {
		resp, err := http.Get(ts.URL + "/v1/sweeps/" + sw.SweepID + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestSweepList: GET /v1/sweeps returns every retained sweep in creation
// order with aggregate fields only.
func TestSweepList(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var list struct {
		Sweeps []sweepListEntry `json:"sweeps"`
	}
	getJSON(t, ts.URL+"/v1/sweeps", &list)
	if len(list.Sweeps) != 0 {
		t.Fatalf("fresh server lists %d sweeps", len(list.Sweeps))
	}
	first, code := postSweep(t, ts, testSweep)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	waitSweepState(t, ts, first.SweepID, stateDone)
	second, code := postSweep(t, ts, testSweep) // fully cached now
	if code != http.StatusOK {
		t.Fatalf("resubmit status %d", code)
	}
	getJSON(t, ts.URL+"/v1/sweeps", &list)
	if len(list.Sweeps) != 2 {
		t.Fatalf("list has %d sweeps, want 2: %+v", len(list.Sweeps), list)
	}
	if list.Sweeps[0].SweepID != first.SweepID || list.Sweeps[1].SweepID != second.SweepID {
		t.Errorf("list order %+v, want creation order %s, %s", list.Sweeps, first.SweepID, second.SweepID)
	}
	for i, e := range list.Sweeps {
		if e.Status != string(stateDone) || e.CellsTotal != 2 || e.CellsDone != 2 || e.Frac != 1 {
			t.Errorf("entry %d: %+v", i, e)
		}
	}
}

// TestSweepCachedServedWhileDraining: like handleSubmit's cached fast
// path, a fully-cached sweep needs no queue slot and is served even
// after Drain begins; a sweep needing simulation is refused with 503.
func TestSweepCachedServedWhileDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	sw, code := postSweep(t, ts, testSweep)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	waitSweepState(t, ts, sw.SweepID, stateDone)

	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	cached, code := postSweep(t, ts, testSweep)
	if code != http.StatusOK || cached.CellsCached != 2 {
		t.Fatalf("cached sweep refused during drain: %d %+v", code, cached)
	}
	if _, code := postSweep(t, ts, `{
		"base": {"preset": "quick", "protocol": "EER", "nodes": 16, "duration": 400, "seeds": [1, 2]},
		"alpha": [0.9]
	}`); code != http.StatusServiceUnavailable {
		t.Errorf("uncached sweep during drain: status %d, want 503", code)
	}
}

// TestSweepTraceReplay pins the daemon's trace fast path: a sweep whose
// axes differ only in protocol shares one recorded world per seed, so the
// first cell's job records the contact script during its live run and
// every later cell replays it instead of re-simulating mobility. Both
// cells still run as jobs (Simulated counts them; gossip and exchange
// metering stay per-protocol honest) — only the world advance is shared.
func TestSweepTraceReplay(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	rec0, rep0 := experiment.TraceRecordings(), experiment.TraceReplays()

	sub, code := postSweep(t, ts, `{
		"base": {"preset": "quick", "nodes": 16, "duration": 400, "seeds": [1]},
		"protocols": ["EER", "SprayAndWait"]
	}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d: %+v", code, sub)
	}
	table := waitSweepState(t, ts, sub.SweepID, stateDone)
	if table.CellsDone != 2 {
		t.Fatalf("table %+v", table)
	}
	if got := s.Simulated(); got != 2 {
		t.Errorf("Simulated = %d, want 2 (every protocol cell is an honest job)", got)
	}
	if d := experiment.TraceRecordings() - rec0; d != 1 {
		t.Errorf("sweep recorded %d worlds, want 1 (mobility simulated once)", d)
	}
	if d := experiment.TraceReplays() - rep0; d != 1 {
		t.Errorf("sweep replayed %d runs, want 1 (second protocol cell)", d)
	}

	// The counters surface on /metrics for ops dashboards and CI smoke.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, name := range []string{"dtnd_trace_recordings_total", "dtnd_trace_replays_total", "dtnd_trace_cache_puts_total"} {
		if !strings.Contains(string(body), name) {
			t.Errorf("/metrics missing %s", name)
		}
	}

	// A single-spec job over the same world replays the sweep's trace: the
	// daemon marks nothing (lone cell), but an explicit trace=replay spec
	// is honoured end to end.
	sub2, code := postSpec(t, ts, `{"preset": "quick", "protocol": "CR", "nodes": 16, "duration": 400, "seeds": [1], "trace": "replay"}`)
	if code != http.StatusAccepted {
		t.Fatalf("replay job submit status %d: %+v", code, sub2)
	}
	jr := waitState(t, ts, sub2.JobID, stateDone)
	if jr.Status != string(stateDone) {
		t.Fatalf("replay job %+v", jr)
	}
	if d := experiment.TraceReplays() - rep0; d != 2 {
		t.Errorf("explicit replay job did not replay (replays delta %d, want 2)", d)
	}
}
