package server

// Sweep-level jobs: POST /v1/sweeps accepts an experiment.SweepSpec — a
// base scenario plus axes — and fans its expanded cells out over the
// same bounded job queue single submissions use. Each cell is an
// ordinary content-addressed job: cells already cached are served from
// disk without simulating, cells identical to an in-flight job (from a
// single submission or an overlapping sweep) coalesce onto it, and only
// genuinely new cells queue. The sweep itself is a pure aggregation
// layer — per-cell progress folds into one NDJSON stream, and the final
// result is a table keyed by each cell's axis coordinates and content
// address.

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/experiment"
	"repro/internal/metrics"
)

// maxRetainedSweeps bounds finished sweeps kept addressable in memory.
const maxRetainedSweeps = 128

// sweepCellRef binds one expanded cell to how it is being satisfied:
// a cached result read at submission, or a job (owned or coalesced).
// Exactly one of cached/job is non-nil.
type sweepCellRef struct {
	cell   experiment.SweepCell
	cached *Result
	job    *job
}

// SweepProgress is one line of a sweep's NDJSON stream. Two line shapes
// interleave: aggregate lines (Cell empty) report completion across all
// cells, per-cell lines additionally carry the progressing cell's content
// address and its own fraction (throttled to ~10% steps per cell, plus
// its terminal event with CellDone). The stream's terminal line is an
// aggregate line with done=true, the sweep's final status and the first
// failed cell's error, if any.
type SweepProgress struct {
	Cells     int     `json:"cells"`
	CellsDone int     `json:"cells_done"`
	Frac      float64 `json:"frac"`
	Cell      string  `json:"cell,omitempty"`      // per-cell line: cell content address
	CellFrac  float64 `json:"cell_frac,omitempty"` // per-cell line: that cell's completion
	CellDone  bool    `json:"cell_done,omitempty"` // per-cell line: cell reached a terminal state
	Done      bool    `json:"done,omitempty"`
	Status    string  `json:"status,omitempty"`
	Error     string  `json:"error,omitempty"`
}

// sweepJob aggregates one accepted sweep. cells is immutable after
// construction; progress state accumulates under mu, fed by per-cell job
// subscriptions. Cell events arrive outside any job lock, so folding
// them may in turn snapshot cell jobs (lock order: Server.mu → sweep.mu
// → job.mu).
type sweepJob struct {
	id    string
	cells []sweepCellRef

	mu       sync.Mutex
	state    jobState
	fracs    []float64 // per-cell completion; terminal cells pin to 1
	done     int       // cells in a terminal state (incl. cached)
	events   []SweepProgress
	notify   chan struct{}
	lastEmit float64   // aggregate frac of the last throttled event
	cellEmit []float64 // per-cell frac of the last per-cell line (throttle)
	released bool      // DELETE already dropped this sweep's cell holds
}

// newSweepJob builds the aggregate over resolved cell refs. Cached cells
// start complete; the caller subscribes job cells and then seals.
func newSweepJob(id string, cells []sweepCellRef) *sweepJob {
	sw := &sweepJob{
		id:       id,
		cells:    cells,
		state:    stateRunning,
		fracs:    make([]float64, len(cells)),
		cellEmit: make([]float64, len(cells)),
		notify:   make(chan struct{}),
	}
	for i, c := range cells {
		if c.cached != nil {
			sw.fracs[i] = 1
			sw.done++
		}
	}
	return sw
}

// initCell folds a cell job's pre-subscription history into the
// aggregate; events after the subscription snapshot arrive via observe,
// so each terminal event is counted exactly once.
func (sw *sweepJob) initCell(i int, snap jobSnap) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if n := len(snap.events); n > 0 && snap.events[n-1].Frac > sw.fracs[i] {
		sw.fracs[i] = snap.events[n-1].Frac
	}
	if terminalState(snap.state) {
		sw.fracs[i] = 1
		sw.done++
	}
}

// observe folds one live event from cell i into the aggregate: a
// per-cell line first (throttled), then the aggregate line — so the
// sweep-terminal aggregate event is always the stream's last line.
func (sw *sweepJob) observe(i int, p metrics.Progress) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if p.Frac > sw.fracs[i] {
		sw.fracs[i] = p.Frac
	}
	if p.Done {
		sw.fracs[i] = 1
		sw.done++
	}
	sw.emitCellLocked(i, p.Done)
	sw.emitLocked(p.Done)
}

// emitCellLocked appends a per-cell progress line (throttled to ~10%
// steps per cell; a cell's terminal event always emits). Callers hold
// sw.mu.
func (sw *sweepJob) emitCellLocked(i int, done bool) {
	if terminalState(sw.state) {
		return
	}
	f := sw.fracs[i]
	if !done && f < sw.cellEmit[i]+0.1 {
		return
	}
	sw.cellEmit[i] = f
	n := len(sw.cells)
	total := 0.0
	for _, fr := range sw.fracs {
		total += fr
	}
	sw.events = append(sw.events, SweepProgress{
		Cells: n, CellsDone: sw.done, Frac: total / float64(n),
		Cell: sw.cells[i].cell.Key, CellFrac: f, CellDone: done,
	})
	close(sw.notify)
	sw.notify = make(chan struct{})
}

// seal emits the initial aggregate event — or the terminal one, when
// every cell was served from cache or finished before sealing.
func (sw *sweepJob) seal() {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.emitLocked(true)
}

// emitLocked appends an aggregate progress event (throttled to ~1% steps
// unless force, e.g. a cell completing) and, once every cell is
// terminal, the sweep's terminal event. Callers hold sw.mu.
func (sw *sweepJob) emitLocked(force bool) {
	if terminalState(sw.state) {
		return
	}
	n := len(sw.cells)
	total := 0.0
	for _, f := range sw.fracs {
		total += f
	}
	frac := total / float64(n)
	if sw.done == n {
		st, errMsg := sw.terminalStatusLocked()
		sw.state = st
		sw.events = append(sw.events, SweepProgress{
			Cells: n, CellsDone: n, Frac: frac,
			Done: true, Status: string(st), Error: errMsg,
		})
	} else {
		if !force && frac < sw.lastEmit+0.01 {
			return
		}
		sw.lastEmit = frac
		sw.events = append(sw.events, SweepProgress{Cells: n, CellsDone: sw.done, Frac: frac})
	}
	close(sw.notify)
	sw.notify = make(chan struct{})
}

// terminalStatusLocked derives the sweep's final state from its cells:
// any failed cell fails the sweep, else any cancelled cell marks it
// cancelled, else done. Returns the first failing cell's error.
func (sw *sweepJob) terminalStatusLocked() (jobState, string) {
	st := stateDone
	errMsg := ""
	for _, c := range sw.cells {
		if c.job == nil {
			continue
		}
		snap := c.job.snapshot()
		switch snap.state {
		case stateFailed:
			if errMsg == "" {
				errMsg = snap.errMsg
			}
			st = stateFailed
		case stateCancelled:
			if st != stateFailed {
				st = stateCancelled
			}
		}
	}
	return st, errMsg
}

// snapshot returns the sweep's state, aggregate event history and the
// channel that closes on the next append — atomically.
func (sw *sweepJob) snapshot() (jobState, []SweepProgress, chan struct{}) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.state, sw.events, sw.notify
}

// sweepCellStatus is one row of the sweep result table, keyed by the
// cell's axis coordinates and content address.
type sweepCellStatus struct {
	Key    string                 `json:"key"`
	Axes   []experiment.AxisValue `json:"axes"`
	JobID  string                 `json:"job_id,omitempty"`
	Status string                 `json:"status"`
	Cached bool                   `json:"cached,omitempty"`
	Frac   float64                `json:"frac"`
	Error  string                 `json:"error,omitempty"`
	Mean   *metrics.Summary       `json:"mean,omitempty"`
}

// sweepResponse is the POST /v1/sweeps and GET /v1/sweeps/{id} reply:
// sweep status plus the per-cell result table. CellsCached counts over
// the whole sweep regardless of pagination; Cells holds the requested
// window (Offset..Offset+len(Cells) of CellsTotal).
type sweepResponse struct {
	SweepID     string            `json:"sweep_id"`
	Status      string            `json:"status"`
	Frac        float64           `json:"frac"`
	CellsTotal  int               `json:"cells_total"`
	CellsCached int               `json:"cells_cached"`
	CellsDone   int               `json:"cells_done"`
	Offset      int               `json:"offset,omitempty"`
	Cells       []sweepCellStatus `json:"cells"`
}

// sweepStatus assembles the reply. Aggregate numbers come from one sw.mu
// acquisition; per-cell rows from each cell's atomic job snapshot. The
// table window is cells[offset : offset+limit] (limit < 0 means all) —
// a >100-cell grid's status reply need not ship thousands of rows to a
// client that only wants the aggregate or one page.
func sweepStatus(sw *sweepJob, offset, limit int) sweepResponse {
	sw.mu.Lock()
	st := sw.state
	done := sw.done
	total := 0.0
	for _, f := range sw.fracs {
		total += f
	}
	sw.mu.Unlock()
	resp := sweepResponse{
		SweepID:    sw.id,
		Status:     string(st),
		Frac:       total / float64(len(sw.cells)),
		CellsTotal: len(sw.cells),
		CellsDone:  done,
	}
	offset = min(max(offset, 0), len(sw.cells))
	end := len(sw.cells)
	if limit >= 0 && offset+limit < end {
		end = offset + limit
	}
	resp.Offset = offset
	for i := range sw.cells {
		c := &sw.cells[i]
		if c.cached != nil {
			resp.CellsCached++ // counted sweep-wide, not per page
		}
		if i < offset || i >= end {
			continue
		}
		cs := sweepCellStatus{Key: c.cell.Key, Axes: c.cell.Axes}
		if c.cached != nil {
			mean := c.cached.Mean
			cs.Status = string(stateDone)
			cs.Cached = true
			cs.Frac = 1
			cs.Mean = &mean
		} else {
			snap := c.job.snapshot()
			cs.JobID = c.job.id
			cs.Status = string(snap.state)
			cs.Error = snap.errMsg
			if n := len(snap.events); n > 0 {
				cs.Frac = snap.events[n-1].Frac
			}
			if snap.result != nil {
				mean := snap.result.Mean
				cs.Mean = &mean
			}
		}
		resp.Cells = append(resp.Cells, cs)
	}
	return resp
}

// markTraceGroups enables the contact-trace fast path for a sweep's
// uncached cells: cells sharing a recorded world (protocol/routing-only
// axes — same experiment.TraceGroup) with at least two distinct content
// addresses are marked Trace="auto", so the first cell's live run
// doubles as the world recording and every later cell replays the
// script instead of re-simulating mobility (jobs run sequentially under
// the default one-permit semaphore). Trace never enters the cache key,
// so marking after expansion changes no cell's address. Cells whose
// spec sets trace explicitly keep the user's choice; with caching
// disabled there is nowhere to store a script and nothing is marked.
func (s *Server) markTraceGroups(refs []sweepCellRef) {
	if s.store == nil {
		return
	}
	groups := map[string][]int{}
	keys := map[string]map[string]bool{} // group -> distinct cell cache keys
	for i := range refs {
		if refs[i].cached != nil || refs[i].cell.Spec.Trace != nil {
			continue
		}
		g, ok := experiment.TraceGroup(refs[i].cell.Spec)
		if !ok {
			continue
		}
		groups[g] = append(groups[g], i)
		if keys[g] == nil {
			keys[g] = map[string]bool{}
		}
		keys[g][refs[i].cell.Key] = true
	}
	auto := "auto"
	for g, idxs := range groups {
		if len(keys[g]) < 2 {
			continue // a lone (or fully duplicate) cell gains nothing
		}
		for _, i := range idxs {
			refs[i].cell.Spec.Trace = &auto
		}
	}
}

func (s *Server) handleSubmitSweep(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 4<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return
	}
	spec, err := experiment.ParseSweepSpec(body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	cells, err := spec.Cells() // resolves, validates and addresses every cell
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}

	// Cache pass, before any lock: cells the store already holds never
	// touch the queue.
	refs := make([]sweepCellRef, len(cells))
	allCached := true
	for i, c := range cells {
		refs[i] = sweepCellRef{cell: c}
		if res, ok := s.store.Get(c.Key); ok && len(res.PerSeed) == len(c.Spec.SeedList()) {
			refs[i].cached = res
		} else {
			allCached = false
		}
	}
	s.markTraceGroups(refs)

	s.mu.Lock()
	// A fully-cached sweep needs no simulation and no queue slot, so —
	// like handleSubmit's cached fast path — it is served even while
	// draining.
	if s.draining && !allCached {
		s.mu.Unlock()
		s.m.sweepRejected.Add(1)
		writeErr(w, http.StatusServiceUnavailable, errors.New("server draining, not accepting jobs"))
		return
	}
	// Attach decision per key, memoized so the admission count below and
	// the fan-out loop after it cannot disagree (a job may reach a
	// terminal state between the two passes — its snapshot is taken
	// once). Mirrors handleSubmit: a live non-terminal in-flight job is
	// coalescible; a done one's result is taken from its snapshot as if
	// cached (the window between j.finish and runJob's delete from
	// s.active); a cancelled or failed one will never serve this cell,
	// so the cell queues fresh.
	type attachDecision struct {
		j   *job    // coalesce onto this live job
		res *Result // or serve this terminal snapshot result
	}
	decisions := map[string]attachDecision{}
	decide := func(key string) attachDecision {
		if d, ok := decisions[key]; ok {
			return d
		}
		var d attachDecision
		if j := s.active[key]; j != nil && j.ctx.Err() == nil {
			snap := j.snapshot()
			switch {
			case !terminalState(snap.state):
				d.j = j
			case snap.state == stateDone && snap.result != nil:
				d.res = snap.result
			}
		}
		decisions[key] = d
		return d
	}
	// Admission: count cells that would become new queue entries (not
	// cached, not attachable, not an earlier duplicate cell of this same
	// sweep) and refuse the sweep whole if they don't fit — a
	// half-admitted grid helps nobody.
	newNeeded := 0
	seenKeys := map[string]bool{}
	for i := range refs {
		key := refs[i].cell.Key
		d := decide(key)
		if refs[i].cached == nil && d.j == nil && d.res == nil && !seenKeys[key] {
			newNeeded++
			seenKeys[key] = true
		}
	}
	if s.queued+newNeeded > s.cfg.MaxQueuedJobs {
		s.mu.Unlock()
		s.m.sweepRejected.Add(1)
		writeErr(w, http.StatusTooManyRequests,
			fmt.Errorf("sweep needs %d queue slots, %d free", newNeeded, s.cfg.MaxQueuedJobs-s.queued))
		return
	}
	var started []*job
	owned := map[string]*job{}
	for i := range refs {
		if refs[i].cached != nil {
			continue
		}
		key := refs[i].cell.Key
		d := decide(key)
		if d.res != nil { // terminal done in-flight job: take its result
			refs[i].cached = d.res
			continue
		}
		j := owned[key]
		switch {
		case j != nil: // duplicate cell within this sweep
			j.holders++
		case d.j != nil: // coalesce with a live in-flight job
			j = d.j
			j.holders++
			owned[key] = j
		default:
			j = s.newJobLocked(key, refs[i].cell.Spec)
			started = append(started, j)
			owned[key] = j
		}
		refs[i].job = j
	}
	s.m.sweepSubmissions.Add(1)
	s.nextID++
	sw := newSweepJob(fmt.Sprintf("s%d", s.nextID), refs)
	s.sweeps[sw.id] = sw
	s.sweepRing = append(s.sweepRing, sw.id)
	s.pruneSweepsLocked()
	s.mu.Unlock()

	s.log.Info("sweep accepted", "sweep", sw.id, "cells", len(refs), "started", len(started))

	for _, j := range started {
		s.log.Info("job accepted", "job", j.id, "key", j.key, "sweep", sw.id)
	}
	// Launch: locally, or — on a coordinator — partitioned into dispatch
	// units that keep each trace group's record-then-replay chain on one
	// worker (see fabric.go).
	s.startJobs(started)
	// Subscribe to every cell job, folding its history and every later
	// event into the aggregate, then seal — which emits the terminal
	// event right away when every cell was already satisfied.
	for i := range sw.cells {
		j := sw.cells[i].job
		if j == nil {
			continue
		}
		i := i
		sw.initCell(i, j.subscribe(func(p metrics.Progress) { sw.observe(i, p) }))
	}
	sw.seal()

	resp := sweepStatus(sw, 0, -1)
	code := http.StatusAccepted
	if terminalState(jobState(resp.Status)) {
		code = http.StatusOK
	}
	writeJSON(w, code, resp)
}

// pruneSweepsLocked drops the oldest finished sweeps beyond the
// retention ring (s.mu must be held; live sweeps are never dropped, so
// the ring can transiently exceed the cap under a huge live backlog).
func (s *Server) pruneSweepsLocked() {
	for len(s.sweepRing) > maxRetainedSweeps {
		dropped := false
		for i, id := range s.sweepRing {
			if st, _, _ := s.sweeps[id].snapshot(); terminalState(st) {
				delete(s.sweeps, id)
				s.sweepRing = append(s.sweepRing[:i], s.sweepRing[i+1:]...)
				dropped = true
				break
			}
		}
		if !dropped {
			return
		}
	}
}

func (s *Server) lookupSweep(w http.ResponseWriter, r *http.Request) *sweepJob {
	s.mu.Lock()
	sw := s.sweeps[r.PathValue("id")]
	s.mu.Unlock()
	if sw == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", r.PathValue("id")))
	}
	return sw
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	sw := s.lookupSweep(w, r)
	if sw == nil {
		return
	}
	offset, limit, err := pageParams(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, sweepStatus(sw, offset, limit))
}

// pageParams parses ?offset=N&limit=M. Absent offset is 0; absent limit
// means the whole table.
func pageParams(r *http.Request) (offset, limit int, err error) {
	limit = -1
	q := r.URL.Query()
	if v := q.Get("offset"); v != "" {
		if offset, err = strconv.Atoi(v); err != nil || offset < 0 {
			return 0, 0, fmt.Errorf("bad offset %q", v)
		}
	}
	if v := q.Get("limit"); v != "" {
		if limit, err = strconv.Atoi(v); err != nil || limit < 0 {
			return 0, 0, fmt.Errorf("bad limit %q", v)
		}
	}
	return offset, limit, nil
}

// sweepListEntry is one row of GET /v1/sweeps: the aggregate view of a
// sweep, without its cell table.
type sweepListEntry struct {
	SweepID    string  `json:"sweep_id"`
	Status     string  `json:"status"`
	Frac       float64 `json:"frac"`
	CellsTotal int     `json:"cells_total"`
	CellsDone  int     `json:"cells_done"`
}

// handleSweepList serves GET /v1/sweeps: every retained sweep in
// creation order (the retention ring bounds the list; dropped sweeps'
// cell results remain addressable through the result store by key).
func (s *Server) handleSweepList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	sws := make([]*sweepJob, 0, len(s.sweeps))
	for _, id := range s.sweepRing {
		if sw := s.sweeps[id]; sw != nil {
			sws = append(sws, sw)
		}
	}
	s.mu.Unlock()
	list := make([]sweepListEntry, 0, len(sws)) // [] not null when empty
	for _, sw := range sws {
		sw.mu.Lock()
		total := 0.0
		for _, f := range sw.fracs {
			total += f
		}
		list = append(list, sweepListEntry{
			SweepID:    sw.id,
			Status:     string(sw.state),
			Frac:       total / float64(len(sw.cells)),
			CellsTotal: len(sw.cells),
			CellsDone:  sw.done,
		})
		sw.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, map[string][]sweepListEntry{"sweeps": list})
}

// handleSweepStream replays and follows the sweep's aggregate progress
// as NDJSON — one SweepProgress per line — until the sweep ends.
func (s *Server) handleSweepStream(w http.ResponseWriter, r *http.Request) {
	sw := s.lookupSweep(w, r)
	if sw == nil {
		return
	}
	s.m.streamSubs.Add(1)
	defer s.m.streamSubs.Add(-1)
	streamNDJSON(w, r, func() ([]SweepProgress, chan struct{}) {
		_, events, notify := sw.snapshot()
		return events, notify
	}, func(p SweepProgress) bool { return p.Done })
}

// handleCancelSweep cancels a sweep's remaining work: every cell hold the
// sweep took is released, and cells nobody else references (no direct
// submission, no overlapping sweep) are cancelled. Cells shared with
// other submissions keep running for their other holders.
func (s *Server) handleCancelSweep(w http.ResponseWriter, r *http.Request) {
	sw := s.lookupSweep(w, r)
	if sw == nil {
		return
	}
	sw.mu.Lock()
	st := sw.state
	already := sw.released
	sw.released = true
	sw.mu.Unlock()
	if terminalState(st) {
		writeErr(w, http.StatusConflict, fmt.Errorf("sweep %s already %s", sw.id, st))
		return
	}
	if !already {
		var cancels []*job
		s.mu.Lock()
		for i := range sw.cells {
			j := sw.cells[i].job
			if j == nil {
				continue
			}
			j.holders--
			if j.holders <= 0 {
				cancels = append(cancels, j)
			}
		}
		s.mu.Unlock()
		for _, j := range cancels {
			j.cancel()
		}
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"sweep_id": sw.id, "status": "cancelling"})
}
