// Package resultcache is the content-addressed result store shared by the
// dtnd daemon and the sweep/figures CLIs: simulation summaries keyed by
// the SHA-256 of their canonicalized scenario spec, persisted as JSON
// files with atomic writes, an optional total-size bound with
// oldest-mtime eviction, and read-side mtime touching so entries a
// repeated sweep keeps hitting stay resident. Because the key is derived
// from the resolved job (experiment.ScenarioSpec.CacheKey), any process
// pointing at the same directory — a daemon, a CLI sweep, a CI smoke run
// — reuses every cell any of the others already computed.
package resultcache

import (
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Result is the persisted outcome of one simulation job — the value a
// content address resolves to. CanonicalSpec echoes the exact resolved
// scenario the key was derived from, so a cached result is
// self-describing.
type Result struct {
	Key           string            `json:"key"`
	CanonicalSpec json.RawMessage   `json:"canonical_spec"`
	Seeds         []int64           `json:"seeds"`
	PerSeed       []metrics.Summary `json:"per_seed"`
	Mean          metrics.Summary   `json:"mean"`
}

// Remote is a secondary tier consulted on local misses: another daemon's
// store reachable over the wire (the dtnd fleet fetcher probes workers'
// /v1/results/{key} and /v1/traces/{key}). A fetched entry is persisted
// locally (pull-through), so each remote entry is paid for at most once
// per store. Implementations return the encoded entry bytes verbatim;
// the store validates results before trusting them.
type Remote interface {
	FetchResult(key string) ([]byte, bool)
	FetchTrace(key string) ([]byte, bool)
}

// Store is a bounded on-disk result cache rooted at one directory. A nil
// Store is valid and always misses — callers need no "is caching on"
// branches.
type Store struct {
	dir      string
	maxBytes int64
	// remote is the optional pull-through tier. Set once at startup
	// (SetRemote) before the store serves reads; never mutated after.
	remote Remote

	// mu serializes eviction sweeps (concurrent Puts would double-count
	// sizes and race removals); reads are lock-free.
	mu sync.Mutex
	// curBytes approximates the store's total size: exact after every
	// directory scan, incremented per write in between, so a Put under
	// the bound costs no I/O beyond its own file. External writers
	// sharing the directory are picked up at the next scan.
	curBytes int64
	scanned  bool

	// Observability counters, exported through Stats (and from there the
	// daemon's /metrics endpoint). Atomics: Get is lock-free and must
	// stay that way.
	hits         atomic.Int64
	misses       atomic.Int64
	puts         atomic.Int64
	scans        atomic.Int64
	evictions    atomic.Int64
	evictedBytes atomic.Int64

	// Trace-blob counters are kept apart from result counters: the
	// daemon's submissions == hits + misses invariant reconciles result
	// reads only, and a trace probe must not perturb it.
	traceHits   atomic.Int64
	traceMisses atomic.Int64
	tracePuts   atomic.Int64

	// Remote-tier attribution: hits/misses above classify the outcome,
	// these count how the hit was sourced — remoteHits is the subset of
	// hits served by pull-through rather than the local directory.
	remoteHits      atomic.Int64
	remoteMisses    atomic.Int64
	traceRemoteHits atomic.Int64
}

// Stats is a point-in-time snapshot of the store's counters. CurBytes is
// the size approximation eviction works from — maintained only for
// bounded stores (MaxBytes > 0), zero otherwise.
type Stats struct {
	Hits         int64 // Get served a cached result
	Misses       int64 // Get found nothing (or a corrupt entry)
	Puts         int64 // results persisted
	Scans        int64 // eviction directory walks
	Evictions    int64 // entries removed by eviction
	EvictedBytes int64 // bytes reclaimed by eviction
	CurBytes     int64 // approximate store size (bounded stores only)

	TraceHits   int64 // GetTrace served a recorded contact script
	TraceMisses int64 // GetTrace found nothing
	TracePuts   int64 // contact scripts persisted

	RemoteHits      int64 // result hits pulled through from the remote tier
	RemoteMisses    int64 // remote probes that found nothing either
	TraceRemoteHits int64 // trace hits pulled through from the remote tier
}

// Stats returns the store's counters. A nil store reports zeros.
func (st *Store) Stats() Stats {
	if st == nil {
		return Stats{}
	}
	st.mu.Lock()
	cur := st.curBytes
	st.mu.Unlock()
	return Stats{
		Hits:         st.hits.Load(),
		Misses:       st.misses.Load(),
		Puts:         st.puts.Load(),
		Scans:        st.scans.Load(),
		Evictions:    st.evictions.Load(),
		EvictedBytes: st.evictedBytes.Load(),
		CurBytes:     cur,
		TraceHits:    st.traceHits.Load(),
		TraceMisses:  st.traceMisses.Load(),
		TracePuts:    st.tracePuts.Load(),

		RemoteHits:      st.remoteHits.Load(),
		RemoteMisses:    st.remoteMisses.Load(),
		TraceRemoteHits: st.traceRemoteHits.Load(),
	}
}

// SetRemote attaches the pull-through tier. Call once at startup, before
// the store serves reads; a nil store ignores it.
func (st *Store) SetRemote(r Remote) {
	if st != nil {
		st.remote = r
	}
}

// Open returns a store rooted at dir, creating it if needed. maxBytes
// bounds the total size of cached entries (0 = unbounded): after every
// write, oldest-mtime entries are evicted until the total fits again.
func Open(dir string, maxBytes int64) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("resultcache: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultcache: %w", err)
	}
	return &Store{dir: dir, maxBytes: maxBytes}, nil
}

// path maps a content address to its file; the two-character fan out
// keeps directories small under big sweeps. Keys must be lowercase hex
// SHA-256 — anything else (e.g. a path-traversing "..xx" from a results
// endpoint) maps to nothing.
func (st *Store) path(key string) string {
	if st == nil || !ValidKey(key) {
		return ""
	}
	return filepath.Join(st.dir, key[:2], key+".json")
}

// ValidKey reports whether key is a lowercase hex SHA-256.
func ValidKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Get returns the cached result for key, if present and intact. On a
// bounded store a hit touches the entry's mtime, so results a repeated
// sweep keeps reusing stay at the young end of the eviction order; an
// unbounded store never evicts, so it skips the per-hit Chtimes syscall
// — LRU order is meaningless there and the touch was pure latency.
func (st *Store) Get(key string) (*Result, bool) {
	res, _, ok := st.GetRaw(key)
	return res, ok
}

// GetRaw is Get returning the encoded file bytes alongside the parsed
// result, so a serving path that only splices the JSON onward (the
// daemon's cache-hit fast path) never re-encodes it. On a local miss the
// remote tier (if attached) is probed and a validated fetch persisted
// locally, so the whole fleet's cache serves this store transparently.
func (st *Store) GetRaw(key string) (*Result, []byte, bool) {
	res, data, ok := st.readLocal(key)
	if ok {
		st.hits.Add(1)
		return res, data, true
	}
	if st == nil || st.remote == nil {
		if st != nil && ValidKey(key) {
			st.misses.Add(1)
		}
		return nil, nil, false
	}
	if raw, found := st.remote.FetchResult(key); found {
		if res, data, err := st.putEncoded(key, raw); err == nil {
			st.remoteHits.Add(1)
			st.hits.Add(1)
			return res, data, true
		}
	}
	st.remoteMisses.Add(1)
	st.misses.Add(1)
	return nil, nil, false
}

// GetRawLocal is GetRaw restricted to the local directory — the read the
// /v1/results endpoint serves peers from. Never consulting the remote
// tier there is what makes fleet pull-through loop-free: a probe can
// never recurse back into the prober.
func (st *Store) GetRawLocal(key string) (*Result, []byte, bool) {
	res, data, ok := st.readLocal(key)
	if ok {
		st.hits.Add(1)
		return res, data, true
	}
	if st != nil && ValidKey(key) {
		st.misses.Add(1)
	}
	return nil, nil, false
}

// readLocal reads and validates one entry from disk without counting — the
// shared head of the counted read paths.
func (st *Store) readLocal(key string) (*Result, []byte, bool) {
	path := st.path(key)
	if path == "" {
		return nil, nil, false
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, false
	}
	var res Result
	if json.Unmarshal(data, &res) != nil || res.Key != key {
		return nil, nil, false // corrupt entry: treat as a miss, recompute
	}
	st.touch(path)
	return &res, data, true
}

// touch refreshes an entry's mtime on bounded stores, keeping entries a
// repeated sweep reuses at the young end of the eviction order.
func (st *Store) touch(path string) {
	if st.maxBytes > 0 {
		now := time.Now()
		os.Chtimes(path, now, now) // best-effort LRU touch
	}
}

// Put persists a result atomically (temp file + rename, so a crashed
// write can never be read back as a corrupt hit), then enforces the size
// bound. A nil store discards silently.
func (st *Store) Put(res *Result) error {
	path := st.path(res.Key)
	if path == "" {
		return nil
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := st.writeEntry(path, append(data, '\n')); err != nil {
		return err
	}
	st.puts.Add(1)
	return nil
}

// PutEncoded persists already-encoded result bytes under key after
// validating they decode to a Result carrying that key — the write path
// for entries fetched from another daemon, where re-encoding would waste
// work and could perturb byte-identical splicing. A nil store discards
// silently.
func (st *Store) PutEncoded(key string, data []byte) error {
	if st == nil {
		return nil
	}
	if _, _, err := st.putEncoded(key, data); err != nil {
		return err
	}
	st.puts.Add(1)
	return nil
}

// putEncoded validates and persists encoded result bytes, returning the
// decoded result — shared by PutEncoded and the remote pull-through,
// which counts differently (a pull-through is a read, not a Put).
func (st *Store) putEncoded(key string, data []byte) (*Result, []byte, error) {
	path := st.path(key)
	if path == "" {
		return nil, nil, fmt.Errorf("resultcache: invalid key %q", key)
	}
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, nil, fmt.Errorf("resultcache: encoded result for %s: %w", key, err)
	}
	if res.Key != key {
		return nil, nil, fmt.Errorf("resultcache: encoded result claims key %s, want %s", res.Key, key)
	}
	if err := st.writeEntry(path, data); err != nil {
		return nil, nil, err
	}
	return &res, data, nil
}

// writeEntry persists one store file atomically (temp + rename) and
// enforces the size bound — the shared tail of Put and PutTrace.
func (st *Store) writeEntry(path string, data []byte) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	// An overwrite replaces the old file, so only the size delta joins the
	// approximation — adding the full new size on every Put of the same
	// key inflated curBytes without bound and triggered premature eviction
	// scans. The stat races a concurrent same-key rename, but curBytes is
	// an approximation by contract: the next scan restores exactness.
	var oldSize int64
	if st.maxBytes > 0 {
		if fi, err := os.Stat(path); err == nil {
			oldSize = fi.Size()
		}
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if st.maxBytes > 0 {
		st.mu.Lock()
		st.curBytes += int64(len(data)) - oldSize
		// Scan and evict only when the (approximate) total crosses the
		// bound — steady-state Puts under it never walk the directory.
		if !st.scanned || st.curBytes > st.maxBytes {
			st.evictLocked(path)
		}
		st.mu.Unlock()
	}
	return nil
}

// tracePath maps a trace content address to its blob file. Traces share
// the store's directory fan-out and size bound with results (eviction
// walks both), under a distinct extension.
func (st *Store) tracePath(key string) string {
	if st == nil || !ValidKey(key) {
		return ""
	}
	return filepath.Join(st.dir, key[:2], key+".trace")
}

// GetTrace returns the recorded contact-script blob for key, if present.
// The caller decodes it; a decode failure there is handled exactly like a
// miss here (re-record), so a torn blob can never poison a replay. On a
// local miss the remote tier is probed and a fetch persisted locally —
// trace blobs are opaque here, so validation is the caller's decode, same
// as for local blobs.
func (st *Store) GetTrace(key string) ([]byte, bool) {
	if data, ok := st.readTraceLocal(key); ok {
		st.traceHits.Add(1)
		return data, true
	}
	if st == nil || st.remote == nil {
		if st != nil && ValidKey(key) {
			st.traceMisses.Add(1)
		}
		return nil, false
	}
	if data, found := st.remote.FetchTrace(key); found {
		if path := st.tracePath(key); path != "" && st.writeEntry(path, data) == nil {
			st.traceRemoteHits.Add(1)
			st.traceHits.Add(1)
			return data, true
		}
	}
	st.traceMisses.Add(1)
	return nil, false
}

// GetTraceLocal is GetTrace restricted to the local directory — what the
// /v1/traces endpoint serves peers from, keeping pull-through loop-free.
func (st *Store) GetTraceLocal(key string) ([]byte, bool) {
	if data, ok := st.readTraceLocal(key); ok {
		st.traceHits.Add(1)
		return data, true
	}
	if st != nil && ValidKey(key) {
		st.traceMisses.Add(1)
	}
	return nil, false
}

// readTraceLocal reads one trace blob from disk without counting.
func (st *Store) readTraceLocal(key string) ([]byte, bool) {
	path := st.tracePath(key)
	if path == "" {
		return nil, false
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	st.touch(path)
	return data, true
}

// HasTrace reports whether a trace blob exists for key, without counting
// a hit or miss — a planning probe, not a read.
func (st *Store) HasTrace(key string) bool {
	path := st.tracePath(key)
	if path == "" {
		return false
	}
	_, err := os.Stat(path)
	return err == nil
}

// PutTrace persists a recorded contact-script blob atomically. A nil
// store discards silently.
func (st *Store) PutTrace(key string, data []byte) error {
	path := st.tracePath(key)
	if path == "" {
		return nil
	}
	if err := st.writeEntry(path, data); err != nil {
		return err
	}
	st.tracePuts.Add(1)
	return nil
}

// evictLocked rescans the store and removes oldest-mtime entries until
// the total fits the bound, with slack: eviction drives the total down
// to ~90% of maxBytes, so a burst of writes triggers one scan per ~10%
// of the budget instead of one per Put. The entry just written (keep)
// is exempt — a Put can never evict its own result, the caller was
// promised the cache holds it. In-flight temp files of concurrent Puts
// are never touched (removing one would fail that Put's rename); a
// crashed write's leftover temp file is reclaimed once it is a day old.
// st.mu must be held.
func (st *Store) evictLocked(keep string) {
	type entry struct {
		path  string
		size  int64
		mtime time.Time
	}
	var entries []entry
	var total int64
	filepath.WalkDir(st.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return nil
		}
		if strings.HasPrefix(d.Name(), "tmp-") {
			if time.Since(info.ModTime()) > 24*time.Hour {
				os.Remove(path) // orphan from a crashed write
			}
			return nil
		}
		entries = append(entries, entry{path: path, size: info.Size(), mtime: info.ModTime()})
		total += info.Size()
		return nil
	})
	st.scans.Add(1)
	st.scanned = true
	defer func() { st.curBytes = total }()
	if total <= st.maxBytes {
		return
	}
	lowWater := st.maxBytes - st.maxBytes/10
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].mtime.Equal(entries[j].mtime) {
			return entries[i].mtime.Before(entries[j].mtime)
		}
		return entries[i].path < entries[j].path // stable order at equal mtimes
	})
	for _, e := range entries {
		if total <= lowWater {
			return
		}
		if e.path == keep {
			continue
		}
		if os.Remove(e.path) == nil {
			total -= e.size
			st.evictions.Add(1)
			st.evictedBytes.Add(e.size)
		}
	}
}
