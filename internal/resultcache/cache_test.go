package resultcache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/metrics"
)

// keyOf derives a distinct valid content address per index.
func keyOf(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("cell-%d", i)))
	return hex.EncodeToString(sum[:])
}

func resultOf(i int) *Result {
	return &Result{
		Key:     keyOf(i),
		Seeds:   []int64{1},
		PerSeed: []metrics.Summary{{Generated: i}},
		Mean:    metrics.Summary{Generated: i},
	}
}

// entrySize measures one persisted entry, so eviction tests can pick
// byte bounds in units of entries instead of guessing JSON sizes.
func entrySize(t *testing.T) int64 {
	t.Helper()
	st, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(resultOf(0)); err != nil {
		t.Fatal(err)
	}
	var size int64
	filepath.WalkDir(st.dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() {
			if info, err := d.Info(); err == nil {
				size = info.Size()
			}
		}
		return nil
	})
	if size == 0 {
		t.Fatal("no entry written")
	}
	return size
}

func TestRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(keyOf(1)); ok {
		t.Fatal("hit on empty store")
	}
	if err := st.Put(resultOf(1)); err != nil {
		t.Fatal(err)
	}
	got, ok := st.Get(keyOf(1))
	if !ok {
		t.Fatal("miss after Put")
	}
	if got.Mean != resultOf(1).Mean || got.Key != keyOf(1) {
		t.Fatalf("round trip mangled: %+v", got)
	}
}

func TestNilStoreMisses(t *testing.T) {
	var st *Store
	if _, ok := st.Get(keyOf(1)); ok {
		t.Fatal("nil store hit")
	}
	if err := st.Put(resultOf(1)); err != nil {
		t.Fatalf("nil store Put: %v", err)
	}
}

func TestCorruptEntryIsMiss(t *testing.T) {
	st, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(resultOf(1)); err != nil {
		t.Fatal(err)
	}
	path := st.path(keyOf(1))
	if err := os.WriteFile(path, []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(keyOf(1)); ok {
		t.Fatal("corrupt entry served as hit")
	}
	// An entry whose body names a different key (tampered or misplaced)
	// is also a miss.
	wrong := resultOf(2)
	if err := st.Put(wrong); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(st.path(keyOf(2)))
	os.MkdirAll(filepath.Dir(st.path(keyOf(3))), 0o755)
	os.WriteFile(st.path(keyOf(3)), data, 0o644)
	if _, ok := st.Get(keyOf(3)); ok {
		t.Fatal("key-mismatched entry served as hit")
	}
}

func TestValidKey(t *testing.T) {
	if !ValidKey(keyOf(0)) {
		t.Fatal("real key rejected")
	}
	for _, bad := range []string{"", "abc", "../../../../etc/passwd", keyOf(0)[:63] + "Z", keyOf(0) + "a"} {
		if ValidKey(bad) {
			t.Errorf("key %q accepted", bad)
		}
	}
}

// TestEvictionBound: the store never exceeds its byte bound (beyond the
// just-written entry), and evicts oldest-mtime first.
func TestEvictionBound(t *testing.T) {
	size := entrySize(t)
	st, err := Open(t.TempDir(), 3*size+size/2) // room for 3 entries
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := st.Put(resultOf(i)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond) // distinct mtimes
	}
	var total int64
	count := 0
	filepath.WalkDir(st.dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() {
			info, _ := d.Info()
			total += info.Size()
			count++
		}
		return nil
	})
	if total > 3*size+size/2 {
		t.Errorf("cache holds %d bytes, bound %d", total, 3*size+size/2)
	}
	if count != 3 {
		t.Errorf("cache holds %d entries, want 3", count)
	}
	// Oldest were evicted, newest survive.
	for i := 0; i < 3; i++ {
		if _, ok := st.Get(keyOf(i)); ok {
			t.Errorf("entry %d should have been evicted", i)
		}
	}
	for i := 3; i < 6; i++ {
		if _, ok := st.Get(keyOf(i)); !ok {
			t.Errorf("entry %d evicted too early", i)
		}
	}
}

// TestEvictionSparesReadEntries: a cache hit touches the entry's mtime,
// so the cells a repeated sweep keeps reusing are evicted last.
func TestEvictionSparesReadEntries(t *testing.T) {
	size := entrySize(t)
	st, err := Open(t.TempDir(), 2*size+size/2) // room for 2 entries
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(resultOf(0)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	if err := st.Put(resultOf(1)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	if _, ok := st.Get(keyOf(0)); !ok { // touch 0: now younger than 1
		t.Fatal("miss on entry 0")
	}
	time.Sleep(5 * time.Millisecond)
	if err := st.Put(resultOf(2)); err != nil { // forces one eviction
		t.Fatal(err)
	}
	if _, ok := st.Get(keyOf(0)); !ok {
		t.Error("recently-read entry 0 was evicted")
	}
	if _, ok := st.Get(keyOf(1)); ok {
		t.Error("stale entry 1 survived over read entry 0")
	}
	if _, ok := st.Get(keyOf(2)); !ok {
		t.Error("just-written entry 2 missing")
	}
}

// TestOverwriteAccounting pins the curBytes fix: re-Putting an existing
// key replaces its file, so only the size delta may join the running
// approximation. Before the fix every overwrite added the full entry
// size, so repeated overwrites of one key inflated curBytes past the
// bound and triggered an eviction scan per Put.
func TestOverwriteAccounting(t *testing.T) {
	size := entrySize(t)
	st, err := Open(t.TempDir(), 100*size) // bound far above actual usage
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := st.Put(resultOf(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ { // 50 overwrites of one existing key
		if err := st.Put(resultOf(0)); err != nil {
			t.Fatal(err)
		}
	}
	stats := st.Stats()
	if stats.CurBytes > 5*size {
		t.Errorf("curBytes inflated to %d after overwrites (4 entries of ~%d bytes on disk)", stats.CurBytes, size)
	}
	// The store never crossed its bound, so no Put after the first scan
	// should have walked the directory again, let alone evicted.
	if stats.Scans > 1 {
		t.Errorf("%d eviction scans for a store that never crossed its bound", stats.Scans)
	}
	if stats.Evictions != 0 {
		t.Errorf("%d premature evictions", stats.Evictions)
	}
	for i := 0; i < 4; i++ {
		if _, ok := st.Get(keyOf(i)); !ok {
			t.Errorf("entry %d lost", i)
		}
	}
}

// TestStatsCounters: hits, misses and puts are counted where they
// happen; a nil store reports zeros without panicking.
func TestStatsCounters(t *testing.T) {
	st, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	st.Get(keyOf(0)) // miss
	st.Put(resultOf(0))
	st.Get(keyOf(0)) // hit
	st.Get(keyOf(0)) // hit
	st.Get(keyOf(1)) // miss
	got := st.Stats()
	if got.Hits != 2 || got.Misses != 2 || got.Puts != 1 {
		t.Errorf("stats = %+v, want 2 hits, 2 misses, 1 put", got)
	}
	var nilStore *Store
	if s := nilStore.Stats(); s != (Stats{}) {
		t.Errorf("nil store stats = %+v", s)
	}
}

// TestUnboundedGetSkipsTouch: with no byte bound there is no eviction
// order to maintain, so Get must not burn a Chtimes syscall per hit.
func TestUnboundedGetSkipsTouch(t *testing.T) {
	st, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(resultOf(0)); err != nil {
		t.Fatal(err)
	}
	path := st.path(keyOf(0))
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(keyOf(0)); !ok {
		t.Fatal("miss after Put")
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if !info.ModTime().Equal(old) {
		t.Errorf("unbounded Get touched mtime (%v -> %v)", old, info.ModTime())
	}

	// A bounded store still touches: the LRU contract of
	// TestEvictionSparesReadEntries depends on it.
	stb, err := Open(t.TempDir(), 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if err := stb.Put(resultOf(0)); err != nil {
		t.Fatal(err)
	}
	bpath := stb.path(keyOf(0))
	if err := os.Chtimes(bpath, old, old); err != nil {
		t.Fatal(err)
	}
	if _, ok := stb.Get(keyOf(0)); !ok {
		t.Fatal("miss after Put")
	}
	info, err = os.Stat(bpath)
	if err != nil {
		t.Fatal(err)
	}
	if info.ModTime().Equal(old) {
		t.Error("bounded Get did not touch mtime")
	}
}

// BenchmarkGet measures hit latency for bounded (read-touch Chtimes per
// hit) and unbounded (no touch) stores — the per-hit syscall the
// unbounded path sheds.
func BenchmarkGet(b *testing.B) {
	for _, bc := range []struct {
		name     string
		maxBytes int64
	}{{"unbounded", 0}, {"bounded", 1 << 30}} {
		b.Run(bc.name, func(b *testing.B) {
			st, err := Open(b.TempDir(), bc.maxBytes)
			if err != nil {
				b.Fatal(err)
			}
			if err := st.Put(resultOf(0)); err != nil {
				b.Fatal(err)
			}
			key := keyOf(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := st.Get(key); !ok {
					b.Fatal("miss")
				}
			}
		})
	}
}

// TestPutNeverEvictsItself: even when one entry exceeds the whole bound,
// the entry just written survives its own eviction pass.
func TestPutNeverEvictsItself(t *testing.T) {
	st, err := Open(t.TempDir(), 1) // absurd bound: smaller than any entry
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(resultOf(0)); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(keyOf(0)); !ok {
		t.Fatal("freshly-written entry evicted by its own Put")
	}
	// The next Put displaces it.
	time.Sleep(5 * time.Millisecond)
	if err := st.Put(resultOf(1)); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(keyOf(0)); ok {
		t.Error("old entry survived a bound of 1 byte")
	}
	if _, ok := st.Get(keyOf(1)); !ok {
		t.Error("new entry evicted by its own Put")
	}
}

// traceBlobOf derives a distinct blob per index (content is opaque to the
// store; decoding lives a layer up).
func traceBlobOf(i int) []byte {
	return []byte(fmt.Sprintf("DTNTRC-test-blob-%d", i))
}

// TestTraceRoundTrip pins the trace blob surface: Put → Has → Get returns
// the bytes verbatim, misses are misses, and nil stores stay inert.
func TestTraceRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	key := keyOf(1)
	if st.HasTrace(key) {
		t.Fatal("fresh store has a trace")
	}
	if _, ok := st.GetTrace(key); ok {
		t.Fatal("fresh store returned a trace")
	}
	if err := st.PutTrace(key, traceBlobOf(1)); err != nil {
		t.Fatal(err)
	}
	if !st.HasTrace(key) {
		t.Fatal("HasTrace false after Put")
	}
	got, ok := st.GetTrace(key)
	if !ok || string(got) != string(traceBlobOf(1)) {
		t.Fatalf("GetTrace = %q, %v", got, ok)
	}
	// Overwrite wins: auto-mode re-records over a corrupt blob.
	if err := st.PutTrace(key, traceBlobOf(2)); err != nil {
		t.Fatal(err)
	}
	if got, _ := st.GetTrace(key); string(got) != string(traceBlobOf(2)) {
		t.Fatalf("after overwrite GetTrace = %q", got)
	}

	if err := st.PutTrace("not a key", traceBlobOf(3)); err != nil {
		t.Error("invalid trace key errored instead of discarding")
	}
	if st.HasTrace("not a key") {
		t.Error("invalid key stored")
	}
	var nilStore *Store
	if err := nilStore.PutTrace(key, traceBlobOf(1)); err != nil {
		t.Error("nil store PutTrace errored")
	}
	if _, ok := nilStore.GetTrace(key); ok {
		t.Error("nil store GetTrace hit")
	}
	if nilStore.HasTrace(key) {
		t.Error("nil store HasTrace true")
	}
}

// TestTraceStatsCounters pins the separate trace counter family: trace
// reads never perturb the result hit/miss counters the daemon's
// submissions invariant is built on, and HasTrace counts nothing.
func TestTraceStatsCounters(t *testing.T) {
	st, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	key := keyOf(4)
	st.GetTrace(key)                 // miss
	st.PutTrace(key, traceBlobOf(4)) // put
	st.HasTrace(key)                 // neither
	st.GetTrace(key)                 // hit
	got := st.Stats()
	if got.TraceHits != 1 || got.TraceMisses != 1 || got.TracePuts != 1 {
		t.Errorf("trace counters = %d/%d/%d hits/misses/puts, want 1/1/1", got.TraceHits, got.TraceMisses, got.TracePuts)
	}
	if got.Hits != 0 || got.Misses != 0 || got.Puts != 0 {
		t.Errorf("trace traffic leaked into result counters: %+v", got)
	}
}

// TestTraceEvictionShared pins that trace blobs live under the store's
// byte bound with results: writing many traces into a small store evicts
// the oldest, and the bound holds over the union of both entry kinds.
func TestTraceEvictionShared(t *testing.T) {
	blob := make([]byte, 1024)
	st, err := Open(t.TempDir(), 4*1024)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if err := st.PutTrace(keyOf(i), blob); err != nil {
			t.Fatal(err)
		}
	}
	survivors := 0
	for i := 0; i < 12; i++ {
		if st.HasTrace(keyOf(i)) {
			survivors++
		}
	}
	if survivors == 12 {
		t.Fatal("no trace blob evicted from an over-full store")
	}
	if !st.HasTrace(keyOf(11)) {
		t.Error("most recent trace evicted")
	}
}
