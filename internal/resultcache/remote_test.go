package resultcache

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"testing"
)

// fakeRemote is an in-memory Remote with call counters — the unit-test
// stand-in for a peer daemon's /v1/results and /v1/traces endpoints.
type fakeRemote struct {
	mu      sync.Mutex
	results map[string][]byte
	traces  map[string][]byte

	resultCalls atomic.Int64
	traceCalls  atomic.Int64
}

func (fr *fakeRemote) FetchResult(key string) ([]byte, bool) {
	fr.resultCalls.Add(1)
	fr.mu.Lock()
	defer fr.mu.Unlock()
	data, ok := fr.results[key]
	return data, ok
}

func (fr *fakeRemote) FetchTrace(key string) ([]byte, bool) {
	fr.traceCalls.Add(1)
	fr.mu.Lock()
	defer fr.mu.Unlock()
	data, ok := fr.traces[key]
	return data, ok
}

func encodedResult(t *testing.T, i int) []byte {
	t.Helper()
	data, err := json.Marshal(resultOf(i))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestRemotePullThrough: a local miss with a remote hit serves the entry,
// persists it locally (the second read never probes the remote), and is
// attributed as a hit + remote hit — never as a miss or a put.
func TestRemotePullThrough(t *testing.T) {
	st, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	fr := &fakeRemote{results: map[string][]byte{keyOf(1): encodedResult(t, 1)}}
	st.SetRemote(fr)

	res, raw, ok := st.GetRaw(keyOf(1))
	if !ok || res.Key != keyOf(1) || len(raw) == 0 {
		t.Fatalf("pull-through read: ok=%v res=%+v", ok, res)
	}
	if res.Mean.Generated != 1 {
		t.Errorf("pulled result decoded wrong: %+v", res)
	}
	if got, ok := st.Get(keyOf(1)); !ok || got.Key != keyOf(1) {
		t.Fatal("entry not persisted locally after pull-through")
	}
	if n := fr.resultCalls.Load(); n != 1 {
		t.Errorf("remote probed %d times, want 1 (second read is local)", n)
	}
	s := st.Stats()
	if s.Hits != 2 || s.Misses != 0 || s.RemoteHits != 1 || s.RemoteMisses != 0 || s.Puts != 0 {
		t.Errorf("stats %+v: want hits=2 misses=0 remote_hits=1 remote_misses=0 puts=0", s)
	}
}

// TestRemoteMissCounts: a miss on both tiers counts one miss and one
// remote miss; GetRawLocal never consults the remote at all (that is
// what keeps fleet probes loop-free).
func TestRemoteMissCounts(t *testing.T) {
	st, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	fr := &fakeRemote{}
	st.SetRemote(fr)

	if _, _, ok := st.GetRaw(keyOf(2)); ok {
		t.Fatal("unexpected hit")
	}
	if _, _, ok := st.GetRawLocal(keyOf(3)); ok {
		t.Fatal("unexpected local hit")
	}
	if n := fr.resultCalls.Load(); n != 1 {
		t.Errorf("remote probed %d times, want 1 (GetRawLocal must not probe)", n)
	}
	s := st.Stats()
	if s.Hits != 0 || s.Misses != 2 || s.RemoteMisses != 1 {
		t.Errorf("stats %+v: want hits=0 misses=2 remote_misses=1", s)
	}
}

// TestRemoteCorruptFetchIsMiss: bytes from a peer are validated before
// being trusted — an entry claiming another key (or not decoding at all)
// is a miss, never persisted, never served.
func TestRemoteCorruptFetchIsMiss(t *testing.T) {
	st, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	st.SetRemote(&fakeRemote{results: map[string][]byte{
		keyOf(4): encodedResult(t, 5), // claims keyOf(5)
		keyOf(6): []byte("not json"),
	}})

	for _, key := range []string{keyOf(4), keyOf(6)} {
		if _, _, ok := st.GetRaw(key); ok {
			t.Errorf("corrupt remote entry for %s served as a hit", key)
		}
		if _, _, ok := st.GetRawLocal(key); ok {
			t.Errorf("corrupt remote entry for %s was persisted", key)
		}
	}
	if s := st.Stats(); s.Hits != 0 || s.RemoteHits != 0 || s.Misses != 4 {
		t.Errorf("stats %+v: want 0 hits, 4 misses", s)
	}
}

// TestRemoteTracePullThrough: trace blobs pull through like results
// (opaque — validation is the caller's decode), with their own counters.
func TestRemoteTracePullThrough(t *testing.T) {
	st, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	blob := []byte("recorded-contact-script")
	fr := &fakeRemote{traces: map[string][]byte{keyOf(7): blob}}
	st.SetRemote(fr)

	data, ok := st.GetTrace(keyOf(7))
	if !ok || string(data) != string(blob) {
		t.Fatalf("trace pull-through: ok=%v data=%q", ok, data)
	}
	if data, ok := st.GetTrace(keyOf(7)); !ok || string(data) != string(blob) {
		t.Fatal("trace not persisted locally after pull-through")
	}
	if n := fr.traceCalls.Load(); n != 1 {
		t.Errorf("remote probed %d times, want 1", n)
	}
	if _, ok := st.GetTrace(keyOf(8)); ok {
		t.Fatal("unexpected trace hit")
	}
	s := st.Stats()
	if s.TraceHits != 2 || s.TraceRemoteHits != 1 || s.TraceMisses != 1 || s.TracePuts != 0 {
		t.Errorf("trace stats %+v: want hits=2 remote_hits=1 misses=1 puts=0", s)
	}
	// GetTraceLocal never probes the remote.
	before := fr.traceCalls.Load()
	if _, ok := st.GetTraceLocal(keyOf(9)); ok {
		t.Fatal("unexpected local trace hit")
	}
	if fr.traceCalls.Load() != before {
		t.Error("GetTraceLocal probed the remote")
	}
}

// TestNilStoreRemoteSafe: SetRemote and the read paths stay nil-safe.
func TestNilStoreRemoteSafe(t *testing.T) {
	var st *Store
	st.SetRemote(&fakeRemote{results: map[string][]byte{keyOf(1): encodedResult(t, 1)}})
	if _, _, ok := st.GetRaw(keyOf(1)); ok {
		t.Fatal("nil store served a hit")
	}
}

// TestConcurrentPutSameKeyMidEviction hammers one key with concurrent
// Puts while other writers overflow a tightly bounded store (forcing
// eviction scans mid-overwrite) and readers keep re-reading the hot key.
// The invariant: every read that succeeds decodes to an intact result
// for that key — the atomic temp+rename write means a reader can never
// observe a torn entry, and a Put can never evict its own result.
func TestConcurrentPutSameKeyMidEviction(t *testing.T) {
	size := entrySize(t)
	st, err := Open(t.TempDir(), 4*size)
	if err != nil {
		t.Fatal(err)
	}

	const writers = 4
	const rounds = 25
	hot := resultOf(0)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() { // same-key writers
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if err := st.Put(hot); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}()
		wg.Add(1)
		go func() { // churn writers: distinct keys overflowing the bound
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if err := st.Put(resultOf(1 + w*rounds + r)); err != nil {
					t.Errorf("churn writer %d: %v", w, err)
					return
				}
			}
		}()
		wg.Add(1)
		go func() { // readers of the hot key
			defer wg.Done()
			for r := 0; r < rounds*2; r++ {
				if res, ok := st.Get(hot.Key); ok && res.Key != hot.Key {
					t.Errorf("reader %d: torn read %+v", w, res)
					return
				}
			}
		}()
	}
	wg.Wait()

	// Re-putting the hot key after the dust settles must leave it
	// readable and intact (Put never evicts its own entry).
	if err := st.Put(hot); err != nil {
		t.Fatal(err)
	}
	res, ok := st.Get(hot.Key)
	if !ok || res.Key != hot.Key || res.Mean.Generated != 0 {
		t.Fatalf("hot entry corrupt after concurrent churn: ok=%v res=%+v", ok, res)
	}
	if s := st.Stats(); s.Scans == 0 || s.Evictions == 0 {
		t.Errorf("bound never enforced during churn: %+v", s)
	}
}
