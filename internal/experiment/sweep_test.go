package experiment

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/resultcache"
)

// sweepTestBase is a small, fast cell base shared by the sweep tests:
// resolved through the same spec path dtnd submissions use.
func sweepTestBase(seeds []int64) ScenarioSpec {
	return ScenarioSpec{
		Preset:   "quick",
		Protocol: ptr(string(EER)),
		Nodes:    ptr(16),
		Duration: ptr(400.0),
		Seeds:    seeds,
	}
}

func TestSweepExpansionOrderAndAxes(t *testing.T) {
	sw := SweepSpec{
		Base:      sweepTestBase(nil),
		Protocols: []string{"EER", "CR"},
		Nodes:     []int{20, 40, 60},
		Alpha:     []float64{0.2, 0.8},
	}
	cells, err := sw.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2*3*2 {
		t.Fatalf("expanded to %d cells, want 12", len(cells))
	}
	// Canonical order: protocol outermost, then nodes, then alpha.
	want := [][3]string{
		{"EER", "20", "0.2"}, {"EER", "20", "0.8"},
		{"EER", "40", "0.2"}, {"EER", "40", "0.8"},
		{"EER", "60", "0.2"}, {"EER", "60", "0.8"},
		{"CR", "20", "0.2"}, {"CR", "20", "0.8"},
		{"CR", "40", "0.2"}, {"CR", "40", "0.8"},
		{"CR", "60", "0.2"}, {"CR", "60", "0.8"},
	}
	keys := map[string]bool{}
	for i, c := range cells {
		if len(c.Axes) != 3 {
			t.Fatalf("cell %d has %d axes", i, len(c.Axes))
		}
		got := [3]string{c.Axes[0].Value, c.Axes[1].Value, c.Axes[2].Value}
		if got != want[i] {
			t.Errorf("cell %d axes = %v, want %v", i, got, want[i])
		}
		if c.Axes[0].Axis != "protocol" || c.Axes[1].Axis != "nodes" || c.Axes[2].Axis != "alpha" {
			t.Errorf("cell %d axis names %v", i, c.Axes)
		}
		if keys[c.Key] {
			t.Errorf("cell %d repeats key %s", i, c.Key)
		}
		keys[c.Key] = true
		// The cell's key is the same content address a direct job
		// submission of the cell spec would compute — what makes CLI
		// sweeps, daemon sweeps and single jobs share cache entries.
		if k, err := c.Spec.CacheKey(); err != nil || k != c.Key {
			t.Errorf("cell %d key %s != spec key %s (%v)", i, c.Key, k, err)
		}
		// Axis overrides landed on the spec.
		if *c.Spec.Protocol != want[i][0] {
			t.Errorf("cell %d protocol %s", i, *c.Spec.Protocol)
		}
	}
	// Expansion is deterministic: a second expansion is identical.
	again, err := sw.Cells()
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		if cells[i].Key != again[i].Key {
			t.Fatalf("expansion not deterministic at cell %d", i)
		}
	}
}

func TestSweepExpansionEmptyAxesIsBase(t *testing.T) {
	sw := SweepSpec{Base: sweepTestBase(nil)}
	cells, err := sw.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || len(cells[0].Axes) != 0 {
		t.Fatalf("axis-free sweep expanded to %+v", cells)
	}
	baseKey, err := sw.Base.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	if cells[0].Key != baseKey {
		t.Error("axis-free cell key differs from base key")
	}
}

func TestSweepExpansionRejectsBadCellsAndBlowups(t *testing.T) {
	sw := SweepSpec{Base: sweepTestBase(nil), Protocols: []string{"EER", "NoSuchProtocol"}}
	if _, err := sw.Cells(); err == nil {
		t.Error("unknown protocol cell accepted")
	}
	big := SweepSpec{Base: sweepTestBase(nil)}
	for i := 0; i < 100; i++ {
		big.Nodes = append(big.Nodes, 10+i)
		big.Lambda = append(big.Lambda, 1+i)
	}
	if _, err := big.Cells(); err == nil {
		t.Error("10000-cell sweep accepted over the cell limit")
	}
}

func TestParseSweepSpecStrict(t *testing.T) {
	if _, err := ParseSweepSpec([]byte(`{"base": {"preset": "quick"}, "protocls": ["EER"]}`)); err == nil {
		t.Error("unknown field accepted")
	}
	sw, err := ParseSweepSpec([]byte(`{"base": {"preset": "quick"}, "alpha": [0.2, 0.4]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Alpha) != 2 || sw.Base.Preset != "quick" {
		t.Fatalf("parsed %+v", sw)
	}
}

// TestRunSweepMatchesSweep1D pins the acceptance criterion: the sweep
// path produces bit-identical summaries to the pre-refactor per-cell
// path (Sweep1D over expand/RunBatch/meanGroups).
func TestRunSweepMatchesSweep1D(t *testing.T) {
	values := []float64{0.2, 0.6}
	const nSeeds = 2

	base := sweepTestBase(Seeds(nSeeds))
	sw := SweepSpec{Base: base, Alpha: values}
	results, err := RunSweep(nil, sw, nil)
	if err != nil {
		t.Fatal(err)
	}

	scenario, err := sweepTestBase(nil).Scenario()
	if err != nil {
		t.Fatal(err)
	}
	series := Sweep1D("EER", scenario, values, func(s *Scenario, v float64) { s.Alpha = v }, nSeeds)

	if len(results) != len(series.Points) {
		t.Fatalf("%d cells vs %d points", len(results), len(series.Points))
	}
	for i := range results {
		if results[i].Mean != series.Points[i].Summary {
			t.Errorf("alpha=%g diverged:\n  sweep   %+v\n  legacy  %+v",
				values[i], results[i].Mean, series.Points[i].Summary)
		}
		if results[i].Cached {
			t.Errorf("alpha=%g claims cached without a store", values[i])
		}
	}
}

// TestRunSweepCacheReuse: a repeated sweep over the same store simulates
// nothing and returns identical summaries; an overlapping sweep only
// simulates its new cells.
func TestRunSweepCacheReuse(t *testing.T) {
	store, err := resultcache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	base := sweepTestBase(Seeds(2))
	first, err := RunSweep(nil, SweepSpec{Base: base, Alpha: []float64{0.2, 0.6}}, store)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunSweep(nil, SweepSpec{Base: base, Alpha: []float64{0.2, 0.6}}, store)
	if err != nil {
		t.Fatal(err)
	}
	for i := range second {
		if !second[i].Cached {
			t.Errorf("cell %d not served from cache on resubmission", i)
		}
		if second[i].Mean != first[i].Mean {
			t.Errorf("cell %d cached mean diverged", i)
		}
		if len(second[i].PerSeed) != len(first[i].PerSeed) {
			t.Errorf("cell %d per-seed shape changed", i)
		}
	}
	// Overlap: one old alpha, one new — only the new cell simulates.
	third, err := RunSweep(nil, SweepSpec{Base: base, Alpha: []float64{0.6, 0.9}}, store)
	if err != nil {
		t.Fatal(err)
	}
	if !third[0].Cached {
		t.Error("overlapping cell re-simulated")
	}
	if third[1].Cached {
		t.Error("new cell claims cached")
	}
	if third[0].Mean != first[1].Mean {
		t.Error("overlapping cell mean diverged")
	}
}

func TestRunSpecsContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := RunSpecsContext(ctx, []ScenarioSpec{sweepTestBase(Seeds(2))})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancelled run still took %v", elapsed)
	}
}

// TestRunSpecContextCancelMidRun: cancelling during a run stops the
// remaining simulation work and reports context.Canceled.
func TestRunSpecContextCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	_, err := RunSpecContext(ctx, sweepTestBase(Seeds(2)), func(metrics.Progress) {
		once.Do(cancel) // cancel on the first progress event
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
