package experiment

import (
	"math"
	"testing"

	"repro/internal/metrics"
)

func TestSpreadOf(t *testing.T) {
	sums := []metrics.Summary{
		{DeliveryRatio: 0.4},
		{DeliveryRatio: 0.6},
		{DeliveryRatio: 0.5},
	}
	sp := SpreadOf(sums, MetricDeliveryRatio)
	if math.Abs(sp.Mean-0.5) > 1e-12 {
		t.Errorf("mean = %g", sp.Mean)
	}
	if math.Abs(sp.StdDev-0.1) > 1e-12 {
		t.Errorf("stddev = %g", sp.StdDev)
	}
	wantCI := 1.96 * 0.1 / math.Sqrt(3)
	if math.Abs(sp.CI95-wantCI) > 1e-12 {
		t.Errorf("ci = %g, want %g", sp.CI95, wantCI)
	}
	if sp.N != 3 {
		t.Errorf("n = %d", sp.N)
	}
}

func TestSpreadDegenerate(t *testing.T) {
	if sp := SpreadOf(nil, MetricLatency); sp != (Spread{}) {
		t.Errorf("empty spread = %+v", sp)
	}
	sp := SpreadOf([]metrics.Summary{{AvgLatency: 42}}, MetricLatency)
	if sp.Mean != 42 || sp.StdDev != 0 || sp.CI95 != 0 || sp.N != 1 {
		t.Errorf("single spread = %+v", sp)
	}
}

func TestOverlaps(t *testing.T) {
	a := Spread{Mean: 0.5, CI95: 0.05}
	b := Spread{Mean: 0.58, CI95: 0.05}
	c := Spread{Mean: 0.7, CI95: 0.05}
	if !Overlaps(a, b) {
		t.Error("a and b should overlap")
	}
	if Overlaps(a, c) {
		t.Error("a and c should not overlap")
	}
}

func TestNodeSweepWithSpread(t *testing.T) {
	pts := NodeSweepWithSpread(tiny(Direct), []int{12, 24}, 2)
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		sp, ok := p.Spreads[MetricDeliveryRatio.Name]
		if !ok || sp.N != 2 {
			t.Fatalf("spread missing: %+v", p)
		}
		if sp.Mean < 0 || sp.Mean > 1 {
			t.Errorf("delivery spread mean out of range: %g", sp.Mean)
		}
	}
}
