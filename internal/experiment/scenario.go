// Package experiment assembles and runs complete scenarios: the map, the
// bus fleet, the traffic load and a protocol under test — the paper's
// Section V configuration — with multi-seed averaging, node-count sweeps
// and table/CSV rendering for every figure.
package experiment

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/community"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/mapgen"
	"repro/internal/metrics"
	"repro/internal/mobility"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/traffic"
	"repro/internal/xrand"
)

// Protocol names a router implementation.
type Protocol string

// The protocols of the paper's evaluation plus the extra references and
// ablations.
const (
	EER           Protocol = "EER"
	CR            Protocol = "CR"
	EBR           Protocol = "EBR"
	MaxProp       Protocol = "MaxProp"
	SprayAndWait  Protocol = "SprayAndWait"
	SprayAndFocus Protocol = "SprayAndFocus"
	Epidemic      Protocol = "Epidemic"
	Prophet       Protocol = "Prophet"
	Direct        Protocol = "Direct"
	FirstContact  Protocol = "FirstContact"
	// EERFixedEV is ablation A1: EER with a TTL-independent EEV horizon.
	EERFixedEV Protocol = "EER-fixedEV"
	// EERMeanMD is ablation A2: EER whose MD row uses plain mean intervals.
	EERMeanMD Protocol = "EER-meanMD"
)

// AllPaperProtocols lists the six protocols of Figure 2 in plot order.
var AllPaperProtocols = []Protocol{EER, CR, EBR, MaxProp, SprayAndWait, SprayAndFocus}

// Scenario is a complete run configuration. The zero value is unusable;
// start from Default.
type Scenario struct {
	Protocol Protocol
	Nodes    int
	Seed     int64

	// Protocol parameters.
	Lambda int     // replica quota λ
	Alpha  float64 // horizon scale α
	Window int     // history sliding-window size
	// ForwardHysteresis is EER's single-copy forwarding hysteresis in
	// seconds (0 = the paper's strict comparison; ablation A3).
	ForwardHysteresis float64

	// SparseEstimators forces the sparse estimator core for EER, CR and
	// MaxProp: per-observed-peer history, MI and probability rows plus
	// heap-based MEMD/cost Dijkstras over recorded edges, instead of the
	// dense O(n)–O(n²) per-node arrays. Summaries are bit-identical to the
	// dense core (pinned by TestSparseEstimatorParity); only memory and
	// per-contact complexity change. Regardless of this flag, scenarios
	// with Nodes >= SparseNodeThreshold select the sparse core
	// automatically — at city scale the dense state cannot be allocated.
	SparseEstimators bool
	// MaxSparseRows caps every sparse estimator store (EER/CR MI, MaxProp
	// probability rows) at that many rows per node, evicting the stalest
	// row first (own row pinned). 0 = unbounded. A memory bound for
	// long-horizon city runs; capping discards link state, so summaries
	// may differ from uncapped runs (deterministically, per cap value).
	MaxSparseRows int
	// Gossip selects the estimator exchange metering for EER, CR and
	// MaxProp: "" or "fresher" (the historical replaced-rows accounting),
	// "flood" (full vector transmission — the naive baseline), or "delta"
	// (digest + changed rows only). Routing state and all non-gossip
	// summary fields are identical across modes; only the gossip byte
	// counters move (pinned by TestGossipModeParity).
	Gossip string

	// Simulation parameters.
	Duration float64
	Tick     float64
	// Shards runs each world's per-tick work on that many goroutines with
	// a deterministic merge (network.Config.Shards). 0 = single-threaded
	// tick path; results are bit-identical for every value. Useful for
	// single huge worlds (CityScale); multi-run sweeps already saturate
	// cores through the worker pool, so leave it 0 there.
	Shards int

	// Physical layer.
	Range     float64
	Bandwidth float64 // bytes per second
	BufBytes  int

	// Traffic.
	MsgSize                        int
	TTL                            float64
	MsgIntervalMin, MsgIntervalMax float64
	TrafficStop                    float64 // 0 = Duration

	// Mobility.
	Mobility           string // "bus" (default), "rwp" or "city"
	MinSpeed, MaxSpeed float64
	MinDwell, MaxDwell float64
	Map                mapgen.Config
	MapSeed            int64 // the map is shared across seeds and protocols

	// Trace selects the contact-trace fast path for spec-driven runs
	// ("" = live simulation): "record" runs live and persists the contact
	// script, "replay" requires a recorded script and drives the world
	// from it (skipping mobility and contact detection entirely), "auto"
	// replays when a script exists and records otherwise. Replayed runs
	// are bit-identical to live ones, so the mode is excluded from the
	// result-cache canonical form (json:"-") — live and replayed results
	// share one content address. Only the store-threaded spec path
	// (RunSpecStore and the sweep/daemon layers above it) acts on it;
	// Scenario.Run and Build always run live.
	Trace string `json:"-"`

	// Profile attaches an engine phase profiler to the run: the returned
	// Summary carries a Timing block (see internal/obs). Profiling
	// observes wall time only — summaries are bit-identical with it on
	// or off, minus the timing block itself — and wall time is not
	// deterministic, so like Trace it is excluded from the result-cache
	// canonical form (json:"-"): profiled and unprofiled runs share one
	// content address, and the cache strips Timing before persisting.
	Profile bool `json:"-"`
}

// Default returns the paper's Section V-A settings: 10 m range, 2 Mb/s,
// 1 MB buffers, 25 KB messages, 20-minute TTL, speeds 2.7–13.9 m/s,
// 10 000 s runs, α = 0.28, λ = 10, a message per 25–35 s.
func Default() Scenario {
	return Scenario{
		Protocol:       EER,
		Nodes:          120,
		Seed:           1,
		Lambda:         10,
		Alpha:          0.28,
		Window:         0, // core.DefaultWindow
		Duration:       10000,
		Tick:           0.25,
		Range:          10,
		Bandwidth:      250000,
		BufBytes:       1 << 20,
		MsgSize:        25 * 1024,
		TTL:            20 * 60,
		MsgIntervalMin: 25,
		MsgIntervalMax: 35,
		Mobility:       "bus",
		MinSpeed:       2.7,
		MaxSpeed:       13.9,
		MinDwell:       10,
		MaxDwell:       30,
		Map:            mapgen.DefaultConfig(),
		MapSeed:        42,
	}
}

// Quick returns a scaled-down scenario for tests and testing.B benches:
// same physics, smaller fleet and shorter run. It is QuickSpec resolved —
// the constructors and user-submitted dtnd specs share one code path.
func Quick() Scenario {
	return mustResolve(QuickSpec())
}

// CityScale returns the >=10k-node city scenario the sharded tick path
// targets: a metropolitan-sized map with a large bus fleet threading
// districts full of community walkers ("city" mobility). One world at this
// scale is where Config.Shards pays off — BenchmarkCityScale measures it.
//
// The default protocol stays SprayAndWait — O(1) per-contact router work
// keeps this preset an engine benchmark — but the fleet size is over
// SparseNodeThreshold, so setting Protocol to EER, CR or MaxProp runs the
// sparse estimator core (BenchmarkCityScaleSparse measures those
// variants). It is CityScaleSpec resolved — one code path with dtnd specs.
func CityScale() Scenario {
	return mustResolve(CityScaleSpec())
}

// MetroScale returns the 100k-node metropolitan scenario — CityScale
// grown 10×: double the map extent, triple the transit lines and
// districts, auto-sized tick sharding and delta estimator gossip. EER over
// the sparse core by default; BenchmarkMetroScale measures it. It is
// MetroScaleSpec resolved — one code path with dtnd specs.
func MetroScale() Scenario {
	return mustResolve(MetroScaleSpec())
}

// mustResolve resolves a known-good built-in spec.
func mustResolve(sp ScenarioSpec) Scenario {
	s, err := sp.Scenario()
	if err != nil {
		panic("experiment: built-in spec invalid: " + err.Error())
	}
	return s
}

// Build constructs the world, movers, routers and traffic for the
// scenario, returning the ready-to-run world and its runner. Most callers
// want Run; Build is exposed for tests and tools that need to inspect the
// world mid-flight.
func (s Scenario) Build() (*network.World, *sim.Runner) {
	return s.build(nil)
}

// BuildReplay constructs the scenario's world driven by a recorded
// contact script instead of live mobility: routers, buffers, traffic and
// metrics are identical to Build, but nodes are stationary and the
// engine fires the scripted contact events — mobility advance, grid
// maintenance and pair sweeps are skipped entirely. The script must come
// from a recording of this exact world (the trace content address
// guarantees it), in which case every summary field is bit-identical to
// the live run.
func (s Scenario) BuildReplay(script []network.ScriptEvent) (*network.World, *sim.Runner) {
	return s.build(script)
}

// build is the shared world constructor; script != nil selects replay.
func (s Scenario) build(script []network.ScriptEvent) (*network.World, *sim.Runner) {
	if s.Nodes < 2 {
		panic("experiment: need at least two nodes")
	}
	runner := sim.NewRunner(s.Tick)
	cfg := s.networkConfig()
	if script != nil {
		cfg.Shards = 0 // scripted ticks are too cheap to split
	}
	w := network.New(cfg, runner)
	if script != nil {
		w.SetContactScript(script)
	}

	// The road map is still loaded for replay builds: community
	// registries (CR's districts) derive from it. mapgen.Load memoizes,
	// so repeated replays of one map pay for it once per process.
	rm := mapgen.Load(s.Map, s.MapSeed)
	reg := community.FromAssigner(s.Nodes, rm.DistrictOfNode)
	factory := s.routerFactory(reg)

	root := xrand.New(s.Seed)
	parked := &mobility.Stationary{}
	for i := 0; i < s.Nodes; i++ {
		// Derive the node stream even when the mover is never built:
		// Derive consumes parent-stream state, and the traffic stream
		// derived below must match the live run bit-for-bit.
		rng := root.Derive(fmt.Sprintf("node-%d", i))
		var mv mobility.Mover = parked
		if script == nil {
			mv = buildMover(s, rm, i, rng)
		}
		w.AddNode(mv, buffer.New(s.BufBytes, nil), factory())
	}
	w.Start()

	stop := s.TrafficStop
	if stop <= 0 {
		stop = s.Duration
	}
	gen := &traffic.Uniform{
		MinInterval: s.MsgIntervalMin,
		MaxInterval: s.MsgIntervalMax,
		Size:        s.MsgSize,
		TTL:         s.TTL,
		Start:       0,
		Stop:        stop,
		Rng:         root.Derive("traffic"),
	}
	gen.Install(w)
	return w, runner
}

// SparseNodeThreshold is the fleet size at and above which scenarios
// select the sparse estimator core regardless of SparseEstimators: the
// paper's figure-scale runs (≤ a few hundred nodes) keep the dense
// matrices, anything city-sized cannot afford them. Summaries do not
// depend on the storage mode, so the cutover is a pure resource choice.
const SparseNodeThreshold = 1000

// sparseEstimators reports the effective storage-mode selection.
func (s Scenario) sparseEstimators() bool {
	return s.SparseEstimators || s.Nodes >= SparseNodeThreshold
}

// routerFactories is the protocol registry: each entry builds the shared
// per-world router factory for one protocol. Registered constructors
// return the world-level factory directly — routing factories already
// produce network.Router, so no adapter closures are needed.
var routerFactories = map[Protocol]func(s Scenario, reg *community.Registry) func() network.Router{
	EER: func(s Scenario, _ *community.Registry) func() network.Router {
		return routing.EERFactory(s.eerConfig(), s.Nodes)
	},
	EERFixedEV: func(s Scenario, _ *community.Registry) func() network.Router {
		cfg := s.eerConfig()
		cfg.FixedHorizon = s.TTL
		return routing.EERFactory(cfg, s.Nodes)
	},
	EERMeanMD: func(s Scenario, _ *community.Registry) func() network.Router {
		cfg := s.eerConfig()
		cfg.MeanIntervalMD = true
		return routing.EERFactory(cfg, s.Nodes)
	},
	CR: func(s Scenario, reg *community.Registry) func() network.Router {
		cfg := routing.CRConfig{Lambda: s.Lambda, Alpha: s.Alpha, Window: s.Window,
			SparseEstimators: s.sparseEstimators(), MaxSparseRows: s.MaxSparseRows,
			Gossip: s.gossipMode()}
		return routing.CRFactory(cfg, reg)
	},
	MaxProp: func(s Scenario, _ *community.Registry) func() network.Router {
		return routing.MaxPropFactory(s.Nodes, s.sparseEstimators(), s.MaxSparseRows, s.gossipMode())
	},
	EBR: func(s Scenario, _ *community.Registry) func() network.Router {
		return func() network.Router { return routing.NewEBR(s.Lambda) }
	},
	SprayAndWait: func(s Scenario, _ *community.Registry) func() network.Router {
		return func() network.Router { return routing.NewSprayAndWait(s.Lambda) }
	},
	SprayAndFocus: func(s Scenario, _ *community.Registry) func() network.Router {
		return func() network.Router { return routing.NewSprayAndFocus(s.Lambda) }
	},
	Epidemic: func(Scenario, *community.Registry) func() network.Router {
		return func() network.Router { return routing.NewEpidemic() }
	},
	Prophet: func(Scenario, *community.Registry) func() network.Router {
		return func() network.Router { return routing.NewProphet() }
	},
	Direct: func(Scenario, *community.Registry) func() network.Router {
		return func() network.Router { return routing.NewDirect() }
	},
	FirstContact: func(Scenario, *community.Registry) func() network.Router {
		return func() network.Router { return routing.NewFirstContact() }
	},
}

// routerFactory returns a fresh-router constructor for the scenario's
// protocol.
func (s Scenario) routerFactory(reg *community.Registry) func() network.Router {
	mk, ok := routerFactories[s.Protocol]
	if !ok {
		panic("experiment: unknown protocol " + string(s.Protocol))
	}
	return mk(s, reg)
}

// BuildBare constructs the scenario's world and mobility with
// caller-supplied routers and no traffic generator — the hook tools like
// tracegen use to observe contacts without protocol machinery.
func BuildBare(s Scenario, router func(i int) network.Router) (*network.World, *sim.Runner) {
	runner := sim.NewRunner(s.Tick)
	w := network.New(s.networkConfig(), runner)
	rm := mapgen.Load(s.Map, s.MapSeed)
	root := xrand.New(s.Seed)
	for i := 0; i < s.Nodes; i++ {
		rng := root.Derive(fmt.Sprintf("node-%d", i))
		mv := buildMover(s, rm, i, rng)
		w.AddNode(mv, buffer.New(s.BufBytes, nil), router(i))
	}
	w.Start()
	return w, runner
}

// networkConfig assembles the physical-layer configuration. The mobility
// speed cap doubles as the contact detector's conservative re-check bound:
// both bus and random-waypoint movers draw per-leg speeds from
// [MinSpeed, MaxSpeed], so no node ever outruns it.
func (s Scenario) networkConfig() network.Config {
	return network.Config{Range: s.Range, Bandwidth: s.Bandwidth, MaxSpeed: s.MaxSpeed, Shards: s.Shards}
}

// City mobility mixes one bus per cityBusEvery nodes with community
// walkers at pedestrian speeds. Walker speeds stay below every bus speed
// range in use, so Scenario.MaxSpeed keeps bounding the whole fleet.
const (
	cityBusEvery     = 10
	cityWalkMinSpeed = 0.5 // m/s
	cityWalkMaxSpeed = 1.5 // m/s
	cityWalkPHome    = 0.8 // probability a walker's next waypoint is in its home district
)

// cityIsBus reports whether node i drives a bus. Buses come in blocks of
// `lines` consecutive ids every cityBusEvery*lines nodes, so the canonical
// round-robin LineOfNode assignment puts exactly one bus of each block on
// each line: every line gets service and every district gets buses. A
// plain i%cityBusEvery == 0 rule would alias with the same round-robin
// (gcd resonance) and leave most lines busless — e.g. lines {0,10,20,30}
// only at CityScale's 40 lines. At scale (nodes >> cityBusEvery*lines)
// the bus share converges to 1/cityBusEvery.
func cityIsBus(i, lines int) bool {
	return i%(cityBusEvery*lines) < lines
}

// buildMover constructs node i's mover per the scenario's mobility model.
func buildMover(s Scenario, rm *mapgen.RoadMap, i int, rng *xrand.Source) mobility.Mover {
	switch s.Mobility {
	case "bus", "":
		return mobility.NewBus(rm, rm.LineOfNode(i), s.MinSpeed, s.MaxSpeed, s.MinDwell, s.MaxDwell, rng)
	case "rwp":
		return mobility.NewRandomWaypoint(geo.NewRect(geo.Point{}, geo.Point{X: s.Map.Width, Y: s.Map.Height}),
			s.MinSpeed, s.MaxSpeed, s.MinDwell, s.MaxDwell, rng)
	case "city":
		// Bus nodes drive their round-robin line (cityIsBus covers every
		// line); walkers anchor to the district that same assignment gives
		// them, so the community registry stays consistent for CR and ENEC.
		if cityIsBus(i, len(rm.Lines)) {
			return mobility.NewBus(rm, rm.LineOfNode(i), s.MinSpeed, s.MaxSpeed, s.MinDwell, s.MaxDwell, rng)
		}
		home := rm.DistrictRects[rm.DistrictOfNode(i)%len(rm.DistrictRects)]
		return mobility.NewHomeZone(rm.Bounds, home, cityWalkPHome,
			cityWalkMinSpeed, cityWalkMaxSpeed, s.MinDwell, s.MaxDwell, rng)
	default:
		panic("experiment: unknown mobility model " + s.Mobility)
	}
}

// eerConfig assembles the EER router configuration from the scenario.
func (s Scenario) eerConfig() routing.EERConfig {
	return routing.EERConfig{
		Lambda:            s.Lambda,
		Alpha:             s.Alpha,
		Window:            s.Window,
		ForwardHysteresis: s.ForwardHysteresis,
		SparseEstimators:  s.sparseEstimators(),
		MaxSparseRows:     s.MaxSparseRows,
		Gossip:            s.gossipMode(),
	}
}

// gossipMode parses the scenario's gossip mode name. Specs validate the
// name up front; a bad name reaching a hand-built Scenario panics like
// every other malformed Scenario field.
func (s Scenario) gossipMode() core.ExchangeMode {
	m, err := core.ParseExchangeMode(s.Gossip)
	if err != nil {
		panic("experiment: " + err.Error())
	}
	return m
}

// Run executes the scenario to completion and returns its metrics.
func (s Scenario) Run() metrics.Summary {
	w, runner := s.Build()
	prof := s.attachProfiler(w, runner)
	runner.Run(s.Duration)
	sum := w.Metrics.Summary()
	sum.Timing = prof.Timing()
	return sum
}

// attachProfiler wires a fresh engine profiler into a built world and
// its runner when the scenario asks for one (Profile); returns nil —
// and leaves the world on the uninstrumented fast path — otherwise.
func (s Scenario) attachProfiler(w *network.World, runner *sim.Runner) *obs.EngineProf {
	if !s.Profile {
		return nil
	}
	p := &obs.EngineProf{}
	w.SetProfiler(p)
	runner.Prof = p
	return p
}

// RunSeeds executes the scenario once per seed (in parallel through the
// bounded worker pool — worlds are independent) and returns the per-seed
// summaries in seed order.
func RunSeeds(s Scenario, seeds []int64) []metrics.Summary {
	ss := make([]Scenario, len(seeds))
	for i, seed := range seeds {
		ss[i] = s
		ss[i].Seed = seed
	}
	return RunBatch(ss)
}

// Seeds returns the canonical seed list 1..n.
func Seeds(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i + 1)
	}
	return out
}

// RunAveraged executes the scenario over n seeds and returns the mean
// summary.
func RunAveraged(s Scenario, nSeeds int) metrics.Summary {
	return metrics.Mean(RunSeeds(s, Seeds(nSeeds)))
}
