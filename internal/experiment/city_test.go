package experiment

import (
	"fmt"
	"runtime"
	"testing"
)

// smallCity returns a CityScale-shaped scenario shrunk to test size: the
// same metropolitan map and bus/walker mobility mix, far fewer nodes.
func smallCity(nodes int) Scenario {
	s := CityScale()
	s.Nodes = nodes
	s.Duration = 300
	return s
}

// TestCityMobilitySmoke proves the "city" mobility model wires up: buses
// and walkers move, meet and deliver across the metropolitan map.
func TestCityMobilitySmoke(t *testing.T) {
	s := smallCity(120)
	s.Protocol = Epidemic
	s.Duration = 600
	sum := s.Run()
	if sum.Generated == 0 {
		t.Fatal("city scenario generated no traffic")
	}
	if sum.Contacts == 0 {
		t.Fatal("city scenario produced no contacts — walkers or buses not moving")
	}
}

// TestShardParityScenarios is the scenario-level half of the sharding
// parity suite: full protocol stacks over bus, random-waypoint and city
// mobility must produce bit-identical summaries for Shards ∈ {0, 1, 2, 8}.
func TestShardParityScenarios(t *testing.T) {
	cases := []struct {
		name string
		s    Scenario
	}{
		{"bus-EER", func() Scenario {
			s := Quick()
			s.Nodes = 30
			s.Duration = 600
			return s
		}()},
		{"rwp-SprayAndWait", func() Scenario {
			s := Quick()
			s.Nodes = 30
			s.Duration = 600
			s.Mobility = "rwp"
			s.Protocol = SprayAndWait
			return s
		}()},
		{"city-Epidemic", func() Scenario {
			s := smallCity(80)
			s.Protocol = Epidemic
			return s
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref := tc.s
			ref.Shards = 0
			want := ref.Run()
			for _, shards := range []int{1, 2, 8} {
				sc := tc.s
				sc.Shards = shards
				if got := sc.Run(); got != want {
					t.Fatalf("Shards=%d diverged from serial:\n  serial  %+v\n  sharded %+v", shards, want, got)
				}
			}
		})
	}
}

// BenchmarkCityScale measures tick throughput of one >=10k-node city
// world, serial versus sharded across all cores. The sharded run must be
// bit-identical (TestShardParityScenarios pins that at test scale); this
// benchmark exists to show the throughput win on multicore hardware.
func BenchmarkCityScale(b *testing.B) {
	for _, shards := range []int{0, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := CityScale()
			s.Shards = shards
			w, runner := s.Build()
			runner.Run(5) // warm up: first contacts, wheel, scratch sizing
			start := runner.Now()
			b.ResetTimer()
			runner.Run(start + float64(b.N)*s.Tick)
			b.StopTimer()
			if w.N() < 10000 {
				b.Fatalf("city scale shrank: %d nodes", w.N())
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ticks/s")
		})
	}
}
