package experiment

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// Golden-metrics regression: a committed fixture of Figure 2 results at
// one sweep point × 3 seeds. The determinism contract makes the figures
// bit-reproducible, so any drift in a protocol's delivery ratio, latency
// or goodput — an engine change leaking into simulation semantics, a
// router behaviour change — fails here before it silently reshapes the
// paper's figures. Refresh intentionally with:
//
//	go test ./internal/experiment -run TestGoldenFigure2 -update-golden

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_figure2.json from the current engine")

const goldenPath = "testdata/golden_figure2.json"

// goldenPoint holds the paper's three figures of merit for one run.
type goldenPoint struct {
	Delivery float64 `json:"delivery"`
	Latency  float64 `json:"latency"`
	Goodput  float64 `json:"goodput"`
}

// goldenScenario is the fixture's sweep point: the 40-node Figure 2
// column at reduced duration, heavy enough to exercise every protocol's
// full pipeline, light enough for every `go test` run.
func goldenScenario() Scenario {
	s := Default()
	s.Nodes = 40
	s.Duration = 2000
	s.Tick = 0.5
	return s
}

const goldenSeeds = 3

func computeGolden() map[string][]goldenPoint {
	base := goldenScenario()
	var batch []Scenario
	for _, p := range AllPaperProtocols {
		s := base
		s.Protocol = p
		for seed := 1; seed <= goldenSeeds; seed++ {
			sc := s
			sc.Seed = int64(seed)
			batch = append(batch, sc)
		}
	}
	sums := RunBatch(batch)
	out := make(map[string][]goldenPoint, len(AllPaperProtocols))
	for i, p := range AllPaperProtocols {
		for j := 0; j < goldenSeeds; j++ {
			sum := sums[i*goldenSeeds+j]
			out[string(p)] = append(out[string(p)], goldenPoint{
				Delivery: sum.DeliveryRatio,
				Latency:  sum.AvgLatency,
				Goodput:  sum.Goodput,
			})
		}
	}
	return out
}

func TestGoldenFigure2(t *testing.T) {
	if testing.Short() {
		t.Skip("18 simulations in -short mode")
	}
	got := computeGolden()
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update-golden to create): %v", err)
	}
	var want map[string][]goldenPoint
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("corrupt golden fixture: %v", err)
	}
	for _, p := range AllPaperProtocols {
		w, g := want[string(p)], got[string(p)]
		if len(w) != goldenSeeds || len(g) != goldenSeeds {
			t.Fatalf("%s: fixture has %d seeds, run produced %d (want %d)", p, len(w), len(g), goldenSeeds)
		}
		for seed := range w {
			// Exact equality: runs are bit-deterministic, and JSON
			// round-trips float64 exactly. Any mismatch is a real
			// behaviour change — regenerate only if it is intentional.
			if w[seed] != g[seed] {
				t.Errorf("%s seed %d drifted:\n  golden %+v\n  now    %+v\n(if intentional: go test ./internal/experiment -run TestGoldenFigure2 -update-golden)",
					p, seed+1, w[seed], g[seed])
			}
		}
	}
}
