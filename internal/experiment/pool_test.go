package experiment

import (
	"strings"
	"testing"
)

// TestForEachJobPanicPropagates: a panic inside a pooled job must surface
// on the calling goroutine (not crash the process from a worker), so
// servers can contain it with recover while CLI runs still die loudly.
// On multi-core hosts this exercises the worker path, on GOMAXPROCS=1
// the inline path — the contract is the same.
func TestForEachJobPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate to the caller")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "job 2 exploded") {
			t.Fatalf("unexpected panic value %v", r)
		}
	}()
	forEachJob(8, func(i int) {
		if i == 2 {
			panic("job 2 exploded")
		}
	})
}
