package experiment

import (
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// TestSpecPresetRoundTrip: the named preset specs resolve to exactly the
// scenarios the constructors return — specs and constructors are one code
// path — and survive a JSON round trip unchanged.
func TestSpecPresetRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		spec ScenarioSpec
		want Scenario
	}{
		{"default", ScenarioSpec{}, Default()},
		{"quick", QuickSpec(), Quick()},
		{"cityscale", CityScaleSpec(), CityScale()},
		{"metroscale", MetroScaleSpec(), MetroScale()},
		{"figure2 cell", Figure2Spec(MaxProp, 160, nil), withNodesProto(Default(), 160, MaxProp)},
	}
	for _, c := range cases {
		data, err := json.Marshal(c.spec)
		if err != nil {
			t.Fatalf("%s: marshal: %v", c.name, err)
		}
		parsed, err := ParseSpec(data)
		if err != nil {
			t.Fatalf("%s: parse: %v", c.name, err)
		}
		got, err := parsed.Scenario()
		if err != nil {
			t.Fatalf("%s: resolve: %v", c.name, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: spec resolved to\n%+v\nwant\n%+v", c.name, got, c.want)
		}
	}
}

func withNodesProto(s Scenario, n int, p Protocol) Scenario {
	s.Nodes = n
	s.Protocol = p
	return s
}

// TestSpecGoldenFigure2: a Figure-2 cell submitted as a spec produces
// summaries bit-identical to the committed golden fixture — the same pin
// TestGoldenFigure2 applies to the constructor path, reused for the
// declarative path. One protocol keeps it affordable in every test run.
func TestSpecGoldenFigure2(t *testing.T) {
	if testing.Short() {
		t.Skip("3 simulations in -short mode")
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden fixture: %v", err)
	}
	var want map[string][]goldenPoint
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}

	g := goldenScenario()
	sp := Figure2Spec(EER, g.Nodes, []int64{1, 2, 3})
	sp.Duration = ptr(g.Duration)
	sp.Tick = ptr(g.Tick)
	sums, err := RunSpec(sp)
	if err != nil {
		t.Fatal(err)
	}
	for seed, sum := range sums {
		got := goldenPoint{Delivery: sum.DeliveryRatio, Latency: sum.AvgLatency, Goodput: sum.Goodput}
		if got != want["EER"][seed] {
			t.Errorf("seed %d: spec path drifted from golden fixture:\n  golden %+v\n  spec   %+v", seed+1, want["EER"][seed], got)
		}
	}
}

// TestSpecValidation: malformed specs are rejected with telling errors,
// never run.
func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name, wantErr string
		spec          ScenarioSpec
	}{
		{"unknown preset", "unknown preset", ScenarioSpec{Preset: "helsinki"}},
		{"unknown protocol", "unknown protocol", ScenarioSpec{Protocol: ptr("EERX")}},
		{"unknown mobility", "unknown mobility", ScenarioSpec{Mobility: ptr("teleport")}},
		{"one node", "two nodes", ScenarioSpec{Nodes: ptr(1)}},
		{"zero lambda", "lambda", ScenarioSpec{Lambda: ptr(0)}},
		{"negative duration", "duration", ScenarioSpec{Duration: ptr(-1.0)}},
		{"zero tick", "tick", ScenarioSpec{Tick: ptr(0.0)}},
		{"negative shards", "shards", ScenarioSpec{Shards: ptr(ShardCount(-2))}},
		{"zero range", "range", ScenarioSpec{Range: ptr(0.0)}},
		{"zero msg size", "message size", ScenarioSpec{MsgSize: ptr(0)}},
		{"zero ttl", "ttl", ScenarioSpec{TTL: ptr(0.0)}},
		{"interval inverted", "interval", ScenarioSpec{MsgIntervalMin: ptr(30.0), MsgIntervalMax: ptr(20.0)}},
		{"negative row cap", "max_sparse_rows", ScenarioSpec{MaxSparseRows: ptr(-1)}},
		{"degenerate map", "map", ScenarioSpec{Map: &MapSpec{Lines: ptr(0)}}},
		// Service ceilings: a validated spec must always terminate in
		// bounded memory (dtnd is network-facing).
		{"too many nodes", "nodes", ScenarioSpec{Nodes: ptr(50_000_000)}},
		{"too many ticks", "step", ScenarioSpec{Duration: ptr(1e9), Tick: ptr(0.01)}},
		{"too much traffic", "message", ScenarioSpec{MsgIntervalMin: ptr(1e-9), MsgIntervalMax: ptr(1e-9)}},
		{"too many seeds", "seeds", ScenarioSpec{Seeds: make([]int64, 65)}},
		{"too many shards", "shards", ScenarioSpec{Shards: ptr(ShardCount(100000))}},
	}
	for _, c := range cases {
		if _, err := c.spec.Scenario(); err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error = %v, want containing %q", c.name, err, c.wantErr)
		}
	}
}

// TestParseSpecStrict: unknown JSON fields (typos) fail the parse.
func TestParseSpecStrict(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"protocl": "EER"}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ParseSpec([]byte(`{`)); err == nil {
		t.Error("truncated JSON accepted")
	}
	if _, err := ParseSpec([]byte(`{"preset": "quick"}`)); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

// TestSpecCacheKey: the content address depends on what the spec *runs*,
// not how it is written — explicit defaults hash like omitted ones — and
// any semantic change (a parameter, a seed) changes the key.
func TestSpecCacheKey(t *testing.T) {
	base := ScenarioSpec{Protocol: ptr(string(EER))}
	k1, err := base.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	// Same resolved job, written differently.
	explicit := ScenarioSpec{Preset: "default", Protocol: ptr(string(EER)), Nodes: ptr(120), Seeds: []int64{1}}
	if k2, _ := explicit.CacheKey(); k2 != k1 {
		t.Errorf("explicit defaults changed the key: %s vs %s", k2, k1)
	}
	// Any semantic difference must change it.
	for name, sp := range map[string]ScenarioSpec{
		"other protocol": {Protocol: ptr(string(CR))},
		"other nodes":    {Protocol: ptr(string(EER)), Nodes: ptr(121)},
		"other seeds":    {Protocol: ptr(string(EER)), Seeds: []int64{2}},
		"more seeds":     {Protocol: ptr(string(EER)), Seeds: []int64{1, 2}},
		"row cap":        {Protocol: ptr(string(EER)), MaxSparseRows: ptr(500)},
	} {
		k, err := sp.CacheKey()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if k == k1 {
			t.Errorf("%s: key collision with base", name)
		}
	}
	// Invalid specs have no key.
	if _, err := (ScenarioSpec{Nodes: ptr(0)}).CacheKey(); err == nil {
		t.Error("invalid spec produced a cache key")
	}
}

// TestRunSpecProgress: observing a run does not perturb it — summaries
// with and without a progress callback are bit-identical — and progress
// is plentiful, ordered and complete.
func TestRunSpecProgress(t *testing.T) {
	sp := ScenarioSpec{
		Preset:   "quick",
		Protocol: ptr(string(SprayAndWait)),
		Nodes:    ptr(20),
		Duration: ptr(600.0),
		Seeds:    []int64{1, 2},
	}
	plain, err := RunSpec(sp)
	if err != nil {
		t.Fatal(err)
	}
	var events []float64
	observed, err := RunSpecProgress(sp, func(p metrics.Progress) {
		if p.Seeds != 2 || p.Duration != 600 {
			t.Errorf("bad progress frame %+v", p)
		}
		events = append(events, p.Frac)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, observed) {
		t.Errorf("observation changed summaries:\n%+v\nvs\n%+v", plain, observed)
	}
	if len(events) < 20 {
		t.Fatalf("only %d progress events", len(events))
	}
	last := events[len(events)-1]
	if last != 1 {
		t.Errorf("final frac = %g, want 1", last)
	}
}
