package experiment

import (
	"strings"
	"testing"

	"repro/internal/metrics"
)

// tiny returns a fast scenario for integration tests.
func tiny(p Protocol) Scenario {
	s := Default()
	s.Protocol = p
	s.Nodes = 24
	s.Duration = 1200
	s.Tick = 0.5
	return s
}

func TestRunAllProtocolsEndToEnd(t *testing.T) {
	for _, p := range []Protocol{EER, CR, EBR, MaxProp, SprayAndWait, SprayAndFocus,
		Epidemic, Prophet, Direct, FirstContact, EERFixedEV, EERMeanMD} {
		p := p
		t.Run(string(p), func(t *testing.T) {
			t.Parallel()
			sum := tiny(p).Run()
			if sum.Generated == 0 {
				t.Fatal("no traffic generated")
			}
			if sum.Contacts == 0 {
				t.Fatal("no contacts in the bus scenario")
			}
			if sum.DeliveryRatio < 0 || sum.DeliveryRatio > 1 {
				t.Fatalf("delivery ratio out of range: %g", sum.DeliveryRatio)
			}
			if sum.Delivered > 0 && sum.AvgLatency <= 0 {
				t.Fatalf("deliveries without latency: %+v", sum)
			}
			if sum.Relays < sum.Delivered {
				t.Fatalf("fewer relays than deliveries: %+v", sum)
			}
		})
	}
}

// TestDeterministicScenario: the headline reproducibility guarantee — one
// (config, seed) pair yields bit-identical metrics.
func TestDeterministicScenario(t *testing.T) {
	s := tiny(EER)
	a, b := s.Run(), s.Run()
	if a != b {
		t.Fatalf("identical runs diverged:\n%+v\n%+v", a, b)
	}
	s.Seed = 99
	c := s.Run()
	if a == c {
		t.Error("different seeds produced identical metrics (suspicious)")
	}
}

func TestRWPScenario(t *testing.T) {
	s := tiny(Epidemic)
	s.Mobility = "rwp"
	s.Range = 50 // RWP over the full map needs a bigger range for contacts
	sum := s.Run()
	if sum.Contacts == 0 {
		t.Fatal("no contacts under random waypoint")
	}
}

func TestEpidemicDominatesDirectDelivery(t *testing.T) {
	// Sanity cross-protocol ordering: epidemic must deliver at least as
	// much as direct delivery on the same scenario and seeds.
	epi := RunAveraged(tiny(Epidemic), 2)
	dir := RunAveraged(tiny(Direct), 2)
	if epi.DeliveryRatio < dir.DeliveryRatio {
		t.Errorf("epidemic (%g) below direct delivery (%g)", epi.DeliveryRatio, dir.DeliveryRatio)
	}
	if dir.Relays != dir.Delivered {
		t.Errorf("direct delivery relays (%d) != deliveries (%d)", dir.Relays, dir.Delivered)
	}
}

func TestRunSeedsIndependent(t *testing.T) {
	sums := RunSeeds(tiny(SprayAndWait), Seeds(3))
	if len(sums) != 3 {
		t.Fatalf("got %d summaries", len(sums))
	}
	if sums[0] == sums[1] && sums[1] == sums[2] {
		t.Error("all seeds produced identical results (suspicious)")
	}
	// RunSeeds must match individual runs (parallelism must not leak
	// state).
	s := tiny(SprayAndWait)
	s.Seed = 2
	if got := s.Run(); got != sums[1] {
		t.Error("parallel seed run differs from sequential run")
	}
}

func TestNodeSweepShape(t *testing.T) {
	se := NodeSweep(tiny(Direct), []int{10, 20}, 1)
	if se.Name != string(Direct) || len(se.Points) != 2 {
		t.Fatalf("series = %+v", se)
	}
	if se.Points[0].X != 10 || se.Points[1].X != 20 {
		t.Error("x values wrong")
	}
}

func TestRenderTableAndCSV(t *testing.T) {
	series := []Series{
		{Name: "A", Points: []Point{{X: 40, Summary: metrics.Summary{DeliveryRatio: 0.5, AvgLatency: 100, Goodput: 0.05}}}},
		{Name: "B", Points: []Point{{X: 40, Summary: metrics.Summary{DeliveryRatio: 0.7, AvgLatency: 90, Goodput: 0.02}}, {X: 80, Summary: metrics.Summary{DeliveryRatio: 0.8}}}},
	}
	var sb strings.Builder
	RenderTable(&sb, "Figure 2", "nodes", series, MetricDeliveryRatio)
	out := sb.String()
	for _, want := range []string{"Figure 2", "Delivery Ratio", "nodes", "A", "B", "0.500", "0.700", "40", "80", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	sb.Reset()
	WriteCSV(&sb, "nodes", series, PaperMetrics)
	csv := sb.String()
	if !strings.Contains(csv, "40,A,Delivery_Ratio,0.500") {
		t.Errorf("csv missing rows:\n%s", csv)
	}
	if !strings.Contains(csv, "80,B,Goodput,0.0000") {
		t.Errorf("csv missing goodput row:\n%s", csv)
	}
}

func TestSweep1D(t *testing.T) {
	se := Sweep1D("lambda", tiny(SprayAndWait), []float64{2, 6}, func(s *Scenario, v float64) {
		s.Lambda = int(v)
	}, 1)
	if len(se.Points) != 2 {
		t.Fatalf("points = %d", len(se.Points))
	}
	// More replicas must not reduce relays on identical traffic.
	if se.Points[1].Summary.Relays < se.Points[0].Summary.Relays {
		t.Error("λ=6 produced fewer relays than λ=2")
	}
}

func TestUnknownProtocolPanics(t *testing.T) {
	s := tiny("nope")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Run()
}

func TestQuickAndDefaultValid(t *testing.T) {
	if Default().Nodes < 2 || Quick().Nodes < 2 {
		t.Fatal("configs invalid")
	}
	if Default().Alpha != 0.28 || Default().Lambda != 10 {
		t.Error("paper defaults wrong")
	}
	if Default().TTL != 1200 || Default().BufBytes != 1<<20 {
		t.Error("paper defaults wrong")
	}
}
