package experiment

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/resultcache"
	"repro/internal/trace"
)

// traceTestScenario is a small world for record/replay tests: Quick
// physics, shrunk further so each parity test runs several worlds within
// a unit-test budget.
func traceTestScenario(seed int64) Scenario {
	s := Quick()
	s.Nodes = 40
	s.Duration = 600
	s.Seed = seed
	return s
}

func openStore(t testing.TB) *resultcache.Store {
	t.Helper()
	store, err := resultcache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return store
}

// reRecord replays the script through a fresh world of scenario s while
// recording the replayed contact transitions, returning their encoding —
// the bit-parity probe: a replayed world must emit the exact event
// sequence it was fed.
func reRecord(t testing.TB, s Scenario, script *trace.Script) []byte {
	t.Helper()
	w, runner := s.BuildReplay(scriptEvents(script))
	if !w.Scripted() {
		t.Fatal("BuildReplay world is not scripted")
	}
	rec := trace.NewScriptRecorder(s.Nodes)
	w.OnContact(rec.Note)
	runner.Run(s.Duration)
	return rec.Script().Encode()
}

// TestReplayParityQuick is the core soundness contract at Quick scale: a
// run recorded during live simulation, then replayed, produces (a) a
// bit-identical metrics summary — protocol, traffic, buffers and gossip
// all included — and (b) a bit-identical contact event sequence when the
// replayed world is itself re-recorded.
func TestReplayParityQuick(t *testing.T) {
	store := openStore(t)
	s := traceTestScenario(3)

	s.Trace = "record"
	live, done, err := runScenario(context.Background(), s, store, nil)
	if err != nil || !done {
		t.Fatalf("record run: done=%v err=%v", done, err)
	}
	key := TraceKey(s)
	data, ok := store.GetTrace(key)
	if !ok {
		t.Fatalf("record run persisted no trace under %s", key)
	}
	script, err := trace.DecodeScript(data)
	if err != nil {
		t.Fatalf("persisted trace does not decode: %v", err)
	}

	s.Trace = "replay"
	replayed, done, err := runScenario(context.Background(), s, store, nil)
	if err != nil || !done {
		t.Fatalf("replay run: done=%v err=%v", done, err)
	}
	if replayed != live {
		t.Errorf("replayed summary diverged from live:\n live   %+v\n replay %+v", live, replayed)
	}
	if got := reRecord(t, s, script); !bytes.Equal(got, data) {
		t.Error("re-recorded replay events differ from the recorded script")
	}
}

// TestReplayParityCityScale re-pins the same contract on the 10k-node
// city preset — the scale the fast path exists for — over a short window.
func TestReplayParityCityScale(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-node worlds in -short mode")
	}
	store := openStore(t)
	s := CityScale()
	s.Duration = 90
	s.Seed = 2

	s.Trace = "record"
	live, done, err := runScenario(context.Background(), s, store, nil)
	if err != nil || !done {
		t.Fatalf("record run: done=%v err=%v", done, err)
	}
	if live.Contacts == 0 {
		t.Fatal("no contacts in the city window — parity would be vacuous")
	}
	s.Trace = "replay"
	replayed, done, err := runScenario(context.Background(), s, store, nil)
	if err != nil || !done {
		t.Fatalf("replay run: done=%v err=%v", done, err)
	}
	if replayed != live {
		t.Errorf("replayed summary diverged from live:\n live   %+v\n replay %+v", live, replayed)
	}
	data, _ := store.GetTrace(TraceKey(s))
	script, err := trace.DecodeScript(data)
	if err != nil {
		t.Fatal(err)
	}
	if got := reRecord(t, s, script); !bytes.Equal(got, data) {
		t.Error("re-recorded replay events differ from the recorded script")
	}
}

// TestBareRecordMatchesLiveRecord pins that a bare recording (RecordTrace:
// null routers, no traffic) captures the same contact script a full
// protocol run records — the property that lets sweeps pre-record one
// cheap world and replay it for every protocol cell.
func TestBareRecordMatchesLiveRecord(t *testing.T) {
	store := openStore(t)
	s := traceTestScenario(5)

	script, key, err := RecordTrace(context.Background(), s, store)
	if err != nil {
		t.Fatal(err)
	}
	bare := script.Encode()

	liveStore := openStore(t)
	s.Trace = "record"
	if _, done, err := runScenario(context.Background(), s, liveStore, nil); err != nil || !done {
		t.Fatalf("live record: done=%v err=%v", done, err)
	}
	liveData, ok := liveStore.GetTrace(key)
	if !ok {
		t.Fatal("live record persisted nothing")
	}
	if !bytes.Equal(bare, liveData) {
		t.Error("bare recording differs from live-run recording of the same world")
	}
}

// TestTraceModes pins the dispatch table of runScenario: explicit replay
// without a trace is an error, record/replay without a store are errors,
// auto degrades to live without a store, auto records on miss then
// replays on hit, and unknown modes are rejected.
func TestTraceModes(t *testing.T) {
	s := traceTestScenario(9)
	ctx := context.Background()

	s.Trace = "replay"
	if _, _, err := runScenario(ctx, s, openStore(t), nil); err == nil {
		t.Error("replay with no recorded trace succeeded")
	}
	for _, mode := range []string{"record", "replay"} {
		s.Trace = mode
		if _, _, err := runScenario(ctx, s, nil, nil); err == nil {
			t.Errorf("%s with nil store succeeded", mode)
		}
	}
	s.Trace = "bogus"
	if _, _, err := runScenario(ctx, s, openStore(t), nil); err == nil {
		t.Error("unknown trace mode accepted")
	}

	s.Trace = "auto"
	liveSum, done, err := runScenario(ctx, s, nil, nil)
	if err != nil || !done {
		t.Fatalf("auto with nil store: done=%v err=%v", done, err)
	}

	store := openStore(t)
	rec0, rep0 := TraceRecordings(), TraceReplays()
	first, done, err := runScenario(ctx, s, store, nil)
	if err != nil || !done {
		t.Fatalf("auto miss: done=%v err=%v", done, err)
	}
	if !store.HasTrace(TraceKey(s)) {
		t.Fatal("auto miss did not record")
	}
	second, done, err := runScenario(ctx, s, store, nil)
	if err != nil || !done {
		t.Fatalf("auto hit: done=%v err=%v", done, err)
	}
	if d := TraceRecordings() - rec0; d != 1 {
		t.Errorf("auto pair performed %d recordings, want 1", d)
	}
	if d := TraceReplays() - rep0; d != 1 {
		t.Errorf("auto pair performed %d replays, want 1", d)
	}
	if first != liveSum || second != liveSum {
		t.Errorf("auto summaries diverged from live:\n live  %+v\n miss  %+v\n hit   %+v", liveSum, first, second)
	}
}

// TestTraceCorruptIsMiss pins the corruption contract end to end: a
// damaged blob under a valid trace key must never replay. Auto mode falls
// back to a live run (identical summary) and re-records a good blob;
// explicit replay refuses.
func TestTraceCorruptIsMiss(t *testing.T) {
	store := openStore(t)
	s := traceTestScenario(11)
	key := TraceKey(s)

	good, _, err := RecordTrace(context.Background(), s, store)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := good.Encode()[:20] // truncated mid-stream
	if err := store.PutTrace(key, corrupt); err != nil {
		t.Fatal(err)
	}

	s.Trace = "replay"
	if _, _, err := runScenario(context.Background(), s, store, nil); err == nil {
		t.Fatal("replay of a corrupt trace succeeded")
	}

	s.Trace = ""
	liveSum, _, err := runScenario(context.Background(), s, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Trace = "auto"
	sum, done, err := runScenario(context.Background(), s, store, nil)
	if err != nil || !done {
		t.Fatalf("auto over corrupt trace: done=%v err=%v", done, err)
	}
	if sum != liveSum {
		t.Errorf("auto fallback diverged from live:\n live %+v\n auto %+v", liveSum, sum)
	}
	data, ok := store.GetTrace(key)
	if !ok {
		t.Fatal("auto fallback did not re-record")
	}
	if _, err := trace.DecodeScript(data); err != nil {
		t.Errorf("re-recorded blob does not decode: %v", err)
	}
}

// TestTraceKeyGrouping pins what the content address covers: protocol,
// traffic and gossip parameters must not change the key (their cells
// share a recorded world); world-defining fields and the seed must.
// TraceGroup additionally zeroes the seed so a sweep's whole seed list
// lands in one group.
func TestTraceKeyGrouping(t *testing.T) {
	base := traceTestScenario(1)
	key := TraceKey(base)

	same := base
	same.Protocol = MaxProp
	same.Lambda = 99
	same.TTL = 123
	same.BufBytes = 1 << 20
	same.Gossip = "delta"
	same.Shards = 4
	if TraceKey(same) != key {
		t.Error("routing/traffic/gossip fields perturbed the trace key")
	}
	for name, mut := range map[string]func(*Scenario){
		"nodes":    func(s *Scenario) { s.Nodes++ },
		"seed":     func(s *Scenario) { s.Seed++ },
		"duration": func(s *Scenario) { s.Duration += 1 },
		"range":    func(s *Scenario) { s.Range += 1 },
		"mobility": func(s *Scenario) { s.Mobility = "rwp" },
	} {
		diff := base
		mut(&diff)
		if TraceKey(diff) == key {
			t.Errorf("%s change did not change the trace key", name)
		}
	}

	spA := ScenarioSpec{Nodes: ptr(40), Seeds: []int64{1}}
	spB := ScenarioSpec{Nodes: ptr(40), Seeds: []int64{2}, Protocol: ptr(string(CR))}
	gA, okA := TraceGroup(spA)
	gB, okB := TraceGroup(spB)
	if !okA || !okB || gA != gB {
		t.Errorf("seed/protocol-only spec variants grouped apart: %q vs %q", gA, gB)
	}
}

// TestSweepTraceFastPath is the sweep-level acceptance test: a
// protocol-only sweep over a shared store must simulate mobility exactly
// once per seed (the pre-recordings), serve every protocol cell by replay
// — zero live per-protocol worlds — and return cell summaries
// bit-identical to the same sweep run entirely live. Run under -race in
// CI, the concurrent pre-record and replay stages must also be clean.
func TestSweepTraceFastPath(t *testing.T) {
	seeds := []int64{1, 2}
	sw := SweepSpec{
		Base: ScenarioSpec{
			Nodes:    ptr(30),
			Duration: ptr(400.0),
			Tick:     ptr(0.5),
			Seeds:    seeds,
		},
		Protocols: []string{string(SprayAndWait), string(EER), string(CR)},
	}
	live, err := RunSweep(context.Background(), sw, nil)
	if err != nil {
		t.Fatal(err)
	}

	store := openStore(t)
	rec0, rep0 := TraceRecordings(), TraceReplays()
	traced, err := RunSweep(context.Background(), sw, store)
	if err != nil {
		t.Fatal(err)
	}
	if d := TraceRecordings() - rec0; d != int64(len(seeds)) {
		t.Errorf("sweep recorded %d worlds, want %d (one per seed)", d, len(seeds))
	}
	if want := int64(len(sw.Protocols) * len(seeds)); TraceReplays()-rep0 != want {
		t.Errorf("sweep replayed %d runs, want %d (every protocol cell)", TraceReplays()-rep0, want)
	}
	for i := range live {
		if traced[i].Mean != live[i].Mean {
			t.Errorf("cell %d (%v) mean diverged between live and traced sweeps", i, traced[i].Cell.Axes)
		}
		for j := range live[i].PerSeed {
			if traced[i].PerSeed[j] != live[i].PerSeed[j] {
				t.Errorf("cell %d seed %d summary diverged between live and traced sweeps", i, j)
			}
		}
	}

	// Resubmitting with a fresh result store but the same trace store must
	// not simulate mobility at all: every cell replays the existing traces.
	rec1, rep1 := TraceRecordings(), TraceReplays()
	if _, err := RunSweep(context.Background(), sw, traceOnlyStore(t, store, sw)); err != nil {
		t.Fatal(err)
	}
	if d := TraceRecordings() - rec1; d != 0 {
		t.Errorf("fully pre-recorded resubmit recorded %d worlds, want 0", d)
	}
	if want := int64(len(sw.Protocols) * len(seeds)); TraceReplays()-rep1 != want {
		t.Errorf("fully pre-recorded resubmit replayed %d runs, want %d", TraceReplays()-rep1, want)
	}
}

// traceOnlyStore opens a second store carrying over the sweep's trace
// blobs but none of its results — simulating a host that has traces
// recorded but lost (or never had) the result cache.
func traceOnlyStore(t testing.TB, src *resultcache.Store, sw SweepSpec) *resultcache.Store {
	t.Helper()
	dst := openStore(t)
	cells, err := sw.Cells()
	if err != nil {
		t.Fatal(err)
	}
	copied := 0
	for _, c := range cells {
		s, err := c.Spec.Scenario()
		if err != nil {
			t.Fatal(err)
		}
		for _, seed := range c.Spec.SeedList() {
			sc := s
			sc.Seed = seed
			key := TraceKey(sc)
			if data, ok := src.GetTrace(key); ok {
				if err := dst.PutTrace(key, data); err != nil {
					t.Fatal(err)
				}
				copied++
			}
		}
	}
	if copied == 0 {
		t.Fatal("no trace blobs to carry over")
	}
	return dst
}

// TestLoneCellStaysLive pins applyTracePlan's economics: a sweep whose
// cells all live in different trace groups (a nodes axis) gains nothing
// from recording first, so no cell is marked and nothing is pre-recorded.
func TestLoneCellStaysLive(t *testing.T) {
	sw := SweepSpec{
		Base: ScenarioSpec{
			Duration: ptr(400.0),
			Tick:     ptr(0.5),
			Seeds:    []int64{1},
		},
		Nodes: []int{20, 30},
	}
	specs := make([]ScenarioSpec, 0, 2)
	cells, err := sw.Cells()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		specs = append(specs, c.Spec)
	}
	recs := applyTracePlan(specs, openStore(t))
	if len(recs) != 0 {
		t.Errorf("nodes-axis sweep scheduled %d pre-recordings, want 0", len(recs))
	}
	for i, sp := range specs {
		if sp.Trace != nil {
			t.Errorf("cell %d marked %q, want untouched", i, *sp.Trace)
		}
	}
}

// BenchmarkReplayVsLive measures the fast path the tentpole promises on
// the city preset: a replayed world (no mobility advance, no grid
// maintenance, no pair sweeps) against the same world simulated live. CI's
// bench-smoke job runs this at one iteration so the replay path cannot
// silently rot.
func BenchmarkReplayVsLive(b *testing.B) {
	s := CityScale()
	s.Duration = 60
	s.Seed = 1
	script, _, err := RecordTrace(context.Background(), s, nil)
	if err != nil {
		b.Fatal(err)
	}
	evs := scriptEvents(script)
	b.Run("live", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, runner := s.Build()
			runner.Run(s.Duration)
		}
	})
	b.Run("replay", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, runner := s.BuildReplay(evs)
			runner.Run(s.Duration)
		}
	})
}

// TestPlacementGroups pins the fabric's dispatch grouping: trace-marked
// cells sharing a world form one group in submission order (the first
// records, the rest replay on the same worker's store), while unmarked
// cells and distinct worlds stay singletons free to scatter.
func TestPlacementGroups(t *testing.T) {
	auto := "auto"
	proto := func(p string) *string { return &p }
	nodes := func(n int) *int { return &n }

	specs := []ScenarioSpec{
		{Preset: "quick", Protocol: proto("EER"), Nodes: nodes(16), Trace: &auto},     // 0: world A
		{Preset: "quick", Protocol: proto("CR"), Nodes: nodes(16), Trace: &auto},      // 1: world A (protocol excluded from world key)
		{Preset: "quick", Protocol: proto("EER"), Nodes: nodes(24), Trace: &auto},     // 2: world B (nodes change the world)
		{Preset: "quick", Protocol: proto("MaxProp"), Nodes: nodes(16)},               // 3: world A but unmarked — singleton
		{Preset: "quick", Protocol: proto("MaxProp"), Nodes: nodes(16), Trace: &auto}, // 4: world A again
		{Preset: "quick", Protocol: proto("CR"), Nodes: nodes(24), Trace: &auto},      // 5: world B again
	}
	got := PlacementGroups(specs)
	want := [][]int{{0, 1, 4}, {2, 5}, {3}}
	if len(got) != len(want) {
		t.Fatalf("got %d groups %v, want %v", len(got), got, want)
	}
	for gi := range want {
		if len(got[gi]) != len(want[gi]) {
			t.Fatalf("group %d = %v, want %v", gi, got[gi], want[gi])
		}
		for k := range want[gi] {
			if got[gi][k] != want[gi][k] {
				t.Fatalf("group %d = %v, want %v", gi, got[gi], want[gi])
			}
		}
	}

	// An unresolvable spec never panics the partitioner: it degrades to a
	// singleton and fails later, at job resolution.
	bad := []ScenarioSpec{{Preset: "no-such-preset", Trace: &auto}}
	if g := PlacementGroups(bad); len(g) != 1 || len(g[0]) != 1 || g[0][0] != 0 {
		t.Fatalf("bad spec grouping %v", g)
	}
}
