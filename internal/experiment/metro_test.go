package experiment

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/metrics"
)

// gossipScenario is a contact-dense bus world small enough to run all
// (protocol × storage × exchange-mode) combinations in one test budget.
// The window is long enough that pairs re-meet many times — CR's
// community-scoped exchange needs ~3000 s before delta's digest overhead
// amortises below the flood.
func gossipScenario(p Protocol, sparse bool) Scenario {
	s := Default()
	s.Protocol = p
	s.Nodes = 30
	s.Duration = 3000
	s.Tick = 0.5
	s.SparseEstimators = sparse
	return s
}

// zeroGossip blanks the gossip-volume fields so summaries can be compared
// on routing outcomes alone.
func zeroGossip(s metrics.Summary) metrics.Summary {
	s.GossipRows, s.GossipEntries, s.GossipBytes, s.GossipDigestBytes = 0, 0, 0, 0
	return s
}

// TestGossipModeParity is the exchange-mode contract: fresher, flood and
// delta are *metering* policies over one merge algorithm, so for every
// estimator-backed protocol and both storage cores they must produce
// bit-identical summaries outside the gossip-volume fields. Within them:
// delta ships exactly the rows fresher counts (plus a metered digest),
// and flood never undercuts fresher.
func TestGossipModeParity(t *testing.T) {
	for _, p := range []Protocol{EER, CR, MaxProp} {
		for _, sparse := range []bool{false, true} {
			name := string(p) + "/dense"
			if sparse {
				name = string(p) + "/sparse"
			}
			t.Run(name, func(t *testing.T) {
				base := gossipScenario(p, sparse)
				sums := map[string]metrics.Summary{}
				for _, mode := range []string{"fresher", "flood", "delta"} {
					s := base
					s.Gossip = mode
					sums[mode] = s.Run()
				}
				fresher := sums["fresher"]
				for _, mode := range []string{"flood", "delta"} {
					if got := zeroGossip(sums[mode]); got != zeroGossip(fresher) {
						t.Errorf("%s diverged from fresher outside gossip fields:\n  fresher %+v\n  %s %+v",
							mode, fresher, mode, sums[mode])
					}
				}
				delta, flood := sums["delta"], sums["flood"]
				if delta.GossipRows != fresher.GossipRows || delta.GossipEntries != fresher.GossipEntries {
					t.Errorf("delta shipped %d rows/%d entries, fresher counted %d/%d — watermarks missed or re-sent a row",
						delta.GossipRows, delta.GossipEntries, fresher.GossipRows, fresher.GossipEntries)
				}
				if delta.GossipDigestBytes == 0 {
					t.Error("delta metered no digest bytes — the exchange is not honest about its overhead")
				}
				if fresher.GossipDigestBytes != 0 || flood.GossipDigestBytes != 0 {
					t.Error("fresher/flood metered digest bytes — only delta trades digests")
				}
				if flood.GossipBytes < fresher.GossipBytes {
					t.Errorf("flood (%d B) under fresher (%d B)", flood.GossipBytes, fresher.GossipBytes)
				}
				if delta.GossipBytes >= flood.GossipBytes {
					t.Errorf("delta (%d B) did not beat flood (%d B) on a contact-dense scenario",
						delta.GossipBytes, flood.GossipBytes)
				}
			})
		}
	}
}

// TestDeltaGossipReduction pins the headline number so it cannot silently
// regress: on a long fixed bus scenario — stores saturated, pairs
// re-meeting for hours — delta gossip moves >= 10x fewer metered bytes
// than the flooding exchange, digests and row requests included.
//
// The scenario is chosen where anti-entropy genuinely pays: repeat
// meetings with modest churn in between. City mobility at 10k+ nodes
// saturates near 3x total — between two meetings of the same pair almost
// the whole store churns, so the (honestly metered) digest approaches the
// flood itself in row count, if not in bytes; DESIGN.md works the numbers.
func TestDeltaGossipReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("two 20000 s simulations in -short mode")
	}
	base := Default()
	base.Protocol = MaxProp
	base.Duration = 20000
	base.Tick = 0.5
	bytes := map[string]int{}
	for _, mode := range []string{"flood", "delta"} {
		s := base
		s.Gossip = mode
		sum := s.Run()
		if sum.GossipBytes == 0 {
			t.Fatalf("%s metered no gossip bytes", mode)
		}
		bytes[mode] = sum.GossipBytes
	}
	ratio := float64(bytes["flood"]) / float64(bytes["delta"])
	t.Logf("flood %d B, delta %d B: %.2fx reduction", bytes["flood"], bytes["delta"], ratio)
	// Gate raised from 10x when digest stamps went varint (measured
	// ~11.7x on this scenario, ~11.2x under the fixed 12 B entries).
	if ratio < 11 {
		t.Errorf("delta gossip reduction %.2fx, want >= 11x (flood %d B, delta %d B)",
			ratio, bytes["flood"], bytes["delta"])
	}
}

// TestMetroScaleSmartProtocols is the acceptance gate of the MetroScale
// preset: the paper's contribution protocols (EER, CR) and MaxProp must
// tick a 100k-node metropolitan world — sub-grid sharding keeps the tick
// parallel, the sparse core keeps estimator state o(n²), and delta gossip
// keeps the metered exchange volume honest. A short window keeps the test
// inside `go test` budgets; contacts at this density arrive within seconds.
func TestMetroScaleSmartProtocols(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-node worlds in -short mode")
	}
	for _, p := range []Protocol{EER, CR, MaxProp} {
		t.Run(string(p), func(t *testing.T) {
			s := MetroScale()
			s.Protocol = p
			s.Duration = 10
			w, runner := s.Build()
			if w.N() < 100000 {
				t.Fatalf("metro scale shrank: %d nodes", w.N())
			}
			runner.Run(s.Duration)
			sum := w.Metrics.Summary()
			if sum.Contacts == 0 {
				t.Fatal("no contacts in a 100k-node metro window")
			}
			if sum.Generated == 0 {
				t.Fatal("no traffic generated")
			}
			if sum.GossipBytes > 0 && sum.GossipDigestBytes == 0 {
				t.Error("MetroScale gossips without digest accounting — delta preset not applied")
			}
		})
	}
}

// BenchmarkMetroScale measures tick throughput of the 100k-node metro
// world, serial versus sharded across all cores. CI's bench-smoke job runs
// this at one iteration so the 100k path cannot silently rot.
func BenchmarkMetroScale(b *testing.B) {
	for _, shards := range []int{0, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := MetroScale()
			s.Shards = shards
			w, runner := s.Build()
			runner.Run(2) // warm up: first contacts, wheel, scratch sizing
			start := runner.Now()
			b.ResetTimer()
			runner.Run(start + float64(b.N)*s.Tick)
			b.StopTimer()
			if w.N() < 100000 {
				b.Fatalf("metro scale shrank: %d nodes", w.N())
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ticks/s")
		})
	}
}

// BenchmarkMetroShardScaling sweeps the shard count on the metro world so
// the scaling curve of the sub-grid reconciliation is visible on multicore
// hardware (summaries stay bit-identical at every point — the sharding
// parity suites pin that).
func BenchmarkMetroShardScaling(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := MetroScale()
			s.Shards = shards
			w, runner := s.Build()
			runner.Run(2)
			start := runner.Now()
			b.ResetTimer()
			runner.Run(start + float64(b.N)*s.Tick)
			b.StopTimer()
			if w.N() < 100000 {
				b.Fatalf("metro scale shrank: %d nodes", w.N())
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ticks/s")
		})
	}
}
