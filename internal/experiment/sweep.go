package experiment

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strconv"

	"repro/internal/metrics"
	"repro/internal/resultcache"
)

// This file makes parameter studies first-class: a SweepSpec is a base
// ScenarioSpec plus axes — the protocol and node-count grid of Figure 2
// and the Section V-B parameters (alpha, ttl, buffer, window, lambda) —
// that deterministically expands into a list of canonical cell specs,
// each with its own content address. A sweep is therefore "a set of
// cells, most of which may already be cached": cmd/sweep, cmd/figures
// and the dtnd /v1/sweeps endpoint all expand through Cells(), so a cell
// computed by any of them is a cache hit for all of them.

// SweepSpec is a declarative parameter study: one base job plus up to
// seven axes. Empty axes contribute nothing; non-empty axes cross-multiply
// in the fixed order protocols → nodes → alpha → ttl → buf_bytes →
// window → lambda (outermost first), which fixes both cell order and the
// per-cell axis labels. The base's own field values (and seed list) apply
// to every cell that no axis overrides.
type SweepSpec struct {
	Base ScenarioSpec `json:"base"`

	Protocols []string  `json:"protocols,omitempty"`
	Nodes     []int     `json:"nodes,omitempty"`
	Alpha     []float64 `json:"alpha,omitempty"`
	TTL       []float64 `json:"ttl,omitempty"`
	BufBytes  []int     `json:"buf_bytes,omitempty"`
	Window    []int     `json:"window,omitempty"`
	Lambda    []int     `json:"lambda,omitempty"`
}

// AxisValue names one axis coordinate of a sweep cell, e.g.
// {Axis: "protocol", Value: "EER"}. Values are rendered the way the
// sweep tables print them (integers without a decimal point).
type AxisValue struct {
	Axis  string `json:"axis"`
	Value string `json:"value"`
}

// SweepCell is one expanded point of a sweep: its full scenario spec, the
// content address of its result, and the axis coordinates that produced
// it (in expansion-axis order) — the key of the sweep's result table.
type SweepCell struct {
	Spec ScenarioSpec `json:"spec"`
	Key  string       `json:"key"`
	Axes []AxisValue  `json:"axes"`
}

// maxSweepCells bounds one sweep's expansion. Like the per-job resource
// ceilings, it is a service bound: far beyond any paper grid (Figure 2 is
// 36 cells), small enough that expansion and per-cell bookkeeping stay
// trivially cheap.
const maxSweepCells = 4096

// axis is one expansion dimension: its label, its value count and a
// setter applying value i onto a cell spec.
type axis struct {
	name  string
	n     int
	value func(i int) string
	apply func(sp *ScenarioSpec, i int)
}

// axes lists the sweep's non-empty dimensions in canonical order.
func (sw SweepSpec) axes() []axis {
	var out []axis
	add := func(name string, n int, value func(int) string, apply func(*ScenarioSpec, int)) {
		if n > 0 {
			out = append(out, axis{name: name, n: n, value: value, apply: apply})
		}
	}
	add("protocol", len(sw.Protocols),
		func(i int) string { return sw.Protocols[i] },
		func(sp *ScenarioSpec, i int) { sp.Protocol = ptr(sw.Protocols[i]) })
	add("nodes", len(sw.Nodes),
		func(i int) string { return strconv.Itoa(sw.Nodes[i]) },
		func(sp *ScenarioSpec, i int) { sp.Nodes = ptr(sw.Nodes[i]) })
	add("alpha", len(sw.Alpha),
		func(i int) string { return trimFloat(sw.Alpha[i]) },
		func(sp *ScenarioSpec, i int) { sp.Alpha = ptr(sw.Alpha[i]) })
	add("ttl", len(sw.TTL),
		func(i int) string { return trimFloat(sw.TTL[i]) },
		func(sp *ScenarioSpec, i int) { sp.TTL = ptr(sw.TTL[i]) })
	add("buf_bytes", len(sw.BufBytes),
		func(i int) string { return strconv.Itoa(sw.BufBytes[i]) },
		func(sp *ScenarioSpec, i int) { sp.BufBytes = ptr(sw.BufBytes[i]) })
	add("window", len(sw.Window),
		func(i int) string { return strconv.Itoa(sw.Window[i]) },
		func(sp *ScenarioSpec, i int) { sp.Window = ptr(sw.Window[i]) })
	add("lambda", len(sw.Lambda),
		func(i int) string { return strconv.Itoa(sw.Lambda[i]) },
		func(sp *ScenarioSpec, i int) { sp.Lambda = ptr(sw.Lambda[i]) })
	return out
}

// Cells expands the sweep into its cell list: the cross product of every
// non-empty axis over the base spec, in canonical order, each cell
// resolved, validated and content-addressed. An empty sweep (no axes) is
// the base job as a single cell. Expansion is deterministic: the same
// SweepSpec always yields the same cells with the same keys, no matter
// which process (CLI or daemon) expands it.
func (sw SweepSpec) Cells() ([]SweepCell, error) {
	axes := sw.axes()
	total := 1
	for _, ax := range axes {
		// Check per factor, so a pathological axis list cannot overflow
		// the product past the guard.
		if total *= ax.n; total > maxSweepCells {
			return nil, fmt.Errorf("sweep expands to over %d cells, limit %d", total, maxSweepCells)
		}
	}
	cells := make([]SweepCell, 0, total)
	idx := make([]int, len(axes))
	for {
		sp := sw.Base
		av := make([]AxisValue, len(axes))
		for a, ax := range axes {
			ax.apply(&sp, idx[a])
			av[a] = AxisValue{Axis: ax.name, Value: ax.value(idx[a])}
		}
		key, err := sp.CacheKey() // resolves and validates the cell
		if err != nil {
			return nil, fmt.Errorf("sweep cell %v: %w", av, err)
		}
		cells = append(cells, SweepCell{Spec: sp, Key: key, Axes: av})
		// Odometer increment, innermost (last) axis fastest.
		a := len(axes) - 1
		for ; a >= 0; a-- {
			if idx[a]++; idx[a] < axes[a].n {
				break
			}
			idx[a] = 0
		}
		if a < 0 {
			return cells, nil
		}
	}
}

// ParseSweepSpec decodes a JSON sweep spec strictly (unknown fields are
// errors), mirroring ParseSpec.
func ParseSweepSpec(data []byte) (SweepSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sw SweepSpec
	if err := dec.Decode(&sw); err != nil {
		return SweepSpec{}, fmt.Errorf("bad sweep spec: %w", err)
	}
	return sw, nil
}

// CellResult is one cell's outcome in a sweep result table.
type CellResult struct {
	Cell    SweepCell
	Cached  bool // served from the store, no simulation
	PerSeed []metrics.Summary
	Mean    metrics.Summary
}

// CellResultOf packages a cell's per-seed summaries as the store's
// Result record — the one serialization the daemon and the CLIs share.
// Timing blocks are stripped first: stored bytes are identical whether
// or not the producing run was profiled.
func CellResultOf(cell SweepCell, perSeed []metrics.Summary) (*resultcache.Result, error) {
	canon, err := cell.Spec.CanonicalJSON()
	if err != nil {
		return nil, err
	}
	perSeed = StripTiming(perSeed)
	return &resultcache.Result{
		Key:           cell.Key,
		CanonicalSpec: canon,
		Seeds:         cell.Spec.SeedList(),
		PerSeed:       perSeed,
		Mean:          metrics.Mean(perSeed),
	}, nil
}

// StripTiming returns the summaries with any engine-profile timing
// blocks removed — the deterministic (cacheable) part of a profiled
// run's output. The input is never modified; timing-free input is
// returned as-is, alias and all.
func StripTiming(ss []metrics.Summary) []metrics.Summary {
	hasTiming := false
	for i := range ss {
		if ss[i].Timing != nil {
			hasTiming = true
			break
		}
	}
	if !hasTiming {
		return ss
	}
	out := make([]metrics.Summary, len(ss))
	copy(out, ss)
	for i := range out {
		out[i].Timing = nil
	}
	return out
}

// RunSweep expands and executes a sweep: cells found in store are served
// from disk, the rest run as one flattened (cell, seed) job list on the
// shared pool and are persisted back. Cells sharing a content address
// (an axis repeating a value, or overriding the base to itself)
// simulate once and share their summaries, matching the daemon's
// coalescing. A nil store disables caching. Results come back in cell
// order. When every simulation succeeded but a cache write failed, the
// full results are returned alongside the write error — callers may
// report and keep the summaries.
func RunSweep(ctx context.Context, sw SweepSpec, store *resultcache.Store) ([]CellResult, error) {
	cells, err := sw.Cells()
	if err != nil {
		return nil, err
	}
	out := make([]CellResult, len(cells))
	var todo []int              // cell indices that must simulate
	primary := map[string]int{} // first uncached cell index per key
	dupOf := map[int]int{}      // duplicate-key cell index -> primary index
	for i, c := range cells {
		if res, ok := store.Get(c.Key); ok && len(res.PerSeed) == len(c.Spec.SeedList()) {
			out[i] = CellResult{Cell: c, Cached: true, PerSeed: res.PerSeed, Mean: res.Mean}
			continue
		}
		if p, ok := primary[c.Key]; ok {
			dupOf[i] = p
			continue
		}
		primary[c.Key] = i
		todo = append(todo, i)
	}
	var putErr error
	if len(todo) > 0 {
		specs := make([]ScenarioSpec, len(todo))
		for k, i := range todo {
			specs[k] = cells[i].Spec
		}
		// Trace fast path: cells that share a recorded world (protocol/
		// routing-only axes) record the base world's contact script once
		// per seed and replay it for every cell, instead of re-simulating
		// mobility per cell. Trace never enters the cache key, so the
		// results are served and stored exactly as live ones.
		if recs := applyTracePlan(specs, store); len(recs) > 0 {
			if err := recordTraces(ctx, recs, store); err != nil {
				return nil, err
			}
		}
		perSpec, err := RunSpecsStore(ctx, specs, store)
		if err != nil {
			return nil, err
		}
		for k, i := range todo {
			out[i] = CellResult{Cell: cells[i], PerSeed: perSpec[k], Mean: metrics.Mean(perSpec[k])}
			res, err := CellResultOf(cells[i], perSpec[k])
			if err == nil {
				err = store.Put(res)
			}
			if err != nil && putErr == nil {
				putErr = fmt.Errorf("cache cell %s: %w", cells[i].Key[:12], err)
			}
		}
	}
	for i, p := range dupOf {
		out[i] = CellResult{Cell: cells[i], PerSeed: out[p].PerSeed, Mean: out[p].Mean}
	}
	return out, putErr
}
