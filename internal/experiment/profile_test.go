package experiment

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
)

// TestProfiledParity pins the profiler's bit-neutrality contract: a
// profiled run's summary, minus the timing block itself, is byte-for-byte
// identical to an unprofiled run's — on the serial and the sharded tick
// path. If instrumentation ever perturbs simulation state (an extra RNG
// draw, a reordered callback), this catches it.
func TestProfiledParity(t *testing.T) {
	for _, tc := range []struct {
		name   string
		shards int
	}{{"serial", 0}, {"sharded", 2}} {
		t.Run(tc.name, func(t *testing.T) {
			s := Quick()
			s.Nodes = 30
			s.Duration = 600
			s.Shards = tc.shards
			want := s.Run()
			if want.Timing != nil {
				t.Fatal("unprofiled run grew a timing block")
			}

			sp := s
			sp.Profile = true
			got := sp.Run()
			if got.Timing == nil {
				t.Fatal("profiled run has no timing block")
			}
			tm := got.Timing
			got.Timing = nil
			wantJSON, _ := json.Marshal(want)
			gotJSON, _ := json.Marshal(got)
			if string(wantJSON) != string(gotJSON) {
				t.Fatalf("profiling changed the summary:\n  off %s\n  on  %s", wantJSON, gotJSON)
			}

			if tm.Runs != 1 || tm.Ticks == 0 {
				t.Fatalf("timing header runs=%d ticks=%d", tm.Runs, tm.Ticks)
			}
			for _, ph := range []string{"mobility", "scan"} {
				if tm.PhaseSeconds(ph) <= 0 {
					t.Fatalf("phase %q booked no time: %+v", ph, tm.Phases)
				}
			}
			if tc.shards > 0 {
				if len(tm.ShardBusySeconds) < tc.shards {
					t.Fatalf("sharded run reported %d shard busy entries, want >= %d", len(tm.ShardBusySeconds), tc.shards)
				}
				if tm.PhaseSeconds("merge") <= 0 {
					t.Fatal("sharded run booked no merge time")
				}
			} else if tm.PhaseSeconds("merge") != 0 {
				t.Fatal("serial run booked merge time")
			}
			if tm.ExchangeCount == 0 {
				t.Fatal("no routing exchanges booked despite contacts")
			}
		})
	}
}

// TestProfiledReplayParity runs the trace record/replay path profiled:
// the replayed summary must stay bit-identical to the live run (timing
// stripped), and the replay's timing must book the script phase instead
// of the detector phases.
func TestProfiledReplayParity(t *testing.T) {
	store := openStore(t)
	s := Quick()
	s.Nodes = 24
	s.Duration = 400
	s.Profile = true

	s.Trace = "record"
	live, done, err := runScenario(context.Background(), s, store, nil)
	if err != nil || !done {
		t.Fatalf("record run: done=%v err=%v", done, err)
	}
	s.Trace = "replay"
	replayed, done, err := runScenario(context.Background(), s, store, nil)
	if err != nil || !done {
		t.Fatalf("replay run: done=%v err=%v", done, err)
	}

	liveJSON, _ := json.Marshal(StripTiming([]metrics.Summary{live}))
	repJSON, _ := json.Marshal(StripTiming([]metrics.Summary{replayed}))
	if string(liveJSON) != string(repJSON) {
		t.Fatalf("profiled replay diverged from live:\n  live   %s\n  replay %s", liveJSON, repJSON)
	}
	if live.Timing == nil || live.Timing.PhaseSeconds("mobility") <= 0 {
		t.Fatal("live recording run lacks detector timing")
	}
	tm := replayed.Timing
	if tm == nil {
		t.Fatal("replay run has no timing block")
	}
	if tm.PhaseSeconds("script") <= 0 {
		t.Fatalf("replay booked no script time: %+v", tm.Phases)
	}
	if tm.PhaseSeconds("mobility") != 0 || tm.PhaseSeconds("scan") != 0 {
		t.Fatalf("replay booked detector phases: %+v", tm.Phases)
	}
}

func TestStripTiming(t *testing.T) {
	plain := []metrics.Summary{{Generated: 1}}
	if got := StripTiming(plain); &got[0] != &plain[0] {
		t.Fatal("timing-free input should be returned as-is")
	}
	timed := []metrics.Summary{{Generated: 1, Timing: &obs.Timing{Runs: 1}}, {Generated: 2}}
	got := StripTiming(timed)
	if got[0].Timing != nil || got[1].Timing != nil {
		t.Fatal("timing survived stripping")
	}
	if timed[0].Timing == nil {
		t.Fatal("StripTiming modified its input")
	}
	if got[0].Generated != 1 || got[1].Generated != 2 {
		t.Fatal("stripping altered summary values")
	}
	// Mean over stripped summaries stays timing-free; over profiled ones
	// it folds the blocks.
	if m := metrics.Mean(got); m.Timing != nil {
		t.Fatal("mean of stripped summaries grew timing")
	}
	if m := metrics.Mean(timed); m.Timing == nil || m.Timing.Runs != 1 {
		t.Fatalf("mean of profiled summaries lost timing: %+v", m.Timing)
	}
}

// TestCachedCellIsTimingFree pins that profiled sweep results enter the
// content-addressed store without their timing blocks: the stored bytes
// are identical whether or not the producing run was profiled.
func TestCachedCellIsTimingFree(t *testing.T) {
	sp := ScenarioSpec{
		Nodes:    Ptr(20),
		Duration: Ptr(300.0),
		Seeds:    []int64{1},
		Profile:  Ptr(true),
	}
	cells, err := (SweepSpec{Base: sp}).Cells()
	if err != nil {
		t.Fatal(err)
	}
	cell := cells[0]
	sums, err := RunSpecContext(context.Background(), cell.Spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sums[0].Timing == nil {
		t.Fatal("profiled cell run produced no timing")
	}
	res, err := CellResultOf(cell, sums)
	if err != nil {
		t.Fatal(err)
	}
	for i, ps := range res.PerSeed {
		if ps.Timing != nil {
			t.Fatalf("seed %d timing leaked into the cacheable result", i)
		}
	}
	if res.Mean.Timing != nil {
		t.Fatal("mean timing leaked into the cacheable result")
	}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != "" && jsonContains(raw, "timing") {
		t.Fatalf("serialized result mentions timing: %s", raw)
	}
}

func jsonContains(raw []byte, sub string) bool {
	return json.Valid(raw) && containsStr(string(raw), `"`+sub+`"`)
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestProfilerOverheadGate is the CI-facing soft gate on the DISABLED
// instrumentation path: attaching no profiler must cost nothing
// measurable. The phase boundaries compile to a nil check each, so the
// profiled-off run should track the margin easily; the generous bound
// absorbs CI scheduling noise while still catching a gross regression
// (instrumentation accidentally moved inside a per-node or per-pair
// loop). BenchmarkProfilerOverhead reports the precise ratio.
func TestProfilerOverheadGate(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	s := Quick()
	s.Nodes = 60
	s.Duration = 400

	run := func(profile bool) time.Duration {
		best := time.Duration(1<<62 - 1)
		for rep := 0; rep < 3; rep++ {
			sc := s
			sc.Profile = profile
			t0 := time.Now()
			sc.Run()
			if el := time.Since(t0); el < best {
				best = el
			}
		}
		return best
	}
	run(false) // warm caches (map memoization, allocator)
	off := run(false)
	on := run(true)
	if float64(on) > float64(off)*1.25 {
		t.Fatalf("profiler-enabled run %v vs disabled %v: over the 25%% noise gate", on, off)
	}
	t.Logf("profiler overhead: disabled %v, enabled %v (%.2fx)", off, on, float64(on)/float64(off))
}

// BenchmarkProfilerOverhead reports tick cost with the profiler off and
// on, on a CityScale-shaped world shrunk to bench-smoke size. CI runs it
// alongside BenchmarkCityScale (which always runs the disabled path) so
// regressions in either path surface as benchmark deltas.
func BenchmarkProfilerOverhead(b *testing.B) {
	for _, mode := range []struct {
		name    string
		profile bool
	}{{"off", false}, {"on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			s := smallCity(1000)
			w, runner := s.Build()
			var prof *obs.EngineProf
			if mode.profile {
				prof = &obs.EngineProf{}
				w.SetProfiler(prof)
				runner.Prof = prof
			}
			runner.Run(5) // warm up: first contacts, wheel, scratch sizing
			start := runner.Now()
			b.ResetTimer()
			runner.Run(start + float64(b.N)*s.Tick)
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ticks/s")
			if mode.profile && prof.Timing().Ticks == 0 {
				b.Fatal("profiler booked no ticks")
			}
		})
	}
}
