package experiment

import (
	"math"

	"repro/internal/metrics"
)

// Spread summarises the across-seed distribution of one metric: the mean,
// the sample standard deviation and the half-width of the 95% confidence
// interval (normal approximation — the paper averages 10 runs per point
// without reporting spread; we report it so shape claims can be judged).
type Spread struct {
	Mean, StdDev, CI95 float64
	N                  int
}

// SpreadOf computes the spread of metric m over per-seed summaries.
func SpreadOf(sums []metrics.Summary, m Metric) Spread {
	n := len(sums)
	if n == 0 {
		return Spread{}
	}
	mean := 0.0
	for _, s := range sums {
		mean += m.Get(s)
	}
	mean /= float64(n)
	if n == 1 {
		return Spread{Mean: mean, N: 1}
	}
	varsum := 0.0
	for _, s := range sums {
		d := m.Get(s) - mean
		varsum += d * d
	}
	sd := math.Sqrt(varsum / float64(n-1))
	return Spread{
		Mean:   mean,
		StdDev: sd,
		CI95:   1.96 * sd / math.Sqrt(float64(n)),
		N:      n,
	}
}

// SpreadPoint is one sweep position with per-metric spreads.
type SpreadPoint struct {
	X       float64
	Spreads map[string]Spread
}

// NodeSweepWithSpread runs base at every node count keeping the per-seed
// distribution for each paper metric.
func NodeSweepWithSpread(base Scenario, counts []int, nSeeds int) []SpreadPoint {
	var out []SpreadPoint
	for _, n := range counts {
		s := base
		s.Nodes = n
		sums := RunSeeds(s, Seeds(nSeeds))
		p := SpreadPoint{X: float64(n), Spreads: make(map[string]Spread, len(PaperMetrics))}
		for _, m := range PaperMetrics {
			p.Spreads[m.Name] = SpreadOf(sums, m)
		}
		out = append(out, p)
	}
	return out
}

// Overlaps reports whether two spreads' 95% intervals overlap — the
// cheap "is A really above B?" check used when judging orderings.
func Overlaps(a, b Spread) bool {
	lo := math.Max(a.Mean-a.CI95, b.Mean-b.CI95)
	hi := math.Min(a.Mean+a.CI95, b.Mean+b.CI95)
	return lo <= hi
}
