package experiment

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/metrics"
)

// Point is one x-position of a series with its averaged metrics.
type Point struct {
	X       float64
	Summary metrics.Summary
}

// Series is a named curve, e.g. one protocol across node counts.
type Series struct {
	Name   string
	Points []Point
}

// Metric extracts one plotted quantity from a summary.
type Metric struct {
	Name   string
	Format string
	Get    func(metrics.Summary) float64
}

// The three metrics of every figure in the paper.
var (
	MetricDeliveryRatio = Metric{Name: "Delivery Ratio", Format: "%.3f", Get: func(s metrics.Summary) float64 { return s.DeliveryRatio }}
	MetricLatency       = Metric{Name: "Latency (s)", Format: "%.1f", Get: func(s metrics.Summary) float64 { return s.AvgLatency }}
	MetricGoodput       = Metric{Name: "Goodput", Format: "%.4f", Get: func(s metrics.Summary) float64 { return s.Goodput }}
)

// PaperMetrics lists the paper's three metrics in subfigure order (a, b, c).
var PaperMetrics = []Metric{MetricDeliveryRatio, MetricLatency, MetricGoodput}

// NodeSweep runs base at every node count, averaging nSeeds seeds per
// point, and returns one series named after the protocol. All (point,
// seed) combinations run through one bounded worker pool.
func NodeSweep(base Scenario, counts []int, nSeeds int) Series {
	return NodeSweepMulti([]Scenario{base}, counts, nSeeds)[0]
}

// NodeSweepMulti runs every base scenario at every node count, averaging
// nSeeds seeds per point. The full (base, count, seed) cross product is
// flattened into one job list over the bounded worker pool, so a whole
// figure's worth of curves saturates all cores with bounded memory. One
// series per base is returned, named after its protocol.
func NodeSweepMulti(bases []Scenario, counts []int, nSeeds int) []Series {
	cells := make([]Scenario, 0, len(bases)*len(counts))
	for _, b := range bases {
		for _, n := range counts {
			s := b
			s.Nodes = n
			cells = append(cells, s)
		}
	}
	means := meanGroups(RunBatch(expand(cells, nSeeds)), nSeeds)
	out := make([]Series, len(bases))
	for i, b := range bases {
		se := Series{Name: string(b.Protocol)}
		for j, n := range counts {
			se.Points = append(se.Points, Point{X: float64(n), Summary: means[i*len(counts)+j]})
		}
		out[i] = se
	}
	return out
}

// Sweep1D runs base once per value of a scalar parameter applied by set,
// averaging nSeeds seeds per point. All (value, seed) combinations run
// through one bounded worker pool.
func Sweep1D(name string, base Scenario, values []float64, set func(*Scenario, float64), nSeeds int) Series {
	cells := make([]Scenario, 0, len(values))
	for _, v := range values {
		s := base
		set(&s, v)
		cells = append(cells, s)
	}
	means := meanGroups(RunBatch(expand(cells, nSeeds)), nSeeds)
	se := Series{Name: name}
	for i, v := range values {
		se.Points = append(se.Points, Point{X: v, Summary: means[i]})
	}
	return se
}

// RenderTable prints one aligned table per metric: rows are x-values,
// columns are series — the textual equivalent of one sub-figure.
func RenderTable(w io.Writer, title, xLabel string, series []Series, m Metric) {
	fmt.Fprintf(w, "%s — %s\n", title, m.Name)
	xs := collectXs(series)
	header := []string{xLabel}
	for _, s := range series {
		header = append(header, s.Name)
	}
	rows := [][]string{header}
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, s := range series {
			v, ok := lookup(s, x)
			if !ok {
				row = append(row, "-")
				continue
			}
			row = append(row, fmt.Sprintf(m.Format, v.Get(m)))
		}
		rows = append(rows, row)
	}
	writeAligned(w, rows)
	fmt.Fprintln(w)
}

// WriteCSV emits "x,series,metric,value" rows for every series, metric and
// point — machine-readable figure data.
func WriteCSV(w io.Writer, xLabel string, series []Series, ms []Metric) {
	fmt.Fprintf(w, "%s,series,metric,value\n", strings.ReplaceAll(xLabel, " ", "_"))
	for _, s := range series {
		for _, p := range s.Points {
			for _, m := range ms {
				fmt.Fprintf(w, "%s,%s,%s,%s\n", trimFloat(p.X), s.Name,
					strings.ReplaceAll(m.Name, " ", "_"), fmt.Sprintf(m.Format, m.Get(p.Summary)))
			}
		}
	}
}

func (p Point) Get(m Metric) float64 { return m.Get(p.Summary) }

func collectXs(series []Series) []float64 {
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	return xs
}

func lookup(s Series, x float64) (Point, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p, true
		}
	}
	return Point{}, false
}

func trimFloat(x float64) string {
	if x == float64(int64(x)) {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}

func writeAligned(w io.Writer, rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, len(rows[0]))
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for _, r := range rows {
		for i, c := range r {
			fmt.Fprintf(w, "%-*s", widths[i]+2, c)
		}
		fmt.Fprintln(w)
	}
}
