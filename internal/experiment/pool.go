package experiment

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
)

// This file is the experiment layer's execution engine: one bounded worker
// pool that every sweep and multi-seed run funnels through.
//
// The previous design parallelised only across seeds — RunSeeds spawned
// one goroutine per seed with no cap — while sweep points and protocols
// ran sequentially. A Figure-2 regeneration (6 protocols x 6 node counts
// x 5 seeds = 180 simulations) therefore alternated between bursts of
// unbounded goroutines (each world is tens of MB) and single-threaded
// stretches. Flattening every (protocol, point, seed) combination into one
// job list executed by GOMAXPROCS workers keeps all cores busy for the
// whole sweep with bounded memory, and scales to arbitrarily long job
// lists. Results are written by index, so output order — and every
// simulation itself, seeded independently — is deterministic regardless
// of scheduling.

// RunBatch executes every scenario through the shared bounded worker pool
// and returns their summaries in input order.
func RunBatch(ss []Scenario) []metrics.Summary {
	out := make([]metrics.Summary, len(ss))
	forEachJob(len(ss), func(i int) {
		out[i] = ss[i].Run()
	})
	return out
}

// simSlots bounds the simulations *executing* at any instant across the
// whole process at GOMAXPROCS (sized at init; later GOMAXPROCS changes
// are not tracked). A single forEachJob call never blocks on it — its
// worker count already respects the bound — but concurrent callers (dtnd
// runs jobs as they arrive) share the permits instead of multiplying
// worker sets, so the machine is never oversubscribed with worlds that
// are tens of MB each. Simulations never start simulations, so permit
// acquisition cannot nest and cannot deadlock.
var simSlots = make(chan struct{}, runtime.GOMAXPROCS(0))

// forEachJob runs job(0..n-1) on min(GOMAXPROCS, n) workers, handing out
// indices through an atomic counter so fast workers steal remaining work.
// Each executing job additionally holds a process-wide simSlots permit.
func forEachJob(n int, job func(i int)) {
	forEachJobCtx(nil, n, job)
}

// forEachJobCtx is forEachJob with cooperative cancellation: once ctx is
// cancelled, jobs not yet started are skipped — including jobs still
// waiting for a process-wide permit, so a cancelled sweep queued behind a
// busy machine releases immediately instead of holding its place in line.
// Jobs already executing are the caller's to stop (RunContext polls the
// same ctx). A nil ctx never cancels.
func forEachJobCtx(ctx context.Context, n int, job func(i int)) {
	runJob := func(i int) {
		if ctx != nil {
			select {
			case simSlots <- struct{}{}:
			case <-ctx.Done():
				return
			}
		} else {
			simSlots <- struct{}{}
		}
		defer func() { <-simSlots }()
		if ctx != nil && ctx.Err() != nil {
			return
		}
		job(i)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			runJob(i)
		}
		return
	}
	// A panic on a worker goroutine would kill the process no matter what
	// the caller deferred (dtnd contains per-job panics with recover), so
	// workers capture the first panic and forEachJob re-raises it on the
	// calling goroutine — CLI runs still crash with a stack, servers can
	// contain it.
	var panicOnce sync.Once
	var panicVal any
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicVal = r })
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				runJob(i)
			}
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}

// expand returns one scenario per (base, seed 1..nSeeds) pair, flattening
// the seed axis into the job list.
func expand(bases []Scenario, nSeeds int) []Scenario {
	out := make([]Scenario, 0, len(bases)*nSeeds)
	for _, b := range bases {
		for s := 1; s <= nSeeds; s++ {
			sc := b
			sc.Seed = int64(s)
			out = append(out, sc)
		}
	}
	return out
}

// meanGroups averages consecutive groups of size nSeeds from flat
// summaries produced by RunBatch(expand(...)).
func meanGroups(flat []metrics.Summary, nSeeds int) []metrics.Summary {
	out := make([]metrics.Summary, 0, len(flat)/nSeeds)
	for i := 0; i+nSeeds <= len(flat); i += nSeeds {
		out = append(out, metrics.Mean(flat[i:i+nSeeds]))
	}
	return out
}
