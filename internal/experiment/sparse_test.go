package experiment

import (
	"runtime"
	"testing"
)

// figureScaleScenario is a Figure-2-scale configuration heavy enough to
// exercise quota splits, single-copy forwarding, MI gossip and ack purges
// in every estimator-backed protocol.
func figureScaleScenario(p Protocol) Scenario {
	s := Default()
	s.Protocol = p
	s.Nodes = 40
	s.Duration = 1500
	s.Tick = 0.5
	return s
}

// TestSparseEstimatorParity is the storage-mode contract: at figure scale
// the sparse estimator core (observed-peer history/MI/probability rows,
// heap MEMD and cost Dijkstras) must produce bit-identical summaries to
// the dense core for every protocol that consumes it, including the A2
// ablation's store-only MD path. Only memory and complexity may differ
// between modes — never a routing decision.
func TestSparseEstimatorParity(t *testing.T) {
	if testing.Short() {
		t.Skip("8 figure-scale simulations in -short mode")
	}
	for _, p := range []Protocol{EER, CR, MaxProp, EERMeanMD} {
		t.Run(string(p), func(t *testing.T) {
			dense := figureScaleScenario(p)
			dense.SparseEstimators = false
			sparse := dense
			sparse.SparseEstimators = true
			want, got := dense.Run(), sparse.Run()
			if want != got {
				t.Fatalf("sparse diverged from dense:\n  dense  %+v\n  sparse %+v", want, got)
			}
		})
	}
}

// TestSparseAutoSelection pins the selection rule: explicit opt-in or the
// node-count threshold turns the sparse core on.
func TestSparseAutoSelection(t *testing.T) {
	s := Default()
	if s.sparseEstimators() {
		t.Error("figure-scale default should use the dense core")
	}
	s.SparseEstimators = true
	if !s.sparseEstimators() {
		t.Error("explicit SparseEstimators ignored")
	}
	s = CityScale()
	if s.Nodes < SparseNodeThreshold || !s.sparseEstimators() {
		t.Errorf("CityScale (%d nodes) must auto-select the sparse core", s.Nodes)
	}
}

// cityScaleShort returns the full 10k-node CityScale world with a short
// simulated window, sized for `go test` budgets.
func cityScaleShort(p Protocol, duration float64) Scenario {
	s := CityScale()
	s.Protocol = p
	s.Duration = duration
	return s
}

// TestCityScaleSmartProtocols is the acceptance gate of the sparse
// estimator core: the paper's contribution protocols (EER, CR) and
// MaxProp, previously unusable beyond a few hundred nodes, must tick a
// 10k-node city world. A short window keeps the test inside `go test`
// budgets; contacts at this density arrive within seconds.
func TestCityScaleSmartProtocols(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-node worlds in -short mode")
	}
	for _, p := range []Protocol{EER, CR, MaxProp} {
		t.Run(string(p), func(t *testing.T) {
			s := cityScaleShort(p, 40)
			w, runner := s.Build()
			if w.N() < 10000 {
				t.Fatalf("city scale shrank: %d nodes", w.N())
			}
			runner.Run(s.Duration)
			sum := w.Metrics.Summary()
			if sum.Contacts == 0 {
				t.Fatal("no contacts in a 10k-node city window")
			}
			if sum.Generated == 0 {
				t.Fatal("no traffic generated")
			}
		})
	}
}

// TestCityScaleSparseEERMemory is the o(n²) regression gate: a 10k-node
// EER world must not allocate estimator state anywhere near n² entries.
// One dense float64 matrix alone would be 8·10⁸ B (800 MB) — and the dense
// core would need one per node. The bound below (40 KB/node on average)
// is two orders of magnitude under a single shared n² allocation while
// leaving room for the engine, buffers and early contact records.
func TestCityScaleSparseEERMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-node world in -short mode")
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	s := cityScaleShort(EER, 20)
	w, runner := s.Build()
	runner.Run(s.Duration) // tick a little so estimator state materialises
	runtime.GC()
	runtime.ReadMemStats(&after)
	delta := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	const limit = 400 << 20
	if delta > limit {
		t.Fatalf("sparse EER city world holds %d MB, over the %d MB o(n²) budget",
			delta>>20, int64(limit)>>20)
	}
	if w.N() < 10000 {
		t.Fatalf("city scale shrank: %d nodes", w.N())
	}
	runtime.KeepAlive(runner)
}

// BenchmarkCityScaleSparse measures tick throughput of the 10k-node city
// world under the estimator-backed protocols the sparse core unlocked
// (CityScale's default SprayAndWait is covered by BenchmarkCityScale).
// CI's bench-smoke job runs the EER variant at one iteration so the sparse
// path cannot silently rot.
func BenchmarkCityScaleSparse(b *testing.B) {
	for _, p := range []Protocol{EER, CR, MaxProp} {
		b.Run(string(p), func(b *testing.B) {
			s := CityScale()
			s.Protocol = p
			w, runner := s.Build()
			runner.Run(5) // warm up: first contacts, wheel, scratch sizing
			start := runner.Now()
			b.ResetTimer()
			runner.Run(start + float64(b.N)*s.Tick)
			b.StopTimer()
			if w.N() < 10000 {
				b.Fatalf("city scale shrank: %d nodes", w.N())
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ticks/s")
		})
	}
}

// BenchmarkCityScaleBuild measures world construction, which the
// splitmix64-backed xrand made cheap: deriving one stream per node used to
// dominate 10k-node setup via math/rand's 607-word seeding.
func BenchmarkCityScaleBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := CityScale()
		w, _ := s.Build()
		if w.N() < 10000 {
			b.Fatal("city scale shrank")
		}
	}
}
