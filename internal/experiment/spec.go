package experiment

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"sync"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/resultcache"
)

// This file is the declarative face of the experiment layer: ScenarioSpec
// is a JSON document describing one simulation job — a preset name plus
// field overrides — that resolves to exactly one Scenario and seed list.
// The named presets re-express the hard-coded scenario constructors
// (Quick, CityScale, the Figure-2 column base) as specs, so "a scenario
// someone imagined" and "a scenario the paper ran" travel through one code
// path: spec → resolve → validate → Scenario. dtnd accepts specs over
// HTTP; the canonical serialization of the resolved job is hashed into the
// content address its result cache is keyed by.

// SpecVersion is baked into every cache key. Bump it whenever simulation
// semantics change (protocol behaviour, RNG streams, engine physics), so
// stale cached results can never be served for a new engine.
const SpecVersion = 1

// ScenarioSpec is a declarative simulation job: a base preset and a set of
// optional overrides. Pointer fields distinguish "leave the preset value"
// (absent) from "set to the zero value" (explicit 0/false). The zero spec
// resolves to the paper's Section V-A defaults with seed 1.
type ScenarioSpec struct {
	// Preset names the base scenario: "default" (or empty), "quick",
	// "figure2" (alias of default — the Figure-2 column base; pick
	// protocol and nodes per point), "cityscale" or "metroscale".
	Preset string `json:"preset,omitempty"`

	Protocol *string `json:"protocol,omitempty"`
	Nodes    *int    `json:"nodes,omitempty"`
	// Seeds lists the seeds to run and average over; default [1].
	Seeds []int64 `json:"seeds,omitempty"`

	// Protocol parameters.
	Lambda            *int     `json:"lambda,omitempty"`
	Alpha             *float64 `json:"alpha,omitempty"`
	Window            *int     `json:"window,omitempty"`
	ForwardHysteresis *float64 `json:"forward_hysteresis,omitempty"`
	SparseEstimators  *bool    `json:"sparse_estimators,omitempty"`
	MaxSparseRows     *int     `json:"max_sparse_rows,omitempty"`
	// Gossip selects the estimator exchange metering: "fresher" (default),
	// "flood" or "delta" (see Scenario.Gossip).
	Gossip *string `json:"gossip,omitempty"`

	// Simulation parameters.
	Duration *float64 `json:"duration,omitempty"`
	Tick     *float64 `json:"tick,omitempty"`
	// Shards accepts a worker count or the string "auto" (size to the
	// machine's cores at run time).
	Shards *ShardCount `json:"shards,omitempty"`

	// Physical layer.
	Range     *float64 `json:"range,omitempty"`
	Bandwidth *float64 `json:"bandwidth,omitempty"`
	BufBytes  *int     `json:"buf_bytes,omitempty"`

	// Traffic.
	MsgSize        *int     `json:"msg_size,omitempty"`
	TTL            *float64 `json:"ttl,omitempty"`
	MsgIntervalMin *float64 `json:"msg_interval_min,omitempty"`
	MsgIntervalMax *float64 `json:"msg_interval_max,omitempty"`
	TrafficStop    *float64 `json:"traffic_stop,omitempty"`

	// Mobility.
	Mobility *string  `json:"mobility,omitempty"`
	MinSpeed *float64 `json:"min_speed,omitempty"`
	MaxSpeed *float64 `json:"max_speed,omitempty"`
	MinDwell *float64 `json:"min_dwell,omitempty"`
	MaxDwell *float64 `json:"max_dwell,omitempty"`
	MapSeed  *int64   `json:"map_seed,omitempty"`
	Map      *MapSpec `json:"map,omitempty"`

	// Trace selects the contact-trace fast path: "record", "replay" or
	// "auto" (see Scenario.Trace). It requires a result store (dtnd, or a
	// CLI with -cache) and never changes the result — replayed runs are
	// bit-identical to live ones — so it is excluded from the cache key.
	Trace *string `json:"trace,omitempty"`

	// Profile attaches the engine phase profiler (see Scenario.Profile):
	// fresh runs return summaries carrying a timing block. Profiling
	// never changes simulation results, so like Trace it is excluded
	// from the cache key — a cached (timing-free) result satisfies a
	// profiled request.
	Profile *bool `json:"profile,omitempty"`
}

// MapSpec overrides road-map generation parameters (mapgen.Config).
type MapSpec struct {
	Width        *float64 `json:"width,omitempty"`
	Height       *float64 `json:"height,omitempty"`
	GridX        *int     `json:"grid_x,omitempty"`
	GridY        *int     `json:"grid_y,omitempty"`
	Diagonals    *int     `json:"diagonals,omitempty"`
	Jitter       *float64 `json:"jitter,omitempty"`
	Lines        *int     `json:"lines,omitempty"`
	StopsPerLine *int     `json:"stops_per_line,omitempty"`
	Districts    *int     `json:"districts,omitempty"`
}

// ShardCount is a spec-level shard count: a JSON number, or the string
// "auto" for network.AutoShards (resolve to the machine's core count when
// the world is built — the right setting for presets that must scale to
// whatever machine runs them, like metroscale).
type ShardCount int

// AutoShards mirrors network.AutoShards at the spec level.
const AutoShards = ShardCount(network.AutoShards)

// UnmarshalJSON accepts a non-negative integer or the string "auto".
func (c *ShardCount) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		if s != "auto" {
			return fmt.Errorf("bad shards %q (want a count or \"auto\")", s)
		}
		*c = AutoShards
		return nil
	}
	var n int
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("bad shards %s (want a count or \"auto\")", data)
	}
	*c = ShardCount(n)
	return nil
}

// MarshalJSON emits "auto" for the sentinel so specs round-trip.
func (c ShardCount) MarshalJSON() ([]byte, error) {
	if c < 0 {
		return []byte(`"auto"`), nil
	}
	return json.Marshal(int(c))
}

// ParseShards parses a command-line shard count: a number, or "auto" for
// network.AutoShards. The CLIs share it so every -shards flag speaks the
// same dialect as the spec field.
func ParseShards(s string) (int, error) {
	if s == "auto" {
		return network.AutoShards, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad shards %q (want a count or \"auto\")", s)
	}
	return n, nil
}

// ptr returns a pointer to v — spec-literal shorthand.
func ptr[T any](v T) *T { return &v }

// Ptr returns a pointer to v: shorthand for building ScenarioSpec
// override fields (cmd/sweep and cmd/figures assemble bases with it).
func Ptr[T any](v T) *T { return &v }

// QuickSpec declares the scaled-down test scenario (Quick) as a spec.
func QuickSpec() ScenarioSpec {
	return ScenarioSpec{
		Nodes:    ptr(60),
		Duration: ptr(2500.0),
		Tick:     ptr(0.5),
	}
}

// CityScaleSpec declares the >=10k-node city scenario (CityScale) as a
// spec: a metropolitan-sized map, "city" mobility (buses + district
// walkers) and an engine-benchmark default protocol.
func CityScaleSpec() ScenarioSpec {
	return ScenarioSpec{
		Protocol: ptr(string(SprayAndWait)),
		Nodes:    ptr(10000),
		Mobility: ptr("city"),
		Duration: ptr(600.0),
		Tick:     ptr(0.5),
		Map: &MapSpec{
			Width:        ptr(12000.0),
			Height:       ptr(9000.0),
			GridX:        ptr(40),
			GridY:        ptr(30),
			Diagonals:    ptr(8),
			Lines:        ptr(40),
			StopsPerLine: ptr(8),
			Districts:    ptr(8),
		},
	}
}

// MetroScaleSpec declares the 100k-node metropolitan scenario: a city map
// double CityScale's extent with triple the transit lines and districts,
// auto-sized tick sharding (sub-grid re-bucketing keeps the serial merge
// boundary-only at this density) and delta gossip — at 100k nodes a smart
// protocol's link-state exchange is the dominant byte stream, so the
// estimator runs the digest protocol rather than the accounting-only
// default. The default protocol is EER over the sparse estimator core;
// Duration is kept short (the fleet covers the map from tick one, so even
// minutes of simulated time exercise steady-state churn) and can be
// overridden for long-horizon runs.
func MetroScaleSpec() ScenarioSpec {
	return ScenarioSpec{
		Protocol:       ptr(string(EER)),
		Nodes:          ptr(100_000),
		Mobility:       ptr("city"),
		Duration:       ptr(300.0),
		Tick:           ptr(0.5),
		Shards:         ptr(AutoShards),
		Gossip:         ptr("delta"),
		MaxSparseRows:  ptr(256),
		MsgIntervalMin: ptr(5.0),
		MsgIntervalMax: ptr(10.0),
		Map: &MapSpec{
			Width:        ptr(24000.0),
			Height:       ptr(18000.0),
			GridX:        ptr(60),
			GridY:        ptr(45),
			Diagonals:    ptr(12),
			Lines:        ptr(120),
			StopsPerLine: ptr(10),
			Districts:    ptr(24),
		},
	}
}

// Figure2Spec declares one cell of the paper's Figure-2 sweep — protocol p
// at the given node count — as a spec over the default (Section V-A) base.
func Figure2Spec(p Protocol, nodes int, seeds []int64) ScenarioSpec {
	return ScenarioSpec{
		Preset:   "figure2",
		Protocol: ptr(string(p)),
		Nodes:    ptr(nodes),
		Seeds:    seeds,
	}
}

// PresetSpecs returns the named base specs dtnd advertises. Each value
// resolves on top of the paper defaults, so presets themselves travel the
// same resolve path as user-authored specs.
func PresetSpecs() map[string]ScenarioSpec {
	return map[string]ScenarioSpec{
		"default":    {},
		"figure2":    {},
		"quick":      QuickSpec(),
		"cityscale":  CityScaleSpec(),
		"metroscale": MetroScaleSpec(),
	}
}

// presetScenario resolves a preset name to its base Scenario.
func presetScenario(name string) (Scenario, error) {
	switch name {
	case "", "default", "figure2":
		return Default(), nil
	case "quick":
		return QuickSpec().apply(Default()), nil
	case "cityscale":
		return CityScaleSpec().apply(Default()), nil
	case "metroscale":
		return MetroScaleSpec().apply(Default()), nil
	default:
		return Scenario{}, fmt.Errorf("unknown preset %q (have default, figure2, quick, cityscale, metroscale)", name)
	}
}

// apply overlays the spec's overrides onto base, without validation.
func (sp ScenarioSpec) apply(base Scenario) Scenario {
	s := base
	if sp.Protocol != nil {
		s.Protocol = Protocol(*sp.Protocol)
	}
	if sp.Nodes != nil {
		s.Nodes = *sp.Nodes
	}
	if sp.Lambda != nil {
		s.Lambda = *sp.Lambda
	}
	if sp.Alpha != nil {
		s.Alpha = *sp.Alpha
	}
	if sp.Window != nil {
		s.Window = *sp.Window
	}
	if sp.ForwardHysteresis != nil {
		s.ForwardHysteresis = *sp.ForwardHysteresis
	}
	if sp.SparseEstimators != nil {
		s.SparseEstimators = *sp.SparseEstimators
	}
	if sp.MaxSparseRows != nil {
		s.MaxSparseRows = *sp.MaxSparseRows
	}
	if sp.Gossip != nil {
		s.Gossip = *sp.Gossip
	}
	if sp.Duration != nil {
		s.Duration = *sp.Duration
	}
	if sp.Tick != nil {
		s.Tick = *sp.Tick
	}
	if sp.Shards != nil {
		s.Shards = int(*sp.Shards)
	}
	if sp.Range != nil {
		s.Range = *sp.Range
	}
	if sp.Bandwidth != nil {
		s.Bandwidth = *sp.Bandwidth
	}
	if sp.BufBytes != nil {
		s.BufBytes = *sp.BufBytes
	}
	if sp.MsgSize != nil {
		s.MsgSize = *sp.MsgSize
	}
	if sp.TTL != nil {
		s.TTL = *sp.TTL
	}
	if sp.MsgIntervalMin != nil {
		s.MsgIntervalMin = *sp.MsgIntervalMin
	}
	if sp.MsgIntervalMax != nil {
		s.MsgIntervalMax = *sp.MsgIntervalMax
	}
	if sp.TrafficStop != nil {
		s.TrafficStop = *sp.TrafficStop
	}
	if sp.Mobility != nil {
		s.Mobility = *sp.Mobility
	}
	if sp.MinSpeed != nil {
		s.MinSpeed = *sp.MinSpeed
	}
	if sp.MaxSpeed != nil {
		s.MaxSpeed = *sp.MaxSpeed
	}
	if sp.MinDwell != nil {
		s.MinDwell = *sp.MinDwell
	}
	if sp.MaxDwell != nil {
		s.MaxDwell = *sp.MaxDwell
	}
	if sp.MapSeed != nil {
		s.MapSeed = *sp.MapSeed
	}
	if sp.Trace != nil {
		s.Trace = *sp.Trace
	}
	if sp.Profile != nil {
		s.Profile = *sp.Profile
	}
	if m := sp.Map; m != nil {
		if m.Width != nil {
			s.Map.Width = *m.Width
		}
		if m.Height != nil {
			s.Map.Height = *m.Height
		}
		if m.GridX != nil {
			s.Map.GridX = *m.GridX
		}
		if m.GridY != nil {
			s.Map.GridY = *m.GridY
		}
		if m.Diagonals != nil {
			s.Map.Diagonals = *m.Diagonals
		}
		if m.Jitter != nil {
			s.Map.Jitter = *m.Jitter
		}
		if m.Lines != nil {
			s.Map.Lines = *m.Lines
		}
		if m.StopsPerLine != nil {
			s.Map.StopsPerLine = *m.StopsPerLine
		}
		if m.Districts != nil {
			s.Map.Districts = *m.Districts
		}
	}
	return s
}

// Scenario resolves the spec — preset base, then overrides — and
// validates the result. The returned scenario carries the first seed of
// the seed list; RunSpec substitutes the others.
func (sp ScenarioSpec) Scenario() (Scenario, error) {
	base, err := presetScenario(sp.Preset)
	if err != nil {
		return Scenario{}, err
	}
	s := sp.apply(base)
	s.Seed = sp.SeedList()[0]
	if len(sp.SeedList()) > maxSeeds {
		return Scenario{}, fmt.Errorf("at most %d seeds per job, got %d", maxSeeds, len(sp.SeedList()))
	}
	if err := validateScenario(s); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// SeedList returns the spec's seeds, defaulting to [1].
func (sp ScenarioSpec) SeedList() []int64 {
	if len(sp.Seeds) == 0 {
		return []int64{1}
	}
	return sp.Seeds
}

// Resource ceilings for spec-submitted jobs. dtnd is network-facing: a
// validated spec must not be able to wedge the daemon's only job slot or
// OOM the process, so beyond the engine's lower bounds, specs get upper
// bounds too. The limits are far above every paper scenario (CityScale is
// 10k nodes, 1.2k ticks, ~400 messages) yet small enough that an accepted
// job always terminates in bounded memory. CLI paths construct Scenario
// directly and are not subject to them.
const (
	maxNodes  = 200_000    // 20x CityScale; per-node engine state stays allocatable
	maxTicks  = 50_000_000 // duration/tick steps per seed
	maxEvents = 10_000_000 // generated messages per seed (duration/min interval)
	maxSeeds  = 64         // seeds per job
	maxShards = 256        // per-shard scratch is allocated eagerly; beyond cores it only slows ticks
)

// validateScenario rejects resolved scenarios the engine would panic on or
// silently misbehave with, and scenarios beyond the service ceilings.
func validateScenario(s Scenario) error {
	if _, ok := routerFactories[s.Protocol]; !ok {
		return fmt.Errorf("unknown protocol %q", s.Protocol)
	}
	switch s.Mobility {
	case "", "bus", "rwp", "city":
	default:
		return fmt.Errorf("unknown mobility model %q (have bus, rwp, city)", s.Mobility)
	}
	if s.Nodes < 2 {
		return fmt.Errorf("need at least two nodes, got %d", s.Nodes)
	}
	if s.Nodes > maxNodes {
		return fmt.Errorf("at most %d nodes, got %d", maxNodes, s.Nodes)
	}
	if s.Lambda < 1 {
		return fmt.Errorf("lambda must be >= 1, got %d", s.Lambda)
	}
	if s.Duration <= 0 {
		return fmt.Errorf("duration must be positive, got %g", s.Duration)
	}
	if s.Tick <= 0 {
		return fmt.Errorf("tick must be positive, got %g", s.Tick)
	}
	if s.Duration/s.Tick > maxTicks {
		return fmt.Errorf("duration/tick = %g steps exceeds the %d-step job ceiling", s.Duration/s.Tick, maxTicks)
	}
	if (s.Shards < 0 && s.Shards != network.AutoShards) || s.Shards > maxShards {
		return fmt.Errorf("shards must be in [0, %d] or %d (auto), got %d", maxShards, network.AutoShards, s.Shards)
	}
	if s.Range <= 0 || s.Bandwidth <= 0 {
		return fmt.Errorf("range and bandwidth must be positive, got %g and %g", s.Range, s.Bandwidth)
	}
	if s.MsgSize <= 0 {
		return fmt.Errorf("message size must be positive, got %d", s.MsgSize)
	}
	if s.TTL <= 0 {
		return fmt.Errorf("ttl must be positive, got %g", s.TTL)
	}
	if s.MsgIntervalMin <= 0 || s.MsgIntervalMax < s.MsgIntervalMin {
		return fmt.Errorf("message interval must satisfy 0 < min <= max, got [%g, %g]",
			s.MsgIntervalMin, s.MsgIntervalMax)
	}
	if s.Duration/s.MsgIntervalMin > maxEvents {
		return fmt.Errorf("duration/message interval = %g messages exceeds the %d-message job ceiling",
			s.Duration/s.MsgIntervalMin, maxEvents)
	}
	if s.MaxSparseRows < 0 {
		return fmt.Errorf("max_sparse_rows must be >= 0, got %d", s.MaxSparseRows)
	}
	if _, err := core.ParseExchangeMode(s.Gossip); err != nil {
		return err
	}
	switch s.Trace {
	case "", "record", "replay", "auto":
	default:
		return fmt.Errorf("unknown trace mode %q (have record, replay, auto)", s.Trace)
	}
	if s.Map.GridX < 2 || s.Map.GridY < 2 || s.Map.Lines < 1 || s.Map.StopsPerLine < 2 ||
		s.Map.Districts < 1 || s.Map.Width <= 0 || s.Map.Height <= 0 {
		return fmt.Errorf("degenerate map config %+v", s.Map)
	}
	return nil
}

// ParseSpec decodes a JSON spec strictly: unknown fields are errors, so a
// typo like "protocl" fails the submission instead of silently running the
// preset default.
func ParseSpec(data []byte) (ScenarioSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sp ScenarioSpec
	if err := dec.Decode(&sp); err != nil {
		return ScenarioSpec{}, fmt.Errorf("bad scenario spec: %w", err)
	}
	return sp, nil
}

// canonicalJob is the hashed cache-key payload: the fully resolved
// scenario (all defaults filled, per-run seed zeroed — the seed axis lives
// in Seeds) plus the spec version. Two specs that resolve to the same
// simulation share a key no matter how they were written; any semantic
// difference — one field, one seed — produces a different key.
type canonicalJob struct {
	Version  int
	Scenario Scenario
	Seeds    []int64
}

// CanonicalJSON returns the canonical serialization of the resolved job —
// the cache-key preimage, also useful for humans diffing what two specs
// actually run.
func (sp ScenarioSpec) CanonicalJSON() ([]byte, error) {
	s, err := sp.Scenario()
	if err != nil {
		return nil, err
	}
	s.Seed = 0
	return json.Marshal(canonicalJob{Version: SpecVersion, Scenario: s, Seeds: sp.SeedList()})
}

// CacheKey returns the content address of the spec's result: the SHA-256
// of its canonical serialization, hex-encoded.
func (sp ScenarioSpec) CacheKey() (string, error) {
	data, err := sp.CanonicalJSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// RunSpec executes the spec over its seed list through the shared bounded
// pool and returns the per-seed summaries in seed order.
func RunSpec(sp ScenarioSpec) ([]metrics.Summary, error) {
	return RunSpecProgress(sp, nil)
}

// RunSpecProgress is RunSpec with live progress: when progress is non-nil
// it receives throttled per-seed metrics.Progress events (from pool worker
// goroutines — the callback must be safe for concurrent use) whose Frac
// aggregates completion across all seeds. Observation does not perturb the
// run: summaries are bit-identical with and without a progress callback.
func RunSpecProgress(sp ScenarioSpec, progress func(metrics.Progress)) ([]metrics.Summary, error) {
	return RunSpecContext(nil, sp, progress)
}

// RunSpecContext is RunSpecProgress with cooperative cancellation: once
// ctx is cancelled, seeds not yet started are skipped (even while waiting
// for a pool permit) and running seeds stop after their current tick, so a
// cancelled dtnd job stops simulating and releases its compute promptly.
// It returns ctx.Err() on cancellation; a nil ctx never cancels, and a
// run that completes is bit-identical to an uncancellable one.
func RunSpecContext(ctx context.Context, sp ScenarioSpec, progress func(metrics.Progress)) ([]metrics.Summary, error) {
	return RunSpecStore(ctx, sp, nil, progress)
}

// RunSpecStore is RunSpecContext with a result store attached, enabling
// the spec's trace mode ("record"/"replay"/"auto"): recorded contact
// scripts are looked up and persisted there. A nil store runs every seed
// live ("auto" degrades gracefully; explicit "record"/"replay" error).
func RunSpecStore(ctx context.Context, sp ScenarioSpec, store *resultcache.Store, progress func(metrics.Progress)) ([]metrics.Summary, error) {
	s, err := sp.Scenario()
	if err != nil {
		return nil, err
	}
	seeds := sp.SeedList()
	sums := make([]metrics.Summary, len(seeds))
	errs := make([]error, len(seeds))

	var mu sync.Mutex
	fracs := make([]float64, len(seeds)) // per-seed completion in [0,1]
	emit := func(i int, t, duration float64) {
		mu.Lock()
		defer mu.Unlock()
		fracs[i] = t / duration
		total := 0.0
		for _, f := range fracs {
			total += f
		}
		// Deliver under the lock: events arrive in non-decreasing Frac
		// order even when seeds run on parallel workers. Callbacks are
		// cheap (dtnd appends to a slice), so serializing them costs
		// nothing against the simulation work between two emits.
		progress(metrics.Progress{
			Seed:     i,
			Seeds:    len(seeds),
			T:        t,
			Duration: duration,
			Frac:     total / float64(len(seeds)),
		})
	}

	forEachJobCtx(ctx, len(seeds), func(i int) {
		sc := s
		sc.Seed = seeds[i]
		var hook func(t float64)
		if progress != nil {
			hook = func(t float64) { emit(i, t, sc.Duration) }
		}
		sum, done, err := runScenario(ctx, sc, store, hook)
		if err != nil {
			errs[i] = fmt.Errorf("seed %d: %w", sc.Seed, err)
			return
		}
		if done {
			sums[i] = sum
		}
	})
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return sums, nil
}

// RunSpecsContext resolves and executes several specs as one flattened
// (spec, seed) job list over the shared bounded pool — the sweep
// execution path: every cell of a parameter grid makes progress
// concurrently instead of cell-by-cell. The per-spec, per-seed summaries
// come back indexed [spec][seed]; every spec is validated before any
// simulation starts. Cancellation follows RunSpecContext semantics.
func RunSpecsContext(ctx context.Context, sps []ScenarioSpec) ([][]metrics.Summary, error) {
	return RunSpecsStore(ctx, sps, nil)
}

// RunSpecsStore is RunSpecsContext with a result store attached: each
// spec's trace mode runs against it (see RunSpecStore). The sweep path
// uses it so protocol-only cells replay one recorded world per seed.
func RunSpecsStore(ctx context.Context, sps []ScenarioSpec, store *resultcache.Store) ([][]metrics.Summary, error) {
	type cellJob struct {
		scenario Scenario
		spec     int
		seed     int
	}
	var jobs []cellJob
	out := make([][]metrics.Summary, len(sps))
	for si, sp := range sps {
		s, err := sp.Scenario()
		if err != nil {
			return nil, fmt.Errorf("spec %d: %w", si, err)
		}
		seeds := sp.SeedList()
		out[si] = make([]metrics.Summary, len(seeds))
		for i, seed := range seeds {
			sc := s
			sc.Seed = seed
			jobs = append(jobs, cellJob{scenario: sc, spec: si, seed: i})
		}
	}
	errs := make([]error, len(jobs))
	forEachJobCtx(ctx, len(jobs), func(i int) {
		j := jobs[i]
		sum, done, err := runScenario(ctx, j.scenario, store, nil)
		if err != nil {
			errs[i] = fmt.Errorf("spec %d seed %d: %w", j.spec, j.scenario.Seed, err)
			return
		}
		if done {
			out[j.spec][j.seed] = sum
		}
	})
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
