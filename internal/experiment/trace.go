package experiment

// Contact-trace record/replay orchestration: the world-defining subset of
// a scenario is hashed into a trace content address, recorded contact
// scripts are persisted as blobs in the shared result store, and the
// store-threaded run path (RunSpecStore, sweeps, dtnd jobs) dispatches on
// Scenario.Trace to run replayed worlds that skip mobility and contact
// detection entirely. Replay is sound because the contact sequence
// depends only on the world fields below — routers, traffic, buffers and
// gossip never read positions or perturb movers — and the engine is
// bit-deterministic, so a replayed run's summary is identical to the
// live run it stands in for (pinned by TestReplayParity*).

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync/atomic"

	"repro/internal/mapgen"
	"repro/internal/metrics"
	"repro/internal/msg"
	"repro/internal/network"
	"repro/internal/resultcache"
	"repro/internal/trace"
)

// TraceVersion is baked into every trace content address. Bump it
// whenever the recorded contact sequence could change for an unchanged
// world (mover RNG streams, detector semantics, script wire format).
const TraceVersion = 1

// traceWorld is the hashed trace-key payload: exactly the fields that
// determine a world's contact sequence. Protocol, traffic, buffers,
// bandwidth, gossip and sharding are deliberately absent — scenarios
// differing only in those share one recorded world.
type traceWorld struct {
	Version  int
	Nodes    int
	Seed     int64
	Duration float64
	Tick     float64
	Range    float64
	Mobility string
	MinSpeed float64
	MaxSpeed float64
	MinDwell float64
	MaxDwell float64
	Map      mapgen.Config
	MapSeed  int64
}

func traceWorldOf(s Scenario) traceWorld {
	return traceWorld{
		Version:  TraceVersion,
		Nodes:    s.Nodes,
		Seed:     s.Seed,
		Duration: s.Duration,
		Tick:     s.Tick,
		Range:    s.Range,
		Mobility: s.Mobility,
		MinSpeed: s.MinSpeed,
		MaxSpeed: s.MaxSpeed,
		MinDwell: s.MinDwell,
		MaxDwell: s.MaxDwell,
		Map:      s.Map,
		MapSeed:  s.MapSeed,
	}
}

// TraceKey returns the content address of the scenario's recorded world:
// the SHA-256 of its world-defining fields (seed included). Scenarios
// that differ only in protocol or routing parameters share a key.
func TraceKey(s Scenario) string {
	data, err := json.Marshal(traceWorldOf(s))
	if err != nil {
		panic("experiment: trace key marshal: " + err.Error()) // fixed struct, cannot fail
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// traceGroupKey is TraceKey with the seed zeroed — the sweep layers group
// cells by it to find cells that share recorded worlds across the whole
// seed list.
func traceGroupKey(s Scenario) string {
	s.Seed = 0
	return TraceKey(s)
}

// TraceGroup resolves a spec and returns its trace group key — the
// content address of its recorded world with the seed zeroed. Specs in
// the same group (protocol/routing-only differences) share recorded
// contact scripts across their whole seed list. ok is false when the
// spec does not resolve; callers treat such cells as ungrouped.
func TraceGroup(sp ScenarioSpec) (string, bool) {
	s, err := sp.Scenario()
	if err != nil {
		return "", false
	}
	return traceGroupKey(s), true
}

// PlacementGroups partitions specs into dispatch groups for the sweep
// fabric: specs that share a recorded world and have a trace mode set
// (the sweep layer marked them "auto", or the user chose record/replay)
// must run on one worker in submission order — the first cell's live run
// records the contact script into that worker's local store and every
// later cell replays it. Everything else is a singleton group, free to
// scatter across the fleet. Groups preserve first-appearance order, and
// indices within a group preserve submission order.
func PlacementGroups(specs []ScenarioSpec) [][]int {
	var groups [][]int
	byWorld := map[string]int{}
	for i, sp := range specs {
		world := ""
		if sp.Trace != nil && *sp.Trace != "" {
			if k, ok := TraceGroup(sp); ok {
				world = k
			}
		}
		if world == "" {
			groups = append(groups, []int{i})
			continue
		}
		if gi, seen := byWorld[world]; seen {
			groups[gi] = append(groups[gi], i)
			continue
		}
		byWorld[world] = len(groups)
		groups = append(groups, []int{i})
	}
	return groups
}

// Process-wide trace counters, for tests and the daemon's /metrics: how
// many worlds were recorded (live or bare) and how many runs were served
// by replay instead of live simulation.
var (
	traceRecordings atomic.Int64
	traceReplays    atomic.Int64
)

// TraceRecordings returns the number of contact-trace recordings
// performed by this process.
func TraceRecordings() int64 { return traceRecordings.Load() }

// TraceReplays returns the number of simulation runs served by contact
// replay instead of live mobility in this process.
func TraceReplays() int64 { return traceReplays.Load() }

// loadScript fetches and decodes the recorded script for the scenario.
// Any failure — absent blob, torn write, format drift, node-count
// mismatch — is a miss; the caller records instead.
func loadScript(store *resultcache.Store, s Scenario, key string) (*trace.Script, bool) {
	data, ok := store.GetTrace(key)
	if !ok {
		return nil, false
	}
	sc, err := trace.DecodeScript(data)
	if err != nil || sc.N != s.Nodes {
		return nil, false
	}
	return sc, true
}

// scriptEvents converts a decoded script to the engine's event type.
func scriptEvents(sc *trace.Script) []network.ScriptEvent {
	evs := make([]network.ScriptEvent, len(sc.Events))
	for i, e := range sc.Events {
		evs[i] = network.ScriptEvent(e)
	}
	return evs
}

// nullRouter is the passive router of bare recording worlds: with no
// traffic generator installed, no messages ever exist and contacts carry
// no transfers, so a bare run costs mobility + detection only — and its
// contact sequence is identical to any protocol run of the same world.
type nullRouter struct{}

func (nullRouter) Init(*network.Node, *network.World)                {}
func (nullRouter) InitialReplicas(*msg.Message) int                  { return 1 }
func (nullRouter) ContactUp(float64, *network.Node)                  {}
func (nullRouter) ContactDown(float64, *network.Node)                {}
func (nullRouter) NextTransfer(float64, *network.Node) *network.Plan { return nil }
func (nullRouter) Created(float64, *msg.Copy)                        {}
func (nullRouter) Received(float64, *msg.Copy, *network.Node)        {}
func (nullRouter) Sent(float64, *network.Plan, *network.Node, bool)  {}

// RecordTrace runs a bare mobility-only world for the scenario (no
// routers, no traffic), records its contact script and persists it under
// the scenario's trace key. It returns the script and its key. The
// context cancels between ticks; a cancelled recording persists nothing.
func RecordTrace(ctx context.Context, s Scenario, store *resultcache.Store) (*trace.Script, string, error) {
	key := TraceKey(s)
	w, runner := BuildBare(s, func(int) network.Router { return nullRouter{} })
	rec := trace.NewScriptRecorder(s.Nodes)
	w.OnContact(rec.Note)
	every := pollEvery(s)
	if err := runner.RunContext(ctx, s.Duration, every, nil); err != nil {
		return nil, key, err
	}
	sc := rec.Script()
	traceRecordings.Add(1)
	if store != nil {
		if err := store.PutTrace(key, sc.Encode()); err != nil {
			return sc, key, fmt.Errorf("experiment: persist trace %s: %w", key, err)
		}
	}
	return sc, key, nil
}

// pollEvery is the shared tick granularity for progress emission and
// cancellation polling: ~2% of the run, at least every tick.
func pollEvery(s Scenario) int {
	every := int(s.Duration / s.Tick / 50)
	if every < 1 {
		every = 1
	}
	return every
}

// applyTracePlan inspects a sweep's to-simulate cell specs, groups them
// by shared recorded world (traceGroupKey — the world-defining fields
// with the seed zeroed), and marks every cell of a shareable group with
// Trace="auto" in place. A group is shareable when two or more cells
// share one world (routing/protocol-only axes) or when its traces are
// already recorded. It returns the scenarios to pre-record: one per
// (shared world, seed) the store is missing. Cells whose spec sets Trace
// explicitly are left untouched — the user's choice wins.
func applyTracePlan(specs []ScenarioSpec, store *resultcache.Store) []Scenario {
	if store == nil {
		return nil
	}
	groups := map[string][]int{}
	scens := make([]Scenario, len(specs))
	for i, sp := range specs {
		if sp.Trace != nil {
			continue
		}
		s, err := sp.Scenario()
		if err != nil {
			continue // Cells() validated already; be safe anyway
		}
		scens[i] = s
		g := traceGroupKey(s)
		groups[g] = append(groups[g], i)
	}
	var recs []Scenario
	for _, idxs := range groups {
		s0 := scens[idxs[0]]
		var missing []Scenario
		for _, seed := range specs[idxs[0]].SeedList() {
			sc := s0
			sc.Seed = seed
			if !store.HasTrace(TraceKey(sc)) {
				missing = append(missing, sc)
			}
		}
		if len(idxs) < 2 && len(missing) > 0 {
			continue // a lone live cell gains nothing from recording first
		}
		recs = append(recs, missing...)
		for _, i := range idxs {
			specs[i].Trace = ptr("auto")
		}
	}
	return recs
}

// recordTraces pre-records the given worlds on the shared pool. Failures
// of individual recordings are tolerated — the affected cells fall back
// to live runs (recording again, best effort) — but cancellation aborts.
func recordTraces(ctx context.Context, scens []Scenario, store *resultcache.Store) error {
	forEachJobCtx(ctx, len(scens), func(i int) {
		_, _, _ = RecordTrace(ctx, scens[i], store)
	})
	if ctx != nil {
		return ctx.Err()
	}
	return nil
}

// runScenario executes one resolved (scenario, seed) through the trace
// dispatch: live, replayed, or live-while-recording, per s.Trace and
// what the store holds. hook (optional) observes tick progress. It
// returns done=false without error when ctx cancelled the run mid-way.
func runScenario(ctx context.Context, s Scenario, store *resultcache.Store, hook func(t float64)) (sum metrics.Summary, done bool, err error) {
	mode := s.Trace
	if store == nil && mode != "" {
		if mode == "record" || mode == "replay" {
			return sum, false, fmt.Errorf("trace mode %q requires a result store", mode)
		}
		mode = "" // auto degrades to live when there is nowhere to look
	}

	var script *trace.Script
	key := ""
	switch mode {
	case "":
	case "record":
		key = TraceKey(s)
	case "replay", "auto":
		key = TraceKey(s)
		if sc, ok := loadScript(store, s, key); ok {
			script = sc
		} else if mode == "replay" {
			return sum, false, fmt.Errorf("no recorded trace %s for replay", key)
		}
	default:
		return sum, false, fmt.Errorf("unknown trace mode %q (have record, replay, auto)", mode)
	}

	if script != nil {
		w, runner := s.BuildReplay(scriptEvents(script))
		prof := s.attachProfiler(w, runner)
		if runner.RunContext(ctx, s.Duration, pollEvery(s), hook) != nil {
			return sum, false, nil // cancelled mid-run
		}
		traceReplays.Add(1)
		sum = w.Metrics.Summary()
		sum.Timing = prof.Timing()
		return sum, true, nil
	}

	// Live run; in record (or auto-with-no-script) mode the protocol run
	// doubles as the recording — mobility is simulated once, not twice.
	w, runner := s.Build()
	prof := s.attachProfiler(w, runner)
	var rec *trace.ScriptRecorder
	if key != "" {
		rec = trace.NewScriptRecorder(s.Nodes)
		w.OnContact(rec.Note)
	}
	if runner.RunContext(ctx, s.Duration, pollEvery(s), hook) != nil {
		return sum, false, nil // cancelled mid-run; persist nothing
	}
	if rec != nil {
		traceRecordings.Add(1)
		if err := store.PutTrace(key, rec.Script().Encode()); err != nil && mode == "record" {
			// Explicit record mode promised a persisted trace; auto mode
			// treats the blob as a best-effort optimization and the run's
			// summary stands either way.
			return sum, false, fmt.Errorf("experiment: persist trace %s: %w", key, err)
		}
	}
	sum = w.Metrics.Summary()
	sum.Timing = prof.Timing()
	return sum, true, nil
}
