package experiment

import "testing"

// TestQuickScenarioDeterminism proves two identical runs of the quick
// scenario produce bit-identical summaries — the invariant the incremental
// contact engine, event freelist and worker pool must all preserve.
func TestQuickScenarioDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("two full Quick runs in -short mode")
	}
	s := Quick()
	a := s.Run()
	b := s.Run()
	if a != b {
		t.Fatalf("same-seed runs diverged:\n  first  %+v\n  second %+v", a, b)
	}
}

// TestRunBatchDeterministicOrder proves pooled parallel execution returns
// summaries by input index with per-job results independent of worker
// scheduling.
func TestRunBatchDeterministicOrder(t *testing.T) {
	s := Quick()
	s.Nodes = 20
	s.Duration = 400
	seeds := []int64{3, 1, 2}
	first := RunSeeds(s, seeds)
	second := RunSeeds(s, seeds)
	if len(first) != len(seeds) {
		t.Fatalf("got %d summaries", len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("seed %d diverged across batches", seeds[i])
		}
	}
	// Seed order in the input must map to output order: running one seed
	// alone must match its batched slot.
	s.Seed = seeds[1]
	solo := s.Run()
	if first[1] != solo {
		t.Fatalf("batched seed %d != solo run", seeds[1])
	}
}
