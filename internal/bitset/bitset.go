// Package bitset provides a growable bitset keyed by small non-negative
// integers. The engine uses it for per-node delivered-message state, where
// message ids are dense and the map[int]bool it replaces dominated both
// memory and lookup time at scale.
package bitset

import "math/bits"

// Set is a growable bitset. The zero value is an empty set ready for use.
type Set struct {
	words []uint64
}

// Has reports whether i is in the set. Negative or out-of-range indices
// are simply absent.
func (s *Set) Has(i int) bool {
	if i < 0 || i>>6 >= len(s.words) {
		return false
	}
	return s.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Add inserts i, growing the set as needed. It panics on negative i.
func (s *Set) Add(i int) {
	if i < 0 {
		panic("bitset: negative index")
	}
	w := i >> 6
	if w >= len(s.words) {
		s.grow(w + 1)
	}
	s.words[w] |= 1 << (uint(i) & 63)
}

// grow extends the word slice to n words, doubling capacity to amortise.
func (s *Set) grow(n int) {
	if cap(s.words) >= n {
		s.words = s.words[:n]
		return
	}
	nw := make([]uint64, n, max(2*cap(s.words), n))
	copy(nw, s.words)
	s.words = nw
}

// UnionWith adds every element of o to s.
func (s *Set) UnionWith(o *Set) {
	if len(o.words) > len(s.words) {
		s.grow(len(o.words))
	}
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// Count returns the number of elements in the set.
func (s *Set) Count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}
