package bitset

import "testing"

func TestZeroValue(t *testing.T) {
	var s Set
	if s.Has(0) || s.Has(100) || s.Has(-1) {
		t.Fatal("empty set reports members")
	}
	if s.Count() != 0 {
		t.Fatalf("Count = %d", s.Count())
	}
}

func TestAddHas(t *testing.T) {
	var s Set
	ids := []int{0, 1, 63, 64, 65, 127, 128, 1000, 4096}
	for _, i := range ids {
		s.Add(i)
	}
	for _, i := range ids {
		if !s.Has(i) {
			t.Errorf("Has(%d) = false after Add", i)
		}
	}
	for _, i := range []int{2, 62, 66, 999, 1001, 5000} {
		if s.Has(i) {
			t.Errorf("Has(%d) = true, never added", i)
		}
	}
	if s.Count() != len(ids) {
		t.Errorf("Count = %d, want %d", s.Count(), len(ids))
	}
	s.Add(64) // idempotent
	if s.Count() != len(ids) {
		t.Error("re-Add changed Count")
	}
}

func TestAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var s Set
	s.Add(-1)
}

func TestUnionWith(t *testing.T) {
	var a, b Set
	a.Add(1)
	a.Add(70)
	b.Add(2)
	b.Add(500) // b is longer than a
	a.UnionWith(&b)
	for _, i := range []int{1, 2, 70, 500} {
		if !a.Has(i) {
			t.Errorf("union missing %d", i)
		}
	}
	if !b.Has(500) || b.Has(1) {
		t.Error("UnionWith mutated operand")
	}
	// Union the shorter set into the longer one too.
	b.UnionWith(&a)
	if !b.Has(1) || !b.Has(70) {
		t.Error("reverse union missing elements")
	}
	// Self-union is a no-op.
	n := a.Count()
	a.UnionWith(&a)
	if a.Count() != n {
		t.Error("self-union changed the set")
	}
}

func TestGrowPreservesBits(t *testing.T) {
	var s Set
	for i := 0; i < 10000; i += 7 {
		s.Add(i)
	}
	for i := 0; i < 10000; i++ {
		want := i%7 == 0
		if s.Has(i) != want {
			t.Fatalf("Has(%d) = %v, want %v", i, s.Has(i), want)
		}
	}
}
