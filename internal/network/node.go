package network

import (
	"repro/internal/bitset"
	"repro/internal/buffer"
	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/msg"
)

// Node is one DTN participant: a mover, a finite buffer and a router.
type Node struct {
	ID     int
	Mover  mobility.Mover
	Buf    *buffer.Buffer
	Router Router

	pos   geo.Point
	links []*Link // active contacts, in establishment order

	// deliveredHere records message ids destined to this node that have
	// already arrived, so duplicate arrivals are not re-counted. Message
	// ids are dense, so a bitset beats the map it replaced.
	deliveredHere bitset.Set
	// knownDelivered records message ids this node has learned were
	// delivered (by delivering them itself or, for protocols with ack
	// propagation such as MaxProp, by gossip). Routers use it to purge
	// dead copies.
	knownDelivered bitset.Set
}

// Pos returns the node's current position.
func (n *Node) Pos() geo.Point { return n.pos }

// HasCopy reports whether the node buffers a copy of message id.
func (n *Node) HasCopy(id int) bool { return n.Buf.Has(id) }

// Copy returns the node's buffered copy of message id, or nil.
func (n *Node) Copy(id int) *msg.Copy { return n.Buf.Get(id) }

// DeliveredHere reports whether message id (destined to this node) already
// arrived.
func (n *Node) DeliveredHere(id int) bool { return n.deliveredHere.Has(id) }

// KnowsDelivered reports whether the node has learned that message id
// reached its destination.
func (n *Node) KnowsDelivered(id int) bool { return n.knownDelivered.Has(id) }

// LearnDelivered records that the node knows message id was delivered.
// Routers with ack propagation call this during metadata exchange.
func (n *Node) LearnDelivered(id int) { n.knownDelivered.Add(id) }

// SyncKnownDelivered merges delivered-message knowledge with peer in both
// directions, leaving the two nodes with the identical union set — the
// ack-gossip exchange of protocols like MaxProp, as one bitset union
// instead of a per-id map walk.
func (n *Node) SyncKnownDelivered(peer *Node) {
	n.knownDelivered.UnionWith(&peer.knownDelivered)
	peer.knownDelivered.UnionWith(&n.knownDelivered)
}

// InContactWith reports whether the node currently has a contact with peer.
func (n *Node) InContactWith(peer int) bool {
	for _, l := range n.links {
		if l.other(n).ID == peer {
			return true
		}
	}
	return false
}

// Contacts returns the ids of the peers currently in contact.
func (n *Node) Contacts() []int {
	out := make([]int, 0, len(n.links))
	for _, l := range n.links {
		out = append(out, l.other(n).ID)
	}
	return out
}

func (n *Node) addLink(l *Link) { n.links = append(n.links, l) }

func (n *Node) removeLink(l *Link) {
	for i, x := range n.links {
		if x == l {
			copy(n.links[i:], n.links[i+1:])
			n.links = n.links[:len(n.links)-1]
			return
		}
	}
}
