// Package network is the DTN simulation engine: nodes with movers, finite
// buffers and routers; spatial-hash contact detection each tick;
// bandwidth-limited one-at-a-time transfers per contact with abort on
// contact loss; TTL expiry; and delivery/relay accounting. Together with
// package sim it plays the role the ONE simulator played for the paper.
package network

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/buffer"
	"repro/internal/metrics"
	"repro/internal/mobility"
	"repro/internal/msg"
	"repro/internal/sim"
)

// Config holds the physical-layer parameters of a scenario. The paper's
// values: 10 m range, 2 Mb/s (250000 B/s), 0.1 s update interval.
type Config struct {
	// Range is the radio range in metres.
	Range float64
	// Bandwidth is the link throughput in bytes per second.
	Bandwidth float64
	// ExpirySweepEvery purges expired messages every that many ticks
	// (default 10).
	ExpirySweepEvery int
}

// DefaultConfig returns the paper's physical parameters.
func DefaultConfig() Config {
	return Config{Range: 10, Bandwidth: 250000, ExpirySweepEvery: 10}
}

// World owns the nodes and advances the DTN each tick.
type World struct {
	Metrics *metrics.Collector

	cfg    Config
	runner *sim.Runner
	nodes  []*Node

	linkList []*Link // active links in establishment order
	linkIdx  map[uint64]*Link

	grid      cellGrid
	pairBuf   [][2]int32
	lastTick  float64
	tickCount uint64
	nextMsgID int
	started   bool

	// onDeliver hooks observe deliveries (tests, per-message ledgers).
	onDeliver []func(t float64, m *msg.Message, hops int)
}

// New returns an empty world driven by runner.
func New(cfg Config, runner *sim.Runner) *World {
	if cfg.Range <= 0 || cfg.Bandwidth <= 0 {
		panic("network: range and bandwidth must be positive")
	}
	if cfg.ExpirySweepEvery <= 0 {
		cfg.ExpirySweepEvery = 10
	}
	w := &World{
		Metrics: metrics.New(),
		cfg:     cfg,
		runner:  runner,
		linkIdx: make(map[uint64]*Link),
	}
	w.grid.init(cfg.Range)
	runner.AddTicker(w)
	return w
}

// Config returns the physical configuration.
func (w *World) Config() Config { return w.cfg }

// Runner returns the simulation driver.
func (w *World) Runner() *sim.Runner { return w.runner }

// Now returns the current simulated time.
func (w *World) Now() float64 { return w.runner.Now() }

// Nodes returns all nodes (shared; do not mutate).
func (w *World) Nodes() []*Node { return w.nodes }

// Node returns the node with the given id.
func (w *World) Node(id int) *Node { return w.nodes[id] }

// N returns the number of nodes.
func (w *World) N() int { return len(w.nodes) }

// AddNode creates a node with the given mover, buffer and router. Nodes
// must all be added before Start.
func (w *World) AddNode(m mobility.Mover, buf *buffer.Buffer, r Router) *Node {
	if w.started {
		panic("network: AddNode after Start")
	}
	n := &Node{
		ID:             len(w.nodes),
		Mover:          m,
		Buf:            buf,
		Router:         r,
		pos:            m.Pos(),
		deliveredHere:  make(map[int]bool),
		knownDelivered: make(map[int]bool),
	}
	w.nodes = append(w.nodes, n)
	return n
}

// OnDeliver registers a delivery observer.
func (w *World) OnDeliver(f func(t float64, m *msg.Message, hops int)) {
	w.onDeliver = append(w.onDeliver, f)
}

// Start initialises every router. It must be called once, after all nodes
// are added and before the runner runs.
func (w *World) Start() {
	if w.started {
		panic("network: Start called twice")
	}
	w.started = true
	for _, n := range w.nodes {
		n.Router.Init(n, w)
	}
}

// CreateMessage injects a new message at node from destined to node to,
// asks the router for its quota, and buffers the source copy. It returns
// the message (nil if the source buffer refused it).
func (w *World) CreateMessage(t float64, from, to, size int, ttl float64) *msg.Message {
	if from == to {
		panic("network: message source equals destination")
	}
	w.nextMsgID++
	m := &msg.Message{ID: w.nextMsgID, From: from, To: to, Size: size, Created: t, Expire: t + ttl}
	w.Metrics.MessageCreated(m.ID, t)
	src := w.nodes[from]
	c := msg.NewCopy(m, src.Router.InitialReplicas(m))
	dropped, ok := src.Buf.Add(t, c)
	for range dropped {
		w.Metrics.MessageDropped()
	}
	if !ok {
		w.Metrics.MessageRefused()
		return nil
	}
	src.Router.Created(t, c)
	w.wake(src, t)
	return m
}

// wake re-pumps every active link of n — a new relay opportunity appeared.
func (w *World) wake(n *Node, t float64) {
	for _, l := range n.links {
		l.pump(w, t)
	}
}

// Tick implements sim.Ticker: moves nodes, updates contacts and sweeps
// expired messages.
func (w *World) Tick(t float64) {
	dt := t - w.lastTick
	w.lastTick = t
	w.tickCount++
	for _, n := range w.nodes {
		n.pos = n.Mover.Step(dt)
	}
	w.updateContacts(t)
	if w.tickCount%uint64(w.cfg.ExpirySweepEvery) == 0 {
		w.sweepExpired(t)
	}
}

func linkKey(a, b int) uint64 { return uint64(a)<<32 | uint64(uint32(b)) }

// updateContacts diffs the in-range pair set against active links.
func (w *World) updateContacts(t float64) {
	pairs := w.grid.pairs(w.nodes, w.pairBuf[:0])
	w.pairBuf = pairs

	gen := w.tickCount
	var newPairs [][2]int32
	for _, p := range pairs {
		if l, ok := w.linkIdx[linkKey(int(p[0]), int(p[1]))]; ok {
			l.gen = gen
			continue
		}
		newPairs = append(newPairs, p)
	}
	// Tear down stale links first so buffers/state settle before new
	// contacts exchange metadata. Iterate the ordered list for
	// determinism.
	keep := w.linkList[:0]
	for _, l := range w.linkList {
		if l.gen == gen {
			keep = append(keep, l)
			continue
		}
		w.contactDown(l, t)
	}
	w.linkList = keep
	// Establish new contacts in ascending pair order.
	sort.Slice(newPairs, func(i, j int) bool {
		if newPairs[i][0] != newPairs[j][0] {
			return newPairs[i][0] < newPairs[j][0]
		}
		return newPairs[i][1] < newPairs[j][1]
	})
	for _, p := range newPairs {
		w.contactUp(w.nodes[p[0]], w.nodes[p[1]], t, gen)
	}
}

func (w *World) contactUp(a, b *Node, t float64, gen uint64) {
	w.Metrics.ContactStarted()
	l := &Link{a: a, b: b, since: t, gen: gen}
	w.linkIdx[linkKey(a.ID, b.ID)] = l
	w.linkList = append(w.linkList, l)
	a.addLink(l)
	b.addLink(l)
	a.Router.ContactUp(t, b)
	b.Router.ContactUp(t, a)
	l.pump(w, t)
}

func (w *World) contactDown(l *Link, t float64) {
	l.abort(w)
	delete(w.linkIdx, linkKey(l.a.ID, l.b.ID))
	l.a.removeLink(l)
	l.b.removeLink(l)
	l.a.Router.ContactDown(t, l.b)
	l.b.Router.ContactDown(t, l.a)
}

// completeTransfer applies a finished transfer: delivery or relay, quota
// bookkeeping, router notifications, and the next pump.
func (w *World) completeTransfer(l *Link, t float64) {
	tr := l.cur
	l.cur = nil
	plan, from, to := tr.plan, tr.from, tr.to

	senderCopy := from.Copy(plan.Msg.ID)
	if senderCopy == nil {
		// The sender's buffer evicted the message mid-transfer; the data
		// cannot complete.
		w.Metrics.TransferAborted()
		l.pump(w, t)
		return
	}
	w.Metrics.MessageRelayed()

	m := plan.Msg
	switch {
	case m.To == to.ID:
		// Final delivery. Late (expired) arrivals count as relays only.
		if !m.Expired(t) && !to.deliveredHere[m.ID] {
			to.deliveredHere[m.ID] = true
			if w.Metrics.MessageDelivered(m.ID, t, senderCopy.Hops+1) {
				for _, f := range w.onDeliver {
					f(t, m, senderCopy.Hops+1)
				}
			}
		}
		// Both endpoints now know the message is done.
		from.LearnDelivered(m.ID)
		to.LearnDelivered(m.ID)
		from.Buf.Remove(m.ID)
		from.Router.Sent(t, plan, to, true)
		w.wake(from, t)
	case to.HasCopy(m.ID):
		// A copy raced in from a third node mid-flight. Nothing changes;
		// the bytes were still spent.
		from.Router.Sent(t, plan, to, false)
	default:
		nc := senderCopy.Fork(plan.Give, t)
		dropped, ok := to.Buf.Add(t, nc)
		for range dropped {
			w.Metrics.MessageDropped()
		}
		if ok {
			switch {
			case plan.KeepAfter == 0:
				from.Buf.Remove(m.ID)
			case plan.KeepAfter > 0:
				senderCopy.Replicas = plan.KeepAfter
			}
			from.Router.Sent(t, plan, to, false)
			to.Router.Received(t, nc, from)
			w.wake(to, t)
			w.wake(from, t)
		} else {
			w.Metrics.MessageRefused()
			from.Router.Sent(t, plan, to, false)
		}
	}
	l.pump(w, t)
}

// sweepExpired purges expired copies from every buffer.
func (w *World) sweepExpired(t float64) {
	for _, n := range w.nodes {
		for range n.Buf.DropExpired(t) {
			w.Metrics.MessageExpired()
		}
	}
}

// cellGrid is a spatial hash over node positions with cell size equal to
// the radio range, so in-range pairs always sit in adjacent cells.
type cellGrid struct {
	cell  float64
	cells map[uint64][]int32
}

func (g *cellGrid) init(cell float64) {
	g.cell = cell
	g.cells = make(map[uint64][]int32)
}

func cellKeyOf(cx, cy int32) uint64 {
	return uint64(uint32(cx))<<32 | uint64(uint32(cy))
}

// pairs returns all node pairs (a < b) within range, appended to out.
func (g *cellGrid) pairs(nodes []*Node, out [][2]int32) [][2]int32 {
	for k := range g.cells {
		delete(g.cells, k)
	}
	type cc struct{ cx, cy int32 }
	coords := make([]cc, len(nodes))
	for i, n := range nodes {
		cx := int32(math.Floor(n.pos.X / g.cell))
		cy := int32(math.Floor(n.pos.Y / g.cell))
		coords[i] = cc{cx, cy}
		key := cellKeyOf(cx, cy)
		g.cells[key] = append(g.cells[key], int32(i))
	}
	r2 := g.cell * g.cell
	for i, n := range nodes {
		ci := coords[i]
		for dx := int32(-1); dx <= 1; dx++ {
			for dy := int32(-1); dy <= 1; dy++ {
				bucket := g.cells[cellKeyOf(ci.cx+dx, ci.cy+dy)]
				for _, j := range bucket {
					if int(j) <= i {
						continue
					}
					if n.pos.Dist2(nodes[j].pos) <= r2 {
						out = append(out, [2]int32{int32(i), j})
					}
				}
			}
		}
	}
	return out
}

// DumpState returns a human-readable snapshot for debugging.
func (w *World) DumpState() string {
	s := fmt.Sprintf("t=%.1f nodes=%d links=%d\n", w.Now(), len(w.nodes), len(w.linkList))
	for _, n := range w.nodes {
		s += fmt.Sprintf("  node %d at %v buf=%d/%dB msgs=%d\n", n.ID, n.pos, n.Buf.Used(), n.Buf.Capacity(), n.Buf.Len())
	}
	return s
}
