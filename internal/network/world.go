// Package network is the DTN simulation engine: nodes with movers, finite
// buffers and routers; spatial-hash contact detection each tick;
// bandwidth-limited one-at-a-time transfers per contact with abort on
// contact loss; TTL expiry; and delivery/relay accounting. Together with
// package sim it plays the role the ONE simulator played for the paper.
package network

import (
	"fmt"
	"math"
	"runtime"
	"strings"

	"repro/internal/buffer"
	"repro/internal/metrics"
	"repro/internal/mobility"
	"repro/internal/msg"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Config holds the physical-layer parameters of a scenario. The paper's
// values: 10 m range, 2 Mb/s (250000 B/s), 0.1 s update interval.
type Config struct {
	// Range is the radio range in metres.
	Range float64
	// Bandwidth is the link throughput in bytes per second.
	Bandwidth float64
	// ExpirySweepEvery purges expired messages every that many ticks
	// (default 10).
	ExpirySweepEvery int
	// MaxSpeed is an upper bound on any node's speed in m/s. When set it
	// lets the contact detector skip distance checks of far-apart pairs
	// for provably safe spans (see grid.go). 0 means "no bound known":
	// detection stays exact but tracked pairs are re-checked every tick.
	MaxSpeed float64
	// Shards runs the per-tick work (mobility advance, cell-change
	// detection and re-bucketing, pair distance sweeps, expiry sweeps) on
	// that many goroutines with a deterministic serial merge phase (see
	// shard.go). 0 keeps the single-threaded tick path; AutoShards (-1)
	// picks a GOMAXPROCS-derived count at New. Any value produces
	// bit-identical results to Shards == 0; values beyond GOMAXPROCS or
	// the world size only add scheduling overhead.
	Shards int
}

// AutoShards, as Config.Shards, selects a GOMAXPROCS-derived shard count
// when the world is created.
const AutoShards = -1

// DefaultConfig returns the paper's physical parameters.
func DefaultConfig() Config {
	return Config{Range: 10, Bandwidth: 250000, ExpirySweepEvery: 10}
}

// World owns the nodes and advances the DTN each tick.
type World struct {
	Metrics *metrics.Collector

	cfg    Config
	runner *sim.Runner
	nodes  []*Node

	linkList []*Link // active links in establishment order

	grid      cellGrid
	sched     pairSched
	shard     shardScratch // sharded tick path buffers (Config.Shards > 0)
	movedBuf  []int32      // scratch: nodes that changed cell this tick
	newPairs  [][2]int32   // scratch: pairs that came into range this tick
	scanBuf   [][2]int32   // scratch: candidates from one neighbourhood scan
	tickDt    float64      // runner tick interval, for re-check scheduling
	lastTick  float64
	tickCount uint64
	nextMsgID int
	started   bool

	// onDeliver hooks observe deliveries (tests, per-message ledgers).
	onDeliver []func(t float64, m *msg.Message, hops int)
	// onContact hooks observe every contact transition (trace recording).
	onContact []func(tick uint64, up bool, a, b int32)

	// Scripted replay state (script.go): when scripted, ticks fire the
	// recorded contact events instead of moving nodes.
	scripted  bool
	script    []ScriptEvent
	scriptPos int

	// prof, when non-nil, books per-phase wall time for every tick path
	// (obs package). nil — the default — costs one pointer check per
	// phase boundary; profiling never touches simulation state, so
	// results are bit-identical either way.
	prof *obs.EngineProf
}

// New returns an empty world driven by runner.
func New(cfg Config, runner *sim.Runner) *World {
	if cfg.Range <= 0 || cfg.Bandwidth <= 0 {
		panic("network: range and bandwidth must be positive")
	}
	if cfg.ExpirySweepEvery <= 0 {
		cfg.ExpirySweepEvery = 10
	}
	if cfg.Shards < 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	w := &World{
		Metrics: metrics.New(),
		cfg:     cfg,
		runner:  runner,
		tickDt:  runner.Tick,
	}
	// One grid region (sub-grid) per shard worker so phase A2 re-buckets
	// in parallel; the serial path keeps the single unpartitioned table.
	regions := 1
	if cfg.Shards > 1 {
		regions = cfg.Shards
	}
	w.grid.init(cfg.Range, regions)
	runner.AddTicker(w)
	return w
}

// Config returns the physical configuration.
func (w *World) Config() Config { return w.cfg }

// SetProfiler attaches an engine profiler (nil detaches). The profiler
// observes wall time only — a profiled run is bit-identical to an
// unprofiled one. Callers normally share one profiler between the world
// and its runner (sim.Runner.Prof) so event time and tick time land in
// one Timing block.
func (w *World) SetProfiler(p *obs.EngineProf) {
	w.prof = p
	workers := w.cfg.Shards
	if w.grid.regions > workers {
		workers = w.grid.regions
	}
	p.EnsureShards(workers)
}

// Runner returns the simulation driver.
func (w *World) Runner() *sim.Runner { return w.runner }

// Now returns the current simulated time.
func (w *World) Now() float64 { return w.runner.Now() }

// Nodes returns all nodes (shared; do not mutate).
func (w *World) Nodes() []*Node { return w.nodes }

// Node returns the node with the given id.
func (w *World) Node(id int) *Node { return w.nodes[id] }

// N returns the number of nodes.
func (w *World) N() int { return len(w.nodes) }

// AddNode creates a node with the given mover, buffer and router. Nodes
// must all be added before Start.
func (w *World) AddNode(m mobility.Mover, buf *buffer.Buffer, r Router) *Node {
	if w.started {
		panic("network: AddNode after Start")
	}
	n := &Node{
		ID:     len(w.nodes),
		Mover:  m,
		Buf:    buf,
		Router: r,
		pos:    m.Pos(),
	}
	w.nodes = append(w.nodes, n)
	return n
}

// OnDeliver registers a delivery observer.
func (w *World) OnDeliver(f func(t float64, m *msg.Message, hops int)) {
	w.onDeliver = append(w.onDeliver, f)
}

// Start initialises every router. It must be called once, after all nodes
// are added and before the runner runs.
func (w *World) Start() {
	if w.started {
		panic("network: Start called twice")
	}
	w.started = true
	if !w.scripted {
		// A scripted world never touches the detector: skip its O(n) state.
		w.grid.ensure(len(w.nodes))
		w.sched.init(len(w.nodes))
	}
	for _, n := range w.nodes {
		n.Router.Init(n, w)
	}
}

// CreateMessage injects a new message at node from destined to node to,
// asks the router for its quota, and buffers the source copy. It returns
// the message (nil if the source buffer refused it).
func (w *World) CreateMessage(t float64, from, to, size int, ttl float64) *msg.Message {
	if from == to {
		panic("network: message source equals destination")
	}
	w.nextMsgID++
	m := &msg.Message{ID: w.nextMsgID, From: from, To: to, Size: size, Created: t, Expire: t + ttl}
	w.Metrics.MessageCreated(m.ID, t)
	src := w.nodes[from]
	c := msg.NewCopy(m, src.Router.InitialReplicas(m))
	dropped, ok := src.Buf.Add(t, c)
	for range dropped {
		w.Metrics.MessageDropped()
	}
	if !ok {
		w.Metrics.MessageRefused()
		return nil
	}
	src.Router.Created(t, c)
	w.wake(src, t)
	return m
}

// wake re-pumps every active link of n — a new relay opportunity appeared.
func (w *World) wake(n *Node, t float64) {
	for _, l := range n.links {
		l.pump(w, t)
	}
}

// Tick implements sim.Ticker: moves nodes, updates contacts and sweeps
// expired messages. With Config.Shards > 0 the data-parallel parts run on
// shard goroutines (shard.go); results are bit-identical either way.
func (w *World) Tick(t float64) {
	if w.scripted {
		w.tickScripted(t)
		return
	}
	if w.cfg.Shards > 0 {
		w.tickSharded(t)
		return
	}
	dt := t - w.lastTick
	w.lastTick = t
	w.tickCount++
	st := w.prof.Start()
	for _, n := range w.nodes {
		n.pos = n.Mover.Step(dt)
	}
	w.prof.Lap(obs.PhaseMobility, st)
	w.updateContacts(t)
	if w.tickCount%uint64(w.cfg.ExpirySweepEvery) == 0 {
		st = w.prof.Start()
		w.sweepExpired(t)
		w.prof.Lap(obs.PhaseExpiry, st)
	}
	w.prof.TickDone()
}

// updateContacts maintains the in-range pair set incrementally: moved
// nodes are re-bucketed and their neighbourhoods rescanned, then exactly
// the pairs whose parked re-check is due are distance-tested. The
// resulting contact set is identical to a naive all-pairs sweep every
// tick (grid_test.go proves it), at a fraction of the work.
func (w *World) updateContacts(t float64) {
	tick := w.tickCount
	w.grid.epoch = tick

	// Phase 1: re-bucket nodes whose cell changed and track every
	// untracked pair in their new 3x3 neighbourhood for an immediate
	// check. Node order keeps runs deterministic.
	st := w.prof.Start()
	moved := w.movedBuf[:0]
	for i, n := range w.nodes {
		if w.grid.update(int32(i), n.pos) {
			moved = append(moved, int32(i))
		}
	}
	st = w.prof.Lap(obs.PhaseRebucket, st)
	for _, i := range moved {
		w.scanNeighborhood(i, tick)
	}
	w.movedBuf = moved[:0]
	st = w.prof.Lap(obs.PhaseScan, st)

	// Phase 2: run the distance checks due this tick. Link pairs are
	// never parked on the wheel (the link list below is their check), so
	// an in-range hit here is always a new contact. Out-of-range pairs
	// are parked as far out as the speed bound allows, or dropped
	// entirely once they are provably beyond grid adjacency.
	slot := tick % wheelSize
	due := w.sched.wheel[slot]
	r2 := w.cfg.Range * w.cfg.Range
	bandMax2 := 9 * w.grid.cell * w.grid.cell
	newPairs := w.newPairs[:0]
	for _, k := range due {
		a := int32(uint32(k >> 32))
		b := int32(uint32(k))
		d2 := w.nodes[a].pos.Dist2(w.nodes[b].pos)
		switch {
		case d2 <= r2:
			// New contact: its wheel entry is consumed here and the pair
			// stays tracked; the link sweep re-parks it on contact loss.
			newPairs = append(newPairs, [2]int32{a, b})
		case d2 > bandMax2:
			// Beyond any adjacent-cell distance: stop tracking; a future
			// cell change of either node re-tracks the pair before it can
			// come back into range.
			w.sched.untrack(a, b)
		default:
			w.sched.reschedule(k, tick+w.recheckDelay(d2))
		}
	}
	w.sched.wheel[slot] = due[:0]
	st = w.prof.Lap(obs.PhasePairs, st)

	// Phase 3: distance-sweep the active links — cheaper than parking
	// the (frequently-checked) in-range pairs on the wheel. Tear down
	// stale links first so buffers/state settle before new contacts
	// exchange metadata, iterating the ordered list for determinism.
	keep := w.linkList[:0]
	for _, l := range w.linkList {
		d2 := l.a.pos.Dist2(l.b.pos)
		if d2 <= r2 {
			keep = append(keep, l)
			continue
		}
		w.contactDown(l, t)
		w.sched.reschedule(pairKey(int32(l.a.ID), int32(l.b.ID)), tick+w.recheckDelay(d2))
	}
	w.linkList = keep
	st = w.prof.Lap(obs.PhaseLinks, st)
	w.establishNewContacts(newPairs, t)
	w.prof.Lap(obs.PhaseContacts, st)
}

// establishNewContacts fires contactUp for every pair in ascending pair
// order. The handful of pairs per tick makes insertion sort
// allocation-free and cheap. It consumes the slice (w.newPairs scratch).
func (w *World) establishNewContacts(newPairs [][2]int32, t float64) {
	for i := 1; i < len(newPairs); i++ {
		p := newPairs[i]
		j := i
		for ; j > 0 && (newPairs[j-1][0] > p[0] || (newPairs[j-1][0] == p[0] && newPairs[j-1][1] > p[1])); j-- {
			newPairs[j] = newPairs[j-1]
		}
		newPairs[j] = p
	}
	for _, p := range newPairs {
		w.contactUp(w.nodes[p[0]], w.nodes[p[1]], t)
	}
	w.newPairs = newPairs[:0]
}

// scanNeighborhood tracks every untracked pair between freshly-moved node
// i and the nodes bucketed in its 3x3 cell neighbourhood, parking an
// immediate check. The traversal (and its already-adjacent-cell filter)
// lives in collectNeighborhood, shared with the sharded path; tracking the
// collected pairs in order is exactly what the sharded merge does too.
func (w *World) scanNeighborhood(i int32, tick uint64) {
	w.grid.neighborSlots(i) // refresh the cache collectNeighborhood reads
	w.scanBuf = w.collectNeighborhood(i, w.scanBuf[:0])
	for _, p := range w.scanBuf {
		w.sched.track(p[0], p[1], tick)
	}
}

// chebWithin1 reports |a-b| <= 1.
func chebWithin1(a, b int32) bool {
	d := a - b
	return d >= -1 && d <= 1
}

// recheckDelay returns how many ticks the next distance check of an
// out-of-range pair at squared distance d2 may safely be deferred. With
// both nodes bounded by MaxSpeed, their distance shrinks at most
// 2*MaxSpeed metres per second, so a pair (D-Range) metres past the radio
// edge cannot close the gap in fewer than (D-Range)/(2*MaxSpeed) seconds.
// A small absolute margin absorbs floating-point drift in the mover
// arithmetic.
func (w *World) recheckDelay(d2 float64) uint64 {
	if w.cfg.MaxSpeed <= 0 {
		return 1
	}
	slack := math.Sqrt(d2) - w.cfg.Range - 1e-9
	if slack <= 0 {
		return 1
	}
	ticks := int(slack / (2 * w.cfg.MaxSpeed * w.tickDt))
	if ticks < 1 {
		return 1
	}
	if ticks > wheelSize-1 {
		return wheelSize - 1
	}
	return uint64(ticks)
}

func (w *World) contactUp(a, b *Node, t float64) {
	for _, f := range w.onContact {
		f(w.tickCount, true, int32(a.ID), int32(b.ID))
	}
	w.Metrics.ContactStarted()
	l := &Link{a: a, b: b, since: t}
	w.linkList = append(w.linkList, l)
	a.addLink(l)
	b.addLink(l)
	ex := w.prof.Start()
	a.Router.ContactUp(t, b)
	b.Router.ContactUp(t, a)
	w.prof.Exchange(ex)
	l.pump(w, t)
}

func (w *World) contactDown(l *Link, t float64) {
	for _, f := range w.onContact {
		f(w.tickCount, false, int32(l.a.ID), int32(l.b.ID))
	}
	l.abort(w)
	l.a.removeLink(l)
	l.b.removeLink(l)
	ex := w.prof.Start()
	l.a.Router.ContactDown(t, l.b)
	l.b.Router.ContactDown(t, l.a)
	w.prof.Exchange(ex)
}

// completeTransfer applies a finished transfer: delivery or relay, quota
// bookkeeping, router notifications, and the next pump.
func (w *World) completeTransfer(l *Link, t float64) {
	tr := l.cur
	l.cur = nil
	plan, from, to := tr.plan, tr.from, tr.to

	senderCopy := from.Copy(plan.Msg.ID)
	if senderCopy == nil {
		// The sender's buffer evicted the message mid-transfer; the data
		// cannot complete.
		w.Metrics.TransferAborted()
		l.pump(w, t)
		return
	}
	w.Metrics.MessageRelayed()

	m := plan.Msg
	switch {
	case m.To == to.ID:
		// Final delivery. Late (expired) arrivals count as relays only.
		if !m.Expired(t) && !to.deliveredHere.Has(m.ID) {
			to.deliveredHere.Add(m.ID)
			if w.Metrics.MessageDelivered(m.ID, t, senderCopy.Hops+1) {
				for _, f := range w.onDeliver {
					f(t, m, senderCopy.Hops+1)
				}
			}
		}
		// Both endpoints now know the message is done.
		from.LearnDelivered(m.ID)
		to.LearnDelivered(m.ID)
		from.Buf.Remove(m.ID)
		from.Router.Sent(t, plan, to, true)
		w.wake(from, t)
	case to.HasCopy(m.ID):
		// A copy raced in from a third node mid-flight. Nothing changes;
		// the bytes were still spent.
		from.Router.Sent(t, plan, to, false)
	default:
		nc := senderCopy.Fork(plan.Give, t)
		dropped, ok := to.Buf.Add(t, nc)
		for range dropped {
			w.Metrics.MessageDropped()
		}
		if ok {
			switch {
			case plan.KeepAfter == 0:
				from.Buf.Remove(m.ID)
			case plan.KeepAfter > 0:
				senderCopy.Replicas = plan.KeepAfter
			}
			from.Router.Sent(t, plan, to, false)
			to.Router.Received(t, nc, from)
			w.wake(to, t)
			w.wake(from, t)
		} else {
			w.Metrics.MessageRefused()
			from.Router.Sent(t, plan, to, false)
		}
	}
	l.pump(w, t)
}

// sweepExpired purges expired copies from every buffer.
func (w *World) sweepExpired(t float64) {
	for _, n := range w.nodes {
		for range n.Buf.DropExpired(t) {
			w.Metrics.MessageExpired()
		}
	}
}

// DumpState returns a human-readable snapshot for debugging.
func (w *World) DumpState() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "t=%.1f nodes=%d links=%d\n", w.Now(), len(w.nodes), len(w.linkList))
	for _, n := range w.nodes {
		fmt.Fprintf(&sb, "  node %d at %v buf=%d/%dB msgs=%d\n", n.ID, n.pos, n.Buf.Used(), n.Buf.Capacity(), n.Buf.Len())
	}
	return sb.String()
}
