package network

import (
	"testing"

	"repro/internal/buffer"
	"repro/internal/geo"
	"repro/internal/sim"
)

// FuzzGridParity drives the incremental broad phase with fuzz-chosen
// move / teleport / park ("insert") sequences and checks, tick by tick,
// that the engine's contact set equals the naive O(N²) distance sweep —
// for the serial path and the sharded path simultaneously, which must
// additionally agree on link order.
//
// Input layout: data[0] picks the node count, data[1] bit 0 picks
// whether a speed bound is configured. The rest is consumed 3 bytes per
// (tick, node): an opcode plus a dx/dy payload. In bounded mode every op
// is a clamped small move (so the configured MaxSpeed stays truthful);
// in unbounded mode ops include arbitrary teleports and parking far
// outside the arena, which models removal plus re-insertion and is the
// worst case for incremental tracking.

// fuzzPuppet is a mover whose next position the fuzz loop scripts.
type fuzzPuppet struct {
	pos, next geo.Point
}

func (p *fuzzPuppet) Pos() geo.Point         { return p.pos }
func (p *fuzzPuppet) Step(float64) geo.Point { p.pos = p.next; return p.pos }

func FuzzGridParity(f *testing.F) {
	f.Add([]byte{7, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{12, 1, 200, 100, 50, 25, 12, 6, 3, 1, 0, 255, 128, 64, 32, 16, 8, 4, 2, 1})
	f.Add([]byte{20, 0, 2, 250, 5, 2, 5, 250, 3, 0, 0, 3, 1, 1, 0, 40, 40, 1, 200, 200})
	f.Add([]byte{5, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 5 {
			return
		}
		n := 4 + int(data[0]%20)
		bounded := data[1]&1 == 1
		ops := data[2:]

		cfg := Config{Range: 10, Bandwidth: 1000}
		if bounded {
			// Per-axis steps are clamped to 4 below: speed <= 4*sqrt(2) < 6.
			cfg.MaxSpeed = 6
		}
		shardedCfg := cfg
		shardedCfg.Shards = 2

		build := func(cfg Config) (*World, *sim.Runner, []*fuzzPuppet) {
			runner := sim.NewRunner(1)
			w := New(cfg, runner)
			puppets := make([]*fuzzPuppet, n)
			for i := range puppets {
				start := geo.Point{X: float64(i%5) * 7, Y: float64(i/5) * 7}
				puppets[i] = &fuzzPuppet{pos: start, next: start}
				w.AddNode(puppets[i], buffer.New(0, nil), &probe{})
			}
			w.Start()
			return w, runner, puppets
		}
		ws, rs, ps := build(cfg)
		wp, rp, pp := build(shardedCfg)
		// Narrow sub-grid stripes: teleports and even small moves cross
		// region boundaries constantly, stressing the parallel-safe
		// classification and the serial boundary reconcile.
		wp.grid.stripe = 4

		signed := func(b byte, scale float64) float64 { return (float64(b) - 128) * scale }
		const maxTicks = 64
		for tick := 1; tick <= maxTicks && len(ops) >= 3*n; tick++ {
			for i := 0; i < n; i++ {
				op, bx, by := ops[0], ops[1], ops[2]
				ops = ops[3:]
				cur := ps[i].next
				var next geo.Point
				switch {
				case bounded || op%4 < 2:
					// Small move; clamp to the bound in bounded mode.
					scale := 5.0 / 128
					if bounded {
						scale = 4.0 / 128
					}
					next = geo.Point{X: cur.X + signed(bx, scale), Y: cur.Y + signed(by, scale)}
				case op%4 == 2:
					// Teleport anywhere in [-100, 100]², negative included.
					next = geo.Point{X: signed(bx, 100.0/128), Y: signed(by, 100.0/128)}
				default:
					// Park far away (node leaves the scenario) or return.
					if cur.X < 5000 {
						next = geo.Point{X: 9000 + float64(i)*1000, Y: -9000}
					} else {
						next = geo.Point{X: float64(i) * 3, Y: 0}
					}
				}
				ps[i].next = next
				pp[i].next = next
			}
			rs.Run(float64(tick))
			rp.Run(float64(tick))
			comparePairSets(t, tick, bruteForcePairs(ws), linkPairs(ws))
			comparePairSets(t, tick, bruteForcePairs(wp), linkPairs(wp))
			if len(ws.linkList) != len(wp.linkList) {
				t.Fatalf("tick %d: serial has %d links, sharded %d", tick, len(ws.linkList), len(wp.linkList))
			}
			for x := range ws.linkList {
				a, b := ws.linkList[x], wp.linkList[x]
				if a.a.ID != b.a.ID || a.b.ID != b.b.ID {
					t.Fatalf("tick %d: link order diverged at %d: (%d,%d) vs (%d,%d)",
						tick, x, a.a.ID, a.b.ID, b.a.ID, b.b.ID)
				}
			}
		}
	})
}
