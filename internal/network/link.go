package network

import (
	"fmt"

	"repro/internal/sim"
)

// Link is an active contact between two nodes. It carries at most one
// transfer at a time at the configured bandwidth (half-duplex shared
// medium, as in ONE); senders alternate when both have traffic.
type Link struct {
	a, b  *Node // a.ID < b.ID
	since float64

	cur  *transfer
	ev   *sim.Event
	turn int  // 0: a sends next, 1: b sends next
	gone bool // torn down by a scripted event; linkList compaction flag
}

type transfer struct {
	plan     *Plan
	from, to *Node
}

func (l *Link) other(n *Node) *Node {
	if n == l.a {
		return l.b
	}
	return l.a
}

// Busy reports whether a transfer is in flight.
func (l *Link) Busy() bool { return l.cur != nil }

// Since returns the contact establishment time.
func (l *Link) Since() float64 { return l.since }

// pump starts the next transfer if the link is idle, polling the two
// routers in alternating order for fairness.
func (l *Link) pump(w *World, t float64) {
	for l.cur == nil {
		var plan *Plan
		var from *Node
		first, second := l.a, l.b
		if l.turn == 1 {
			first, second = l.b, l.a
		}
		if p := first.Router.NextTransfer(t, l.other(first)); p != nil {
			plan, from = p, first
			l.turn ^= 1
		} else if p := second.Router.NextTransfer(t, l.other(second)); p != nil {
			plan, from = p, second
		}
		if plan == nil {
			return // both drained; wait for a wake
		}
		l.start(w, t, plan, from)
		return
	}
}

// start validates plan and schedules its completion event.
func (l *Link) start(w *World, t float64, plan *Plan, from *Node) {
	to := l.other(from)
	c := from.Copy(plan.Msg.ID)
	if c == nil {
		panic(fmt.Sprintf("network: node %d planned transfer of message %d it does not hold", from.ID, plan.Msg.ID))
	}
	if plan.Give < 1 {
		panic(fmt.Sprintf("network: plan gives %d replicas", plan.Give))
	}
	if to.HasCopy(plan.Msg.ID) {
		panic(fmt.Sprintf("network: node %d planned transfer of message %d to node %d which already holds it", from.ID, plan.Msg.ID, to.ID))
	}
	if plan.Msg.To == to.ID && to.DeliveredHere(plan.Msg.ID) {
		panic(fmt.Sprintf("network: node %d planned re-delivery of message %d to node %d", from.ID, plan.Msg.ID, to.ID))
	}
	l.cur = &transfer{plan: plan, from: from, to: to}
	dur := float64(plan.Msg.Size) / w.cfg.Bandwidth
	l.ev = w.runner.Events.Schedule(t+dur, func(now float64) {
		l.ev = nil
		w.completeTransfer(l, now)
	})
}

// abort cancels the in-flight transfer (contact lost).
func (l *Link) abort(w *World) {
	if l.cur == nil {
		return
	}
	w.runner.Events.Cancel(l.ev)
	l.ev = nil
	l.cur = nil
	w.Metrics.TransferAborted()
}
