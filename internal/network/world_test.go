package network

import (
	"math"
	"testing"

	"repro/internal/buffer"
	"repro/internal/geo"
	"repro/internal/msg"
	"repro/internal/sim"
)

// scriptMover returns positions from a time-indexed function.
type scriptMover struct {
	t  float64
	at func(t float64) geo.Point
}

func (m *scriptMover) Pos() geo.Point { return m.at(m.t) }
func (m *scriptMover) Step(dt float64) geo.Point {
	m.t += dt
	return m.at(m.t)
}

// probe is a minimal router recording engine callbacks; its NextTransfer
// serves plans from a queue.
type probe struct {
	self *Node
	w    *World

	ups, downs []int
	received   []int
	created    []int
	sent       []int
	queue      []*Plan
	quota      int
}

func (p *probe) Init(self *Node, w *World) { p.self = self; p.w = w }
func (p *probe) InitialReplicas(*msg.Message) int {
	if p.quota > 0 {
		return p.quota
	}
	return 1
}
func (p *probe) ContactUp(_ float64, peer *Node)   { p.ups = append(p.ups, peer.ID) }
func (p *probe) ContactDown(_ float64, peer *Node) { p.downs = append(p.downs, peer.ID) }
func (p *probe) Created(_ float64, c *msg.Copy)    { p.created = append(p.created, c.M.ID) }
func (p *probe) Received(_ float64, c *msg.Copy, _ *Node) {
	p.received = append(p.received, c.M.ID)
}
func (p *probe) Sent(_ float64, plan *Plan, _ *Node, _ bool) {
	p.sent = append(p.sent, plan.Msg.ID)
}
func (p *probe) NextTransfer(_ float64, peer *Node) *Plan {
	for len(p.queue) > 0 {
		plan := p.queue[0]
		p.queue = p.queue[1:]
		c := p.self.Copy(plan.Msg.ID)
		if c == nil || peer.HasCopy(plan.Msg.ID) {
			continue
		}
		return plan
	}
	return nil
}

// testWorld builds a world of probes at fixed or scripted positions.
// Range 10 m, 1000 B/s bandwidth (1 s per kilobyte), tick 1 s.
func testWorld(t *testing.T, movers []*scriptMover) (*World, *sim.Runner, []*probe) {
	t.Helper()
	runner := sim.NewRunner(1)
	w := New(Config{Range: 10, Bandwidth: 1000}, runner)
	probes := make([]*probe, len(movers))
	for i, mv := range movers {
		probes[i] = &probe{}
		w.AddNode(mv, buffer.New(0, nil), probes[i])
	}
	w.Start()
	return w, runner, probes
}

func fixed(x, y float64) *scriptMover {
	return &scriptMover{at: func(float64) geo.Point { return geo.Point{X: x, Y: y} }}
}

func TestContactDetection(t *testing.T) {
	// Node 1 approaches node 0, stays, then leaves.
	approach := &scriptMover{at: func(tt float64) geo.Point {
		switch {
		case tt < 5:
			return geo.Point{X: 100, Y: 0}
		case tt < 10:
			return geo.Point{X: 5, Y: 0}
		default:
			return geo.Point{X: 100, Y: 0}
		}
	}}
	_, runner, probes := testWorld(t, []*scriptMover{fixed(0, 0), approach})
	runner.Run(20)
	if len(probes[0].ups) != 1 || probes[0].ups[0] != 1 {
		t.Fatalf("node 0 ups = %v", probes[0].ups)
	}
	if len(probes[1].ups) != 1 || probes[1].ups[0] != 0 {
		t.Fatalf("node 1 ups = %v", probes[1].ups)
	}
	if len(probes[0].downs) != 1 || len(probes[1].downs) != 1 {
		t.Fatalf("downs = %v / %v", probes[0].downs, probes[1].downs)
	}
}

func TestNoContactBeyondRange(t *testing.T) {
	_, runner, probes := testWorld(t, []*scriptMover{fixed(0, 0), fixed(10.5, 0)})
	runner.Run(10)
	if len(probes[0].ups) != 0 {
		t.Fatalf("unexpected contact: %v", probes[0].ups)
	}
}

func TestContactExactlyAtRange(t *testing.T) {
	_, runner, probes := testWorld(t, []*scriptMover{fixed(0, 0), fixed(10, 0)})
	runner.Run(3)
	if len(probes[0].ups) != 1 {
		t.Fatal("contact at exactly the range boundary should count")
	}
}

func TestTransferDeliveryAndTiming(t *testing.T) {
	w, runner, probes := testWorld(t, []*scriptMover{fixed(0, 0), fixed(5, 0)})
	m := w.CreateMessage(0, 0, 1, 2000, 1e6) // 2 s at 1000 B/s
	if m == nil {
		t.Fatal("message refused")
	}
	if len(probes[0].created) != 1 {
		t.Fatal("Created not called")
	}
	probes[0].queue = append(probes[0].queue, Forward(w.Node(0).Copy(m.ID)))
	runner.Run(10)
	if !w.Metrics.Delivered(m.ID) {
		t.Fatal("message not delivered")
	}
	s := w.Metrics.Summary()
	if s.Relays != 1 || s.Delivered != 1 {
		t.Fatalf("relays=%d delivered=%d", s.Relays, s.Delivered)
	}
	// Delivery latency: contact at first tick (t=1), transfer 2 s -> ~3 s.
	if s.AvgLatency < 2 || s.AvgLatency > 4 {
		t.Errorf("latency = %g, want ~3", s.AvgLatency)
	}
	// Destination never buffers its own deliveries.
	if w.Node(1).Buf.Len() != 0 {
		t.Error("destination buffered a delivered message")
	}
	// The sender's copy is removed after delivering to the destination.
	if w.Node(0).HasCopy(m.ID) {
		t.Error("sender kept its copy after delivery")
	}
	if !w.Node(0).KnowsDelivered(m.ID) || !w.Node(1).KnowsDelivered(m.ID) {
		t.Error("delivery knowledge not recorded")
	}
}

func TestRelayToIntermediate(t *testing.T) {
	w, runner, probes := testWorld(t, []*scriptMover{fixed(0, 0), fixed(5, 0)})
	m := w.CreateMessage(0, 0, 3, 1000, 1e6) // destination not present (node id 3 invalid dest is fine: never met)
	_ = m
	_ = probes
	runner.Run(1) // contact starts; nothing queued, no transfer
	if w.Metrics.Summary().Relays != 0 {
		t.Fatal("transfer happened with empty queue")
	}
}

func TestQuotaSplitSemantics(t *testing.T) {
	w, runner, probes := testWorld(t, []*scriptMover{fixed(0, 0), fixed(5, 0), fixed(100, 100)})
	probes[0].quota = 10
	m := w.CreateMessage(0, 0, 2, 1000, 1e6) // destined to the far node
	c := w.Node(0).Copy(m.ID)
	if c.Replicas != 10 {
		t.Fatalf("initial quota = %d", c.Replicas)
	}
	probes[0].queue = append(probes[0].queue, Split(c, 4))
	runner.Run(5)
	if got := w.Node(0).Copy(m.ID).Replicas; got != 6 {
		t.Errorf("sender quota = %d, want 6", got)
	}
	rc := w.Node(1).Copy(m.ID)
	if rc == nil || rc.Replicas != 4 {
		t.Fatalf("receiver copy = %+v, want 4 replicas", rc)
	}
	if rc.Hops != 1 {
		t.Errorf("receiver hops = %d, want 1", rc.Hops)
	}
	if len(probes[1].received) != 1 {
		t.Error("Received not called")
	}
	if len(probes[0].sent) != 1 {
		t.Error("Sent not called")
	}
}

func TestForwardRelinquishes(t *testing.T) {
	w, runner, probes := testWorld(t, []*scriptMover{fixed(0, 0), fixed(5, 0), fixed(100, 100)})
	m := w.CreateMessage(0, 0, 2, 1000, 1e6)
	probes[0].queue = append(probes[0].queue, Forward(w.Node(0).Copy(m.ID)))
	runner.Run(5)
	if w.Node(0).HasCopy(m.ID) {
		t.Error("forward left a copy at the sender")
	}
	if !w.Node(1).HasCopy(m.ID) {
		t.Error("forward did not reach the peer")
	}
}

func TestReplicateKeepsQuota(t *testing.T) {
	w, runner, probes := testWorld(t, []*scriptMover{fixed(0, 0), fixed(5, 0), fixed(100, 100)})
	probes[0].quota = 7
	m := w.CreateMessage(0, 0, 2, 1000, 1e6)
	probes[0].queue = append(probes[0].queue, Replicate(w.Node(0).Copy(m.ID)))
	runner.Run(5)
	if got := w.Node(0).Copy(m.ID).Replicas; got != 7 {
		t.Errorf("sender quota after replicate = %d, want 7", got)
	}
	if got := w.Node(1).Copy(m.ID).Replicas; got != 1 {
		t.Errorf("receiver quota = %d, want 1", got)
	}
}

func TestAbortOnContactLoss(t *testing.T) {
	// Node 1 leaves at t=3; a 5-second transfer starting around t=1 cannot
	// complete.
	leave := &scriptMover{at: func(tt float64) geo.Point {
		if tt < 3 {
			return geo.Point{X: 5, Y: 0}
		}
		return geo.Point{X: 500, Y: 0}
	}}
	w, runner, probes := testWorld(t, []*scriptMover{fixed(0, 0), leave})
	m := w.CreateMessage(0, 0, 1, 5000, 1e6)
	probes[0].queue = append(probes[0].queue, Forward(w.Node(0).Copy(m.ID)))
	runner.Run(10)
	s := w.Metrics.Summary()
	if s.Aborts != 1 {
		t.Errorf("aborts = %d, want 1", s.Aborts)
	}
	if s.Relays != 0 || s.Delivered != 0 {
		t.Errorf("relays=%d delivered=%d after abort", s.Relays, s.Delivered)
	}
	if !w.Node(0).HasCopy(m.ID) {
		t.Error("aborted forward lost the sender copy")
	}
}

func TestExpirySweep(t *testing.T) {
	w, runner, _ := testWorld(t, []*scriptMover{fixed(0, 0), fixed(1000, 0)})
	w.CreateMessage(0, 0, 1, 1000, 5) // expires at t=5
	runner.Run(30)                    // sweep runs every 10 ticks
	if w.Node(0).Buf.Len() != 0 {
		t.Fatal("expired message not purged")
	}
	if w.Metrics.Summary().Expired != 1 {
		t.Errorf("expired = %d", w.Metrics.Summary().Expired)
	}
}

func TestLateDeliveryNotCounted(t *testing.T) {
	w, runner, probes := testWorld(t, []*scriptMover{fixed(0, 0), fixed(5, 0)})
	m := w.CreateMessage(0, 0, 1, 8000, 3) // 8 s transfer, 3 s TTL
	probes[0].queue = append(probes[0].queue, Forward(w.Node(0).Copy(m.ID)))
	runner.Run(15)
	s := w.Metrics.Summary()
	if s.Delivered != 0 {
		t.Error("expired arrival counted as delivery")
	}
	if s.Relays != 1 {
		t.Errorf("relays = %d, want 1 (bytes were spent)", s.Relays)
	}
}

func TestCreateMessageSelfLoopPanics(t *testing.T) {
	w, _, _ := testWorld(t, []*scriptMover{fixed(0, 0), fixed(100, 0)})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.CreateMessage(0, 1, 1, 10, 10)
}

func TestGridPairsMatchBruteForce(t *testing.T) {
	movers := []*scriptMover{
		fixed(0, 0), fixed(3, 4), fixed(9.9, 0), fixed(20, 20),
		fixed(20, 29), fixed(25, 25), fixed(-5, -5), fixed(0, 10),
	}
	w, runner, _ := testWorld(t, movers)
	runner.Run(1)
	want := map[[2]int32]bool{}
	nodes := w.Nodes()
	for i := range nodes {
		for j := i + 1; j < len(nodes); j++ {
			if nodes[i].Pos().Dist(nodes[j].Pos()) <= 10 {
				want[[2]int32{int32(i), int32(j)}] = true
			}
		}
	}
	got := map[[2]int32]bool{}
	for _, l := range w.linkList {
		got[[2]int32{int32(l.a.ID), int32(l.b.ID)}] = true
	}
	if len(got) != len(want) {
		t.Fatalf("links = %v, want %d pairs", got, len(want))
	}
	for p := range want {
		if !got[p] {
			t.Fatalf("missing pair %v", p)
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() Summary2 {
		movers := []*scriptMover{fixed(0, 0), fixed(5, 0), fixed(8, 3)}
		w, runner, probes := testWorld(t, movers)
		m1 := w.CreateMessage(0, 0, 2, 1000, 1e6)
		m2 := w.CreateMessage(0, 1, 2, 1000, 1e6)
		probes[0].queue = append(probes[0].queue, Forward(w.Node(0).Copy(m1.ID)))
		probes[1].queue = append(probes[1].queue, Forward(w.Node(1).Copy(m2.ID)))
		runner.Run(10)
		s := w.Metrics.Summary()
		return Summary2{s.Delivered, s.Relays}
	}
	if run() != run() {
		t.Fatal("identical runs diverged")
	}
}

// Summary2 is a tiny comparable slice of the run outcome.
type Summary2 struct{ Delivered, Relays int }

func TestInContactAndContacts(t *testing.T) {
	w, runner, _ := testWorld(t, []*scriptMover{fixed(0, 0), fixed(5, 0), fixed(0, 5)})
	runner.Run(2)
	n0 := w.Node(0)
	if !n0.InContactWith(1) || !n0.InContactWith(2) {
		t.Fatalf("contacts = %v", n0.Contacts())
	}
	if len(n0.Contacts()) != 2 {
		t.Fatalf("contacts = %v", n0.Contacts())
	}
	if math.IsNaN(w.Now()) {
		t.Fatal("impossible")
	}
}
