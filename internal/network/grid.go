package network

import (
	"math"

	"repro/internal/geo"
)

// This file is the engine's broad phase: a persistent, incrementally
// maintained spatial grid plus a conservative pair re-check scheduler.
//
// The previous implementation rebuilt a map[uint64][]int32 spatial hash
// from scratch every tick and distance-tested every 3x3-neighbourhood
// candidate pair, which dominated whole-run CPU profiles. The incremental
// design exploits two facts:
//
//  1. Nodes cross cell boundaries rarely (a bus at 13.9 m/s crosses a
//     10 m cell every ~3 ticks at the paper's 0.25 s tick, and not at all
//     while dwelling), so bucket membership is nearly static. The grid
//     keeps every node bucketed across ticks and re-buckets only on cell
//     change.
//
//  2. A pair at distance D with per-node speed bound vmax cannot come
//     into radio range R before (D-R)/(2*vmax) seconds elapse, so a pair
//     seen far apart provably needs no distance test for many ticks.
//     Checks are parked on a timing wheel and each check reschedules the
//     next one as far out as the bound allows.
//
// Correctness does not depend on the speed bound: a pair whose cells are
// not adjacent (Chebyshev distance > 1) is strictly farther apart than one
// cell (= R), and becoming adjacent requires one of the two nodes to
// change cell, which triggers a neighbourhood rescan that (re-)tracks the
// pair the very tick it happens. The speed bound only stretches re-check
// intervals for pairs already known to the tracker; with MaxSpeed == 0
// (unknown bound, e.g. scripted or trace-replay movers) tracked pairs are
// simply re-checked every tick.
//
// Sub-grids (sharded worlds): the grid is split into `regions` independent
// open-addressed tables over a static spatial partition — vertical stripes
// of gridStripeCells cells, striped round-robin across regions. A cell's
// table depends only on its x coordinate, so region membership is a pure
// function of position and never migrates. The sharded tick path re-buckets
// movers that stay inside one region on one goroutine per region (all
// mutations — removal, insertion, table growth — touch only that region's
// table); only stripe-boundary crossings fall back to the serial merge.
// With regions == 1 (the serial path) the exact single-table behaviour is
// preserved. See shard.go for the phase structure and DESIGN.md for the
// safety argument.

// gridSlot is one open-addressed bucket: the nodes currently inside one
// grid cell, kept in ascending id order so scans are deterministic.
// Buckets are reused across ticks: emptied buckets keep their backing
// array and are stamped with the epoch they emptied instead of being
// deleted (open-addressed tables cannot tombstone cheaply); stale empties
// are dropped wholesale on the next table growth.
type gridSlot struct {
	key        uint64
	used       bool
	emptySince uint64 // epoch the bucket last became empty (diagnostics/compaction)
	nodes      []int32

	// nbr caches packed (region, slot) references of the 3x3 cell
	// neighbourhood (-1 for cells with no bucket), valid while nbrGen
	// matches the layout-generation sum of the regions the neighbourhood
	// spans (gensum). Neighbourhood scans are the engine's hottest loop;
	// the cache removes all nine hash probes from the steady state.
	nbrGen uint64
	nbr    [9]int64
}

// gridTable is one region's open-addressed hash table of buckets.
type gridTable struct {
	slots     []gridSlot
	mask      uint32
	used      int    // occupied (used==true) slot count, including empty buckets
	layoutGen uint64 // bumped on growth: slot indices into this table are stale
}

// cellGrid is the persistent spatial hash over node positions with cell
// size equal to the radio range, so in-range pairs always sit in the same
// or adjacent cells. Buckets live in per-region tables (one region when
// serial).
type cellGrid struct {
	cell    float64
	regions int   // region (sub-grid table) count; 1 = unpartitioned
	stripe  int32 // stripe width of the static partition, in cells
	tables  []gridTable

	cellOf    []uint64 // per node: packed cell key of the current bucket
	slotOf    []int32  // per node: slot index of the current bucket, -1 if none
	prevCell  []uint64 // per node: cell key before the last cell change
	prevValid []bool   // per node: prevCell holds a real cell (not first insertion)
	moveEpoch []uint64 // per node: epoch of the last cell change
	epoch     uint64   // advanced once per tick by the world
}

// gridStripeCells is the stripe width of the static spatial partition in
// cells. It must be >= 4 so a stripe has interior cells whose whole
// two-ring (the cells a bucket creation may read or patch) stays inside
// one region; tests shrink it to force boundary traffic.
const gridStripeCells = 32

const gridInitialSlots = 256

func (g *cellGrid) init(cell float64, regions int) {
	g.cell = cell
	if regions < 1 {
		regions = 1
	}
	g.regions = regions
	g.stripe = gridStripeCells
	g.tables = make([]gridTable, regions)
	for r := range g.tables {
		t := &g.tables[r]
		t.slots = make([]gridSlot, gridInitialSlots)
		t.mask = gridInitialSlots - 1
		// Fresh slots carry nbrGen 0; starting the layout generation above
		// it keeps their zeroed neighbour caches from ever reading as valid.
		t.layoutGen = 1
	}
}

// ensure sizes the per-node bookkeeping for n nodes.
func (g *cellGrid) ensure(n int) {
	for len(g.cellOf) < n {
		g.cellOf = append(g.cellOf, 0)
		g.slotOf = append(g.slotOf, -1)
		g.prevCell = append(g.prevCell, 0)
		g.prevValid = append(g.prevValid, false)
		g.moveEpoch = append(g.moveEpoch, 0)
	}
}

func cellKeyOf(cx, cy int32) uint64 {
	return uint64(uint32(cx))<<32 | uint64(uint32(cy))
}

// floorDiv32 is floored (not truncated) integer division for b > 0, so
// stripes tile negative coordinates seamlessly.
func floorDiv32(a, b int32) int32 {
	q := a / b
	if a%b != 0 && a < 0 {
		q--
	}
	return q
}

// regionOfCx returns the region owning cell column cx: stripes of g.stripe
// columns assigned round-robin across regions.
func (g *cellGrid) regionOfCx(cx int32) int {
	if g.regions == 1 {
		return 0
	}
	r := int(floorDiv32(cx, g.stripe)) % g.regions
	if r < 0 {
		r += g.regions
	}
	return r
}

func (g *cellGrid) regionOfKey(key uint64) int {
	return g.regionOfCx(int32(uint32(key >> 32)))
}

// gensum is the neighbour-cache validity stamp for a bucket in cell column
// cx: the sum of the layout generations of the regions its 3x3
// neighbourhood can span (columns cx-1..cx+1). Generations only grow, so
// the sum strictly increases whenever any involved table reorganises,
// invalidating exactly the caches whose stored slot indices could have
// moved.
func (g *cellGrid) gensum(cx int32) uint64 {
	if g.regions == 1 {
		return 3 * g.tables[0].layoutGen
	}
	return g.tables[g.regionOfCx(cx-1)].layoutGen +
		g.tables[g.regionOfCx(cx)].layoutGen +
		g.tables[g.regionOfCx(cx+1)].layoutGen
}

// packSlot packs a (region, slot) bucket reference into one int64 cache
// entry; -1 marks "no bucket".
func packSlot(region int, slot int32) int64 {
	return int64(region)<<32 | int64(uint32(slot))
}

// hash64 is the splitmix64 finaliser; cell keys are sequential in each
// coordinate, so they need real mixing before masking.
func hash64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// findSlot returns the slot index for key, probing linearly from its hash.
// If absent it returns the first free slot (not yet marked used).
func (t *gridTable) findSlot(key uint64) int32 {
	i := uint32(hash64(key)) & t.mask
	for {
		s := &t.slots[i]
		if !s.used || s.key == key {
			return int32(i)
		}
		i = (i + 1) & t.mask
	}
}

// grow doubles the table and re-inserts every bucket. Buckets that have
// sat empty for more than one wheel revolution are reclaimed — their epoch
// stamp proves no node has been near them recently — while freshly-emptied
// ones are kept so cells on active routes are not churned. Node slot
// indices are rebuilt and every neighbour cache referencing this table is
// invalidated via the layout generation (all mutations stay within this
// region: nodes bucketed here have their current cell here by definition).
func (t *gridTable) grow(g *cellGrid) {
	old := t.slots
	t.slots = make([]gridSlot, len(old)*2)
	t.mask = uint32(len(t.slots) - 1)
	t.used = 0
	t.layoutGen++
	for i := range old {
		s := &old[i]
		if !s.used {
			continue
		}
		if len(s.nodes) == 0 && g.epoch > s.emptySince+wheelSize {
			continue
		}
		j := t.findSlot(s.key)
		t.slots[j] = gridSlot{key: s.key, used: true, emptySince: s.emptySince, nodes: s.nodes}
		t.used++
		for _, id := range s.nodes {
			g.slotOf[id] = j
		}
	}
}

// patchNeighborCaches splices freshly-created bucket j (region r) for cell
// key into the still-valid neighbour caches around it, so a bucket
// creation does not invalidate every cache in the table.
func (g *cellGrid) patchNeighborCaches(r int, j int32, key uint64) {
	cx := int32(uint32(key >> 32))
	cy := int32(uint32(key))
	for dx := int32(-1); dx <= 1; dx++ {
		ncx := cx + dx
		nr := g.regionOfCx(ncx)
		nt := &g.tables[nr]
		for dy := int32(-1); dy <= 1; dy++ {
			if dx == 0 && dy == 0 {
				continue
			}
			ni := nt.findSlot(cellKeyOf(ncx, cy+dy))
			ns := &nt.slots[ni]
			if !ns.used || ns.nbrGen != g.gensum(ncx) {
				continue
			}
			// The neighbour sees the new cell at the inverse offset.
			ns.nbr[(1-dx)*3+(1-dy)] = packSlot(r, j)
		}
	}
}

// update re-buckets node i at position pos and reports whether its cell
// changed (including first insertion). The sharded path calls it from one
// goroutine per region for movers rebucketParallelSafe vouched for, and
// serially for everything else.
func (g *cellGrid) update(i int32, pos geo.Point) bool {
	cx := int32(math.Floor(pos.X / g.cell))
	cy := int32(math.Floor(pos.Y / g.cell))
	key := cellKeyOf(cx, cy)
	if g.slotOf[i] >= 0 && g.cellOf[i] == key {
		return false
	}
	if g.slotOf[i] >= 0 {
		g.prevCell[i] = g.cellOf[i]
		g.prevValid[i] = true
		g.removeFromBucket(i)
	} else {
		g.prevValid[i] = false
	}
	g.moveEpoch[i] = g.epoch
	r := g.regionOfCx(cx)
	t := &g.tables[r]
	j := t.findSlot(key)
	s := &t.slots[j]
	if !s.used {
		s.used = true
		s.key = key
		t.used++
		g.patchNeighborCaches(r, j, key)
	}
	// Insert keeping ascending id order (buckets are small).
	s.nodes = append(s.nodes, i)
	for k := len(s.nodes) - 1; k > 0 && s.nodes[k-1] > i; k-- {
		s.nodes[k], s.nodes[k-1] = s.nodes[k-1], s.nodes[k]
	}
	g.cellOf[i] = key
	g.slotOf[i] = j
	if t.used*4 > len(t.slots)*3 {
		t.grow(g)
	}
	return true
}

// rebucketParallelSafe reports whether re-bucketing node i into cell
// (cx, key) mutates only that cell's own region, so the sharded tick may
// run it on the region's goroutine. It must hold until the re-bucket
// executes, given that only region goroutines (region-local mutations) run
// in between. True when the node stays in one region and either
//
//   - the destination column is interior to its stripe with a 2-column
//     margin, so a bucket creation's cache patching (columns cx±1) and the
//     gensum reads it performs (columns cx±2) stay inside the region, or
//   - the destination bucket already exists and is non-empty, so no
//     creation happens (non-empty this tick means grow cannot reclaim it
//     before the re-bucket runs: reclaim needs a whole wheel revolution of
//     emptiness).
//
// It only reads the grid; the sharded phase that calls it runs no mutator.
func (g *cellGrid) rebucketParallelSafe(i int32, cx int32, key uint64) bool {
	if g.regions == 1 {
		return true
	}
	r := g.regionOfCx(cx)
	if g.slotOf[i] >= 0 && g.regionOfKey(g.cellOf[i]) != r {
		return false
	}
	m := cx % g.stripe
	if m < 0 {
		m += g.stripe
	}
	if m >= 2 && m <= g.stripe-3 {
		return true
	}
	t := &g.tables[r]
	s := &t.slots[t.findSlot(key)]
	return s.used && len(s.nodes) > 0
}

// removeFromBucket takes node i out of its current bucket, preserving
// order.
func (g *cellGrid) removeFromBucket(i int32) {
	t := &g.tables[g.regionOfKey(g.cellOf[i])]
	s := &t.slots[g.slotOf[i]]
	for k, id := range s.nodes {
		if id == i {
			s.nodes = append(s.nodes[:k], s.nodes[k+1:]...)
			break
		}
	}
	if len(s.nodes) == 0 {
		s.emptySince = g.epoch
	}
	g.slotOf[i] = -1
}

// neighborSlots returns the cached 3x3 neighbour bucket references (-1
// where no bucket exists) of node i's bucket, recomputing the cache when
// any involved table's layout changed. Index k maps to offset
// (k/3-1, k%3-1). The sharded path calls it from the goroutine owning the
// bucket's region (the only writer of its cache) while no table mutates;
// the cross-region probes are plain reads.
func (g *cellGrid) neighborSlots(i int32) *[9]int64 {
	key := g.cellOf[i]
	cx := int32(uint32(key >> 32))
	cy := int32(uint32(key))
	s := &g.tables[g.regionOfCx(cx)].slots[g.slotOf[i]]
	gen := g.gensum(cx)
	if s.nbrGen != gen {
		k := 0
		for dx := int32(-1); dx <= 1; dx++ {
			ncx := cx + dx
			nr := g.regionOfCx(ncx)
			nt := &g.tables[nr]
			for dy := int32(-1); dy <= 1; dy++ {
				j := nt.findSlot(cellKeyOf(ncx, cy+dy))
				p := int64(-1)
				if nt.slots[j].used {
					p = packSlot(nr, j)
				}
				s.nbr[k] = p
				k++
			}
		}
		s.nbrGen = gen
	}
	return &s.nbr
}

// neighborsCached returns the 3x3 neighbour bucket references of node i's
// bucket, requiring the cache to be warm already. Shard workers use it
// concurrently: unlike neighborSlots it never writes, so concurrent scans
// of one bucket are race-free. The cache-warming phase covers every moved
// node's bucket (the only buckets scanned) before workers run.
func (g *cellGrid) neighborsCached(i int32) *[9]int64 {
	key := g.cellOf[i]
	cx := int32(uint32(key >> 32))
	s := &g.tables[g.regionOfCx(cx)].slots[g.slotOf[i]]
	if s.nbrGen != g.gensum(cx) {
		panic("network: neighborsCached on a stale neighbour cache")
	}
	return &s.nbr
}

// bucket returns the node list of a packed (region, slot) reference.
func (g *cellGrid) bucket(p int64) []int32 {
	return g.tables[p>>32].slots[uint32(p)].nodes
}

// --- pair re-check scheduler ---

// wheelSize is the horizon of the re-check timing wheel in ticks. Skips
// are capped at wheelSize-1 so every parked check lands within one wheel
// revolution, which keeps slot membership unambiguous without storing due
// ticks.
const wheelSize = 64

// pairKey packs a canonical (a<b) pair.
func pairKey(a, b int32) uint64 { return uint64(uint32(a))<<32 | uint64(uint32(b)) }

// pairSched parks candidate pairs on a timing wheel until their next
// provably-necessary distance check. The tracked set holds exactly the
// pairs with one parked check; everything else is guaranteed non-adjacent
// on the grid and is rediscovered by cell-change rescans.
type pairSched struct {
	wheel   [wheelSize][]uint64
	tracked pairSet
}

func (ps *pairSched) init(n int) { ps.tracked.init(n) }

// track parks a check for pair (a,b) at the given tick unless the pair is
// already tracked. It reports whether the pair was newly tracked.
func (ps *pairSched) track(a, b int32, tick uint64) bool {
	if !ps.tracked.add(a, b) {
		return false
	}
	slot := tick % wheelSize
	ps.wheel[slot] = append(ps.wheel[slot], pairKey(a, b))
	return true
}

// reschedule parks the next check of an already-tracked pair.
func (ps *pairSched) reschedule(key uint64, tick uint64) {
	slot := tick % wheelSize
	ps.wheel[slot] = append(ps.wheel[slot], key)
}

// untrack removes the pair from the tracked set; its parked check must be
// the one currently firing (it is simply not rescheduled).
func (ps *pairSched) untrack(a, b int32) { ps.tracked.remove(a, b) }

// pairSet is a set of canonical node pairs. For realistic fleet sizes it
// is a flat n*n bitset (~7 KB at the paper's largest 240-node scale); for
// very large fleets it falls back to a hash set to avoid quadratic memory.
type pairSet struct {
	n     int
	words []uint64            // bitset mode: bit a*n+b
	m     map[uint64]struct{} // fallback mode
}

// pairSetBitsetLimit caps bitset mode at n*n = 64M bits (8 MB).
const pairSetBitsetLimit = 8192

func (s *pairSet) init(n int) {
	s.n = n
	if n <= pairSetBitsetLimit {
		s.words = make([]uint64, (n*n+63)/64)
		return
	}
	s.m = make(map[uint64]struct{})
}

// add inserts pair (a<b) and reports whether it was absent.
func (s *pairSet) add(a, b int32) bool {
	if s.words != nil {
		bit := uint64(a)*uint64(s.n) + uint64(b)
		w, m := bit/64, uint64(1)<<(bit%64)
		if s.words[w]&m != 0 {
			return false
		}
		s.words[w] |= m
		return true
	}
	k := pairKey(a, b)
	if _, ok := s.m[k]; ok {
		return false
	}
	s.m[k] = struct{}{}
	return true
}

// has reports whether pair (a<b) is present. It is read-only, so shard
// workers may call it concurrently while no tracker mutation runs.
func (s *pairSet) has(a, b int32) bool {
	if s.words != nil {
		bit := uint64(a)*uint64(s.n) + uint64(b)
		return s.words[bit/64]&(uint64(1)<<(bit%64)) != 0
	}
	_, ok := s.m[pairKey(a, b)]
	return ok
}

func (s *pairSet) remove(a, b int32) {
	if s.words != nil {
		bit := uint64(a)*uint64(s.n) + uint64(b)
		s.words[bit/64] &^= uint64(1) << (bit % 64)
		return
	}
	delete(s.m, pairKey(a, b))
}
