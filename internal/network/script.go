package network

import "repro/internal/obs"

// Scripted (trace-replay) worlds: instead of moving nodes and detecting
// contacts geometrically, the world fires a pre-recorded contact event
// script. Mobility advance, grid maintenance and pair sweeps are skipped
// entirely — the per-tick cost reduces to the contacts that actually
// happen — while transfers, buffers, routers, traffic and metrics run
// through the exact same code as a live world. Because the script stores
// events in engine firing order (downs before ups within a tick, ups in
// ascending pair order), a replayed world is bit-identical to the
// recording run for every quantity that does not read node positions.

// ScriptEvent is one scripted contact transition: at world tick Tick the
// contact between nodes A and B (A < B) comes up or goes down. Tick
// indexes count from 1, matching World.TickCount during live runs.
type ScriptEvent struct {
	Tick uint64
	Up   bool
	A, B int32
}

// OnContact registers a contact observer fired on every contact
// transition (up and down) from both the serial and sharded tick paths,
// in the engine's deterministic firing order. Recorders use it to capture
// a world's contact script.
func (w *World) OnContact(f func(tick uint64, up bool, a, b int32)) {
	w.onContact = append(w.onContact, f)
}

// TickCount returns the number of ticks the world has executed.
func (w *World) TickCount() uint64 { return w.tickCount }

// SetContactScript switches the world to scripted replay before Start:
// ticks fire the given events (which must be tick-ordered, in engine
// firing order) instead of advancing movers and detecting contacts. The
// world's node count and tick interval must match the recording; the
// caller guarantees that via the script's content address. Sharding is
// forced off — a scripted tick is too cheap to split.
func (w *World) SetContactScript(events []ScriptEvent) {
	if w.started {
		panic("network: SetContactScript after Start")
	}
	w.scripted = true
	w.script = events
	w.cfg.Shards = 0
}

// Scripted reports whether the world replays a contact script.
func (w *World) Scripted() bool { return w.scripted }

// tickScripted advances one scripted tick: fire the script's events for
// this tick in recorded order, then run the usual expiry sweep cadence.
// Positions are never read or written.
func (w *World) tickScripted(t float64) {
	w.lastTick = t
	w.tickCount++
	st := w.prof.Start()
	downs := false
	for w.scriptPos < len(w.script) {
		e := w.script[w.scriptPos]
		if e.Tick > w.tickCount {
			break
		}
		w.scriptPos++
		if e.Up {
			w.contactUp(w.nodes[e.A], w.nodes[e.B], t)
			continue
		}
		// The live detector removes a downed link from linkList in its
		// keep-sweep; here we mark it and compact once per tick below.
		if l := w.nodes[e.A].linkTo(w.nodes[e.B]); l != nil {
			w.contactDown(l, t)
			l.gone = true
			downs = true
		}
	}
	if downs {
		keep := w.linkList[:0]
		for _, l := range w.linkList {
			if !l.gone {
				keep = append(keep, l)
			}
		}
		w.linkList = keep
	}
	st = w.prof.Lap(obs.PhaseScript, st)
	if w.tickCount%uint64(w.cfg.ExpirySweepEvery) == 0 {
		w.sweepExpired(t)
		w.prof.Lap(obs.PhaseExpiry, st)
	}
	w.prof.TickDone()
}

// linkTo returns the node's active link to peer, or nil.
func (n *Node) linkTo(peer *Node) *Link {
	for _, l := range n.links {
		if l.other(n) == peer {
			return l
		}
	}
	return nil
}
