package network

import (
	"math"
	"sync"

	"repro/internal/obs"
)

// This file is the sharded tick pipeline selected by Config.Shards > 0:
// the engine's per-tick work split across a bounded set of shard workers
// for >10k-node scenarios, with every simulation-state mutation applied
// either inside a region of the partitioned grid (sub-grids, one writer
// per region) or in a serial merge phase in exactly the order the
// single-threaded path uses.
//
// The determinism contract (same scenario + seed => bit-identical
// metrics.Summary, identical contact callback order) therefore holds for
// every shard count, which shard_test.go and the experiment-level parity
// suite pin for Shards in {0, 1, 2, 8}.
//
// Each tick alternates data-parallel phases over disjoint work ranges with
// serial merges:
//
//	A (parallel) advance movers; detect cell changes; classify each mover
//	  as region-local (its re-bucket provably mutates only the
//	  destination cell's own sub-grid region, see rebucketParallelSafe)
//	  or boundary (stripe crossings and creations near a stripe edge).
//	  Movers touch only their own state plus the concurrency-safe
//	  road-map PathCache; movers land in per-(worker, region) lists whose
//	  worker-order concatenation is ascending in node id, because workers
//	  cover ascending contiguous index ranges.
//	A2 (parallel) re-bucket the region-local movers on one goroutine per
//	  region — removal, insertion, cache patching and table growth all
//	  stay inside the region's own table, so regions never share a
//	  mutable byte. This was the serial merge's dominant cost.
//	A2 (merge)   re-bucket the boundary movers in ascending id order —
//	  cross-region cache patching is safe serially. The grid state after
//	  A2 equals the serial path's exactly: bucket contents are sorted
//	  sets, per-node prev/epoch stamps depend only on each node's own
//	  move, and slot indices are unobservable.
//	A3 (parallel) warm the neighbour caches phase B reads lock-free, one
//	  goroutine per region (a bucket's cache is written only by the
//	  region owning it; probes into neighbouring regions are plain reads
//	  since no table mutates during A3).
//	B (parallel) scan moved nodes' 3x3 neighbourhoods, collecting
//	  untracked candidate pairs into per-shard buffers. Purely read-only
//	  against grid and tracked set.
//	B (merge)    track the collected pairs in concatenation order, which
//	  equals the serial scan order (moved nodes ascending, buckets in
//	  neighbour order); pairSched.track dedupes pairs both of whose
//	  endpoints moved, exactly as it does serially.
//	C (parallel) distance-classify the re-check pairs due this tick into
//	  verdict slots (in range / drop / re-park delay).
//	C (merge)    apply verdicts in due-list order: the wheel and tracked
//	  set see the same mutation sequence as the serial path.
//	D (parallel) distance-test active links into per-link slots.
//	D (merge)    tear down out-of-range links in establishment order,
//	  then establish new contacts in ascending pair order — router
//	  callbacks all fire on the caller's goroutine, in the serial order.
//	E (parallel, every ExpirySweepEvery ticks) purge expired copies from
//	  per-node buffers (disjoint state), counting per shard; the merge
//	  just adds the counts to the metrics collector.
//
// Work is chunked by contiguous index ranges (nodes, moved list, due
// list, link list) except the grid phases A2/A3, which are chunked by
// grid region: the grid is the one structure where spatial partitioning
// pays, because re-bucketing mutates shared tables. Node-to-region
// assignment is a pure function of position (x-stripes), so no state
// migrates between regions and the ordered merge lists stay trivial.

// Due-pair verdict encoding for phase C. Re-park delays are at most
// wheelSize-1, so the two sentinels cannot collide with a delay.
const (
	verdictInRange = ^uint64(0)
	verdictUntrack = ^uint64(0) - 1
)

// shardScratch holds the sharded path's reusable buffers. Shard workers
// write disjoint ranges (or whole per-shard slots) of these; no slice is
// ever appended to concurrently.
type shardScratch struct {
	movedW   [][]int32    // per worker: movers, ascending ids within each worker
	regW     [][]int32    // [worker*regions+region]: region-local movers (phase A)
	bndW     [][]int32    // per worker: boundary movers for the serial merge
	scanBufs [][][2]int32 // per shard: candidate pairs from phase B
	verdicts []uint64     // per due-list index: phase C classification
	linkD2   []float64    // per link-list index: phase D distances
	expired  []int        // per shard: expiry counts from phase E
}

func (sc *shardScratch) ensure(shards, regions int) {
	for len(sc.movedW) < shards {
		sc.movedW = append(sc.movedW, nil)
	}
	for len(sc.bndW) < shards {
		sc.bndW = append(sc.bndW, nil)
	}
	for len(sc.regW) < shards*regions {
		sc.regW = append(sc.regW, nil)
	}
	for len(sc.scanBufs) < shards {
		sc.scanBufs = append(sc.scanBufs, nil)
	}
	if len(sc.expired) < shards {
		sc.expired = make([]int, shards)
	}
}

// parallel splits [0, n) into one contiguous chunk per shard and runs fn
// on up to shards goroutines, executing shard 0's chunk on the caller.
// Chunk boundaries depend only on (n, shards), so shard-indexed output
// buffers line up deterministically with the merge that follows. It
// returns once every chunk completed.
func (w *World) parallel(shards, n int, fn func(shard, lo, hi int)) {
	if n == 0 {
		return
	}
	// Profiled runs book each worker's busy span against its shard index
	// (the imbalance lens). The wrapper exists only when profiling, so
	// the disabled path pays nothing per chunk.
	if p := w.prof; p != nil {
		inner := fn
		fn = func(shard, lo, hi int) {
			t0 := obs.Now()
			inner(shard, lo, hi)
			p.AddShardBusy(shard, obs.Now()-t0)
		}
	}
	if shards > n {
		shards = n
	}
	if shards <= 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	for s := 1; s < shards; s++ {
		lo, hi := s*n/shards, (s+1)*n/shards
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			fn(s, lo, hi)
		}(s, lo, hi)
	}
	fn(0, 0, n/shards)
	wg.Wait()
}

// tickSharded is the Shards > 0 twin of the serial Tick + updateContacts
// pair. Every mutation of grid, scheduler, links, routers and metrics
// happens either on one region goroutine (grid sub-table mutations in
// A2/A3) or on this goroutine in serial-path order; the other workers
// only compute.
func (w *World) tickSharded(t float64) {
	dt := t - w.lastTick
	w.lastTick = t
	w.tickCount++
	tick := w.tickCount
	w.grid.epoch = tick
	shards := w.cfg.Shards
	regions := w.grid.regions
	n := len(w.nodes)
	w.shard.ensure(shards, regions)
	g := &w.grid

	// Phase A: advance movers, detect cell changes and classify movers.
	st := w.prof.Start()
	for s := 0; s < shards; s++ {
		w.shard.movedW[s] = w.shard.movedW[s][:0]
		w.shard.bndW[s] = w.shard.bndW[s][:0]
		for r := 0; r < regions; r++ {
			w.shard.regW[s*regions+r] = w.shard.regW[s*regions+r][:0]
		}
	}
	w.parallel(shards, n, func(shard, lo, hi int) {
		movedL := w.shard.movedW[shard]
		bndL := w.shard.bndW[shard]
		for i := lo; i < hi; i++ {
			nd := w.nodes[i]
			nd.pos = nd.Mover.Step(dt)
			cx := int32(math.Floor(nd.pos.X / g.cell))
			cy := int32(math.Floor(nd.pos.Y / g.cell))
			key := cellKeyOf(cx, cy)
			id := int32(i)
			if g.slotOf[id] >= 0 && g.cellOf[id] == key {
				continue
			}
			movedL = append(movedL, id)
			if g.rebucketParallelSafe(id, cx, key) {
				r := shard*regions + g.regionOfCx(cx)
				w.shard.regW[r] = append(w.shard.regW[r], id)
			} else {
				bndL = append(bndL, id)
			}
		}
		w.shard.movedW[shard] = movedL
		w.shard.bndW[shard] = bndL
	})
	st = w.prof.Lap(obs.PhaseMobility, st)

	// Phase A2 (parallel): re-bucket region-local movers, one goroutine
	// per region; every mutation stays inside the region's table.
	w.parallel(regions, regions, func(_, lo, hi int) {
		for r := lo; r < hi; r++ {
			for s := 0; s < shards; s++ {
				for _, i := range w.shard.regW[s*regions+r] {
					g.update(i, w.nodes[i].pos)
				}
			}
		}
	})
	st = w.prof.Lap(obs.PhaseRebucket, st)
	// Merge A2: reconcile the boundary crossings in ascending id order —
	// the only grid mutations that may touch more than one region.
	for s := 0; s < shards; s++ {
		for _, i := range w.shard.bndW[s] {
			g.update(i, w.nodes[i].pos)
		}
	}
	st = w.prof.Lap(obs.PhaseMerge, st)
	// Phase A3 (parallel): warm the neighbour caches phase B reads
	// lock-free, per region (each bucket's cache has one writer). grow()
	// inside A2 may have invalidated caches, so warming strictly follows
	// all updates.
	w.parallel(regions, regions, func(_, lo, hi int) {
		for r := lo; r < hi; r++ {
			for s := 0; s < shards; s++ {
				for _, i := range w.shard.regW[s*regions+r] {
					g.neighborSlots(i)
				}
			}
			for s := 0; s < shards; s++ {
				for _, i := range w.shard.bndW[s] {
					if g.regionOfKey(g.cellOf[i]) == r {
						g.neighborSlots(i)
					}
				}
			}
		}
	})
	// The moved list for phases B+ in ascending id order: workers cover
	// ascending contiguous ranges, so concatenation preserves order.
	moved := w.movedBuf[:0]
	for s := 0; s < shards; s++ {
		moved = append(moved, w.shard.movedW[s]...)
	}
	st = w.prof.Lap(obs.PhaseRebucket, st) // A3 cache warm + concat

	// Phase B: collect untracked candidate pairs around moved nodes.
	for s := 0; s < shards; s++ {
		w.shard.scanBufs[s] = w.shard.scanBufs[s][:0]
	}
	w.parallel(shards, len(moved), func(shard, lo, hi int) {
		buf := w.shard.scanBufs[shard]
		for _, i := range moved[lo:hi] {
			buf = w.collectNeighborhood(i, buf)
		}
		w.shard.scanBufs[shard] = buf
	})
	st = w.prof.Lap(obs.PhaseScan, st)
	for s := 0; s < shards; s++ {
		for _, p := range w.shard.scanBufs[s] {
			w.sched.track(p[0], p[1], tick)
		}
	}
	w.movedBuf = moved[:0]
	st = w.prof.Lap(obs.PhaseMerge, st)

	// Phase C: classify the due re-checks (cf. updateContacts phase 2).
	slot := tick % wheelSize
	due := w.sched.wheel[slot]
	r2 := w.cfg.Range * w.cfg.Range
	bandMax2 := 9 * w.grid.cell * w.grid.cell
	if cap(w.shard.verdicts) < len(due) {
		w.shard.verdicts = make([]uint64, len(due))
	}
	verdicts := w.shard.verdicts[:len(due)]
	w.parallel(shards, len(due), func(_, lo, hi int) {
		for x := lo; x < hi; x++ {
			k := due[x]
			a := int32(uint32(k >> 32))
			b := int32(uint32(k))
			d2 := w.nodes[a].pos.Dist2(w.nodes[b].pos)
			switch {
			case d2 <= r2:
				verdicts[x] = verdictInRange
			case d2 > bandMax2:
				verdicts[x] = verdictUntrack
			default:
				verdicts[x] = w.recheckDelay(d2)
			}
		}
	})
	st = w.prof.Lap(obs.PhasePairs, st)
	newPairs := w.newPairs[:0]
	for x, k := range due {
		switch v := verdicts[x]; v {
		case verdictInRange:
			newPairs = append(newPairs, [2]int32{int32(uint32(k >> 32)), int32(uint32(k))})
		case verdictUntrack:
			w.sched.untrack(int32(uint32(k>>32)), int32(uint32(k)))
		default:
			w.sched.reschedule(k, tick+v)
		}
	}
	w.sched.wheel[slot] = due[:0]
	st = w.prof.Lap(obs.PhaseMerge, st)

	// Phase D: distance-test the active links, tear down in list order,
	// then establish new contacts (cf. updateContacts phase 3).
	if cap(w.shard.linkD2) < len(w.linkList) {
		w.shard.linkD2 = make([]float64, len(w.linkList))
	}
	linkD2 := w.shard.linkD2[:len(w.linkList)]
	w.parallel(shards, len(w.linkList), func(_, lo, hi int) {
		for x := lo; x < hi; x++ {
			l := w.linkList[x]
			linkD2[x] = l.a.pos.Dist2(l.b.pos)
		}
	})
	st = w.prof.Lap(obs.PhaseLinks, st)
	keep := w.linkList[:0]
	for x, l := range w.linkList {
		if linkD2[x] <= r2 {
			keep = append(keep, l)
			continue
		}
		w.contactDown(l, t)
		w.sched.reschedule(pairKey(int32(l.a.ID), int32(l.b.ID)), tick+w.recheckDelay(linkD2[x]))
	}
	w.linkList = keep
	st = w.prof.Lap(obs.PhaseMerge, st)
	w.establishNewContacts(newPairs, t)
	st = w.prof.Lap(obs.PhaseContacts, st)

	// Phase E: expiry sweep over disjoint per-node buffers.
	if tick%uint64(w.cfg.ExpirySweepEvery) == 0 {
		for s := 0; s < shards; s++ {
			w.shard.expired[s] = 0
		}
		w.parallel(shards, n, func(shard, lo, hi int) {
			c := 0
			for _, nd := range w.nodes[lo:hi] {
				c += len(nd.Buf.DropExpired(t))
			}
			w.shard.expired[shard] = c
		})
		for _, c := range w.shard.expired {
			w.Metrics.MessagesExpired(c)
		}
		w.prof.Lap(obs.PhaseExpiry, st)
	}
	w.prof.TickDone()
}

// collectNeighborhood appends to buf every untracked candidate pair
// between freshly-moved node i and the nodes bucketed in its 3x3 cell
// neighbourhood. It is the single traversal both tick paths share:
// scanNeighborhood (serial) tracks the collected pairs immediately, the
// sharded merge tracks whole per-shard collections in order. It reads but
// never mutates grid and tracker state, so shard workers run it
// concurrently; pairs collected twice because both endpoints moved (each
// side blind to the other worker's collection) are deduped by track in
// the merge, preserving the serial wheel order.
//
// Cells that were already adjacent before i's move are filtered to nodes
// that themselves moved this tick: an untracked pair that was
// cell-adjacent before the tick would contradict the tracking invariant
// (untracked implies non-adjacent), so only a move on the other side can
// have created a new untracked adjacency there.
func (w *World) collectNeighborhood(i int32, buf [][2]int32) [][2]int32 {
	g := &w.grid
	key := g.cellOf[i]
	cx := int32(uint32(key >> 32))
	cy := int32(uint32(key))
	hadPrev := g.prevValid[i]
	var pcx, pcy int32
	if hadPrev {
		pk := g.prevCell[i]
		pcx = int32(uint32(pk >> 32))
		pcy = int32(uint32(pk))
	}
	nbr := g.neighborsCached(i)
	for k, p := range nbr {
		if p < 0 {
			continue
		}
		ccx := cx + int32(k/3) - 1
		ccy := cy + int32(k%3) - 1
		retained := hadPrev && chebWithin1(ccx, pcx) && chebWithin1(ccy, pcy)
		for _, j := range g.bucket(p) {
			if j == i {
				continue
			}
			if retained && g.moveEpoch[j] != g.epoch {
				continue
			}
			a, b := i, j
			if b < a {
				a, b = b, a
			}
			if !w.sched.tracked.has(a, b) {
				buf = append(buf, [2]int32{a, b})
			}
		}
	}
	return buf
}
