package network

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/buffer"
	"repro/internal/geo"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// Sharded-vs-serial parity: Config.Shards must never change simulation
// results — not the metrics, not the set of contacts, and not the order in
// which contact callbacks fire. These tests rebuild identical randomized
// worlds per shard count and compare everything observable.

// shardCounts are the configurations the parity suite sweeps; 0 is the
// serial reference path.
var shardCounts = []int{0, 1, 2, 8}

// shardTrace is everything observable about one run: the final metrics
// snapshot, each node's contact callback sequences, and the final active
// link list in establishment order.
type shardTrace struct {
	summary    string
	ups, downs [][]int
	links      [][2]int32
}

func traceOf(w *World, probes []*probe) shardTrace {
	tr := shardTrace{summary: fmt.Sprintf("%+v", w.Metrics.Summary())}
	for _, p := range probes {
		tr.ups = append(tr.ups, append([]int(nil), p.ups...))
		tr.downs = append(tr.downs, append([]int(nil), p.downs...))
	}
	for _, l := range w.linkList {
		tr.links = append(tr.links, [2]int32{int32(l.a.ID), int32(l.b.ID)})
	}
	return tr
}

func compareTraces(t *testing.T, shards int, want, got shardTrace) {
	t.Helper()
	if want.summary != got.summary {
		t.Fatalf("shards=%d: summary diverged\n  serial  %s\n  sharded %s", shards, want.summary, got.summary)
	}
	if len(want.ups) != len(got.ups) {
		t.Fatalf("shards=%d: node count diverged", shards)
	}
	for i := range want.ups {
		if !equalInts(want.ups[i], got.ups[i]) {
			t.Fatalf("shards=%d: node %d ContactUp order diverged\n  serial  %v\n  sharded %v", shards, i, want.ups[i], got.ups[i])
		}
		if !equalInts(want.downs[i], got.downs[i]) {
			t.Fatalf("shards=%d: node %d ContactDown order diverged\n  serial  %v\n  sharded %v", shards, i, want.downs[i], got.downs[i])
		}
	}
	if len(want.links) != len(got.links) {
		t.Fatalf("shards=%d: link count diverged: %d vs %d", shards, len(want.links), len(got.links))
	}
	for i := range want.links {
		if want.links[i] != got.links[i] {
			t.Fatalf("shards=%d: link list order diverged at %d: %v vs %v", shards, i, want.links[i], got.links[i])
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// buildMixedWorld assembles a world of random walkers, teleporters and
// stationary nodes in a rect spanning negative coordinates — the motion
// mix that stresses every discovery path of the broad phase.
func buildMixedWorld(cfg Config, seed int64) (*World, *sim.Runner, []*probe) {
	runner := sim.NewRunner(1)
	w := New(cfg, runner)
	rect := geo.NewRect(geo.Point{X: -130, Y: -70}, geo.Point{X: 110, Y: 90})
	root := xrand.New(seed)
	var probes []*probe
	add := func(mv interface {
		Pos() geo.Point
		Step(float64) geo.Point
	}) {
		p := &probe{}
		probes = append(probes, p)
		w.AddNode(mv, buffer.New(0, nil), p)
	}
	for i := 0; i < 20; i++ {
		rng := root.Derive(fmt.Sprintf("walk-%d", i))
		start := geo.Point{X: rng.Uniform(rect.Min.X, rect.Max.X), Y: rng.Uniform(rect.Min.Y, rect.Max.Y)}
		add(&randWalk{pos: start, rect: rect, maxStep: 8, rng: rng})
	}
	for i := 0; i < 10; i++ {
		rng := root.Derive(fmt.Sprintf("tp-%d", i))
		mv := &teleporter{rng: rng}
		mv.Step(0)
		add(mv)
	}
	for i := 0; i < 10; i++ {
		add(fixed(float64(i%5)*6-15, float64(i/5)*6-12))
	}
	w.Start()
	return w, runner, probes
}

// runMixed drives the mixed world for the given ticks, injecting
// short-TTL messages so the (sharded) expiry sweep has work, and checks
// naive O(N²) parity along the way.
func runMixed(t *testing.T, w *World, runner *sim.Runner, ticks int) {
	t.Helper()
	for tick := 1; tick <= ticks; tick++ {
		runner.Run(float64(tick))
		comparePairSets(t, tick, bruteForcePairs(w), linkPairs(w))
		if tick%10 == 0 {
			from := tick % w.N()
			to := (tick + 7) % w.N()
			if from != to {
				w.CreateMessage(runner.Now(), from, to, 500, 15)
			}
		}
	}
}

// TestShardParityMixedMotion proves Shards ∈ {0,1,2,8} produce identical
// metrics, contact callback order and link order over mixed mobility with
// teleports and negative coordinates (no speed bound: every tracked pair
// re-checks each tick).
func TestShardParityMixedMotion(t *testing.T) {
	for _, seed := range []int64{3, 17, 101} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			var ref shardTrace
			for _, shards := range shardCounts {
				cfg := Config{Range: 10, Bandwidth: 1000, Shards: shards}
				w, runner, probes := buildMixedWorld(cfg, seed)
				runMixed(t, w, runner, 250)
				tr := traceOf(w, probes)
				if shards == 0 {
					ref = tr
					continue
				}
				compareTraces(t, shards, ref, tr)
			}
		})
	}
}

// TestShardParityNarrowStripes repeats the mixed-motion sweep with the
// sub-grid stripe width shrunk to the minimum, so nearly every cell sits
// in a stripe's boundary band: teleporters and walkers constantly cross
// region boundaries and almost all re-bucketing funnels through the
// serial reconcile instead of the per-region parallel phase. Results must
// not depend on the partition at all.
func TestShardParityNarrowStripes(t *testing.T) {
	for _, seed := range []int64{3, 101} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			var ref shardTrace
			for _, shards := range shardCounts {
				cfg := Config{Range: 10, Bandwidth: 1000, Shards: shards}
				w, runner, probes := buildMixedWorld(cfg, seed)
				w.grid.stripe = 4 // before the first tick buckets anything
				runMixed(t, w, runner, 250)
				tr := traceOf(w, probes)
				if shards == 0 {
					ref = tr
					continue
				}
				compareTraces(t, shards, ref, tr)
			}
		})
	}
}

// TestAutoShards pins the AutoShards sentinel: New resolves it to a
// GOMAXPROCS-derived worker count, and the resolved world still matches
// the serial reference bit for bit.
func TestAutoShards(t *testing.T) {
	runner := sim.NewRunner(1)
	w := New(Config{Range: 10, Bandwidth: 1000, Shards: AutoShards}, runner)
	if got, want := w.Config().Shards, runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("AutoShards resolved to %d, want GOMAXPROCS %d", got, want)
	}
	var ref shardTrace
	for _, shards := range []int{0, AutoShards} {
		cfg := Config{Range: 10, Bandwidth: 1000, Shards: shards}
		w, runner, probes := buildMixedWorld(cfg, 17)
		runMixed(t, w, runner, 120)
		tr := traceOf(w, probes)
		if shards == 0 {
			ref = tr
			continue
		}
		compareTraces(t, shards, ref, tr)
	}
}

// TestShardParitySpeedBound repeats the sweep with an active speed bound,
// so the conservative re-check scheduler's parked pairs (and their
// re-park order) are part of what must match.
func TestShardParitySpeedBound(t *testing.T) {
	var ref shardTrace
	for _, shards := range shardCounts {
		cfg := Config{Range: 10, Bandwidth: 1000, MaxSpeed: 6, Shards: shards}
		w, runner := buildParityWorld(t, cfg, 60, 4, 23)
		var probes []*probe
		for _, n := range w.Nodes() {
			probes = append(probes, n.Router.(*probe))
		}
		for tick := 1; tick <= 300; tick++ {
			runner.Run(float64(tick))
			comparePairSets(t, tick, bruteForcePairs(w), linkPairs(w))
		}
		tr := traceOf(w, probes)
		if shards == 0 {
			ref = tr
			continue
		}
		compareTraces(t, shards, ref, tr)
	}
}

// TestShardedTransfersParity exercises the full transfer pipeline under
// sharding: a stationary relay chain with real message forwarding, torn
// by a teleporter crossing the chain. Shards must not perturb delivery
// accounting.
func TestShardedTransfersParity(t *testing.T) {
	build := func(shards int) (*World, *sim.Runner, []*probe) {
		runner := sim.NewRunner(1)
		w := New(Config{Range: 10, Bandwidth: 1000, Shards: shards}, runner)
		var probes []*probe
		for i := 0; i < 6; i++ {
			p := &probe{quota: 3}
			probes = append(probes, p)
			w.AddNode(fixed(float64(i)*8, 0), buffer.New(0, nil), p)
		}
		rng := xrand.New(5)
		tp := &teleporter{rng: rng}
		tp.Step(0)
		probes = append(probes, &probe{})
		w.AddNode(tp, buffer.New(0, nil), probes[len(probes)-1])
		w.Start()
		return w, runner, probes
	}
	var ref shardTrace
	for _, shards := range shardCounts {
		w, runner, probes := build(shards)
		m := w.CreateMessage(0, 0, 5, 1000, 100)
		probes[0].queue = append(probes[0].queue, &Plan{Msg: m, Give: 1, KeepAfter: -1})
		for tick := 1; tick <= 60; tick++ {
			runner.Run(float64(tick))
		}
		tr := traceOf(w, probes)
		if shards == 0 {
			ref = tr
			continue
		}
		compareTraces(t, shards, ref, tr)
	}
}
