package network

import "repro/internal/msg"

// Router is the protocol logic attached to a node. The engine models the
// routing-information exchange at contact setup as free (matching the
// paper's cost accounting, which counts only message relays), so routers
// may inspect the peer node — and, by type assertion, the peer's router of
// the same protocol — inside ContactUp and NextTransfer.
//
// All calls happen on the single simulation goroutine.
type Router interface {
	// Init binds the router to its node and world before the run starts.
	Init(self *Node, w *World)

	// InitialReplicas returns the replica quota for a message generated at
	// this node (λ for quota-based protocols, 1 otherwise).
	InitialReplicas(m *msg.Message) int

	// ContactUp fires when a contact with peer begins. The lower-id node's
	// router is called first.
	ContactUp(t float64, peer *Node)

	// ContactDown fires when the contact with peer ends.
	ContactDown(t float64, peer *Node)

	// NextTransfer returns the next message to send to peer, or nil when
	// the router has nothing (more) to offer on this contact right now.
	// The engine re-asks after each completed transfer and whenever new
	// messages appear at either endpoint. Plans must pass engine
	// validation: the sender holds the message and the peer neither holds
	// it nor, if it is the destination, has already received it.
	NextTransfer(t float64, peer *Node) *Plan

	// Created fires after a locally generated message copy was buffered.
	Created(t float64, c *msg.Copy)

	// Received fires after a copy arrived from a peer and was buffered.
	// It is not called for final-destination deliveries.
	Received(t float64, c *msg.Copy, from *Node)

	// Sent fires on the sender after a transfer completes, with the
	// engine-applied plan (quota already deducted / copy already removed).
	// delivered reports whether peer was the message's final destination.
	Sent(t float64, plan *Plan, peer *Node, delivered bool)
}

// Plan describes one intended transfer.
type Plan struct {
	// Msg is the message to transfer; the sender must buffer it.
	Msg *msg.Message
	// Give is the replica quota carried by the receiver's new copy (>= 1).
	Give int
	// KeepAfter is the sender's replica count after success:
	// 0 removes the sender's copy (a forward), a positive value sets the
	// remaining quota (a quota split), and KeepUnchanged leaves the
	// sender's copy untouched (a plain replication).
	KeepAfter int
}

// KeepUnchanged as Plan.KeepAfter leaves the sender copy's quota as is.
const KeepUnchanged = -1

// Forward returns a plan that moves the sender's whole copy (quota and
// all) to the peer.
func Forward(c *msg.Copy) *Plan {
	return &Plan{Msg: c.M, Give: c.Replicas, KeepAfter: 0}
}

// Replicate returns a plan that hands the peer a 1-quota copy and leaves
// the sender untouched (epidemic-style replication).
func Replicate(c *msg.Copy) *Plan {
	return &Plan{Msg: c.M, Give: 1, KeepAfter: KeepUnchanged}
}

// Split returns a plan that gives the peer `give` replicas and keeps the
// remainder. It panics unless 1 <= give < c.Replicas.
func Split(c *msg.Copy, give int) *Plan {
	if give < 1 || give >= c.Replicas {
		panic("network: Split share out of range")
	}
	return &Plan{Msg: c.M, Give: give, KeepAfter: c.Replicas - give}
}
