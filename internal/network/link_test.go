package network

import (
	"testing"

	"repro/internal/geo"
)

// TestLinkAlternatesSenders: when both endpoints have traffic, the link
// serves them alternately rather than starving one side.
func TestLinkAlternatesSenders(t *testing.T) {
	w, runner, probes := testWorld(t, []*scriptMover{fixed(0, 0), fixed(5, 0), fixed(9000, 0), fixed(9005, 0)})
	// Two messages each way between 0 and 1, destined to far-away nodes,
	// so they relay rather than deliver.
	var firstFrom0, firstFrom1 *Plan
	for k := 0; k < 2; k++ {
		m0 := w.CreateMessage(0, 0, 2, 1000, 1e6)
		m1 := w.CreateMessage(0, 1, 3, 1000, 1e6)
		p0 := Replicate(w.Node(0).Copy(m0.ID))
		p1 := Replicate(w.Node(1).Copy(m1.ID))
		probes[0].queue = append(probes[0].queue, p0)
		probes[1].queue = append(probes[1].queue, p1)
		if k == 0 {
			firstFrom0, firstFrom1 = p0, p1
		}
	}
	_ = firstFrom0
	_ = firstFrom1
	// Each transfer takes 1 s; run long enough for all four.
	runner.Run(10)
	if got := w.Metrics.Summary().Relays; got != 4 {
		t.Fatalf("relays = %d, want 4", got)
	}
	// Both directions progressed: each sender's Sent got called twice.
	if len(probes[0].sent) != 2 || len(probes[1].sent) != 2 {
		t.Fatalf("sent counts %d/%d, want 2/2", len(probes[0].sent), len(probes[1].sent))
	}
}

// TestDuplicateArrivalRace: two senders start transfers of the same
// message to one receiver on separate simultaneous links; the second
// completion finds the copy already present and must not double-apply.
func TestDuplicateArrivalRace(t *testing.T) {
	// Phase 1 (t<10): 0 and 1 in contact, 2 far away.
	// Phase 2 (t>=10): 0-1 out of range; both within range of 2.
	pos := func(p1, p2 geo.Point) func(float64) geo.Point {
		return func(tt float64) geo.Point {
			if tt < 10 {
				return p1
			}
			return p2
		}
	}
	movers := []*scriptMover{
		{at: pos(geo.Point{X: 0, Y: 0}, geo.Point{X: 0, Y: 0})},
		{at: pos(geo.Point{X: 5, Y: 0}, geo.Point{X: 12, Y: 0})},
		{at: pos(geo.Point{X: 500, Y: 0}, geo.Point{X: 6, Y: 5})},
		{at: pos(geo.Point{X: 9000, Y: 0}, geo.Point{X: 9000, Y: 0})},
	}
	w, runner, probes := testWorld(t, movers)
	m := w.CreateMessage(0, 0, 3, 3000, 1e6) // 3 s transfers
	probes[0].queue = append(probes[0].queue, Replicate(w.Node(0).Copy(m.ID)))
	runner.Run(6)
	if !w.Node(1).HasCopy(m.ID) {
		t.Fatal("setup failed: node 1 lacks the copy")
	}
	// Queue one send to node 2 from each holder; both links to 2 come up
	// in the same tick at t=10 and start concurrently.
	probes[0].queue = append(probes[0].queue, Replicate(w.Node(0).Copy(m.ID)))
	probes[1].queue = append(probes[1].queue, Replicate(w.Node(1).Copy(m.ID)))
	runner.Run(25)
	c := w.Node(2).Copy(m.ID)
	if c == nil {
		t.Fatal("node 2 never received the message")
	}
	if c.Replicas != 1 {
		t.Fatalf("replicas at receiver = %d, want 1 (no double-apply)", c.Replicas)
	}
	// Both transfers consumed link time: two relays beyond the setup one.
	if got := w.Metrics.Summary().Relays; got != 3 {
		t.Errorf("relays = %d, want 3", got)
	}
}

// TestBufferOverflowDropsAndCounts: a small buffer under epidemic-style
// pressure evicts and the metrics record it.
func TestBufferOverflowDropsAndCounts(t *testing.T) {
	w, runner, probes := testWorld(t, []*scriptMover{fixed(0, 0), fixed(1000, 0)})
	// Node 0's unbounded test buffer: replace behaviour by filling with
	// many messages destined to an absent node and verifying creation
	// accounting instead.
	for k := 0; k < 5; k++ {
		w.CreateMessage(float64(k), 0, 1, 1000, 1e6)
	}
	runner.Run(1)
	if w.Node(0).Buf.Len() != 5 {
		t.Fatalf("buffered = %d", w.Node(0).Buf.Len())
	}
	if w.Metrics.Generated() != 5 {
		t.Fatalf("generated = %d", w.Metrics.Generated())
	}
	_ = probes
}

// TestSweepExpiredRemovesInFlightSource: expiry during an active contact
// aborts cleanly when the sender copy disappears before completion.
func TestSenderEvictionAbortsTransfer(t *testing.T) {
	w, runner, probes := testWorld(t, []*scriptMover{fixed(0, 0), fixed(5, 0)})
	m := w.CreateMessage(0, 0, 1, 5000, 1e6) // 5 s transfer
	probes[0].queue = append(probes[0].queue, Forward(w.Node(0).Copy(m.ID)))
	runner.Run(2) // transfer in flight
	// Evict the sender's copy mid-flight (models a buffer drop).
	w.Node(0).Buf.Remove(m.ID)
	runner.Run(10)
	s := w.Metrics.Summary()
	if s.Delivered != 0 {
		t.Fatal("delivered a message whose source copy vanished")
	}
	if s.Aborts != 1 {
		t.Errorf("aborts = %d, want 1", s.Aborts)
	}
}
