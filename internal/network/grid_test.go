package network

import (
	"fmt"
	"testing"

	"repro/internal/buffer"
	"repro/internal/geo"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// randWalk is a bounded random-walk mover: each tick it steps up to
// maxStep metres in a random direction inside a rect that may span
// negative coordinates. Its speed respects maxStep/dt, which lets tests
// exercise the conservative re-check scheduler with a true bound.
type randWalk struct {
	pos     geo.Point
	rect    geo.Rect
	maxStep float64
	rng     *xrand.Source
}

func (m *randWalk) Pos() geo.Point { return m.pos }
func (m *randWalk) Step(dt float64) geo.Point {
	dx := m.rng.Uniform(-m.maxStep, m.maxStep)
	dy := m.rng.Uniform(-m.maxStep, m.maxStep)
	m.pos = m.rect.Clamp(geo.Point{X: m.pos.X + dx, Y: m.pos.Y + dy})
	return m.pos
}

// bruteForcePairs returns the naive O(N²) in-range pair set.
func bruteForcePairs(w *World) map[[2]int32]bool {
	r2 := w.cfg.Range * w.cfg.Range
	want := map[[2]int32]bool{}
	nodes := w.Nodes()
	for i := range nodes {
		for j := i + 1; j < len(nodes); j++ {
			if nodes[i].Pos().Dist2(nodes[j].Pos()) <= r2 {
				want[[2]int32{int32(i), int32(j)}] = true
			}
		}
	}
	return want
}

// linkPairs returns the engine's active contact pair set.
func linkPairs(w *World) map[[2]int32]bool {
	got := map[[2]int32]bool{}
	for _, l := range w.linkList {
		got[[2]int32{int32(l.a.ID), int32(l.b.ID)}] = true
	}
	return got
}

func comparePairSets(t *testing.T, tick int, want, got map[[2]int32]bool) {
	t.Helper()
	for p := range want {
		if !got[p] {
			t.Fatalf("tick %d: engine missed in-range pair %v", tick, p)
		}
	}
	for p := range got {
		if !want[p] {
			t.Fatalf("tick %d: engine reports out-of-range pair %v", tick, p)
		}
	}
}

// buildParityWorld places n random walkers in a rect spanning negative
// coordinates, dense enough that contacts constantly form and break.
func buildParityWorld(t *testing.T, cfg Config, n int, maxStep float64, seed int64) (*World, *sim.Runner) {
	t.Helper()
	runner := sim.NewRunner(1)
	w := New(cfg, runner)
	rect := geo.NewRect(geo.Point{X: -120, Y: -90}, geo.Point{X: 140, Y: 110})
	root := xrand.New(seed)
	for i := 0; i < n; i++ {
		rng := root.Derive(fmt.Sprintf("walker-%d", i))
		start := geo.Point{
			X: rng.Uniform(rect.Min.X, rect.Max.X),
			Y: rng.Uniform(rect.Min.Y, rect.Max.Y),
		}
		mv := &randWalk{pos: start, rect: rect, maxStep: maxStep, rng: rng}
		w.AddNode(mv, buffer.New(0, nil), &probe{})
	}
	w.Start()
	return w, runner
}

// TestIncrementalGridParityRandomized proves the incremental grid plus
// re-check scheduler reproduces the naive O(N²) in-range pair set exactly,
// tick by tick, over randomized motion crossing negative coordinates.
func TestIncrementalGridParityRandomized(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
		step float64
	}{
		// MaxSpeed 0: every tracked pair re-checked every tick.
		{"noSpeedBound", Config{Range: 10, Bandwidth: 1000}, 9},
		// MaxSpeed set: conservative skips active. maxStep 4 at dt 1 s
		// means per-axis speed <= 4, so euclidean speed <= 4·sqrt(2) < 6.
		{"speedBound", Config{Range: 10, Bandwidth: 1000, MaxSpeed: 6}, 4},
		// Large steps relative to the 10 m cells: nodes hop several cells
		// per tick, stressing discovery via cell-change rescans.
		{"cellHopping", Config{Range: 10, Bandwidth: 1000}, 35},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w, runner := buildParityWorld(t, tc.cfg, 60, tc.step, 7)
			for tick := 1; tick <= 400; tick++ {
				runner.Run(float64(tick))
				comparePairSets(t, tick, bruteForcePairs(w), linkPairs(w))
			}
		})
	}
}

// TestIncrementalGridParityTeleport stresses the scheduler with movers
// that jump arbitrarily far in one tick — the worst case for incremental
// tracking (no speed bound configured, so no skip may be unsafe).
func TestIncrementalGridParityTeleport(t *testing.T) {
	runner := sim.NewRunner(1)
	w := New(Config{Range: 10, Bandwidth: 1000}, runner)
	root := xrand.New(11)
	for i := 0; i < 40; i++ {
		rng := root.Derive(fmt.Sprintf("tp-%d", i))
		mv := &teleporter{rng: rng}
		mv.Step(0)
		w.AddNode(mv, buffer.New(0, nil), &probe{})
	}
	w.Start()
	for tick := 1; tick <= 300; tick++ {
		runner.Run(float64(tick))
		comparePairSets(t, tick, bruteForcePairs(w), linkPairs(w))
	}
}

// teleporter jumps to a uniformly random point in a small arena each
// tick, so far pairs can be in range one tick later.
type teleporter struct {
	pos geo.Point
	rng *xrand.Source
}

func (m *teleporter) Pos() geo.Point { return m.pos }
func (m *teleporter) Step(float64) geo.Point {
	m.pos = geo.Point{X: m.rng.Uniform(-40, 40), Y: m.rng.Uniform(-40, 40)}
	return m.pos
}

// TestUpdateContactsZeroAllocSteadyState proves a static fleet ticks with
// zero steady-state heap allocations in the contact path.
func TestUpdateContactsZeroAllocSteadyState(t *testing.T) {
	runner := sim.NewRunner(1)
	w := New(Config{Range: 10, Bandwidth: 1000}, runner)
	// A grid of stationary nodes, some in range of each other.
	for i := 0; i < 30; i++ {
		x := float64(i%6) * 7
		y := float64(i/6) * 7
		w.AddNode(fixed(x, y), buffer.New(0, nil), &probe{})
	}
	w.Start()
	// Warm up: first ticks insert nodes, establish contacts and size the
	// wheel and scratch buffers.
	tick := 0.0
	for i := 0; i < wheelSize*2; i++ {
		tick++
		w.Tick(tick)
	}
	allocs := testing.AllocsPerRun(200, func() {
		tick++
		w.Tick(tick)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Tick allocates %.1f objects per tick, want 0", allocs)
	}
}

// TestPairSetModes exercises both pairSet representations.
func TestPairSetModes(t *testing.T) {
	for _, n := range []int{100, pairSetBitsetLimit + 1} {
		var s pairSet
		s.init(n)
		if !s.add(3, 77) {
			t.Fatal("first add reported duplicate")
		}
		if s.add(3, 77) {
			t.Fatal("duplicate add reported new")
		}
		s.remove(3, 77)
		if !s.add(3, 77) {
			t.Fatal("add after remove reported duplicate")
		}
	}
}

// TestGridGrowthAndReclaim drives one node across thousands of cells so
// the slot table grows and reclaims long-empty buckets, with a second
// pinned pair proving contacts survive table reorganisation.
func TestGridGrowthAndReclaim(t *testing.T) {
	runner := sim.NewRunner(1)
	w := New(Config{Range: 10, Bandwidth: 1000}, runner)
	sweepMover := &scriptMover{at: func(tt float64) geo.Point {
		// Visit a fresh distant cell every tick.
		return geo.Point{X: 25 * tt, Y: -60 * tt}
	}}
	w.AddNode(sweepMover, buffer.New(0, nil), &probe{})
	w.AddNode(fixed(3, 3), buffer.New(0, nil), &probe{})
	w.AddNode(fixed(6, 3), buffer.New(0, nil), &probe{})
	w.Start()
	for tick := 1; tick <= 800; tick++ {
		runner.Run(float64(tick))
		if len(w.linkList) != 1 {
			t.Fatalf("tick %d: pinned contact lost during grid growth (links=%d)", tick, len(w.linkList))
		}
	}
	if len(w.grid.tables[0].slots) <= 256 {
		t.Fatalf("table never grew: %d slots", len(w.grid.tables[0].slots))
	}
}
