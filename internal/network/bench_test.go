package network

import (
	"fmt"
	"testing"

	"repro/internal/buffer"
	"repro/internal/geo"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// Engine micro-benchmarks: ticks/sec and contact throughput of the broad
// phase alone (probe routers, no traffic), complementing the whole-figure
// benchmarks at the repository root.

func benchWorld(n int, maxStep float64, maxSpeed float64) (*World, *sim.Runner) {
	runner := sim.NewRunner(1)
	w := New(Config{Range: 10, Bandwidth: 1000, MaxSpeed: maxSpeed}, runner)
	rect := geo.NewRect(geo.Point{X: -500, Y: -500}, geo.Point{X: 500, Y: 500})
	root := xrand.New(1)
	for i := 0; i < n; i++ {
		rng := root.Derive(fmt.Sprintf("b-%d", i))
		start := geo.Point{
			X: rng.Uniform(rect.Min.X, rect.Max.X),
			Y: rng.Uniform(rect.Min.Y, rect.Max.Y),
		}
		w.AddNode(&randWalk{pos: start, rect: rect, maxStep: maxStep, rng: rng}, buffer.New(0, nil), &probe{})
	}
	w.Start()
	return w, runner
}

// benchTicks advances the world b.N ticks and reports tick and contact
// throughput.
func benchTicks(b *testing.B, w *World, runner *sim.Runner) {
	b.Helper()
	runner.Run(64) // warm up buffers and the re-check wheel
	before := w.Metrics.Summary().Contacts
	start := runner.Now()
	b.ResetTimer()
	runner.Run(start + float64(b.N))
	b.StopTimer()
	contacts := w.Metrics.Summary().Contacts - before
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ticks/s")
	b.ReportMetric(float64(contacts)/b.Elapsed().Seconds(), "contacts/s")
}

// BenchmarkEngineTickMobile measures per-tick cost with every node moving
// (random walk, speed bound active).
func BenchmarkEngineTickMobile400(b *testing.B) {
	w, runner := benchWorld(400, 4, 6)
	benchTicks(b, w, runner)
}

// BenchmarkEngineTickStatic measures the steady-state floor: no node
// moves, so ticks are pure wheel maintenance.
func BenchmarkEngineTickStatic400(b *testing.B) {
	runner := sim.NewRunner(1)
	w := New(Config{Range: 10, Bandwidth: 1000}, runner)
	for i := 0; i < 400; i++ {
		w.AddNode(fixed(float64(i%20)*7, float64(i/20)*7), buffer.New(0, nil), &probe{})
	}
	w.Start()
	benchTicks(b, w, runner)
}
