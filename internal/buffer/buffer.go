// Package buffer implements the finite per-node message store with
// pluggable drop policies. The paper's scenario gives each node 1 MB for
// 25 KB messages; when an arriving copy does not fit, the policy selects
// victims until it does (or the arrival itself is refused).
package buffer

import (
	"fmt"

	"repro/internal/msg"
)

// DropPolicy selects the next victim among the buffered copies when space
// is needed. It returns an index into copies, which is non-empty. Policies
// must be deterministic.
type DropPolicy func(t float64, copies []*msg.Copy) int

// DropOldestReceived evicts the copy held longest (FIFO) — the default, and
// ONE's default.
func DropOldestReceived(_ float64, copies []*msg.Copy) int {
	best := 0
	for i, c := range copies {
		if c.ReceivedAt < copies[best].ReceivedAt {
			best = i
		}
		_ = c
	}
	return best
}

// DropOldestCreated evicts the copy of the oldest message.
func DropOldestCreated(_ float64, copies []*msg.Copy) int {
	best := 0
	for i, c := range copies {
		if c.M.Created < copies[best].M.Created {
			best = i
		}
	}
	return best
}

// DropSoonestExpiry evicts the copy closest to expiry.
func DropSoonestExpiry(_ float64, copies []*msg.Copy) int {
	best := 0
	for i, c := range copies {
		if c.M.Expire < copies[best].M.Expire {
			best = i
		}
	}
	return best
}

// DropMostHops evicts the most-travelled copy (ties broken by older
// arrival), a cheap proxy for "most replicated elsewhere".
func DropMostHops(_ float64, copies []*msg.Copy) int {
	best := 0
	for i, c := range copies {
		b := copies[best]
		if c.Hops > b.Hops || (c.Hops == b.Hops && c.ReceivedAt < b.ReceivedAt) {
			best = i
		}
	}
	return best
}

// Buffer is a byte-bounded store of message copies with deterministic
// insertion-ordered iteration.
//
// Expiry is tracked in a lazy-deletion min-heap ordered by (expiry time,
// message id): every Add pushes an entry, removals leave their entries
// behind, and DropExpired pops only entries whose time has come — checking
// each against the live set. The periodic expiry sweep therefore costs
// O(1) when nothing expired (the common case: the engine sweeps every
// ExpirySweepEvery ticks, messages live for a 20-minute TTL) instead of a
// full scan of every buffered copy, which profiles showed dominating the
// sweep at scale. Stale entries are self-cleaning: each is popped and
// discarded exactly once, when its expiry time passes.
type Buffer struct {
	capacity int
	used     int
	policy   DropPolicy
	byID     map[int]int // message id -> index in list
	list     []*msg.Copy
	expiry   []expEntry // min-heap on (at, id); may hold stale ids
}

// expEntry is one pending expiry: message id at absolute time at.
type expEntry struct {
	at float64
	id int
}

// New returns a buffer of the given byte capacity. capacity <= 0 means
// unbounded. A nil policy selects DropOldestReceived.
func New(capacity int, policy DropPolicy) *Buffer {
	if policy == nil {
		policy = DropOldestReceived
	}
	return &Buffer{capacity: capacity, policy: policy, byID: make(map[int]int)}
}

// SetPolicy replaces the drop policy (routers with protocol-specific drop
// orders, e.g. MaxProp, install theirs at Init).
func (b *Buffer) SetPolicy(p DropPolicy) {
	if p != nil {
		b.policy = p
	}
}

// Capacity returns the byte capacity (0 = unbounded).
func (b *Buffer) Capacity() int { return b.capacity }

// Used returns the bytes currently stored.
func (b *Buffer) Used() int { return b.used }

// Free returns the remaining capacity; unbounded buffers report a negative
// value.
func (b *Buffer) Free() int {
	if b.capacity <= 0 {
		return -1
	}
	return b.capacity - b.used
}

// Len returns the number of stored copies.
func (b *Buffer) Len() int { return len(b.list) }

// Has reports whether a copy of message id is stored.
func (b *Buffer) Has(id int) bool {
	_, ok := b.byID[id]
	return ok
}

// Get returns the stored copy of message id, or nil.
func (b *Buffer) Get(id int) *msg.Copy {
	i, ok := b.byID[id]
	if !ok {
		return nil
	}
	return b.list[i]
}

// All returns the stored copies in insertion order. The returned slice is
// shared; callers must not mutate it (copies themselves may be mutated).
func (b *Buffer) All() []*msg.Copy { return b.list }

// Add stores c, evicting victims via the drop policy as needed. It returns
// the evicted copies and whether c was stored; a message larger than the
// whole buffer is refused with ok=false. Adding a duplicate id panics —
// routers must check Has first.
func (b *Buffer) Add(t float64, c *msg.Copy) (dropped []*msg.Copy, ok bool) {
	if _, dup := b.byID[c.M.ID]; dup {
		panic(fmt.Sprintf("buffer: duplicate add of message %d", c.M.ID))
	}
	if b.capacity > 0 {
		if c.M.Size > b.capacity {
			return nil, false
		}
		for b.used+c.M.Size > b.capacity {
			v := b.policy(t, b.list)
			dropped = append(dropped, b.removeAt(v))
		}
	}
	b.byID[c.M.ID] = len(b.list)
	b.list = append(b.list, c)
	b.used += c.M.Size
	b.expiryPush(expEntry{at: c.M.Expire, id: c.M.ID})
	return dropped, true
}

// Remove deletes and returns the copy of message id, or nil if absent.
func (b *Buffer) Remove(id int) *msg.Copy {
	i, ok := b.byID[id]
	if !ok {
		return nil
	}
	return b.removeAt(i)
}

func (b *Buffer) removeAt(i int) *msg.Copy {
	c := b.list[i]
	copy(b.list[i:], b.list[i+1:])
	b.list = b.list[:len(b.list)-1]
	delete(b.byID, c.M.ID)
	for j := i; j < len(b.list); j++ {
		b.byID[b.list[j].M.ID] = j
	}
	b.used -= c.M.Size
	return c
}

// DropExpired removes and returns every copy expired at time t, in
// (expiry time, message id) order. A message re-added after removal keeps
// its immutable expiry time, so duplicate heap entries are harmless: the
// first matching pop removes the copy, later ones find the id gone.
func (b *Buffer) DropExpired(t float64) []*msg.Copy {
	var out []*msg.Copy
	for len(b.expiry) > 0 {
		top := b.expiry[0]
		if !(top.at < t) { // Expired(t) is t > Expire
			break
		}
		b.expiryPop()
		if i, ok := b.byID[top.id]; ok {
			out = append(out, b.removeAt(i))
		}
	}
	return out
}

// expiryPush inserts e, maintaining (at, id) min-heap order.
func (b *Buffer) expiryPush(e expEntry) {
	b.expiry = append(b.expiry, e)
	i := len(b.expiry) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !expLess(b.expiry[i], b.expiry[p]) {
			break
		}
		b.expiry[i], b.expiry[p] = b.expiry[p], b.expiry[i]
		i = p
	}
}

// expiryPop removes the minimum entry.
func (b *Buffer) expiryPop() {
	n := len(b.expiry) - 1
	b.expiry[0] = b.expiry[n]
	b.expiry = b.expiry[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && expLess(b.expiry[l], b.expiry[small]) {
			small = l
		}
		if r < n && expLess(b.expiry[r], b.expiry[small]) {
			small = r
		}
		if small == i {
			return
		}
		b.expiry[i], b.expiry[small] = b.expiry[small], b.expiry[i]
		i = small
	}
}

func expLess(a, b expEntry) bool {
	return a.at < b.at || (a.at == b.at && a.id < b.id)
}
