package buffer

import (
	"testing"
	"testing/quick"

	"repro/internal/msg"
	"repro/internal/xrand"
)

func mkCopy(id, size int, created, received float64) *msg.Copy {
	m := &msg.Message{ID: id, From: 0, To: 1, Size: size, Created: created, Expire: created + 1200}
	c := msg.NewCopy(m, 1)
	c.ReceivedAt = received
	return c
}

func TestAddGetRemove(t *testing.T) {
	b := New(100, nil)
	c := mkCopy(1, 40, 0, 0)
	if dropped, ok := b.Add(0, c); !ok || dropped != nil {
		t.Fatalf("Add = %v, %v", dropped, ok)
	}
	if !b.Has(1) || b.Get(1) != c {
		t.Fatal("lookup failed")
	}
	if b.Used() != 40 || b.Free() != 60 || b.Len() != 1 {
		t.Fatalf("accounting: used=%d free=%d len=%d", b.Used(), b.Free(), b.Len())
	}
	if got := b.Remove(1); got != c {
		t.Fatal("Remove returned wrong copy")
	}
	if b.Has(1) || b.Used() != 0 {
		t.Fatal("remove did not clear state")
	}
	if b.Remove(99) != nil {
		t.Error("Remove of absent id should be nil")
	}
}

func TestEvictionFIFO(t *testing.T) {
	b := New(100, nil) // default DropOldestReceived
	b.Add(0, mkCopy(1, 40, 0, 5))
	b.Add(0, mkCopy(2, 40, 0, 1)) // oldest received
	dropped, ok := b.Add(0, mkCopy(3, 40, 0, 9))
	if !ok || len(dropped) != 1 || dropped[0].M.ID != 2 {
		t.Fatalf("dropped = %v, ok=%v; want message 2", dropped, ok)
	}
	if !b.Has(1) || !b.Has(3) || b.Has(2) {
		t.Fatal("wrong survivor set")
	}
}

func TestEvictionMultipleVictims(t *testing.T) {
	b := New(100, nil)
	b.Add(0, mkCopy(1, 30, 0, 1))
	b.Add(0, mkCopy(2, 30, 0, 2))
	b.Add(0, mkCopy(3, 30, 0, 3))
	// Used 90 of 100; a 70-byte arrival needs two evictions (90→60→30).
	dropped, ok := b.Add(0, mkCopy(4, 70, 0, 4))
	if !ok || len(dropped) != 2 {
		t.Fatalf("dropped %d copies, want 2", len(dropped))
	}
	if dropped[0].M.ID != 1 || dropped[1].M.ID != 2 {
		t.Fatalf("dropped = %v, %v; want 1, 2", dropped[0].M.ID, dropped[1].M.ID)
	}
}

func TestRefuseOversize(t *testing.T) {
	b := New(50, nil)
	b.Add(0, mkCopy(1, 40, 0, 0))
	if _, ok := b.Add(0, mkCopy(2, 60, 0, 0)); ok {
		t.Fatal("oversize message accepted")
	}
	if !b.Has(1) {
		t.Fatal("refusal evicted existing content")
	}
}

func TestUnboundedBuffer(t *testing.T) {
	b := New(0, nil)
	for i := 0; i < 100; i++ {
		if _, ok := b.Add(0, mkCopy(i, 1000, 0, 0)); !ok {
			t.Fatal("unbounded buffer refused")
		}
	}
	if b.Free() >= 0 {
		t.Error("unbounded Free should be negative")
	}
}

func TestDuplicateAddPanics(t *testing.T) {
	b := New(0, nil)
	b.Add(0, mkCopy(1, 10, 0, 0))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.Add(0, mkCopy(1, 10, 0, 0))
}

func TestDropExpired(t *testing.T) {
	b := New(0, nil)
	b.Add(0, mkCopy(1, 10, 0, 0))    // expires 1200
	b.Add(0, mkCopy(2, 10, 1000, 0)) // expires 2200
	b.Add(0, mkCopy(3, 10, 100, 0))  // expires 1300
	out := b.DropExpired(1250)
	if len(out) != 1 || out[0].M.ID != 1 {
		t.Fatalf("expired = %v", out)
	}
	if b.Len() != 2 {
		t.Errorf("Len = %d, want 2", b.Len())
	}
}

func TestPolicies(t *testing.T) {
	copies := []*msg.Copy{
		mkCopy(1, 10, 50, 70),
		mkCopy(2, 10, 10, 90), // oldest created
		mkCopy(3, 10, 80, 60), // oldest received
	}
	copies[0].Hops = 5 // most hops
	if v := DropOldestCreated(0, copies); copies[v].M.ID != 2 {
		t.Errorf("DropOldestCreated chose %d", copies[v].M.ID)
	}
	if v := DropOldestReceived(0, copies); copies[v].M.ID != 3 {
		t.Errorf("DropOldestReceived chose %d", copies[v].M.ID)
	}
	if v := DropSoonestExpiry(0, copies); copies[v].M.ID != 2 {
		t.Errorf("DropSoonestExpiry chose %d", copies[v].M.ID)
	}
	if v := DropMostHops(0, copies); copies[v].M.ID != 1 {
		t.Errorf("DropMostHops chose %d", copies[v].M.ID)
	}
}

func TestInsertionOrderStable(t *testing.T) {
	b := New(0, nil)
	for i := 0; i < 10; i++ {
		b.Add(0, mkCopy(i, 10, 0, 0))
	}
	b.Remove(3)
	b.Remove(7)
	want := []int{0, 1, 2, 4, 5, 6, 8, 9}
	all := b.All()
	for i, c := range all {
		if c.M.ID != want[i] {
			t.Fatalf("order = %v", all)
		}
	}
	// Index map still consistent after compaction.
	for _, id := range want {
		if b.Get(id).M.ID != id {
			t.Fatalf("Get(%d) broken after removals", id)
		}
	}
}

// TestPropCapacityInvariant: under random add/remove sequences the used
// bytes never exceed capacity and always equal the sum of stored sizes.
func TestPropCapacityInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		capacity := 100 + rng.Intn(400)
		b := New(capacity, nil)
		id := 0
		for op := 0; op < 200; op++ {
			if rng.Bool(0.7) {
				id++
				b.Add(float64(op), mkCopy(id, 10+rng.Intn(120), float64(op), float64(op)))
			} else if b.Len() > 0 {
				b.Remove(b.All()[rng.Intn(b.Len())].M.ID)
			}
			sum := 0
			for _, c := range b.All() {
				sum += c.M.Size
			}
			if sum != b.Used() || b.Used() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// naiveDropExpired is the pre-heap reference implementation: a full scan
// of the copy list in insertion order. The heap-based DropExpired must
// remove exactly the same set and leave the identical surviving sequence.
func naiveDropExpired(b *Buffer, t float64) []*msg.Copy {
	var out []*msg.Copy
	for _, c := range append([]*msg.Copy(nil), b.All()...) {
		if c.M.Expired(t) {
			out = append(out, b.Remove(c.M.ID))
		}
	}
	return out
}

// TestDropExpiredHeapParity drives a heap buffer and a naive-sweep buffer
// through identical random Add/Remove/re-Add/DropExpired sequences and
// demands the same expired sets and surviving buffer contents — the pin
// for replacing the full-scan expiry sweep with the expiry-ordered heap.
func TestDropExpiredHeapParity(t *testing.T) {
	rng := xrand.New(99)
	heapB := New(0, nil)
	naiveB := New(0, nil)
	mk := func(id int, created float64) (*msg.Copy, *msg.Copy) {
		ttl := rng.Uniform(50, 500)
		m1 := &msg.Message{ID: id, From: 0, To: 1, Size: 10, Created: created, Expire: created + ttl}
		m2 := &msg.Message{ID: id, From: 0, To: 1, Size: 10, Created: created, Expire: created + ttl}
		return msg.NewCopy(m1, 1), msg.NewCopy(m2, 1)
	}
	// removed remembers (id -> expire) so re-adds keep the immutable
	// expiry, exercising duplicate heap entries.
	removed := map[int]float64{}
	now, nextID := 0.0, 0
	live := []int{}
	for step := 0; step < 3000; step++ {
		now += rng.Uniform(0, 20)
		switch op := rng.Intn(10); {
		case op < 5: // add a fresh message
			nextID++
			c1, c2 := mk(nextID, now)
			heapB.Add(now, c1)
			naiveB.Add(now, c2)
			live = append(live, nextID)
		case op < 7 && len(live) > 0: // remove a random live copy
			i := rng.Intn(len(live))
			id := live[i]
			live = append(live[:i], live[i+1:]...)
			hc := heapB.Remove(id)
			nc := naiveB.Remove(id)
			if (hc == nil) != (nc == nil) {
				t.Fatalf("step %d: Remove(%d) presence mismatch", step, id)
			}
			if hc != nil {
				removed[id] = hc.M.Expire
			}
		case op < 8 && len(removed) > 0: // re-add a removed id (same expiry)
			for id, exp := range removed {
				if exp <= now {
					continue // would re-add an already-expired message
				}
				m1 := &msg.Message{ID: id, From: 0, To: 1, Size: 10, Created: exp - 100, Expire: exp}
				m2 := *m1
				heapB.Add(now, msg.NewCopy(m1, 1))
				naiveB.Add(now, msg.NewCopy(&m2, 1))
				live = append(live, id)
				delete(removed, id)
				break
			}
		default: // expiry sweep
			h := heapB.DropExpired(now)
			n := naiveDropExpired(naiveB, now)
			if len(h) != len(n) {
				t.Fatalf("step %d t=%g: heap dropped %d, naive %d", step, now, len(h), len(n))
			}
			hs := map[int]bool{}
			for _, c := range h {
				hs[c.M.ID] = true
			}
			for _, c := range n {
				if !hs[c.M.ID] {
					t.Fatalf("step %d: naive dropped %d, heap did not", step, c.M.ID)
				}
			}
			for i := 0; i < len(live); {
				if hs[live[i]] {
					live = append(live[:i], live[i+1:]...)
				} else {
					i++
				}
			}
		}
		if heapB.Len() != naiveB.Len() {
			t.Fatalf("step %d: Len %d vs %d", step, heapB.Len(), naiveB.Len())
		}
	}
	// Surviving sequences must match element-wise (insertion order).
	ha, na := heapB.All(), naiveB.All()
	for i := range ha {
		if ha[i].M.ID != na[i].M.ID {
			t.Fatalf("surviving order diverged at %d: %d vs %d", i, ha[i].M.ID, na[i].M.ID)
		}
	}
	// Drain everything far in the future; both must agree one last time.
	now += 1e6
	if h, n := heapB.DropExpired(now), naiveDropExpired(naiveB, now); len(h) != len(n) {
		t.Fatalf("final drain: %d vs %d", len(h), len(n))
	}
	if heapB.Len() != 0 {
		t.Fatalf("drain left %d copies", heapB.Len())
	}
}
