package buffer

import (
	"testing"
	"testing/quick"

	"repro/internal/msg"
	"repro/internal/xrand"
)

func mkCopy(id, size int, created, received float64) *msg.Copy {
	m := &msg.Message{ID: id, From: 0, To: 1, Size: size, Created: created, Expire: created + 1200}
	c := msg.NewCopy(m, 1)
	c.ReceivedAt = received
	return c
}

func TestAddGetRemove(t *testing.T) {
	b := New(100, nil)
	c := mkCopy(1, 40, 0, 0)
	if dropped, ok := b.Add(0, c); !ok || dropped != nil {
		t.Fatalf("Add = %v, %v", dropped, ok)
	}
	if !b.Has(1) || b.Get(1) != c {
		t.Fatal("lookup failed")
	}
	if b.Used() != 40 || b.Free() != 60 || b.Len() != 1 {
		t.Fatalf("accounting: used=%d free=%d len=%d", b.Used(), b.Free(), b.Len())
	}
	if got := b.Remove(1); got != c {
		t.Fatal("Remove returned wrong copy")
	}
	if b.Has(1) || b.Used() != 0 {
		t.Fatal("remove did not clear state")
	}
	if b.Remove(99) != nil {
		t.Error("Remove of absent id should be nil")
	}
}

func TestEvictionFIFO(t *testing.T) {
	b := New(100, nil) // default DropOldestReceived
	b.Add(0, mkCopy(1, 40, 0, 5))
	b.Add(0, mkCopy(2, 40, 0, 1)) // oldest received
	dropped, ok := b.Add(0, mkCopy(3, 40, 0, 9))
	if !ok || len(dropped) != 1 || dropped[0].M.ID != 2 {
		t.Fatalf("dropped = %v, ok=%v; want message 2", dropped, ok)
	}
	if !b.Has(1) || !b.Has(3) || b.Has(2) {
		t.Fatal("wrong survivor set")
	}
}

func TestEvictionMultipleVictims(t *testing.T) {
	b := New(100, nil)
	b.Add(0, mkCopy(1, 30, 0, 1))
	b.Add(0, mkCopy(2, 30, 0, 2))
	b.Add(0, mkCopy(3, 30, 0, 3))
	// Used 90 of 100; a 70-byte arrival needs two evictions (90→60→30).
	dropped, ok := b.Add(0, mkCopy(4, 70, 0, 4))
	if !ok || len(dropped) != 2 {
		t.Fatalf("dropped %d copies, want 2", len(dropped))
	}
	if dropped[0].M.ID != 1 || dropped[1].M.ID != 2 {
		t.Fatalf("dropped = %v, %v; want 1, 2", dropped[0].M.ID, dropped[1].M.ID)
	}
}

func TestRefuseOversize(t *testing.T) {
	b := New(50, nil)
	b.Add(0, mkCopy(1, 40, 0, 0))
	if _, ok := b.Add(0, mkCopy(2, 60, 0, 0)); ok {
		t.Fatal("oversize message accepted")
	}
	if !b.Has(1) {
		t.Fatal("refusal evicted existing content")
	}
}

func TestUnboundedBuffer(t *testing.T) {
	b := New(0, nil)
	for i := 0; i < 100; i++ {
		if _, ok := b.Add(0, mkCopy(i, 1000, 0, 0)); !ok {
			t.Fatal("unbounded buffer refused")
		}
	}
	if b.Free() >= 0 {
		t.Error("unbounded Free should be negative")
	}
}

func TestDuplicateAddPanics(t *testing.T) {
	b := New(0, nil)
	b.Add(0, mkCopy(1, 10, 0, 0))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.Add(0, mkCopy(1, 10, 0, 0))
}

func TestDropExpired(t *testing.T) {
	b := New(0, nil)
	b.Add(0, mkCopy(1, 10, 0, 0))    // expires 1200
	b.Add(0, mkCopy(2, 10, 1000, 0)) // expires 2200
	b.Add(0, mkCopy(3, 10, 100, 0))  // expires 1300
	out := b.DropExpired(1250)
	if len(out) != 1 || out[0].M.ID != 1 {
		t.Fatalf("expired = %v", out)
	}
	if b.Len() != 2 {
		t.Errorf("Len = %d, want 2", b.Len())
	}
}

func TestPolicies(t *testing.T) {
	copies := []*msg.Copy{
		mkCopy(1, 10, 50, 70),
		mkCopy(2, 10, 10, 90), // oldest created
		mkCopy(3, 10, 80, 60), // oldest received
	}
	copies[0].Hops = 5 // most hops
	if v := DropOldestCreated(0, copies); copies[v].M.ID != 2 {
		t.Errorf("DropOldestCreated chose %d", copies[v].M.ID)
	}
	if v := DropOldestReceived(0, copies); copies[v].M.ID != 3 {
		t.Errorf("DropOldestReceived chose %d", copies[v].M.ID)
	}
	if v := DropSoonestExpiry(0, copies); copies[v].M.ID != 2 {
		t.Errorf("DropSoonestExpiry chose %d", copies[v].M.ID)
	}
	if v := DropMostHops(0, copies); copies[v].M.ID != 1 {
		t.Errorf("DropMostHops chose %d", copies[v].M.ID)
	}
}

func TestInsertionOrderStable(t *testing.T) {
	b := New(0, nil)
	for i := 0; i < 10; i++ {
		b.Add(0, mkCopy(i, 10, 0, 0))
	}
	b.Remove(3)
	b.Remove(7)
	want := []int{0, 1, 2, 4, 5, 6, 8, 9}
	all := b.All()
	for i, c := range all {
		if c.M.ID != want[i] {
			t.Fatalf("order = %v", all)
		}
	}
	// Index map still consistent after compaction.
	for _, id := range want {
		if b.Get(id).M.ID != id {
			t.Fatalf("Get(%d) broken after removals", id)
		}
	}
}

// TestPropCapacityInvariant: under random add/remove sequences the used
// bytes never exceed capacity and always equal the sum of stored sizes.
func TestPropCapacityInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		capacity := 100 + rng.Intn(400)
		b := New(capacity, nil)
		id := 0
		for op := 0; op < 200; op++ {
			if rng.Bool(0.7) {
				id++
				b.Add(float64(op), mkCopy(id, 10+rng.Intn(120), float64(op), float64(op)))
			} else if b.Len() > 0 {
				b.Remove(b.All()[rng.Intn(b.Len())].M.ID)
			}
			sum := 0
			for _, c := range b.All() {
				sum += c.M.Size
			}
			if sum != b.Used() || b.Used() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
