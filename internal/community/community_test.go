package community

import (
	"testing"

	"repro/internal/xrand"
)

func TestRegistryBasics(t *testing.T) {
	r := New([]int{0, 1, 0, 2, 1})
	if r.Count() != 3 || r.N() != 5 {
		t.Fatalf("Count=%d N=%d", r.Count(), r.N())
	}
	if r.Of(3) != 2 {
		t.Errorf("Of(3) = %d", r.Of(3))
	}
	if m := r.Members(0); len(m) != 2 || m[0] != 0 || m[1] != 2 {
		t.Errorf("Members(0) = %v", m)
	}
	if !r.Same(0, 2) || r.Same(0, 1) {
		t.Error("Same wrong")
	}
	if len(r.Communities()) != 3 {
		t.Error("Communities wrong")
	}
}

func TestRegistryValidation(t *testing.T) {
	for name, ids := range map[string][]int{
		"negative": {0, -1},
		"sparse":   {0, 2},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			New(ids)
		}()
	}
}

func TestFromAssignerCompacts(t *testing.T) {
	// Assigner yields ids 5 and 9; they must be renumbered 0 and 1.
	r := FromAssigner(4, func(i int) int {
		if i%2 == 0 {
			return 5
		}
		return 9
	})
	if r.Count() != 2 {
		t.Fatalf("Count = %d", r.Count())
	}
	if r.Of(0) != 0 || r.Of(1) != 1 || r.Of(2) != 0 {
		t.Errorf("compacted ids wrong: %d %d %d", r.Of(0), r.Of(1), r.Of(2))
	}
}

// TestLabelPropagationPlanted recovers a planted two-block structure:
// strong in-block weights, weak cross-block weights.
func TestLabelPropagationPlanted(t *testing.T) {
	const n = 12
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	block := func(i int) int { return i / 6 }
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := 0.1
			if block(i) == block(j) {
				v = 10
			}
			w[i][j], w[j][i] = v, v
		}
	}
	r := LabelPropagation(w, 50, xrand.New(1))
	if r.Count() != 2 {
		t.Fatalf("recovered %d communities, want 2", r.Count())
	}
	for i := 1; i < 6; i++ {
		if !r.Same(0, i) {
			t.Errorf("nodes 0 and %d split", i)
		}
		if r.Same(0, 6+i) {
			t.Errorf("nodes 0 and %d merged", 6+i)
		}
	}
}

func TestLabelPropagationIsolated(t *testing.T) {
	// No edges at all: everyone keeps their own label.
	w := make([][]float64, 3)
	for i := range w {
		w[i] = make([]float64, 3)
	}
	r := LabelPropagation(w, 10, xrand.New(2))
	if r.Count() != 3 {
		t.Errorf("isolated nodes merged: %d communities", r.Count())
	}
}

func TestLabelPropagationDeterministicGivenSeed(t *testing.T) {
	w := [][]float64{
		{0, 5, 5, 0.1},
		{5, 0, 5, 0.1},
		{5, 5, 0, 0.1},
		{0.1, 0.1, 0.1, 0},
	}
	a := LabelPropagation(w, 20, xrand.New(3))
	b := LabelPropagation(w, 20, xrand.New(3))
	for i := 0; i < 4; i++ {
		if a.Of(i) != b.Of(i) {
			t.Fatal("same-seed label propagation diverged")
		}
	}
}
