// Package community assigns nodes to communities. The paper predefines
// communities in its evaluation ("for simplicity"); here the bus-line
// districts of the generated map play that role. The package also ships a
// distributed-flavoured label-propagation constructor (the paper's stated
// future work) that recovers communities from observed contact counts.
package community

import (
	"fmt"

	"repro/internal/xrand"
)

// Registry is an immutable node→community assignment.
type Registry struct {
	of      []int
	members [][]int
}

// New builds a registry from a node→community id slice. Community ids must
// be dense, starting at 0.
func New(of []int) *Registry {
	max := -1
	for _, c := range of {
		if c < 0 {
			panic("community: negative community id")
		}
		if c > max {
			max = c
		}
	}
	r := &Registry{of: append([]int(nil), of...), members: make([][]int, max+1)}
	for node, c := range r.of {
		r.members[c] = append(r.members[c], node)
	}
	for c, m := range r.members {
		if len(m) == 0 {
			panic(fmt.Sprintf("community: community %d has no members (ids must be dense)", c))
		}
	}
	return r
}

// Of returns the community id of node.
func (r *Registry) Of(node int) int { return r.of[node] }

// Members returns the member node ids of community c (shared; do not
// mutate).
func (r *Registry) Members(c int) []int { return r.members[c] }

// Communities returns the member list of every community (shared).
func (r *Registry) Communities() [][]int { return r.members }

// Count returns the number of communities.
func (r *Registry) Count() int { return len(r.members) }

// N returns the number of nodes.
func (r *Registry) N() int { return len(r.of) }

// Same reports whether two nodes share a community.
func (r *Registry) Same(a, b int) bool { return r.of[a] == r.of[b] }

// FromAssigner builds a registry for n nodes with a node→community
// function — used with mapgen.RoadMap.DistrictOfNode.
func FromAssigner(n int, of func(node int) int) *Registry {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = of(i)
	}
	return New(compact(ids))
}

// compact renumbers community ids densely, preserving order of first
// appearance.
func compact(ids []int) []int {
	seen := map[int]int{}
	out := make([]int, len(ids))
	for i, c := range ids {
		d, ok := seen[c]
		if !ok {
			d = len(seen)
			seen[c] = d
		}
		out[i] = d
	}
	return out
}

// LabelPropagation recovers a community structure from a symmetric contact
// weight matrix (e.g. pairwise meeting counts): every node starts in its
// own community and repeatedly adopts the label with the largest total
// edge weight among its contacts, in randomised order, until a fixed point
// or maxIters. This is the distributed-construction extension the paper
// lists as future work; each node's update uses only its own observed
// contacts.
func LabelPropagation(weights [][]float64, maxIters int, rng *xrand.Source) *Registry {
	n := len(weights)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i
	}
	if maxIters <= 0 {
		maxIters = 50
	}
	votes := map[int]float64{}
	for iter := 0; iter < maxIters; iter++ {
		changed := false
		for _, i := range rng.Perm(n) {
			for k := range votes {
				delete(votes, k)
			}
			for j := 0; j < n; j++ {
				if j == i || weights[i][j] <= 0 {
					continue
				}
				votes[labels[j]] += weights[i][j]
			}
			if len(votes) == 0 {
				continue
			}
			best, bestW := labels[i], votes[labels[i]]
			for l, w := range votes {
				if w > bestW || (w == bestW && l < best) {
					best, bestW = l, w
				}
			}
			if best != labels[i] {
				labels[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return New(compact(labels))
}
