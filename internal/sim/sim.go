// Package sim provides the simulation clock, the scheduled-event queue and
// the deterministic tick runner that drive a DTN scenario.
//
// The simulator is time-stepped (like the ONE simulator the paper used):
// node movement and contact detection advance once per tick, while message
// generation, transfer completions and other timed actions are discrete
// events processed in timestamp order at the start of each tick. Events at
// equal timestamps fire in insertion order, which keeps runs bit-for-bit
// deterministic.
package sim

import (
	"container/heap"
	"context"
	"math"

	"repro/internal/obs"
)

// Event is a callback scheduled to fire at a simulated time.
//
// A handle returned by Schedule is valid until the event fires or is
// cancelled; after that the queue may recycle the Event for a later
// Schedule, so holders must drop their reference (Link does this by
// nilling its field before running the completion).
type Event struct {
	At   float64
	Fire func(t float64)

	seq   int64 // insertion order for stable ties
	index int   // heap index, -1 once popped/cancelled
}

// Cancelled reports whether the event was removed before firing.
func (e *Event) Cancelled() bool { return e.index == -2 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Queue is a deterministic future-event list. Fired events are recycled
// through a freelist, so steady-state scheduling (one transfer completion
// per contact, one generation event per message, ...) allocates nothing.
type Queue struct {
	h    eventHeap
	seq  int64
	free []*Event
}

// NewQueue returns an empty event queue.
func NewQueue() *Queue { return &Queue{} }

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// Schedule enqueues fire to run at time at and returns a handle that can be
// passed to Cancel. The handle must not be used after the event fires.
func (q *Queue) Schedule(at float64, fire func(t float64)) *Event {
	var e *Event
	if n := len(q.free); n > 0 {
		e = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
	} else {
		e = &Event{}
	}
	q.seq++
	*e = Event{At: at, Fire: fire, seq: q.seq}
	heap.Push(&q.h, e)
	return e
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (q *Queue) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		return
	}
	heap.Remove(&q.h, e.index)
	e.index = -2
}

// NextAt returns the timestamp of the earliest pending event, or +Inf when
// the queue is empty.
func (q *Queue) NextAt() float64 {
	if len(q.h) == 0 {
		return math.Inf(1)
	}
	return q.h[0].At
}

// RunUntil fires every event with timestamp <= t in order. Events scheduled
// during processing are honoured if they also fall at or before t.
func (q *Queue) RunUntil(t float64) {
	for len(q.h) > 0 && q.h[0].At <= t {
		e := heap.Pop(&q.h).(*Event)
		e.Fire(e.At)
		// Recycle after the callback returns: the callback may still read
		// the event (and anything it schedules pulls from the freelist
		// first, never this event). Cancelled events are NOT recycled so
		// their handles keep answering Cancelled() truthfully.
		e.Fire = nil
		q.free = append(q.free, e)
	}
}

// Clock tracks simulated time.
type Clock struct {
	now float64
}

// Now returns the current simulated time in seconds.
func (c *Clock) Now() float64 { return c.now }

// advance is used by Runner; external code never moves the clock.
func (c *Clock) advance(t float64) { c.now = t }

// Ticker is anything that advances once per simulation tick.
type Ticker interface {
	// Tick is called with the new simulation time after events at or
	// before t have fired.
	Tick(t float64)
}

// Runner drives a scenario: it alternates event processing and tick
// callbacks at a fixed interval until the end time.
type Runner struct {
	Clock  Clock
	Events *Queue
	Tick   float64 // tick interval in seconds, must be > 0
	// Prof, when non-nil, books the event-queue drain between ticks
	// under obs.PhaseEvents. Tickers that profile themselves (the
	// network world) share the same profiler. Profiling observes wall
	// time only; the simulation is bit-identical with or without it.
	Prof    *obs.EngineProf
	tickers []Ticker
}

// NewRunner returns a runner with the given tick interval.
func NewRunner(tick float64) *Runner {
	if tick <= 0 {
		panic("sim: tick interval must be positive")
	}
	return &Runner{Events: NewQueue(), Tick: tick}
}

// AddTicker registers t to advance every tick, in registration order.
func (r *Runner) AddTicker(t Ticker) { r.tickers = append(r.tickers, t) }

// Now returns the current simulated time.
func (r *Runner) Now() float64 { return r.Clock.Now() }

// Run advances the simulation until time end (inclusive of events at end).
// It may be called repeatedly to extend a run.
func (r *Runner) Run(end float64) {
	r.RunProgress(end, 0, nil)
}

// RunProgress is Run with a progress hook: after every `every` ticks (and
// once more on completion) hook is called with the current simulated time.
// every <= 0 or a nil hook disables reporting. The tick loop is the same
// code path as Run — identical floating-point time sequence, identical
// results — so callers can stream live progress from a run that stays
// bit-identical to an unobserved one.
func (r *Runner) RunProgress(end float64, every int, hook func(t float64)) {
	r.RunContext(nil, end, every, hook)
}

// RunContext is RunProgress with cooperative cancellation: the context is
// polled after every tick and the run stops early with ctx.Err() once it
// is cancelled — a cancelled simulation wastes at most one tick of work.
// A nil or never-cancelled context ticks the exact same floating-point
// time sequence as Run — cancellation points only observe state, so a
// run that completes is bit-identical to an unobserved one. The final
// hook call is skipped on early stop: the run did not reach a reportable
// end state.
func (r *Runner) RunContext(ctx context.Context, end float64, every int, hook func(t float64)) error {
	ticks := 0
	for r.Clock.Now() < end {
		next := r.Clock.Now() + r.Tick
		if next > end {
			next = end
		}
		st := r.Prof.Start()
		r.Events.RunUntil(next)
		r.Prof.Lap(obs.PhaseEvents, st)
		r.Clock.advance(next)
		for _, tk := range r.tickers {
			tk.Tick(next)
		}
		if ticks++; every > 0 && hook != nil && ticks%every == 0 {
			hook(next)
		}
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
	if hook != nil {
		hook(r.Clock.Now())
	}
	return nil
}
