package sim

import (
	"context"
	"math"
	"testing"
)

func TestQueueOrder(t *testing.T) {
	q := NewQueue()
	var fired []int
	q.Schedule(3, func(float64) { fired = append(fired, 3) })
	q.Schedule(1, func(float64) { fired = append(fired, 1) })
	q.Schedule(2, func(float64) { fired = append(fired, 2) })
	q.RunUntil(10)
	if len(fired) != 3 || fired[0] != 1 || fired[1] != 2 || fired[2] != 3 {
		t.Fatalf("fired order = %v", fired)
	}
	if q.Len() != 0 {
		t.Errorf("queue not drained: %d", q.Len())
	}
}

func TestQueueTieInsertionOrder(t *testing.T) {
	q := NewQueue()
	var fired []string
	q.Schedule(5, func(float64) { fired = append(fired, "a") })
	q.Schedule(5, func(float64) { fired = append(fired, "b") })
	q.Schedule(5, func(float64) { fired = append(fired, "c") })
	q.RunUntil(5)
	if got := fired[0] + fired[1] + fired[2]; got != "abc" {
		t.Fatalf("tie order = %q, want abc", got)
	}
}

func TestQueuePartialRun(t *testing.T) {
	q := NewQueue()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4} {
		at := at
		q.Schedule(at, func(float64) { fired = append(fired, at) })
	}
	q.RunUntil(2.5)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want 2 events", fired)
	}
	if q.NextAt() != 3 {
		t.Errorf("NextAt = %g, want 3", q.NextAt())
	}
	q.RunUntil(10)
	if len(fired) != 4 {
		t.Errorf("fired %v after full run", fired)
	}
}

func TestQueueNestedScheduling(t *testing.T) {
	q := NewQueue()
	var fired []float64
	q.Schedule(1, func(tt float64) {
		fired = append(fired, tt)
		q.Schedule(1.5, func(tt2 float64) { fired = append(fired, tt2) })
		q.Schedule(5, func(tt2 float64) { fired = append(fired, tt2) })
	})
	q.RunUntil(2)
	if len(fired) != 2 || fired[1] != 1.5 {
		t.Fatalf("nested events = %v", fired)
	}
}

func TestCancel(t *testing.T) {
	q := NewQueue()
	fired := false
	e := q.Schedule(1, func(float64) { fired = true })
	q.Cancel(e)
	if !e.Cancelled() {
		t.Error("event not marked cancelled")
	}
	q.RunUntil(10)
	if fired {
		t.Error("cancelled event fired")
	}
	// Double cancel and nil cancel are no-ops.
	q.Cancel(e)
	q.Cancel(nil)
}

func TestCancelMiddleOfHeap(t *testing.T) {
	q := NewQueue()
	var fired []int
	var events []*Event
	for i := 0; i < 10; i++ {
		i := i
		events = append(events, q.Schedule(float64(i), func(float64) { fired = append(fired, i) }))
	}
	q.Cancel(events[4])
	q.Cancel(events[7])
	q.RunUntil(100)
	if len(fired) != 8 {
		t.Fatalf("fired %v", fired)
	}
	for _, v := range fired {
		if v == 4 || v == 7 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
}

func TestNextAtEmpty(t *testing.T) {
	q := NewQueue()
	if !math.IsInf(q.NextAt(), 1) {
		t.Error("NextAt on empty queue should be +Inf")
	}
}

type countTicker struct {
	times []float64
}

func (c *countTicker) Tick(t float64) { c.times = append(c.times, t) }

func TestRunnerTicks(t *testing.T) {
	r := NewRunner(0.5)
	ct := &countTicker{}
	r.AddTicker(ct)
	r.Run(2)
	want := []float64{0.5, 1, 1.5, 2}
	if len(ct.times) != len(want) {
		t.Fatalf("ticks = %v, want %v", ct.times, want)
	}
	for i := range want {
		if math.Abs(ct.times[i]-want[i]) > 1e-9 {
			t.Fatalf("ticks = %v, want %v", ct.times, want)
		}
	}
	if r.Now() != 2 {
		t.Errorf("Now = %g, want 2", r.Now())
	}
}

func TestRunnerEventsBeforeTick(t *testing.T) {
	r := NewRunner(1)
	var order []string
	r.Events.Schedule(0.5, func(float64) { order = append(order, "event") })
	r.AddTicker(&funcTicker{f: func(t float64) {
		if t == 1 {
			order = append(order, "tick")
		}
	}})
	r.Run(1)
	if len(order) != 2 || order[0] != "event" || order[1] != "tick" {
		t.Fatalf("order = %v", order)
	}
}

type funcTicker struct{ f func(float64) }

func (ft *funcTicker) Tick(t float64) { ft.f(t) }

func TestRunnerResume(t *testing.T) {
	r := NewRunner(1)
	ct := &countTicker{}
	r.AddTicker(ct)
	r.Run(3)
	r.Run(5)
	if len(ct.times) != 5 {
		t.Fatalf("resumed ticks = %v", ct.times)
	}
}

func TestRunnerPartialLastTick(t *testing.T) {
	r := NewRunner(1)
	ct := &countTicker{}
	r.AddTicker(ct)
	r.Run(2.5)
	if r.Now() != 2.5 {
		t.Errorf("Now = %g, want 2.5", r.Now())
	}
	if ct.times[len(ct.times)-1] != 2.5 {
		t.Errorf("last tick = %g, want 2.5", ct.times[len(ct.times)-1])
	}
}

func TestRunnerInvalidTickPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRunner(0)
}

func TestQueueRecyclesFiredEvents(t *testing.T) {
	q := NewQueue()
	fired := 0
	e1 := q.Schedule(1, func(float64) { fired++ })
	q.RunUntil(1)
	// The fired event's storage may be handed out again.
	e2 := q.Schedule(2, func(float64) { fired += 10 })
	if e1 != e2 {
		t.Fatal("fired event was not recycled")
	}
	q.RunUntil(2)
	if fired != 11 {
		t.Fatalf("fired = %d, want 11", fired)
	}
}

func TestQueueDoesNotRecycleCancelledEvents(t *testing.T) {
	q := NewQueue()
	e := q.Schedule(1, func(float64) { t.Fatal("cancelled event fired") })
	q.Cancel(e)
	e2 := q.Schedule(2, func(float64) {})
	if e == e2 {
		t.Fatal("cancelled handle was recycled; Cancelled() would lie")
	}
	if !e.Cancelled() {
		t.Fatal("Cancelled lost after later Schedule")
	}
	q.RunUntil(3)
}

// TestQueueSteadyStateAllocFree proves schedule/fire cycles reuse event
// storage.
func TestQueueSteadyStateAllocFree(t *testing.T) {
	q := NewQueue()
	at := 0.0
	allocs := testing.AllocsPerRun(200, func() {
		at++
		q.Schedule(at, nil2)
		q.RunUntil(at)
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule/fire allocates %.1f objects, want 0", allocs)
	}
}

func nil2(float64) {}

func TestRunContextNilCtxMatchesRunProgress(t *testing.T) {
	var a, b []float64
	ra := NewRunner(0.25)
	ra.RunProgress(2.1, 2, func(tt float64) { a = append(a, tt) })
	rb := NewRunner(0.25)
	if err := rb.RunContext(nil, 2.1, 2, func(tt float64) { b = append(b, tt) }); err != nil {
		t.Fatalf("nil-ctx RunContext: %v", err)
	}
	if len(a) != len(b) {
		t.Fatalf("hook counts diverge: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hook %d: %v vs %v", i, a[i], b[i])
		}
	}
	if ra.Now() != rb.Now() {
		t.Errorf("final times diverge: %v vs %v", ra.Now(), rb.Now())
	}
}

func TestRunContextCancelStopsEarly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := NewRunner(1)
	ticks := 0
	r.AddTicker(tickerFunc(func(float64) {
		if ticks++; ticks == 3 {
			cancel()
		}
	}))
	err := r.RunContext(ctx, 1000, 1, nil)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The run stopped at the cancellation tick, not at the end.
	if r.Now() != 3 {
		t.Errorf("stopped at t=%g, want 3", r.Now())
	}
	if ticks != 3 {
		t.Errorf("ticked %d times after cancel", ticks)
	}
}

func TestRunContextCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := NewRunner(1)
	ticks := 0
	r.AddTicker(tickerFunc(func(float64) { ticks++ }))
	if err := r.RunContext(ctx, 100, 1, nil); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Cancellation is polled after each tick: exactly one tick runs.
	if ticks != 1 {
		t.Errorf("ticked %d times, want 1", ticks)
	}
}

type tickerFunc func(t float64)

func (f tickerFunc) Tick(t float64) { f(t) }
