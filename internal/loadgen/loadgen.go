// Package loadgen drives a live dtnd with many concurrent HTTP clients
// and reports what the service actually sustained: requests per second
// and latency percentiles, split by how the daemon answered (served from
// cache vs handed a job), plus every protocol violation it observed —
// torn statuses (done without a result, failed without an error),
// non-monotone stream fractions, duplicate simulations.
//
// The harness is deliberately a pure HTTP client: it exercises dtnd
// through the same wire surface curl does, so anything it flushes out is
// a real service bug, not a test-harness artifact. cmd/dtnload wraps it
// as a CLI; the in-process load smoke test runs it against an
// httptest.Server under -race.
package loadgen

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Config shapes one load run. The zero value is not runnable: BaseURL
// and Clients are required, and exactly one of Requests or Duration
// bounds the run.
type Config struct {
	BaseURL  string        // dtnd root, e.g. "http://127.0.0.1:8080"
	Clients  int           // concurrent synchronous workers
	Requests int           // total submissions to issue (0: run for Duration)
	Duration time.Duration // wall-clock bound (0: run until Requests issued)

	// Traffic mix, all fractions in [0, 1] drawn per submission:
	UniqueFrac float64 // never-seen spec (forces a simulation) vs shared pool
	SweepFrac  float64 // submit a small 2-cell sweep instead of a job
	StreamFrac float64 // follow an accepted job via its NDJSON stream
	// CancelFrac submissions are cancel probes: a heavier unique job
	// (tens of milliseconds of work, so the DELETE has a window to land
	// mid-flight) submitted and immediately cancelled.
	CancelFrac float64

	SharedSpecs int   // shared (cacheable) spec pool size; default 8
	Seed        int64 // RNG seed; same seed + mix → same request sequence

	// Warm pre-submits every shared-pool spec and waits for completion
	// before the measured run, so the "cached" bucket measures pure
	// cache serves rather than first-computation latency.
	Warm bool

	Client *http.Client // defaults to a pooled client sized to Clients
}

// LatencyStats summarizes one response class's submission latencies.
type LatencyStats struct {
	Count int
	Mean  time.Duration
	P50   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// Report is what one load run measured.
type Report struct {
	Elapsed   time.Duration
	Submitted int     // submissions issued (jobs + sweeps)
	ReqPerSec float64 // Submitted / Elapsed

	Cached   LatencyStats // served a result in the submit response
	Uncached LatencyStats // handed a job (queued fresh or coalesced)
	Sweeps   LatencyStats // sweep submissions, whatever their cell mix

	Coalesced   int // uncached submissions attached to an in-flight job
	Rejected    int // 429/503 refusals (backpressure working as designed)
	Cancelled   int // jobs this run cancelled mid-flight
	Streamed    int // jobs followed over NDJSON
	UniqueSpecs int // distinct content addresses submitted

	Violations []string // protocol violations observed (bounded)
}

// collector accumulates worker observations under one lock.
type collector struct {
	mu         sync.Mutex
	cached     []time.Duration
	uncached   []time.Duration
	sweeps     []time.Duration
	violations []string
	specs      map[string]bool
}

const maxViolations = 32

func (c *collector) violate(format string, args ...any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.violations) < maxViolations {
		c.violations = append(c.violations, fmt.Sprintf(format, args...))
	}
}

func (c *collector) spec(body string) {
	c.mu.Lock()
	c.specs[body] = true
	c.mu.Unlock()
}

// wire mirrors of dtnd's response shapes — the harness speaks the public
// API, it does not import the server.
type submitReply struct {
	JobID  string          `json:"job_id"`
	Status string          `json:"status"`
	Cached bool            `json:"cached"`
	Result json.RawMessage `json:"result"`
}

type jobReply struct {
	JobID  string          `json:"job_id"`
	Status string          `json:"status"`
	Error  string          `json:"error"`
	Frac   float64         `json:"frac"`
	Result json.RawMessage `json:"result"`
}

type streamLine struct {
	Frac  float64 `json:"frac"`
	Done  bool    `json:"done"`
	Error string  `json:"error"`
}

type sweepReply struct {
	SweepID string `json:"sweep_id"`
	Status  string `json:"status"`
}

func terminal(status string) bool {
	return status == "done" || status == "failed" || status == "cancelled"
}

// Run executes one load run and reports. It returns early only on
// configuration errors or when ctx is cancelled before any work.
func Run(ctx context.Context, cfg Config) (Report, error) {
	if cfg.BaseURL == "" {
		return Report{}, fmt.Errorf("loadgen: BaseURL required")
	}
	if cfg.Clients <= 0 {
		return Report{}, fmt.Errorf("loadgen: Clients must be positive, got %d", cfg.Clients)
	}
	if (cfg.Requests <= 0) == (cfg.Duration <= 0) {
		return Report{}, fmt.Errorf("loadgen: exactly one of Requests or Duration must bound the run")
	}
	if cfg.SharedSpecs <= 0 {
		cfg.SharedSpecs = 8
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        cfg.Clients + 8,
			MaxIdleConnsPerHost: cfg.Clients + 8,
		}}
	}
	if cfg.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}

	g := &generator{cfg: cfg}
	col := &collector{specs: map[string]bool{}}
	w := &worker{cfg: cfg, client: client, col: col, gen: g}

	if cfg.Warm {
		if err := w.warm(ctx); err != nil {
			return Report{}, fmt.Errorf("loadgen: warm-up: %w", err)
		}
	}

	var issued atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(id)*7919))
			for ctx.Err() == nil {
				if cfg.Requests > 0 && issued.Add(1) > int64(cfg.Requests) {
					return
				}
				w.one(ctx, rng)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	col.mu.Lock()
	defer col.mu.Unlock()
	rep := Report{
		Elapsed:     elapsed,
		Submitted:   len(col.cached) + len(col.uncached) + len(col.sweeps),
		Cached:      summarize(col.cached),
		Uncached:    summarize(col.uncached),
		Sweeps:      summarize(col.sweeps),
		Coalesced:   int(w.coalesced.Load()),
		Rejected:    int(w.rejected.Load()),
		Cancelled:   int(w.cancelled.Load()),
		Streamed:    int(w.streamed.Load()),
		UniqueSpecs: len(col.specs),
		Violations:  col.violations,
	}
	if elapsed > 0 {
		rep.ReqPerSec = float64(rep.Submitted) / elapsed.Seconds()
	}
	return rep, nil
}

// generator builds request bodies. Unique specs advance an atomic seed
// counter so no two collide; shared specs cycle a small fixed pool.
type generator struct {
	cfg  Config
	next atomic.Int64
}

// specBody returns a single-job spec. Every spec is tiny (12 nodes,
// 200 s of scenario time under the quick preset) so throughput measures
// the service layer, not the simulator.
func (g *generator) specBody(rng *rand.Rand, unique bool) string {
	var seed int64
	if unique {
		seed = 1_000_000 + g.next.Add(1)
	} else {
		seed = 1 + rng.Int63n(int64(g.cfg.SharedSpecs))
	}
	return fmt.Sprintf(`{"preset":"quick","protocol":"Direct","nodes":12,"duration":200,"seeds":[%d]}`, seed)
}

// heavyBody returns a unique spec big enough (~tens of milliseconds of
// simulation) that a cancel issued right after acceptance can land while
// the job is still queued or running.
func (g *generator) heavyBody() string {
	return fmt.Sprintf(`{"preset":"quick","protocol":"SprayAndWait","nodes":40,"duration":5000,"seeds":[%d]}`, 3_000_000+g.next.Add(1))
}

func (g *generator) sweepBody(rng *rand.Rand, unique bool) string {
	var seed int64
	if unique {
		seed = 2_000_000 + g.next.Add(1)
	} else {
		seed = 1 + rng.Int63n(int64(g.cfg.SharedSpecs))
	}
	return fmt.Sprintf(`{"base":{"preset":"quick","protocol":"Direct","nodes":12,"duration":200,"seeds":[%d]},"alpha":[0.2,0.6]}`, seed)
}

// worker issues submissions and follows each accepted job to a terminal
// state — so at most Clients jobs are in flight and the run drains the
// work it creates.
type worker struct {
	cfg    Config
	client *http.Client
	col    *collector
	gen    *generator

	coalesced atomic.Int64
	rejected  atomic.Int64
	cancelled atomic.Int64
	streamed  atomic.Int64
}

// warm submits every shared-pool spec and waits for completion.
func (w *worker) warm(ctx context.Context) error {
	for seed := int64(1); seed <= int64(w.cfg.SharedSpecs); seed++ {
		body := fmt.Sprintf(`{"preset":"quick","protocol":"Direct","nodes":12,"duration":200,"seeds":[%d]}`, seed)
		var sub submitReply
		code, err := w.postJSON(ctx, "/v1/jobs", body, &sub)
		if err != nil {
			return err
		}
		switch {
		case code == http.StatusOK:
			// cached or coalesced; fall through to follow if a job
		case code == http.StatusAccepted:
		default:
			return fmt.Errorf("warm submit: status %d", code)
		}
		if sub.Result == nil && sub.JobID != "" {
			if _, err := w.follow(ctx, sub.JobID); err != nil {
				return err
			}
		}
	}
	return nil
}

// one issues a single submission per the traffic mix and drains it.
func (w *worker) one(ctx context.Context, rng *rand.Rand) {
	unique := rng.Float64() < w.cfg.UniqueFrac
	if rng.Float64() < w.cfg.SweepFrac {
		w.oneSweep(ctx, rng, unique)
		return
	}
	cancelProbe := rng.Float64() < w.cfg.CancelFrac
	body := w.gen.specBody(rng, unique)
	if cancelProbe {
		body = w.gen.heavyBody()
	}
	w.col.spec(body)

	var sub submitReply
	t0 := time.Now()
	code, err := w.postJSON(ctx, "/v1/jobs", body, &sub)
	lat := time.Since(t0)
	switch {
	case err != nil:
		if ctx.Err() == nil {
			w.col.violate("submit error: %v", err)
		}
		return
	case code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable:
		w.rejected.Add(1)
		return
	case code == http.StatusOK && sub.Cached:
		if sub.Result == nil {
			w.col.violate("job %s: cached reply without a result", sub.JobID)
		}
		w.col.mu.Lock()
		w.col.cached = append(w.col.cached, lat)
		w.col.mu.Unlock()
		return
	case code == http.StatusOK || code == http.StatusAccepted:
		if code == http.StatusOK {
			w.coalesced.Add(1) // attached to an identical in-flight job
		}
		w.col.mu.Lock()
		w.col.uncached = append(w.col.uncached, lat)
		w.col.mu.Unlock()
	default:
		w.col.violate("submit: unexpected status %d", code)
		return
	}
	if sub.Status == "done" && sub.Result == nil {
		w.col.violate("job %s: submit says done but carries no result", sub.JobID)
	}
	if terminal(sub.Status) {
		return
	}

	switch {
	case cancelProbe:
		w.cancel(ctx, sub.JobID)
	case rng.Float64() < w.cfg.StreamFrac:
		w.stream(ctx, sub.JobID)
	default:
		w.follow(ctx, sub.JobID)
	}
}

func (w *worker) oneSweep(ctx context.Context, rng *rand.Rand, unique bool) {
	body := w.gen.sweepBody(rng, unique)
	var sw sweepReply
	t0 := time.Now()
	code, err := w.postJSON(ctx, "/v1/sweeps", body, &sw)
	lat := time.Since(t0)
	switch {
	case err != nil:
		if ctx.Err() == nil {
			w.col.violate("sweep submit error: %v", err)
		}
		return
	case code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable:
		w.rejected.Add(1)
		return
	case code != http.StatusOK && code != http.StatusAccepted:
		w.col.violate("sweep submit: unexpected status %d", code)
		return
	}
	w.col.mu.Lock()
	w.col.sweeps = append(w.col.sweeps, lat)
	w.col.mu.Unlock()
	if code == http.StatusOK { // fully satisfied at submit
		return
	}
	// Poll the aggregate (limit=0: no cell table) until terminal.
	for ctx.Err() == nil {
		var jr sweepReply
		code, err := w.getJSON(ctx, "/v1/sweeps/"+sw.SweepID+"?limit=0", &jr)
		if err != nil || code != http.StatusOK {
			return
		}
		if terminal(jr.Status) {
			return
		}
		sleep(ctx, 2*time.Millisecond)
	}
}

// follow polls a job to a terminal state, checking the status contract
// at every observation: done ⇒ result present, failed ⇒ error present.
func (w *worker) follow(ctx context.Context, jobID string) (string, error) {
	lastFrac := -1.0
	for {
		var jr jobReply
		code, err := w.getJSON(ctx, "/v1/jobs/"+jobID, &jr)
		if err != nil {
			if ctx.Err() != nil {
				return "", ctx.Err()
			}
			return "", err
		}
		if code != http.StatusOK {
			w.col.violate("job %s: status poll returned %d", jobID, code)
			return "", fmt.Errorf("status %d", code)
		}
		if jr.Frac < lastFrac {
			w.col.violate("job %s: frac went backwards (%g after %g)", jobID, jr.Frac, lastFrac)
		}
		lastFrac = jr.Frac
		switch {
		case jr.Status == "done" && jr.Result == nil:
			w.col.violate("job %s: torn status — done with no result", jobID)
			return jr.Status, nil
		case jr.Status == "failed" && jr.Error == "":
			w.col.violate("job %s: torn status — failed with no error", jobID)
			return jr.Status, nil
		case terminal(jr.Status):
			return jr.Status, nil
		}
		if err := sleep(ctx, 2*time.Millisecond); err != nil {
			return "", err
		}
	}
}

// stream follows a job's NDJSON progress to its terminal line, checking
// fraction monotonicity along the way.
func (w *worker) stream(ctx context.Context, jobID string) {
	req, err := http.NewRequestWithContext(ctx, "GET", w.cfg.BaseURL+"/v1/jobs/"+jobID+"/stream", nil)
	if err != nil {
		return
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		w.col.violate("job %s: stream returned %d", jobID, resp.StatusCode)
		return
	}
	w.streamed.Add(1)
	lastFrac := -1.0
	sawFinal := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line streamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			w.col.violate("job %s: bad NDJSON line %q", jobID, sc.Text())
			return
		}
		if line.Frac < lastFrac {
			w.col.violate("job %s: stream frac went backwards (%g after %g)", jobID, line.Frac, lastFrac)
		}
		lastFrac = line.Frac
		if line.Done {
			sawFinal = true
		}
	}
	if !sawFinal && ctx.Err() == nil {
		w.col.violate("job %s: stream ended without a terminal line", jobID)
	}
}

// cancel cancels an accepted job and drains it to a terminal state (the
// job may legitimately win the race and finish done).
func (w *worker) cancel(ctx context.Context, jobID string) {
	req, err := http.NewRequestWithContext(ctx, "DELETE", w.cfg.BaseURL+"/v1/jobs/"+jobID, nil)
	if err != nil {
		return
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusAccepted {
		w.cancelled.Add(1)
	}
	w.follow(ctx, jobID)
}

func (w *worker) postJSON(ctx context.Context, path, body string, out any) (int, error) {
	req, err := http.NewRequestWithContext(ctx, "POST", w.cfg.BaseURL+path, bytes.NewReader([]byte(body)))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	return w.do(req, out)
}

func (w *worker) getJSON(ctx context.Context, path string, out any) (int, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", w.cfg.BaseURL+path, nil)
	if err != nil {
		return 0, err
	}
	return w.do(req, out)
}

func (w *worker) do(req *http.Request, out any) (int, error) {
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if out != nil && len(data) > 0 && resp.StatusCode < 500 {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, fmt.Errorf("decode %s: %w", req.URL.Path, err)
		}
	}
	return resp.StatusCode, nil
}

func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func summarize(lats []time.Duration) LatencyStats {
	if len(lats) == 0 {
		return LatencyStats{}
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, l := range sorted {
		sum += l
	}
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	return LatencyStats{
		Count: len(sorted),
		Mean:  sum / time.Duration(len(sorted)),
		P50:   pct(0.50),
		P99:   pct(0.99),
		Max:   sorted[len(sorted)-1],
	}
}

// String renders the report the way cmd/dtnload prints it.
func (r Report) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "elapsed %.2fs, %d submissions, %.1f req/s\n", r.Elapsed.Seconds(), r.Submitted, r.ReqPerSec)
	row := func(name string, s LatencyStats) {
		if s.Count == 0 {
			fmt.Fprintf(&b, "  %-9s      —\n", name)
			return
		}
		fmt.Fprintf(&b, "  %-9s %6d  mean %8s  p50 %8s  p99 %8s  max %8s\n",
			name, s.Count, s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
			s.P99.Round(time.Microsecond), s.Max.Round(time.Microsecond))
	}
	row("cached", r.Cached)
	row("uncached", r.Uncached)
	row("sweeps", r.Sweeps)
	fmt.Fprintf(&b, "  coalesced %d, rejected %d, cancelled %d, streamed %d, unique specs %d\n",
		r.Coalesced, r.Rejected, r.Cancelled, r.Streamed, r.UniqueSpecs)
	if len(r.Violations) == 0 {
		fmt.Fprintf(&b, "  violations: none\n")
	} else {
		fmt.Fprintf(&b, "  VIOLATIONS (%d):\n", len(r.Violations))
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "    %s\n", v)
		}
	}
	return b.String()
}
