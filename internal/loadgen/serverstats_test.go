package loadgen

import (
	"context"
	"strings"
	"testing"

	"repro/internal/server"
)

const sampleExposition = `# HELP dtnd_http_request_duration_seconds HTTP request duration by response class.
# TYPE dtnd_http_request_duration_seconds histogram
dtnd_http_request_duration_seconds_bucket{class="2xx",le="0.001"} 5
dtnd_http_request_duration_seconds_bucket{class="2xx",le="0.01"} 8
dtnd_http_request_duration_seconds_bucket{class="2xx",le="+Inf"} 10
dtnd_http_request_duration_seconds_sum{class="2xx"} 0.25
dtnd_http_request_duration_seconds_count{class="2xx"} 10
dtnd_http_request_duration_seconds_bucket{class="4xx",le="0.001"} 0
dtnd_http_request_duration_seconds_bucket{class="4xx",le="0.01"} 0
dtnd_http_request_duration_seconds_bucket{class="4xx",le="+Inf"} 0
dtnd_http_request_duration_seconds_sum{class="4xx"} 0
dtnd_http_request_duration_seconds_count{class="4xx"} 0
# HELP dtnd_queue_wait_seconds Time jobs waited for a permit.
# TYPE dtnd_queue_wait_seconds histogram
dtnd_queue_wait_seconds_bucket{le="0.001"} 3
dtnd_queue_wait_seconds_bucket{le="+Inf"} 4
dtnd_queue_wait_seconds_sum 0.1
dtnd_queue_wait_seconds_count 4
`

// TestParseServerLatency pins the scrape parser: cumulative buckets come
// back per-bucket, zero-count classes are dropped, and the unlabeled
// queue-wait family parses alongside the labeled one.
func TestParseServerLatency(t *testing.T) {
	sl, err := ParseServerLatency(sampleExposition)
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := sl.Classes["2xx"]
	if !ok {
		t.Fatalf("2xx class missing: %+v", sl.Classes)
	}
	if _, ok := sl.Classes["4xx"]; ok {
		t.Error("zero-count 4xx class should be omitted")
	}
	if snap.Count != 10 || snap.Sum != 0.25 {
		t.Fatalf("2xx header: count=%d sum=%g", snap.Count, snap.Sum)
	}
	if want := []int64{5, 3, 2}; len(snap.Counts) != 3 ||
		snap.Counts[0] != want[0] || snap.Counts[1] != want[1] || snap.Counts[2] != want[2] {
		t.Fatalf("per-bucket counts %v, want %v", snap.Counts, want)
	}
	if p50 := snap.Quantile(0.5); p50 <= 0 || p50 > 0.001 {
		t.Errorf("p50 = %g, want within the first bucket", p50)
	}
	if sl.QueueWait.Count != 4 || len(sl.QueueWait.Counts) != 2 {
		t.Fatalf("queue wait: %+v", sl.QueueWait)
	}
}

// TestParseServerLatencyRejectsTornData: a scrape whose bucket series
// does not reconcile (torn write, truncated body) errors instead of
// returning silently-wrong percentiles.
func TestParseServerLatencyRejectsTornData(t *testing.T) {
	for name, body := range map[string]string{
		"missing +Inf": strings.Replace(sampleExposition,
			`dtnd_queue_wait_seconds_bucket{le="+Inf"} 4`+"\n", "", 1),
		"non-cumulative": strings.Replace(sampleExposition,
			`dtnd_queue_wait_seconds_bucket{le="0.001"} 3`,
			`dtnd_queue_wait_seconds_bucket{le="0.001"} 9`, 1),
		"count mismatch": strings.Replace(sampleExposition,
			"dtnd_queue_wait_seconds_count 4", "dtnd_queue_wait_seconds_count 7", 1),
	} {
		if _, err := ParseServerLatency(body); err == nil {
			t.Errorf("%s: parser accepted torn exposition", name)
		}
	}
}

// TestServerLatencyCrossCheck runs a small load against a live in-process
// daemon and fetches the server-side view: the daemon must have booked at
// least as many 2xx requests as the harness's successful submissions
// (status polls and streams add more), and the queue-wait histogram must
// have seen every simulated job.
func TestServerLatencyCrossCheck(t *testing.T) {
	srv, ts := newDaemon(t, server.Config{})
	rep, err := Run(context.Background(), Config{
		BaseURL:     ts.URL,
		Clients:     8,
		Requests:    60,
		UniqueFrac:  0.2,
		SharedSpecs: 4,
		Seed:        11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) > 0 {
		t.Fatalf("violations:\n%s", strings.Join(rep.Violations, "\n"))
	}

	sl, err := FetchServerLatency(context.Background(), nil, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", sl.String())
	snap, ok := sl.Classes["2xx"]
	if !ok {
		t.Fatalf("no 2xx histogram after a load run: %+v", sl.Classes)
	}
	if snap.Count < int64(rep.Submitted) {
		t.Errorf("server booked %d 2xx requests, harness submitted %d", snap.Count, rep.Submitted)
	}
	if snap.Quantile(0.99) < snap.Quantile(0.50) {
		t.Errorf("p99 %g < p50 %g", snap.Quantile(0.99), snap.Quantile(0.50))
	}
	if sl.QueueWait.Count != srv.Simulated() {
		// Every job that simulated acquired exactly one permit. Jobs
		// cancelled while queued never observe a wait, and this mix has
		// no cancels.
		t.Errorf("queue wait saw %d jobs, server simulated %d", sl.QueueWait.Count, srv.Simulated())
	}
}
