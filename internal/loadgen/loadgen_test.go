package loadgen

// The load smoke test: run the harness in-process against an
// httptest-backed dtnd and assert the service contract held under
// concurrency — no torn statuses, no duplicate simulations, monotone
// progress — and that /metrics reconciles with what the run did. CI runs
// this package under -race, so the harness doubles as the data-race
// probe for the whole submit/coalesce/stream/cancel surface.

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

func newDaemon(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	if cfg.CacheDir == "" {
		cfg.CacheDir = t.TempDir()
	}
	if cfg.MaxConcurrentJobs == 0 {
		cfg.MaxConcurrentJobs = 4
	}
	if cfg.MaxQueuedJobs == 0 {
		cfg.MaxQueuedJobs = 256
	}
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, ts
}

func scrape(t *testing.T, baseURL string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]float64{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, _ := strings.Cut(line, " ")
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("bad sample %q: %v", line, err)
		}
		out[name] = f
	}
	return out
}

// TestLoadSmokeMixed drives the full traffic mix — cache hits, fresh
// simulations, coalescing, sweeps, streams, cancellations — and requires
// a violation-free run.
func TestLoadSmokeMixed(t *testing.T) {
	_, ts := newDaemon(t, server.Config{})
	rep, err := Run(context.Background(), Config{
		BaseURL:     ts.URL,
		Clients:     32,
		Requests:    300,
		UniqueFrac:  0.30,
		SweepFrac:   0.10,
		StreamFrac:  0.40,
		CancelFrac:  0.20,
		SharedSpecs: 6,
		Seed:        42,
		Warm:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep.String())
	if len(rep.Violations) > 0 {
		t.Fatalf("protocol violations under load:\n%s", strings.Join(rep.Violations, "\n"))
	}
	if rep.Submitted < 250 { // rejections are allowed, silence is not
		t.Fatalf("only %d submissions went through: %+v", rep.Submitted, rep)
	}
	if rep.Cached.Count == 0 || rep.Uncached.Count == 0 || rep.Sweeps.Count == 0 {
		t.Fatalf("traffic mix did not exercise all classes: %+v", rep)
	}
	if rep.Streamed == 0 || rep.Cancelled == 0 {
		t.Fatalf("stream/cancel paths never ran: streamed=%d cancelled=%d", rep.Streamed, rep.Cancelled)
	}
}

// TestLoadSmokeNoDuplicateSimulation: with cancellation off, every
// distinct content address simulates at most once no matter how many
// concurrent clients race to submit it — coalescing and both cache
// layers (disk + terminal-window snapshot) must close every gap.
func TestLoadSmokeNoDuplicateSimulation(t *testing.T) {
	s, ts := newDaemon(t, server.Config{})
	rep, err := Run(context.Background(), Config{
		BaseURL:     ts.URL,
		Clients:     24,
		Requests:    240,
		UniqueFrac:  0.10,
		SharedSpecs: 4,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep.String())
	if len(rep.Violations) > 0 {
		t.Fatalf("protocol violations:\n%s", strings.Join(rep.Violations, "\n"))
	}
	if got := s.Simulated(); got > int64(rep.UniqueSpecs) {
		t.Fatalf("duplicate simulations: %d ran for %d distinct specs", got, rep.UniqueSpecs)
	}

	// /metrics must reconcile with the run: every submission classified
	// exactly once, simulations matching the server's own count, and the
	// queue fully drained (the deferred cleanup may trail the last
	// response by a moment).
	deadline := time.Now().Add(10 * time.Second)
	var m map[string]float64
	for {
		m = scrape(t, ts.URL)
		if m["dtnd_queue_depth"] == 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if m["dtnd_queue_depth"] != 0 {
		t.Fatalf("queue never drained: %g", m["dtnd_queue_depth"])
	}
	if m["dtnd_submissions_total"] != m["dtnd_submit_cache_hits_total"]+m["dtnd_submit_cache_misses_total"] {
		t.Fatalf("classification does not reconcile: subs=%g hits=%g misses=%g",
			m["dtnd_submissions_total"], m["dtnd_submit_cache_hits_total"], m["dtnd_submit_cache_misses_total"])
	}
	if m["dtnd_submissions_total"] != float64(rep.Submitted) {
		t.Fatalf("server saw %g submissions, harness issued %d", m["dtnd_submissions_total"], rep.Submitted)
	}
	if m["dtnd_jobs_simulated_total"] != float64(s.Simulated()) {
		t.Fatalf("metrics simulated=%g, server says %d", m["dtnd_jobs_simulated_total"], s.Simulated())
	}
}

// TestRunConfigValidation pins the config contract.
func TestRunConfigValidation(t *testing.T) {
	ctx := context.Background()
	for name, cfg := range map[string]Config{
		"no URL":       {Clients: 1, Requests: 1},
		"no clients":   {BaseURL: "http://x", Requests: 1},
		"no bound":     {BaseURL: "http://x", Clients: 1},
		"double bound": {BaseURL: "http://x", Clients: 1, Requests: 1, Duration: time.Second},
	} {
		if _, err := Run(ctx, cfg); err == nil {
			t.Errorf("%s: Run accepted a bad config", name)
		}
	}
}

// TestLoadSmokeCoordinator drives the same mixed load through a
// sweep-fabric coordinator backed by two in-process workers: the service
// contract must hold across the dispatch hop (no torn statuses, no
// duplicate simulations fleet-wide), the coordinator itself must never
// simulate, and the fleet registry must account for every dispatch.
func TestLoadSmokeCoordinator(t *testing.T) {
	w1, ts1 := newDaemon(t, server.Config{})
	w2, ts2 := newDaemon(t, server.Config{})
	coord, ts := newDaemon(t, server.Config{
		Workers:   []string{ts1.URL, ts2.URL},
		Heartbeat: 100 * time.Millisecond,
	})
	t.Cleanup(coord.Close) // LIFO: dispatcher stops before the listeners close

	rep, err := Run(context.Background(), Config{
		BaseURL:     ts.URL,
		Clients:     24,
		Requests:    200,
		UniqueFrac:  0.15,
		SweepFrac:   0.10,
		StreamFrac:  0.30,
		SharedSpecs: 5,
		Seed:        11,
		Warm:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep.String())
	if len(rep.Violations) > 0 {
		t.Fatalf("protocol violations through the fabric:\n%s", strings.Join(rep.Violations, "\n"))
	}
	if rep.Submitted < 150 {
		t.Fatalf("only %d submissions went through: %+v", rep.Submitted, rep)
	}

	// Zero duplicates fleet-wide, and the coordinator never simulates.
	// UniqueSpecs counts submitted specs only, so each 2-cell sweep may
	// add up to 2 more distinct content addresses to the ceiling.
	if coord.Simulated() != 0 {
		t.Errorf("coordinator simulated %d jobs itself", coord.Simulated())
	}
	ceiling := int64(rep.UniqueSpecs) + 2*int64(rep.Sweeps.Count)
	if got := w1.Simulated() + w2.Simulated(); got > ceiling {
		t.Fatalf("duplicate simulations across the fleet: %d ran for at most %d distinct cells",
			got, ceiling)
	}

	fs, err := FetchFleet(context.Background(), nil, ts.URL)
	if err != nil || fs == nil {
		t.Fatalf("FetchFleet: %v (fs=%v)", err, fs)
	}
	t.Logf("\n%s", fs.String())
	if len(fs.Workers) != 2 {
		t.Fatalf("fleet registry has %d workers, want 2", len(fs.Workers))
	}
	var dispatched, completed int64
	for _, w := range fs.Workers {
		if !w.Healthy {
			t.Errorf("worker %s unhealthy after a clean run", w.URL)
		}
		dispatched += w.Dispatched
		completed += w.Completed
	}
	if dispatched == 0 || completed != dispatched {
		t.Errorf("dispatch accounting: dispatched=%d completed=%d", dispatched, completed)
	}

	// A plain worker is not a coordinator: FetchFleet skips it.
	if fs, err := FetchFleet(context.Background(), nil, ts1.URL); err != nil || fs != nil {
		t.Errorf("FetchFleet against a worker: fs=%v err=%v", fs, err)
	}
}
