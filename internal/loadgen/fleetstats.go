package loadgen

// Fleet cross-check: when the daemon under load is a sweep-fabric
// coordinator, the harness scrapes its worker registry (/v1/workers) and
// the fleet counter families from /metrics, so a load report shows where
// the dispatched work actually went — per-worker dispatch/completion
// counts, steals and failures, plus fleet-wide retry and cache-serve
// attribution. Like the latency cross-check, everything speaks the
// public wire surface.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// FleetWorker is one row of the coordinator's worker registry.
type FleetWorker struct {
	URL        string `json:"url"`
	Healthy    bool   `json:"healthy"`
	Dispatched int64  `json:"dispatched"`
	Completed  int64  `json:"completed"`
	Failures   int64  `json:"failures"`
	Steals     int64  `json:"steals"`
}

// FleetStats is the coordinator-side dispatch view after a load run.
type FleetStats struct {
	Workers    []FleetWorker
	QueueDepth int

	// Fleet-wide counters from /metrics.
	Retries         float64 // units requeued after an infrastructure failure
	CachedDispatch  float64 // jobs served from the tiered store at dispatch
	RemoteCacheHits float64 // local reads served by peer pull-through
}

// FetchFleet scrapes baseURL's fleet view. A daemon that is not a
// coordinator (/v1/workers answers 404) returns (nil, nil) — callers
// skip the block. A nil client uses http.DefaultClient.
func FetchFleet(ctx context.Context, client *http.Client, baseURL string) (*FleetStats, error) {
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, "GET", baseURL+"/v1/workers", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, nil // not a coordinator
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: GET /v1/workers: status %d", resp.StatusCode)
	}
	if err != nil {
		return nil, err
	}
	var reg struct {
		Workers    []FleetWorker `json:"workers"`
		QueueDepth int           `json:"queue_depth"`
	}
	if err := json.Unmarshal(body, &reg); err != nil {
		return nil, fmt.Errorf("loadgen: decode /v1/workers: %w", err)
	}
	fs := &FleetStats{Workers: reg.Workers, QueueDepth: reg.QueueDepth}

	req, err = http.NewRequestWithContext(ctx, "GET", baseURL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	mresp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: GET /metrics: status %d", mresp.StatusCode)
	}
	mbody, err := io.ReadAll(mresp.Body)
	if err != nil {
		return nil, err
	}
	scalars := parseScalars(string(mbody))
	fs.Retries = scalars["dtnd_fleet_retries_total"]
	fs.CachedDispatch = scalars["dtnd_fleet_cached_total"]
	fs.RemoteCacheHits = scalars["dtnd_cache_remote_hits_total"]
	return fs, nil
}

// parseScalars collects the unlabeled scalar samples of a Prometheus
// text body (labeled samples keep their full key and are ignored here).
func parseScalars(body string) map[string]float64 {
	out := map[string]float64{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok || strings.ContainsRune(name, '{') {
			continue
		}
		if v, err := strconv.ParseFloat(val, 64); err == nil {
			out[name] = v
		}
	}
	return out
}

// String renders the fleet view the way cmd/dtnload prints it.
func (fs *FleetStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet (coordinator dispatch):\n")
	rows := append([]FleetWorker(nil), fs.Workers...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].URL < rows[j].URL })
	for _, w := range rows {
		state := "up"
		if !w.Healthy {
			state = "down"
		}
		fmt.Fprintf(&b, "  %-28s %-4s dispatched %5d  completed %5d  failures %3d  steals %3d\n",
			w.URL, state, w.Dispatched, w.Completed, w.Failures, w.Steals)
	}
	fmt.Fprintf(&b, "  queue depth %d, retries %.0f, dispatch cache-serves %.0f, remote cache hits %.0f\n",
		fs.QueueDepth, fs.Retries, fs.CachedDispatch, fs.RemoteCacheHits)
	return b.String()
}
