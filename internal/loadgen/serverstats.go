package loadgen

// Server-side latency cross-check: after a load run, the harness scrapes
// the daemon's /metrics histograms — request duration by response class
// and job queue wait — and reports their percentiles next to its own
// client-side measurements. Client p99 >> server p99 means time is going
// to the network or the client; server p99 tracking client p99 means the
// daemon itself is the bottleneck. The parser speaks the Prometheus text
// exposition format over the public wire surface, like everything else
// in this package.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// ServerLatency is the server-side latency view scraped from /metrics.
type ServerLatency struct {
	// Classes maps response class ("2xx", "4xx", ...) to the request
	// duration histogram of that class. Classes with zero observations
	// are omitted.
	Classes map[string]obs.HistogramSnapshot
	// QueueWait is the accepted-to-permit wait histogram.
	QueueWait obs.HistogramSnapshot
}

// FetchServerLatency scrapes baseURL's /metrics and extracts the latency
// histogram families. A nil client uses http.DefaultClient.
func FetchServerLatency(ctx context.Context, client *http.Client, baseURL string) (*ServerLatency, error) {
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, "GET", baseURL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: GET /metrics: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return ParseServerLatency(string(body))
}

// ParseServerLatency extracts the daemon's latency histograms from a
// Prometheus text exposition body.
func ParseServerLatency(body string) (*ServerLatency, error) {
	classes, err := parseHistogramFamily(body, "dtnd_http_request_duration_seconds", "class")
	if err != nil {
		return nil, err
	}
	wait, err := parseHistogramFamily(body, "dtnd_queue_wait_seconds", "")
	if err != nil {
		return nil, err
	}
	sl := &ServerLatency{Classes: map[string]obs.HistogramSnapshot{}}
	for class, snap := range classes {
		if snap.Count > 0 {
			sl.Classes[class] = snap
		}
	}
	sl.QueueWait = wait[""]
	return sl, nil
}

// parseHistogramFamily parses one histogram family's _bucket/_sum/_count
// samples into per-series snapshots keyed by the value of labelKey (or ""
// for an unlabeled family). Bucket counts arrive cumulative and leave
// per-bucket, matching obs.HistogramSnapshot.
func parseHistogramFamily(body, name, labelKey string) (map[string]obs.HistogramSnapshot, error) {
	type series struct {
		bounds []float64
		cums   []int64
		sum    float64
		count  int64
	}
	bySeries := map[string]*series{}
	get := func(key string) *series {
		s := bySeries[key]
		if s == nil {
			s = &series{}
			bySeries[key] = s
		}
		return s
	}
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") || !strings.HasPrefix(line, name) {
			continue
		}
		key, val, ok := strings.Cut(line, " ")
		if !ok {
			return nil, fmt.Errorf("loadgen: malformed metrics line %q", line)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("loadgen: bad value in %q: %w", line, err)
		}
		base, labels := splitSampleKey(key)
		seriesKey := labels[labelKey]
		switch base {
		case name + "_bucket":
			s := get(seriesKey)
			le := labels["le"]
			if le == "+Inf" {
				s.cums = append(s.cums, int64(v))
				continue
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return nil, fmt.Errorf("loadgen: bad le in %q: %w", line, err)
			}
			s.bounds = append(s.bounds, bound)
			s.cums = append(s.cums, int64(v))
		case name + "_sum":
			get(seriesKey).sum = v
		case name + "_count":
			get(seriesKey).count = int64(v)
		}
	}
	out := map[string]obs.HistogramSnapshot{}
	for key, s := range bySeries {
		if len(s.cums) != len(s.bounds)+1 {
			return nil, fmt.Errorf("loadgen: %s{%s}: %d buckets for %d bounds (missing +Inf?)",
				name, key, len(s.cums), len(s.bounds))
		}
		if !sort.Float64sAreSorted(s.bounds) {
			return nil, fmt.Errorf("loadgen: %s{%s}: bucket bounds out of order", name, key)
		}
		counts := make([]int64, len(s.cums))
		prev := int64(0)
		for i, c := range s.cums {
			if c < prev {
				return nil, fmt.Errorf("loadgen: %s{%s}: bucket counts not cumulative", name, key)
			}
			counts[i] = c - prev
			prev = c
		}
		if prev != s.count {
			return nil, fmt.Errorf("loadgen: %s{%s}: +Inf bucket %d != count %d", name, key, prev, s.count)
		}
		out[key] = obs.HistogramSnapshot{Bounds: s.bounds, Counts: counts, Sum: s.sum, Count: s.count}
	}
	return out, nil
}

// splitSampleKey splits `name{a="x",b="y"}` into the bare name and its
// label map; a label-less key returns an empty map.
func splitSampleKey(key string) (string, map[string]string) {
	labels := map[string]string{}
	i := strings.IndexByte(key, '{')
	if i < 0 || !strings.HasSuffix(key, "}") {
		return key, labels
	}
	for _, part := range strings.Split(key[i+1:len(key)-1], ",") {
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			continue
		}
		if len(v) >= 2 && v[0] == '"' {
			if uq, err := strconv.Unquote(v); err == nil {
				v = uq
			}
		}
		labels[k] = v
	}
	return key[:i], labels
}

// String renders the server-side view the way cmd/dtnload prints it.
func (sl *ServerLatency) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "server-side (/metrics histograms):\n")
	var classes []string
	for c := range sl.Classes {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		snap := sl.Classes[c]
		fmt.Fprintf(&b, "  %-9s %6d  p50 %8.3fms  p99 %8.3fms\n",
			c, snap.Count, snap.Quantile(0.50)*1000, snap.Quantile(0.99)*1000)
	}
	if sl.QueueWait.Count > 0 {
		fmt.Fprintf(&b, "  %-9s %6d  p50 %8.3fms  p99 %8.3fms\n",
			"queue", sl.QueueWait.Count, sl.QueueWait.Quantile(0.50)*1000, sl.QueueWait.Quantile(0.99)*1000)
	}
	return b.String()
}
