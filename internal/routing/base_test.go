package routing

import (
	"testing"

	"repro/internal/network"
)

// TestSendableFilters pins each filter of Base.Sendable.
func TestSendableFilters(t *testing.T) {
	h := newHarness(t, 4, func(int) network.Router { return NewDirect() })
	m := h.send(0, 3, 100) // TTL 100
	r0 := h.w.Node(0).Router.(*Direct)
	c := h.w.Node(0).Copy(m.ID)
	peer := h.w.Node(1)

	if !r0.Sendable(h.runner.Now(), c, peer) {
		t.Fatal("fresh copy should be sendable")
	}
	// Expired message.
	if r0.Sendable(h.runner.Now()+1000, c, peer) {
		t.Error("expired message still sendable")
	}
	// Known delivered.
	h.w.Node(0).LearnDelivered(m.ID)
	if r0.Sendable(h.runner.Now(), c, peer) {
		t.Error("known-delivered message still sendable")
	}
}

func TestSendablePeerHoldsCopy(t *testing.T) {
	h := newHarness(t, 3, func(int) network.Router { return NewEpidemic() })
	m := h.send(0, 2, 1e6)
	h.meet(0, 1, 3) // peer 1 now holds a copy
	r0 := h.w.Node(0).Router.(*Epidemic)
	c := h.w.Node(0).Copy(m.ID)
	if r0.Sendable(h.runner.Now(), c, h.w.Node(1)) {
		t.Error("copy held by peer still sendable")
	}
}

func TestCandidatesExcludesDirect(t *testing.T) {
	h := newHarness(t, 3, func(int) network.Router { return NewEpidemic() })
	mDirect := h.send(0, 1, 1e6) // destined to the peer we'll ask about
	mRelay := h.send(0, 2, 1e6)  // destined elsewhere
	r0 := h.w.Node(0).Router.(*Epidemic)
	peer := h.w.Node(1)
	cands := r0.Candidates(0, peer)
	if len(cands) != 1 || cands[0].M.ID != mRelay.ID {
		t.Fatalf("candidates = %v", cands)
	}
	if p := r0.DeliverDirect(0, peer); p == nil || p.Msg.ID != mDirect.ID {
		t.Fatalf("DeliverDirect = %+v", p)
	}
}

func TestPurgeKnownDelivered(t *testing.T) {
	h := newHarness(t, 3, func(int) network.Router { return NewEpidemic() })
	m1 := h.send(0, 1, 1e6)
	m2 := h.send(0, 2, 1e6)
	n0 := h.w.Node(0)
	n0.LearnDelivered(m1.ID)
	r0 := n0.Router.(*Epidemic)
	r0.PurgeKnownDelivered()
	if n0.HasCopy(m1.ID) {
		t.Error("known-delivered copy survived the purge")
	}
	if !n0.HasCopy(m2.ID) {
		t.Error("live copy was purged")
	}
}

// TestNoReturnClearsOnContactDown: the guard lasts only while the contact
// with the origin peer persists.
func TestNoReturnClearsOnContactDown(t *testing.T) {
	h := newHarness(t, 2, func(int) network.Router { return NewFirstContact() })
	m := h.send(0, 1, 1e6)
	_ = m
	h.meet(0, 1, 5) // delivers directly; also sets guards along the way
	r1 := h.w.Node(1).Router.(*FirstContact)
	// After the contact ends, no guard may linger.
	for id := range r1.receivedFrom {
		t.Errorf("guard for message %d lingers after contact down", id)
	}
}

// TestForwardPlanHelpers pins the plan constructors' invariants.
func TestForwardPlanHelpers(t *testing.T) {
	h := newHarness(t, 2, func(int) network.Router { return NewDirect() })
	m := h.send(0, 1, 1e6)
	c := h.w.Node(0).Copy(m.ID)
	c.Replicas = 6

	if p := network.Forward(c); p.Give != 6 || p.KeepAfter != 0 {
		t.Errorf("Forward = %+v", p)
	}
	if p := network.Replicate(c); p.Give != 1 || p.KeepAfter != network.KeepUnchanged {
		t.Errorf("Replicate = %+v", p)
	}
	if p := network.Split(c, 2); p.Give != 2 || p.KeepAfter != 4 {
		t.Errorf("Split = %+v", p)
	}
	for _, bad := range []int{0, 6, 7} {
		bad := bad
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Split(%d) should panic", bad)
				}
			}()
			network.Split(c, bad)
		}()
	}
}
