package routing

import (
	"math"

	"repro/internal/network"
)

// Prophet implements Lindgren et al.'s probabilistic routing: delivery
// predictabilities P(i,j) grow on contact, age exponentially and propagate
// transitively; a message is replicated to encounters with a higher
// predictability for its destination.
type Prophet struct {
	Base
	// PInit, Beta, Gamma are the protocol constants (defaults 0.75, 0.25,
	// 0.98 as in the PRoPHET draft).
	PInit, Beta, Gamma float64
	// AgingUnit is the time quantum of one aging step, in seconds
	// (default 30).
	AgingUnit float64

	p        []float64
	lastAged float64
}

// NewProphet returns a PRoPHET router with the standard constants.
func NewProphet() *Prophet {
	return &Prophet{PInit: 0.75, Beta: 0.25, Gamma: 0.98, AgingUnit: 30}
}

// Init implements network.Router.
func (r *Prophet) Init(self *network.Node, w *network.World) {
	r.Base.Init(self, w)
	r.p = make([]float64, w.N())
}

// age applies exponential decay for the time since the last aging.
func (r *Prophet) age(t float64) {
	if t <= r.lastAged {
		return
	}
	k := (t - r.lastAged) / r.AgingUnit
	f := math.Pow(r.Gamma, k)
	for i := range r.p {
		r.p[i] *= f
	}
	r.lastAged = t
}

// P returns the aged delivery predictability for node k at time t.
func (r *Prophet) P(t float64, k int) float64 {
	r.age(t)
	return r.p[k]
}

// ContactUp implements network.Router: direct update then the transitive
// rule over the peer's table.
func (r *Prophet) ContactUp(t float64, peer *network.Node) {
	r.age(t)
	r.p[peer.ID] += (1 - r.p[peer.ID]) * r.PInit
	if pr, ok := peer.Router.(*Prophet); ok {
		pr.age(t)
		pij := r.p[peer.ID]
		for k, pjk := range pr.p {
			if k == r.Self.ID || k == peer.ID {
				continue
			}
			if v := pij * pjk * r.Beta; v > r.p[k] {
				r.p[k] = v
			}
		}
	}
}

// NextTransfer implements network.Router.
func (r *Prophet) NextTransfer(t float64, peer *network.Node) *network.Plan {
	if p := r.DeliverDirect(t, peer); p != nil {
		return p
	}
	pr, ok := peer.Router.(*Prophet)
	if !ok {
		return nil
	}
	for _, c := range r.Candidates(t, peer) {
		if pr.P(t, c.M.To) > r.P(t, c.M.To) {
			return network.Replicate(c)
		}
	}
	return nil
}
