package routing

import (
	"testing"

	"repro/internal/buffer"
	"repro/internal/community"
	"repro/internal/geo"
	"repro/internal/msg"
	"repro/internal/network"
	"repro/internal/sim"
)

// scriptMover reports positions from a time-indexed function so tests can
// choreograph contacts exactly.
type scriptMover struct {
	t  float64
	at func(t float64) geo.Point
}

func (m *scriptMover) Pos() geo.Point { return m.at(m.t) }
func (m *scriptMover) Step(dt float64) geo.Point {
	m.t += dt
	return m.at(m.t)
}

func fixed(x, y float64) *scriptMover {
	return &scriptMover{at: func(float64) geo.Point { return geo.Point{X: x, Y: y} }}
}

// apart places every node out of range of every other: contacts are then
// created by moveTogether.
func apart(i int) *scriptMover { return fixed(float64(1000*i), 0) }

// harness owns a test world whose contacts are driven by explicit
// position switches.
type harness struct {
	t      *testing.T
	w      *network.World
	runner *sim.Runner
	movers []*switchMover
}

// switchMover holds a mutable position.
type switchMover struct {
	p geo.Point
}

func (m *switchMover) Pos() geo.Point         { return m.p }
func (m *switchMover) Step(float64) geo.Point { return m.p }
func (m *switchMover) moveTo(x, y float64)    { m.p = geo.Point{X: x, Y: y} }

// newHarness builds n nodes, each out of range of the others, using the
// given router constructor. Bandwidth is high (25 KB transfers take 25 ms)
// so a one-second tick completes many transfers.
func newHarness(t *testing.T, n int, router func(i int) network.Router) *harness {
	t.Helper()
	runner := sim.NewRunner(1)
	w := network.New(network.Config{Range: 10, Bandwidth: 1e6}, runner)
	h := &harness{t: t, w: w, runner: runner}
	for i := 0; i < n; i++ {
		mv := &switchMover{p: geo.Point{X: float64(10000 * (i + 1)), Y: 0}}
		h.movers = append(h.movers, mv)
		w.AddNode(mv, buffer.New(0, nil), router(i))
	}
	w.Start()
	return h
}

// meet brings nodes a and b into contact at a private location for dur
// seconds (others stay away), then separates everyone.
func (h *harness) meet(a, b int, dur float64) {
	h.movers[a].moveTo(-500, -500)
	h.movers[b].moveTo(-495, -500)
	h.runner.Run(h.runner.Now() + dur)
	h.scatter()
	h.runner.Run(h.runner.Now() + 2)
}

// gather brings a set of nodes into mutual contact for dur seconds.
func (h *harness) gather(ids []int, dur float64) {
	for k, id := range ids {
		h.movers[id].moveTo(-500+float64(k), -500)
	}
	h.runner.Run(h.runner.Now() + dur)
	h.scatter()
	h.runner.Run(h.runner.Now() + 2)
}

func (h *harness) scatter() {
	for i, mv := range h.movers {
		mv.moveTo(float64(10000*(i+1)), 0)
	}
}

// send creates a message at from destined to to with the given TTL.
func (h *harness) send(from, to int, ttl float64) *msg.Message {
	m := h.w.CreateMessage(h.runner.Now(), from, to, 1000, ttl)
	if m == nil {
		h.t.Fatal("message refused at source")
	}
	return m
}

func (h *harness) replicas(node int, m *msg.Message) int {
	c := h.w.Node(node).Copy(m.ID)
	if c == nil {
		return 0
	}
	return c.Replicas
}

// warmPair records k meetings between a and b spaced gap seconds apart,
// building contact history for estimator-driven protocols.
func (h *harness) warmPair(a, b int, k int, gap float64) {
	for i := 0; i < k; i++ {
		h.meet(a, b, 1)
		h.runner.Run(h.runner.Now() + gap - 3)
	}
}

// registry2x2 builds communities {0,1} and {2,3}.
func registry2x2() *community.Registry {
	return community.New([]int{0, 0, 1, 1})
}
