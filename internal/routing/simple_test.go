package routing

import (
	"testing"

	"repro/internal/network"
)

func TestDirectDeliversOnlyToDestination(t *testing.T) {
	h := newHarness(t, 3, func(int) network.Router { return NewDirect() })
	m := h.send(0, 2, 1e6)
	h.meet(0, 1, 3)
	if h.w.Node(1).HasCopy(m.ID) {
		t.Fatal("Direct handed a copy to a non-destination")
	}
	h.meet(0, 2, 3)
	if !h.w.Metrics.Delivered(m.ID) {
		t.Fatal("Direct failed to deliver on destination contact")
	}
	if s := h.w.Metrics.Summary(); s.Relays != 1 {
		t.Errorf("relays = %d, want 1", s.Relays)
	}
}

func TestEpidemicFloods(t *testing.T) {
	h := newHarness(t, 4, func(int) network.Router { return NewEpidemic() })
	m := h.send(0, 3, 1e6)
	h.meet(0, 1, 3)
	h.meet(1, 2, 3)
	if !h.w.Node(1).HasCopy(m.ID) || !h.w.Node(2).HasCopy(m.ID) {
		t.Fatal("epidemic did not spread along contacts")
	}
	// Source keeps its copy.
	if !h.w.Node(0).HasCopy(m.ID) {
		t.Fatal("epidemic source lost its copy")
	}
	h.meet(2, 3, 3)
	if !h.w.Metrics.Delivered(m.ID) {
		t.Fatal("not delivered")
	}
}

func TestEpidemicNoDuplicateTransfers(t *testing.T) {
	h := newHarness(t, 2, func(int) network.Router { return NewEpidemic() })
	h.send(0, 1, 1e6)
	h.meet(0, 1, 5)
	// One relay only: the delivery. Re-meeting must not resend.
	h.meet(0, 1, 5)
	if s := h.w.Metrics.Summary(); s.Relays != 1 {
		t.Errorf("relays = %d, want 1", s.Relays)
	}
}

func TestFirstContactMovesSingleCopy(t *testing.T) {
	h := newHarness(t, 3, func(int) network.Router { return NewFirstContact() })
	m := h.send(0, 2, 1e6)
	h.meet(0, 1, 3)
	if h.w.Node(0).HasCopy(m.ID) {
		t.Fatal("FirstContact left a copy at the sender")
	}
	if !h.w.Node(1).HasCopy(m.ID) {
		t.Fatal("FirstContact did not move the copy")
	}
	h.meet(1, 2, 3)
	if !h.w.Metrics.Delivered(m.ID) {
		t.Fatal("not delivered")
	}
}

func TestNoReturnGuardWithinContact(t *testing.T) {
	// FirstContact would bounce a message back and forth within one
	// contact without the guard; with it the copy moves exactly once.
	h := newHarness(t, 2, func(int) network.Router { return NewFirstContact() })
	m := h.send(0, 1, 1e6)
	_ = m
	h.meet(0, 1, 10)
	if s := h.w.Metrics.Summary(); s.Relays != 1 {
		t.Errorf("relays = %d, want exactly 1 (delivery)", s.Relays)
	}
}

func TestNoReturnGuardNonDestination(t *testing.T) {
	h := newHarness(t, 3, func(int) network.Router { return NewFirstContact() })
	m := h.send(0, 2, 1e6)
	h.gather([]int{0, 1}, 10)
	// During the long contact, 0 forwards to 1; 1 must not bounce it back
	// to 0 while the same contact persists.
	if s := h.w.Metrics.Summary(); s.Relays != 1 {
		t.Errorf("relays = %d, want 1", s.Relays)
	}
	if !h.w.Node(1).HasCopy(m.ID) {
		t.Error("copy not at node 1")
	}
}
