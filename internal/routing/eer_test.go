package routing

import (
	"testing"

	"repro/internal/network"
)

func eerHarness(t *testing.T, n, lambda int) *harness {
	f := EERFactory(DefaultEERConfig(lambda), n)
	return newHarness(t, n, func(int) network.Router { return f() })
}

func eerOf(h *harness, node int) *EER {
	return h.w.Node(node).Router.(*EER)
}

func TestEERDeliversDirect(t *testing.T) {
	h := eerHarness(t, 2, 10)
	m := h.send(0, 1, 1e6)
	h.meet(0, 1, 3)
	if !h.w.Metrics.Delivered(m.ID) {
		t.Fatal("EER failed direct delivery")
	}
}

func TestEERHistoryAndMISync(t *testing.T) {
	h := eerHarness(t, 3, 10)
	h.meet(0, 1, 3)
	h.meet(0, 1, 3)
	r0, r1 := eerOf(h, 0), eerOf(h, 1)
	if r0.History().IntervalCount(1) != 1 || r1.History().IntervalCount(0) != 1 {
		t.Fatalf("interval counts: %d / %d, want 1 / 1",
			r0.History().IntervalCount(1), r1.History().IntervalCount(0))
	}
	// After sync both MIs know both rows.
	if r0.MI().KnownRows() != 2 || r1.MI().KnownRows() != 2 {
		t.Fatalf("known rows: %d / %d", r0.MI().KnownRows(), r1.MI().KnownRows())
	}
	// Gossip: 1 carries 0's row to 2.
	h.meet(1, 2, 3)
	r2 := eerOf(h, 2)
	if r2.MI().RowUpdated(0) < 0 {
		t.Error("MI row for node 0 did not gossip to node 2 via node 1")
	}
}

// TestEERSplitProportionalToEEV: the peer with the busier contact history
// receives the larger share of the quota (Algorithm 1 line 10).
func TestEERSplitProportionalToEEV(t *testing.T) {
	h := eerHarness(t, 6, 10)
	// Node 1 meets nodes 3,4,5 regularly (high EEV); node 0 meets nobody
	// else. Short gaps keep the meetings inside any α·TTL horizon.
	for k := 0; k < 4; k++ {
		h.meet(1, 3, 1)
		h.meet(1, 4, 1)
		h.meet(1, 5, 1)
	}
	m := h.send(0, 2, 3600) // destination 2 is never met by anyone
	h.meet(0, 1, 3)
	// EEV_0 ≈ prob of meeting 1 only; EEV_1 sums three active peers, so
	// node 1 must hold strictly more replicas than node 0 keeps.
	r0, r1 := h.replicas(0, m), h.replicas(1, m)
	if r0+r1 != 10 {
		t.Fatalf("quota not conserved: %d + %d", r0, r1)
	}
	if r1 <= r0 {
		t.Errorf("split %d/%d: busier node should receive the larger share", r0, r1)
	}
}

// TestEERTTLAwareSplit is the paper's central claim: the EEV horizon is
// α·TTL_k, so the same pair of nodes splits a short-TTL message and a
// long-TTL message differently. Node 1 meets node 3 every ~200 s; right
// after the last meeting its EEV within α·60 ≈ 17 s is 0 (no recorded
// interval fits) but within α·3600 ≈ 1000 s it is ≈ 1. Node 0 has no
// history at all (EEV 0 always).
func TestEERTTLAwareSplit(t *testing.T) {
	shares := func(ttl float64) (int, int) {
		h := eerHarness(t, 4, 10)
		for k := 0; k < 4; k++ {
			h.meet(1, 3, 1)
			if k < 3 {
				h.runner.Run(h.runner.Now() + 195)
			}
		}
		m := h.send(0, 2, ttl)
		h.meet(0, 1, 3)
		return h.replicas(0, m), h.replicas(1, m)
	}
	// Long TTL: EEV_0 = 0, EEV_1 ≈ 1 — floor(10·1/1) = 10, a full handoff.
	if r0, r1 := shares(3600); r1 != 10 || r0 != 0 {
		t.Errorf("long-TTL split = %d/%d, want 0/10", r0, r1)
	}
	// Short TTL: both EEVs are 0 — the even-split convention gives 5/5.
	if r0, r1 := shares(60); r1 != 5 || r0 != 5 {
		t.Errorf("short-TTL split = %d/%d, want 5/5", r0, r1)
	}
}

// TestEERSingleCopyForwardsByMEMD: the last replica moves to the node with
// the smaller minimum expected meeting delay to the destination.
func TestEERSingleCopyForwardsByMEMD(t *testing.T) {
	h := eerHarness(t, 4, 1)
	// Node 1 meets destination 2 every ~10 s; node 0 never meets 2 but
	// meets 1. MEMD(0,2) = EMD(0,1)+I(1,2) > MEMD(1,2).
	for k := 0; k < 6; k++ {
		h.meet(1, 2, 1)
		h.runner.Run(h.runner.Now() + 4)
	}
	h.warmPair(0, 1, 3, 20)
	m := h.send(0, 2, 3600)
	h.meet(0, 1, 3)
	if !h.w.Node(1).HasCopy(m.ID) {
		t.Fatal("single copy did not move toward the smaller MEMD")
	}
	if h.w.Node(0).HasCopy(m.ID) {
		t.Fatal("forward must relinquish the sender copy")
	}
}

// TestEERSingleCopyHoldsAgainstWorsePeer: the reverse situation must not
// move the copy.
func TestEERSingleCopyHoldsAgainstWorsePeer(t *testing.T) {
	h := eerHarness(t, 4, 1)
	for k := 0; k < 6; k++ {
		h.meet(0, 2, 1) // the HOLDER meets the destination often
		h.runner.Run(h.runner.Now() + 4)
	}
	h.warmPair(0, 3, 3, 20)
	m := h.send(0, 2, 3600)
	h.meet(0, 3, 3)
	if h.w.Node(3).HasCopy(m.ID) {
		t.Fatal("copy moved away from the better-positioned holder")
	}
	_ = m
}

func TestEERZeroEEVSplitsEvenly(t *testing.T) {
	// First-ever meeting: both EEVs are 0, so the convention splits the
	// quota evenly (floor(10/2) = 5).
	h := eerHarness(t, 3, 10)
	m := h.send(0, 2, 3600)
	h.meet(0, 1, 3)
	if r0, r1 := h.replicas(0, m), h.replicas(1, m); r0 != 5 || r1 != 5 {
		t.Errorf("zero-EEV split = %d/%d, want 5/5", r0, r1)
	}
}

func TestEERQuotaConservation(t *testing.T) {
	h := eerHarness(t, 5, 8)
	m := h.send(0, 4, 3600)
	h.meet(0, 1, 3)
	h.meet(1, 2, 3)
	h.meet(0, 3, 3)
	total := 0
	for i := 0; i < 4; i++ {
		total += h.replicas(i, m)
	}
	if total != 8 {
		t.Fatalf("replica total = %d, want 8", total)
	}
}

func TestEERFixedHorizonAblation(t *testing.T) {
	cfg := DefaultEERConfig(10)
	cfg.FixedHorizon = 1200
	f := EERFactory(cfg, 3)
	h := newHarness(t, 3, func(int) network.Router { return f() })
	m := h.send(0, 2, 3600)
	h.meet(0, 1, 3)
	// Sanity: the ablation still distributes.
	if h.replicas(0, m)+h.replicas(1, m) != 10 {
		t.Error("fixed-horizon EER broke quota conservation")
	}
}

func TestEERMeanIntervalMDAblation(t *testing.T) {
	cfg := DefaultEERConfig(1)
	cfg.MeanIntervalMD = true
	f := EERFactory(cfg, 4)
	h := newHarness(t, 4, func(int) network.Router { return f() })
	for k := 0; k < 6; k++ {
		h.meet(1, 2, 1)
		h.runner.Run(h.runner.Now() + 4)
	}
	h.warmPair(0, 1, 3, 20)
	m := h.send(0, 2, 3600)
	h.meet(0, 1, 3)
	if !h.w.Node(1).HasCopy(m.ID) {
		t.Fatal("mean-interval-MD ablation failed to forward toward the destination")
	}
}
