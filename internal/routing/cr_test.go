package routing

import (
	"testing"

	"repro/internal/community"
	"repro/internal/network"
)

// crHarness builds n nodes with the given registry.
func crHarness(t *testing.T, reg *community.Registry, lambda int) *harness {
	f := CRFactory(DefaultCRConfig(lambda), reg)
	return newHarness(t, reg.N(), func(int) network.Router { return f() })
}

func TestCRHandsAllToDestinationCommunity(t *testing.T) {
	// Communities {0,1} and {2,3}; message from 0 to 3. On meeting node 2
	// (destination community), ALL replicas are handed over (Algorithm 3
	// line 2).
	h := crHarness(t, registry2x2(), 10)
	m := h.send(0, 3, 3600)
	h.meet(0, 2, 3)
	if h.w.Node(0).HasCopy(m.ID) {
		t.Fatal("sender kept replicas after meeting the destination community")
	}
	if got := h.replicas(2, m); got != 10 {
		t.Fatalf("destination-community node got %d replicas, want 10", got)
	}
	// Intra-community phase then delivers.
	h.meet(2, 3, 3)
	if !h.w.Metrics.Delivered(m.ID) {
		t.Fatal("intra-community delivery failed")
	}
}

func TestCRInterCommunitySplitByENEC(t *testing.T) {
	// Communities: {0,1} (A), {2,3,4} (B), {5} (C, destination).
	reg := community.New([]int{0, 0, 1, 1, 1, 2})
	h := crHarness(t, reg, 10)
	// Node 1 frequently meets community B members (high ENEC); node 0
	// meets nobody else.
	for k := 0; k < 5; k++ {
		h.meet(1, 2, 1)
		h.meet(1, 3, 1)
	}
	m := h.send(0, 5, 3600)
	h.meet(0, 1, 3)
	r0, r1 := h.replicas(0, m), h.replicas(1, m)
	if r0+r1 != 10 {
		t.Fatalf("quota not conserved: %d + %d", r0, r1)
	}
	if r1 <= r0 {
		t.Errorf("ENEC split %d/%d: community-hopping node should get more", r0, r1)
	}
}

func TestCRInterCommunitySingleCopyByPic(t *testing.T) {
	// Single replica moves to the encounter with the higher probability of
	// meeting the destination community (Algorithm 3 line 10).
	reg := community.New([]int{0, 0, 1, 1, 2})
	h := crHarness(t, reg, 1)
	// Node 1 meets community-1 members often; node 0 never does.
	for k := 0; k < 5; k++ {
		h.meet(1, 2, 1)
		h.runner.Run(h.runner.Now() + 4)
	}
	m := h.send(0, 3, 3600) // dest 3 in community 1; holder 0 in community 0
	h.meet(0, 1, 3)
	if !h.w.Node(1).HasCopy(m.ID) {
		t.Fatal("single copy did not move toward the higher P_ic")
	}
}

func TestCRInterCommunitySingleCopyHolds(t *testing.T) {
	reg := community.New([]int{0, 0, 1, 1, 2})
	h := crHarness(t, reg, 1)
	// The HOLDER has the destination-community contacts.
	for k := 0; k < 5; k++ {
		h.meet(0, 2, 1)
		h.runner.Run(h.runner.Now() + 4)
	}
	m := h.send(0, 3, 3600)
	h.meet(0, 1, 3)
	if h.w.Node(1).HasCopy(m.ID) {
		t.Fatal("copy moved away from the better-connected holder")
	}
	_ = m
}

func TestCRIntraCommunityOnlyWithinCommunity(t *testing.T) {
	// Holder in the destination community never gives the message to an
	// outsider (Algorithm 4 line 1).
	h := crHarness(t, registry2x2(), 10)
	m := h.send(0, 1, 3600) // source and destination share community 0
	h.meet(0, 2, 3)         // node 2 is in the other community
	if h.w.Node(2).HasCopy(m.ID) {
		t.Fatal("intra-community message leaked outside the community")
	}
	h.meet(0, 1, 3)
	if !h.w.Metrics.Delivered(m.ID) {
		t.Fatal("delivery inside the community failed")
	}
}

func TestCRIntraCommunitySplitByIntraEEV(t *testing.T) {
	// Community 0 = {0,1,2,3}, destination 3. Node 1 meets community
	// members often (high intra EEV'), node 0 does not.
	reg := community.New([]int{0, 0, 0, 0, 1})
	h := crHarness(t, reg, 10)
	for k := 0; k < 5; k++ {
		h.meet(1, 2, 1)
	}
	m := h.send(0, 3, 3600)
	h.meet(0, 1, 3)
	r0, r1 := h.replicas(0, m), h.replicas(1, m)
	if r0+r1 != 10 {
		t.Fatalf("quota not conserved: %d + %d", r0, r1)
	}
	if r1 <= r0 {
		t.Errorf("intra-EEV split %d/%d", r0, r1)
	}
}

func TestCRIntraCommunityMEMD(t *testing.T) {
	// Community 0 = {0,1,2}; single replica at 0 destined to 2; node 1
	// meets 2 regularly, so intra-MEMD'(1,2) < intra-MEMD'(0,2).
	reg := community.New([]int{0, 0, 0, 1})
	h := crHarness(t, reg, 1)
	for k := 0; k < 6; k++ {
		h.meet(1, 2, 1)
		h.runner.Run(h.runner.Now() + 4)
	}
	h.warmPair(0, 1, 3, 20)
	m := h.send(0, 2, 3600)
	h.meet(0, 1, 3)
	if !h.w.Node(1).HasCopy(m.ID) {
		t.Fatal("intra-community single copy did not follow MEMD'")
	}
}

func TestCRIntraMIScopedToCommunity(t *testing.T) {
	reg := registry2x2()
	h := crHarness(t, reg, 10)
	h.meet(0, 1, 3) // same community: intra MI update + sync
	h.meet(0, 2, 3) // cross community: history only
	r0 := h.w.Node(0).Router.(*CR)
	if r0.IntraMI().Size() != 2 {
		t.Fatalf("intra MI size = %d, want 2", r0.IntraMI().Size())
	}
	if !r0.IntraMI().Covers(1) || r0.IntraMI().Covers(2) {
		t.Error("intra MI covers the wrong nodes")
	}
	// The cross-community meeting still lands in the history.
	if !r0.History().Met(2) {
		t.Error("cross-community contact missing from history")
	}
}

func TestCRQuotaConservationAcrossPhases(t *testing.T) {
	reg := community.New([]int{0, 0, 1, 1, 2, 2})
	h := crHarness(t, reg, 12)
	m := h.send(0, 5, 3600)
	h.meet(0, 1, 3) // intra split? no: dest community is 2, inter phase
	h.meet(1, 2, 3) // inter: ENEC split or hand-all (2 not in dest comm)
	h.meet(2, 3, 3)
	total := 0
	for i := 0; i < 5; i++ {
		total += h.replicas(i, m)
	}
	if total != 12 {
		t.Fatalf("replica total = %d, want 12", total)
	}
}
