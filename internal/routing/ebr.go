package routing

import (
	"repro/internal/msg"
	"repro/internal/network"
)

// EBR implements Nelson et al.'s Encounter-Based Routing, the paper's
// primary point of comparison. Each node maintains an exponentially
// weighted encounter value EV updated once per window interval from the
// current window counter CWC; on contact, a message's replicas are split
// in proportion to the two EVs. EBR's EV is identical for all messages and
// independent of their TTLs — exactly the deficiency the paper's
// TTL-scaled EEV addresses.
type EBR struct {
	Base
	// Lambda is the initial replica quota λ.
	Lambda int
	// WindowInterval is the EV update period W in seconds (default 30, as
	// in the EBR paper).
	WindowInterval float64
	// AlphaEWMA is the EWMA weight on the current window (default 0.85).
	AlphaEWMA float64

	ev  float64
	cwc int
}

// NewEBR returns an EBR router with quota lambda and the original
// constants.
func NewEBR(lambda int) *EBR {
	return &EBR{Lambda: lambda, WindowInterval: 30, AlphaEWMA: 0.85}
}

// InitialReplicas implements network.Router.
func (r *EBR) InitialReplicas(*msg.Message) int { return r.Lambda }

// Init implements network.Router and schedules the periodic EV update.
func (r *EBR) Init(self *network.Node, w *network.World) {
	r.Base.Init(self, w)
	var tick func(t float64)
	tick = func(t float64) {
		r.ev = r.AlphaEWMA*float64(r.cwc) + (1-r.AlphaEWMA)*r.ev
		r.cwc = 0
		w.Runner().Events.Schedule(t+r.WindowInterval, tick)
	}
	w.Runner().Events.Schedule(w.Now()+r.WindowInterval, tick)
}

// EV returns the current encounter value.
func (r *EBR) EV() float64 { return r.ev }

// ContactUp implements network.Router.
func (r *EBR) ContactUp(float64, *network.Node) { r.cwc++ }

// NextTransfer implements network.Router.
func (r *EBR) NextTransfer(t float64, peer *network.Node) *network.Plan {
	if p := r.DeliverDirect(t, peer); p != nil {
		return p
	}
	pr, ok := peer.Router.(*EBR)
	if !ok {
		return nil
	}
	for _, c := range r.Candidates(t, peer) {
		if c.Replicas <= 1 {
			continue // wait phase: EBR only delivers the last copy directly
		}
		share := QuotaShare(c.Replicas, r.ev, pr.ev)
		// EBR never relinquishes its own last replica during spraying.
		if share >= c.Replicas {
			share = c.Replicas - 1
		}
		if p := SplitPlan(c, share); p != nil {
			return p
		}
	}
	return nil
}
