package routing

import (
	"math"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/msg"
	"repro/internal/network"
)

// EERConfig parameterises the EER router.
type EERConfig struct {
	// Lambda is the initial replica quota λ (paper default 10).
	Lambda int
	// Alpha scales the EEV horizon to α·TTL_k (paper value 0.28).
	Alpha float64
	// Window is the sliding-window capacity per peer (0 selects
	// core.DefaultWindow).
	Window int

	// FixedHorizon, when positive, replaces the α·TTL_k horizon with a
	// constant — the TTL-independent expected EV of the A1 ablation,
	// isolating the paper's central claim against EBR-style estimation.
	FixedHorizon float64
	// MeanIntervalMD, when true, builds the node's own MD row from plain
	// mean intervals rather than Theorem-2 elapsed-conditioned EMDs — the
	// MEED-style A2 ablation (Jones et al.).
	MeanIntervalMD bool
	// ForwardHysteresis only forwards a single replica when the peer's
	// MEMD undercuts the holder's by more than this many seconds. The
	// paper's Algorithm 1 uses a strict comparison (0); the A3 ablation
	// uses positive values to quantify estimator-noise ping-pong.
	ForwardHysteresis float64

	// SparseEstimators selects the sparse estimator core: per-observed-peer
	// history and MI storage plus the heap MEMD, with bit-identical
	// decisions (see core.MeetingStore). Mandatory at city scale, where the
	// dense n×n state cannot be allocated per node.
	SparseEstimators bool
	// MaxSparseRows caps the sparse MI store at that many rows with
	// stale-row eviction (own row pinned); 0 = unbounded. Only meaningful
	// with SparseEstimators — a bound for long-horizon runs.
	MaxSparseRows int

	// Gossip selects how the MI exchange at contacts is metered (and, in
	// delta mode, restricted): core.ExchangeFresher (the zero value, the
	// historical accounting), ExchangeFlood or ExchangeDelta. All modes
	// leave identical MI state — only the gossip byte counters differ.
	Gossip core.ExchangeMode
}

// DefaultEERConfig returns the paper's parameters with quota lambda.
func DefaultEERConfig(lambda int) EERConfig {
	return EERConfig{Lambda: lambda, Alpha: 0.28}
}

// eerShared is per-world state shared by all EER routers: the MEMD scratch
// (the MD of Theorem 3 is transient, so one buffer serves every node on
// the single simulation goroutine — an O(n²) dense matrix at figure scale,
// a bounded-heap sparse calculator at city scale), plus freelists of
// per-contact state. Contacts are constant churn — every one allocated a
// snapshot, a decision map and a MEMD vector — so recycling them removes
// the router layer's steady-state allocations entirely.
type eerShared struct {
	memd  *core.MEMD       // dense scratch; nil in sparse mode
	smemd *core.SparseMEMD // sparse scratch; nil in dense mode

	snapPool []*core.EEVSnapshot
	ctPool   []*eerContact
}

// newEERShared sizes the scratch for the configured storage mode.
func newEERShared(cfg EERConfig, n int) *eerShared {
	if cfg.SparseEstimators {
		return &eerShared{smemd: core.NewSparseMEMD()}
	}
	return &eerShared{memd: core.NewMEMD(n)}
}

func (sh *eerShared) getSnapshot() *core.EEVSnapshot {
	if n := len(sh.snapPool); n > 0 {
		s := sh.snapPool[n-1]
		sh.snapPool = sh.snapPool[:n-1]
		return s
	}
	return &core.EEVSnapshot{}
}

func (sh *eerShared) getContact(t0 float64) *eerContact {
	if n := len(sh.ctPool); n > 0 {
		st := sh.ctPool[n-1]
		sh.ctPool = sh.ctPool[:n-1]
		st.t0 = t0
		st.memd = nil
		st.memdDone = false
		clear(st.memdMap)
		clear(st.decided)
		return st
	}
	return &eerContact{t0: t0, decided: make(map[int]eerDecision), pooled: true}
}

// putContact recycles a contact and its snapshot. Only pooled contacts
// (those from getContact) are recycled; decide's defensive fallback
// contacts are left to the garbage collector.
func (sh *eerShared) putContact(st *eerContact) {
	if !st.pooled {
		return
	}
	if st.snap != nil {
		sh.snapPool = append(sh.snapPool, st.snap)
		st.snap = nil
	}
	sh.ctPool = append(sh.ctPool, st)
}

// EER implements the paper's Expected-Encounter based Routing (Section
// III, Algorithm 1): quota distribution proportional to TTL-scaled
// expected encounter values, and single-replica forwarding by minimum
// expected meeting delay.
type EER struct {
	Base
	cfg    EERConfig
	shared *eerShared

	hist *core.History
	mi   core.MeetingStore

	contacts map[int]*eerContact
}

// eerContact caches the per-contact estimator state: Algorithm 1 fixes
// routing information at meeting time t0.
type eerContact struct {
	t0      float64
	snap    *core.EEVSnapshot
	memd    []float64 // dense mode: MEMD to every node, by id; nil until built
	memdBuf []float64 // retained backing array for memd across recycling
	// Sparse mode: delays for reached destinations only (absent = +Inf);
	// the map is retained and cleared across recycling.
	memdMap  map[int]float64
	memdDone bool
	decided  map[int]eerDecision
	pooled   bool // came from the shared freelist; recycled on contact down
}

// eerDecision is the meeting-time decision for one message.
type eerDecision struct {
	wSelf, wPeer float64 // EEV weights for the quota split
	forward      bool    // single-replica: hand over?
}

// NewEER returns an EER router. Routers of one world must share the same
// factory so they share the MD scratch; use EERFactory.
func NewEER(cfg EERConfig, shared *eerShared) *EER {
	if cfg.Lambda < 1 {
		panic("routing: EER lambda must be >= 1")
	}
	return &EER{cfg: cfg, shared: shared}
}

// EERFactory returns a constructor producing EER routers that share one
// MEMD scratch sized for n nodes (or one sparse calculator when
// cfg.SparseEstimators is set).
func EERFactory(cfg EERConfig, n int) func() network.Router {
	shared := newEERShared(cfg, n)
	return func() network.Router { return NewEER(cfg, shared) }
}

// Config returns the router's configuration.
func (r *EER) Config() EERConfig { return r.cfg }

// History exposes the contact history (tests, trace tools).
func (r *EER) History() *core.History { return r.hist }

// MI exposes the meeting-interval store (tests, trace tools).
func (r *EER) MI() core.MeetingStore { return r.mi }

// InitialReplicas implements network.Router.
func (r *EER) InitialReplicas(*msg.Message) int { return r.cfg.Lambda }

// Init implements network.Router.
func (r *EER) Init(self *network.Node, w *network.World) {
	r.Base.Init(self, w)
	n := w.N()
	if r.cfg.SparseEstimators {
		r.hist = core.NewSparseHistory(self.ID, n, r.cfg.Window)
		mi := core.NewSparseMeetingStore(n)
		if r.cfg.MaxSparseRows > 0 {
			mi.SetMaxRows(r.cfg.MaxSparseRows, self.ID)
		}
		r.mi = mi
	} else {
		r.hist = core.NewHistory(self.ID, n, r.cfg.Window)
		r.mi = core.NewFullMeetingMatrix(n)
	}
	r.contacts = make(map[int]*eerContact)
	if r.shared == nil {
		r.shared = newEERShared(r.cfg, n)
	}
}

// ContactUp implements network.Router: record the meeting, refresh the own
// MI row and run the freshness-based MI exchange (Algorithm 1 lines 3–5).
func (r *EER) ContactUp(t float64, peer *network.Node) {
	r.hist.RecordContact(peer.ID, t)
	r.mi.UpdateOwnRow(r.Self.ID, t, r.hist)
	if pr, ok := peer.Router.(*EER); ok {
		st := core.SyncMode(r.mi, pr.mi, r.Self.ID, peer.ID, r.cfg.Gossip)
		r.World.Metrics.EstimatorExchanged(st.Rows, st.Entries, st.Bytes, st.DigestBytes)
	}
	r.contacts[peer.ID] = r.shared.getContact(t)
}

// ContactDown implements network.Router.
func (r *EER) ContactDown(t float64, peer *network.Node) {
	r.Base.ContactDown(t, peer)
	if st := r.contacts[peer.ID]; st != nil {
		r.shared.putContact(st)
		delete(r.contacts, peer.ID)
	}
}

// snapshot lazily builds the meeting-time EEV snapshot for a contact.
func (r *EER) snapshot(st *eerContact) *core.EEVSnapshot {
	if st.snap == nil {
		if st.pooled {
			st.snap = r.hist.SnapshotEEVInto(st.t0, r.shared.getSnapshot())
		} else {
			st.snap = r.hist.SnapshotEEV(st.t0)
		}
	}
	return st.snap
}

// memdTo lazily computes the MEMD vector for a contact and returns the
// delay to dst.
func (r *EER) memdTo(st *eerContact, dst int) float64 {
	if r.cfg.SparseEstimators {
		return r.sparseMEMDTo(st, dst)
	}
	if st.memd == nil {
		if r.cfg.MeanIntervalMD {
			r.computeMeanIntervalMD(st)
		} else {
			r.shared.memd.Compute(r.Self.ID, st.t0, r.hist, r.mi.(*core.MeetingMatrix))
			st.memd = append(st.memdBuf[:0], r.shared.memd.Distances()...)
			st.memdBuf = st.memd
		}
	}
	return st.memd[dst]
}

// sparseMEMDTo is memdTo over the sparse core: the heap Dijkstra touches
// only recorded edges, and the contact caches delays for the reached
// destinations (absent = +Inf, exactly the dense convention).
func (r *EER) sparseMEMDTo(st *eerContact, dst int) float64 {
	if !st.memdDone {
		calc := r.shared.smemd
		if r.cfg.MeanIntervalMD {
			calc.ComputeStoreOnly(r.Self.ID, r.mi)
		} else {
			calc.Compute(r.Self.ID, st.t0, r.hist, r.mi)
		}
		if st.memdMap == nil {
			st.memdMap = make(map[int]float64)
		}
		calc.ForEachReached(func(id int, d float64) { st.memdMap[id] = d })
		st.memdDone = true
	}
	if d, ok := st.memdMap[dst]; ok {
		return d
	}
	return math.Inf(1)
}

// computeMeanIntervalMD is the A2 ablation: the own row uses plain mean
// intervals (MEED) instead of elapsed-conditioned EMDs. It reuses the
// shared scratch by temporarily overriding the history row via a throwaway
// matrix row — implemented by building the MD entirely from MI, i.e. the
// own MI row already holds mean intervals.
func (r *EER) computeMeanIntervalMD(st *eerContact) {
	n := r.World.N()
	w := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, n)
		for j := 0; j < n; j++ {
			row[j] = r.mi.Interval(i, j)
		}
		w[i] = row
	}
	dist := make([]float64, n)
	graph.DenseDijkstra(w, r.Self.ID, dist)
	st.memd = dist
}

// horizon returns the EEV horizon for message m decided at time t.
func (r *EER) horizon(m *msg.Message, t float64) float64 {
	if r.cfg.FixedHorizon > 0 {
		return r.cfg.FixedHorizon
	}
	res := m.ResidualTTL(t)
	if res < 0 {
		res = 0
	}
	return r.cfg.Alpha * res
}

// decide makes the Algorithm-1 decision for message c against peer pr on
// the contact st.
func (r *EER) decide(st *eerContact, pr *EER, c *msg.Copy) eerDecision {
	var d eerDecision
	tau := r.horizon(c.M, st.t0)
	peerSt := pr.contacts[r.Self.ID]
	if peerSt == nil {
		// The peer has not (yet) seen this contact; fall back to direct
		// evaluation at our meeting time.
		peerSt = &eerContact{t0: st.t0, decided: map[int]eerDecision{}}
	}
	d.wSelf = r.snapshot(st).EEV(tau)
	d.wPeer = pr.snapshot(peerSt).EEV(tau)
	myD := r.memdTo(st, c.M.To)
	peerD := pr.memdTo(peerSt, c.M.To)
	d.forward = myD > peerD+r.cfg.ForwardHysteresis && !math.IsInf(peerD, 1)
	return d
}

// NextTransfer implements network.Router (Algorithm 1 lines 6–18).
func (r *EER) NextTransfer(t float64, peer *network.Node) *network.Plan {
	if p := r.DeliverDirect(t, peer); p != nil {
		return p
	}
	pr, ok := peer.Router.(*EER)
	if !ok {
		return nil
	}
	st := r.contacts[peer.ID]
	if st == nil {
		return nil
	}
	for _, c := range r.Candidates(t, peer) {
		d, seen := st.decided[c.M.ID]
		if !seen {
			d = r.decide(st, pr, c)
			st.decided[c.M.ID] = d
		}
		if c.Replicas > 1 {
			if p := SplitPlan(c, QuotaShare(c.Replicas, d.wSelf, d.wPeer)); p != nil {
				return p
			}
			continue
		}
		if d.forward {
			return network.Forward(c)
		}
	}
	return nil
}
