package routing

import (
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/msg"
	"repro/internal/network"
)

// MaxProp implements Burgess et al.'s MaxProp, the epidemic-family
// comparison protocol of the paper's Figure 2. Implemented features:
// incrementally averaged (sum-normalised) meeting probabilities, flooded
// probability vectors, Dijkstra path costs Σ(1−p), transmission priority —
// destination-direct first, then low-hop messages, then ascending cost —
// delivered-message acks that purge copies network-wide, and a cost-aware
// drop order. Simplification (documented in DESIGN.md): the hop-count
// priority threshold is a fixed configurable value instead of MaxProp's
// adaptive byte-based estimate.
type MaxProp struct {
	Base
	// HopThreshold gives messages with fewer hops transmission priority
	// (default 7).
	HopThreshold int

	probs   [][]float64 // probs[u][v]: u's meeting probability for v
	updated []float64   // freshness per row; -1 = never
	scratch *maxPropShared

	cost      []float64 // cached path cost to every node
	costValid bool
}

type maxPropShared struct {
	w    [][]float64
	dist []float64
}

// NewMaxProp returns a MaxProp router; use MaxPropFactory so routers share
// scratch.
func NewMaxProp() *MaxProp { return &MaxProp{HopThreshold: 7} }

// MaxPropFactory returns a constructor producing MaxProp routers sharing
// one Dijkstra scratch for n nodes.
func MaxPropFactory(n int) func() *MaxProp {
	shared := &maxPropShared{dist: make([]float64, n)}
	shared.w = make([][]float64, n)
	flat := make([]float64, n*n)
	for i := range shared.w {
		shared.w[i], flat = flat[:n], flat[n:]
	}
	return func() *MaxProp {
		r := NewMaxProp()
		r.scratch = shared
		return r
	}
}

// Init implements network.Router.
func (r *MaxProp) Init(self *network.Node, w *network.World) {
	r.Base.Init(self, w)
	n := w.N()
	r.probs = make([][]float64, n)
	flat := make([]float64, n*n)
	for i := range r.probs {
		r.probs[i], flat = flat[:n], flat[n:]
	}
	r.updated = make([]float64, n)
	for i := range r.updated {
		r.updated[i] = -1
	}
	r.cost = make([]float64, n)
	if r.scratch == nil {
		r.scratch = &maxPropShared{dist: make([]float64, n)}
		r.scratch.w = make([][]float64, n)
		f2 := make([]float64, n*n)
		for i := range r.scratch.w {
			r.scratch.w[i], f2 = f2[:n], f2[n:]
		}
	}
	// MaxProp's drop order: prefer evicting high-cost (unlikely to be
	// delivered) copies, approximated with the last computed cost vector;
	// ties and cold caches fall back to most-hops.
	self.Buf.SetPolicy(func(_ float64, copies []*msg.Copy) int {
		best, bestScore := 0, math.Inf(-1)
		for i, c := range copies {
			score := float64(c.Hops)
			if r.costValid && !math.IsInf(r.cost[c.M.To], 1) {
				score = 1e6 * r.cost[c.M.To]
			}
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		return best
	})
}

// Prob returns this node's current meeting probability for peer v.
func (r *MaxProp) Prob(v int) float64 { return r.probs[r.Self.ID][v] }

// ContactUp implements network.Router: incremental-average own vector,
// exchange vectors by freshness, merge delivery acks, purge dead copies.
func (r *MaxProp) ContactUp(t float64, peer *network.Node) {
	self := r.Self.ID
	own := r.probs[self]
	own[peer.ID]++
	sum := 0.0
	for _, p := range own {
		sum += p
	}
	for i := range own {
		own[i] /= sum
	}
	r.updated[self] = t
	r.costValid = false
	pr, ok := peer.Router.(*MaxProp)
	if !ok {
		return
	}
	// Vector exchange with per-row freshness, both directions.
	for i := range r.probs {
		if pr.updated[i] > r.updated[i] {
			copy(r.probs[i], pr.probs[i])
			r.updated[i] = pr.updated[i]
		} else if r.updated[i] > pr.updated[i] {
			copy(pr.probs[i], r.probs[i])
			pr.updated[i] = r.updated[i]
			pr.costValid = false
		}
	}
	// Ack merge: each side learns the other's delivered set.
	r.Self.SyncKnownDelivered(peer)
	r.PurgeKnownDelivered()
	pr.PurgeKnownDelivered()
}

// refreshCost recomputes the Σ(1−p) Dijkstra costs from this node.
func (r *MaxProp) refreshCost() {
	n := len(r.probs)
	w := r.scratch.w
	for u := 0; u < n; u++ {
		known := r.updated[u] >= 0
		for v := 0; v < n; v++ {
			if u == v || !known {
				w[u][v] = math.Inf(1)
				continue
			}
			p := r.probs[u][v]
			if p <= 0 {
				w[u][v] = math.Inf(1)
				continue
			}
			c := 1 - p
			if c < 1e-9 {
				c = 1e-9
			}
			w[u][v] = c
		}
	}
	graph.DenseDijkstra(w, r.Self.ID, r.scratch.dist)
	copy(r.cost, r.scratch.dist)
	r.costValid = true
}

// Cost returns the current path cost estimate to dst.
func (r *MaxProp) Cost(dst int) float64 {
	if !r.costValid {
		r.refreshCost()
	}
	return r.cost[dst]
}

// NextTransfer implements network.Router with MaxProp's transmission
// order.
func (r *MaxProp) NextTransfer(t float64, peer *network.Node) *network.Plan {
	if p := r.DeliverDirect(t, peer); p != nil {
		return p
	}
	cands := r.Candidates(t, peer)
	if len(cands) == 0 {
		return nil
	}
	if !r.costValid {
		r.refreshCost()
	}
	sort.SliceStable(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		aLow, bLow := a.Hops < r.HopThreshold, b.Hops < r.HopThreshold
		if aLow != bLow {
			return aLow
		}
		if aLow {
			if a.Hops != b.Hops {
				return a.Hops < b.Hops
			}
			return a.M.ID < b.M.ID
		}
		ca, cb := r.cost[a.M.To], r.cost[b.M.To]
		if ca != cb {
			return ca < cb
		}
		return a.M.ID < b.M.ID
	})
	return network.Replicate(cands[0])
}
