package routing

import (
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/msg"
	"repro/internal/network"
)

// MaxProp implements Burgess et al.'s MaxProp, the epidemic-family
// comparison protocol of the paper's Figure 2. Implemented features:
// incrementally averaged (sum-normalised) meeting probabilities, flooded
// probability vectors, Dijkstra path costs Σ(1−p), transmission priority —
// destination-direct first, then low-hop messages, then ascending cost —
// delivered-message acks that purge copies network-wide, and a cost-aware
// drop order. Simplification (documented in DESIGN.md): the hop-count
// priority threshold is a fixed configurable value instead of MaxProp's
// adaptive byte-based estimate.
//
// Probability storage is polymorphic like the estimator core's
// MeetingStore: dense n×n rows at figure scale, sparse observed-peer rows
// (core.SparseRows) at city scale, with bit-identical routing decisions —
// normalisation sums and divisions visit entries in ascending id order in
// both modes, and the path costs come from Dijkstras whose distances are
// storage-independent.
type MaxProp struct {
	Base
	// HopThreshold gives messages with fewer hops transmission priority
	// (default 7).
	HopThreshold int
	// Sparse selects observed-peer row storage and the heap-based cost
	// Dijkstra; set it before Init (MaxPropFactory does).
	Sparse bool
	// MaxSparseRows caps the sparse probability-row store at that many
	// rows with stale-row eviction (own row pinned); 0 = unbounded. Only
	// meaningful with Sparse.
	MaxSparseRows int
	// Gossip selects how the vector exchange at contacts is metered (and,
	// in delta mode, restricted); see core.ExchangeMode. The zero value is
	// the historical fresher accounting. All modes leave identical
	// probability state.
	Gossip core.ExchangeMode

	// Dense storage (nil in sparse mode).
	probs   [][]float64 // probs[u][v]: u's meeting probability for v
	updated []float64   // freshness per row; -1 = never
	cost    []float64   // cached path cost to every node
	scratch *maxPropShared
	// Dense delta-gossip bookkeeping, mirroring core.MeetingMatrix's:
	// version counts local row mutations, rowVer stamps rows with their
	// last mutation, seen records the version at the end of the last delta
	// sync with each peer.
	version uint64
	rowVer  []uint64
	seen    map[int]uint64

	// Sparse storage (nil in dense mode).
	rows *core.SparseRows
	dij  *core.SparseDijkstra // per-router: its dist map doubles as the cost cache

	costValid bool
}

type maxPropShared struct {
	w    [][]float64
	dist []float64
}

// NewMaxProp returns a MaxProp router; use MaxPropFactory so dense routers
// share scratch.
func NewMaxProp() *MaxProp { return &MaxProp{HopThreshold: 7} }

// MaxPropFactory returns a constructor producing MaxProp routers for n
// nodes: dense routers sharing one Dijkstra scratch, or self-contained
// sparse routers whose state grows with observed peers only (optionally
// capped at maxRows rows each). gossip selects the exchange metering.
func MaxPropFactory(n int, sparse bool, maxRows int, gossip core.ExchangeMode) func() network.Router {
	if sparse {
		return func() network.Router {
			r := NewMaxProp()
			r.Sparse = true
			r.MaxSparseRows = maxRows
			r.Gossip = gossip
			return r
		}
	}
	shared := newMaxPropShared(n)
	return func() network.Router {
		r := NewMaxProp()
		r.scratch = shared
		r.Gossip = gossip
		return r
	}
}

func newMaxPropShared(n int) *maxPropShared {
	shared := &maxPropShared{dist: make([]float64, n)}
	shared.w = make([][]float64, n)
	flat := make([]float64, n*n)
	for i := range shared.w {
		shared.w[i], flat = flat[:n], flat[n:]
	}
	return shared
}

// Init implements network.Router.
func (r *MaxProp) Init(self *network.Node, w *network.World) {
	r.Base.Init(self, w)
	n := w.N()
	if r.Sparse {
		r.rows = core.NewSparseRows()
		if r.MaxSparseRows > 0 {
			r.rows.SetCap(r.MaxSparseRows, self.ID)
		}
		r.dij = core.NewSparseDijkstra()
	} else {
		r.probs = make([][]float64, n)
		flat := make([]float64, n*n)
		for i := range r.probs {
			r.probs[i], flat = flat[:n], flat[n:]
		}
		r.updated = make([]float64, n)
		for i := range r.updated {
			r.updated[i] = -1
		}
		r.rowVer = make([]uint64, n)
		r.cost = make([]float64, n)
		if r.scratch == nil {
			r.scratch = newMaxPropShared(n)
		}
	}
	// MaxProp's drop order: prefer evicting high-cost (unlikely to be
	// delivered) copies, approximated with the last computed cost vector;
	// ties and cold caches fall back to most-hops.
	self.Buf.SetPolicy(func(_ float64, copies []*msg.Copy) int {
		best, bestScore := 0, math.Inf(-1)
		for i, c := range copies {
			score := float64(c.Hops)
			if r.costValid {
				if pc := r.pathCost(c.M.To); !math.IsInf(pc, 1) {
					score = 1e6 * pc
				}
			}
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		return best
	})
}

// Prob returns this node's current meeting probability for peer v.
func (r *MaxProp) Prob(v int) float64 {
	if r.Sparse {
		if row := r.rows.Row(r.Self.ID); row != nil {
			if p, ok := row.Get(v); ok {
				return p
			}
		}
		return 0
	}
	return r.probs[r.Self.ID][v]
}

// ContactUp implements network.Router: incremental-average own vector,
// exchange vectors by freshness, merge delivery acks, purge dead copies.
func (r *MaxProp) ContactUp(t float64, peer *network.Node) {
	pr, _ := peer.Router.(*MaxProp)
	if r.Sparse {
		r.contactUpSparse(t, peer, pr)
	} else {
		r.contactUpDense(t, peer, pr)
	}
	if pr == nil {
		return
	}
	// Ack merge: each side learns the other's delivered set.
	r.Self.SyncKnownDelivered(peer)
	r.PurgeKnownDelivered()
	pr.PurgeKnownDelivered()
}

func (r *MaxProp) contactUpDense(t float64, peer *network.Node, pr *MaxProp) {
	self := r.Self.ID
	own := r.probs[self]
	own[peer.ID]++
	sum := 0.0
	for _, p := range own {
		sum += p
	}
	for i := range own {
		own[i] /= sum
	}
	r.updated[self] = t
	r.version++
	r.rowVer[self] = r.version
	r.costValid = false
	if pr == nil {
		return
	}
	// Vector exchange with per-row freshness, both directions. Entries
	// counted are the positive probabilities — exactly what a sparse row
	// stores — so dense and sparse exchange volume agree. Delta mode
	// restricts the exchange to rows mutated since the pair's last sync
	// (always a superset of the strictly-fresher rows; dense storage never
	// evicts, so the watermark alone is sound), flood meters full vector
	// transmission; every mode applies the same freshness merge.
	var st core.ExchangeStats
	aSeen, bSeen := uint64(0), uint64(0)
	switch r.Gossip {
	case core.ExchangeDelta:
		aSeen, bSeen = r.seen[peer.ID], pr.seen[self]
		st.AddDigest(r.advertised(aSeen))
		st.AddDigest(pr.advertised(bSeen))
	case core.ExchangeFlood:
		st.Add(r.floodVolume())
		st.Add(pr.floodVolume())
	}
	var moved core.ExchangeStats
	for i := range r.probs {
		if pr.updated[i] > r.updated[i] {
			if r.Gossip == core.ExchangeDelta && pr.rowVer[i] <= bSeen {
				continue
			}
			copy(r.probs[i], pr.probs[i])
			r.updated[i] = pr.updated[i]
			r.version++
			r.rowVer[i] = r.version
			moved.AddRow(positiveEntries(r.probs[i]))
		} else if r.updated[i] > pr.updated[i] {
			if r.Gossip == core.ExchangeDelta && r.rowVer[i] <= aSeen {
				continue
			}
			copy(pr.probs[i], r.probs[i])
			pr.updated[i] = r.updated[i]
			pr.version++
			pr.rowVer[i] = pr.version
			pr.costValid = false
			moved.AddRow(positiveEntries(r.probs[i]))
		}
	}
	switch r.Gossip {
	case core.ExchangeDelta:
		st.Add(moved)
		st.AddRequests(moved.Rows)
		if r.seen == nil {
			r.seen = make(map[int]uint64)
		}
		if pr.seen == nil {
			pr.seen = make(map[int]uint64)
		}
		r.seen[peer.ID] = r.version
		pr.seen[self] = pr.version
	case core.ExchangeFlood:
		// Volume already accounted pre-merge.
	default:
		st = moved
	}
	r.World.Metrics.EstimatorExchanged(st.Rows, st.Entries, st.Bytes, st.DigestBytes)
}

// advertised counts and sizes the published rows mutated past the
// watermark — the dense delta digest to one peer, each row costing a
// varint (owner, stamp) entry.
func (r *MaxProp) advertised(seen uint64) (rows, payloadBytes int) {
	for i, u := range r.updated {
		if u >= 0 && r.rowVer[i] > seen {
			rows++
			payloadBytes += core.DigestEntryLen(i, u)
		}
	}
	return rows, payloadBytes
}

// floodVolume is the cost of transmitting every published probability row.
func (r *MaxProp) floodVolume() core.ExchangeStats {
	var st core.ExchangeStats
	for i, u := range r.updated {
		if u >= 0 {
			st.AddRow(positiveEntries(r.probs[i]))
		}
	}
	return st
}

// positiveEntries counts the positive probabilities of a dense row — the
// entries its sparse counterpart stores.
func positiveEntries(row []float64) int {
	n := 0
	for _, p := range row {
		if p > 0 {
			n++
		}
	}
	return n
}

// contactUpSparse mirrors contactUpDense over sparse rows. The own-row
// update is bit-identical: the normalisation sum and the divisions visit
// stored entries ascending, and the dense scan's untouched zero entries
// are exact no-ops in both the sum and the division.
func (r *MaxProp) contactUpSparse(t float64, peer *network.Node, pr *MaxProp) {
	own := r.rows.Ensure(r.Self.ID)
	p, _ := own.Get(peer.ID)
	own.Set(peer.ID, p+1)
	own.Div(own.Sum())
	own.Updated = t
	r.rows.Touch(own)
	r.costValid = false
	if pr == nil {
		return
	}
	// Row exchange with per-row freshness, both directions, metered (and
	// in delta mode restricted) by the configured gossip mode. The merge
	// outcome is mode-independent, so invalidating the peer's cost cache
	// whenever any row moved — rather than only on the return direction —
	// costs at most a recompute of identical values.
	st := core.SyncRowsMode(r.rows, pr.rows, r.Self.ID, peer.ID, r.Gossip)
	if st.Rows > 0 {
		pr.costValid = false
	}
	r.World.Metrics.EstimatorExchanged(st.Rows, st.Entries, st.Bytes, st.DigestBytes)
}

// refreshCost recomputes the Σ(1−p) Dijkstra costs from this node.
func (r *MaxProp) refreshCost() {
	if r.Sparse {
		r.dij.Run(r.Self.ID, func(u int, relax func(v int, w float64)) {
			row := r.rows.Row(u)
			if row == nil || row.Updated < 0 {
				return
			}
			row.ForEach(func(v int, p float64) {
				if p <= 0 {
					return
				}
				c := 1 - p
				if c < 1e-9 {
					c = 1e-9
				}
				relax(v, c)
			})
		})
		r.costValid = true
		return
	}
	n := len(r.probs)
	w := r.scratch.w
	for u := 0; u < n; u++ {
		known := r.updated[u] >= 0
		for v := 0; v < n; v++ {
			if u == v || !known {
				w[u][v] = math.Inf(1)
				continue
			}
			p := r.probs[u][v]
			if p <= 0 {
				w[u][v] = math.Inf(1)
				continue
			}
			c := 1 - p
			if c < 1e-9 {
				c = 1e-9
			}
			w[u][v] = c
		}
	}
	graph.DenseDijkstra(w, r.Self.ID, r.scratch.dist)
	copy(r.cost, r.scratch.dist)
	r.costValid = true
}

// pathCost returns the cached cost to dst; +Inf when unreached. Callers
// must have refreshed the cache (costValid).
func (r *MaxProp) pathCost(dst int) float64 {
	if r.Sparse {
		if d, ok := r.dij.Dist(dst); ok {
			return d
		}
		return math.Inf(1)
	}
	return r.cost[dst]
}

// Cost returns the current path cost estimate to dst.
func (r *MaxProp) Cost(dst int) float64 {
	if !r.costValid {
		r.refreshCost()
	}
	return r.pathCost(dst)
}

// NextTransfer implements network.Router with MaxProp's transmission
// order.
func (r *MaxProp) NextTransfer(t float64, peer *network.Node) *network.Plan {
	if p := r.DeliverDirect(t, peer); p != nil {
		return p
	}
	cands := r.Candidates(t, peer)
	if len(cands) == 0 {
		return nil
	}
	if !r.costValid {
		r.refreshCost()
	}
	sort.SliceStable(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		aLow, bLow := a.Hops < r.HopThreshold, b.Hops < r.HopThreshold
		if aLow != bLow {
			return aLow
		}
		if aLow {
			if a.Hops != b.Hops {
				return a.Hops < b.Hops
			}
			return a.M.ID < b.M.ID
		}
		ca, cb := r.pathCost(a.M.To), r.pathCost(b.M.To)
		if ca != cb {
			return ca < cb
		}
		return a.M.ID < b.M.ID
	})
	return network.Replicate(cands[0])
}
