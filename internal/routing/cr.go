package routing

import (
	"math"

	"repro/internal/community"
	"repro/internal/core"
	"repro/internal/msg"
	"repro/internal/network"
)

// CRConfig parameterises the CR router.
type CRConfig struct {
	// Lambda is the initial replica quota λ (paper default 10).
	Lambda int
	// Alpha scales the ENEC/EEV horizon to α·TTL_k (paper value 0.28).
	Alpha float64
	// Window is the sliding-window capacity per peer.
	Window int
	// SparseEstimators selects the sparse estimator core (observed-peer
	// history and intra-community MI, heap MEMD'), with bit-identical
	// decisions; mandatory at city scale.
	SparseEstimators bool
	// MaxSparseRows caps the sparse intra-community MI store at that many
	// rows with stale-row eviction (own row pinned); 0 = unbounded.
	MaxSparseRows int

	// Gossip selects how the intra-community MI exchange is metered (and,
	// in delta mode, restricted); see core.ExchangeMode. The zero value is
	// the historical fresher accounting.
	Gossip core.ExchangeMode
}

// DefaultCRConfig returns the paper's parameters with quota lambda.
func DefaultCRConfig(lambda int) CRConfig {
	return CRConfig{Lambda: lambda, Alpha: 0.28}
}

// crShared is per-world state shared by all CR routers: the community
// registry and one MEMD scratch per community size (dense mode) or one
// size-independent sparse calculator.
type crShared struct {
	reg    *community.Registry
	memd   map[int]*core.MEMD    // keyed by community size; dense mode only
	smemd  *core.SparseMEMD      // sparse mode only
	scopes map[int]core.ScopeSet // keyed by community id; sparse mode only
}

// scopeFor returns the shared member-id set of community c, built on first
// use. Router Init runs serially at world build, so no locking.
func (s *crShared) scopeFor(c int) core.ScopeSet {
	sc, ok := s.scopes[c]
	if !ok {
		sc = core.NewScopeSet(s.reg.Members(c))
		s.scopes[c] = sc
	}
	return sc
}

func (s *crShared) memdFor(size int) *core.MEMD {
	m, ok := s.memd[size]
	if !ok {
		m = core.NewMEMD(size)
		s.memd[size] = m
	}
	return m
}

// CR implements the paper's Community based Routing (Section IV,
// Algorithms 2–4). Inter-community: quota split by expected number of
// encountered communities (Theorem 4), single replica forwarded toward the
// higher destination-community probability, and everything handed over on
// meeting a destination-community member. Intra-community: EER restricted
// to the community — intra MI/MD and intra EEV' — which is the protocol's
// state-size advantage over EER.
type CR struct {
	Base
	cfg    CRConfig
	shared *crShared

	hist    *core.History
	intraMI core.MeetingStore // covers only the node's community
	ownComm int

	contacts map[int]*crContact
}

// crContact caches per-contact estimator state at meeting time.
type crContact struct {
	t0      float64
	snap    *core.EEVSnapshot
	memd    map[int]float64 // intra-community MEMD by destination id
	decided map[int]crDecision
}

// crDecision is the meeting-time decision for one message.
type crDecision struct {
	handAll      bool    // peer is in the destination community: give everything
	skip         bool    // Algorithm 4 line 1: peer outside our community
	wSelf, wPeer float64 // quota weights (ENEC inter, EEV' intra)
	forward      bool    // single replica: hand over?
}

// NewCR returns a CR router; use CRFactory so routers share the registry
// and scratch.
func NewCR(cfg CRConfig, shared *crShared) *CR {
	if cfg.Lambda < 1 {
		panic("routing: CR lambda must be >= 1")
	}
	return &CR{cfg: cfg, shared: shared}
}

// CRFactory returns a constructor producing CR routers over the given
// community registry.
func CRFactory(cfg CRConfig, reg *community.Registry) func() network.Router {
	shared := &crShared{reg: reg}
	if cfg.SparseEstimators {
		shared.smemd = core.NewSparseMEMD()
		shared.scopes = make(map[int]core.ScopeSet)
	} else {
		shared.memd = make(map[int]*core.MEMD)
	}
	return func() network.Router { return NewCR(cfg, shared) }
}

// Config returns the router's configuration.
func (r *CR) Config() CRConfig { return r.cfg }

// Registry returns the community registry.
func (r *CR) Registry() *community.Registry { return r.shared.reg }

// History exposes the contact history (tests, trace tools).
func (r *CR) History() *core.History { return r.hist }

// IntraMI exposes the intra-community meeting-interval store.
func (r *CR) IntraMI() core.MeetingStore { return r.intraMI }

// InitialReplicas implements network.Router.
func (r *CR) InitialReplicas(*msg.Message) int { return r.cfg.Lambda }

// Init implements network.Router.
func (r *CR) Init(self *network.Node, w *network.World) {
	r.Base.Init(self, w)
	r.ownComm = r.shared.reg.Of(self.ID)
	if r.cfg.SparseEstimators {
		r.hist = core.NewSparseHistory(self.ID, w.N(), r.cfg.Window)
		mi := core.NewSharedScopeSparseMeetingStore(r.shared.scopeFor(r.ownComm))
		if r.cfg.MaxSparseRows > 0 {
			mi.SetMaxRows(r.cfg.MaxSparseRows, self.ID)
		}
		r.intraMI = mi
	} else {
		r.hist = core.NewHistory(self.ID, w.N(), r.cfg.Window)
		r.intraMI = core.NewMeetingMatrix(r.shared.reg.Members(r.ownComm))
	}
	r.contacts = make(map[int]*crContact)
}

// ContactUp implements network.Router: record the meeting and, within the
// community, refresh and exchange the intra-community MI (Algorithm 4
// lines 2–3).
func (r *CR) ContactUp(t float64, peer *network.Node) {
	r.hist.RecordContact(peer.ID, t)
	if pr, ok := peer.Router.(*CR); ok && pr.ownComm == r.ownComm {
		r.intraMI.UpdateOwnRow(r.Self.ID, t, r.hist)
		st := core.SyncMode(r.intraMI, pr.intraMI, r.Self.ID, peer.ID, r.cfg.Gossip)
		r.World.Metrics.EstimatorExchanged(st.Rows, st.Entries, st.Bytes, st.DigestBytes)
	}
	r.contacts[peer.ID] = &crContact{t0: t, decided: make(map[int]crDecision)}
}

// ContactDown implements network.Router.
func (r *CR) ContactDown(t float64, peer *network.Node) {
	r.Base.ContactDown(t, peer)
	delete(r.contacts, peer.ID)
}

func (r *CR) snapshot(st *crContact) *core.EEVSnapshot {
	if st.snap == nil {
		st.snap = r.hist.SnapshotEEV(st.t0)
	}
	return st.snap
}

// intraMEMD returns the intra-community MEMD' to dst at the contact's
// meeting time. Both storage modes cache per-contact delay maps keyed by
// destination id; unreached or uncovered destinations read +Inf either
// way (the dense map stores +Inf explicitly, the sparse map omits them).
func (r *CR) intraMEMD(st *crContact, dst int) float64 {
	if st.memd == nil {
		if r.cfg.SparseEstimators {
			calc := r.shared.smemd
			calc.Compute(r.Self.ID, st.t0, r.hist, r.intraMI)
			st.memd = make(map[int]float64)
			calc.ForEachReached(func(id int, d float64) { st.memd[id] = d })
		} else {
			mi := r.intraMI.(*core.MeetingMatrix)
			calc := r.shared.memdFor(mi.Size())
			calc.Compute(r.Self.ID, st.t0, r.hist, mi)
			st.memd = make(map[int]float64, mi.Size())
			dists := calc.Distances()
			for i, id := range mi.IDs() {
				st.memd[id] = dists[i]
			}
		}
	}
	d, ok := st.memd[dst]
	if !ok {
		return math.Inf(1)
	}
	return d
}

func (r *CR) horizon(m *msg.Message, t float64) float64 {
	res := m.ResidualTTL(t)
	if res < 0 {
		res = 0
	}
	return r.cfg.Alpha * res
}

// decide applies Algorithm 3 (inter-community) or Algorithm 4
// (intra-community) at meeting time.
func (r *CR) decide(st *crContact, peer *network.Node, pr *CR, c *msg.Copy) crDecision {
	var d crDecision
	reg := r.shared.reg
	destComm := reg.Of(c.M.To)
	peerComm := pr.ownComm
	tau := r.horizon(c.M, st.t0)

	peerSt := pr.contacts[r.Self.ID]
	if peerSt == nil {
		peerSt = &crContact{t0: st.t0, decided: map[int]crDecision{}}
	}

	if r.ownComm != destComm {
		// Inter-community routing (Algorithm 3).
		if peerComm == destComm {
			d.handAll = true
			return d
		}
		d.wSelf = r.snapshot(st).ENEC(tau, reg.Communities(), r.ownComm)
		d.wPeer = pr.snapshot(peerSt).ENEC(tau, reg.Communities(), peerComm)
		pic := r.snapshot(st).CommunityProb(tau, reg.Members(destComm))
		pjc := pr.snapshot(peerSt).CommunityProb(tau, reg.Members(destComm))
		d.forward = pic < pjc
		return d
	}
	// Intra-community routing (Algorithm 4): only members of the
	// destination community participate.
	if peerComm != r.ownComm {
		d.skip = true
		return d
	}
	members := reg.Members(r.ownComm)
	d.wSelf = r.snapshot(st).EEVSubset(tau, members)
	d.wPeer = pr.snapshot(peerSt).EEVSubset(tau, members)
	myD := r.intraMEMD(st, c.M.To)
	peerD := pr.intraMEMD(peerSt, c.M.To)
	d.forward = myD > peerD && !(math.IsInf(myD, 1) && math.IsInf(peerD, 1))
	return d
}

// NextTransfer implements network.Router (Algorithms 2–4).
func (r *CR) NextTransfer(t float64, peer *network.Node) *network.Plan {
	if p := r.DeliverDirect(t, peer); p != nil {
		return p
	}
	pr, ok := peer.Router.(*CR)
	if !ok {
		return nil
	}
	st := r.contacts[peer.ID]
	if st == nil {
		return nil
	}
	for _, c := range r.Candidates(t, peer) {
		d, seen := st.decided[c.M.ID]
		if !seen {
			d = r.decide(st, peer, pr, c)
			st.decided[c.M.ID] = d
		}
		switch {
		case d.skip:
			continue
		case d.handAll:
			return network.Forward(c)
		case c.Replicas > 1:
			if p := SplitPlan(c, QuotaShare(c.Replicas, d.wSelf, d.wPeer)); p != nil {
				return p
			}
		case d.forward:
			return network.Forward(c)
		}
	}
	return nil
}
