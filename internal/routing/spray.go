package routing

import (
	"math"

	"repro/internal/msg"
	"repro/internal/network"
)

// SprayAndWait implements Spyropoulos et al.'s binary Spray-and-Wait:
// while a copy carries more than one replica, half the quota is handed to
// each encounter; with one replica left the node waits for the
// destination.
type SprayAndWait struct {
	Base
	// Lambda is the initial replica count λ.
	Lambda int
	// Binary selects binary spraying (default true when constructed via
	// NewSprayAndWait); source spraying hands out single replicas.
	Binary bool
}

// NewSprayAndWait returns a binary Spray-and-Wait router with quota
// lambda.
func NewSprayAndWait(lambda int) *SprayAndWait {
	return &SprayAndWait{Lambda: lambda, Binary: true}
}

// InitialReplicas implements network.Router.
func (r *SprayAndWait) InitialReplicas(*msg.Message) int { return r.Lambda }

// NextTransfer implements network.Router.
func (r *SprayAndWait) NextTransfer(t float64, peer *network.Node) *network.Plan {
	if p := r.DeliverDirect(t, peer); p != nil {
		return p
	}
	for _, c := range r.Candidates(t, peer) {
		if c.Replicas <= 1 {
			continue // wait phase
		}
		give := 1
		if r.Binary {
			give = c.Replicas / 2
		}
		if p := SplitPlan(c, give); p != nil {
			return p
		}
	}
	return nil
}

// SprayAndFocus replaces the wait phase with focus (Spyropoulos et al.):
// the last replica is forwarded to encounters with fresher last-seen
// information about the destination, propagated transitively with a
// penalty — adopting a peer's timer costs TransitivityPenalty seconds, the
// scheme's stand-in for the expected transit time between the nodes.
// Without the penalty the contact-time merge would equalise both nodes'
// timers and focus would never fire.
type SprayAndFocus struct {
	Base
	// Lambda is the initial replica count λ.
	Lambda int
	// FocusThreshold is how much fresher (seconds) the peer's last-seen
	// time must be to trigger a focus forward.
	FocusThreshold float64
	// TransitivityPenalty ages timers adopted from peers (default 120 s).
	TransitivityPenalty float64

	lastSeen []float64 // most recent time each node was in contact; -Inf never
}

// NewSprayAndFocus returns a binary Spray-and-Focus router.
func NewSprayAndFocus(lambda int) *SprayAndFocus {
	return &SprayAndFocus{Lambda: lambda, TransitivityPenalty: 120}
}

// InitialReplicas implements network.Router.
func (r *SprayAndFocus) InitialReplicas(*msg.Message) int { return r.Lambda }

// Init implements network.Router.
func (r *SprayAndFocus) Init(self *network.Node, w *network.World) {
	r.Base.Init(self, w)
	r.lastSeen = make([]float64, w.N())
	for i := range r.lastSeen {
		r.lastSeen[i] = math.Inf(-1)
	}
}

// ContactUp implements network.Router: refresh the direct timer and adopt
// the peer's fresher timers (the scheme's transitive timer update).
func (r *SprayAndFocus) ContactUp(t float64, peer *network.Node) {
	r.lastSeen[peer.ID] = t
	if pr, ok := peer.Router.(*SprayAndFocus); ok {
		for k, ts := range pr.lastSeen {
			if k == r.Self.ID {
				continue
			}
			if adopted := ts - r.TransitivityPenalty; adopted > r.lastSeen[k] {
				r.lastSeen[k] = adopted
			}
		}
	}
}

// LastSeen returns the router's freshest contact time for node k (-Inf if
// never heard of).
func (r *SprayAndFocus) LastSeen(k int) float64 { return r.lastSeen[k] }

// NextTransfer implements network.Router.
func (r *SprayAndFocus) NextTransfer(t float64, peer *network.Node) *network.Plan {
	if p := r.DeliverDirect(t, peer); p != nil {
		return p
	}
	pr, _ := peer.Router.(*SprayAndFocus)
	for _, c := range r.Candidates(t, peer) {
		if c.Replicas > 1 {
			if p := SplitPlan(c, c.Replicas/2); p != nil {
				return p
			}
			continue
		}
		// Focus phase: forward to a peer with a strictly fresher view of
		// the destination.
		if pr == nil {
			continue
		}
		if pr.lastSeen[c.M.To] > r.lastSeen[c.M.To]+r.FocusThreshold {
			return network.Forward(c)
		}
	}
	return nil
}
