// Package routing implements the protocols of the paper's evaluation —
// EER and CR (the contributions) plus the EBR, MaxProp, Spray-and-Wait and
// Spray-and-Focus baselines — along with the reference protocols Epidemic,
// PRoPHET, Direct Delivery and First Contact used by tests and ablations.
//
// Protocol metadata exchange (summary vectors, MI rows, encounter values,
// delivered-acks) is modelled as free at contact setup, matching both ONE
// and the paper's cost accounting; only message transfers consume link
// bandwidth and count as relays.
package routing

import (
	"repro/internal/msg"
	"repro/internal/network"
)

// Base provides the plumbing shared by every router: node/world binding,
// default no-op hooks, candidate filtering and the per-contact no-return
// guard that stops two nodes bouncing a single-copy message back and forth
// within one contact.
type Base struct {
	Self  *network.Node
	World *network.World

	// receivedFrom maps message id -> peer id the copy arrived from, kept
	// while the contact with that peer persists.
	receivedFrom map[int]int

	// cands is the scratch slice Candidates reuses across calls: transfer
	// re-asks run once per in-range pair per tick, so a per-call allocation
	// here is constant hot-path churn. The returned slice is only valid
	// until the next Candidates call on the same router.
	cands []*msg.Copy
}

// Init implements network.Router.
func (b *Base) Init(self *network.Node, w *network.World) {
	b.Self = self
	b.World = w
	b.receivedFrom = make(map[int]int)
}

// InitialReplicas implements network.Router with a single copy.
func (b *Base) InitialReplicas(*msg.Message) int { return 1 }

// ContactUp implements network.Router as a no-op.
func (b *Base) ContactUp(float64, *network.Node) {}

// ContactDown implements network.Router, releasing no-return guards held
// for the departing peer.
func (b *Base) ContactDown(_ float64, peer *network.Node) {
	for id, from := range b.receivedFrom {
		if from == peer.ID {
			delete(b.receivedFrom, id)
		}
	}
}

// Created implements network.Router as a no-op.
func (b *Base) Created(float64, *msg.Copy) {}

// Received implements network.Router by arming the no-return guard.
func (b *Base) Received(_ float64, c *msg.Copy, from *network.Node) {
	b.receivedFrom[c.M.ID] = from.ID
}

// Sent implements network.Router as a no-op.
func (b *Base) Sent(float64, *network.Plan, *network.Node, bool) {}

// NoReturn reports whether the copy of message id was received from peer
// during the still-active contact, in which case sending it back would be
// a pure waste.
func (b *Base) NoReturn(id int, peer *network.Node) bool {
	from, ok := b.receivedFrom[id]
	return ok && from == peer.ID
}

// Sendable reports whether copy c is worth offering to peer at time t:
// not expired, not already held by the peer, not known delivered, not
// bounced straight back, and not a re-delivery.
func (b *Base) Sendable(t float64, c *msg.Copy, peer *network.Node) bool {
	m := c.M
	if m.Expired(t) {
		return false
	}
	if peer.HasCopy(m.ID) {
		return false
	}
	if b.Self.KnowsDelivered(m.ID) {
		return false
	}
	if m.To == peer.ID && peer.DeliveredHere(m.ID) {
		return false
	}
	if b.NoReturn(m.ID, peer) {
		return false
	}
	return true
}

// DeliverDirect returns a plan delivering the first buffered message
// destined to peer, or nil. Every protocol gives final-hop delivery top
// priority.
func (b *Base) DeliverDirect(t float64, peer *network.Node) *network.Plan {
	for _, c := range b.Self.Buf.All() {
		if c.M.To == peer.ID && b.Sendable(t, c, peer) {
			return network.Forward(c)
		}
	}
	return nil
}

// Candidates returns the buffered copies sendable to peer, in buffer
// (insertion) order, excluding those destined to peer (DeliverDirect
// handles them first). The result shares the router's scratch storage and
// is valid only until the next Candidates call; callers may reorder it in
// place (MaxProp sorts it) but must not retain it across contacts.
func (b *Base) Candidates(t float64, peer *network.Node) []*msg.Copy {
	out := b.cands[:0]
	for _, c := range b.Self.Buf.All() {
		if c.M.To != peer.ID && b.Sendable(t, c, peer) {
			out = append(out, c)
		}
	}
	b.cands = out
	return out
}

// PurgeKnownDelivered drops buffered copies of messages the node knows
// were delivered. Protocols with ack gossip (MaxProp) call it after
// merging ack sets.
func (b *Base) PurgeKnownDelivered() {
	buf := b.Self.Buf
	var ids []int
	for _, c := range buf.All() {
		if b.Self.KnowsDelivered(c.M.ID) {
			ids = append(ids, c.M.ID)
		}
	}
	for _, id := range ids {
		buf.Remove(id)
	}
}

// QuotaShare computes the floor split of Algorithm 1 line 10: the number
// of replicas (out of total) handed to the peer whose weight is wPeer
// against the holder's wSelf. When both weights vanish the split is even,
// a documented convention.
func QuotaShare(total int, wSelf, wPeer float64) int {
	if total < 1 {
		return 0
	}
	if wSelf <= 0 && wPeer <= 0 {
		return total / 2
	}
	share := int(float64(total) * wPeer / (wSelf + wPeer))
	if share < 0 {
		share = 0
	}
	if share > total {
		share = total
	}
	return share
}

// SplitPlan turns a quota share into a plan: nil when the share is zero, a
// full forward when the share is everything, a split otherwise.
func SplitPlan(c *msg.Copy, share int) *network.Plan {
	switch {
	case share <= 0:
		return nil
	case share >= c.Replicas:
		return network.Forward(c)
	default:
		return network.Split(c, share)
	}
}
