package routing

import (
	"testing"

	"repro/internal/network"
)

func TestSprayAndWaitBinarySplit(t *testing.T) {
	h := newHarness(t, 4, func(int) network.Router { return NewSprayAndWait(8) })
	m := h.send(0, 3, 1e6)
	if h.replicas(0, m) != 8 {
		t.Fatalf("initial quota = %d", h.replicas(0, m))
	}
	h.meet(0, 1, 3)
	if h.replicas(0, m) != 4 || h.replicas(1, m) != 4 {
		t.Fatalf("after split: %d / %d, want 4 / 4", h.replicas(0, m), h.replicas(1, m))
	}
	h.meet(1, 2, 3)
	if h.replicas(1, m) != 2 || h.replicas(2, m) != 2 {
		t.Fatalf("second split: %d / %d, want 2 / 2", h.replicas(1, m), h.replicas(2, m))
	}
}

func TestSprayAndWaitWaitPhase(t *testing.T) {
	h := newHarness(t, 3, func(int) network.Router { return NewSprayAndWait(1) })
	m := h.send(0, 2, 1e6)
	h.meet(0, 1, 3)
	if h.w.Node(1).HasCopy(m.ID) {
		t.Fatal("wait phase forwarded to a non-destination")
	}
	h.meet(0, 2, 3)
	if !h.w.Metrics.Delivered(m.ID) {
		t.Fatal("wait phase failed to deliver directly")
	}
}

func TestSprayAndWaitSourceSpray(t *testing.T) {
	h := newHarness(t, 3, func(int) network.Router {
		r := NewSprayAndWait(6)
		r.Binary = false
		return r
	})
	m := h.send(0, 2, 1e6)
	h.meet(0, 1, 3)
	if h.replicas(0, m) != 5 || h.replicas(1, m) != 1 {
		t.Fatalf("source spray: %d / %d, want 5 / 1", h.replicas(0, m), h.replicas(1, m))
	}
}

func TestSprayQuotaConserved(t *testing.T) {
	h := newHarness(t, 5, func(int) network.Router { return NewSprayAndWait(10) })
	m := h.send(0, 4, 1e6)
	h.meet(0, 1, 3)
	h.meet(1, 2, 3)
	h.meet(0, 3, 3)
	total := 0
	for i := 0; i < 4; i++ {
		total += h.replicas(i, m)
	}
	if total != 10 {
		t.Fatalf("replica total = %d, want 10 (conservation)", total)
	}
}

func TestSprayAndFocusSpraysLikeWait(t *testing.T) {
	h := newHarness(t, 3, func(int) network.Router { return NewSprayAndFocus(8) })
	m := h.send(0, 2, 1e6)
	h.meet(0, 1, 3)
	if h.replicas(0, m) != 4 || h.replicas(1, m) != 4 {
		t.Fatalf("spray phase split: %d / %d", h.replicas(0, m), h.replicas(1, m))
	}
}

func TestSprayAndFocusForwardsToFresherNode(t *testing.T) {
	h := newHarness(t, 4, func(int) network.Router { return NewSprayAndFocus(1) })
	// Node 1 meets the destination (3), so its last-seen timer for 3 is
	// fresh. Node 0 has never seen 3.
	h.meet(1, 3, 3)
	m := h.send(0, 3, 1e6)
	h.meet(0, 1, 3)
	if !h.w.Node(1).HasCopy(m.ID) {
		t.Fatal("focus did not forward to the node that saw the destination")
	}
	if h.w.Node(0).HasCopy(m.ID) {
		t.Fatal("focus forward must relinquish the sender copy")
	}
}

func TestSprayAndFocusHoldsAgainstStaleNode(t *testing.T) {
	h := newHarness(t, 4, func(int) network.Router { return NewSprayAndFocus(1) })
	// Node 0 itself saw the destination recently; node 1 never did.
	h.meet(0, 3, 3)
	m := h.send(0, 3, 1e6)
	h.meet(0, 1, 3)
	if h.w.Node(1).HasCopy(m.ID) {
		t.Fatal("focus forwarded away from the fresher holder")
	}
	_ = m
}

func TestSprayAndFocusTransitivityPenalty(t *testing.T) {
	// Node 0 saw the destination directly (staler); node 2 only knows of
	// it transitively via node 1. With a huge penalty the transitive
	// knowledge is discounted below 0's direct timer and the copy stays;
	// with no penalty it moves.
	run := func(penalty float64) bool {
		h := newHarness(t, 4, func(int) network.Router {
			r := NewSprayAndFocus(1)
			r.TransitivityPenalty = penalty
			return r
		})
		h.meet(0, 3, 3) // 0's direct (stale) sighting
		h.meet(1, 3, 3) // 1 sees 3 later
		h.meet(1, 2, 3) // 2 adopts transitively
		m := h.send(0, 3, 1e6)
		h.meet(0, 2, 3)
		return h.w.Node(2).HasCopy(m.ID)
	}
	if run(1e9) {
		t.Error("huge penalty: copy moved on transitive knowledge")
	}
	// A small penalty keeps transitive knowledge usable while preventing
	// the zero-penalty degenerate case where the contact-time merge
	// equalises both timers and focus can never fire.
	if !run(2) {
		t.Error("small penalty: copy failed to follow fresher knowledge")
	}
}
