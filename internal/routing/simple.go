package routing

import (
	"repro/internal/network"
)

// Epidemic floods: every contact receives a copy of every message it does
// not hold (Vahdat & Becker). The delivery-ratio ceiling and goodput floor
// of the comparison.
type Epidemic struct {
	Base
}

// NewEpidemic returns an epidemic router.
func NewEpidemic() *Epidemic { return &Epidemic{} }

// NextTransfer implements network.Router.
func (r *Epidemic) NextTransfer(t float64, peer *network.Node) *network.Plan {
	if p := r.DeliverDirect(t, peer); p != nil {
		return p
	}
	for _, c := range r.Candidates(t, peer) {
		return network.Replicate(c)
	}
	return nil
}

// Direct delivers only on contact with the destination — the single-copy
// lower bound.
type Direct struct {
	Base
}

// NewDirect returns a direct-delivery router.
func NewDirect() *Direct { return &Direct{} }

// NextTransfer implements network.Router.
func (r *Direct) NextTransfer(t float64, peer *network.Node) *network.Plan {
	return r.DeliverDirect(t, peer)
}

// FirstContact forwards its single copy to the first encountered node
// (Jain et al.'s zero-knowledge single-copy scheme).
type FirstContact struct {
	Base
}

// NewFirstContact returns a first-contact router.
func NewFirstContact() *FirstContact { return &FirstContact{} }

// NextTransfer implements network.Router.
func (r *FirstContact) NextTransfer(t float64, peer *network.Node) *network.Plan {
	if p := r.DeliverDirect(t, peer); p != nil {
		return p
	}
	for _, c := range r.Candidates(t, peer) {
		return network.Forward(c)
	}
	return nil
}
