package routing

import (
	"testing"

	"repro/internal/network"
)

func TestProphetDirectAndTransitive(t *testing.T) {
	h := newHarness(t, 4, func(int) network.Router { return NewProphet() })
	h.meet(0, 1, 3)
	r0 := h.w.Node(0).Router.(*Prophet)
	now := h.runner.Now()
	if p := r0.P(now, 1); p < 0.5 {
		t.Fatalf("P(0,1) after meeting = %g, want >= PInit-ish", p)
	}
	// Transitive: 1 meets 2, then 0 re-meets 1 and picks up P(0,2) > 0.
	h.meet(1, 2, 3)
	h.meet(0, 1, 3)
	if p := r0.P(h.runner.Now(), 2); p <= 0 {
		t.Fatalf("transitive P(0,2) = %g, want > 0", p)
	}
}

func TestProphetAging(t *testing.T) {
	h := newHarness(t, 2, func(int) network.Router { return NewProphet() })
	h.meet(0, 1, 3)
	r0 := h.w.Node(0).Router.(*Prophet)
	early := r0.P(h.runner.Now(), 1)
	h.runner.Run(h.runner.Now() + 600)
	late := r0.P(h.runner.Now(), 1)
	if late >= early {
		t.Errorf("P did not age: %g -> %g", early, late)
	}
}

func TestProphetReplicatesTowardHigherP(t *testing.T) {
	h := newHarness(t, 4, func(int) network.Router { return NewProphet() })
	h.meet(1, 3, 3) // node 1 knows the destination
	m := h.send(0, 3, 1e6)
	h.meet(0, 1, 3)
	if !h.w.Node(1).HasCopy(m.ID) {
		t.Fatal("PRoPHET did not replicate toward higher P")
	}
	if !h.w.Node(0).HasCopy(m.ID) {
		t.Fatal("PRoPHET replication must keep the sender copy")
	}
	// Reverse direction: a peer with no knowledge gets nothing.
	m2 := h.send(1, 3, 1e6)
	h.meet(1, 2, 3)
	if h.w.Node(2).HasCopy(m2.ID) {
		t.Fatal("PRoPHET replicated toward a lower P")
	}
}

func TestEBREncounterValueUpdates(t *testing.T) {
	h := newHarness(t, 3, func(int) network.Router { return NewEBR(10) })
	r0 := h.w.Node(0).Router.(*EBR)
	if r0.EV() != 0 {
		t.Fatal("initial EV not zero")
	}
	h.meet(0, 1, 3)
	h.meet(0, 2, 3)
	// Let a window interval (30 s) elapse so CWC folds into EV.
	h.runner.Run(h.runner.Now() + 35)
	if r0.EV() <= 0 {
		t.Fatalf("EV after two encounters = %g, want > 0", r0.EV())
	}
}

func TestEBRSplitsTowardHigherEV(t *testing.T) {
	h := newHarness(t, 6, func(int) network.Router { return NewEBR(10) })
	// Node 1 racks up encounters; node 0 stays idle.
	for k := 0; k < 4; k++ {
		h.meet(1, 3, 1)
		h.meet(1, 4, 1)
		h.meet(1, 5, 1)
	}
	h.runner.Run(h.runner.Now() + 35) // fold the window
	m := h.send(0, 2, 1e6)
	h.meet(0, 1, 3)
	r0, r1 := h.replicas(0, m), h.replicas(1, m)
	if r0+r1 != 10 {
		t.Fatalf("quota not conserved: %d + %d", r0, r1)
	}
	if r1 <= r0 {
		t.Errorf("EBR split %d/%d, want more to the higher-EV node", r0, r1)
	}
}

func TestEBRWaitPhaseHolds(t *testing.T) {
	h := newHarness(t, 3, func(int) network.Router { return NewEBR(1) })
	m := h.send(0, 2, 1e6)
	h.meet(0, 1, 5)
	if h.w.Node(1).HasCopy(m.ID) {
		t.Fatal("EBR forwarded its last replica to a non-destination")
	}
	h.meet(0, 2, 3)
	if !h.w.Metrics.Delivered(m.ID) {
		t.Fatal("EBR failed direct delivery")
	}
}

func TestEBRNeverRelinquishesLastReplicaInSpray(t *testing.T) {
	h := newHarness(t, 3, func(int) network.Router { return NewEBR(2) })
	// Peer 1 has a huge EV; holder 0 has zero. floor(2·EV1/(EV0+EV1)) = 2
	// would hand everything over; EBR caps at Mk-1.
	for k := 0; k < 6; k++ {
		h.meet(1, 2, 1)
	}
	h.runner.Run(h.runner.Now() + 35)
	m := h.send(0, 2, 1e6) // dest 2; but meeting with 1 first
	h.meet(0, 1, 3)
	if h.replicas(0, m) < 1 {
		t.Fatal("EBR sprayed away its last replica")
	}
	if h.replicas(0, m)+h.replicas(1, m) != 2 {
		t.Fatal("quota not conserved")
	}
}

func maxPropHarness(t *testing.T, n int) *harness {
	f := MaxPropFactory(n, false, 0, 0)
	return newHarness(t, n, func(int) network.Router { return f() })
}

func TestMaxPropMeetingProbabilities(t *testing.T) {
	for _, sparse := range []bool{false, true} {
		f := MaxPropFactory(4, sparse, 0, 0)
		h := newHarness(t, 4, func(int) network.Router { return f() })
		// Increment-then-renormalise (Burgess et al.): after (0,1), (0,2),
		// (0,1) the vector is [0.75, 0.25].
		h.meet(0, 1, 3)
		h.meet(0, 2, 3)
		h.meet(0, 1, 3)
		r0 := h.w.Node(0).Router.(*MaxProp)
		p1, p2 := r0.Prob(1), r0.Prob(2)
		if p1 <= p2 {
			t.Errorf("sparse=%v: P(1)=%g should exceed P(2)=%g after more meetings", sparse, p1, p2)
		}
		sum := 0.0
		for v := 0; v < 4; v++ {
			sum += r0.Prob(v)
		}
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("sparse=%v: probabilities sum to %g, want 1", sparse, sum)
		}
	}
}

func TestMaxPropReplicates(t *testing.T) {
	h := maxPropHarness(t, 3)
	m := h.send(0, 2, 1e6)
	h.meet(0, 1, 3)
	if !h.w.Node(1).HasCopy(m.ID) || !h.w.Node(0).HasCopy(m.ID) {
		t.Fatal("MaxProp should replicate like epidemic")
	}
}

func TestMaxPropAckPurge(t *testing.T) {
	h := maxPropHarness(t, 4)
	m := h.send(0, 2, 1e6)
	h.meet(0, 1, 3) // 1 holds a copy now
	h.meet(0, 2, 3) // 0 delivers; 0 and 2 learn the ack
	if !h.w.Metrics.Delivered(m.ID) {
		t.Fatal("not delivered")
	}
	if !h.w.Node(1).HasCopy(m.ID) {
		t.Fatal("setup: node 1 should still hold a copy")
	}
	h.meet(1, 2, 3) // ack gossips from 2 to 1; 1 purges
	if h.w.Node(1).HasCopy(m.ID) {
		t.Fatal("MaxProp ack did not purge the dead copy")
	}
	if s := h.w.Metrics.Summary(); s.Relays != 2 {
		t.Errorf("relays = %d, want 2 (copy + delivery, no dead forwarding)", s.Relays)
	}
}

func TestMaxPropCostFavorsKnownPath(t *testing.T) {
	h := maxPropHarness(t, 4)
	h.meet(0, 1, 3)
	h.meet(1, 2, 3)
	h.meet(0, 1, 3) // 0 learns 1's vector
	r0 := h.w.Node(0).Router.(*MaxProp)
	if c := r0.Cost(2); c >= 1e17 {
		t.Errorf("cost to reachable node = %g, want finite", c)
	}
	if c := r0.Cost(3); c < 1e17 {
		t.Errorf("cost to unknown node = %g, want +Inf", c)
	}
}

func TestQuotaShare(t *testing.T) {
	cases := []struct {
		total        int
		wSelf, wPeer float64
		want         int
	}{
		{10, 1, 1, 5},
		{10, 0, 0, 5},  // even-split convention
		{10, 3, 1, 2},  // floor(10/4)
		{10, 0, 5, 10}, // all to peer
		{10, 5, 0, 0},
		{1, 1, 1, 0}, // floor(0.5)
		{0, 1, 1, 0},
	}
	for _, c := range cases {
		if got := QuotaShare(c.total, c.wSelf, c.wPeer); got != c.want {
			t.Errorf("QuotaShare(%d, %g, %g) = %d, want %d", c.total, c.wSelf, c.wPeer, got, c.want)
		}
	}
}

func TestSplitPlanShapes(t *testing.T) {
	h := newHarness(t, 2, func(int) network.Router { return NewDirect() })
	m := h.send(0, 1, 1e6)
	c := h.w.Node(0).Copy(m.ID)
	c.Replicas = 10
	if p := SplitPlan(c, 0); p != nil {
		t.Error("zero share should be nil")
	}
	if p := SplitPlan(c, 10); p.KeepAfter != 0 || p.Give != 10 {
		t.Errorf("full share plan = %+v", p)
	}
	if p := SplitPlan(c, 4); p.Give != 4 || p.KeepAfter != 6 {
		t.Errorf("split plan = %+v", p)
	}
}
