package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// A nil profiler must be inert: every method callable, zero results.
func TestNilProfilerIsSafe(t *testing.T) {
	var p *EngineProf
	st := p.Start()
	if st != 0 {
		t.Fatalf("nil Start = %d, want 0", st)
	}
	if got := p.Lap(PhaseMobility, st); got != 0 {
		t.Fatalf("nil Lap = %d, want 0", got)
	}
	p.TickDone()
	p.Exchange(st)
	p.EnsureShards(4)
	p.AddShardBusy(0, 100)
	if p.Timing() != nil {
		t.Fatal("nil Timing() should be nil")
	}
}

func TestPhaseStrings(t *testing.T) {
	seen := map[string]bool{}
	for ph := Phase(0); ph < NumPhases; ph++ {
		name := ph.String()
		if name == "" || strings.HasPrefix(name, "phase(") {
			t.Fatalf("phase %d has no name", ph)
		}
		if seen[name] {
			t.Fatalf("duplicate phase name %q", name)
		}
		seen[name] = true
	}
	if got := Phase(99).String(); got != "phase(99)" {
		t.Fatalf("out-of-range String = %q", got)
	}
	if n := len(PhaseNames()); n != int(NumPhases) {
		t.Fatalf("PhaseNames len = %d, want %d", n, NumPhases)
	}
}

func TestProfilerAccumulatesAndSnapshots(t *testing.T) {
	p := &EngineProf{}
	p.EnsureShards(2)
	for i := 0; i < 3; i++ {
		st := p.Start()
		st = p.Lap(PhaseMobility, st)
		p.Lap(PhaseScan, st)
		p.TickDone()
	}
	p.Exchange(Now() - 1e6) // book ~1ms of exchange
	p.AddShardBusy(0, 5e6)
	p.AddShardBusy(1, 3e6)
	p.AddShardBusy(7, 1e6) // out of range: dropped

	tm := p.Timing()
	if tm.Runs != 1 || tm.Ticks != 3 {
		t.Fatalf("runs/ticks = %d/%d, want 1/3", tm.Runs, tm.Ticks)
	}
	if len(tm.Phases) != int(NumPhases) {
		t.Fatalf("phases len = %d, want %d", len(tm.Phases), NumPhases)
	}
	if c := tm.Phases[PhaseMobility].Count; c != 3 {
		t.Fatalf("mobility count = %d, want 3", c)
	}
	if tm.ExchangeCount != 1 || tm.ExchangeSeconds <= 0 {
		t.Fatalf("exchange = %d / %v", tm.ExchangeCount, tm.ExchangeSeconds)
	}
	if len(tm.ShardBusySeconds) != 2 || tm.ShardBusySeconds[0] < tm.ShardBusySeconds[1] {
		t.Fatalf("shard busy = %v", tm.ShardBusySeconds)
	}
	var sum float64
	for _, ph := range tm.Phases {
		sum += ph.Seconds
	}
	if math.Abs(sum-tm.Seconds) > 1e-9 {
		t.Fatalf("Seconds %v != phase sum %v", tm.Seconds, sum)
	}
}

func TestMergeTiming(t *testing.T) {
	if MergeTiming(nil, nil) != nil {
		t.Fatal("merge of nils should be nil")
	}
	a := &Timing{Runs: 1, Ticks: 10, Seconds: 2,
		Phases:          []PhaseTiming{{Phase: "mobility", Seconds: 2, Count: 10}},
		ExchangeSeconds: 0.5, ExchangeCount: 4, ShardBusySeconds: []float64{1, 2}}
	b := &Timing{Runs: 2, Ticks: 5, Seconds: 1,
		Phases:          []PhaseTiming{{Phase: "mobility", Seconds: 0.5, Count: 5}, {Phase: "scan", Seconds: 0.5, Count: 5}},
		ExchangeSeconds: 0.25, ExchangeCount: 2, ShardBusySeconds: []float64{1, 1, 1}}
	m := MergeTiming(a, b)
	if m.Runs != 3 || m.Ticks != 15 || m.Seconds != 3 {
		t.Fatalf("merged header = %+v", m)
	}
	if m.PhaseSeconds("mobility") != 2.5 || m.PhaseSeconds("scan") != 0.5 {
		t.Fatalf("merged phases = %+v", m.Phases)
	}
	if m.ExchangeCount != 6 || m.ExchangeSeconds != 0.75 {
		t.Fatalf("merged exchange = %+v", m)
	}
	want := []float64{2, 3, 1}
	for i, s := range m.ShardBusySeconds {
		if s != want[i] {
			t.Fatalf("merged shard busy = %v, want %v", m.ShardBusySeconds, want)
		}
	}
	// One-sided merge copies rather than aliases.
	one := MergeTiming(a, nil)
	one.Phases[0].Seconds = 99
	if a.Phases[0].Seconds == 99 {
		t.Fatal("merge aliased input phase slice")
	}
}

func TestReport(t *testing.T) {
	tm := &Timing{Runs: 2, Ticks: 100, Seconds: 1.5,
		Phases: []PhaseTiming{
			{Phase: "mobility", Seconds: 1.0, Count: 100},
			{Phase: "scan", Seconds: 0.5, Count: 100},
			{Phase: "merge"}, // zero: omitted from the table
		},
		ExchangeSeconds: 0.1, ExchangeCount: 42,
		ShardBusySeconds: []float64{0.7, 0.5}}
	var sb strings.Builder
	tm.Report(&sb)
	out := sb.String()
	for _, want := range []string{"mobility", "scan", "66.7%", "routing exchange", "imbalance"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "merge") {
		t.Fatalf("report should omit zero phases:\n%s", out)
	}
	var nb strings.Builder
	(*Timing)(nil).Report(&nb)
	if !strings.Contains(nb.String(), "not profiled") {
		t.Fatalf("nil report = %q", nb.String())
	}
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 || h.Count() != 5 {
		t.Fatalf("count = %d", s.Count)
	}
	wantCounts := []int64{1, 2, 1, 1}
	for i, c := range s.Counts {
		if c != wantCounts[i] {
			t.Fatalf("counts = %v, want %v", s.Counts, wantCounts)
		}
	}
	if math.Abs(s.Sum-5.605) > 1e-9 {
		t.Fatalf("sum = %v", s.Sum)
	}
	// Boundary value lands in its own bucket (le is inclusive).
	h2 := NewHistogram([]float64{1, 2})
	h2.Observe(1)
	if s2 := h2.Snapshot(); s2.Counts[0] != 1 {
		t.Fatalf("boundary obs fell in bucket %v", s2.Counts)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(DefaultDurationBuckets())
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%50) / 1000)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	var bucketSum int64
	for _, c := range s.Counts {
		bucketSum += c
	}
	if bucketSum != workers*per {
		t.Fatalf("bucket sum = %d, want %d", bucketSum, workers*per)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{0.1, 0.2, 0.4})
	for i := 0; i < 100; i++ {
		h.Observe(0.15) // all in (0.1, 0.2]
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); q <= 0.1 || q > 0.2 {
		t.Fatalf("p50 = %v, want within (0.1, 0.2]", q)
	}
	h.Observe(9) // +Inf bucket
	if q := h.Snapshot().Quantile(1.0); q != 0.4 {
		t.Fatalf("p100 with overflow = %v, want last bound", q)
	}
	if q := (HistogramSnapshot{Bounds: []float64{1}, Counts: []int64{0, 0}}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
}

func TestNewHistogramValidates(t *testing.T) {
	for _, bad := range [][]float64{{2, 1}, {1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewHistogram(%v) did not panic", bad)
				}
			}()
			NewHistogram(bad)
		}()
	}
}

func BenchmarkDisabledLap(b *testing.B) {
	var p *EngineProf
	st := p.Start()
	for i := 0; i < b.N; i++ {
		st = p.Lap(PhaseMobility, st)
	}
}

func BenchmarkEnabledLap(b *testing.B) {
	p := &EngineProf{}
	st := p.Start()
	for i := 0; i < b.N; i++ {
		st = p.Lap(PhaseMobility, st)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(DefaultDurationBuckets())
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.042)
		}
	})
}
