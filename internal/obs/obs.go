// Package obs is the engine's in-line instrumentation layer: monotonic
// phase timers and atomic counters cheap enough to leave on in
// production-shaped runs, with a disabled fast path that costs a nil
// check per phase boundary.
//
// The design contract is bit-neutrality: profiling observes wall time
// only and never touches simulation state, so a profiled run produces
// byte-identical summaries (minus the timing block itself) to an
// unprofiled one. The content-addressed result cache depends on this —
// timing is stripped before results are persisted (see
// experiment.CellResultOf).
//
// Two halves live here:
//
//   - EngineProf / Timing: per-tick phase breakdown for the simulation
//     engine (serial, sharded and scripted tick paths), per-shard busy
//     time for imbalance detection, and routing-exchange timing.
//   - Histogram: a fixed-bucket atomic histogram for the service layer
//     (HTTP request duration, queue wait), rendered by the daemon in
//     Prometheus text format.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Phase identifies one segment of engine work. The serial tick path
// populates Mobility..Expiry; the sharded path additionally attributes
// its serial reconciliation loops to Merge; the scripted (trace-replay)
// path books contact dispatch under Script; Events is the discrete
// event queue drained between ticks by sim.Runner.
type Phase int

const (
	PhaseEvents   Phase = iota // discrete event queue (traffic, TTL, departures)
	PhaseMobility              // node position advance
	PhaseRebucket              // spatial-grid cell updates for moved nodes
	PhaseScan                  // neighbourhood scan for candidate pairs
	PhasePairs                 // due-pair wheel checks and verdicts
	PhaseLinks                 // active-link distance sweep
	PhaseContacts              // contact establishment + router callbacks
	PhaseExpiry                // buffer TTL expiry sweep
	PhaseMerge                 // sharded mode: serial reconciliation between parallel phases
	PhaseScript                // trace replay: scripted contact dispatch
	NumPhases
)

var phaseNames = [NumPhases]string{
	"events", "mobility", "rebucket", "scan", "pairs", "links",
	"contacts", "expiry", "merge", "script",
}

func (p Phase) String() string {
	if p < 0 || p >= NumPhases {
		return fmt.Sprintf("phase(%d)", int(p))
	}
	return phaseNames[p]
}

// PhaseNames lists the phase labels in enum order (for metric families).
func PhaseNames() []string { return append([]string(nil), phaseNames[:]...) }

// epoch anchors Now: time.Since carries the monotonic clock reading, so
// phase laps are immune to wall-clock steps.
var epoch = time.Now()

// Now returns monotonic nanoseconds since process start. Exported so
// callers that need custom spans (per-shard busy time) share the
// profiler's clock.
func Now() int64 { return int64(time.Since(epoch)) }

// EngineProf accumulates phase time for one engine run. All fields are
// atomics: the sharded tick path records per-shard busy time from worker
// goroutines while the coordinating goroutine laps phases.
//
// The nil receiver is the disabled state: every method is nil-safe and
// returns immediately, so instrumented code holds a possibly-nil
// *EngineProf and calls through unconditionally.
type EngineProf struct {
	phaseNanos [NumPhases]atomic.Int64
	phaseCount [NumPhases]atomic.Int64
	ticks      atomic.Int64
	exchNanos  atomic.Int64 // router contact callbacks (estimator gossip)
	exchCount  atomic.Int64
	shardBusy  []atomic.Int64 // per-shard worker busy nanos (sharded mode)
}

// Start opens a lap window; pass the result to Lap. Returns 0 when
// disabled.
func (p *EngineProf) Start() int64 {
	if p == nil {
		return 0
	}
	return Now()
}

// Lap books the time since start under ph and returns a fresh start for
// the next phase. No-op when disabled.
func (p *EngineProf) Lap(ph Phase, start int64) int64 {
	if p == nil {
		return 0
	}
	now := Now()
	p.phaseNanos[ph].Add(now - start)
	p.phaseCount[ph].Add(1)
	return now
}

// TickDone counts one completed engine tick.
func (p *EngineProf) TickDone() {
	if p == nil {
		return
	}
	p.ticks.Add(1)
}

// Exchange books one routing-exchange span (router ContactUp/ContactDown
// callbacks — where estimator gossip happens). The span is nested inside
// whatever phase is being lapped; Timing reports it as a separate
// "of which" line rather than an additional phase.
func (p *EngineProf) Exchange(start int64) {
	if p == nil {
		return
	}
	p.exchNanos.Add(Now() - start)
	p.exchCount.Add(1)
}

// EnsureShards sizes the per-shard busy table. Called once at world
// construction; not safe concurrently with AddShardBusy.
func (p *EngineProf) EnsureShards(n int) {
	if p == nil || n <= len(p.shardBusy) {
		return
	}
	grown := make([]atomic.Int64, n)
	for i := range p.shardBusy {
		grown[i].Store(p.shardBusy[i].Load())
	}
	p.shardBusy = grown
}

// AddShardBusy books worker busy nanos against shard i (out-of-range
// indices are dropped rather than grown — sizing is EnsureShards's job).
func (p *EngineProf) AddShardBusy(i int, nanos int64) {
	if p == nil || i < 0 || i >= len(p.shardBusy) {
		return
	}
	p.shardBusy[i].Add(nanos)
}

// Timing snapshots the accumulated profile. Safe to call while the
// engine runs (the snapshot is merely approximately consistent then);
// callers normally take it once after the run completes.
func (p *EngineProf) Timing() *Timing {
	if p == nil {
		return nil
	}
	t := &Timing{
		Runs:   1,
		Ticks:  p.ticks.Load(),
		Phases: make([]PhaseTiming, NumPhases),
	}
	for i := 0; i < int(NumPhases); i++ {
		s := float64(p.phaseNanos[i].Load()) / 1e9
		t.Phases[i] = PhaseTiming{Phase: Phase(i).String(), Seconds: s, Count: p.phaseCount[i].Load()}
		t.Seconds += s
	}
	t.ExchangeSeconds = float64(p.exchNanos.Load()) / 1e9
	t.ExchangeCount = p.exchCount.Load()
	if len(p.shardBusy) > 0 {
		t.ShardBusySeconds = make([]float64, len(p.shardBusy))
		for i := range p.shardBusy {
			t.ShardBusySeconds[i] = float64(p.shardBusy[i].Load()) / 1e9
		}
	}
	return t
}

// PhaseTiming is one phase's share of a Timing block.
type PhaseTiming struct {
	Phase   string  `json:"phase"`
	Seconds float64 `json:"seconds"`
	Count   int64   `json:"count,omitempty"`
}

// Timing is the wire/report form of an engine profile: the per-run
// phase breakdown attached to metrics.Summary (and stripped before
// results enter the content-addressed cache). Merging is associative,
// so per-seed timings fold into a per-job block and job blocks into a
// figures-run block.
type Timing struct {
	Runs    int     `json:"runs"`    // engine runs merged into this block
	Ticks   int64   `json:"ticks"`   // engine ticks across those runs
	Seconds float64 `json:"seconds"` // total measured phase time

	// Phases holds every phase in enum order, zeros included, so merged
	// blocks align by index and reports are shape-stable.
	Phases []PhaseTiming `json:"phases"`

	// Exchange time is nested inside the contacts/links/script phases
	// (router ContactUp/Down callbacks), reported as an "of which" line.
	ExchangeSeconds float64 `json:"exchange_seconds"`
	ExchangeCount   int64   `json:"exchange_count,omitempty"`

	// ShardBusySeconds is per-shard worker busy time (sharded runs
	// only) — the imbalance lens: max/mean > ~1.2 means uneven shards.
	ShardBusySeconds []float64 `json:"shard_busy_seconds,omitempty"`
}

// MergeTiming folds two timing blocks (either may be nil) into a new
// one. Phase lists align by name so blocks from different code versions
// still merge; shard busy tables align by index.
func MergeTiming(a, b *Timing) *Timing {
	if a == nil && b == nil {
		return nil
	}
	out := &Timing{}
	for _, t := range []*Timing{a, b} {
		if t == nil {
			continue
		}
		out.Runs += t.Runs
		out.Ticks += t.Ticks
		out.Seconds += t.Seconds
		out.ExchangeSeconds += t.ExchangeSeconds
		out.ExchangeCount += t.ExchangeCount
		for _, ph := range t.Phases {
			idx := -1
			for i := range out.Phases {
				if out.Phases[i].Phase == ph.Phase {
					idx = i
					break
				}
			}
			if idx < 0 {
				out.Phases = append(out.Phases, PhaseTiming{Phase: ph.Phase})
				idx = len(out.Phases) - 1
			}
			out.Phases[idx].Seconds += ph.Seconds
			out.Phases[idx].Count += ph.Count
		}
		for i, s := range t.ShardBusySeconds {
			if i >= len(out.ShardBusySeconds) {
				out.ShardBusySeconds = append(out.ShardBusySeconds, make([]float64, i+1-len(out.ShardBusySeconds))...)
			}
			out.ShardBusySeconds[i] += s
		}
	}
	return out
}

// PhaseSeconds returns the booked seconds for the named phase (0 when
// absent).
func (t *Timing) PhaseSeconds(name string) float64 {
	if t == nil {
		return 0
	}
	for _, ph := range t.Phases {
		if ph.Phase == name {
			return ph.Seconds
		}
	}
	return 0
}

// Report renders the block as an aligned human-readable table: phase
// seconds, share of measured time, and per-tick cost; then the exchange
// "of which" line and — for sharded runs — the busy-time imbalance.
func (t *Timing) Report(w io.Writer) {
	if t == nil {
		fmt.Fprintln(w, "timing: not profiled")
		return
	}
	fmt.Fprintf(w, "engine phase breakdown — %d run(s), %d ticks, %.3f s measured\n", t.Runs, t.Ticks, t.Seconds)
	fmt.Fprintf(w, "  %-10s %10s %7s %12s\n", "phase", "seconds", "share", "per-tick")
	for _, ph := range t.Phases {
		if ph.Count == 0 && ph.Seconds == 0 {
			continue
		}
		share := 0.0
		if t.Seconds > 0 {
			share = 100 * ph.Seconds / t.Seconds
		}
		perTick := "-"
		if t.Ticks > 0 {
			perTick = time.Duration(ph.Seconds / float64(t.Ticks) * 1e9).Round(100 * time.Nanosecond).String()
		}
		fmt.Fprintf(w, "  %-10s %10.3f %6.1f%% %12s\n", ph.Phase, ph.Seconds, share, perTick)
	}
	if t.ExchangeCount > 0 || t.ExchangeSeconds > 0 {
		fmt.Fprintf(w, "  of which routing exchange: %.3f s over %d contacts\n", t.ExchangeSeconds, t.ExchangeCount)
	}
	if n := len(t.ShardBusySeconds); n > 0 {
		var sum, max float64
		for _, s := range t.ShardBusySeconds {
			sum += s
			if s > max {
				max = s
			}
		}
		// Serial runs size the table but never book busy time into it;
		// only report when sharded workers actually ran.
		if max > 0 {
			mean := sum / float64(n)
			fmt.Fprintf(w, "  shard busy: %d shards, mean %.3f s, max %.3f s (imbalance %.2fx)\n", n, mean, max, max/mean)
		}
	}
}

// Histogram is a fixed-bucket atomic histogram: lock-free Observe, read
// via Snapshot. Buckets follow the Prometheus convention — counts[i]
// holds observations <= bounds[i], with one overflow bucket (+Inf) at
// the end.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is +Inf
	sumBits atomic.Uint64  // float64 bits, CAS-accumulated
	total   atomic.Int64
}

// DefaultDurationBuckets spans 1 ms to 30 s — the service's request and
// queue-wait latencies.
func DefaultDurationBuckets() []float64 {
	return []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}
}

// NewHistogram builds a histogram over the given strictly ascending
// upper bounds (the +Inf bucket is implicit).
func NewHistogram(bounds []float64) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram bounds must be ascending")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] == bounds[i-1] {
			panic("obs: duplicate histogram bound")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Count returns the number of observations so far.
func (h *Histogram) Count() int64 { return h.total.Load() }

// HistogramSnapshot is a consistent-enough point-in-time read of a
// Histogram (bucket counts may trail total by in-flight observations).
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds; the +Inf bucket is Counts[len(Bounds)]
	Counts []int64   // per-bucket (non-cumulative) counts
	Sum    float64
	Count  int64
}

// Snapshot reads the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Sum:    math.Float64frombits(h.sumBits.Load()),
		Count:  h.total.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (0..1) by linear interpolation
// within the containing bucket. Observations in the +Inf bucket pin the
// estimate to the last finite bound. Returns 0 for an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	var total int64
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if float64(cum) >= rank {
			if i >= len(s.Bounds) {
				return s.Bounds[len(s.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			if c == 0 {
				return hi
			}
			frac := (rank - float64(cum-c)) / float64(c)
			return lo + frac*(hi-lo)
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}
