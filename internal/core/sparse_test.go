package core

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

// twinHistories drives a dense and a sparse history through an identical
// pseudo-random contact schedule and returns both.
func twinHistories(t *testing.T, self, n int, contacts int, seed int64) (*History, *History) {
	t.Helper()
	dense := NewHistory(self, n, 0)
	sparse := NewSparseHistory(self, n, 0)
	rng := xrand.New(seed)
	now := 0.0
	for i := 0; i < contacts; i++ {
		now += rng.Uniform(1, 50)
		peer := rng.Intn(n - 1)
		if peer >= self {
			peer++
		}
		dense.RecordContact(peer, now)
		sparse.RecordContact(peer, now)
	}
	return dense, sparse
}

// TestSparseHistoryParity: every estimator of Theorems 1, 2 and 4 must be
// bit-identical between the dense and the sparse storage mode.
func TestSparseHistoryParity(t *testing.T) {
	const n = 24
	dense, sparse := twinHistories(t, 3, n, 400, 7)
	if !sparse.Sparse() || dense.Sparse() {
		t.Fatal("storage modes mislabeled")
	}
	if dense.MetCount() != sparse.MetCount() {
		t.Fatalf("MetCount %d vs %d", dense.MetCount(), sparse.MetCount())
	}
	at := 2100.0
	members := []int{1, 2, 5, 9, 23}
	communities := [][]int{{0, 1, 2}, {3, 4, 5}, {6, 7, 8, 9}, {20, 21, 22, 23}}
	for _, tau := range []float64{0, 5, 60, 600, 1e6} {
		if d, s := dense.EEV(at, tau), sparse.EEV(at, tau); d != s {
			t.Fatalf("EEV(tau=%g): dense %v sparse %v", tau, d, s)
		}
		if d, s := dense.EEVSubset(at, tau, members), sparse.EEVSubset(at, tau, members); d != s {
			t.Fatalf("EEVSubset(tau=%g): dense %v sparse %v", tau, d, s)
		}
		if d, s := dense.CommunityProb(at, tau, members), sparse.CommunityProb(at, tau, members); d != s {
			t.Fatalf("CommunityProb(tau=%g): dense %v sparse %v", tau, d, s)
		}
		if d, s := dense.ENEC(at, tau, communities, 1), sparse.ENEC(at, tau, communities, 1); d != s {
			t.Fatalf("ENEC(tau=%g): dense %v sparse %v", tau, d, s)
		}
	}
	for peer := 0; peer < n; peer++ {
		if peer == 3 {
			continue
		}
		if d, s := dense.Met(peer), sparse.Met(peer); d != s {
			t.Fatalf("Met(%d): dense %v sparse %v", peer, d, s)
		}
		if d, s := dense.IntervalCount(peer), sparse.IntervalCount(peer); d != s {
			t.Fatalf("IntervalCount(%d): dense %v sparse %v", peer, d, s)
		}
		dm, dok := dense.MeanInterval(peer)
		sm, sok := sparse.MeanInterval(peer)
		if dm != sm || dok != sok {
			t.Fatalf("MeanInterval(%d): dense %v,%v sparse %v,%v", peer, dm, dok, sm, sok)
		}
		de, deok := dense.EMD(peer, at)
		se, seok := sparse.EMD(peer, at)
		if de != se || deok != seok {
			t.Fatalf("EMD(%d): dense %v,%v sparse %v,%v", peer, de, deok, se, seok)
		}
		if d, s := dense.EncounterProb(peer, at, 40), sparse.EncounterProb(peer, at, 40); d != s {
			t.Fatalf("EncounterProb(%d): dense %v sparse %v", peer, d, s)
		}
	}
}

// TestSparseSnapshotParity: the meeting-time snapshot must answer exactly
// like the dense one, including the overdue and met-without-interval
// conventions, and recycled sparse snapshots must stay correct.
func TestSparseSnapshotParity(t *testing.T) {
	const n = 16
	dense, sparse := twinHistories(t, 0, n, 250, 11)
	// One extra first-time meeting: met but no interval => probability 0.
	dense.RecordContact(15, 9000)
	sparse.RecordContact(15, 9000)
	var sp EEVSnapshot
	for _, at := range []float64{9001, 9100, 12000} {
		ds := dense.SnapshotEEV(at)
		ss := sparse.SnapshotEEVInto(at, &sp) // recycled across at values
		for _, tau := range []float64{0, 3, 47, 900, 1e5} {
			if d, s := ds.EEV(tau), ss.EEV(tau); d != s {
				t.Fatalf("snapshot EEV(at=%g, tau=%g): dense %v sparse %v", at, tau, d, s)
			}
			for peer := 0; peer < n; peer++ {
				if d, s := ds.Prob(peer, tau), ss.Prob(peer, tau); d != s {
					t.Fatalf("snapshot Prob(%d, tau=%g) at %g: dense %v sparse %v", peer, tau, at, d, s)
				}
			}
			members := []int{2, 3, 7, 15}
			if d, s := ds.CommunityProb(tau, members), ss.CommunityProb(tau, members); d != s {
				t.Fatalf("snapshot CommunityProb: dense %v sparse %v", d, s)
			}
		}
	}
}

// TestSparseMeetingStoreContract mirrors the dense matrix tests against
// the sparse implementation.
func TestSparseMeetingStoreContract(t *testing.T) {
	var m MeetingStore = NewSparseMeetingStore(3)
	if m.Size() != 3 {
		t.Fatalf("Size = %d, want 3", m.Size())
	}
	if v := m.Interval(0, 1); !math.IsInf(v, 1) {
		t.Errorf("fresh interval = %g, want +Inf", v)
	}
	if v := m.Interval(1, 1); v != 0 {
		t.Errorf("diagonal = %g, want 0", v)
	}
	if u := m.RowUpdated(0); u != -1 {
		t.Errorf("fresh RowUpdated = %g, want -1", u)
	}
	h := NewSparseHistory(0, 3, 0)
	h.RecordContact(1, 10)
	h.RecordContact(1, 40) // mean 30
	m.UpdateOwnRow(0, 40, h)
	if v := m.Interval(0, 1); v != 30 {
		t.Errorf("Interval(0,1) = %g, want 30", v)
	}
	if v := m.Interval(0, 2); !math.IsInf(v, 1) {
		t.Errorf("Interval(0,2) = %g, want +Inf", v)
	}
	if u := m.RowUpdated(0); u != 40 {
		t.Errorf("RowUpdated = %g, want 40", u)
	}
	if m.KnownRows() != 1 {
		t.Errorf("KnownRows = %d, want 1", m.KnownRows())
	}
}

// TestSparseScopedStore checks the CR usage: scope restriction and
// out-of-scope peers ignored on row refresh.
func TestSparseScopedStore(t *testing.T) {
	m := NewScopedSparseMeetingStore([]int{3, 7, 9})
	if m.Size() != 3 {
		t.Fatalf("Size = %d, want 3", m.Size())
	}
	if m.Covers(5) {
		t.Error("Covers(5) should be false")
	}
	if v := m.Interval(3, 5); !math.IsInf(v, 1) {
		t.Errorf("uncovered Interval = %g, want +Inf", v)
	}
	h := NewSparseHistory(7, 10, 0)
	h.RecordContact(9, 0)
	h.RecordContact(9, 50)
	h.RecordContact(2, 1) // outside the store scope; must be ignored
	h.RecordContact(2, 2)
	m.UpdateOwnRow(7, 50, h)
	if v := m.Interval(7, 9); v != 50 {
		t.Errorf("Interval(7,9) = %g, want 50", v)
	}
	if v := m.Interval(7, 2); !math.IsInf(v, 1) {
		t.Errorf("out-of-scope entry leaked: %g", v)
	}
}

// TestSyncSparseFreshness mirrors TestMergeFreshness for the sparse store,
// through the interface-level Sync.
func TestSyncSparseFreshness(t *testing.T) {
	a := NewSparseMeetingStore(2)
	b := NewSparseMeetingStore(2)
	ha := NewSparseHistory(0, 2, 0)
	ha.RecordContact(1, 0)
	ha.RecordContact(1, 20)
	a.UpdateOwnRow(0, 20, ha)

	hb := NewSparseHistory(1, 2, 0)
	hb.RecordContact(0, 0)
	hb.RecordContact(0, 30)
	b.UpdateOwnRow(1, 30, hb)

	Sync(a, b)
	if v := a.Interval(1, 0); v != 30 {
		t.Errorf("a learned Interval(1,0) = %g, want 30", v)
	}
	if v := b.Interval(0, 1); v != 20 {
		t.Errorf("b learned Interval(0,1) = %g, want 20", v)
	}
	if a.KnownRows() != 2 || b.KnownRows() != 2 {
		t.Errorf("KnownRows after sync = %d, %d; want 2, 2", a.KnownRows(), b.KnownRows())
	}

	// A staler copy must not overwrite a fresher row.
	stale := NewSparseMeetingStore(2)
	hs := NewSparseHistory(1, 2, 0)
	hs.RecordContact(0, 0)
	hs.RecordContact(0, 5)
	stale.UpdateOwnRow(1, 5, hs)
	Sync(a, stale)
	if v := a.Interval(1, 0); v != 30 {
		t.Errorf("row overwritten by stale merge: %g", v)
	}
}

// denseSparseWorld builds the same gossiped MI state in both storage
// modes from one pseudo-random meeting schedule and returns, per node, the
// histories and stores.
func denseSparseWorld(t *testing.T, n, meetings int, seed int64) (dh, sh []*History, dm []*MeetingMatrix, sm []*SparseMeetingStore, now float64) {
	t.Helper()
	dh = make([]*History, n)
	sh = make([]*History, n)
	dm = make([]*MeetingMatrix, n)
	sm = make([]*SparseMeetingStore, n)
	for i := 0; i < n; i++ {
		dh[i] = NewHistory(i, n, 0)
		sh[i] = NewSparseHistory(i, n, 0)
		dm[i] = NewFullMeetingMatrix(n)
		sm[i] = NewSparseMeetingStore(n)
	}
	rng := xrand.New(seed)
	for k := 0; k < meetings; k++ {
		now += rng.Uniform(1, 30)
		a := rng.Intn(n)
		b := rng.Intn(n - 1)
		if b >= a {
			b++
		}
		for _, p := range [2][2]int{{a, b}, {b, a}} {
			u, v := p[0], p[1]
			dh[u].RecordContact(v, now)
			sh[u].RecordContact(v, now)
			dm[u].UpdateOwnRow(u, now, dh[u])
			sm[u].UpdateOwnRow(u, now, sh[u])
		}
		SyncPair(dm[a], dm[b])
		SyncSparse(sm[a], sm[b])
	}
	return dh, sh, dm, sm, now
}

// TestSparseMEMDMatchesDense: Theorem-3 delays from the sparse heap
// Dijkstra must be bit-identical to the dense fused Dijkstra over the
// equivalent MD matrix, for every source and destination of a gossiped
// random world.
func TestSparseMEMDMatchesDense(t *testing.T) {
	const n = 14
	dh, sh, dm, sm, now := denseSparseWorld(t, n, 300, 5)
	at := now + 13
	denseCalc := NewMEMD(n)
	sparseCalc := NewSparseMEMD()
	for src := 0; src < n; src++ {
		denseCalc.Compute(src, at, dh[src], dm[src])
		sparseCalc.Compute(src, at, sh[src], sm[src])
		for dst := 0; dst < n; dst++ {
			d, s := denseCalc.Delay(dst), sparseCalc.Delay(dst)
			if d != s && !(math.IsInf(d, 1) && math.IsInf(s, 1)) {
				t.Fatalf("MEMD(%d→%d): dense %v sparse %v", src, dst, d, s)
			}
		}
		if got := sparseCalc.Delay(99); !math.IsInf(got, 1) {
			t.Fatalf("uncovered destination delay = %v, want +Inf", got)
		}
	}
}

// TestSparseMEMDStoreOnlyMatchesDenseA2: the MEED-style ablation path
// (every row from MI, including the holder's) must also match the dense
// all-from-MI matrix computation.
func TestSparseMEMDStoreOnlyMatchesDenseA2(t *testing.T) {
	const n = 10
	_, _, dm, sm, _ := denseSparseWorld(t, n, 200, 9)
	sparseCalc := NewSparseMEMD()
	for src := 0; src < n; src++ {
		// Dense A2 reference: dense Dijkstra over w[i][j] = MI(i,j).
		w := make([][]float64, n)
		for i := 0; i < n; i++ {
			w[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				w[i][j] = dm[src].Interval(i, j)
			}
		}
		dist := make([]float64, n)
		denseDijkstraRef(w, src, dist)
		sparseCalc.ComputeStoreOnly(src, sm[src])
		for dst := 0; dst < n; dst++ {
			d, s := dist[dst], sparseCalc.Delay(dst)
			if d != s && !(math.IsInf(d, 1) && math.IsInf(s, 1)) {
				t.Fatalf("A2 MEMD(%d→%d): dense %v sparse %v", src, dst, d, s)
			}
		}
	}
}

// denseDijkstraRef is a plain reference Dijkstra over a dense matrix (no
// dependency on the graph package from core's tests).
func denseDijkstraRef(w [][]float64, src int, dist []float64) {
	n := len(w)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	for {
		u, best := -1, math.Inf(1)
		for v := 0; v < n; v++ {
			if !done[v] && dist[v] < best {
				u, best = v, dist[v]
			}
		}
		if u < 0 {
			return
		}
		done[u] = true
		for v := 0; v < n; v++ {
			if ew := w[u][v]; v != u && ew > 0 && !math.IsInf(ew, 1) {
				if nd := best + ew; nd < dist[v] {
					dist[v] = nd
				}
			}
		}
	}
}

// TestSparseRowOps covers the shared sparse-row machinery MaxProp builds
// on.
func TestSparseRowOps(t *testing.T) {
	var r SparseRow
	r.Set(7, 1)
	r.Set(2, 2)
	r.Set(11, 3)
	r.Set(7, 4) // overwrite
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	var order []int
	r.ForEach(func(peer int, v float64) { order = append(order, peer) })
	if order[0] != 2 || order[1] != 7 || order[2] != 11 {
		t.Fatalf("not ascending: %v", order)
	}
	if v, ok := r.Get(7); !ok || v != 4 {
		t.Fatalf("Get(7) = %v,%v want 4,true", v, ok)
	}
	if _, ok := r.Get(3); ok {
		t.Fatal("Get(3) should miss")
	}
	if s := r.Sum(); s != 9 {
		t.Fatalf("Sum = %g, want 9", s)
	}
	r.Div(2)
	if v, _ := r.Get(2); v != 1 {
		t.Fatalf("Div lost: %g", v)
	}
}

// TestSparseDijkstraBoundedHeap sanity-checks that unreached vertices stay
// absent: the result set is bounded by the recorded contact graph, never
// the network size.
func TestSparseDijkstraBoundedHeap(t *testing.T) {
	d := NewSparseDijkstra()
	edges := map[int][][2]float64{ // u -> (v, w)
		0: {{1, 5}, {2, 1}},
		2: {{1, 2}},
	}
	d.Run(0, func(u int, relax func(v int, w float64)) {
		for _, e := range edges[u] {
			relax(int(e[0]), e[1])
		}
	})
	if v, ok := d.Dist(1); !ok || v != 3 {
		t.Fatalf("Dist(1) = %v,%v want 3", v, ok)
	}
	reached := 0
	d.ForEachReached(func(v int, dist float64) { reached++ })
	if reached != 3 { // 0, 1, 2 — nothing else materialised
		t.Fatalf("reached %d vertices, want 3", reached)
	}
}

// fillRow publishes a single-entry row owned by id at freshness t into s.
func fillRow(s *SparseRows, id int, t float64) {
	r := s.Ensure(id)
	r.Reset()
	r.Append((id+1)%1000, 1)
	r.Updated = t
}

// TestSparseRowsCapEviction: a capped row set evicts the stalest rows
// first, never the pinned own row, and merges respect the cap.
func TestSparseRowsCapEviction(t *testing.T) {
	s := NewSparseRows()
	s.SetCap(3, 7)
	fillRow(s, 7, 5) // own row, pinned despite being stale

	// Learn rows via merge, fresher than the own row.
	o := NewSparseRows()
	for i, tm := range map[int]float64{1: 10, 2: 20, 3: 30} {
		fillRow(o, i, tm)
	}
	st := s.MergeFresher(o)
	if st.Rows != 3 || st.Entries != 3 {
		t.Fatalf("merge stats = %+v, want 3 rows / 3 entries", st)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (cap)", s.Len())
	}
	// The stalest learned row (id 1, t=10) was evicted; the pinned stale
	// own row survived.
	if s.Row(1) != nil {
		t.Error("stalest row 1 not evicted")
	}
	if s.Row(7) == nil {
		t.Error("pinned own row evicted")
	}
	if s.Row(2) == nil || s.Row(3) == nil {
		t.Error("fresher rows evicted")
	}

	// A fresher incoming row displaces the now-stalest resident (id 2).
	o2 := NewSparseRows()
	fillRow(o2, 4, 40)
	s.MergeFresher(o2)
	if s.Row(2) != nil {
		t.Error("stalest row 2 not evicted on over-cap merge")
	}
	if s.Row(4) == nil {
		t.Error("fresh row 4 not retained")
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3 after second merge", s.Len())
	}

	// Ties on freshness evict the smaller owner id, deterministically.
	tie := NewSparseRows()
	tie.SetCap(1, -1)
	src := NewSparseRows()
	fillRow(src, 5, 50)
	fillRow(src, 6, 50)
	tie.MergeFresher(src)
	if tie.Len() != 1 || tie.Row(6) == nil {
		t.Errorf("tie eviction kept wrong row (len=%d)", tie.Len())
	}
}

// TestSparseMeetingStoreMaxRows: the MeetingStore-level cap keeps the own
// row queryable and bounds StoredRows.
func TestSparseMeetingStoreMaxRows(t *testing.T) {
	const n = 10
	s := NewSparseMeetingStore(n)
	s.SetMaxRows(2, 0)
	h := NewSparseHistory(0, n, 0)
	h.RecordContact(1, 10)
	h.RecordContact(1, 30)
	s.UpdateOwnRow(0, 30, h)

	o := NewSparseMeetingStore(n)
	oh := NewSparseHistory(3, n, 0)
	oh.RecordContact(4, 5)
	oh.RecordContact(4, 25)
	o.UpdateOwnRow(3, 40, oh)
	oh.RecordContact(5, 45)
	SyncSparse(s, o)
	if s.StoredRows() != 2 {
		t.Fatalf("StoredRows = %d, want 2", s.StoredRows())
	}
	if s.Interval(0, 1) != 20 {
		t.Errorf("own row entry lost: %g", s.Interval(0, 1))
	}
	// A fresher third row evicts node 3's, not the pinned own row.
	o2 := NewSparseMeetingStore(n)
	o2h := NewSparseHistory(6, n, 0)
	o2h.RecordContact(7, 10)
	o2h.RecordContact(7, 20)
	o2.UpdateOwnRow(6, 50, o2h)
	SyncSparse(s, o2)
	if s.Interval(0, 1) != 20 {
		t.Errorf("own row evicted: %g", s.Interval(0, 1))
	}
	if s.RowUpdated(3) != -1 {
		t.Errorf("stale row 3 survived the cap (updated %g)", s.RowUpdated(3))
	}
	if s.RowUpdated(6) != 50 {
		t.Errorf("fresh row 6 missing (updated %g)", s.RowUpdated(6))
	}
}
