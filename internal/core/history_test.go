package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// historyWith returns a 2-node history for node 0 whose contacts with node
// 1 happened at the given times.
func historyWith(t *testing.T, times ...float64) *History {
	t.Helper()
	h := NewHistory(0, 2, 0)
	for _, ts := range times {
		h.RecordContact(1, ts)
	}
	return h
}

func TestRecordContactIntervals(t *testing.T) {
	h := historyWith(t, 100, 110, 130, 160, 200)
	got := h.Intervals(1)
	want := []float64{10, 20, 30, 40}
	if len(got) != len(want) {
		t.Fatalf("intervals = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("intervals = %v, want %v", got, want)
		}
	}
	if r := h.IntervalCount(1); r != 4 {
		t.Errorf("IntervalCount = %d, want 4", r)
	}
	if last, ok := h.LastContact(1); !ok || last != 200 {
		t.Errorf("LastContact = %v, %v; want 200, true", last, ok)
	}
	if mean, ok := h.MeanInterval(1); !ok || mean != 25 {
		t.Errorf("MeanInterval = %v, %v; want 25, true", mean, ok)
	}
}

func TestHistoryNeverMet(t *testing.T) {
	h := NewHistory(0, 3, 0)
	if h.Met(1) || h.Met(2) {
		t.Fatal("fresh history claims contacts")
	}
	if p := h.EncounterProb(1, 10, 100); p != 0 {
		t.Errorf("EncounterProb never met = %g, want 0", p)
	}
	if _, ok := h.EMD(1, 10); ok {
		t.Error("EMD for never-met peer should report !ok")
	}
	if v := h.EEV(10, 100); v != 0 {
		t.Errorf("EEV with no contacts = %g, want 0", v)
	}
}

func TestHistoryMetOnceNoInterval(t *testing.T) {
	h := historyWith(t, 100)
	// One meeting gives a last-contact time but no interval: probability 0
	// (empty R), EMD unavailable.
	if p := h.EncounterProb(1, 150, 1000); p != 0 {
		t.Errorf("EncounterProb with empty window = %g, want 0", p)
	}
	if _, ok := h.EMD(1, 150); ok {
		t.Error("EMD with empty window should report !ok")
	}
}

// TestTheorem1Worked pins the worked example of Theorem 1: intervals
// {10,20,30,40}, last contact at 200.
func TestTheorem1Worked(t *testing.T) {
	h := historyWith(t, 100, 110, 130, 160, 200)
	cases := []struct {
		t, tau float64
		want   float64
	}{
		// elapsed 15 -> M = {20,30,40}; tau 10 -> Mτ = {20}.
		{215, 10, 1.0 / 3},
		// elapsed 15, tau 25 -> Mτ = {20,30,40}? 15+25=40 inclusive -> all 3.
		{215, 25, 1},
		// elapsed 0 -> M = all 4; tau 10 -> {10}.
		{200, 10, 1.0 / 4},
		// elapsed 5, tau 4 -> bound 9 < 10: none.
		{205, 4, 0},
		// elapsed 5, tau 5 -> bound 10, inclusive: {10}.
		{205, 5, 1.0 / 3 * 0}, // placeholder, replaced below
	}
	cases[4].want = 1.0 / 4 // M = {10,20,30,40} (Δt > 5), Mτ = {10}
	for _, c := range cases {
		if got := h.EncounterProb(1, c.t, c.tau); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("EncounterProb(t=%g, tau=%g) = %g, want %g", c.t, c.tau, got, c.want)
		}
	}
}

func TestTheorem1Overdue(t *testing.T) {
	h := historyWith(t, 100, 110, 130, 160, 200)
	// elapsed 45 exceeds every interval: overdue -> probability 1.
	if got := h.EncounterProb(1, 245, 1); got != 1 {
		t.Errorf("overdue EncounterProb = %g, want 1", got)
	}
	// tau <= 0 is never a positive-probability horizon.
	if got := h.EncounterProb(1, 245, 0); got != 0 {
		t.Errorf("EncounterProb with tau=0 = %g, want 0", got)
	}
}

// TestTheorem2Worked pins the worked example of Theorem 2.
func TestTheorem2Worked(t *testing.T) {
	h := historyWith(t, 100, 110, 130, 160, 200)
	// t=215: elapsed 15, M = {20,30,40}, EMD = 30 - 15 = 15.
	if got, ok := h.EMD(1, 215); !ok || math.Abs(got-15) > 1e-12 {
		t.Errorf("EMD(215) = %g, %v; want 15, true", got, ok)
	}
	// t=200 (just met): EMD = mean of all = 25.
	if got, ok := h.EMD(1, 200); !ok || math.Abs(got-25) > 1e-12 {
		t.Errorf("EMD(200) = %g, %v; want 25, true", got, ok)
	}
	// Overdue (elapsed 45): falls back to the unconditioned mean 25.
	if got, ok := h.EMD(1, 245); !ok || math.Abs(got-25) > 1e-12 {
		t.Errorf("overdue EMD = %g, %v; want 25, true", got, ok)
	}
}

// TestTheorem2PeriodicExample pins the paper's motivating example: two
// nodes meeting every Δt; half-way through the period the expected delay
// is Δt/2, not the average interval Δt.
func TestTheorem2PeriodicExample(t *testing.T) {
	h := NewHistory(0, 2, 0)
	for ts := 0.0; ts <= 1000; ts += 100 {
		h.RecordContact(1, ts)
	}
	got, ok := h.EMD(1, 1050)
	if !ok || math.Abs(got-50) > 1e-12 {
		t.Errorf("EMD at half-period = %g, %v; want 50, true", got, ok)
	}
}

func TestSlidingWindowEviction(t *testing.T) {
	h := NewHistory(0, 2, 3)
	for _, ts := range []float64{0, 10, 30, 60, 100} { // intervals 10,20,30,40
		h.RecordContact(1, ts)
	}
	got := h.Intervals(1)
	want := []float64{20, 30, 40} // oldest interval evicted
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("windowed intervals = %v, want %v", got, want)
	}
}

func TestRecordContactPanicsBackwards(t *testing.T) {
	h := historyWith(t, 100)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-monotonic contact time")
		}
	}()
	h.RecordContact(1, 50)
}

func TestEEVSumsPeers(t *testing.T) {
	h := NewHistory(0, 4, 0)
	// Peer 1: intervals {10,20}; last at 100.
	for _, ts := range []float64{70, 80, 100} {
		h.RecordContact(1, ts)
	}
	// Peer 2: intervals {40}; last at 100.
	for _, ts := range []float64{60, 100} {
		h.RecordContact(2, ts)
	}
	// Peer 3: never met.
	// At t=100 (elapsed 0 for both), tau=15: peer1 {10} of {10,20} = 1/2,
	// peer2 {} of {40} = 0.
	if got := h.EEV(100, 15); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("EEV = %g, want 0.5", got)
	}
	// tau=40: peer1 2/2, peer2 1/1 -> 2.
	if got := h.EEV(100, 40); math.Abs(got-2) > 1e-12 {
		t.Errorf("EEV = %g, want 2", got)
	}
	// Subset excluding peer 1.
	if got := h.EEVSubset(100, 40, []int{0, 2, 3}); math.Abs(got-1) > 1e-12 {
		t.Errorf("EEVSubset = %g, want 1", got)
	}
}

// TestTheorem4Worked pins ENEC on a hand-computed example.
func TestTheorem4Worked(t *testing.T) {
	h := NewHistory(0, 5, 0)
	// Peers 1,2 in community B; peers 3,4 in community C.
	for _, ts := range []float64{80, 100} { // interval 20
		h.RecordContact(1, ts)
	}
	for _, ts := range []float64{50, 100} { // interval 50
		h.RecordContact(2, ts)
	}
	for _, ts := range []float64{90, 100} { // interval 10
		h.RecordContact(3, ts)
	}
	// Peer 4 never met.
	communities := [][]int{{0}, {1, 2}, {3, 4}}
	// tau=25 at t=100: p1 = 1 (20<=25 of {20}), p2 = 0, p3 = 1.
	// P(B) = 1-(1-1)(1-0) = 1; P(C) = 1-(1-1)(1-0) = 1. ENEC = 2.
	if got := h.ENEC(100, 25, communities, 0); math.Abs(got-2) > 1e-12 {
		t.Errorf("ENEC = %g, want 2", got)
	}
	// tau=15: p1=0, p2=0, p3=1 -> P(B)=0, P(C)=1 -> ENEC=1.
	if got := h.ENEC(100, 15, communities, 0); math.Abs(got-1) > 1e-12 {
		t.Errorf("ENEC = %g, want 1", got)
	}
	// Own community excluded from the sum.
	if got := h.ENEC(100, 15, communities, 2); math.Abs(got-0) > 1e-12 {
		t.Errorf("ENEC excluding own = %g, want 0", got)
	}
	// CommunityProb of C with only peer 3 counting.
	if got := h.CommunityProb(100, 15, []int{3, 4}); math.Abs(got-1) > 1e-12 {
		t.Errorf("CommunityProb = %g, want 1", got)
	}
}

// randomHistory builds a history with random contact sequences for
// property tests.
func randomHistory(seed int64, n int) (*History, float64) {
	rng := xrand.New(seed)
	h := NewHistory(0, n, 1+rng.Intn(16))
	now := 0.0
	for j := 1; j < n; j++ {
		if rng.Bool(0.2) {
			continue // some peers never met
		}
		t := rng.Uniform(0, 100)
		contacts := rng.Intn(20)
		for k := 0; k <= contacts; k++ {
			h.RecordContact(j, t)
			t += rng.Uniform(0.1, 200)
		}
		if t > now {
			now = t
		}
	}
	return h, now + 1
}

func TestPropEncounterProbInUnitRange(t *testing.T) {
	f := func(seed int64, tau float64) bool {
		h, now := randomHistory(seed, 6)
		tau = math.Mod(math.Abs(tau), 500)
		for j := 1; j < 6; j++ {
			p := h.EncounterProb(j, now, tau)
			if p < 0 || p > 1 || math.IsNaN(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropEncounterProbMonotoneInTau(t *testing.T) {
	f := func(seed int64, a, b float64) bool {
		h, now := randomHistory(seed, 6)
		a = math.Mod(math.Abs(a), 500)
		b = math.Mod(math.Abs(b), 500)
		if a > b {
			a, b = b, a
		}
		for j := 1; j < 6; j++ {
			if h.EncounterProb(j, now, a) > h.EncounterProb(j, now, b)+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropEEVBounded(t *testing.T) {
	f := func(seed int64, tau float64) bool {
		h, now := randomHistory(seed, 8)
		tau = math.Mod(math.Abs(tau), 1000)
		v := h.EEV(now, tau)
		return v >= 0 && v <= 7 && !math.IsNaN(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropEMDPositive(t *testing.T) {
	f := func(seed int64, dt float64) bool {
		h, now := randomHistory(seed, 6)
		at := now + math.Mod(math.Abs(dt), 300)
		for j := 1; j < 6; j++ {
			if d, ok := h.EMD(j, at); ok && (d < MinDelay || math.IsNaN(d)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropENECBoundedByCommunities(t *testing.T) {
	f := func(seed int64, tau float64) bool {
		h, now := randomHistory(seed, 9)
		tau = math.Mod(math.Abs(tau), 1000)
		communities := [][]int{{0, 1, 2}, {3, 4}, {5, 6}, {7, 8}}
		v := h.ENEC(now, tau, communities, 0)
		return v >= 0 && v <= 3 && !math.IsNaN(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropCommunityProbDominatesMembers(t *testing.T) {
	f := func(seed int64, tau float64) bool {
		h, now := randomHistory(seed, 7)
		tau = math.Mod(math.Abs(tau), 1000)
		members := []int{2, 3, 4}
		cp := h.CommunityProb(now, tau, members)
		for _, j := range members {
			if cp < h.EncounterProb(j, now, tau)-1e-12 {
				return false
			}
		}
		return cp <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
