package core

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// MEMD computes minimum expected meeting delays (Theorem 3). At a contact,
// the holding node builds the MD matrix — its own row from Theorem-2 EMDs,
// every other row approximated by the gossiped MI averages (Section
// III-B.2) — and runs Dijkstra from itself. One computation yields the MEMD
// to every destination, so routers reuse a single Compute per contact for
// all buffered messages.
//
// The MD matrix is scratch space reused across computations; only the MI
// matrix persists per node.
//
// This is the dense half of the Theorem-3 machinery: O(n²) per contact
// over a *MeetingMatrix, fastest at figure scale. SparseMEMD (sparse.go)
// computes bit-identical delays over any MeetingStore in O(E log V) on the
// recorded contact graph, which is what city-scale worlds use.
type MEMD struct {
	size    int
	md      [][]float64 // row headers handed to Dijkstra
	selfRow []float64   // scratch for the holder's Theorem-2 row
	dist    []float64
	scratch []int32 // Dijkstra unvisited-list scratch

	// State of the last Compute, consulted by Delay.
	index map[int]int
	valid bool
}

// NewMEMD returns a calculator for matrices of the given size.
func NewMEMD(size int) *MEMD {
	m := &MEMD{size: size}
	m.md = make([][]float64, size)
	m.selfRow = make([]float64, size)
	m.dist = make([]float64, size)
	m.scratch = make([]int32, size+1)
	return m
}

// Compute builds the MD matrix for node self at time t from its history and
// MI, and runs dense Dijkstra from self. Subsequent Delay calls answer from
// the result.
func (m *MEMD) Compute(self int, t float64, h *History, mi *MeetingMatrix) {
	if mi.Size() != m.size {
		panic(fmt.Sprintf("core: MEMD size %d does not match MI size %d", m.size, mi.Size()))
	}
	selfIdx, ok := mi.Index(self)
	if !ok {
		panic(fmt.Sprintf("core: node %d not covered by MI", self))
	}
	ids := mi.IDs()
	// Own row: elapsed-time-conditioned EMDs (Theorem 2).
	row := m.selfRow
	for j, id := range ids {
		if j == selfIdx {
			row[j] = 0
			continue
		}
		if d, got := h.EMD(id, t); got {
			row[j] = d
		} else {
			row[j] = Unknown
		}
	}
	// Other rows: the MI averages stand in for EMDs the node cannot
	// observe (the I_jk substitution of Section III-B.2). Dijkstra only
	// reads the matrix, so the MI rows are shared by header instead of
	// copied — the former n-squared copy per contact dominated MaxProp-
	// and EER-style computations at scale.
	for i := range m.md {
		m.md[i] = mi.rows[i]
	}
	m.md[selfIdx] = row
	graph.DenseDijkstraScratch(m.md, selfIdx, m.dist, m.scratch)
	m.index = mi.idx
	m.valid = true
}

// Delay returns the minimum expected meeting delay from the node of the
// last Compute to global node dst. It returns +Inf for unreachable or
// uncovered destinations, and panics if Compute was never called.
func (m *MEMD) Delay(dst int) float64 {
	if !m.valid {
		panic("core: MEMD.Delay before Compute")
	}
	j, ok := m.index[dst]
	if !ok {
		return math.Inf(1)
	}
	return m.dist[j]
}

// Distances returns the raw distance vector of the last Compute, indexed by
// MI-local index (shared; do not mutate).
func (m *MEMD) Distances() []float64 {
	if !m.valid {
		panic("core: MEMD.Distances before Compute")
	}
	return m.dist
}
