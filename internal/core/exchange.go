package core

import "fmt"

// This file is the delta/digest gossip layer over the freshness merge of
// Algorithm 1 line 4. The paper's exchange is semantic: two encountering
// nodes end up with the element-wise fresher rows. How many bytes that
// costs depends on the wire protocol, and this layer meters three:
//
//   - ExchangeFresher: the repository's historical accounting — only the
//     rows that actually replace the receiver's are counted, and the
//     freshness negotiation itself is treated as free. An optimistic
//     lower bound kept as the default so long-standing figure baselines
//     stay comparable.
//   - ExchangeFlood: each side transmits every published row it holds and
//     the receiver keeps the fresher ones — what a naive implementation
//     (and MaxProp's original "flooded vectors" description) would put on
//     the air. The honest upper baseline for savings claims.
//   - ExchangeDelta: anti-entropy. Each store counts local row mutations
//     (version), stamps each row with the version of its last mutation,
//     and remembers the version as of the end of its last sync with each
//     peer. A sync first trades digests — one (owner, freshness stamp)
//     entry per row mutated since the peers last met — then each side
//     requests and receives exactly the advertised rows that beat its
//     own. First meetings degenerate to a full digest (the watermark is
//     zero), and a capped store that evicted rows since the last sync
//     makes its peer fall back to a full digest too (tracked by an
//     eviction generation), because an evicted row must be re-offered
//     even though its sender never re-mutated it.
//
// All three modes apply the identical fresher-wins merge — routing state,
// and therefore every simulation outcome except the gossip byte counters,
// is mode-independent. For delta this needs the watermark soundness
// argument: after two stores delta-sync, their row stamps agree on every
// row (both end with the element-wise max, exactly as a full sync), so a
// row one side holds strictly fresher at the *next* sync must have mutated
// there in between — and rows mutated since the last sync are precisely
// what the digest advertises. Cap evictions are the one way a store can
// fall behind without the invariant noticing, which the eviction
// generation fallback closes. exchange_test.go pins the equivalence, and
// the scenario-level suite pins dense == sparse == delta at summary level.

// ExchangeMode selects the metered wire protocol of estimator syncs.
type ExchangeMode uint8

const (
	// ExchangeFresher meters replaced rows only (legacy accounting).
	ExchangeFresher ExchangeMode = iota
	// ExchangeFlood meters full row-set transmission both ways.
	ExchangeFlood
	// ExchangeDelta meters digest round-trip + requested rows only.
	ExchangeDelta
)

// ParseExchangeMode maps the scenario-level gossip mode names; the empty
// string selects the historical default.
func ParseExchangeMode(s string) (ExchangeMode, error) {
	switch s {
	case "", "fresher":
		return ExchangeFresher, nil
	case "flood":
		return ExchangeFlood, nil
	case "delta":
		return ExchangeDelta, nil
	}
	return 0, fmt.Errorf("core: unknown gossip mode %q (want fresher, flood or delta)", s)
}

// String returns the spec-level name of the mode.
func (m ExchangeMode) String() string {
	switch m {
	case ExchangeFlood:
		return "flood"
	case ExchangeDelta:
		return "delta"
	default:
		return "fresher"
	}
}

// SyncMode merges two stores of the same implementation into the
// element-wise fresher rows, metering the exchange under the given mode.
// aID and bID are the global node ids of the stores' owners (the keys of
// the per-peer delta watermarks). Mixing implementations panics: a world
// runs one storage mode.
func SyncMode(a, b MeetingStore, aID, bID int, mode ExchangeMode) ExchangeStats {
	switch x := a.(type) {
	case *MeetingMatrix:
		return SyncPairMode(x, b.(*MeetingMatrix), aID, bID, mode)
	case *SparseMeetingStore:
		return SyncRowsMode(x.rows, b.(*SparseMeetingStore).rows, aID, bID, mode)
	default:
		panic(fmt.Sprintf("core: SyncMode over unknown MeetingStore implementation %T", a))
	}
}

// --- dense ---

// SyncPairMode is SyncPair with metered-mode selection.
func SyncPairMode(a, b *MeetingMatrix, aID, bID int, mode ExchangeMode) ExchangeStats {
	switch mode {
	case ExchangeFlood:
		var st ExchangeStats
		st.Add(a.floodVolume())
		st.Add(b.floodVolume())
		a.Merge(b)
		b.Merge(a)
		return st
	case ExchangeDelta:
		return syncPairDelta(a, b, aID, bID)
	default:
		return SyncPair(a, b)
	}
}

// floodVolume is the cost of transmitting every published row.
func (m *MeetingMatrix) floodVolume() ExchangeStats {
	var st ExchangeStats
	for i, u := range m.updated {
		if u >= 0 {
			st.AddRow(knownEntries(m.rows[i], i))
		}
	}
	return st
}

// advertised counts and sizes the rows a delta digest to the peer with
// watermark seen carries: published rows mutated since the peers last
// met, each costing a varint (owner, stamp) entry.
func (m *MeetingMatrix) advertised(seen uint64) (rows, payloadBytes int) {
	for i, u := range m.updated {
		if u >= 0 && m.rowVer[i] > seen {
			rows++
			payloadBytes += DigestEntryLen(m.ids[i], u)
		}
	}
	return rows, payloadBytes
}

// mergeDelta is Merge restricted to the rows other advertised (mutated
// past otherSeen). The dense matrix never evicts, so the watermark alone
// is sound and there is no full-digest fallback beyond seen == 0.
func (m *MeetingMatrix) mergeDelta(other *MeetingMatrix, otherSeen uint64) ExchangeStats {
	if len(m.ids) != len(other.ids) {
		panic("core: merging meeting matrices over different node sets")
	}
	var st ExchangeStats
	for i := range m.ids {
		if m.ids[i] != other.ids[i] {
			panic("core: merging meeting matrices over different node sets")
		}
		if other.updated[i] < 0 || other.rowVer[i] <= otherSeen {
			continue
		}
		if other.updated[i] > m.updated[i] {
			copy(m.rows[i], other.rows[i])
			m.updated[i] = other.updated[i]
			m.version++
			m.rowVer[i] = m.version
			st.AddRow(knownEntries(m.rows[i], i))
		}
	}
	return st
}

func syncPairDelta(a, b *MeetingMatrix, aID, bID int) ExchangeStats {
	aSeen, bSeen := a.seen[bID], b.seen[aID]
	var st ExchangeStats
	st.AddDigest(a.advertised(aSeen))
	st.AddDigest(b.advertised(bSeen))
	// Same sequential direction order as SyncPair: a absorbs b's rows
	// first, then b reads a's merged state. Rows a just learned carry a
	// fresh stamp past aSeen but equal freshness, so they never re-ship.
	fwd := a.mergeDelta(b, bSeen)
	back := b.mergeDelta(a, aSeen)
	st.Add(fwd)
	st.Add(back)
	st.AddRequests(fwd.Rows + back.Rows)
	if a.seen == nil {
		a.seen = make(map[int]uint64)
	}
	if b.seen == nil {
		b.seen = make(map[int]uint64)
	}
	a.seen[bID] = a.version
	b.seen[aID] = b.version
	return st
}

// --- sparse ---

// SyncRowsMode merges two sparse row sets both ways (the exchange of
// SyncSparse and of MaxProp's sparse vector flood), metering under the
// given mode.
func SyncRowsMode(a, b *SparseRows, aID, bID int, mode ExchangeMode) ExchangeStats {
	switch mode {
	case ExchangeFlood:
		var st ExchangeStats
		st.Add(a.floodVolume())
		st.Add(b.floodVolume())
		a.MergeFresher(b)
		b.MergeFresher(a)
		return st
	case ExchangeDelta:
		return syncRowsDelta(a, b, aID, bID)
	default:
		st := a.MergeFresher(b)
		st.Add(b.MergeFresher(a))
		return st
	}
}

// floodVolume is the cost of transmitting every published row.
func (s *SparseRows) floodVolume() ExchangeStats {
	var st ExchangeStats
	for _, r := range s.rows {
		if r.Updated >= 0 {
			st.AddRow(r.Len())
		}
	}
	return st
}

// advertised counts and sizes the rows a delta digest carries: published
// rows mutated past the watermark, or all published rows for a full
// digest, each costing a varint (owner, stamp) entry.
func (s *SparseRows) advertised(seen uint64, full bool) (rows, payloadBytes int) {
	for id, r := range s.rows {
		if r.Updated >= 0 && (full || r.ver > seen) {
			rows++
			payloadBytes += DigestEntryLen(id, r.Updated)
		}
	}
	return rows, payloadBytes
}

func syncRowsDelta(a, b *SparseRows, aID, bID int) ExchangeStats {
	// A side evicted rows since the peers last met (or mid-sync, hence the
	// pre-merge snapshot below) may be missing rows its peer never
	// re-mutated; the peer answers with a full digest.
	aFull := b.evictGen != b.evictSeen[aID]
	bFull := a.evictGen != a.evictSeen[bID]
	aSeen, bSeen := a.seen[bID], b.seen[aID]
	aEvictPre, bEvictPre := a.evictGen, b.evictGen
	var st ExchangeStats
	st.AddDigest(a.advertised(aSeen, aFull))
	st.AddDigest(b.advertised(bSeen, bFull))
	// Same sequential direction order as the fresher path (a absorbs b
	// first, b then reads a's merged — and possibly just-evicted — state),
	// so the shipped row sets match fresher exactly even when a's cap
	// evicts mid-sync; the eviction itself is caught by the evictGen
	// fallback at the pair's next meeting.
	fwd := a.mergeFresherDelta(b, bSeen, bFull)
	back := b.mergeFresherDelta(a, aSeen, aFull)
	st.Add(fwd)
	st.Add(back)
	st.AddRequests(fwd.Rows + back.Rows)
	a.noteSynced(bID, aEvictPre)
	b.noteSynced(aID, bEvictPre)
	return st
}

// noteSynced records the delta watermarks at the end of a sync with peer:
// the current version (rows learned during the sync need no re-advertising
// — the peer sent them) and the pre-sync eviction generation (evictions
// during the sync still demand a full digest next time).
func (s *SparseRows) noteSynced(peer int, evictPre uint64) {
	if s.seen == nil {
		s.seen = make(map[int]uint64)
		s.evictSeen = make(map[int]uint64)
	}
	s.seen[peer] = s.version
	s.evictSeen[peer] = evictPre
}
