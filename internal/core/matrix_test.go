package core

import (
	"math"
	"testing"
)

func TestMeetingMatrixBasics(t *testing.T) {
	m := NewFullMeetingMatrix(3)
	if m.Size() != 3 {
		t.Fatalf("Size = %d, want 3", m.Size())
	}
	if v := m.Interval(0, 1); !math.IsInf(v, 1) {
		t.Errorf("fresh interval = %g, want +Inf", v)
	}
	if v := m.Interval(1, 1); v != 0 {
		t.Errorf("diagonal = %g, want 0", v)
	}
	if u := m.RowUpdated(0); u != -1 {
		t.Errorf("fresh RowUpdated = %g, want -1", u)
	}
	h := NewHistory(0, 3, 0)
	h.RecordContact(1, 10)
	h.RecordContact(1, 40) // mean 30
	m.UpdateOwnRow(0, 40, h)
	if v := m.Interval(0, 1); v != 30 {
		t.Errorf("Interval(0,1) = %g, want 30", v)
	}
	if v := m.Interval(0, 2); !math.IsInf(v, 1) {
		t.Errorf("Interval(0,2) = %g, want +Inf", v)
	}
	if u := m.RowUpdated(0); u != 40 {
		t.Errorf("RowUpdated = %g, want 40", u)
	}
}

func TestMeetingMatrixScopedIDs(t *testing.T) {
	m := NewMeetingMatrix([]int{3, 7, 9})
	if _, ok := m.Index(7); !ok {
		t.Fatal("Index(7) not found")
	}
	if m.Covers(5) {
		t.Error("Covers(5) should be false")
	}
	if v := m.Interval(3, 5); !math.IsInf(v, 1) {
		t.Errorf("uncovered Interval = %g, want +Inf", v)
	}
	h := NewHistory(7, 10, 0)
	h.RecordContact(9, 0)
	h.RecordContact(9, 50)
	h.RecordContact(2, 1) // outside the matrix scope; must be ignored
	h.RecordContact(2, 2)
	m.UpdateOwnRow(7, 50, h)
	if v := m.Interval(7, 9); v != 50 {
		t.Errorf("Interval(7,9) = %g, want 50", v)
	}
}

func TestMergeFreshness(t *testing.T) {
	a := NewFullMeetingMatrix(2)
	b := NewFullMeetingMatrix(2)
	ha := NewHistory(0, 2, 0)
	ha.RecordContact(1, 0)
	ha.RecordContact(1, 20)
	a.UpdateOwnRow(0, 20, ha)

	hb := NewHistory(1, 2, 0)
	hb.RecordContact(0, 0)
	hb.RecordContact(0, 30)
	b.UpdateOwnRow(1, 30, hb)

	SyncPair(a, b)
	if v := a.Interval(1, 0); v != 30 {
		t.Errorf("a learned Interval(1,0) = %g, want 30", v)
	}
	if v := b.Interval(0, 1); v != 20 {
		t.Errorf("b learned Interval(0,1) = %g, want 20", v)
	}
	if a.KnownRows() != 2 || b.KnownRows() != 2 {
		t.Errorf("KnownRows after sync = %d, %d; want 2, 2", a.KnownRows(), b.KnownRows())
	}

	// A staler copy must not overwrite a fresher row.
	stale := NewFullMeetingMatrix(2)
	if st := a.Merge(stale); st.Rows != 0 {
		t.Errorf("merging stale matrix copied %d rows, want 0", st.Rows)
	}
	if v := a.Interval(1, 0); v != 30 {
		t.Errorf("row overwritten by stale merge: %g", v)
	}
}

func TestMergeRequiresSameIDs(t *testing.T) {
	a := NewMeetingMatrix([]int{0, 1})
	b := NewMeetingMatrix([]int{0, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic merging different node sets")
		}
	}()
	a.Merge(b)
}

func TestClone(t *testing.T) {
	a := NewFullMeetingMatrix(2)
	h := NewHistory(0, 2, 0)
	h.RecordContact(1, 0)
	h.RecordContact(1, 10)
	a.UpdateOwnRow(0, 10, h)
	c := a.Clone()
	if c.Interval(0, 1) != 10 || c.RowUpdated(0) != 10 {
		t.Fatal("clone lost data")
	}
	h.RecordContact(1, 50)
	a.UpdateOwnRow(0, 50, h)
	if c.Interval(0, 1) != 10 {
		t.Error("clone aliases the original")
	}
}

func TestDuplicateIDsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate ids")
		}
	}()
	NewMeetingMatrix([]int{1, 1})
}
