package core

import "sort"

// EEVSnapshot freezes the encounter-probability state of a History at one
// instant t so that many horizons (one per buffered message, since each
// message has its own residual TTL) can be evaluated in O(log window) each.
// Routers build one snapshot per contact — the paper's Algorithm 1 makes
// all distribution decisions at meeting time — and query it for every
// message.
//
// For each peer the snapshot keeps the sorted "time until next meeting"
// offsets {Δt − elapsed : Δt ∈ M_ij}; the Theorem-1 probability for a
// horizon τ is then (#offsets ≤ τ) / m_ij.
type EEVSnapshot struct {
	h *History
	t float64

	offsets [][]float64 // per peer, ascending; nil when m = 0
	overdue []bool      // r > 0 but m = 0
	met     []bool

	// backing keeps each peer's offset array alive across Reset so a
	// recycled snapshot (routers build one per contact) reaches a steady
	// state with no heap allocations.
	backing [][]float64
}

// SnapshotEEV builds a snapshot of h at time t.
func (h *History) SnapshotEEV(t float64) *EEVSnapshot {
	return h.SnapshotEEVInto(t, &EEVSnapshot{})
}

// SnapshotEEVInto builds the snapshot into s, reusing its storage. The
// result is identical to SnapshotEEV; callers recycling snapshots (e.g. a
// router pooling one per contact) avoid all steady-state allocation.
func (h *History) SnapshotEEVInto(t float64, s *EEVSnapshot) *EEVSnapshot {
	s.h = h
	s.t = t
	if len(s.offsets) != h.n {
		s.offsets = make([][]float64, h.n)
		s.backing = make([][]float64, h.n)
		s.overdue = make([]bool, h.n)
		s.met = make([]bool, h.n)
	} else {
		for j := range s.offsets {
			s.offsets[j] = nil
			s.overdue[j] = false
			s.met[j] = false
		}
	}
	for j := 0; j < h.n; j++ {
		if j == h.self || !h.met[j] {
			continue
		}
		s.met[j] = true
		elapsed := t - h.last[j]
		if elapsed < 0 {
			elapsed = 0
		}
		ring := &h.ivals[j]
		if ring.len() == 0 {
			continue // met once, no interval: probability 0, like History
		}
		offs := s.backing[j][:0]
		ring.forEach(func(dt float64) {
			if dt > elapsed {
				offs = append(offs, dt-elapsed)
			}
		})
		s.backing[j] = offs
		if len(offs) == 0 {
			s.overdue[j] = true
			continue
		}
		sort.Float64s(offs)
		s.offsets[j] = offs
	}
	return s
}

// Time returns the instant the snapshot was taken.
func (s *EEVSnapshot) Time() float64 { return s.t }

// Prob returns the Theorem-1 encounter probability for peer within
// (t, t+tau], identical to History.EncounterProb at the snapshot time.
func (s *EEVSnapshot) Prob(peer int, tau float64) float64 {
	if peer == s.h.self || tau <= 0 || !s.met[peer] {
		return 0
	}
	offs := s.offsets[peer]
	if offs == nil {
		if s.overdue[peer] {
			return 1
		}
		return 0
	}
	k := sort.SearchFloat64s(offs, tau)
	// SearchFloat64s returns the first index with offs[i] >= tau; the
	// probability wants offsets <= tau, so advance over equal values.
	for k < len(offs) && offs[k] == tau {
		k++
	}
	return float64(k) / float64(len(offs))
}

// EEV returns the expected encounter value over all peers for horizon tau.
func (s *EEVSnapshot) EEV(tau float64) float64 {
	sum := 0.0
	for j := 0; j < s.h.n; j++ {
		sum += s.Prob(j, tau)
	}
	return sum
}

// EEVSubset returns the intra-community expected encounter value over the
// given members.
func (s *EEVSnapshot) EEVSubset(tau float64, members []int) float64 {
	sum := 0.0
	for _, j := range members {
		sum += s.Prob(j, tau)
	}
	return sum
}

// CommunityProb returns P_ik for the given member set and horizon.
func (s *EEVSnapshot) CommunityProb(tau float64, members []int) float64 {
	miss := 1.0
	for _, j := range members {
		if j == s.h.self {
			continue
		}
		miss *= 1 - s.Prob(j, tau)
		if miss == 0 {
			return 1
		}
	}
	return 1 - miss
}

// ENEC returns the Theorem-4 expected number of encountered communities,
// excluding the node's own community index own.
func (s *EEVSnapshot) ENEC(tau float64, communities [][]int, own int) float64 {
	sum := 0.0
	for k, members := range communities {
		if k == own {
			continue
		}
		sum += s.CommunityProb(tau, members)
	}
	return sum
}
