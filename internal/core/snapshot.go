package core

import "sort"

// EEVSnapshot freezes the encounter-probability state of a History at one
// instant t so that many horizons (one per buffered message, since each
// message has its own residual TTL) can be evaluated in O(log window) each.
// Routers build one snapshot per contact — the paper's Algorithm 1 makes
// all distribution decisions at meeting time — and query it for every
// message.
//
// For each peer the snapshot keeps the sorted "time until next meeting"
// offsets {Δt − elapsed : Δt ∈ M_ij}; the Theorem-1 probability for a
// horizon τ is then (#offsets ≤ τ) / m_ij.
type EEVSnapshot struct {
	h *History
	t float64

	// Dense-mode storage, one slot per potential peer.
	offsets [][]float64 // per peer, ascending; nil when m = 0
	overdue []bool      // r > 0 but m = 0
	met     []bool

	// backing keeps each peer's offset array alive across Reset so a
	// recycled snapshot (routers build one per contact) reaches a steady
	// state with no heap allocations.
	backing [][]float64

	// Sparse-mode storage: only peers with at least one recorded interval,
	// ascending by id; offs[k] holds ids[k]'s sorted future-meeting offsets
	// and an empty offs[k] encodes the overdue case (probability 1). Peers
	// without entries — never met, or met with an empty window — read as
	// probability 0 exactly as in dense mode. Slices are truncated, never
	// freed, so recycled snapshots reuse their backing arrays.
	sparse bool
	ids    []int
	offs   [][]float64
}

// SnapshotEEV builds a snapshot of h at time t.
func (h *History) SnapshotEEV(t float64) *EEVSnapshot {
	return h.SnapshotEEVInto(t, &EEVSnapshot{})
}

// SnapshotEEVInto builds the snapshot into s, reusing its storage. The
// result is identical to SnapshotEEV; callers recycling snapshots (e.g. a
// router pooling one per contact) avoid all steady-state allocation.
func (h *History) SnapshotEEVInto(t float64, s *EEVSnapshot) *EEVSnapshot {
	s.h = h
	s.t = t
	if h.recs != nil {
		return h.snapshotSparse(t, s)
	}
	s.sparse = false
	if len(s.offsets) != h.n {
		s.offsets = make([][]float64, h.n)
		s.backing = make([][]float64, h.n)
		s.overdue = make([]bool, h.n)
		s.met = make([]bool, h.n)
	} else {
		for j := range s.offsets {
			s.offsets[j] = nil
			s.overdue[j] = false
			s.met[j] = false
		}
	}
	for j := 0; j < h.n; j++ {
		if j == h.self || !h.met[j] {
			continue
		}
		s.met[j] = true
		elapsed := t - h.last[j]
		if elapsed < 0 {
			elapsed = 0
		}
		ring := &h.ivals[j]
		if ring.len() == 0 {
			continue // met once, no interval: probability 0, like History
		}
		offs := s.backing[j][:0]
		ring.forEach(func(dt float64) {
			if dt > elapsed {
				offs = append(offs, dt-elapsed)
			}
		})
		s.backing[j] = offs
		if len(offs) == 0 {
			s.overdue[j] = true
			continue
		}
		sort.Float64s(offs)
		s.offsets[j] = offs
	}
	return s
}

// snapshotSparse is SnapshotEEVInto's sparse-mode body: it walks the met
// peers (ascending) instead of all n slots and stores entries only for
// peers with a non-empty interval window.
func (h *History) snapshotSparse(t float64, s *EEVSnapshot) *EEVSnapshot {
	s.sparse = true
	s.ids = s.ids[:0]
	k := 0
	for _, id := range h.ids {
		rec := h.recs[id]
		if rec.ring.len() == 0 {
			continue // met once, no interval: probability 0, like dense mode
		}
		elapsed := t - rec.last
		if elapsed < 0 {
			elapsed = 0
		}
		var offs []float64
		if k < len(s.offs) {
			offs = s.offs[k][:0]
		}
		rec.ring.forEach(func(dt float64) {
			if dt > elapsed {
				offs = append(offs, dt-elapsed)
			}
		})
		sort.Float64s(offs)
		if k < len(s.offs) {
			s.offs[k] = offs
		} else {
			s.offs = append(s.offs, offs)
		}
		s.ids = append(s.ids, id)
		k++
	}
	return s
}

// Time returns the instant the snapshot was taken.
func (s *EEVSnapshot) Time() float64 { return s.t }

// Prob returns the Theorem-1 encounter probability for peer within
// (t, t+tau], identical to History.EncounterProb at the snapshot time.
func (s *EEVSnapshot) Prob(peer int, tau float64) float64 {
	if peer == s.h.self || tau <= 0 {
		return 0
	}
	if s.sparse {
		i := sort.SearchInts(s.ids, peer)
		if i >= len(s.ids) || s.ids[i] != peer {
			return 0
		}
		return s.probAt(i, tau)
	}
	if !s.met[peer] {
		return 0
	}
	offs := s.offsets[peer]
	if offs == nil {
		if s.overdue[peer] {
			return 1
		}
		return 0
	}
	return probFromOffsets(offs, tau)
}

// probAt answers Prob for the sparse entry at position i.
func (s *EEVSnapshot) probAt(i int, tau float64) float64 {
	offs := s.offs[i]
	if len(offs) == 0 {
		return 1 // overdue: every observed interval has already elapsed
	}
	return probFromOffsets(offs, tau)
}

// probFromOffsets is the Theorem-1 probability over a sorted, non-empty
// future-meeting offset list — shared by both storage modes so the equal-
// tau boundary semantics cannot drift between them.
func probFromOffsets(offs []float64, tau float64) float64 {
	k := sort.SearchFloat64s(offs, tau)
	// SearchFloat64s returns the first index with offs[i] >= tau; the
	// probability wants offsets <= tau, so advance over equal values.
	for k < len(offs) && offs[k] == tau {
		k++
	}
	return float64(k) / float64(len(offs))
}

// EEV returns the expected encounter value over all peers for horizon tau.
// The sparse sum over stored entries equals the dense all-peers scan
// bitwise: absent peers contribute an exact 0.0 and both visit ascending
// ids.
func (s *EEVSnapshot) EEV(tau float64) float64 {
	sum := 0.0
	if s.sparse {
		if tau <= 0 {
			return 0
		}
		for i := range s.ids {
			sum += s.probAt(i, tau)
		}
		return sum
	}
	for j := 0; j < s.h.n; j++ {
		sum += s.Prob(j, tau)
	}
	return sum
}

// EEVSubset returns the intra-community expected encounter value over the
// given members.
func (s *EEVSnapshot) EEVSubset(tau float64, members []int) float64 {
	sum := 0.0
	for _, j := range members {
		sum += s.Prob(j, tau)
	}
	return sum
}

// CommunityProb returns P_ik for the given member set and horizon.
func (s *EEVSnapshot) CommunityProb(tau float64, members []int) float64 {
	miss := 1.0
	for _, j := range members {
		if j == s.h.self {
			continue
		}
		miss *= 1 - s.Prob(j, tau)
		if miss == 0 {
			return 1
		}
	}
	return 1 - miss
}

// ENEC returns the Theorem-4 expected number of encountered communities,
// excluding the node's own community index own.
func (s *EEVSnapshot) ENEC(tau float64, communities [][]int, own int) float64 {
	sum := 0.0
	for k, members := range communities {
		if k == own {
			continue
		}
		sum += s.CommunityProb(tau, members)
	}
	return sum
}
