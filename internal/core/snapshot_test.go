package core

import (
	"math"
	"testing"
	"testing/quick"
)

// TestSnapshotMatchesHistory is the central snapshot property: for any
// random history, peer and horizon, the snapshot probability equals the
// direct Theorem-1 computation at the snapshot time.
func TestSnapshotMatchesHistory(t *testing.T) {
	f := func(seed int64, tau float64, dt float64) bool {
		h, now := randomHistory(seed, 8)
		at := now + math.Mod(math.Abs(dt), 200)
		tau = math.Mod(math.Abs(tau), 600)
		s := h.SnapshotEEV(at)
		for j := 0; j < 8; j++ {
			a := s.Prob(j, tau)
			b := h.EncounterProb(j, at, tau)
			if math.Abs(a-b) > 1e-12 {
				return false
			}
		}
		return math.Abs(s.EEV(tau)-h.EEV(at, tau)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSnapshotSubsetAndENECMatch(t *testing.T) {
	f := func(seed int64, tau float64) bool {
		h, now := randomHistory(seed, 9)
		tau = math.Mod(math.Abs(tau), 600)
		s := h.SnapshotEEV(now)
		members := []int{1, 3, 5, 7}
		if math.Abs(s.EEVSubset(tau, members)-h.EEVSubset(now, tau, members)) > 1e-9 {
			return false
		}
		comms := [][]int{{0, 2}, {1, 3}, {4, 5, 6}, {7, 8}}
		return math.Abs(s.ENEC(tau, comms, 0)-h.ENEC(now, tau, comms, 0)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSnapshotCommunityProbMatches(t *testing.T) {
	f := func(seed int64, tau float64) bool {
		h, now := randomHistory(seed, 7)
		tau = math.Mod(math.Abs(tau), 600)
		s := h.SnapshotEEV(now)
		members := []int{2, 4, 6}
		return math.Abs(s.CommunityProb(tau, members)-h.CommunityProb(now, tau, members)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSnapshotBoundaryInclusive pins the ≤ boundary of Mτ: an interval
// exactly at elapsed+tau counts.
func TestSnapshotBoundaryInclusive(t *testing.T) {
	h := NewHistory(0, 2, 0)
	for _, ts := range []float64{0, 10, 30} { // intervals 10, 20
		h.RecordContact(1, ts)
	}
	s := h.SnapshotEEV(35) // elapsed 5: M = {10, 20}, offsets {5, 15}
	if got := s.Prob(1, 5); got != 0.5 {
		t.Errorf("Prob at boundary = %g, want 0.5", got)
	}
	if got := s.Prob(1, 4.999); got != 0 {
		t.Errorf("Prob below boundary = %g, want 0", got)
	}
	if got := s.Prob(1, 15); got != 1 {
		t.Errorf("Prob at upper boundary = %g, want 1", got)
	}
}
