package core

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/xrand"
)

// The delta-gossip layer's contract (exchange.go) is that ExchangeMode
// changes metering only: fresher, flood and delta syncs leave every store
// in the identical state after any schedule of own-row refreshes and
// pairwise syncs. deltaEquivalence pins that, including under sparse row
// caps where eviction forces the full-digest fallback; the remaining tests
// pin the metering itself — deltas shrink on repeat meetings, floods don't,
// and the row/entry counters stay mode-independent between fresher and
// delta.

// exchangeScript is a deterministic schedule of refresh and sync events,
// replayed identically under every mode.
type exchangeScript struct {
	n      int
	events []exchangeEvent
}

type exchangeEvent struct {
	// sync when b >= 0 (pair a<->b at time t); own-row refresh of a
	// otherwise.
	a, b int
	t    float64
}

func makeScript(n, steps int, seed int64) exchangeScript {
	rng := xrand.New(seed)
	sc := exchangeScript{n: n}
	now := 0.0
	for i := 0; i < steps; i++ {
		now += rng.Uniform(0.5, 5)
		a := rng.Intn(n)
		if rng.Float64() < 0.45 {
			sc.events = append(sc.events, exchangeEvent{a: a, b: -1, t: now})
			continue
		}
		b := rng.Intn(n - 1)
		if b >= a {
			b++
		}
		sc.events = append(sc.events, exchangeEvent{a: a, b: b, t: now})
	}
	return sc
}

// playScript runs the script against fresh stores under one mode and
// returns the final stores plus the per-sync stats in schedule order.
// maxRows > 0 caps sparse stores (dense stores ignore it).
func playScript(sc exchangeScript, sparse bool, maxRows int, mode ExchangeMode) ([]MeetingStore, []ExchangeStats) {
	stores := make([]MeetingStore, sc.n)
	hists := make([]*History, sc.n)
	for i := range stores {
		if sparse {
			s := NewSparseMeetingStore(sc.n)
			if maxRows > 0 {
				s.SetMaxRows(maxRows, i)
			}
			stores[i] = s
			hists[i] = NewSparseHistory(i, sc.n, 0)
		} else {
			stores[i] = NewFullMeetingMatrix(sc.n)
			hists[i] = NewHistory(i, sc.n, 0)
		}
	}
	var stats []ExchangeStats
	for _, ev := range sc.events {
		if ev.b < 0 {
			stores[ev.a].UpdateOwnRow(ev.a, ev.t, hists[ev.a])
			continue
		}
		// A sync is a contact: record it, refresh both own rows (as the
		// routers do on ContactUp), then exchange.
		hists[ev.a].RecordContact(ev.b, ev.t)
		hists[ev.b].RecordContact(ev.a, ev.t)
		stores[ev.a].UpdateOwnRow(ev.a, ev.t, hists[ev.a])
		stores[ev.b].UpdateOwnRow(ev.b, ev.t, hists[ev.b])
		stats = append(stats, SyncMode(stores[ev.a], stores[ev.b], ev.a, ev.b, mode))
	}
	return stores, stats
}

// storeFingerprint serializes everything simulation-visible about a store:
// per-row freshness and the known entries in ForEachKnown order.
func storeFingerprint(s MeetingStore, n int) string {
	out := ""
	for id := 0; id < n; id++ {
		out += fmt.Sprintf("row %d @ %g:", id, s.RowUpdated(id))
		s.ForEachKnown(id, func(peer int, v float64) {
			out += fmt.Sprintf(" %d=%g", peer, v)
		})
		out += "\n"
	}
	return out
}

// TestDeltaEquivalence (deltaEquivalence): under every storage mode and
// cap, flood and delta syncs must land every store in the exact state the
// fresher baseline produces, and fresher/delta must agree on rows and
// entries actually shipped (flood ships at least as many).
func TestDeltaEquivalence(t *testing.T) {
	cases := []struct {
		name    string
		sparse  bool
		maxRows int
	}{
		{"dense", false, 0},
		{"sparse", true, 0},
		{"sparse-capped", true, 5}, // forces evictions → full-digest fallback
	}
	for _, tc := range cases {
		for _, seed := range []int64{1, 42, 99} {
			t.Run(fmt.Sprintf("%s-seed%d", tc.name, seed), func(t *testing.T) {
				sc := makeScript(12, 400, seed)
				ref, refStats := playScript(sc, tc.sparse, tc.maxRows, ExchangeFresher)
				for _, mode := range []ExchangeMode{ExchangeFlood, ExchangeDelta} {
					got, gotStats := playScript(sc, tc.sparse, tc.maxRows, mode)
					for i := range ref {
						want, have := storeFingerprint(ref[i], sc.n), storeFingerprint(got[i], sc.n)
						if want != have {
							t.Fatalf("mode %v: store %d diverged from fresher baseline\nfresher:\n%s%v:\n%s",
								mode, i, want, mode, have)
						}
					}
					for k := range refStats {
						r, g := refStats[k], gotStats[k]
						if mode == ExchangeDelta && (r.Rows != g.Rows || r.Entries != g.Entries) {
							t.Fatalf("sync %d: delta shipped %d rows/%d entries, fresher %d/%d",
								k, g.Rows, g.Entries, r.Rows, r.Entries)
						}
						if mode == ExchangeFlood && (r.Rows > g.Rows || r.Bytes > g.Bytes) {
							t.Fatalf("sync %d: flood %+v smaller than fresher %+v", k, g, r)
						}
					}
				}
			})
		}
	}
}

// TestDeltaDigestShrinks pins the point of the digest: a pair that syncs
// twice with no intervening mutations advertises and ships nothing the
// second time, while a flood re-ships the full row sets.
func TestDeltaDigestShrinks(t *testing.T) {
	for _, sparse := range []bool{false, true} {
		t.Run(map[bool]string{false: "dense", true: "sparse"}[sparse], func(t *testing.T) {
			sc := makeScript(8, 200, 7)
			stores, _ := playScript(sc, sparse, 0, ExchangeDelta)
			first := SyncMode(stores[0], stores[1], 0, 1, ExchangeDelta)
			again := SyncMode(stores[0], stores[1], 0, 1, ExchangeDelta)
			if again.Rows != 0 || again.DigestRows != 0 {
				t.Fatalf("idle re-sync still shipped %d rows, advertised %d (first: %+v)",
					again.Rows, again.DigestRows, first)
			}
			// Only the two fixed digest headers travel on an idle re-sync.
			if want := 2 * digestHeaderBytes; again.Bytes != want {
				t.Fatalf("idle re-sync cost %d bytes, want %d", again.Bytes, want)
			}
			flood := SyncMode(stores[0], stores[1], 0, 1, ExchangeFlood)
			if flood.Bytes <= again.Bytes {
				t.Fatalf("idle flood (%d B) not larger than idle delta (%d B)", flood.Bytes, again.Bytes)
			}
		})
	}
}

// TestDeltaFirstMeetingIsFull pins the cold-start degeneration: two
// strangers' first delta sync advertises every published row (watermark 0)
// and ships exactly what a fresher sync would.
func TestDeltaFirstMeetingIsFull(t *testing.T) {
	n := 6
	a, b := NewFullMeetingMatrix(n), NewFullMeetingMatrix(n)
	ha, hb := NewHistory(0, n, 0), NewHistory(1, n, 0)
	ha.RecordContact(2, 1)
	ha.RecordContact(2, 5)
	hb.RecordContact(3, 2)
	a.UpdateOwnRow(0, 5, ha)
	b.UpdateOwnRow(1, 2, hb)
	st := SyncMode(a, b, 0, 1, ExchangeDelta)
	if st.DigestRows != 2 {
		t.Fatalf("first meeting advertised %d rows, want 2 (one published row each)", st.DigestRows)
	}
	if st.Rows != 2 {
		t.Fatalf("first meeting shipped %d rows, want 2", st.Rows)
	}
	if a.RowUpdated(1) != 2 || b.RowUpdated(0) != 5 {
		t.Fatalf("rows did not cross: a sees row1@%g, b sees row0@%g", a.RowUpdated(1), b.RowUpdated(0))
	}
}

// TestSparseEvictionForcesFullDigest pins the cap-soundness fallback: when
// one side evicted a row since the pair last met, the peer re-offers its
// full set, so the evicted row is re-learned even though its stamp never
// moved.
func TestSparseEvictionForcesFullDigest(t *testing.T) {
	a, b := NewSparseRows(), NewSparseRows()
	// b publishes rows 1..4; a learns them all on the first sync.
	for id := 1; id <= 4; id++ {
		r := b.Ensure(id)
		r.Set(9, float64(id))
		r.Updated = float64(id)
		b.Touch(r)
	}
	SyncRowsMode(a, b, 0, 1, ExchangeDelta)
	if a.Len() != 4 {
		t.Fatalf("first sync: a holds %d rows, want 4", a.Len())
	}
	// a's cap squeezes out the stalest row (owner 1).
	a.SetCap(3, -1)
	if a.Row(1) != nil {
		t.Fatalf("cap did not evict the stalest row")
	}
	a.SetCap(0, -1) // lift the cap; the eviction already happened
	st := SyncRowsMode(a, b, 0, 1, ExchangeDelta)
	if a.Row(1) == nil {
		t.Fatalf("re-sync after eviction did not restore the evicted row")
	}
	if v, ok := a.Row(1).Get(9); !ok || v != 1 {
		t.Fatalf("restored row has wrong content: %v %v", v, ok)
	}
	if st.DigestRows != 4 {
		t.Fatalf("post-eviction sync advertised %d rows, want full digest of 4", st.DigestRows)
	}
	// With no further evictions the next idle sync is quiet again.
	st = SyncRowsMode(a, b, 0, 1, ExchangeDelta)
	if st.Rows != 0 || st.DigestRows != 0 {
		t.Fatalf("idle re-sync after recovery still active: %+v", st)
	}
}

// TestParseExchangeMode covers the spec-level names round trip.
func TestParseExchangeMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want ExchangeMode
	}{{"", ExchangeFresher}, {"fresher", ExchangeFresher}, {"flood", ExchangeFlood}, {"delta", ExchangeDelta}} {
		got, err := ParseExchangeMode(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseExchangeMode(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if tc.in != "" && got.String() != tc.in {
			t.Fatalf("mode %v prints %q, want %q", got, got.String(), tc.in)
		}
	}
	if _, err := ParseExchangeMode("gossip-harder"); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

// TestExchangeStatsDigestAccounting pins the byte model of the digest
// round-trip: varint (owner, stamp) entries plus the fixed header and
// request costs.
func TestExchangeStatsDigestAccounting(t *testing.T) {
	var st ExchangeStats
	// Three advertised rows as a digest would size them.
	payload := DigestEntryLen(7, 100) + DigestEntryLen(300, 2.5) + DigestEntryLen(70000, 9000)
	st.AddDigest(3, payload)
	st.AddRequests(2)
	st.AddRow(5)
	// uvarintLen(7)=1 + uvarintLen(100000)=3; uvarintLen(300)=2 +
	// uvarintLen(2500)=2; uvarintLen(70000)=3 + uvarintLen(9000000)=4.
	if payload != 4+4+7 {
		t.Fatalf("varint payload = %d, want 15", payload)
	}
	wantDigest := digestHeaderBytes + payload + 2*requestEntryBytes
	if st.DigestBytes != wantDigest {
		t.Fatalf("DigestBytes = %d, want %d", st.DigestBytes, wantDigest)
	}
	if want := wantDigest + rowHeaderBytes + 5*entryBytes; st.Bytes != want {
		t.Fatalf("Bytes = %d, want %d", st.Bytes, want)
	}
	if st.DigestRows != 3 || st.Rows != 1 || st.Entries != 5 {
		t.Fatalf("counter mismatch: %+v", st)
	}
}

// TestUvarintLen pins the varint size helper against the encoding the
// cost model claims (7 bits per byte).
func TestUvarintLen(t *testing.T) {
	for _, tc := range []struct {
		v    uint64
		want int
	}{{0, 1}, {127, 1}, {128, 2}, {16383, 2}, {16384, 3}, {1 << 28, 5}, {^uint64(0), 10}} {
		if got := uvarintLen(tc.v); got != tc.want {
			t.Fatalf("uvarintLen(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
	// digestStamp quantizes to whole milliseconds.
	if digestStamp(2.5) != 2500 || digestStamp(0) != 0 || digestStamp(1.0001) != 1000 {
		t.Fatalf("digestStamp quantization wrong: %d %d %d", digestStamp(2.5), digestStamp(0), digestStamp(1.0001))
	}
}

// TestDenseSparseDeltaAgree runs the same schedule through dense and
// sparse storage under delta mode and compares the shipped volumes sync by
// sync — the storage-independence promise of ExchangeStats extended to
// delta metering.
func TestDenseSparseDeltaAgree(t *testing.T) {
	sc := makeScript(10, 300, 13)
	_, dense := playScript(sc, false, 0, ExchangeDelta)
	_, sparse := playScript(sc, true, 0, ExchangeDelta)
	if len(dense) != len(sparse) {
		t.Fatalf("sync count diverged: %d vs %d", len(dense), len(sparse))
	}
	for k := range dense {
		d, s := dense[k], sparse[k]
		if d.Rows != s.Rows || d.Entries != s.Entries || d.DigestRows != s.DigestRows || d.Bytes != s.Bytes {
			t.Fatalf("sync %d: dense %+v vs sparse %+v", k, d, s)
		}
	}
}

// sanity check used by the fingerprint: Unknown must not format as a
// finite value.
var _ = math.IsInf
