package core

import (
	"fmt"
	"math"
)

// Unknown marks an MI entry for which no meeting-interval estimate exists.
// It behaves as "no edge" in the MEMD Dijkstra.
var Unknown = math.Inf(1)

// MeetingStore is the storage contract of the MI link state (Section
// III-B.2): what every estimator consumer — the MEMD Dijkstra, the
// freshness exchange, the routers — needs from meeting-interval storage,
// independent of whether rows are dense arrays or sparse observed-peer
// lists. The dense MeetingMatrix serves figure-scale runs; the
// SparseMeetingStore serves city scale. Implementations live in this
// package so that Sync can pair them.
//
// Contract: Interval returns Unknown when absent or uncovered and 0 on the
// diagonal; RowUpdated returns -1 for never-published rows; ForEachKnown
// visits exactly the finite off-diagonal entries of a row, in ascending
// peer order — the iteration every simulation-visible float reduction runs
// over, which is why ascending order is part of the contract rather than a
// convenience.
type MeetingStore interface {
	// Size returns the number of covered nodes.
	Size() int
	// Covers reports whether the store includes global node id.
	Covers(id int) bool
	// Interval returns the published average meeting interval between a
	// and b, or Unknown if absent or uncovered.
	Interval(a, b int) float64
	// RowUpdated returns the timestamp of the last update of id's row, or
	// -1 if it was never set.
	RowUpdated(id int) float64
	// KnownRows returns how many rows have ever been published.
	KnownRows() int
	// UpdateOwnRow refreshes the row owned by self from its contact
	// history at time t, restricted to covered peers.
	UpdateOwnRow(self int, t float64, h *History)
	// ForEachKnown visits owner's finite off-diagonal entries, ascending
	// by peer id.
	ForEachKnown(owner int, f func(peer int, interval float64))
}

// ExchangeStats tallies the link-state volume one merge (or one Sync, both
// directions) actually moved: rows shipped, the known (finite,
// off-diagonal) entries those rows carried, and the serialized bytes they
// stand for — including, in delta mode, the digest round-trip and row
// requests (DigestBytes breaks that overhead out of Bytes). Dense and
// sparse stores report identical stats for identical exchanges — a dense
// row's unknown entries never travel, mirroring the sparse row that simply
// omits them — so the counters are storage-mode independent like every
// other summary metric.
type ExchangeStats struct {
	Rows    int
	Entries int
	Bytes   int

	// DigestRows counts digest entries advertised; DigestBytes is the
	// digest + request overhead, already included in Bytes.
	DigestRows  int
	DigestBytes int
}

// Serialized cost model behind ExchangeStats.Bytes: a row header
// (owner id 4 B + freshness timestamp 8 B + entry count 4 B) plus
// (peer id 4 B + float64 value 8 B) per known entry. A delta digest costs
// a header (sender id 4 B + entry count 4 B + eviction generation 8 B)
// per direction plus, per advertised row, a varint owner id and a varint
// millisecond-quantized freshness stamp (2–12 B, ~5–8 B for realistic
// ids and sim times — versus 12 B under the old fixed (4 B id + 8 B
// float64 stamp) encoding; city-scale delta gossip is digest-bound, so
// the digest entry is the byte that matters). Each row pulled in
// response costs an owner-id request entry.
const (
	rowHeaderBytes = 16
	entryBytes     = 12

	digestHeaderBytes = 16
	requestEntryBytes = 4
)

// uvarintLen returns the encoded size of v as an unsigned varint (1–10 B)
// — binary.PutUvarint's length without the scratch buffer.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// digestStamp quantizes a row freshness timestamp to whole milliseconds
// for the digest wire model. Millisecond resolution is far below any
// tick length, so distinct stamps stay distinct; quantization only
// affects metering, never the merge (freshness comparisons use the full
// float64 timestamps).
func digestStamp(updated float64) uint64 {
	return uint64(math.Round(updated * 1000))
}

// DigestEntryLen is the wire size of one digest entry: owner id and
// millisecond freshness stamp, both varint-encoded. Summed per advertised
// row, so the total is iteration-order independent — dense and sparse
// stores meter identical digests for identical exchanges. Exported for
// routers that meter their own delta gossip (MaxProp's vector exchange).
func DigestEntryLen(owner int, updated float64) int {
	return uvarintLen(uint64(owner)) + uvarintLen(digestStamp(updated))
}

// AddRow accounts one copied row with n known entries.
func (e *ExchangeStats) AddRow(entries int) {
	e.Rows++
	e.Entries += entries
	e.Bytes += rowHeaderBytes + entries*entryBytes
}

// AddDigest accounts one digest transmission advertising rows whose
// varint-encoded (owner, stamp) entries total payloadBytes.
func (e *ExchangeStats) AddDigest(rows, payloadBytes int) {
	e.DigestRows += rows
	db := digestHeaderBytes + payloadBytes
	e.DigestBytes += db
	e.Bytes += db
}

// AddRequests accounts the row-request list answering a digest.
func (e *ExchangeStats) AddRequests(rows int) {
	db := rows * requestEntryBytes
	e.DigestBytes += db
	e.Bytes += db
}

// Add accumulates o into e.
func (e *ExchangeStats) Add(o ExchangeStats) {
	e.Rows += o.Rows
	e.Entries += o.Entries
	e.Bytes += o.Bytes
	e.DigestRows += o.DigestRows
	e.DigestBytes += o.DigestBytes
}

// Sync merges two stores of the same implementation into the element-wise
// fresher rows required by Algorithm 1 line 4 — the interface-level
// SyncPair. Mixing implementations panics: a world runs one storage mode.
// It returns the combined exchange volume of both directions.
func Sync(a, b MeetingStore) ExchangeStats {
	switch x := a.(type) {
	case *MeetingMatrix:
		return SyncPair(x, b.(*MeetingMatrix))
	case *SparseMeetingStore:
		return SyncSparse(x, b.(*SparseMeetingStore))
	default:
		panic(fmt.Sprintf("core: Sync over unknown MeetingStore implementation %T", a))
	}
}

// MeetingMatrix is the link-state MI matrix of Section III-B.2: for a node
// set {ids}, entry (i, j) holds node ids[i]'s published average meeting
// interval to ids[j]. Each row is owned by the node it describes and
// carries the timestamp of its last update, so that two encountering nodes
// can exchange only the fresher rows (footnote 1 of the paper).
//
// The same type serves the full network (EER) and a single community
// (CR's intra-community MI) — the latter simply covers fewer ids.
type MeetingMatrix struct {
	ids     []int       // global node ids covered, ascending
	idx     map[int]int // global id -> local index
	rows    [][]float64 // rows[i][j] = I(ids[i], ids[j]); Unknown if none
	updated []float64   // last update time per row; -1 = never

	// Delta-gossip bookkeeping (see exchange.go): version counts local
	// row mutations (own refreshes and merge copies), rowVer stamps each
	// row with the version of its last mutation, and seen records the
	// local version as of the end of the last delta sync with each peer —
	// a row is advertised to a peer iff it mutated since they last met.
	version uint64
	rowVer  []uint64
	seen    map[int]uint64
}

// NewMeetingMatrix returns an all-Unknown matrix over the given global node
// ids. The id list is copied; it must contain no duplicates.
func NewMeetingMatrix(ids []int) *MeetingMatrix {
	m := &MeetingMatrix{
		ids:     append([]int(nil), ids...),
		idx:     make(map[int]int, len(ids)),
		rows:    make([][]float64, len(ids)),
		updated: make([]float64, len(ids)),
		rowVer:  make([]uint64, len(ids)),
	}
	flat := make([]float64, len(ids)*len(ids))
	for i := range flat {
		flat[i] = Unknown
	}
	for i, id := range m.ids {
		if _, dup := m.idx[id]; dup {
			panic(fmt.Sprintf("core: duplicate id %d in meeting matrix", id))
		}
		m.idx[id] = i
		m.rows[i], flat = flat[:len(ids)], flat[len(ids):]
		m.rows[i][i] = 0
		m.updated[i] = -1
	}
	return m
}

// NewFullMeetingMatrix returns a matrix over nodes 0..n-1.
func NewFullMeetingMatrix(n int) *MeetingMatrix {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return NewMeetingMatrix(ids)
}

// Size returns the number of covered nodes.
func (m *MeetingMatrix) Size() int { return len(m.ids) }

// IDs returns the covered global node ids (shared; do not mutate).
func (m *MeetingMatrix) IDs() []int { return m.ids }

// Index returns the local index of global node id. ok is false when the
// matrix does not cover id.
func (m *MeetingMatrix) Index(id int) (int, bool) {
	i, ok := m.idx[id]
	return i, ok
}

// Covers reports whether the matrix includes global node id.
func (m *MeetingMatrix) Covers(id int) bool {
	_, ok := m.idx[id]
	return ok
}

// Interval returns the published average meeting interval between global
// nodes a and b, or Unknown if absent or uncovered.
func (m *MeetingMatrix) Interval(a, b int) float64 {
	i, ok1 := m.idx[a]
	j, ok2 := m.idx[b]
	if !ok1 || !ok2 {
		return Unknown
	}
	return m.rows[i][j]
}

// RowUpdated returns the timestamp of the last update of global node id's
// row, or -1 if it was never set (or id is uncovered).
func (m *MeetingMatrix) RowUpdated(id int) float64 {
	i, ok := m.idx[id]
	if !ok {
		return -1
	}
	return m.updated[i]
}

// UpdateOwnRow refreshes the row owned by global node self from its contact
// history at time t. Only peers covered by the matrix are read, so a
// community-scoped matrix stores only intra-community averages.
func (m *MeetingMatrix) UpdateOwnRow(self int, t float64, h *History) {
	i, ok := m.idx[self]
	if !ok {
		panic(fmt.Sprintf("core: node %d not covered by meeting matrix", self))
	}
	row := m.rows[i]
	for j, id := range m.ids {
		if id == self {
			row[j] = 0
			continue
		}
		if mean, got := h.MeanInterval(id); got {
			row[j] = mean
		} else {
			row[j] = Unknown
		}
	}
	m.updated[i] = t
	m.version++
	m.rowVer[i] = m.version
}

// ForEachKnown implements MeetingStore: the finite off-diagonal entries of
// owner's row, ascending by peer id (the id list is ascending by
// construction).
func (m *MeetingMatrix) ForEachKnown(owner int, f func(peer int, interval float64)) {
	i, ok := m.idx[owner]
	if !ok {
		return
	}
	row := m.rows[i]
	for j, id := range m.ids {
		if j == i {
			continue
		}
		if v := row[j]; !math.IsInf(v, 1) {
			f(id, v)
		}
	}
}

// Merge copies into m every row of other that is strictly fresher,
// implementing the exchange of Algorithm 1 line 4. It returns the exchange
// volume (rows copied, known entries they carried, serialized bytes). Both
// matrices must cover the same id set.
func (m *MeetingMatrix) Merge(other *MeetingMatrix) ExchangeStats {
	if len(m.ids) != len(other.ids) {
		panic("core: merging meeting matrices over different node sets")
	}
	var st ExchangeStats
	for i := range m.ids {
		if m.ids[i] != other.ids[i] {
			panic("core: merging meeting matrices over different node sets")
		}
		if other.updated[i] > m.updated[i] {
			copy(m.rows[i], other.rows[i])
			m.updated[i] = other.updated[i]
			m.version++
			m.rowVer[i] = m.version
			st.AddRow(knownEntries(m.rows[i], i))
		}
	}
	return st
}

// knownEntries counts the finite off-diagonal entries of row i — exactly
// the entries ForEachKnown visits, and exactly what a sparse row stores.
func knownEntries(row []float64, i int) int {
	n := 0
	for j, v := range row {
		if j != i && !math.IsInf(v, 1) {
			n++
		}
	}
	return n
}

// SyncPair merges a and b into the identical MI required by Algorithm 1
// line 4: each ends up with the element-wise fresher rows of the two. It
// returns the combined exchange volume of both directions.
func SyncPair(a, b *MeetingMatrix) ExchangeStats {
	st := a.Merge(b)
	st.Add(b.Merge(a))
	return st
}

// KnownRows returns how many rows have ever been updated.
func (m *MeetingMatrix) KnownRows() int {
	n := 0
	for _, u := range m.updated {
		if u >= 0 {
			n++
		}
	}
	return n
}

// Clone returns a deep copy of the matrix.
func (m *MeetingMatrix) Clone() *MeetingMatrix {
	c := NewMeetingMatrix(m.ids)
	for i := range m.rows {
		copy(c.rows[i], m.rows[i])
	}
	copy(c.updated, m.updated)
	copy(c.rowVer, m.rowVer)
	c.version = m.version
	return c
}
