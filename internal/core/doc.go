// Package core implements the contact-expectation machinery that is the
// primary contribution of Chen & Lou, "On Using Contact Expectation for
// Routing in Delay Tolerant Networks" (ICPP 2011):
//
//   - History — per-node sliding windows of pairwise meeting intervals and
//     last-contact times (Section III-A.1).
//   - History.EncounterProb / History.EEV — Theorem 1: the expected
//     encounter value of a node within (t, t+τ], conditioned on the elapsed
//     time since the last contact with each peer.
//   - History.EMD — Theorem 2: the expected meeting delay to a peer,
//     i.e. the mean of the recorded intervals still compatible with the
//     elapsed time, minus the elapsed time.
//   - History.ENEC / History.CommunityProb — Theorem 4: the expected number
//     of communities a node will encounter within (t, t+τ], and the
//     probability of encountering one given community.
//   - MeetingMatrix — the link-state MI matrix of average meeting intervals
//     with per-row freshness timestamps and the merge rule of Section
//     III-B.2 (footnote 1: only fresher rows are exchanged).
//   - MEMD — Theorem 3: the minimum expected meeting delay, computed by
//     dense Dijkstra over the MD matrix whose own row holds Theorem-2 EMDs
//     and whose remaining rows hold MI averages.
//
// Conventions for cases the paper leaves open (documented in DESIGN.md and
// pinned by tests): a pair that has never met contributes probability 0 and
// delay +Inf; a pair whose elapsed time exceeds every recorded interval is
// "overdue" — its encounter probability falls back to 1 within any positive
// horizon and its EMD falls back to the unconditioned mean interval.
package core
