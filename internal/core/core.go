package core
