package core

import (
	"fmt"
	"math"
	"sort"
)

// This file holds the sparse half of the estimator core: city-scale
// implementations of the MeetingStore contract and the MEMD computation
// whose state grows with the number of *observed* peers instead of the
// network size. Real urban contact graphs are sparse — each node ever meets
// a tiny fraction of the population — so per-row storage proportional to
// recorded meetings recovers the paper's protocols at 10⁴+ nodes where the
// dense n×n matrices cannot even be allocated.

// SparseRow is one node's published row in a sparse link-state store: the
// (peer, value) pairs the row's owner has actually observed, kept ascending
// by peer id, plus the freshness timestamp the merge protocol compares.
// Ascending order matters beyond lookup speed: every simulation-visible
// float reduction over a row (normalisation sums, Dijkstra relaxations)
// must visit entries in the same order as the dense implementation visits
// column indices, or dense/sparse parity breaks on float associativity.
type SparseRow struct {
	// Updated is the row's last-refresh time; -1 = never published.
	Updated float64

	// ver stamps the store-local version of the row's last mutation (own
	// refresh via Touch, or merge copy) for delta digests; see exchange.go.
	ver uint64

	peers []int32
	vals  []float64
}

// Len returns the number of stored entries.
func (r *SparseRow) Len() int { return len(r.peers) }

// Get returns the stored value for peer.
func (r *SparseRow) Get(peer int) (float64, bool) {
	i := sort.Search(len(r.peers), func(i int) bool { return int(r.peers[i]) >= peer })
	if i < len(r.peers) && int(r.peers[i]) == peer {
		return r.vals[i], true
	}
	return 0, false
}

// Set inserts or overwrites the value for peer, keeping the row sorted.
func (r *SparseRow) Set(peer int, v float64) {
	i := sort.Search(len(r.peers), func(i int) bool { return int(r.peers[i]) >= peer })
	if i < len(r.peers) && int(r.peers[i]) == peer {
		r.vals[i] = v
		return
	}
	r.peers = append(r.peers, 0)
	r.vals = append(r.vals, 0)
	copy(r.peers[i+1:], r.peers[i:])
	copy(r.vals[i+1:], r.vals[i:])
	r.peers[i] = int32(peer)
	r.vals[i] = v
}

// Reset drops all entries, retaining capacity.
func (r *SparseRow) Reset() {
	r.peers = r.peers[:0]
	r.vals = r.vals[:0]
}

// Append adds an entry that must sort after every stored one — the bulk
// path for callers iterating peers in ascending order.
func (r *SparseRow) Append(peer int, v float64) {
	if n := len(r.peers); n > 0 && int(r.peers[n-1]) >= peer {
		panic(fmt.Sprintf("core: SparseRow.Append out of order: %d after %d", peer, r.peers[n-1]))
	}
	r.peers = append(r.peers, int32(peer))
	r.vals = append(r.vals, v)
}

// ForEach visits the entries in ascending peer order.
func (r *SparseRow) ForEach(f func(peer int, v float64)) {
	for i, p := range r.peers {
		f(int(p), r.vals[i])
	}
}

// Sum returns the ascending-order sum of the stored values — bit-identical
// to a dense row scan, whose absent entries contribute exact 0.0 no-ops.
func (r *SparseRow) Sum() float64 {
	sum := 0.0
	for _, v := range r.vals {
		sum += v
	}
	return sum
}

// Div divides every stored value by x, in ascending order.
func (r *SparseRow) Div(x float64) {
	for i := range r.vals {
		r.vals[i] /= x
	}
}

// copyFrom overwrites r with o's entries and freshness, reusing capacity.
func (r *SparseRow) copyFrom(o *SparseRow) {
	r.peers = append(r.peers[:0], o.peers...)
	r.vals = append(r.vals[:0], o.vals...)
	r.Updated = o.Updated
}

// SparseRows is a set of sparse rows keyed by owner id with the per-row
// freshness merge of Algorithm 1 line 4 — the sparse counterpart of the
// dense matrix's rows+updated arrays. The sparse MI store and MaxProp's
// flooded probability vectors both build on it.
//
// An optional MaxRows cap (SetCap) bounds the set for long-horizon runs:
// when a merge would grow the set past the cap, the rows with the oldest
// freshness timestamps — the stalest link state, least likely to still
// describe the network — are evicted first, except the pinned own row,
// which always survives. Evicted knowledge can always be re-learned from a
// fresher gossip; capping trades a little routing accuracy for a hard
// memory bound.
type SparseRows struct {
	rows    map[int]*SparseRow
	maxRows int // 0 = unbounded
	pin     int // owner id never evicted; -1 = none

	// Delta-gossip bookkeeping (see exchange.go): version counts local
	// row mutations, evictGen counts cap evictions, seen records the
	// local version as of the end of the last delta sync with each peer,
	// and evictSeen the local eviction generation as of the start of that
	// sync — a peer whose counterpart evicted since they last met gets a
	// full digest, which keeps delta outcomes identical to fresher-wins
	// even under row caps.
	version   uint64
	evictGen  uint64
	seen      map[int]uint64
	evictSeen map[int]uint64
}

// NewSparseRows returns an empty, unbounded row set.
func NewSparseRows() *SparseRows {
	return &SparseRows{rows: make(map[int]*SparseRow), pin: -1}
}

// SetCap bounds the set to maxRows rows (0 = unbounded), never evicting
// the row owned by pin (-1 = none). An over-full set is trimmed
// immediately.
func (s *SparseRows) SetCap(maxRows, pin int) {
	s.maxRows = maxRows
	s.pin = pin
	s.evictOverCap()
}

// Len returns the number of stored rows (published or learned).
func (s *SparseRows) Len() int { return len(s.rows) }

// evictOverCap removes stalest rows until the cap is respected: the victim
// is the row with the smallest (Updated, owner id), never the pinned one.
// The full scan per eviction is fine — evictions are rare (one per
// over-cap merge insertion) and rows are at most maxRows+merge size.
func (s *SparseRows) evictOverCap() {
	if s.maxRows <= 0 {
		return
	}
	for len(s.rows) > s.maxRows {
		victim, found := 0, false
		for id, r := range s.rows {
			if id == s.pin {
				continue
			}
			if !found || r.Updated < s.rows[victim].Updated ||
				(r.Updated == s.rows[victim].Updated && id < victim) {
				victim, found = id, true
			}
		}
		if !found {
			return // only the pinned row remains
		}
		delete(s.rows, victim)
		s.evictGen++
	}
}

// Touch records a local mutation of row r (which must belong to s), so
// delta digests re-advertise it. Publishers must call it after rebuilding
// a row in place.
func (s *SparseRows) Touch(r *SparseRow) {
	s.version++
	r.ver = s.version
}

// Row returns owner's row, or nil if the set holds none.
func (s *SparseRows) Row(owner int) *SparseRow { return s.rows[owner] }

// Ensure returns owner's row, creating an empty never-published one if
// absent.
func (s *SparseRows) Ensure(owner int) *SparseRow {
	r := s.rows[owner]
	if r == nil {
		r = &SparseRow{Updated: -1}
		s.rows[owner] = r
	}
	return r
}

// KnownRows returns how many rows have ever been published.
func (s *SparseRows) KnownRows() int {
	n := 0
	for _, r := range s.rows {
		if r.Updated >= 0 {
			n++
		}
	}
	return n
}

// MergeFresher copies into s every row of o that is strictly fresher,
// returning the exchange volume (rows copied, entries carried, serialized
// bytes). Map iteration order is fine here: row copies are independent, so
// no simulation-visible float order depends on it — and the exchange
// counters are order-independent sums. A configured cap (SetCap) is
// enforced after the merge, stalest rows first.
func (s *SparseRows) MergeFresher(o *SparseRows) ExchangeStats {
	return s.mergeFresherDelta(o, 0, true)
}

// mergeFresherDelta is MergeFresher restricted to the rows o advertised: a
// row travels only if o mutated it since the peers' last delta sync
// (or.ver > oSeen), or unconditionally with oFull (a full digest — the
// first sync, an eviction fallback, or plain MergeFresher). Restricting to
// advertised rows loses nothing: a sound watermark means every
// strictly-fresher row is advertised, which deltaEquivalence in
// exchange_test.go pins.
func (s *SparseRows) mergeFresherDelta(o *SparseRows, oSeen uint64, oFull bool) ExchangeStats {
	var st ExchangeStats
	for id, or := range o.rows {
		if or.Updated < 0 {
			continue // never-published rows don't travel
		}
		if !oFull && or.ver <= oSeen {
			continue // not advertised: unchanged since the peers last met
		}
		mine := s.rows[id]
		if mine == nil {
			mine = &SparseRow{Updated: -1}
			s.rows[id] = mine
		}
		if or.Updated > mine.Updated {
			mine.copyFrom(or)
			s.version++
			mine.ver = s.version
			st.AddRow(or.Len())
		}
	}
	s.evictOverCap()
	return st
}

// SparseMeetingStore implements MeetingStore with per-row storage over
// observed peers only: rows exist once published (own refresh) or learned
// (freshness merge), and each row holds only the finite intervals its owner
// recorded. An optional scope restricts the store to a node subset — CR's
// intra-community MI — exactly like a dense matrix over scoped ids.
type SparseMeetingStore struct {
	size  int
	scope map[int]struct{} // nil = all of 0..size-1
	rows  *SparseRows
}

// NewSparseMeetingStore returns an empty sparse store covering nodes
// 0..n-1.
func NewSparseMeetingStore(n int) *SparseMeetingStore {
	return &SparseMeetingStore{size: n, rows: NewSparseRows()}
}

// NewScopedSparseMeetingStore returns an empty sparse store covering
// exactly the given global node ids.
func NewScopedSparseMeetingStore(ids []int) *SparseMeetingStore {
	return NewSharedScopeSparseMeetingStore(NewScopeSet(ids))
}

// ScopeSet is a prebuilt node-id set for scoped sparse stores. Stores only
// read it, so one set can back every store with the same scope — CR shares
// one per community instead of rebuilding a members map per node, which at
// metro scale (100k nodes, communities of thousands) is the difference
// between an O(n·|community|) and an O(n) world build.
type ScopeSet map[int]struct{}

// NewScopeSet builds the id set for NewSharedScopeSparseMeetingStore,
// rejecting duplicate ids.
func NewScopeSet(ids []int) ScopeSet {
	scope := make(ScopeSet, len(ids))
	for _, id := range ids {
		if _, dup := scope[id]; dup {
			panic(fmt.Sprintf("core: duplicate id %d in sparse meeting store", id))
		}
		scope[id] = struct{}{}
	}
	return scope
}

// NewSharedScopeSparseMeetingStore returns an empty sparse store covering
// exactly the ids in scope. The set may be shared across stores and must
// not be mutated afterwards.
func NewSharedScopeSparseMeetingStore(scope ScopeSet) *SparseMeetingStore {
	return &SparseMeetingStore{size: len(scope), scope: scope, rows: NewSparseRows()}
}

// SetMaxRows bounds the store to maxRows rows (0 = unbounded) with
// stale-row eviction, never evicting self's own row — the long-horizon
// memory cap of Scenario.MaxSparseRows. Capping changes which link state a
// node retains, so it is off by default; summaries remain deterministic
// for any fixed cap.
func (s *SparseMeetingStore) SetMaxRows(maxRows, self int) {
	s.rows.SetCap(maxRows, self)
}

// StoredRows returns the number of rows currently held (published or
// learned) — the quantity MaxRows bounds.
func (s *SparseMeetingStore) StoredRows() int { return s.rows.Len() }

// Size implements MeetingStore.
func (s *SparseMeetingStore) Size() int { return s.size }

// Covers implements MeetingStore.
func (s *SparseMeetingStore) Covers(id int) bool {
	if s.scope == nil {
		return id >= 0 && id < s.size
	}
	_, ok := s.scope[id]
	return ok
}

// Interval implements MeetingStore.
func (s *SparseMeetingStore) Interval(a, b int) float64 {
	if !s.Covers(a) || !s.Covers(b) {
		return Unknown
	}
	if a == b {
		return 0
	}
	row := s.rows.Row(a)
	if row == nil {
		return Unknown
	}
	if v, ok := row.Get(b); ok {
		return v
	}
	return Unknown
}

// RowUpdated implements MeetingStore.
func (s *SparseMeetingStore) RowUpdated(id int) float64 {
	row := s.rows.Row(id)
	if row == nil {
		return -1
	}
	return row.Updated
}

// KnownRows implements MeetingStore.
func (s *SparseMeetingStore) KnownRows() int { return s.rows.KnownRows() }

// UpdateOwnRow implements MeetingStore: rebuild the row owned by self from
// its contact history at time t, covering only in-scope peers with at least
// one recorded interval.
func (s *SparseMeetingStore) UpdateOwnRow(self int, t float64, h *History) {
	if !s.Covers(self) {
		panic(fmt.Sprintf("core: node %d not covered by sparse meeting store", self))
	}
	row := s.rows.Ensure(self)
	row.Reset()
	h.forEachMet(func(peer int) {
		if !s.Covers(peer) {
			return
		}
		if mean, ok := h.MeanInterval(peer); ok {
			row.Append(peer, mean)
		}
	})
	row.Updated = t
	s.rows.Touch(row)
}

// ForEachKnown implements MeetingStore: every stored entry is a finite
// recorded average, so the row is visited verbatim.
func (s *SparseMeetingStore) ForEachKnown(owner int, f func(peer int, interval float64)) {
	if row := s.rows.Row(owner); row != nil {
		row.ForEach(f)
	}
}

// SyncSparse merges a and b into the identical element-wise fresher rows,
// the sparse counterpart of SyncPair. It returns the combined exchange
// volume of both directions. With row caps the post-merge stores are no
// longer necessarily identical — each keeps its own freshest cap-full.
func SyncSparse(a, b *SparseMeetingStore) ExchangeStats {
	st := a.rows.MergeFresher(b.rows)
	st.Add(b.rows.MergeFresher(a.rows))
	return st
}

// dijItem is a pending (distance, vertex) heap entry.
type dijItem struct {
	d  float64
	id int32
}

// SparseDijkstra runs heap-based Dijkstra over an implicit sparse graph
// given by an edge callback, with reusable scratch: the distance map and
// the heap persist across runs so steady-state computations allocate only
// on growth. The heap is bounded by the reached vertex set — the recorded
// contact graph — never by the network size.
type SparseDijkstra struct {
	dist map[int]float64
	heap []dijItem
}

// NewSparseDijkstra returns a calculator with empty scratch.
func NewSparseDijkstra() *SparseDijkstra {
	return &SparseDijkstra{dist: make(map[int]float64)}
}

// Run computes shortest-path distances from src. For each settled vertex u,
// edges(u, relax) must invoke relax once per outgoing edge; non-positive
// and +Inf weights are ignored ("no edge"), matching the dense Dijkstra's
// edge test, so callers may pass raw rows. Distances are bit-identical to
// the dense computation over the equivalent matrix: with strictly positive
// weights, every final distance is the minimum over dist[u]+w(u,v) of the
// settled in-neighbours, independent of settle-order tie-breaks.
func (d *SparseDijkstra) Run(src int, edges func(u int, relax func(v int, w float64))) {
	clear(d.dist)
	d.heap = d.heap[:0]
	d.dist[src] = 0
	d.push(dijItem{d: 0, id: int32(src)})
	base := 0.0
	relax := func(v int, w float64) {
		if w <= 0 || math.IsInf(w, 1) {
			return
		}
		nd := base + w
		if cur, ok := d.dist[v]; !ok || nd < cur {
			d.dist[v] = nd
			d.push(dijItem{d: nd, id: int32(v)})
		}
	}
	for len(d.heap) > 0 {
		it := d.pop()
		if it.d > d.dist[int(it.id)] {
			continue // stale entry; the vertex settled at a smaller distance
		}
		base = it.d
		edges(int(it.id), relax)
	}
}

// Dist returns the distance to v from the last Run. ok is false when v was
// not reached.
func (d *SparseDijkstra) Dist(v int) (float64, bool) {
	dist, ok := d.dist[v]
	return dist, ok
}

// ForEachReached visits every vertex reached by the last Run, in map order
// — callers feeding simulation state must store into an order-insensitive
// structure (a map) rather than reduce over the iteration.
func (d *SparseDijkstra) ForEachReached(f func(v int, dist float64)) {
	for v, dist := range d.dist {
		f(v, dist)
	}
}

// push inserts an item, maintaining the (distance, id) min-heap order.
func (d *SparseDijkstra) push(it dijItem) {
	d.heap = append(d.heap, it)
	i := len(d.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !dijLess(d.heap[i], d.heap[p]) {
			break
		}
		d.heap[i], d.heap[p] = d.heap[p], d.heap[i]
		i = p
	}
}

// pop removes and returns the minimum item.
func (d *SparseDijkstra) pop() dijItem {
	top := d.heap[0]
	n := len(d.heap) - 1
	d.heap[0] = d.heap[n]
	d.heap = d.heap[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && dijLess(d.heap[l], d.heap[small]) {
			small = l
		}
		if r < n && dijLess(d.heap[r], d.heap[small]) {
			small = r
		}
		if small == i {
			break
		}
		d.heap[i], d.heap[small] = d.heap[small], d.heap[i]
		i = small
	}
	return top
}

func dijLess(a, b dijItem) bool {
	return a.d < b.d || (a.d == b.d && a.id < b.id)
}

// SparseMEMD computes minimum expected meeting delays (Theorem 3) over the
// recorded-edge graph of a sparse store: the holder's row comes from its
// Theorem-2 elapsed-conditioned EMDs, every other row from the gossiped MI
// averages, exactly as in the dense MEMD — but the Dijkstra touches only
// recorded edges, so a contact costs O(E log V) over the observed contact
// graph instead of O(n²) over the population.
type SparseMEMD struct {
	dij   *SparseDijkstra
	valid bool
}

// NewSparseMEMD returns a calculator with empty scratch. Unlike the dense
// MEMD it is not sized to a network: one instance serves any store.
func NewSparseMEMD() *SparseMEMD {
	return &SparseMEMD{dij: NewSparseDijkstra()}
}

// Compute runs the Theorem-3 Dijkstra from self at time t. Subsequent
// Delay calls answer from the result.
func (m *SparseMEMD) Compute(self int, t float64, h *History, mi MeetingStore) {
	m.dij.Run(self, func(u int, relax func(v int, w float64)) {
		if u == self {
			// Own row: elapsed-time-conditioned EMDs (Theorem 2), scoped to
			// the store's coverage like a dense row over scoped ids.
			h.forEachMet(func(peer int) {
				if !mi.Covers(peer) {
					return
				}
				if d, ok := h.EMD(peer, t); ok {
					relax(peer, d)
				}
			})
			return
		}
		mi.ForEachKnown(u, relax)
	})
	m.valid = true
}

// ComputeStoreOnly builds every row, including the holder's, from the
// store's published mean intervals — the MEED-style A2 ablation, which the
// dense path implements by filling the whole MD matrix from MI.
func (m *SparseMEMD) ComputeStoreOnly(self int, mi MeetingStore) {
	m.dij.Run(self, func(u int, relax func(v int, w float64)) {
		mi.ForEachKnown(u, relax)
	})
	m.valid = true
}

// Delay returns the minimum expected meeting delay from the node of the
// last Compute to dst: +Inf for unreached destinations, 0 for the holder
// itself. It panics if Compute was never called.
func (m *SparseMEMD) Delay(dst int) float64 {
	if !m.valid {
		panic("core: SparseMEMD.Delay before Compute")
	}
	if d, ok := m.dij.Dist(dst); ok {
		return d
	}
	return math.Inf(1)
}

// ForEachReached visits every destination with a finite delay, in map
// order; see SparseDijkstra.ForEachReached for the determinism caveat.
func (m *SparseMEMD) ForEachReached(f func(dst int, delay float64)) {
	if !m.valid {
		panic("core: SparseMEMD.ForEachReached before Compute")
	}
	m.dij.ForEachReached(f)
}
