package core

import (
	"math"
	"testing"
)

// chainWorld builds histories and synced MIs for a 3-node chain
// 0 -10s- 1 -20s- 2 where each listed pair meets with a fixed period.
func chainWorld(t *testing.T) (*History, *MeetingMatrix) {
	t.Helper()
	h0 := NewHistory(0, 3, 0)
	h1 := NewHistory(1, 3, 0)
	h2 := NewHistory(2, 3, 0)
	// Pair (0,1): period 10; pair (1,2): period 20; (0,2) never meet.
	for ts := 0.0; ts <= 100; ts += 10 {
		h0.RecordContact(1, ts)
		h1.RecordContact(0, ts)
	}
	for ts := 0.0; ts <= 100; ts += 20 {
		h1.RecordContact(2, ts)
		h2.RecordContact(1, ts)
	}
	mi := NewFullMeetingMatrix(3)
	mi.UpdateOwnRow(0, 100, h0)
	m1 := NewFullMeetingMatrix(3)
	m1.UpdateOwnRow(1, 100, h1)
	m2 := NewFullMeetingMatrix(3)
	m2.UpdateOwnRow(2, 100, h2)
	SyncPair(mi, m1)
	SyncPair(m1, m2)
	SyncPair(mi, m1)
	return h0, mi
}

// TestMEMDChain checks Theorem 3 on the chain: node 0 reaches node 2 only
// via node 1, so MEMD(0,2) = EMD(0,1) + I(1,2).
func TestMEMDChain(t *testing.T) {
	h0, mi := chainWorld(t)
	calc := NewMEMD(3)
	at := 105.0 // elapsed 5 on the (0,1) pair
	calc.Compute(0, at, h0, mi)

	emd01, ok := h0.EMD(1, at)
	if !ok {
		t.Fatal("EMD(0,1) unavailable")
	}
	want := emd01 + 20 // I(1,2) = 20
	if got := calc.Delay(2); math.Abs(got-want) > 1e-9 {
		t.Errorf("MEMD(0,2) = %g, want %g", got, want)
	}
	if got := calc.Delay(1); math.Abs(got-emd01) > 1e-9 {
		t.Errorf("MEMD(0,1) = %g, want %g (direct)", got, emd01)
	}
	if got := calc.Delay(0); got != 0 {
		t.Errorf("MEMD(0,0) = %g, want 0", got)
	}
}

// TestMEMDPrefersShortcut: a direct but slow pair loses to a fast two-hop
// path.
func TestMEMDPrefersShortcut(t *testing.T) {
	h0 := NewHistory(0, 3, 0)
	// 0 meets 2 directly every 1000 s.
	for ts := 0.0; ts <= 3000; ts += 1000 {
		h0.RecordContact(2, ts)
	}
	// 0 meets 1 every 10 s.
	for ts := 0.0; ts <= 3000; ts += 10 {
		h0.RecordContact(1, ts)
	}
	mi := NewFullMeetingMatrix(3)
	mi.UpdateOwnRow(0, 3000, h0)
	// Node 1 publishes a 10 s average to node 2.
	h1 := NewHistory(1, 3, 0)
	for ts := 0.0; ts <= 3000; ts += 10 {
		h1.RecordContact(2, ts)
	}
	m1 := NewFullMeetingMatrix(3)
	m1.UpdateOwnRow(1, 3000, h1)
	SyncPair(mi, m1)

	calc := NewMEMD(3)
	calc.Compute(0, 3000, h0, mi)
	// Via 1: EMD(0,1)=10 + I(1,2)=10 = 20 << direct EMD(0,2)=1000.
	if got := calc.Delay(2); got > 30 {
		t.Errorf("MEMD(0,2) = %g, want the two-hop shortcut (~20)", got)
	}
}

func TestMEMDUnreachable(t *testing.T) {
	h := NewHistory(0, 3, 0)
	mi := NewFullMeetingMatrix(3)
	calc := NewMEMD(3)
	calc.Compute(0, 0, h, mi)
	if got := calc.Delay(2); !math.IsInf(got, 1) {
		t.Errorf("MEMD to unknown node = %g, want +Inf", got)
	}
	if got := calc.Delay(99); !math.IsInf(got, 1) {
		t.Errorf("MEMD to uncovered node = %g, want +Inf", got)
	}
}

func TestMEMDDelayBeforeComputePanics(t *testing.T) {
	calc := NewMEMD(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	calc.Delay(1)
}

// TestMEMDCommunityScoped checks the CR usage: a matrix over a node
// subset.
func TestMEMDCommunityScoped(t *testing.T) {
	ids := []int{4, 6, 8}
	h := NewHistory(4, 10, 0)
	for ts := 0.0; ts <= 100; ts += 25 {
		h.RecordContact(6, ts)
	}
	mi := NewMeetingMatrix(ids)
	mi.UpdateOwnRow(4, 100, h)
	h6 := NewHistory(6, 10, 0)
	for ts := 0.0; ts <= 100; ts += 50 {
		h6.RecordContact(8, ts)
	}
	m6 := NewMeetingMatrix(ids)
	m6.UpdateOwnRow(6, 100, h6)
	SyncPair(mi, m6)

	calc := NewMEMD(3)
	calc.Compute(4, 110, h, mi)
	emd, _ := h.EMD(6, 110)
	want := emd + 50
	if got := calc.Delay(8); math.Abs(got-want) > 1e-9 {
		t.Errorf("scoped MEMD(4,8) = %g, want %g", got, want)
	}
}
