package core

import (
	"fmt"
	"math"
	"sort"
)

// DefaultWindow is the default number of meeting intervals retained per
// peer. The paper uses "a set of sliding windows" without stating a size;
// 32 keeps several hours of bus-line meetings at typical meeting rates.
const DefaultWindow = 32

// intervalRing is a fixed-capacity ring buffer of meeting intervals,
// ordered oldest to newest.
type intervalRing struct {
	buf   []float64
	start int // index of oldest element
	n     int // number of stored elements
}

func newIntervalRing(capacity int) intervalRing {
	return intervalRing{buf: make([]float64, capacity)}
}

func (r *intervalRing) push(v float64) {
	if len(r.buf) == 0 {
		return
	}
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = v
		r.n++
		return
	}
	r.buf[r.start] = v
	r.start = (r.start + 1) % len(r.buf)
}

func (r *intervalRing) len() int { return r.n }

// forEach visits intervals oldest-first.
func (r *intervalRing) forEach(f func(v float64)) {
	for i := 0; i < r.n; i++ {
		f(r.buf[(r.start+i)%len(r.buf)])
	}
}

// History is one node's record of its contacts with every other node: the
// time of the last contact and a sliding window R_ij of past meeting
// intervals, as required by Section III-A.1 of the paper. Meeting intervals
// are measured between consecutive contact starts.
//
// History comes in two storage modes with identical estimator semantics:
// dense (NewHistory) keeps one slot per potential peer — O(n) per node,
// right for figure-scale runs — while sparse (NewSparseHistory) keeps a
// record per *observed* peer only, which is what lets the contact
// expectation protocols run at city scale. Every estimator iterates peers
// in ascending id order in both modes, so probabilities, EMDs and their
// float sums are bit-identical across modes.
//
// History is not safe for concurrent use; in the simulator each node owns
// one and all access happens on the single simulation goroutine.
type History struct {
	self   int
	n      int
	window int
	// Dense storage (nil in sparse mode).
	last  []float64 // last contact start time per peer; NaN = never met
	ivals []intervalRing
	met   []bool
	// Sparse storage over observed peers only (nil in dense mode).
	recs map[int]*peerRec
	ids  []int // met peer ids, ascending
}

// peerRec is one observed peer's sparse contact record.
type peerRec struct {
	last float64
	ring intervalRing
}

// NewHistory returns an empty dense-mode history for node self in a
// network of n nodes, retaining at most window intervals per peer.
// window <= 0 selects DefaultWindow.
func NewHistory(self, n, window int) *History {
	h := newHistoryCommon(self, n, window)
	h.last = make([]float64, n)
	h.ivals = make([]intervalRing, n)
	h.met = make([]bool, n)
	for i := range h.last {
		h.last[i] = math.NaN()
	}
	return h
}

// NewSparseHistory returns an empty sparse-mode history for node self in a
// network of n nodes: storage grows with the number of distinct peers
// actually contacted, never with n.
func NewSparseHistory(self, n, window int) *History {
	h := newHistoryCommon(self, n, window)
	h.recs = make(map[int]*peerRec)
	return h
}

func newHistoryCommon(self, n, window int) *History {
	if self < 0 || self >= n {
		panic(fmt.Sprintf("core: history self %d out of range [0,%d)", self, n))
	}
	if window <= 0 {
		window = DefaultWindow
	}
	return &History{self: self, n: n, window: window}
}

// Sparse reports whether the history uses sparse per-observed-peer
// storage.
func (h *History) Sparse() bool { return h.recs != nil }

// Self returns the owning node id.
func (h *History) Self() int { return h.self }

// N returns the network size the history was built for.
func (h *History) N() int { return h.n }

// Window returns the sliding-window capacity.
func (h *History) Window() int { return h.window }

// RecordContact records the start of a contact with peer at time t. If a
// previous contact exists, the interval since it is appended to the sliding
// window R(self,peer). Non-monotonic timestamps are rejected with a panic —
// the simulator never produces them, so they indicate a harness bug.
func (h *History) RecordContact(peer int, t float64) {
	if peer == h.self {
		panic("core: self-contact recorded")
	}
	if h.recs != nil {
		h.recordSparse(peer, t)
		return
	}
	if h.met[peer] {
		dt := t - h.last[peer]
		if dt < 0 {
			panic(fmt.Sprintf("core: contact time going backwards for peer %d: %g after %g", peer, t, h.last[peer]))
		}
		if h.ivals[peer].buf == nil {
			h.ivals[peer] = newIntervalRing(h.window)
		}
		h.ivals[peer].push(dt)
	}
	h.met[peer] = true
	h.last[peer] = t
}

// recordSparse is RecordContact's sparse-mode body: first meetings insert
// a record (keeping the met-peer list ascending), later ones append the
// interval to the peer's ring.
func (h *History) recordSparse(peer int, t float64) {
	if peer < 0 || peer >= h.n {
		panic(fmt.Sprintf("core: peer %d out of range [0,%d)", peer, h.n))
	}
	rec := h.recs[peer]
	if rec == nil {
		i := sort.SearchInts(h.ids, peer)
		h.ids = append(h.ids, 0)
		copy(h.ids[i+1:], h.ids[i:])
		h.ids[i] = peer
		h.recs[peer] = &peerRec{last: t}
		return
	}
	dt := t - rec.last
	if dt < 0 {
		panic(fmt.Sprintf("core: contact time going backwards for peer %d: %g after %g", peer, t, rec.last))
	}
	if rec.ring.buf == nil {
		rec.ring = newIntervalRing(h.window)
	}
	rec.ring.push(dt)
	rec.last = t
}

// peerState resolves peer's record in either storage mode: the last
// contact time, the interval ring (nil when none was ever needed) and
// whether the pair ever met.
func (h *History) peerState(peer int) (last float64, ring *intervalRing, met bool) {
	if h.recs != nil {
		rec := h.recs[peer]
		if rec == nil {
			return 0, nil, false
		}
		return rec.last, &rec.ring, true
	}
	if !h.met[peer] {
		return 0, nil, false
	}
	return h.last[peer], &h.ivals[peer], true
}

// forEachMet visits every peer the node has ever contacted, in ascending
// id order — the shared iteration every cross-peer estimator reduces over,
// identical in both storage modes.
func (h *History) forEachMet(f func(peer int)) {
	if h.recs != nil {
		for _, id := range h.ids {
			f(id)
		}
		return
	}
	for j, m := range h.met {
		if m {
			f(j)
		}
	}
}

// MetCount returns the number of distinct peers ever contacted.
func (h *History) MetCount() int {
	if h.recs != nil {
		return len(h.ids)
	}
	n := 0
	for _, m := range h.met {
		if m {
			n++
		}
	}
	return n
}

// Met reports whether the node has ever contacted peer.
func (h *History) Met(peer int) bool {
	_, _, met := h.peerState(peer)
	return met
}

// LastContact returns the start time of the most recent contact with peer.
// ok is false if they never met.
func (h *History) LastContact(peer int) (t float64, ok bool) {
	last, _, met := h.peerState(peer)
	if !met {
		return 0, false
	}
	return last, true
}

// Intervals returns a copy of the recorded meeting intervals R(self,peer),
// oldest first.
func (h *History) Intervals(peer int) []float64 {
	_, r, met := h.peerState(peer)
	if !met || r == nil {
		return []float64{}
	}
	out := make([]float64, 0, r.len())
	r.forEach(func(v float64) { out = append(out, v) })
	return out
}

// IntervalCount returns r_ij, the number of recorded intervals for peer.
func (h *History) IntervalCount(peer int) int {
	_, r, met := h.peerState(peer)
	if !met || r == nil {
		return 0
	}
	return r.len()
}

// MeanInterval returns the average of the recorded meeting intervals
// I(self,peer) = (1/r)·Σ Δt_k. ok is false when no interval is recorded.
// This is the quantity node self publishes into its MI row.
func (h *History) MeanInterval(peer int) (mean float64, ok bool) {
	_, r, met := h.peerState(peer)
	if !met || r == nil || r.len() == 0 {
		return 0, false
	}
	sum := 0.0
	r.forEach(func(v float64) { sum += v })
	return sum / float64(r.len()), true
}

// conditioned computes the window statistics of Theorems 1/2/4 for peer at
// time t:
//
//	m    = |M|  where M  = {Δt ∈ R : Δt > t - t0}
//	sumM = Σ of M
//	mTau = |Mτ| where Mτ = {Δt ∈ M : Δt ≤ t + tau - t0}
//	r    = |R|
//
// If the node never met peer, met is false and all counts are zero.
func (h *History) conditioned(peer int, t, tau float64) (m, mTau, r int, sumM float64, met bool) {
	last, ring, known := h.peerState(peer)
	if !known {
		return 0, 0, 0, 0, false
	}
	elapsed := t - last
	if elapsed < 0 {
		elapsed = 0
	}
	if ring == nil {
		return 0, 0, 0, 0, true
	}
	r = ring.len()
	ring.forEach(func(dt float64) {
		if dt > elapsed {
			m++
			sumM += dt
			if dt <= elapsed+tau {
				mTau++
			}
		}
	})
	return m, mTau, r, sumM, true
}

// EncounterProb returns the estimated probability (Eq. 4 in the proof of
// Theorem 1) that the node meets peer within (t, t+tau]:
//
//	P(Δt ≤ t+τ−t0 | Δt > t−t0) = mτ_ij / m_ij.
//
// Conventions: never-met peers yield 0; a met peer with an empty window
// (r = 0) yields 0; an overdue peer (r > 0 but m = 0, i.e. the elapsed time
// exceeds every recorded interval) yields 1 for tau > 0.
func (h *History) EncounterProb(peer int, t, tau float64) float64 {
	if peer == h.self || tau <= 0 {
		return 0
	}
	m, mTau, r, _, met := h.conditioned(peer, t, tau)
	if !met || r == 0 {
		return 0
	}
	if m == 0 {
		return 1 // overdue: every observed interval has already elapsed
	}
	return float64(mTau) / float64(m)
}

// EMD returns the expected meeting delay to peer at time t (Theorem 2):
//
//	EMD_ij(t) = (1/m)·Σ_{Δt ∈ M} Δt − (t − t0).
//
// ok is false when the node never met peer or has no recorded interval. An
// overdue peer (m = 0, r > 0) falls back to the unconditioned mean
// interval. The result is clamped to MinDelay to keep MD edge weights
// positive.
func (h *History) EMD(peer int, t float64) (emd float64, ok bool) {
	if peer == h.self {
		return 0, false
	}
	m, _, r, sumM, met := h.conditioned(peer, t, math.Inf(1))
	if !met || r == 0 {
		return math.Inf(1), false
	}
	if m == 0 {
		mean, _ := h.MeanInterval(peer)
		return math.Max(mean, MinDelay), true
	}
	last, _, _ := h.peerState(peer)
	elapsed := t - last
	if elapsed < 0 {
		elapsed = 0
	}
	v := sumM/float64(m) - elapsed
	return math.Max(v, MinDelay), true
}

// MinDelay is the smallest expected meeting delay reported by EMD. MD edge
// weights must stay strictly positive for Dijkstra.
const MinDelay = 1e-9

// EEV returns the expected encounter value of the node within (t, t+tau]
// (Theorem 1): the sum of EncounterProb over all other nodes. Never-met
// peers contribute an exact 0.0, so the sparse mode's met-peers-only sum is
// bit-identical to the dense all-peers scan.
func (h *History) EEV(t, tau float64) float64 {
	sum := 0.0
	if h.recs != nil {
		for _, j := range h.ids {
			sum += h.EncounterProb(j, t, tau)
		}
		return sum
	}
	for j := 0; j < h.n; j++ {
		if j == h.self {
			continue
		}
		sum += h.EncounterProb(j, t, tau)
	}
	return sum
}

// EEVSubset returns the expected encounter value restricted to the given
// node set — the intra-community EEV' used by the CR protocol (Section
// IV-C). The set may include self; it is skipped.
func (h *History) EEVSubset(t, tau float64, members []int) float64 {
	sum := 0.0
	for _, j := range members {
		if j == h.self {
			continue
		}
		sum += h.EncounterProb(j, t, tau)
	}
	return sum
}

// CommunityProb returns P_ik, the probability (Theorem 4's proof) that the
// node encounters at least one member of the given community within
// (t, t+tau]:
//
//	P_ik = 1 − Π_{u_j ∈ C_k} (1 − P(meet u_j in (t, t+τ])).
func (h *History) CommunityProb(t, tau float64, members []int) float64 {
	miss := 1.0
	for _, j := range members {
		if j == h.self {
			continue
		}
		miss *= 1 - h.EncounterProb(j, t, tau)
		if miss == 0 {
			return 1
		}
	}
	return 1 - miss
}

// ENEC returns the expected number of encountered communities within
// (t, t+tau] (Theorem 4). communities[k] lists the member node ids of
// community k and own is the node's own community index, which is excluded
// from the sum exactly as in Eq. 3.
func (h *History) ENEC(t, tau float64, communities [][]int, own int) float64 {
	sum := 0.0
	for k, members := range communities {
		if k == own {
			continue
		}
		sum += h.CommunityProb(t, tau, members)
	}
	return sum
}
