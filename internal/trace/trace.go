// Package trace records contact traces from a live world and replays them
// as scripted mobility, so different protocols can be compared on the
// exact same contact sequence — the paired-comparison methodology tests
// and the tracereplay example use. Traces serialise to a simple text
// format (one "start end a b" line per contact) via encoding-free
// fmt/bufio I/O.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"repro/internal/geo"
	"repro/internal/mobility"
)

// Contact is one pairwise contact episode [Start, End) between nodes A and
// B (A < B).
type Contact struct {
	Start, End float64
	A, B       int
}

// Trace is a set of contacts over n nodes.
type Trace struct {
	N        int
	Contacts []Contact
}

// Sort orders contacts by start time, then pair, giving the canonical
// serialisation order.
func (tr *Trace) Sort() {
	sort.SliceStable(tr.Contacts, func(i, j int) bool {
		a, b := tr.Contacts[i], tr.Contacts[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.A != b.A {
			return a.A < b.A
		}
		return a.B < b.B
	})
}

// Duration returns the latest contact end time.
func (tr *Trace) Duration() float64 {
	max := 0.0
	for _, c := range tr.Contacts {
		if c.End > max {
			max = c.End
		}
	}
	return max
}

// Write serialises the trace: a header line "nodes N" followed by one
// "start end a b" line per contact.
func (tr *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "nodes %d\n", tr.N); err != nil {
		return err
	}
	for _, c := range tr.Contacts {
		if _, err := fmt.Fprintf(bw, "%g %g %d %d\n", c.Start, c.End, c.A, c.B); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a serialised trace.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	tr := &Trace{}
	if _, err := fmt.Fscanf(br, "nodes %d\n", &tr.N); err != nil {
		return nil, fmt.Errorf("trace: bad header: %w", err)
	}
	for {
		var c Contact
		_, err := fmt.Fscanf(br, "%g %g %d %d\n", &c.Start, &c.End, &c.A, &c.B)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: bad contact line: %w", err)
		}
		if c.A < 0 || c.B < 0 || c.A >= tr.N || c.B >= tr.N || c.End < c.Start {
			return nil, fmt.Errorf("trace: invalid contact %+v", c)
		}
		tr.Contacts = append(tr.Contacts, c)
	}
	tr.Sort()
	return tr, nil
}

// Recorder accumulates contacts from observed up/down events.
type Recorder struct {
	n    int
	open map[[2]int]float64
	tr   *Trace
}

// NewRecorder returns a recorder for n nodes.
func NewRecorder(n int) *Recorder {
	return &Recorder{n: n, open: make(map[[2]int]float64), tr: &Trace{N: n}}
}

// Up records a contact start between a and b at time t.
func (r *Recorder) Up(t float64, a, b int) {
	if a > b {
		a, b = b, a
	}
	r.open[[2]int{a, b}] = t
}

// Down records a contact end; unmatched downs are ignored.
func (r *Recorder) Down(t float64, a, b int) {
	if a > b {
		a, b = b, a
	}
	key := [2]int{a, b}
	start, ok := r.open[key]
	if !ok {
		return
	}
	delete(r.open, key)
	r.tr.Contacts = append(r.tr.Contacts, Contact{Start: start, End: t, A: a, B: b})
}

// Finish closes all still-open contacts at time t and returns the sorted
// trace.
func (r *Recorder) Finish(t float64) *Trace {
	for key, start := range r.open {
		r.tr.Contacts = append(r.tr.Contacts, Contact{Start: start, End: t, A: key[0], B: key[1]})
	}
	r.open = make(map[[2]int]float64)
	r.tr.Sort()
	return r.tr
}

// ReplayMovers builds one mover per node that reproduces the trace's
// contact sequence geometrically: every node idles at a far-apart parking
// position and, during each of its contacts, teleports to a rendezvous
// point unique to that contact pair episode. Contacts involving the same
// node at overlapping times all map to rendezvous points within range of
// the node's parking row — overlapping contacts of one node are supported
// as long as the involved peers differ.
func (tr *Trace) ReplayMovers(rangeM float64) []mobility.Mover {
	movers := make([]mobility.Mover, tr.N)
	// Parking positions: a row with 100×range spacing.
	park := func(i int) geo.Point { return geo.Point{X: float64(i) * 100 * rangeM, Y: 0} }
	// Rendezvous for contact k: far below the parking row, spaced apart.
	rendezvous := func(k int) geo.Point {
		return geo.Point{X: float64(k) * 100 * rangeM, Y: -1000 * rangeM}
	}
	// Per node, collect its contact episodes.
	type episode struct {
		start, end float64
		at         geo.Point
	}
	eps := make([][]episode, tr.N)
	for k, c := range tr.Contacts {
		p := rendezvous(k)
		eps[c.A] = append(eps[c.A], episode{c.Start, c.End, p})
		eps[c.B] = append(eps[c.B], episode{c.Start, c.End, geo.Point{X: p.X + rangeM/2, Y: p.Y}})
	}
	for i := 0; i < tr.N; i++ {
		i := i
		myEps := eps[i]
		home := park(i)
		movers[i] = &replayMover{at: func(t float64) geo.Point {
			for _, e := range myEps {
				if t >= e.start && t < e.end {
					return e.at
				}
			}
			return home
		}}
	}
	return movers
}

type replayMover struct {
	t  float64
	at func(t float64) geo.Point
}

func (m *replayMover) Pos() geo.Point { return m.at(m.t) }
func (m *replayMover) Step(dt float64) geo.Point {
	m.t += dt
	return m.at(m.t)
}
