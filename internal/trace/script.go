package trace

// Binary contact scripts: the exact up/down event sequence of a recorded
// world, tick-indexed and in engine firing order, so a replayed world can
// drive links straight from the script and reproduce the recording
// bit-for-bit (within-tick ordering included — downs in link-list order
// before ups in ascending pair order, exactly as the live detector fires
// them). This is the fast-path counterpart of the episode-based Trace
// text format above: Trace is for human-readable interchange, Script is
// for content-addressed record/replay through the result store.
//
// Wire format (all integers unsigned varints unless noted):
//
//	magic   "DTNTRC1\n"          8 bytes
//	n       node count
//	events  event count
//	per event:
//	  dtick   tick delta vs the previous event (first event: absolute)
//	  flag    1 byte: 0 = contact down, 1 = contact up
//	  a, b    node ids, a < b
//
// Decoding is strict: any truncation, bad magic, out-of-range id or
// unknown flag is an error. Callers treat a decode error as a cache miss
// and re-record, so a corrupt or torn blob can never replay garbage.

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// scriptMagic identifies (and versions) the binary script format.
const scriptMagic = "DTNTRC1\n"

// Event is one scripted contact transition at a tick index. Tick counts
// world ticks from 1 (the engine increments before detection), A < B.
type Event struct {
	Tick uint64
	Up   bool
	A, B int32
}

// Script is the complete contact event log of one recorded world.
type Script struct {
	N      int
	Events []Event
}

// Encode serialises the script to the binary wire format.
func (s *Script) Encode() []byte {
	buf := make([]byte, 0, len(scriptMagic)+2*binary.MaxVarintLen64+len(s.Events)*(2*binary.MaxVarintLen32+binary.MaxVarintLen64+1))
	buf = append(buf, scriptMagic...)
	buf = binary.AppendUvarint(buf, uint64(s.N))
	buf = binary.AppendUvarint(buf, uint64(len(s.Events)))
	prev := uint64(0)
	for _, e := range s.Events {
		buf = binary.AppendUvarint(buf, e.Tick-prev)
		prev = e.Tick
		if e.Up {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.AppendUvarint(buf, uint64(e.A))
		buf = binary.AppendUvarint(buf, uint64(e.B))
	}
	return buf
}

// errCorrupt is wrapped by every DecodeScript failure.
var errCorrupt = errors.New("corrupt contact script")

// DecodeScript parses a binary script, validating structure and every
// event. Any deviation from the wire contract is an error.
func DecodeScript(data []byte) (*Script, error) {
	if len(data) < len(scriptMagic) || string(data[:len(scriptMagic)]) != scriptMagic {
		return nil, fmt.Errorf("trace: %w: bad magic", errCorrupt)
	}
	data = data[len(scriptMagic):]
	uv := func() (uint64, error) {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, fmt.Errorf("trace: %w: truncated varint", errCorrupt)
		}
		data = data[n:]
		return v, nil
	}
	n, err := uv()
	if err != nil {
		return nil, err
	}
	count, err := uv()
	if err != nil {
		return nil, err
	}
	if n > 1<<31 || count > uint64(len(data)) { // every event is >= 4 bytes; cheap bound pre-alloc
		return nil, fmt.Errorf("trace: %w: implausible header", errCorrupt)
	}
	s := &Script{N: int(n), Events: make([]Event, 0, count)}
	tick := uint64(0)
	for i := uint64(0); i < count; i++ {
		d, err := uv()
		if err != nil {
			return nil, err
		}
		tick += d
		if len(data) == 0 {
			return nil, fmt.Errorf("trace: %w: truncated event", errCorrupt)
		}
		flag := data[0]
		data = data[1:]
		if flag > 1 {
			return nil, fmt.Errorf("trace: %w: bad event flag %d", errCorrupt, flag)
		}
		a, err := uv()
		if err != nil {
			return nil, err
		}
		b, err := uv()
		if err != nil {
			return nil, err
		}
		if a >= b || b >= n {
			return nil, fmt.Errorf("trace: %w: bad pair (%d,%d) of %d nodes", errCorrupt, a, b, n)
		}
		s.Events = append(s.Events, Event{Tick: tick, Up: flag == 1, A: int32(a), B: int32(b)})
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("trace: %w: %d trailing bytes", errCorrupt, len(data))
	}
	return s, nil
}

// ScriptRecorder accumulates contact events in engine firing order; attach
// its Note method as a world's contact hook.
type ScriptRecorder struct {
	n      int
	events []Event
}

// NewScriptRecorder returns a recorder for an n-node world.
func NewScriptRecorder(n int) *ScriptRecorder {
	return &ScriptRecorder{n: n}
}

// Note records one contact transition (network.World OnContact signature).
func (r *ScriptRecorder) Note(tick uint64, up bool, a, b int32) {
	r.events = append(r.events, Event{Tick: tick, Up: up, A: a, B: b})
}

// Script returns the recorded script. The recorder may keep recording;
// the returned script snapshots the events seen so far.
func (r *ScriptRecorder) Script() *Script {
	return &Script{N: r.n, Events: r.events}
}

// Episodes converts the script into the episode-based Trace form (open
// contacts closed at end), for stats and text interchange. tick is the
// world tick interval in seconds.
func (s *Script) Episodes(tick, end float64) *Trace {
	r := NewRecorder(s.N)
	for _, e := range s.Events {
		t := float64(e.Tick) * tick
		if e.Up {
			r.Up(t, int(e.A), int(e.B))
		} else {
			r.Down(t, int(e.A), int(e.B))
		}
	}
	return r.Finish(end)
}
