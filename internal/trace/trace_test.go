package trace

import (
	"strings"
	"testing"

	"repro/internal/buffer"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/sim"
)

func TestRoundTrip(t *testing.T) {
	tr := &Trace{N: 4, Contacts: []Contact{
		{Start: 5, End: 9, A: 0, B: 1},
		{Start: 1, End: 3, A: 2, B: 3},
	}}
	var sb strings.Builder
	if err := tr.Write(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 4 || len(got.Contacts) != 2 {
		t.Fatalf("round trip = %+v", got)
	}
	// Read sorts by start time.
	if got.Contacts[0].A != 2 || got.Contacts[1].B != 1 {
		t.Fatalf("sorted contacts = %+v", got.Contacts)
	}
	if got.Duration() != 9 {
		t.Errorf("Duration = %g", got.Duration())
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	for name, in := range map[string]string{
		"no header":   "1 2 0 1\n",
		"bad node":    "nodes 2\n1 2 0 5\n",
		"end < start": "nodes 2\n5 2 0 1\n",
		"negative":    "nodes 2\n1 2 -1 1\n",
	} {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder(3)
	r.Up(1, 1, 0) // order normalised
	r.Up(2, 1, 2)
	r.Down(4, 0, 1)
	r.Down(9, 99, 98) // unmatched: ignored
	tr := r.Finish(10)
	if len(tr.Contacts) != 2 {
		t.Fatalf("contacts = %+v", tr.Contacts)
	}
	if c := tr.Contacts[0]; c.A != 0 || c.B != 1 || c.Start != 1 || c.End != 4 {
		t.Errorf("contact 0 = %+v", c)
	}
	if c := tr.Contacts[1]; c.Start != 2 || c.End != 10 { // closed by Finish
		t.Errorf("contact 1 = %+v", c)
	}
}

// TestReplayReproducesContacts: record a synthetic trace, replay it in a
// world, and verify the same contact pairs happen at the same times.
func TestReplayReproducesContacts(t *testing.T) {
	tr := &Trace{N: 3, Contacts: []Contact{
		{Start: 2, End: 6, A: 0, B: 1},
		{Start: 8, End: 12, A: 1, B: 2},
	}}
	tr.Sort()
	movers := tr.ReplayMovers(10)
	runner := sim.NewRunner(1)
	w := network.New(network.Config{Range: 10, Bandwidth: 1e6}, runner)
	rec := NewRecorder(3)
	for _, mv := range movers {
		w.AddNode(mv, buffer.New(0, nil), &observer{rec: rec})
	}
	w.Start()
	runner.Run(20)
	got := rec.Finish(20)
	if len(got.Contacts) != 2 {
		t.Fatalf("replayed contacts = %+v", got.Contacts)
	}
	for i, c := range got.Contacts {
		want := tr.Contacts[i]
		if c.A != want.A || c.B != want.B {
			t.Errorf("contact %d pair = (%d,%d), want (%d,%d)", i, c.A, c.B, want.A, want.B)
		}
		// Tick quantisation allows up to one tick of skew.
		if c.Start < want.Start || c.Start > want.Start+1.5 {
			t.Errorf("contact %d start = %g, want ~%g", i, c.Start, want.Start)
		}
	}
}

// observer records contacts through a router shim. Each node reports only
// pairs where it is the lower id, so episodes are recorded once.
type observer struct {
	routing.Base
	rec *Recorder
}

func (o *observer) ContactUp(t float64, peer *network.Node) {
	if o.Self.ID < peer.ID {
		o.rec.Up(t, o.Self.ID, peer.ID)
	}
}

func (o *observer) ContactDown(t float64, peer *network.Node) {
	o.Base.ContactDown(t, peer)
	if o.Self.ID < peer.ID {
		o.rec.Down(t, o.Self.ID, peer.ID)
	}
}

func (o *observer) NextTransfer(float64, *network.Node) *network.Plan { return nil }

var _ network.Router = (*observer)(nil)

// TestReplayPairedProtocolComparison runs two protocols on one recorded
// trace and checks both observe the identical contact count — the paired
// methodology the tracereplay example demonstrates.
func TestReplayPairedProtocolComparison(t *testing.T) {
	tr := &Trace{N: 4, Contacts: []Contact{
		{Start: 1, End: 4, A: 0, B: 1},
		{Start: 5, End: 8, A: 1, B: 2},
		{Start: 9, End: 12, A: 2, B: 3},
	}}
	tr.Sort()
	run := func(mk func() network.Router) (contacts, delivered int) {
		runner := sim.NewRunner(0.5)
		w := network.New(network.Config{Range: 10, Bandwidth: 1e6}, runner)
		for _, mv := range tr.ReplayMovers(10) {
			w.AddNode(mv, buffer.New(0, nil), mk())
		}
		w.Start()
		w.CreateMessage(0, 0, 3, 1000, 1e6)
		runner.Run(15)
		s := w.Metrics.Summary()
		return s.Contacts, s.Delivered
	}
	cEpi, dEpi := run(func() network.Router { return routing.NewEpidemic() })
	cDir, dDir := run(func() network.Router { return routing.NewDirect() })
	if cEpi != cDir {
		t.Errorf("contact counts differ across protocols: %d vs %d", cEpi, cDir)
	}
	if dEpi != 1 {
		t.Errorf("epidemic on the chain trace should deliver: %d", dEpi)
	}
	if dDir != 0 {
		t.Errorf("direct delivery should fail on the chain trace: %d", dDir)
	}
}
