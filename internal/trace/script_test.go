package trace

import (
	"bytes"
	"testing"
)

func sampleScript() *Script {
	return &Script{N: 40, Events: []Event{
		{Tick: 3, Up: true, A: 0, B: 7},
		{Tick: 3, Up: true, A: 2, B: 39},
		{Tick: 19, Up: false, A: 0, B: 7},
		{Tick: 200, Up: true, A: 11, B: 12},
		{Tick: 100000, Up: false, A: 11, B: 12},
	}}
}

// TestScriptRoundTrip pins encode → decode as the identity, including the
// empty script.
func TestScriptRoundTrip(t *testing.T) {
	for _, s := range []*Script{sampleScript(), {N: 5}} {
		got, err := DecodeScript(s.Encode())
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.N != s.N || len(got.Events) != len(s.Events) {
			t.Fatalf("round trip changed shape: %+v vs %+v", got, s)
		}
		for i := range s.Events {
			if got.Events[i] != s.Events[i] {
				t.Errorf("event %d: got %+v want %+v", i, got.Events[i], s.Events[i])
			}
		}
	}
}

// TestScriptEncodeDeterministic pins that identical scripts encode to
// identical bytes — the property content addressing rests on.
func TestScriptEncodeDeterministic(t *testing.T) {
	if !bytes.Equal(sampleScript().Encode(), sampleScript().Encode()) {
		t.Fatal("two encodings of the same script differ")
	}
}

// TestScriptDecodeCorrupt feeds every class of damage the wire contract
// names — truncation at each region, bad magic, bad flag, bad pair,
// trailing bytes — and requires a decode error for each. Callers map any
// error to a cache miss, so these are the lines that keep a torn blob
// from replaying garbage.
func TestScriptDecodeCorrupt(t *testing.T) {
	good := sampleScript().Encode()
	cases := map[string][]byte{
		"empty":            {},
		"short magic":      good[:4],
		"bad magic":        append([]byte("DTNTRC9\n"), good[8:]...),
		"no header":        good[:8],
		"truncated events": good[:len(good)-3],
		"trailing bytes":   append(append([]byte{}, good...), 0),
	}
	// Flip the first event's flag byte (offset: 8 magic + 1 n + 1 count +
	// 1 dtick for this sample) to an unknown value.
	badFlag := append([]byte{}, good...)
	badFlag[11] = 7
	cases["bad flag"] = badFlag
	// A pair with a >= b: encode by hand.
	badPair := (&Script{N: 10, Events: []Event{{Tick: 1, Up: true, A: 5, B: 5}}}).Encode()
	cases["pair a==b"] = badPair
	outOfRange := (&Script{N: 10, Events: []Event{{Tick: 1, Up: true, A: 5, B: 10}}}).Encode()
	cases["pair b==n"] = outOfRange

	for name, data := range cases {
		if _, err := DecodeScript(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	if _, err := DecodeScript(good); err != nil {
		t.Fatalf("control: good blob failed to decode: %v", err)
	}
}

// TestScriptEpisodes pins the Script → Trace conversion: paired up/down
// events become closed episodes, unpaired ups close at end.
func TestScriptEpisodes(t *testing.T) {
	s := &Script{N: 4, Events: []Event{
		{Tick: 2, Up: true, A: 0, B: 1},
		{Tick: 6, Up: false, A: 0, B: 1},
		{Tick: 8, Up: true, A: 2, B: 3}, // never closed
	}}
	tr := s.Episodes(0.5, 10)
	if len(tr.Contacts) != 2 {
		t.Fatalf("got %d episodes, want 2", len(tr.Contacts))
	}
	tr.Sort()
	if c := tr.Contacts[0]; c.Start != 1 || c.End != 3 || c.A != 0 || c.B != 1 {
		t.Errorf("episode 0 = %+v, want {1 3 0 1}", c)
	}
	if c := tr.Contacts[1]; c.Start != 4 || c.End != 10 {
		t.Errorf("open episode closed at %g-%g, want 4-10", c.Start, c.End)
	}
}
