package traffic

import (
	"testing"

	"repro/internal/buffer"
	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/msg"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// sink is a do-nothing router.
type sink struct{}

func (sink) Init(*network.Node, *network.World)                {}
func (sink) InitialReplicas(*msg.Message) int                  { return 1 }
func (sink) ContactUp(float64, *network.Node)                  {}
func (sink) ContactDown(float64, *network.Node)                {}
func (sink) Created(float64, *msg.Copy)                        {}
func (sink) Received(float64, *msg.Copy, *network.Node)        {}
func (sink) Sent(float64, *network.Plan, *network.Node, bool)  {}
func (sink) NextTransfer(float64, *network.Node) *network.Plan { return nil }

func sinkWorld(n int) (*network.World, *sim.Runner) {
	runner := sim.NewRunner(1)
	w := network.New(network.Config{Range: 10, Bandwidth: 1000}, runner)
	for i := 0; i < n; i++ {
		w.AddNode(&mobility.Stationary{P: geo.Point{X: float64(1000 * i)}}, buffer.New(0, nil), sink{})
	}
	w.Start()
	return w, runner
}

func TestUniformGeneratesInWindow(t *testing.T) {
	w, runner := sinkWorld(5)
	var created []*msg.Message
	u := &Uniform{MinInterval: 10, MaxInterval: 20, Size: 500, TTL: 300, Start: 0, Stop: 500, Rng: xrand.New(1)}
	u.Install(w)
	runner.Run(1000)
	total := 0
	for _, n := range w.Nodes() {
		for _, c := range n.Buf.All() {
			created = append(created, c.M)
			total++
		}
	}
	gen := w.Metrics.Generated()
	// Expected roughly 500/15 ≈ 33 messages.
	if gen < 25 || gen > 50 {
		t.Fatalf("generated %d messages, want ~33", gen)
	}
	for _, m := range created {
		if m.Created > 500 {
			t.Errorf("message created at %g, after stop", m.Created)
		}
		if m.From == m.To {
			t.Error("self-addressed message")
		}
		if m.Size != 500 || m.TTL() != 300 {
			t.Errorf("message params wrong: size=%d ttl=%g", m.Size, m.TTL())
		}
	}
	_ = total
}

func TestUniformDeterministic(t *testing.T) {
	run := func() int {
		w, runner := sinkWorld(5)
		u := &Uniform{MinInterval: 5, MaxInterval: 10, Size: 100, TTL: 1e6, Start: 0, Stop: 200, Rng: xrand.New(9)}
		u.Install(w)
		runner.Run(300)
		return w.Metrics.Generated()
	}
	if run() != run() {
		t.Fatal("same-seed traffic diverged")
	}
}

func TestUniformValidation(t *testing.T) {
	w, _ := sinkWorld(2)
	for name, u := range map[string]*Uniform{
		"nil rng":      {MinInterval: 1, MaxInterval: 2},
		"bad interval": {MinInterval: 5, MaxInterval: 2, Rng: xrand.New(1)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			u.Install(w)
		}()
	}
}

func TestScriptCreatesExactMessages(t *testing.T) {
	w, runner := sinkWorld(4)
	s := &Script{Items: []Item{
		{At: 5, From: 0, To: 1, Size: 100, TTL: 50},
		{At: 2, From: 2, To: 3, Size: 200, TTL: 60},
	}}
	s.Install(w)
	runner.Run(10)
	if w.Metrics.Generated() != 2 {
		t.Fatalf("generated = %d, want 2", w.Metrics.Generated())
	}
	if !w.Node(0).Buf.Has(2) && !w.Node(0).Buf.Has(1) {
		// Message ids are assigned in firing (time) order: the t=2 item
		// gets id 1 at node 2, the t=5 item id 2 at node 0.
		t.Error("script messages missing")
	}
	if w.Node(2).Buf.Len() != 1 || w.Node(0).Buf.Len() != 1 {
		t.Errorf("buffers: node2=%d node0=%d", w.Node(2).Buf.Len(), w.Node(0).Buf.Len())
	}
}
