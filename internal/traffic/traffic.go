// Package traffic generates application messages. The paper does not state
// its generator; following ONE's defaults for this scenario class, the
// Uniform generator creates one message per uniformly drawn interval
// between random distinct node pairs (documented in EXPERIMENTS.md).
package traffic

import (
	"sort"

	"repro/internal/network"
	"repro/internal/xrand"
)

// Generator installs message-creation events into a world.
type Generator interface {
	Install(w *network.World)
}

// Uniform creates one Size-byte message with lifetime TTL per interval
// drawn uniformly from [MinInterval, MaxInterval], between a uniformly
// random ordered pair of distinct nodes, from time Start until Stop.
type Uniform struct {
	MinInterval, MaxInterval float64
	Size                     int
	TTL                      float64
	Start, Stop              float64
	Rng                      *xrand.Source
}

// Install implements Generator.
func (u *Uniform) Install(w *network.World) {
	if u.Rng == nil {
		panic("traffic: Uniform needs a random source")
	}
	if u.MinInterval <= 0 || u.MaxInterval < u.MinInterval {
		panic("traffic: invalid interval range")
	}
	var schedule func(at float64)
	schedule = func(at float64) {
		if at > u.Stop {
			return
		}
		w.Runner().Events.Schedule(at, func(t float64) {
			n := w.N()
			from := u.Rng.Intn(n)
			to := u.Rng.Intn(n - 1)
			if to >= from {
				to++
			}
			w.CreateMessage(t, from, to, u.Size, u.TTL)
			schedule(t + u.Rng.Uniform(u.MinInterval, u.MaxInterval))
		})
	}
	schedule(u.Start + u.Rng.Uniform(u.MinInterval, u.MaxInterval))
}

// Item is one scripted message for the Script generator.
type Item struct {
	At       float64
	From, To int
	Size     int
	TTL      float64
}

// Script creates an explicit list of messages; tests and the motivating
// Figure-1 example use it.
type Script struct {
	Items []Item
}

// Install implements Generator.
func (s *Script) Install(w *network.World) {
	items := append([]Item(nil), s.Items...)
	sort.SliceStable(items, func(i, j int) bool { return items[i].At < items[j].At })
	for _, it := range items {
		it := it
		w.Runner().Events.Schedule(it.At, func(t float64) {
			w.CreateMessage(t, it.From, it.To, it.Size, it.TTL)
		})
	}
}
