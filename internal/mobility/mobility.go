// Package mobility provides the node movement models: map-route bus
// movement over a generated road map (the paper's vehicular scenario),
// random waypoint, community home-zone movement, and a stationary model
// for tests. Movers are pure state machines advanced by the simulation
// tick; they own no clocks and draw all randomness from injected streams.
package mobility

import (
	"repro/internal/geo"
	"repro/internal/xrand"
)

// Mover advances one node's position.
type Mover interface {
	// Pos returns the current position.
	Pos() geo.Point
	// Step advances the mover by dt seconds and returns the new position.
	Step(dt float64) geo.Point
}

// Factory builds the mover for a node id with its private random stream.
type Factory func(node int, rng *xrand.Source) Mover

// Stationary is a mover that never moves. Useful for protocol unit tests
// with scripted contacts.
type Stationary struct {
	P geo.Point
}

// Pos implements Mover.
func (s *Stationary) Pos() geo.Point { return s.P }

// Step implements Mover.
func (s *Stationary) Step(float64) geo.Point { return s.P }

// Waypoint is a generic waypoint-walker: it travels in straight lines to
// successive targets at per-leg speeds and pauses between legs. The
// concrete models below differ only in how they choose the next target,
// expressed by the next callback.
type Waypoint struct {
	pos     geo.Point
	target  geo.Point
	speed   float64
	waiting float64 // remaining pause, seconds

	minSpeed, maxSpeed float64
	minWait, maxWait   float64
	rng                *xrand.Source
	next               func() geo.Point
}

// NewWaypoint returns a walker starting at start that picks targets with
// next and draws speeds from [minSpeed, maxSpeed] and pauses from
// [minWait, maxWait].
func NewWaypoint(start geo.Point, minSpeed, maxSpeed, minWait, maxWait float64, rng *xrand.Source, next func() geo.Point) *Waypoint {
	if minSpeed <= 0 || maxSpeed < minSpeed {
		panic("mobility: invalid speed range")
	}
	w := &Waypoint{
		pos:      start,
		minSpeed: minSpeed, maxSpeed: maxSpeed,
		minWait: minWait, maxWait: maxWait,
		rng:  rng,
		next: next,
	}
	w.beginLeg()
	return w
}

func (w *Waypoint) beginLeg() {
	w.target = w.next()
	w.speed = w.rng.Uniform(w.minSpeed, w.maxSpeed)
}

// Pos implements Mover.
func (w *Waypoint) Pos() geo.Point { return w.pos }

// Step implements Mover.
func (w *Waypoint) Step(dt float64) geo.Point {
	for dt > 0 {
		if w.waiting > 0 {
			if w.waiting >= dt {
				w.waiting -= dt
				return w.pos
			}
			dt -= w.waiting
			w.waiting = 0
		}
		remain := w.pos.Dist(w.target)
		travel := w.speed * dt
		if travel < remain {
			w.pos = w.pos.Lerp(w.target, travel/remain)
			return w.pos
		}
		// Reached the target within this step.
		w.pos = w.target
		if remain > 0 {
			dt -= remain / w.speed
		}
		if w.maxWait > 0 {
			w.waiting = w.rng.Uniform(w.minWait, w.maxWait)
		}
		w.beginLeg()
	}
	return w.pos
}

// NewRandomWaypoint returns the classic random-waypoint model inside rect.
func NewRandomWaypoint(rect geo.Rect, minSpeed, maxSpeed, minWait, maxWait float64, rng *xrand.Source) *Waypoint {
	randIn := func() geo.Point {
		return geo.Point{
			X: rng.Uniform(rect.Min.X, rect.Max.X),
			Y: rng.Uniform(rect.Min.Y, rect.Max.Y),
		}
	}
	return NewWaypoint(randIn(), minSpeed, maxSpeed, minWait, maxWait, rng, randIn)
}

// NewHomeZone returns a community mover: with probability pHome the next
// waypoint falls inside the node's home zone, otherwise anywhere in the
// world rect. It produces the strong intra-community / weak
// inter-community contact asymmetry of Section IV-A.
func NewHomeZone(world, home geo.Rect, pHome, minSpeed, maxSpeed, minWait, maxWait float64, rng *xrand.Source) *Waypoint {
	pick := func(r geo.Rect) geo.Point {
		return geo.Point{
			X: rng.Uniform(r.Min.X, r.Max.X),
			Y: rng.Uniform(r.Min.Y, r.Max.Y),
		}
	}
	next := func() geo.Point {
		if rng.Bool(pHome) {
			return pick(home)
		}
		return pick(world)
	}
	return NewWaypoint(pick(home), minSpeed, maxSpeed, minWait, maxWait, rng, next)
}
