package mobility

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/mapgen"
	"repro/internal/xrand"
)

func TestStationary(t *testing.T) {
	s := &Stationary{P: geo.Point{X: 3, Y: 4}}
	if s.Pos() != (geo.Point{X: 3, Y: 4}) {
		t.Fatal("Pos wrong")
	}
	if s.Step(100) != s.Pos() {
		t.Fatal("stationary moved")
	}
}

func TestWaypointReachesTargets(t *testing.T) {
	target := geo.Point{X: 100, Y: 0}
	hits := 0
	w := NewWaypoint(geo.Point{}, 10, 10, 0, 0, xrand.New(1), func() geo.Point {
		hits++
		return target
	})
	// Speed 10, distance 100: ten 1-second steps reach the target.
	for i := 0; i < 10; i++ {
		w.Step(1)
	}
	if w.Pos().Dist(target) > 1e-9 {
		t.Fatalf("position %v, want %v", w.Pos(), target)
	}
}

func TestWaypointSpeedBound(t *testing.T) {
	rng := xrand.New(2)
	rect := geo.NewRect(geo.Point{}, geo.Point{X: 1000, Y: 1000})
	w := NewRandomWaypoint(rect, 2, 14, 0, 0, rng)
	prev := w.Pos()
	for i := 0; i < 1000; i++ {
		next := w.Step(0.5)
		if d := prev.Dist(next); d > 14*0.5+1e-9 {
			t.Fatalf("moved %g m in 0.5 s, exceeds max speed", d)
		}
		prev = next
	}
}

func TestRandomWaypointStaysInRect(t *testing.T) {
	rng := xrand.New(3)
	rect := geo.NewRect(geo.Point{X: 100, Y: 100}, geo.Point{X: 300, Y: 200})
	w := NewRandomWaypoint(rect, 5, 10, 1, 5, rng)
	for i := 0; i < 5000; i++ {
		p := w.Step(0.5)
		if !rect.Contains(p) {
			t.Fatalf("position %v left rect %v", p, rect)
		}
	}
}

func TestWaypointPauses(t *testing.T) {
	// Min and max wait equal: deterministic pause of 10 s at each target.
	w := NewWaypoint(geo.Point{}, 10, 10, 10, 10, xrand.New(4), func() geo.Point {
		return geo.Point{X: 1, Y: 0} // always 1 m away
	})
	w.Step(0.1) // reach the target (0.1 s at 10 m/s)
	p := w.Pos()
	if got := w.Step(5); got != p {
		t.Fatal("moved during pause")
	}
}

func TestWaypointInvalidSpeedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWaypoint(geo.Point{}, 0, 0, 0, 0, xrand.New(1), func() geo.Point { return geo.Point{} })
}

func TestHomeZoneBias(t *testing.T) {
	world := geo.NewRect(geo.Point{}, geo.Point{X: 1000, Y: 1000})
	home := geo.NewRect(geo.Point{}, geo.Point{X: 100, Y: 100})
	frac := func(pHome float64, seed int64) float64 {
		w := NewHomeZone(world, home, pHome, 5, 15, 0, 0, xrand.New(seed))
		inHome := 0
		const steps = 20000
		for i := 0; i < steps; i++ {
			if home.Contains(w.Step(1)) {
				inHome++
			}
		}
		return float64(inHome) / steps
	}
	biased, unbiased := frac(0.9, 5), frac(0, 5)
	if biased < 4*unbiased || biased < 0.15 {
		t.Errorf("home fraction biased=%g unbiased=%g, want a strong home bias", biased, unbiased)
	}
}

func TestBusFollowsLine(t *testing.T) {
	rm := mapgen.Generate(mapgen.DefaultConfig(), 1)
	b := NewBus(rm, rm.Lines[0], 5, 10, 2, 5, xrand.New(6))
	if b.Line().ID != 0 {
		t.Fatal("wrong line")
	}
	prev := b.Pos()
	moved := false
	for i := 0; i < 2000; i++ {
		p := b.Step(0.5)
		if !rm.Bounds.Contains(p) {
			t.Fatalf("bus left the map at %v", p)
		}
		if d := prev.Dist(p); d > 10*0.5+1e-9 {
			t.Fatalf("bus moved %g m in one 0.5 s step", d)
		}
		if p != prev {
			moved = true
		}
		prev = p
	}
	if !moved {
		t.Fatal("bus never moved")
	}
}

func TestBusDeterministic(t *testing.T) {
	rm := mapgen.Generate(mapgen.DefaultConfig(), 1)
	a := NewBus(rm, rm.Lines[1], 5, 10, 2, 5, xrand.New(7))
	b := NewBus(rm, rm.Lines[1], 5, 10, 2, 5, xrand.New(7))
	for i := 0; i < 500; i++ {
		if a.Step(0.5) != b.Step(0.5) {
			t.Fatal("same-seed buses diverged")
		}
	}
	c := NewBus(rm, rm.Lines[1], 5, 10, 2, 5, xrand.New(8))
	diverged := false
	for i := 0; i < 500; i++ {
		if a.Step(0.5) != c.Step(0.5) {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("different seeds produced identical bus trajectories")
	}
}

func TestBusVisitsStops(t *testing.T) {
	rm := mapgen.Generate(mapgen.DefaultConfig(), 1)
	line := rm.Lines[0]
	b := NewBus(rm, line, 10, 14, 1, 2, xrand.New(9))
	visited := map[int]bool{}
	for i := 0; i < 200000 && len(visited) < len(line.Stops); i++ {
		p := b.Step(0.5)
		for _, s := range line.Stops {
			if p.Dist(rm.Points[s]) < 1 {
				visited[s] = true
			}
		}
	}
	if len(visited) < len(line.Stops) {
		t.Errorf("bus visited %d of %d stops", len(visited), len(line.Stops))
	}
}

func TestBusFactoryAssignsLines(t *testing.T) {
	rm := mapgen.Generate(mapgen.DefaultConfig(), 1)
	f := BusFactory(rm, 5, 10, 1, 2)
	for i := 0; i < 2*len(rm.Lines); i++ {
		mv := f(i, xrand.New(int64(i)))
		bus, ok := mv.(*Bus)
		if !ok {
			t.Fatal("factory did not return a Bus")
		}
		if bus.Line().ID != i%len(rm.Lines) {
			t.Fatalf("node %d on line %d", i, bus.Line().ID)
		}
	}
}
