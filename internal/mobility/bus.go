package mobility

import (
	"repro/internal/geo"
	"repro/internal/mapgen"
	"repro/internal/xrand"
)

// Bus moves a node along a cyclic bus line over the road map: it follows
// shortest road paths between consecutive stops, drives each leg at a
// per-leg speed and dwells at stops, reproducing the vehicular map-driven
// model of the paper's evaluation (Section V-A).
type Bus struct {
	rm   *mapgen.RoadMap
	line mapgen.BusLine

	stopIdx int // index of the stop the current leg departs from
	leg     *geo.Polyline
	legSeg  int     // segment hint for AtHint: buses advance monotonically
	s       float64 // arc-length progress along leg
	speed   float64
	dwell   float64 // remaining dwell at the last reached stop

	minSpeed, maxSpeed float64
	minDwell, maxDwell float64
	rng                *xrand.Source
	pos                geo.Point
}

// NewBus returns a bus on the given line. Buses start spread around the
// line: the starting stop and the phase within the first leg are drawn from
// rng, so multiple buses on one line do not clump.
func NewBus(rm *mapgen.RoadMap, line mapgen.BusLine, minSpeed, maxSpeed, minDwell, maxDwell float64, rng *xrand.Source) *Bus {
	if minSpeed <= 0 || maxSpeed < minSpeed {
		panic("mobility: invalid bus speed range")
	}
	b := &Bus{
		rm:       rm,
		line:     line,
		minSpeed: minSpeed, maxSpeed: maxSpeed,
		minDwell: minDwell, maxDwell: maxDwell,
		rng: rng,
	}
	b.stopIdx = rng.Intn(len(line.Stops))
	b.beginLeg()
	// Random phase along the first leg.
	b.s = rng.Uniform(0, b.leg.Length())
	b.pos, b.legSeg = b.leg.AtHint(b.s, 0)
	return b
}

// Line returns the bus line this mover follows.
func (b *Bus) Line() mapgen.BusLine { return b.line }

func (b *Bus) beginLeg() {
	from := b.line.Stops[b.stopIdx]
	to := b.line.Stops[(b.stopIdx+1)%len(b.line.Stops)]
	b.leg = geo.NewPolyline(b.rm.LegPath(from, to))
	b.legSeg = 0
	b.s = 0
	b.speed = b.rng.Uniform(b.minSpeed, b.maxSpeed)
}

// Pos implements Mover.
func (b *Bus) Pos() geo.Point { return b.pos }

// Step implements Mover.
func (b *Bus) Step(dt float64) geo.Point {
	for dt > 0 {
		if b.dwell > 0 {
			if b.dwell >= dt {
				b.dwell -= dt
				return b.pos
			}
			dt -= b.dwell
			b.dwell = 0
		}
		remain := b.leg.Length() - b.s
		travel := b.speed * dt
		if travel < remain {
			b.s += travel
			b.pos, b.legSeg = b.leg.AtHint(b.s, b.legSeg)
			return b.pos
		}
		// Arrive at the next stop within this step.
		if b.speed > 0 {
			dt -= remain / b.speed
		}
		b.stopIdx = (b.stopIdx + 1) % len(b.line.Stops)
		b.pos = b.rm.Points[b.line.Stops[b.stopIdx]]
		if b.maxDwell > 0 {
			b.dwell = b.rng.Uniform(b.minDwell, b.maxDwell)
		}
		b.beginLeg()
	}
	return b.pos
}

// BusFactory returns a Factory assigning node i to line i % len(lines),
// matching mapgen's round-robin community assignment.
func BusFactory(rm *mapgen.RoadMap, minSpeed, maxSpeed, minDwell, maxDwell float64) Factory {
	return func(node int, rng *xrand.Source) Mover {
		return NewBus(rm, rm.LineOfNode(node), minSpeed, maxSpeed, minDwell, maxDwell, rng)
	}
}
