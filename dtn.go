// Package repro is a Go reproduction of Chen & Lou, "On Using Contact
// Expectation for Routing in Delay Tolerant Networks" (ICPP 2011): the EER
// and CR routing protocols, the baseline protocols they are evaluated
// against, and a complete DTN simulator (mobility, contacts, buffers,
// traffic, metrics) to run them in.
//
// This root package is the stable facade: scenario configuration,
// execution, sweeps and the paper's contact-expectation estimators. The
// implementation lives in internal/ packages (see DESIGN.md for the
// inventory); examples/ and cmd/ show idiomatic use.
//
// Quick start:
//
//	s := repro.DefaultScenario()
//	s.Protocol = repro.EER
//	s.Nodes = 120
//	fmt.Println(s.Run())
package repro

import (
	"context"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/metrics"
	"repro/internal/resultcache"
)

// Scenario is a complete run configuration: protocol, fleet size, paper
// parameters (λ, α, TTL, buffer, radio), mobility and traffic.
type Scenario = experiment.Scenario

// Protocol names a routing protocol implementation.
type Protocol = experiment.Protocol

// Summary holds one run's metrics: the paper's delivery ratio, latency and
// goodput plus auxiliary counters.
type Summary = metrics.Summary

// Series is a named sweep curve (one protocol across node counts, one λ
// across the sweep, ...).
type Series = experiment.Series

// Metric selects one plotted quantity from a Summary.
type Metric = experiment.Metric

// History is a node's sliding-window contact history with the paper's
// estimators: EEV (Theorem 1), EMD (Theorem 2) and ENEC (Theorem 4).
type History = core.History

// MeetingStore is the estimator-storage contract shared by the dense
// MeetingMatrix and the sparse city-scale SparseMeetingStore: interval
// lookup, row freshness, own-row refresh and known-entry iteration.
type MeetingStore = core.MeetingStore

// MeetingMatrix is the dense link-state MI matrix of average meeting
// intervals with per-row freshness merge — the figure-scale MeetingStore.
type MeetingMatrix = core.MeetingMatrix

// SparseMeetingStore is the city-scale MeetingStore: per-row storage over
// observed peers only, so memory grows with recorded meetings instead of
// the network size.
type SparseMeetingStore = core.SparseMeetingStore

// MEMD computes minimum expected meeting delays (Theorem 3) over an MD
// matrix built from a History and a MeetingMatrix.
type MEMD = core.MEMD

// SparseMEMD computes Theorem-3 delays with a bounded-heap Dijkstra over
// recorded edges — O(E log V) on the observed contact graph instead of
// O(n²), with bit-identical delays.
type SparseMEMD = core.SparseMEMD

// The protocols of the paper's evaluation plus extra references and
// ablation variants.
const (
	EER           = experiment.EER
	CR            = experiment.CR
	EBR           = experiment.EBR
	MaxProp       = experiment.MaxProp
	SprayAndWait  = experiment.SprayAndWait
	SprayAndFocus = experiment.SprayAndFocus
	Epidemic      = experiment.Epidemic
	Prophet       = experiment.Prophet
	Direct        = experiment.Direct
	FirstContact  = experiment.FirstContact
	EERFixedEV    = experiment.EERFixedEV
	EERMeanMD     = experiment.EERMeanMD
)

// PaperProtocols lists the six protocols of the paper's Figure 2 in plot
// order.
var PaperProtocols = experiment.AllPaperProtocols

// The paper's three metrics, in sub-figure order (a, b, c).
var (
	MetricDeliveryRatio = experiment.MetricDeliveryRatio
	MetricLatency       = experiment.MetricLatency
	MetricGoodput       = experiment.MetricGoodput
	PaperMetrics        = experiment.PaperMetrics
)

// ScenarioSpec is the declarative JSON form of a simulation job: a preset
// plus overrides, resolving to one Scenario and a seed list. It is the
// payload the dtnd daemon accepts, and the preimage of its
// content-addressed result cache.
type ScenarioSpec = experiment.ScenarioSpec

// ParseSpec decodes a JSON scenario spec strictly (unknown fields are
// errors).
func ParseSpec(data []byte) (ScenarioSpec, error) { return experiment.ParseSpec(data) }

// RunSpec resolves and executes a spec over its seed list through the
// bounded worker pool, returning per-seed summaries.
func RunSpec(sp ScenarioSpec) ([]Summary, error) { return experiment.RunSpec(sp) }

// SweepSpec is a declarative parameter study: a base ScenarioSpec plus
// axes (protocols, node counts and the Section V-B parameters) that
// deterministically expand into content-addressed cells. It is the
// payload of dtnd's /v1/sweeps endpoint and the grid form cmd/sweep and
// cmd/figures expand through.
type SweepSpec = experiment.SweepSpec

// SweepCell is one expanded sweep point: its spec, content address and
// axis coordinates.
type SweepCell = experiment.SweepCell

// AxisValue names one axis coordinate of a sweep cell.
type AxisValue = experiment.AxisValue

// CellResult is one cell's outcome in a sweep result table.
type CellResult = experiment.CellResult

// ResultStore is the bounded content-addressed result cache shared by
// dtnd and the CLIs; a nil store always misses.
type ResultStore = resultcache.Store

// OpenResultStore opens (creating if needed) a result cache rooted at
// dir; maxBytes > 0 bounds its total size with oldest-mtime eviction.
func OpenResultStore(dir string, maxBytes int64) (*ResultStore, error) {
	return resultcache.Open(dir, maxBytes)
}

// ParseSweepSpec decodes a JSON sweep spec strictly (unknown fields are
// errors).
func ParseSweepSpec(data []byte) (SweepSpec, error) { return experiment.ParseSweepSpec(data) }

// RunSweep expands and executes a sweep: cells present in store are
// served from disk, the rest run as one flattened job list over the
// bounded pool and are persisted back. Cancel ctx to stop early.
func RunSweep(ctx context.Context, sw SweepSpec, store *ResultStore) ([]CellResult, error) {
	return experiment.RunSweep(ctx, sw, store)
}

// DefaultScenario returns the paper's Section V-A configuration.
func DefaultScenario() Scenario { return experiment.Default() }

// QuickScenario returns a scaled-down configuration for fast exploration.
func QuickScenario() Scenario { return experiment.Quick() }

// RunSeeds executes a scenario once per seed through the bounded worker
// pool, returning the per-seed summaries.
func RunSeeds(s Scenario, seeds []int64) []Summary { return experiment.RunSeeds(s, seeds) }

// RunBatch executes arbitrary scenarios through the bounded worker pool,
// returning summaries in input order.
func RunBatch(ss []Scenario) []Summary { return experiment.RunBatch(ss) }

// RunAveraged executes a scenario over n seeds and returns the mean
// summary.
func RunAveraged(s Scenario, n int) Summary { return experiment.RunAveraged(s, n) }

// Seeds returns the canonical seed list 1..n.
func Seeds(n int) []int64 { return experiment.Seeds(n) }

// NodeSweep runs a scenario at every node count, averaging seeds per
// point.
func NodeSweep(base Scenario, counts []int, nSeeds int) Series {
	return experiment.NodeSweep(base, counts, nSeeds)
}

// NodeSweepMulti runs several scenarios across node counts as one
// flattened batch saturating all cores.
func NodeSweepMulti(bases []Scenario, counts []int, nSeeds int) []Series {
	return experiment.NodeSweepMulti(bases, counts, nSeeds)
}

// MeanSummary averages summaries component-wise.
func MeanSummary(ss []Summary) Summary { return metrics.Mean(ss) }

// NewHistory returns an empty dense contact history for node self in a
// network of n nodes with the given sliding-window size (0 = default).
func NewHistory(self, n, window int) *History { return core.NewHistory(self, n, window) }

// NewSparseHistory returns an empty sparse contact history: storage grows
// with the peers actually contacted, with estimators bit-identical to the
// dense mode.
func NewSparseHistory(self, n, window int) *History { return core.NewSparseHistory(self, n, window) }

// NewMeetingMatrix returns an all-unknown dense MI matrix over nodes
// 0..n-1.
func NewMeetingMatrix(n int) *MeetingMatrix { return core.NewFullMeetingMatrix(n) }

// NewSparseMeetingStore returns an empty sparse MI store over nodes
// 0..n-1.
func NewSparseMeetingStore(n int) *SparseMeetingStore { return core.NewSparseMeetingStore(n) }

// NewMEMD returns a dense Theorem-3 calculator for matrices of the given
// size.
func NewMEMD(size int) *MEMD { return core.NewMEMD(size) }

// NewSparseMEMD returns a sparse Theorem-3 calculator; one instance serves
// stores of any size.
func NewSparseMEMD() *SparseMEMD { return core.NewSparseMEMD() }
