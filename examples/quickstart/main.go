// Quickstart: run the paper's vehicular scenario under EER and print the
// three evaluation metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	repro "repro"
)

func main() {
	s := repro.QuickScenario() // 60 buses, 2500 simulated seconds
	s.Protocol = repro.EER
	s.Lambda = 10  // initial replicas per message (paper's λ)
	s.Alpha = 0.28 // EEV horizon scale (paper's α)

	fmt.Printf("running %s with %d nodes for %.0fs...\n", s.Protocol, s.Nodes, s.Duration)
	sum := s.Run()

	fmt.Printf("delivery ratio: %.3f\n", sum.DeliveryRatio)
	fmt.Printf("avg latency:    %.1f s\n", sum.AvgLatency)
	fmt.Printf("goodput:        %.4f\n", sum.Goodput)
	fmt.Printf("(%d generated, %d delivered, %d relays, %d contacts)\n",
		sum.Generated, sum.Delivered, sum.Relays, sum.Contacts)
}
