// Communities: the paper's Figure-1 motivation made concrete. Six nodes in
// three communities follow a scripted contact schedule; the example shows
// (1) the contact-expectation estimators a node builds from its history —
// EEV, EMD and ENEC — and (2) CR beating naive first-contact forwarding on
// exactly the A→D situation of Figure 1.
//
//	go run ./examples/communities
package main

import (
	"fmt"

	repro "repro"
	"repro/internal/buffer"
	"repro/internal/community"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Figure 1: communities C1 = {A, B}, C2 = {C, E}, C3 = {D, F}.
// Node ids:              A=0, B=1,        C=2, E=3,       D=4, F=5.
// Periodic schedule (one period = 100 s), mirroring the t1..t4 snapshots:
// A-B touch constantly inside C1; A-E touch at t≈20; E-F at t≈50;
// F-D constantly inside C3. The useful path A→D is A→E→F→D.
func figure1Trace(periods int) *trace.Trace {
	tr := &trace.Trace{N: 6}
	for k := 0; k < periods; k++ {
		base := float64(k) * 100
		tr.Contacts = append(tr.Contacts,
			trace.Contact{Start: base + 5, End: base + 15, A: 0, B: 1},  // A-B (C1)
			trace.Contact{Start: base + 20, End: base + 28, A: 0, B: 3}, // A-E (bridge C1-C2)
			trace.Contact{Start: base + 35, End: base + 43, A: 2, B: 3}, // C-E (C2)
			trace.Contact{Start: base + 50, End: base + 58, A: 3, B: 5}, // E-F (bridge C2-C3)
			trace.Contact{Start: base + 70, End: base + 80, A: 4, B: 5}, // F-D (C3)
		)
	}
	tr.Sort()
	return tr
}

func run(mk func() network.Router, periods int, sendAt float64, ttl float64) repro.Summary {
	tr := figure1Trace(periods)
	runner := sim.NewRunner(0.5)
	w := network.New(network.Config{Range: 10, Bandwidth: 1e6}, runner)
	for _, mv := range tr.ReplayMovers(10) {
		w.AddNode(mv, buffer.New(0, nil), mk())
	}
	w.Start()
	runner.Events.Schedule(sendAt, func(t float64) {
		w.CreateMessage(t, 0, 4, 1000, ttl) // A → D
	})
	runner.Run(tr.Duration() + 1)
	return w.Metrics.Summary()
}

func main() {
	names := []string{"A", "B", "C", "E", "D", "F"}
	reg := community.New([]int{0, 0, 1, 1, 2, 2})

	// Part 1: what node A's history knows after three schedule periods.
	fmt.Println("== contact-expectation estimators at node A ==")
	h := repro.NewHistory(0, 6, 0)
	for k := 0; k < 3; k++ {
		base := float64(k) * 100
		h.RecordContact(1, base+5)  // B
		h.RecordContact(3, base+20) // E
	}
	now, tau := 310.0, 50.0
	fmt.Printf("t=%.0f, horizon τ=%.0f s\n", now, tau)
	for _, peer := range []int{1, 3, 4} {
		p := h.EncounterProb(peer, now, tau)
		emd, ok := h.EMD(peer, now)
		if ok {
			fmt.Printf("  P(meet %s within τ) = %.2f, EMD = %.1f s\n", names[peer], p, emd)
		} else {
			fmt.Printf("  P(meet %s within τ) = %.2f, EMD = unknown (never met)\n", names[peer], p)
		}
	}
	fmt.Printf("  EEV(t, τ)  = %.2f expected encounters\n", h.EEV(now, tau))
	fmt.Printf("  ENEC(t, τ) = %.2f expected foreign communities\n",
		h.ENEC(now, tau, reg.Communities(), reg.Of(0)))

	// Part 2: the Figure-1 routing story. First-contact ("best effort to
	// B first", as the paper's introduction warns) wastes the copy inside
	// C1; CR pushes it along A→E→F→D using community expectations.
	fmt.Println("\n== Figure-1 scenario: message A → D, TTL 300 s ==")
	crFactory := routing.CRFactory(routing.DefaultCRConfig(2), reg)
	cr := run(func() network.Router { return crFactory() }, 8, 100, 300)
	fc := run(func() network.Router { return routing.NewFirstContact() }, 8, 100, 300)
	fmt.Printf("  CR:            delivered=%d latency=%.0fs relays=%d\n", cr.Delivered, cr.AvgLatency, cr.Relays)
	fmt.Printf("  FirstContact:  delivered=%d latency=%.0fs relays=%d\n", fc.Delivered, fc.AvgLatency, fc.Relays)
	if cr.Delivered > 0 {
		fmt.Println("  -> CR routes across communities via the E/F bridges.")
	}
}
