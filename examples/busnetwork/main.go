// Busnetwork: the paper's head-to-head on the vehicular map-driven
// scenario — EER and CR against EBR, MaxProp, Spray-and-Wait and
// Spray-and-Focus — averaged over seeds, printed as one table per metric
// (a reduced-size Figure 2).
//
//	go run ./examples/busnetwork
package main

import (
	"fmt"
	"os"

	repro "repro"
)

func main() {
	base := repro.QuickScenario()
	base.Nodes = 80
	base.Duration = 3000
	const seeds = 2

	fmt.Printf("comparing %d protocols, %d nodes, %.0fs × %d seeds\n\n",
		len(repro.PaperProtocols), base.Nodes, base.Duration, seeds)

	type row struct {
		p   repro.Protocol
		sum repro.Summary
	}
	var rows []row
	for _, p := range repro.PaperProtocols {
		s := base
		s.Protocol = p
		fmt.Fprintf(os.Stderr, "  running %s...\n", p)
		rows = append(rows, row{p, repro.RunAveraged(s, seeds)})
	}

	fmt.Printf("%-15s %-10s %-12s %-9s %-8s\n", "protocol", "delivery", "latency(s)", "goodput", "relays")
	for _, r := range rows {
		fmt.Printf("%-15s %-10.3f %-12.1f %-9.4f %-8d\n",
			r.p, r.sum.DeliveryRatio, r.sum.AvgLatency, r.sum.Goodput, r.sum.Relays)
	}
	fmt.Println("\nexpected shape (paper Figure 2): MaxProp tops delivery and")
	fmt.Println("bottoms goodput; EBR/spray variants lead goodput; EER/CR")
	fmt.Println("deliver more than the spray variants and EBR.")
}
