// Tracereplay: record the contact trace of one bus-scenario run, then
// replay the *identical* contact sequence under two protocols — a paired
// comparison with mobility variance removed, which is sharper than
// comparing independent runs.
//
//	go run ./examples/tracereplay
package main

import (
	"fmt"
	"os"

	repro "repro"
	"repro/internal/buffer"
	"repro/internal/experiment"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/traffic"
	"repro/internal/xrand"
)

// recorder observes contacts without routing anything.
type recorder struct {
	routing.Base
	rec *trace.Recorder
}

func (r *recorder) ContactUp(t float64, peer *network.Node) {
	if r.Self.ID < peer.ID {
		r.rec.Up(t, r.Self.ID, peer.ID)
	}
}

func (r *recorder) ContactDown(t float64, peer *network.Node) {
	r.Base.ContactDown(t, peer)
	if r.Self.ID < peer.ID {
		r.rec.Down(t, r.Self.ID, peer.ID)
	}
}

func (r *recorder) NextTransfer(float64, *network.Node) *network.Plan { return nil }

func main() {
	s := repro.QuickScenario()
	s.Nodes = 40
	s.Duration = 2000

	// Step 1: record the contact trace of the mobility.
	fmt.Fprintf(os.Stderr, "recording contact trace (%d nodes, %.0fs)...\n", s.Nodes, s.Duration)
	rec := trace.NewRecorder(s.Nodes)
	w, runner := experiment.BuildBare(s, func(int) network.Router { return &recorder{rec: rec} })
	_ = w
	runner.Run(s.Duration)
	tr := rec.Finish(s.Duration)
	fmt.Printf("recorded %d contacts\n", len(tr.Contacts))

	// Step 2: replay the same trace under each protocol with the same
	// traffic seed.
	replay := func(name string, mk func() network.Router) repro.Summary {
		runner := sim.NewRunner(s.Tick)
		w := network.New(network.Config{Range: s.Range, Bandwidth: s.Bandwidth}, runner)
		for _, mv := range tr.ReplayMovers(s.Range) {
			w.AddNode(mv, buffer.New(s.BufBytes, nil), mk())
		}
		w.Start()
		gen := &traffic.Uniform{
			MinInterval: s.MsgIntervalMin, MaxInterval: s.MsgIntervalMax,
			Size: s.MsgSize, TTL: s.TTL, Stop: s.Duration,
			Rng: xrand.Derive(1, "traffic"),
		}
		gen.Install(w)
		runner.Run(s.Duration)
		sum := w.Metrics.Summary()
		fmt.Printf("%-14s delivery=%.3f latency=%.1fs goodput=%.4f relays=%d\n",
			name, sum.DeliveryRatio, sum.AvgLatency, sum.Goodput, sum.Relays)
		return sum
	}

	eerFactory := routing.EERFactory(routing.DefaultEERConfig(10), s.Nodes)
	epi := replay("Epidemic", func() network.Router { return routing.NewEpidemic() })
	eer := replay("EER", func() network.Router { return eerFactory() })
	swt := replay("SprayAndWait", func() network.Router { return routing.NewSprayAndWait(10) })

	fmt.Println("\npaired on identical contacts and traffic:")
	fmt.Printf("  epidemic relays %.1fx EER's; spray-and-wait delivers %.0f%% of epidemic\n",
		float64(epi.Relays)/float64(max(eer.Relays, 1)),
		100*float64(swt.Delivered)/float64(max(epi.Delivered, 1)))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
