package repro

import (
	"math"
	"testing"
)

// TestFacadeScenarioRun exercises the public API end to end.
func TestFacadeScenarioRun(t *testing.T) {
	s := QuickScenario()
	s.Protocol = SprayAndWait
	s.Nodes = 24
	s.Duration = 1000
	sum := s.Run()
	if sum.Generated == 0 || sum.Contacts == 0 {
		t.Fatalf("facade run produced nothing: %+v", sum)
	}
}

func TestFacadeSeedsAndMean(t *testing.T) {
	if got := Seeds(3); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("Seeds = %v", got)
	}
	m := MeanSummary([]Summary{{DeliveryRatio: 0.2}, {DeliveryRatio: 0.4}})
	if math.Abs(m.DeliveryRatio-0.3) > 1e-12 {
		t.Fatalf("MeanSummary = %+v", m)
	}
}

// TestFacadeEstimators exercises the re-exported core types against the
// Theorem-1/2 worked example.
func TestFacadeEstimators(t *testing.T) {
	h := NewHistory(0, 3, 0)
	for _, ts := range []float64{100, 110, 130, 160, 200} {
		h.RecordContact(1, ts)
	}
	if p := h.EncounterProb(1, 215, 10); math.Abs(p-1.0/3) > 1e-12 {
		t.Errorf("EncounterProb = %g", p)
	}
	mi := NewMeetingMatrix(3)
	mi.UpdateOwnRow(0, 200, h)
	if v := mi.Interval(0, 1); v != 25 {
		t.Errorf("Interval = %g", v)
	}
	calc := NewMEMD(3)
	calc.Compute(0, 215, h, mi)
	if d := calc.Delay(1); math.Abs(d-15) > 1e-9 {
		t.Errorf("MEMD = %g", d)
	}
	if d := calc.Delay(2); !math.IsInf(d, 1) {
		t.Errorf("MEMD to stranger = %g", d)
	}
}

func TestFacadeProtocolList(t *testing.T) {
	if len(PaperProtocols) != 6 {
		t.Fatalf("PaperProtocols = %v", PaperProtocols)
	}
	if PaperProtocols[0] != EER || PaperProtocols[1] != CR {
		t.Fatalf("PaperProtocols order = %v", PaperProtocols)
	}
	if len(PaperMetrics) != 3 {
		t.Fatalf("PaperMetrics = %d", len(PaperMetrics))
	}
}
